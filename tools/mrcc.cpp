// mrcc — command-line front end for the mrcomp workflow, built entirely on
// the mrc::api facade.
//
//   mrcc compress   <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]
//   mrcc tiled      <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]
//   mrcc decompress <in> <out.f32> [threads=N]   (threads applies to tiled streams)
//   mrcc adaptive   <in.f32> <nx> <ny> <nz> <out> [roi_fraction] [rel_eb] [key=value ...]
//   mrcc restore    <in.snapshot> <out.f32>
//   mrcc region     <in.tiled> <x0> <y0> <z0> <x1> <y1> <z1> <out.f32> [key=value ...]
//   mrcc info       <in> [--tiles]
//   mrcc codecs
//
// Codec names come from the codec registry (`mrcc codecs` lists them); any
// api::Options knob can be set with trailing key=value arguments (a leading
// "--" is accepted, so `--tile=32 --threads=8` works too), e.g.
//   mrcc compress in.f32 64 64 64 out.mrc codec=zfpx eb=1e-3
//   mrcc tiled    in.f32 256 256 256 out.mrct --tile=64 --threads=8
//   mrcc adaptive in.f32 64 64 64 out.mrc roi_fraction=0.25 postprocess=1
// "adaptive" runs the full paper workflow (ROI extraction + SZ3MR) into a
// self-describing snapshot; "restore" reconstructs a uniform grid from it.
// "tiled" writes the brick-tiled container (parallel per-brick compression);
// "region" reads a half-open [x0,x1)x[y0,y1)x[z0,z1) box back out of it,
// decoding only the intersecting bricks. "decompress" accepts any mrcomp
// stream — codec choice is read from the stream header; snapshots are
// restored and tiled streams reassembled automatically. "info" reports
// kind, codec, dims, and error bound from the header alone, without
// decompressing — plus tile geometry (and the per-tile index with --tiles)
// for tiled streams.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/mrc_api.h"
#include "io/raw_io.h"

using namespace mrc;

namespace {

void write_raw_floats(const FieldF& f, const std::string& path) {
  io::write_bytes(std::as_bytes(std::span(f.data(), static_cast<std::size_t>(f.size()))),
                  path);
}

/// Applies trailing CLI arguments to `opt`: "key=value" goes through
/// Options::set; for back-compat a bare codec name or number is accepted in
/// the first two positions (codec, then relative error bound). Commands with
/// fewer meaningful positions pass nullptr — extra bare args are rejected
/// rather than silently mapped onto unrelated knobs.
void apply_args(api::Options& opt, char** begin, char** end,
                const char* bare1 = nullptr, const char* bare2 = nullptr) {
  const char* bare_keys[2] = {bare1, bare2};
  int bare = 0;
  for (char** a = begin; a != end; ++a) {
    std::string arg = *a;
    if (arg.rfind("--", 0) == 0) arg.erase(0, 2);  // --tile=64 == tile=64
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opt.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (bare < 2 && bare_keys[bare] != nullptr) {
      opt.set(bare_keys[bare], arg);
      ++bare;
    } else {
      throw ContractError("unexpected argument: " + arg);
    }
  }
}

const char* kind_str(api::StreamInfo::Kind k) {
  switch (k) {
    case api::StreamInfo::Kind::field: return "field";
    case api::StreamInfo::Kind::level: return "level";
    case api::StreamInfo::Kind::tiled: return "tiled";
    default: return "snapshot";
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mrcc compress   <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]\n"
      "  mrcc tiled      <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]\n"
      "  mrcc decompress <in> <out.f32> [threads=N (tiled streams)]\n"
      "  mrcc adaptive   <in.f32> <nx> <ny> <nz> <out> [roi_fraction] [rel_eb] "
      "[key=value ...]\n"
      "  mrcc restore    <in.snapshot> <out.f32>\n"
      "  mrcc region     <in.tiled> <x0> <y0> <z0> <x1> <y1> <z1> <out.f32> "
      "[key=value ...]\n"
      "  mrcc info       <in> [--tiles]\n"
      "  mrcc codecs\n"
      "key=value may also be spelled --key=value (--tile=64 --threads=8).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
 try {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "codecs") {
    for (const auto& name : registry().names()) {
      const auto* e = registry().find(name);
      std::printf("%-10s %s\n", e->name.c_str(), e->description.c_str());
    }
    return 0;
  }
  if (cmd == "compress" && argc >= 7) {
    const Dim3 dims{std::atoll(argv[3]), std::atoll(argv[4]), std::atoll(argv[5])};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, argv + 7, argv + argc, "codec", "eb");
    const auto stream = api::compress(f, opt);
    io::write_bytes(stream, argv[6]);
    std::printf("%s: %lld values -> %zu bytes (CR %.1f)\n", opt.codec.c_str(),
                static_cast<long long>(f.size()), stream.size(),
                compression_ratio(f.size(), stream.size()));
    return 0;
  }
  if (cmd == "tiled" && argc >= 7) {
    const Dim3 dims{std::atoll(argv[3]), std::atoll(argv[4]), std::atoll(argv[5])};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, argv + 7, argv + argc, "codec", "eb");
    const auto stream = api::compress_tiled(f, opt);
    io::write_bytes(stream, argv[6]);
    const auto meta = api::info(stream);
    std::printf("tiled(%s): %lld values, %s bricks of %lld^3 -> %zu bytes (CR %.1f)\n",
                opt.codec.c_str(), static_cast<long long>(f.size()),
                meta.tile_grid.str().c_str(), static_cast<long long>(meta.brick),
                stream.size(), compression_ratio(f.size(), stream.size()));
    return 0;
  }
  if (cmd == "region" && argc >= 10) {
    const auto stream = io::read_bytes(argv[2]);
    const tiled::Box box{{std::atoll(argv[3]), std::atoll(argv[4]), std::atoll(argv[5])},
                         {std::atoll(argv[6]), std::atoll(argv[7]), std::atoll(argv[8])}};
    api::Options opt;
    apply_args(opt, argv + 10, argv + argc, "threads");
    const auto rr = tiled::read_region(stream, box, opt.threads);
    write_raw_floats(rr.data, argv[9]);
    std::printf("region %s: decoded %zu of %zu bricks -> %s\n",
                rr.data.dims().str().c_str(), rr.tiles_decoded, rr.tiles_total, argv[9]);
    return 0;
  }
  if (cmd == "decompress" && argc >= 4) {
    const auto stream = io::read_bytes(argv[2]);
    const auto meta = api::info(stream);
    api::Options opt;
    apply_args(opt, argv + 4, argv + argc, "threads");
    const FieldF f = meta.kind == api::StreamInfo::Kind::tiled
                         ? tiled::decompress(stream, opt.threads)
                         : api::decompress(stream);
    write_raw_floats(f, argv[3]);
    std::printf("%s %s stream, %s -> %s\n", kind_str(meta.kind), meta.codec.c_str(),
                f.dims().str().c_str(), argv[3]);
    return 0;
  }
  if (cmd == "adaptive" && argc >= 7) {
    const Dim3 dims{std::atoll(argv[3]), std::atoll(argv[4]), std::atoll(argv[5])};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, argv + 7, argv + argc, "roi_fraction", "eb");
    const auto snapshot = api::compress_adaptive(f, opt);
    io::write_bytes(snapshot, argv[6]);
    std::printf("adaptive snapshot: %zu bytes (CR %.1f vs uniform)\n", snapshot.size(),
                compression_ratio(f.size(), snapshot.size()));
    return 0;
  }
  if (cmd == "restore" && argc == 4) {
    const FieldF f = api::restore(io::read_bytes(argv[2]));
    write_raw_floats(f, argv[3]);
    std::printf("restored uniform grid %s -> %s\n", f.dims().str().c_str(), argv[3]);
    return 0;
  }
  if (cmd == "info" && (argc == 3 || (argc == 4 && std::string(argv[3]) == "--tiles"))) {
    const auto stream = io::read_bytes(argv[2]);
    const auto meta = api::info(stream);
    std::printf("%s stream v%u, codec %s, dims %s, eb %.4g, %zu bytes (CR %.1f)",
                kind_str(meta.kind), meta.version, meta.codec.c_str(),
                meta.dims.str().c_str(), meta.eb, meta.stream_bytes,
                compression_ratio(meta.dims.size(), meta.stream_bytes));
    if (meta.kind == api::StreamInfo::Kind::snapshot)
      std::printf(", %zu levels", meta.levels);
    if (meta.kind == api::StreamInfo::Kind::tiled)
      std::printf(", %zu bricks (%s grid of %lld^3 +%lld overlap)", meta.tiles,
                  meta.tile_grid.str().c_str(), static_cast<long long>(meta.brick),
                  static_cast<long long>(meta.overlap));
    std::printf("\n");
    if (argc == 4 && meta.kind == api::StreamInfo::Kind::tiled) {
      const auto idx = tiled::read_index(stream);
      std::printf("%6s %22s %14s %10s %12s %12s\n", "tile", "origin", "stored", "bytes",
                  "min", "max");
      for (std::size_t t = 0; t < idx.tiles.size(); ++t) {
        const auto& e = idx.tiles[t];
        std::printf("%6zu %8lld,%5lld,%5lld %14s %10llu %12.5g %12.5g\n", t,
                    static_cast<long long>(e.origin.x), static_cast<long long>(e.origin.y),
                    static_cast<long long>(e.origin.z), e.stored.str().c_str(),
                    static_cast<unsigned long long>(e.length), e.vmin, e.vmax);
      }
    }
    return 0;
  }
  return usage();
 } catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
 }
}
