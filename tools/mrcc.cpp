// mrcc — command-line front end for the mrcomp workflow.
//
//   mrcc compress   <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb]
//   mrcc decompress <in> <out.f32>
//   mrcc adaptive   <in.f32> <nx> <ny> <nz> <out> [roi_fraction] [rel_eb]
//   mrcc restore    <in.snapshot> <out.f32>
//   mrcc info       <in>
//
// codec ∈ {interp, lorenzo, zfpx} (default interp). rel_eb is the absolute
// error bound as a fraction of the value range (default 1e-4). "adaptive"
// runs the full paper workflow: ROI extraction + SZ3MR, written as a
// self-describing snapshot; "restore" reconstructs a uniform grid from it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "compressors/interp/interp_compressor.h"
#include "compressors/lorenzo/lorenzo_compressor.h"
#include "compressors/zfpx/zfpx_compressor.h"
#include "core/workflow.h"
#include "io/raw_io.h"

using namespace mrc;

namespace {

std::unique_ptr<Compressor> make_codec(const std::string& name) {
  if (name == "interp") return std::make_unique<InterpCompressor>();
  if (name == "lorenzo") return std::make_unique<LorenzoCompressor>();
  if (name == "zfpx") return std::make_unique<ZfpxCompressor>();
  std::fprintf(stderr, "unknown codec '%s' (interp|lorenzo|zfpx)\n", name.c_str());
  std::exit(2);
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MRC_REQUIRE(in.good(), "cannot open: " + path);
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  Bytes out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

void write_file(std::span<const std::byte> data, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MRC_REQUIRE(out.good(), "cannot open: " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  MRC_REQUIRE(out.good(), "write failed: " + path);
}

/// Streams are self-describing; try each codec until the magic matches.
FieldF decompress_any(std::span<const std::byte> stream, std::string* codec_name) {
  for (const char* name : {"interp", "lorenzo", "zfpx"}) {
    try {
      const auto codec = make_codec(name);
      FieldF f = codec->decompress(stream);
      if (codec_name) *codec_name = name;
      return f;
    } catch (const CodecError&) {
      continue;
    }
  }
  throw CodecError("not an mrcomp compressed stream");
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mrcc compress   <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb]\n"
               "  mrcc decompress <in> <out.f32>\n"
               "  mrcc adaptive   <in.f32> <nx> <ny> <nz> <out> [roi] [rel_eb]\n"
               "  mrcc restore    <in.snapshot> <out.f32>\n"
               "  mrcc info       <in>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
 try {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  if (cmd == "compress" && argc >= 7) {
    const Dim3 dims{std::atoll(argv[3]), std::atoll(argv[4]), std::atoll(argv[5])};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    const auto codec = make_codec(argc > 7 ? argv[7] : "interp");
    const double rel = argc > 8 ? std::atof(argv[8]) : 1e-4;
    const auto stream = codec->compress(f, f.value_range() * rel);
    write_file(stream, argv[6]);
    std::printf("%s: %lld values -> %zu bytes (CR %.1f)\n", codec->name().c_str(),
                static_cast<long long>(f.size()), stream.size(),
                compression_ratio(f.size(), stream.size()));
    return 0;
  }
  if (cmd == "decompress" && argc == 4) {
    const auto stream = read_file(argv[2]);
    std::string codec;
    const FieldF f = decompress_any(stream, &codec);
    std::ofstream out(argv[3], std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(f.data()),
              static_cast<std::streamsize>(f.size() * sizeof(float)));
    std::printf("%s stream, %s -> %s\n", codec.c_str(), f.dims().str().c_str(), argv[3]);
    return 0;
  }
  if (cmd == "adaptive" && argc >= 7) {
    const Dim3 dims{std::atoll(argv[3]), std::atoll(argv[4]), std::atoll(argv[5])};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    workflow::Config cfg;
    cfg.roi_fraction = argc > 7 ? std::atof(argv[7]) : 0.5;
    const double rel = argc > 8 ? std::atof(argv[8]) : 1e-4;
    const auto adaptive = roi::extract_adaptive(f, cfg.roi_block, cfg.roi_fraction);
    const auto timing =
        workflow::write_snapshot(adaptive, f.value_range() * rel, cfg.pipeline, argv[6]);
    std::printf("adaptive snapshot: %zu bytes (CR %.1f on stored samples)\n",
                timing.bytes_written,
                static_cast<double>(adaptive.stored_samples()) * 4.0 /
                    static_cast<double>(timing.bytes_written));
    return 0;
  }
  if (cmd == "restore" && argc == 4) {
    auto mr = workflow::read_snapshot(argv[2]);
    mr.fine_dims = mr.levels.front().data.dims();
    const FieldF f = mr.reconstruct_uniform();
    std::ofstream out(argv[3], std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(f.data()),
              static_cast<std::streamsize>(f.size() * sizeof(float)));
    std::printf("restored uniform grid %s -> %s\n", f.dims().str().c_str(), argv[3]);
    return 0;
  }
  if (cmd == "info" && argc == 3) {
    const auto stream = read_file(argv[2]);
    std::string codec;
    const FieldF f = decompress_any(stream, &codec);
    const auto [lo, hi] = f.min_max();
    std::printf("codec %s, dims %s, %zu bytes, CR %.1f, values in [%.4g, %.4g]\n",
                codec.c_str(), f.dims().str().c_str(), stream.size(),
                compression_ratio(f.size(), stream.size()), static_cast<double>(lo),
                static_cast<double>(hi));
    return 0;
  }
  return usage();
 } catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
 }
}
