// mrcc — command-line front end for the mrcomp workflow, built entirely on
// the mrc::api facade.
//
//   mrcc compress   <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]
//   mrcc tiled      <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]
//   mrcc pyramid    <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]
//   mrcc progressive <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]
//   mrcc adaptive   <in.f32> <nx> <ny> <nz> <out> [importance] [rel_eb] [key=value ...]
//   mrcc decompress <in> <out.f32> [threads=N]   (threads applies to brick containers)
//   mrcc snapshot   <in.f32> <nx> <ny> <nz> <out> [roi_fraction] [rel_eb] [key=value ...]
//   mrcc restore    <in.snapshot> <out.f32>
//   mrcc region     <in.tiled> <x0> <y0> <z0> <x1> <y1> <z1> [--out=<file.raw>]
//                   [--progressive [--level=L]] [key=value ...]
//   mrcc lod        <in.mrcp> <x0> <y0> <z0> <x1> <y1> <z1>
//                   [--budget=<samples> | --eb_budget=<err> | --level=<l>]
//                   [--out=<file.raw>] [key=value ...]
//   mrcc metrics    <orig.raw> <recon.raw>
//   mrcc info       <in> [--tiles]
//   mrcc serve      <stream...> [--clients=K] [--reads=N] [--flight=<out.json>]
//                   [--slow_us=N] [key=value ...]
//   mrcc stats      <stream...> [--reads=N] [key=value ...]
//   mrcc trace-read <stream> <x0> <y0> <z0> <x1> <y1> <z1> [--level=L] [key=value ...]
//   mrcc codecs
//
// Any subcommand additionally accepts a global --trace=<out.json>: it turns
// the mrc::obs runtime switch on for the whole run and writes a
// chrome://tracing / Perfetto-loadable span trace on exit.
//
// Codec names come from the codec registry (`mrcc codecs` lists them); any
// api::Options knob can be set with trailing key=value arguments (a leading
// "--" is accepted, so `--tile=32 --threads=8` works too), e.g.
//   mrcc compress in.f32 64 64 64 out.mrc codec=zfpx eb=1e-3
//   mrcc pyramid  in.f32 256 256 256 out.mrcp --tile=64 --levels=0 --threads=8
//   mrcc adaptive in.f32 256 256 256 out.mrca importance=halo --coarse_level=2
//   mrcc adaptive in.f32 256 256 256 out.mrca importance=roi --roi=0:0:0:64:64:64
//   mrcc lod      out.mrcp 0 0 0 256 256 256 --budget=100000 --out=view.raw
// "adaptive" writes the adaptive multi-resolution container (MRCA): every
// brick at its own level, chosen by the importance source (halo | gradient
// | roi | file), and prints the resulting level histogram with per-level
// byte shares. "snapshot" runs the paper's snapshot workflow (ROI
// extraction + SZ3MR); "restore" reconstructs a uniform grid from it.
// "tiled" writes the brick-tiled container; "pyramid" writes the LOD
// pyramid (the field at resolutions 1, 1/2, 1/4, ...); "progressive"
// writes the progressive residual container (MRCR: coarsest level verbatim
// + per-level residual streams) and prints its level table — per-level
// bytes, residual entropy, and the cumulative telescoped error bound.
// "region" reads a half-open [x0,x1)x[y0,y1)x[z0,z1) box back out of a
// tiled stream, decoding only the intersecting bricks (an MRCR operand is
// read in-process at --level instead); with --progressive
// it instead streams the box coarse-first out of an MRCR stream through an
// in-process wire server (one `progressive` request, N refinement frames)
// and prints the bytes streamed per level. The box is then in level-L
// coordinates (--level, default 0, the finest); "lod" serves the same kind of box
// (in finest-grid coordinates) from a pyramid through the cached Dataset
// layer, picking the cheapest sufficient level for a sample or error budget
// unless --level pins one. "serve" opens every operand stream (MRCT / MRCP /
// MRCA, any mix) in one multi-tenant serve::Server — one global cache_mb
// brick cache, one exec pool — drives K simulated clients through the wire
// protocol over the in-process loopback transport for N region reads each,
// and prints the per-dataset hit ratios plus the server's admission and
// latency stats. Every simulated serve read carries a distinct wire trace
// id; --flight=<out.json> dumps the server's always-on flight recorder and
// slow-request log as JSON on the way out — error exits included — and
// --slow_us=N lowers the slow-capture threshold. "trace-read" runs exactly
// one traced region read through the same in-process wire server and prints
// the stitched span tree of that request (wire -> server -> pool lanes).
// "stats" opens streams the same way, drives --reads random
// region reads per dataset, prints the observability registry fetched over
// the wire metrics frame (Prometheus text), and verifies that its counters
// reconcile exactly with the server's global and per-dataset stats slices.
// --out writes the result as a self-describing
// .raw file (io::write_raw: extents header + f32 payload). "decompress"
// accepts any mrcomp stream — codec choice is read from the stream header;
// snapshots are restored, tiled streams reassembled, pyramids decoded at
// full resolution, adaptive streams reconstructed seam-free. "metrics"
// prints PSNR / RMSE / max error / SSIM between two .raw fields (the
// dormant metrics/ modules wired to the CLI). "info" reports kind, codec,
// dims, and error bound from the header alone, without decompressing —
// plus tile geometry (and the per-tile/per-brick index with --tiles) for
// the brick containers and the level table (extents, bytes, value range,
// LOD error) for pyramids. Bad arguments (unknown keys, malformed numbers,
// missing operands) always exit nonzero with a message on stderr.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/mrc_api.h"
#include "common/rng.h"
#include "io/raw_io.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "serve/wire.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"

using namespace mrc;

namespace {

void write_raw_floats(const FieldF& f, const std::string& path) {
  io::write_bytes(std::as_bytes(std::span(f.data(), static_cast<std::size_t>(f.size()))),
                  path);
}

/// Strict integer parse for positional operands (extents, box corners):
/// rejects trailing garbage and empty strings instead of atoll's silent 0.
index_t parse_ll(const char* s, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0')
    throw ContractError(std::string("bad ") + what + ": '" + s + "' (expected an integer)");
  return static_cast<index_t>(v);
}

double parse_d(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size())
    throw ContractError(std::string("bad ") + what + ": '" + s + "' (expected a number)");
  return v;
}

/// Applies trailing CLI arguments to `opt`: "key=value" goes through
/// Options::set; for back-compat a bare codec name or number is accepted in
/// the first two positions (codec, then relative error bound). Commands with
/// fewer meaningful positions pass nullptr — extra bare args are rejected
/// rather than silently mapped onto unrelated knobs.
void apply_args(api::Options& opt, const std::vector<std::string>& args,
                const char* bare1 = nullptr, const char* bare2 = nullptr) {
  const char* bare_keys[2] = {bare1, bare2};
  int bare = 0;
  for (std::string arg : args) {
    if (arg.rfind("--", 0) == 0) arg.erase(0, 2);  // --tile=64 == tile=64
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opt.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (bare < 2 && bare_keys[bare] != nullptr) {
      opt.set(bare_keys[bare], arg);
      ++bare;
    } else {
      throw ContractError("unexpected argument: " + arg);
    }
  }
}

std::vector<std::string> tail_args(char** begin, char** end) {
  return std::vector<std::string>(begin, end);
}

/// Extracts a command-specific "--name=value" flag from `args` (also
/// accepted without the leading dashes). Returns true and fills `value` if
/// present; the flag is removed so apply_args never sees it.
bool take_flag(std::vector<std::string>& args, const std::string& name,
               std::string& value) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    std::string a = *it;
    if (a.rfind("--", 0) == 0) a.erase(0, 2);
    if (a.rfind(name + "=", 0) == 0) {
      value = a.substr(name.size() + 1);
      args.erase(it);
      return true;
    }
  }
  return false;
}

/// Extracts a bare "--name" boolean flag (also accepted without dashes).
bool take_bool_flag(std::vector<std::string>& args, const std::string& name) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    std::string a = *it;
    if (a.rfind("--", 0) == 0) a.erase(0, 2);
    if (a == name) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

const char* kind_str(api::StreamInfo::Kind k) {
  switch (k) {
    case api::StreamInfo::Kind::field: return "field";
    case api::StreamInfo::Kind::level: return "level";
    case api::StreamInfo::Kind::tiled: return "tiled";
    case api::StreamInfo::Kind::pyramid: return "pyramid";
    case api::StreamInfo::Kind::adaptive: return "adaptive";
    case api::StreamInfo::Kind::progressive: return "progressive";
    default: return "snapshot";
  }
}

/// The adaptive encode's payoff at a glance: bricks and bytes per level.
void print_level_shares(const adaptive::Index& idx, std::size_t stream_bytes) {
  const auto hist = adaptive::level_histogram(idx);
  const auto bytes = adaptive::level_bytes(idx);
  std::printf("%7s %8s %8s %12s %8s\n", "level", "scale", "bricks", "bytes", "share");
  for (std::size_t l = 0; l < hist.size(); ++l) {
    if (hist[l] == 0) continue;
    std::printf("%7zu %7lldx %8zu %12llu %7.1f%%\n", l,
                static_cast<long long>(index_t{1} << l), hist[l],
                static_cast<unsigned long long>(bytes[l]),
                100.0 * static_cast<double>(bytes[l]) /
                    static_cast<double>(stream_bytes));
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mrcc compress   <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]\n"
      "  mrcc tiled      <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]\n"
      "  mrcc pyramid    <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] [key=value ...]\n"
      "  mrcc progressive <in.f32> <nx> <ny> <nz> <out> [codec] [rel_eb] "
      "[key=value ...]\n"
      "  mrcc adaptive   <in.f32> <nx> <ny> <nz> <out> [importance] [rel_eb] "
      "[key=value ...]\n"
      "                  (importance: halo|gradient|roi|file; roi=x0:y0:z0:x1:y1:z1, "
      "coarse_level=N)\n"
      "  mrcc decompress <in> <out.f32> [threads=N (brick containers)]\n"
      "  mrcc snapshot   <in.f32> <nx> <ny> <nz> <out> [roi_fraction] [rel_eb] "
      "[key=value ...]\n"
      "  mrcc restore    <in.snapshot> <out.f32>\n"
      "  mrcc metrics    <orig.raw> <recon.raw>\n"
      "  mrcc region     <in.tiled> <x0> <y0> <z0> <x1> <y1> <z1> [--out=<file.raw>] "
      "[--progressive [--level=L]] [key=value ...]\n"
      "  mrcc lod        <in.mrcp> <x0> <y0> <z0> <x1> <y1> <z1> [--budget=<samples> | "
      "--eb_budget=<err> | --level=<l>] [--out=<file.raw>] [key=value ...]\n"
      "  mrcc info       <in> [--tiles]\n"
      "  mrcc serve      <stream...> [--clients=K] [--reads=N] "
      "[--flight=<out.json>] [--slow_us=N] [key=value ...]\n"
      "  mrcc stats      <stream...> [--reads=N] [key=value ...]\n"
      "  mrcc trace-read <stream> <x0> <y0> <z0> <x1> <y1> <z1> [--level=L] "
      "[key=value ...]\n"
      "  mrcc codecs\n"
      "key=value may also be spelled --key=value (--tile=64 --threads=8).\n"
      "global: --trace=<out.json> enables observability and writes a\n"
      "chrome://tracing / Perfetto trace of the run (any subcommand).\n");
  return 2;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "codecs") {
    for (const auto& name : registry().names()) {
      const auto* e = registry().find(name);
      std::printf("%-10s %s\n", e->name.c_str(), e->description.c_str());
    }
    return 0;
  }
  if (cmd == "compress" && argc >= 7) {
    const Dim3 dims{parse_ll(argv[3], "nx"), parse_ll(argv[4], "ny"),
                    parse_ll(argv[5], "nz")};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, tail_args(argv + 7, argv + argc), "codec", "eb");
    const auto stream = api::compress(f, opt);
    io::write_bytes(stream, argv[6]);
    std::printf("%s: %lld values -> %zu bytes (CR %.1f)\n", opt.codec.c_str(),
                static_cast<long long>(f.size()), stream.size(),
                compression_ratio(f.size(), stream.size()));
    std::printf("options: %s\n", opt.to_string().c_str());
    return 0;
  }
  if (cmd == "tiled" && argc >= 7) {
    const Dim3 dims{parse_ll(argv[3], "nx"), parse_ll(argv[4], "ny"),
                    parse_ll(argv[5], "nz")};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, tail_args(argv + 7, argv + argc), "codec", "eb");
    const auto stream = api::compress_tiled(f, opt);
    io::write_bytes(stream, argv[6]);
    const auto meta = api::info(stream);
    std::printf("tiled(%s): %lld values, %s bricks of %lld^3 -> %zu bytes (CR %.1f)\n",
                opt.codec.c_str(), static_cast<long long>(f.size()),
                meta.tile_grid.str().c_str(), static_cast<long long>(meta.brick),
                stream.size(), compression_ratio(f.size(), stream.size()));
    std::printf("options: %s\n", opt.to_string().c_str());
    return 0;
  }
  if (cmd == "pyramid" && argc >= 7) {
    const Dim3 dims{parse_ll(argv[3], "nx"), parse_ll(argv[4], "ny"),
                    parse_ll(argv[5], "nz")};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, tail_args(argv + 7, argv + argc), "codec", "eb");
    const auto stream = api::build_pyramid(f, opt);
    io::write_bytes(stream, argv[6]);
    const auto idx = pyramid::read_geometry(stream);
    std::printf("pyramid(%s): %zu levels, brick %lld^3 -> %zu bytes (CR %.1f)\n",
                idx.codec.c_str(), idx.levels.size(), static_cast<long long>(idx.brick),
                stream.size(), compression_ratio(f.size(), stream.size()));
    for (std::size_t l = 0; l < idx.levels.size(); ++l) {
      const auto& e = idx.levels[l];
      std::printf("  level %zu: %-14s %10llu bytes, range [%.5g, %.5g], lod_err %.4g\n",
                  l, e.dims.str().c_str(), static_cast<unsigned long long>(e.length),
                  e.vmin, e.vmax, e.approx_err);
    }
    std::printf("options: %s\n", opt.to_string().c_str());
    return 0;
  }
  if (cmd == "progressive" && argc >= 7) {
    const Dim3 dims{parse_ll(argv[3], "nx"), parse_ll(argv[4], "ny"),
                    parse_ll(argv[5], "nz")};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, tail_args(argv + 7, argv + argc), "codec", "eb");
    const auto stream = api::build_progressive(f, opt);
    io::write_bytes(stream, argv[6]);
    const auto idx = progressive::read_geometry(stream);
    std::printf("progressive(%s): %zu levels, brick %lld^3 -> %zu bytes (CR %.1f)\n",
                idx.codec.c_str(), idx.levels.size(),
                static_cast<long long>(idx.brick), stream.size(),
                compression_ratio(f.size(), stream.size()));
    for (std::size_t l = 0; l < idx.levels.size(); ++l) {
      const auto& e = idx.levels[l];
      std::printf("  level %zu: %-14s %10llu bytes, resid_max %.4g, entropy %.2f "
                  "b/sample, cum_eb %.4g, lod_err %.4g%s\n",
                  l, e.dims.str().c_str(), static_cast<unsigned long long>(e.length),
                  e.resid_max, e.resid_entropy, e.cum_err, e.approx_err,
                  l + 1 == idx.levels.size() ? " (coarsest, stored verbatim)" : "");
    }
    std::printf("options: %s\n", opt.to_string().c_str());
    return 0;
  }
  if (cmd == "region" && argc >= 9) {
    const auto stream = io::read_bytes(argv[2]);
    const tiled::Box box{
        {parse_ll(argv[3], "x0"), parse_ll(argv[4], "y0"), parse_ll(argv[5], "z0")},
        {parse_ll(argv[6], "x1"), parse_ll(argv[7], "y1"), parse_ll(argv[8], "z1")}};
    auto args = tail_args(argv + 9, argv + argc);
    std::string out_path;
    const bool have_out = take_flag(args, "out", out_path);
    const bool progressive_read = take_bool_flag(args, "progressive");
    std::string level_s = "0";
    take_flag(args, "level", level_s);
    if (progressive_read) {
      // Coarse-first streaming read of an MRCR stream through an in-process
      // wire server: one `progressive` request, the coarse answer plus one
      // residual refinement frame per level, bytes accounted per frame.
      const int level = static_cast<int>(parse_ll(level_s.c_str(), "level"));
      api::Options opt;
      apply_args(opt, args);
      serve::Server srv(opt.server_config());
      const serve::wire::Transport loopback =
          [&srv](std::span<const std::byte> frame) { return srv.handle_frame(frame); };
      serve::wire::Client client(loopback);
      const serve::wire::OpenInfo info = client.open(stream, argv[2]);
      client.set_trace(0x70726f67ull);  // "prog": stitches the span tree
      const serve::wire::ProgressiveResult res =
          client.read_progressive(info.id, level, box);
      client.set_trace(0);
      srv.wait_idle();
      std::size_t total = 0, first = 0;
      std::printf("%7s %14s %12s %12s\n", "level", "dims", "bytes", "cum_bytes");
      for (const auto& fi : res.frames) {
        total += fi.frame_bytes;
        if (first == 0) first = fi.frame_bytes;
        const Dim3 ext{fi.box.hi.x - fi.box.lo.x, fi.box.hi.y - fi.box.lo.y,
                       fi.box.hi.z - fi.box.lo.z};
        std::printf("%7d %14s %12zu %12zu%s\n", fi.level, ext.str().c_str(),
                    fi.frame_bytes, total,
                    fi.residual ? "" : "  (coarse answer)");
      }
      std::printf("progressive %s: level %d reached, %zu bytes streamed "
                  "(%zu to first answer), status %s\n",
                  res.box.extent().str().c_str(), res.level, total, first,
                  res.complete()          ? "complete"
                  : res.status == serve::wire::ProgressiveResult::Status::truncated
                      ? "truncated"
                      : "frame_error");
      if (!res.complete())
        std::printf("degraded: %s\n", res.error.c_str());
      if (have_out) {
        io::write_raw(res.data, out_path);
        std::printf("wrote %s (self-describing raw: extents + f32 payload)\n",
                    out_path.c_str());
      }
      return res.complete() ? 0 : 1;
    }
    api::Options opt;
    apply_args(opt, args, "threads");
    if (api::info(stream).kind == api::StreamInfo::Kind::progressive) {
      // MRCR without --progressive: plain in-process read at --level
      // (default 0, the finest) — same bytes the streamed read refines to.
      const int level = static_cast<int>(parse_ll(level_s.c_str(), "level"));
      const FieldF data = progressive::read_region(stream, level, box, opt.threads);
      std::printf("region %s: progressive level %d\n", data.dims().str().c_str(),
                  level);
      if (have_out) {
        io::write_raw(data, out_path);
        std::printf("wrote %s (self-describing raw: extents + f32 payload)\n",
                    out_path.c_str());
      }
      return 0;
    }
    const auto rr = tiled::read_region(stream, box, opt.threads);
    std::printf("region %s: decoded %zu of %zu bricks\n", rr.data.dims().str().c_str(),
                rr.tiles_decoded, rr.tiles_total);
    if (have_out) {
      io::write_raw(rr.data, out_path);
      std::printf("wrote %s (self-describing raw: extents + f32 payload)\n",
                  out_path.c_str());
    }
    return 0;
  }
  if (cmd == "lod" && argc >= 9) {
    auto stream = io::read_bytes(argv[2]);
    const tiled::Box box{
        {parse_ll(argv[3], "x0"), parse_ll(argv[4], "y0"), parse_ll(argv[5], "z0")},
        {parse_ll(argv[6], "x1"), parse_ll(argv[7], "y1"), parse_ll(argv[8], "z1")}};
    auto args = tail_args(argv + 9, argv + argc);
    std::string budget_s, eb_budget_s, level_s, out_path;
    const bool have_budget = take_flag(args, "budget", budget_s);
    const bool have_eb_budget = take_flag(args, "eb_budget", eb_budget_s);
    const bool have_level = take_flag(args, "level", level_s);
    const bool have_out = take_flag(args, "out", out_path);
    if (static_cast<int>(have_budget) + static_cast<int>(have_eb_budget) +
            static_cast<int>(have_level) > 1)
      throw ContractError("lod: --budget, --eb_budget and --level are exclusive");
    api::Options opt;
    apply_args(opt, args);

    auto ds = api::open_dataset(std::move(stream), opt);
    int level = 0;
    if (have_level)
      level = static_cast<int>(parse_ll(level_s.c_str(), "level"));
    else if (have_eb_budget)
      level = ds.choose_level(parse_d(eb_budget_s, "eb_budget"));
    else if (have_budget)
      level = ds.choose_level(box, parse_ll(budget_s.c_str(), "budget"));
    // Without a budget or pinned level, serve the finest level.

    const tiled::Box lbox = ds.box_at_level(box, level);
    const FieldF data = ds.read_region(level, lbox);
    const auto st = ds.stats();
    std::printf("lod: level %d of %d (dims %s, lod_err %.4g), box %s -> %lld samples\n",
                level, ds.levels(), ds.dims(level).str().c_str(), ds.level_error(level),
                lbox.extent().str().c_str(), static_cast<long long>(data.size()));
    std::printf("cache: %llu hits, %llu misses, %llu evictions (%.0f%% hit ratio)\n",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.evictions), 100.0 * st.hit_ratio());
    if (have_out) {
      io::write_raw(data, out_path);
      std::printf("wrote %s (self-describing raw: extents + f32 payload)\n",
                  out_path.c_str());
    }
    return 0;
  }
  if (cmd == "decompress" && argc >= 4) {
    const auto stream = io::read_bytes(argv[2]);
    const auto meta = api::info(stream);
    api::Options opt;
    apply_args(opt, tail_args(argv + 4, argv + argc), "threads");
    // The brick-parallel containers honor threads=; everything else decodes
    // through the facade's single-lane dispatch.
    FieldF f;
    if (meta.kind == api::StreamInfo::Kind::tiled)
      f = tiled::decompress(stream, opt.threads);
    else if (meta.kind == api::StreamInfo::Kind::pyramid)
      f = pyramid::decompress_level(stream, /*level=*/0, opt.threads);
    else if (meta.kind == api::StreamInfo::Kind::adaptive)
      f = adaptive::decompress(stream, opt.threads);
    else
      f = api::decompress(stream);
    write_raw_floats(f, argv[3]);
    std::printf("%s %s stream, %s -> %s\n", kind_str(meta.kind), meta.codec.c_str(),
                f.dims().str().c_str(), argv[3]);
    return 0;
  }
  if (cmd == "adaptive" && argc >= 7) {
    const Dim3 dims{parse_ll(argv[3], "nx"), parse_ll(argv[4], "ny"),
                    parse_ll(argv[5], "nz")};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, tail_args(argv + 7, argv + argc), "importance", "eb");
    const auto stream = api::compress_adaptive_roi(f, opt);
    io::write_bytes(stream, argv[6]);
    const auto idx = adaptive::read_index(stream);
    std::printf("adaptive(%s, %s): %lld values, %s bricks of %lld^3 -> %zu bytes "
                "(CR %.1f)\n",
                opt.importance.c_str(), idx.codec.c_str(),
                static_cast<long long>(f.size()), idx.grid.str().c_str(),
                static_cast<long long>(idx.brick), stream.size(),
                compression_ratio(f.size(), stream.size()));
    print_level_shares(idx, stream.size());
    std::printf("options: %s\n", opt.to_string().c_str());
    return 0;
  }
  if (cmd == "snapshot" && argc >= 7) {
    const Dim3 dims{parse_ll(argv[3], "nx"), parse_ll(argv[4], "ny"),
                    parse_ll(argv[5], "nz")};
    const FieldF f = io::read_raw_f32(argv[2], dims);
    api::Options opt;
    apply_args(opt, tail_args(argv + 7, argv + argc), "roi_fraction", "eb");
    const auto snapshot = api::compress_adaptive(f, opt);
    io::write_bytes(snapshot, argv[6]);
    std::printf("adaptive snapshot: %zu bytes (CR %.1f vs uniform)\n", snapshot.size(),
                compression_ratio(f.size(), snapshot.size()));
    std::printf("options: %s\n", opt.to_string().c_str());
    return 0;
  }
  if (cmd == "metrics") {
    // Strict by design: exactly two self-describing .raw operands.
    if (argc != 4) {
      std::fprintf(stderr, "usage: mrcc metrics <orig.raw> <recon.raw>\n");
      return 2;
    }
    const FieldF orig = io::read_raw(argv[2]);
    const FieldF recon = io::read_raw(argv[3]);
    if (orig.dims() != recon.dims())
      throw ContractError("metrics: extents differ (" + orig.dims().str() + " vs " +
                          recon.dims().str() + ")");
    const auto st = metrics::error_stats(orig, recon);
    std::printf("dims %s, value range %.6g\n", orig.dims().str().c_str(),
                st.value_range);
    std::printf("psnr        %10.3f dB\n", st.psnr);
    std::printf("rmse        %10.6g\n", st.rmse);
    std::printf("max_abs_err %10.6g\n", st.max_abs_err);
    std::printf("ssim        %10.6f\n", metrics::ssim(orig, recon));
    std::printf("ssim_slice  %10.6f\n", metrics::ssim_central_slice(orig, recon));
    return 0;
  }
  if (cmd == "serve" && argc >= 3) {
    auto args = tail_args(argv + 2, argv + argc);
    std::string clients_s = "4", reads_s = "32";
    take_flag(args, "clients", clients_s);
    take_flag(args, "reads", reads_s);
    std::string flight_path, slow_us_s;
    const bool have_flight = take_flag(args, "flight", flight_path);
    if (take_flag(args, "slow_us", slow_us_s))
      obs::FlightRecorder::global().set_slow_threshold_us(
          static_cast<std::uint64_t>(parse_ll(slow_us_s.c_str(), "slow_us")));
    // Operands without '=' are stream paths; the rest are Options knobs.
    std::vector<std::string> paths, knobs;
    for (const std::string& a : args)
      (a.find('=') == std::string::npos ? paths : knobs).push_back(a);
    if (paths.empty()) throw ContractError("serve: need at least one stream");
    const int clients = static_cast<int>(parse_ll(clients_s.c_str(), "clients"));
    const int reads = static_cast<int>(parse_ll(reads_s.c_str(), "reads"));
    MRC_REQUIRE(clients >= 1 && reads >= 1, "serve: clients and reads must be >= 1");
    api::Options opt;
    apply_args(opt, knobs);

    serve::Server srv(opt.server_config());
    const serve::wire::Transport loopback =
        [&srv](std::span<const std::byte> frame) { return srv.handle_frame(frame); };
    serve::wire::Client admin(loopback);
    std::vector<serve::wire::OpenInfo> open;
    open.reserve(paths.size());
    for (const std::string& p : paths) {
      open.push_back(admin.open(io::read_bytes(p), p));
      std::printf("opened #%u %s: %d level(s), dims %s, eb %.4g\n", open.back().id,
                  p.c_str(), open.back().levels, open.back().dims.str().c_str(),
                  open.back().eb);
    }

    // K simulated clients, each walking random finest-level viewports over
    // random datasets through the wire protocol (overloads are retried).
    // Every read ships a distinct trace id — (client+1) in the high word,
    // read number in the low — so the flight recorder and any --trace dump
    // attribute each request unambiguously.
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::string err_what;
    std::vector<std::thread> crew;
    crew.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      crew.emplace_back([&, c] {
        serve::wire::Client client(loopback);
        Rng rng(0x5eedull + static_cast<std::uint64_t>(c));
        for (int r = 0; r < reads && !failed.load(std::memory_order_relaxed);
             ++r) {
          const auto& ds = open[rng.uniform_index(open.size())];
          const Dim3 d = ds.dims;
          const index_t w = std::min<index_t>({16, d.nx, d.ny, d.nz});
          const index_t x0 = static_cast<index_t>(rng.uniform() * double(d.nx - w));
          const index_t y0 = static_cast<index_t>(rng.uniform() * double(d.ny - w));
          const index_t z0 = static_cast<index_t>(rng.uniform() * double(d.nz - w));
          client.set_trace(((static_cast<std::uint64_t>(c) + 1) << 32) |
                           (static_cast<std::uint64_t>(r) + 1));
          for (;;) {
            try {
              (void)client.region(ds.id, 0,
                                  {{x0, y0, z0}, {x0 + w, y0 + w, z0 + w}});
              break;
            } catch (const serve::ServerError& e) {
              if (e.code() == serve::ServerError::Code::overloaded) {
                std::this_thread::yield();
                continue;
              }
              // Unexpected error reply: stop the whole crew so the flight
              // recorder is dumped with the failure still in its ring.
              const std::lock_guard lock(err_mu);
              if (!failed.exchange(true)) err_what = e.what();
              return;
            }
          }
        }
      });
    }
    for (auto& t : crew) t.join();
    srv.wait_idle();

    if (have_flight) {
      obs::write_flight_json(flight_path);
      const auto fs = obs::FlightRecorder::global().stats();
      std::printf("flight: wrote %s (%llu recorded, %llu dropped)\n",
                  flight_path.c_str(),
                  static_cast<unsigned long long>(fs.recorded),
                  static_cast<unsigned long long>(fs.dropped));
    }
    if (failed.load()) {
      std::fprintf(stderr, "serve: wire error: %s\n", err_what.c_str());
      return 1;
    }

    std::printf("%4s %-20s %10s %8s %10s %10s\n", "id", "stream", "lookups",
                "hit%", "bricks", "bytes");
    for (const auto& ds : open) {
      const serve::ServerStats s = admin.stats(ds.id);
      std::printf("%4u %-20s %10llu %7.1f%% %10zu %10zu\n", ds.id,
                  paths[static_cast<std::size_t>(&ds - open.data())].c_str(),
                  static_cast<unsigned long long>(s.cache.lookups),
                  100.0 * s.cache.hit_ratio(), s.cache.entries, s.cache.bytes);
    }
    const serve::ServerStats s = admin.stats();
    std::printf("server: %llu requests (%llu shed), hit ratio %.1f%%, "
                "%zu/%zu cache bytes, queue %llu high + %llu low, "
                "p50 %llu us, p99 %llu us\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.rejected),
                100.0 * s.cache.hit_ratio(), s.cache.bytes,
                static_cast<std::size_t>(opt.server_config().cache_bytes),
                static_cast<unsigned long long>(s.queue_high),
                static_cast<unsigned long long>(s.queue_low),
                static_cast<unsigned long long>(s.p50_us),
                static_cast<unsigned long long>(s.p99_us));
    return 0;
  }
  if (cmd == "stats" && argc >= 3) {
    // Opens streams in an in-process Server, drives a few wire reads, then
    // fetches the observability registry over the wire (metrics frame) and
    // reconciles its counters against the server's own stats slices.
    auto args = tail_args(argv + 2, argv + argc);
    std::string reads_s = "16";
    take_flag(args, "reads", reads_s);
    std::vector<std::string> paths, knobs;
    for (const std::string& a : args)
      (a.find('=') == std::string::npos ? paths : knobs).push_back(a);
    if (paths.empty()) throw ContractError("stats: need at least one stream");
    const int reads = static_cast<int>(parse_ll(reads_s.c_str(), "reads"));
    MRC_REQUIRE(reads >= 0, "stats: reads must be >= 0");
    api::Options opt;
    apply_args(opt, knobs);
    obs::set_enabled(true);  // so latency histograms show up in the exposition

    serve::Server srv(opt.server_config());
    const serve::wire::Transport loopback =
        [&srv](std::span<const std::byte> frame) { return srv.handle_frame(frame); };
    serve::wire::Client admin(loopback);
    std::vector<serve::wire::OpenInfo> open;
    open.reserve(paths.size());
    for (const std::string& p : paths) open.push_back(admin.open(io::read_bytes(p), p));

    Rng rng(0x5eed);
    for (const auto& ds : open)
      for (int r = 0; r < reads; ++r) {
        const Dim3 d = ds.dims;
        const index_t w = std::min<index_t>({16, d.nx, d.ny, d.nz});
        const index_t x0 = static_cast<index_t>(rng.uniform() * double(d.nx - w));
        const index_t y0 = static_cast<index_t>(rng.uniform() * double(d.ny - w));
        const index_t z0 = static_cast<index_t>(rng.uniform() * double(d.nz - w));
        for (;;) {
          try {
            (void)admin.region(ds.id, 0, {{x0, y0, z0}, {x0 + w, y0 + w, z0 + w}});
            break;
          } catch (const serve::ServerError& e) {
            if (e.code() != serve::ServerError::Code::overloaded) throw;
            std::this_thread::yield();
          }
        }
      }
    srv.wait_idle();

    const std::string text = admin.metrics();
    std::printf("%s", text.c_str());

    // Reconciliation: the registry's event counters must agree exactly with
    // the server's stats frames — global, and per-dataset summed over slices.
    auto metric = [&text](const char* name) -> long long {
      const std::string key = std::string(name) + " ";
      std::size_t pos = text.find(key);
      while (pos != std::string::npos && pos != 0 && text[pos - 1] != '\n')
        pos = text.find(key, pos + 1);
      MRC_REQUIRE(pos != std::string::npos,
                  "stats: metric missing from exposition");
      const std::size_t v0 = pos + key.size();
      const std::size_t v1 = text.find('\n', v0);
      return parse_ll(text.substr(v0, v1 - v0).c_str(), name);
    };
    const serve::ServerStats all = admin.stats();
    serve::CacheStats sum;
    for (const auto& ds : open) {
      const serve::ServerStats s = admin.stats(ds.id);
      sum.lookups += s.cache.lookups;
      sum.hits += s.cache.hits;
      sum.misses += s.cache.misses;
      sum.evictions += s.cache.evictions;
      sum.prefetched += s.cache.prefetched;
    }
    struct Row {
      const char* name;
      long long registry, server, slices;
    };
    const Row rows[] = {
        {"mrc_cache_lookups", metric("mrc_cache_lookups"),
         static_cast<long long>(all.cache.lookups), static_cast<long long>(sum.lookups)},
        {"mrc_cache_hits", metric("mrc_cache_hits"),
         static_cast<long long>(all.cache.hits), static_cast<long long>(sum.hits)},
        {"mrc_cache_misses", metric("mrc_cache_misses"),
         static_cast<long long>(all.cache.misses), static_cast<long long>(sum.misses)},
        {"mrc_cache_evictions", metric("mrc_cache_evictions"),
         static_cast<long long>(all.cache.evictions),
         static_cast<long long>(sum.evictions)},
        {"mrc_cache_prefetched", metric("mrc_cache_prefetched"),
         static_cast<long long>(all.cache.prefetched),
         static_cast<long long>(sum.prefetched)},
        {"mrc_serve_requests", metric("mrc_serve_requests"),
         static_cast<long long>(all.requests), static_cast<long long>(all.requests)},
        {"mrc_serve_rejected", metric("mrc_serve_rejected"),
         static_cast<long long>(all.rejected), static_cast<long long>(all.rejected)},
    };
    bool ok = true;
    std::printf("\n%-22s %12s %12s %12s\n", "reconciliation", "registry", "server",
                "slices");
    for (const Row& r : rows) {
      const bool match = r.registry == r.server && r.server == r.slices;
      ok = ok && match;
      std::printf("%-22s %12lld %12lld %12lld  %s\n", r.name, r.registry, r.server,
                  r.slices, match ? "ok" : "MISMATCH");
    }
    MRC_REQUIRE(ok, "stats: registry counters disagree with server stats");
    return 0;
  }
  if (cmd == "trace-read" && argc >= 9) {
    // One traced region read through an in-process wire server, stitched
    // tree printed: the CLI-sized demo of the request-tracing pipeline.
    auto stream = io::read_bytes(argv[2]);
    const tiled::Box box{
        {parse_ll(argv[3], "x0"), parse_ll(argv[4], "y0"), parse_ll(argv[5], "z0")},
        {parse_ll(argv[6], "x1"), parse_ll(argv[7], "y1"), parse_ll(argv[8], "z1")}};
    auto args = tail_args(argv + 9, argv + argc);
    std::string level_s = "0";
    take_flag(args, "level", level_s);
    const int level = static_cast<int>(parse_ll(level_s.c_str(), "level"));
    api::Options opt;
    apply_args(opt, args);
    obs::set_enabled(true);  // spans must be on for there to be a tree

    serve::Server srv(opt.server_config());
    const serve::wire::Transport loopback =
        [&srv](std::span<const std::byte> frame) { return srv.handle_frame(frame); };
    serve::wire::Client client(loopback);
    const serve::wire::OpenInfo info = client.open(stream, argv[2]);

    const std::uint64_t id = 0x7472'6163'6531ull;  // any nonzero id works
    client.set_trace(id);
    const FieldF data = client.region(info.id, level, box);
    client.set_trace(0);
    srv.wait_idle();

    std::printf("trace-read: %s level %d, box %s -> %lld samples, trace %016llx\n",
                argv[2], level, box.extent().str().c_str(),
                static_cast<long long>(data.size()),
                static_cast<unsigned long long>(id));
    std::printf("%s", obs::span_tree_text(id).c_str());
    return 0;
  }
  if (cmd == "restore" && argc == 4) {
    const FieldF f = api::restore(io::read_bytes(argv[2]));
    write_raw_floats(f, argv[3]);
    std::printf("restored uniform grid %s -> %s\n", f.dims().str().c_str(), argv[3]);
    return 0;
  }
  if (cmd == "info" && (argc == 3 || (argc == 4 && std::string(argv[3]) == "--tiles"))) {
    const auto stream = io::read_bytes(argv[2]);
    const auto meta = api::info(stream);
    std::printf("%s stream v%u, codec %s, dims %s, eb %.4g, %zu bytes (CR %.1f)",
                kind_str(meta.kind), meta.version, meta.codec.c_str(),
                meta.dims.str().c_str(), meta.eb, meta.stream_bytes,
                compression_ratio(meta.dims.size(), meta.stream_bytes));
    if (meta.kind == api::StreamInfo::Kind::snapshot)
      std::printf(", %zu levels", meta.levels);
    if (meta.kind == api::StreamInfo::Kind::tiled)
      std::printf(", %zu bricks (%s grid of %lld^3 +%lld overlap)", meta.tiles,
                  meta.tile_grid.str().c_str(), static_cast<long long>(meta.brick),
                  static_cast<long long>(meta.overlap));
    if (meta.kind == api::StreamInfo::Kind::adaptive)
      std::printf(", %zu bricks (%s grid of %lld^3, levels 0..%zu)", meta.tiles,
                  meta.tile_grid.str().c_str(), static_cast<long long>(meta.brick),
                  meta.levels - 1);
    if (meta.kind == api::StreamInfo::Kind::pyramid ||
        meta.kind == api::StreamInfo::Kind::progressive)
      std::printf(", %zu levels (brick %lld^3)", meta.levels,
                  static_cast<long long>(meta.brick));
    // Entropy-layout minor version: v7 headers carry the shard count each
    // Huffman code stream was split into; everything older is monolithic.
    if (meta.entropy_shards > 1)
      std::printf(", entropy layout sharded (%u shards)", meta.entropy_shards);
    else
      std::printf(", entropy layout monolithic");
    std::printf("\n");
    if (meta.kind == api::StreamInfo::Kind::pyramid ||
        meta.kind == api::StreamInfo::Kind::progressive) {
      // The full level table — value ranges and LOD error bounds make
      // choose_level / adaptive decisions inspectable from the CLI.
      std::printf("%6s %14s %12s %12s %12s %10s\n", "level", "dims", "bytes", "min",
                  "max", "lod_err");
      for (std::size_t l = 0; l < meta.level_meta.size(); ++l) {
        const auto& e = meta.level_meta[l];
        std::printf("%6zu %14s %12llu %12.5g %12.5g %10.4g\n", l, e.dims.str().c_str(),
                    static_cast<unsigned long long>(e.bytes), e.vmin, e.vmax,
                    e.approx_err);
      }
    }
    if (meta.kind == api::StreamInfo::Kind::adaptive) {
      const auto idx = adaptive::read_index(stream);
      print_level_shares(idx, meta.stream_bytes);
      if (argc == 4) {
        std::printf("%6s %5s %22s %14s %10s %12s %12s %10s\n", "brick", "level",
                    "origin", "stored", "bytes", "min", "max", "lod_err");
        for (std::size_t t = 0; t < idx.bricks.size(); ++t) {
          const auto& e = idx.bricks[t];
          std::printf("%6zu %5d %8lld,%5lld,%5lld %14s %10llu %12.5g %12.5g %10.4g\n",
                      t, e.level, static_cast<long long>(e.origin.x),
                      static_cast<long long>(e.origin.y),
                      static_cast<long long>(e.origin.z), e.stored.str().c_str(),
                      static_cast<unsigned long long>(e.length), e.vmin, e.vmax,
                      e.approx_err);
        }
      }
    }
    if (argc == 4 && meta.kind == api::StreamInfo::Kind::tiled) {
      const auto idx = tiled::read_index(stream);
      std::printf("%6s %22s %14s %10s %12s %12s\n", "tile", "origin", "stored", "bytes",
                  "min", "max");
      for (std::size_t t = 0; t < idx.tiles.size(); ++t) {
        const auto& e = idx.tiles[t];
        std::printf("%6zu %8lld,%5lld,%5lld %14s %10llu %12.5g %12.5g\n", t,
                    static_cast<long long>(e.origin.x), static_cast<long long>(e.origin.y),
                    static_cast<long long>(e.origin.z), e.stored.str().c_str(),
                    static_cast<unsigned long long>(e.length), e.vmin, e.vmax);
      }
    }
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
 try {
  // --trace=<path> is global: accepted anywhere on the command line, for any
  // subcommand. It flips the observability runtime switch on so spans are
  // recorded, and writes a chrome://tracing / Perfetto JSON on the way out.
  std::string trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i] ? argv[i] : "";
    if (i >= 1 && a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(8);
      MRC_REQUIRE(!trace_path.empty(), "--trace= needs an output path");
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!trace_path.empty()) mrc::obs::set_enabled(true);
  const int rc = run(static_cast<int>(args.size()), args.data());
  if (!trace_path.empty()) {
    mrc::obs::write_trace_json(trace_path);
    const auto ts = mrc::obs::trace_stats();
    std::printf("trace: wrote %s (%llu spans, %llu dropped)\n", trace_path.c_str(),
                static_cast<unsigned long long>(ts.recorded),
                static_cast<unsigned long long>(ts.dropped));
  }
  return rc;
 } catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
 }
}
