#!/usr/bin/env bash
# Tier-1 verify with warnings surfaced: configure, build with -Wall -Wextra
# (always on in CMakeLists), print any compiler warnings, run ctest — then
# repeat the test suite under AddressSanitizer (second cmake preset) so the
# thread-pool / tiled-index code is leak- and overflow-checked on every
# verify, and finally run the concurrency-heavy suites (exec pool, tiled,
# pyramid, serve-layer cache + prefetch, sharded entropy decode — the repo's
# shared mutable state) under ThreadSanitizer (third preset, <build-dir>-tsan), then an
# observability smoke (traced `mrcc tiled` validated by
# tools/check_trace_json.py, a traced `mrcc serve --flight` run whose trace
# must stitch one request id across the wire/server/pool layers
# (check_trace_json.py --serve) and whose flight-recorder dump must validate
# (tools/check_flight_json.py), a traced progressive wire read (`mrcc region
# --progressive` on a small MRCR — its N reply frames must stitch into one
# request tree with exactly one serve.request span),
# `mrcc stats` counter reconciliation, and the
# bench_obs_overhead gate: obs runtime-disabled vs a -DMRC_OBS=OFF build in
# <build-dir>-obsoff must stay within MRC_OBS_GATE_PCT, default 3%, on the
# geomean of the compress/decompress/serve-read ratios), and
# finally a bench
# smoke step: bench_adaptive_ratio on a tiny grid (MRC_SCALE=13 -> 32^3) plus
# bench_codec_hotpath (entropy hot path; gates >= 3x Huffman decode over the
# bit-at-a-time baseline, >= 2x the pre-SIMD quant_encode throughput, and —
# on machines with >= 4 hardware threads — sharded entropy decode beating
# the monolithic layout on a 4-lane pool), bench_server_load (multi-tenant Server under
# concurrent wire clients; gates viewport-walk out-hitting random and
# monotone latency quantiles) and bench_progressive_stream (gates MRCR
# total bytes < MRCP at equal eb), with every BENCH_*.json they and earlier runs
# produced validated by tools/check_bench_json.py — malformed bench output
# fails the pipeline. Set
# MRC_SKIP_ASAN=1 / MRC_SKIP_TSAN=1 / MRC_SKIP_OBS=1 / MRC_SKIP_BENCH=1 to
# skip those passes.
# Usage: tools/ci.sh [build-dir]   (default: build; sanitizer presets use
# <build-dir>-asan and <build-dir>-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .

BUILD_LOG="$BUILD_DIR/ci-build.log"
cmake --build "$BUILD_DIR" -j"$(nproc)" 2>&1 | tee "$BUILD_LOG"

echo
WARNINGS=$(grep -c "warning:" "$BUILD_LOG" || true)
if [ "$WARNINGS" -gt 0 ]; then
  echo "== $WARNINGS compiler warning(s) =="
  grep "warning:" "$BUILD_LOG" | sort | uniq -c | sort -rn
else
  echo "== no compiler warnings =="
fi

echo
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

if [ "${MRC_SKIP_ASAN:-0}" != "1" ]; then
  echo
  echo "== AddressSanitizer pass =="
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . -DMRC_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      > /dev/null
  cmake --build "$ASAN_DIR" -j"$(nproc)" --target mrc_tests > /dev/null
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
      ctest --test-dir "$ASAN_DIR" --output-on-failure -j"$(nproc)"
fi

if [ "${MRC_SKIP_TSAN:-0}" != "1" ]; then
  echo
  echo "== ThreadSanitizer pass (exec / tiled / pyramid / serve / server / wire) =="
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DMRC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      > /dev/null
  cmake --build "$TSAN_DIR" -j"$(nproc)" --target mrc_tests > /dev/null
  # Only the concurrency-bearing suites: the serial codec/metric suites add
  # nothing under TSan but multiply its ~10x slowdown.
  "$TSAN_DIR"/mrc_tests \
      --gtest_filter='ThreadPool.*:Tiled*:Pyramid*:Progressive*:Serve*:Server*:Wire*:Adaptive*:Obs*:Sharded*'
fi

if [ "${MRC_SKIP_OBS:-0}" != "1" ]; then
  echo
  echo "== observability smoke: traced mrcc run + runtime-disabled overhead gate =="
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target mrcc bench_obs_overhead > /dev/null
  OBS_TMP="$(mktemp -d)"
  trap 'rm -rf "$OBS_TMP"' EXIT
  python3 - "$OBS_TMP/small.f32" <<'PY'
import struct, sys
n = 48
vals = [((i * 2654435761) % 100003) / 100003.0 for i in range(n * n * n)]
open(sys.argv[1], "wb").write(struct.pack("<%df" % len(vals), *vals))
PY
  # Traced tiled round trip through the CLI: the trace must be Perfetto-valid
  # and contain codec, container, and pool spans (tools/check_trace_json.py).
  "$BUILD_DIR"/mrcc tiled "$OBS_TMP/small.f32" 48 48 48 "$OBS_TMP/small.mrct" \
      --trace="$OBS_TMP/trace.json" --threads=2 > /dev/null
  python3 tools/check_trace_json.py "$OBS_TMP/trace.json"
  # Traced serve run: simulated wire clients, each read under its own trace
  # id. The trace must stitch at least one request id end to end across the
  # wire/server/pool layers (the request-tracing acceptance check), and the
  # always-on flight recorder's dump must match its schema.
  "$BUILD_DIR"/mrcc serve "$OBS_TMP/small.mrct" --clients=2 --reads=8 \
      --flight="$OBS_TMP/flight.json" --trace="$OBS_TMP/serve_trace.json" \
      --threads=2 > /dev/null
  python3 tools/check_trace_json.py --serve "$OBS_TMP/serve_trace.json"
  python3 tools/check_flight_json.py "$OBS_TMP/flight.json"
  # Traced progressive read: build a small MRCR, stream it coarse-first over
  # the wire under one trace id. The N reply frames must stitch into ONE
  # request tree — check_trace_json.py --serve also asserts exactly one
  # serve.request span per stitched id (no double-counting multi-frame
  # replies).
  # tile=8 -> a 4-level chain (48 -> 24 -> 12 -> 6), so the read below
  # actually streams multiple refinement frames.
  "$BUILD_DIR"/mrcc progressive "$OBS_TMP/small.f32" 48 48 48 "$OBS_TMP/small.mrcr" \
      tile=8 --threads=2 > /dev/null
  "$BUILD_DIR"/mrcc region "$OBS_TMP/small.mrcr" 0 0 0 32 32 32 --progressive \
      --trace="$OBS_TMP/progressive_trace.json" --threads=2 > /dev/null
  python3 tools/check_trace_json.py --serve "$OBS_TMP/progressive_trace.json"
  # Wire metrics frame + counter reconciliation (exits nonzero on mismatch).
  "$BUILD_DIR"/mrcc stats "$OBS_TMP/small.mrct" --reads=8 --threads=2 > /dev/null
  echo "mrcc stats: registry/server reconciliation OK"

  # Overhead gate: obs compiled in but runtime-disabled must be within
  # MRC_OBS_GATE_PCT (default 3) percent of a -DMRC_OBS=OFF build. Two
  # defenses against measuring the machine instead of the code: alternate 3
  # runs of each binary and compare the fastest observation per mode (the
  # top envelope is stable where single runs are not), and gate on the
  # geometric mean of the compress/decompress/serve-read throughput ratios —
  # comparing two different binaries carries a few percent of code-layout
  # luck that hits individual loops in opposite directions, while a real
  # always-on regression drags the metrics the same way. The serve-read
  # column runs the flight recorder in BOTH binaries (it is always on,
  # independent of MRC_OBS), so the gate covers the full request path the
  # recorder sits on.
  OBSOFF_DIR="${BUILD_DIR}-obsoff"
  cmake -B "$OBSOFF_DIR" -S . -DMRC_OBS=OFF > /dev/null
  cmake --build "$OBSOFF_DIR" -j"$(nproc)" --target bench_obs_overhead > /dev/null
  : > "$OBS_TMP/gate_rows.jsonl"
  for rep in 1 2 3; do
    for dir in "$OBSOFF_DIR" "$BUILD_DIR"; do
      (cd "$dir/bench" && MRC_SCALE=75 ./bench_obs_overhead > /dev/null)
      cat "$dir/bench/BENCH_obs_overhead.json" >> "$OBS_TMP/gate_rows.jsonl"
      printf '\n' >> "$OBS_TMP/gate_rows.jsonl"
    done
  done
  python3 tools/check_bench_json.py "$BUILD_DIR/bench/BENCH_obs_overhead.json" \
      "$OBSOFF_DIR/bench/BENCH_obs_overhead.json"
  python3 - "$OBS_TMP/gate_rows.jsonl" "${MRC_OBS_GATE_PCT:-3}" <<'PY'
import json, sys

best = {}  # mode -> metric -> fastest MB/s seen across all runs
decoder = json.JSONDecoder()
text = open(sys.argv[1]).read()
pos = 0
while True:
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        break
    doc, pos = decoder.raw_decode(text, pos)
    for row in doc["results"]:
        slot = best.setdefault(row["mode"], {})
        for key in ("compress_mb_s", "decompress_mb_s", "serve_read_mb_s"):
            slot[key] = max(slot.get(key, 0.0), row[key])

pct = float(sys.argv[2])
keys = ("compress_mb_s", "decompress_mb_s", "serve_read_mb_s")
ratio = 1.0
for key in keys:
    base, dis = best["off"][key], best["runtime_disabled"][key]
    drop = 100.0 * (base - dis) / base if base > 0 else 0.0
    print(f"obs gate {key}: off {base:.1f} MB/s, runtime_disabled {dis:.1f} MB/s "
          f"({drop:+.1f}%)")
    ratio *= dis / base if base > 0 else 1.0
overall = 100.0 * (1.0 - ratio ** (1.0 / len(keys)))
print(f"obs gate overall (geomean of ratios): {overall:+.1f}%")
if overall > pct:
    sys.exit(f"obs overhead gate: runtime-disabled regressed more than {pct}% overall")
print(f"obs overhead gate: OK (within the {pct}% budget)")
PY
fi

if [ "${MRC_SKIP_BENCH:-0}" != "1" ]; then
  echo
  echo "== bench smoke (tiny grid) + BENCH_*.json validation =="
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_adaptive_ratio \
      bench_codec_hotpath bench_server_load bench_progressive_stream > /dev/null
  (cd "$BUILD_DIR/bench" && MRC_SCALE=13 ./bench_adaptive_ratio > /dev/null)
  # Progressive streaming: gates MRCR total bytes < MRCP at equal eb. 64^3
  # (scale 25), not 32^3: below that the field is smooth enough that the
  # coarse data level dominates and the residual advantage is in the noise.
  (cd "$BUILD_DIR/bench" && MRC_SCALE=25 ./bench_progressive_stream > /dev/null)
  # Multi-tenant server smoke: 2 datasets, 2/8 wire clients on a tiny grid;
  # gates viewport-walk hit ratio > random and p50 <= p99 per row.
  (cd "$BUILD_DIR/bench" && MRC_SCALE=25 ./bench_server_load > /dev/null)
  # The entropy hot path: gates >= 3x single-thread Huffman decode over the
  # bit-at-a-time baseline and cross-checks byte-identical streams. Default
  # scale (1M symbols) keeps the timing stable enough for the gate.
  (cd "$BUILD_DIR/bench" && ./bench_codec_hotpath > /dev/null)
  # Hot-path absolute gates from the JSON the bench just wrote:
  #   * quant_encode must run at >= 2x the pre-SIMD baseline of 289.8 MB/s
  #     (the figure this machine produced before the vectorized predictor/
  #     quantizer landed). MRC_QUANT_ENCODE_MIN_MB_S overrides; 0 disables.
  #   * sharded decode on a 4-lane pool must beat the monolithic layout —
  #     but only where 4 hardware threads exist; on smaller machines the
  #     pool is pure oversubscription and the row is informational.
  #     MRC_SHARDED_DECODE_MIN_SPEEDUP overrides the 1.0 bar; 0 disables.
  python3 - "$BUILD_DIR/bench/BENCH_codec_hotpath.json" \
      "${MRC_QUANT_ENCODE_MIN_MB_S:-579.6}" \
      "${MRC_SHARDED_DECODE_MIN_SPEEDUP:-1.0}" "$(nproc)" <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
rows = {row["stage"]: row for row in doc["results"]}
quant_min, shard_min, cores = float(sys.argv[2]), float(sys.argv[3]), int(sys.argv[4])

qe = rows["quant_encode"]["optimized_mb_s"]
print(f"hotpath gate quant_encode: {qe:.1f} MB/s (min {quant_min:.1f})")
if quant_min > 0 and qe < quant_min:
    sys.exit("hotpath gate: quant_encode below the SIMD acceptance floor")

sd = rows["sharded_decode_t4"]["speedup"]
if cores < 4:
    print(f"hotpath gate sharded_decode_t4: {sd:.2f}x (informational: "
          f"{cores} hardware threads < 4, gate skipped)")
elif shard_min > 0 and sd <= shard_min:
    sys.exit(f"hotpath gate: sharded decode at 4 lanes ({sd:.2f}x) "
             f"did not beat the monolithic layout")
else:
    print(f"hotpath gate sharded_decode_t4: {sd:.2f}x (min > {shard_min:.2f})")
PY
  # Validate the freshly produced JSON plus every committed/earlier one.
  find . "$BUILD_DIR/bench" -maxdepth 1 -name 'BENCH_*.json' -print0 |
      xargs -0 python3 tools/check_bench_json.py
fi

echo
echo "ci.sh: OK (warnings: $WARNINGS)"
