#!/usr/bin/env bash
# Tier-1 verify with warnings surfaced: configure, build with -Wall -Wextra
# (always on in CMakeLists), print any compiler warnings, run ctest — then
# repeat the test suite under AddressSanitizer (second cmake preset) so the
# thread-pool / tiled-index code is leak- and overflow-checked on every
# verify. Set MRC_SKIP_ASAN=1 to skip the sanitizer pass.
# Usage: tools/ci.sh [build-dir]   (default: build; ASan uses <build-dir>-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .

BUILD_LOG="$BUILD_DIR/ci-build.log"
cmake --build "$BUILD_DIR" -j"$(nproc)" 2>&1 | tee "$BUILD_LOG"

echo
WARNINGS=$(grep -c "warning:" "$BUILD_LOG" || true)
if [ "$WARNINGS" -gt 0 ]; then
  echo "== $WARNINGS compiler warning(s) =="
  grep "warning:" "$BUILD_LOG" | sort | uniq -c | sort -rn
else
  echo "== no compiler warnings =="
fi

echo
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

if [ "${MRC_SKIP_ASAN:-0}" != "1" ]; then
  echo
  echo "== AddressSanitizer pass =="
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . -DMRC_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      > /dev/null
  cmake --build "$ASAN_DIR" -j"$(nproc)" --target mrc_tests > /dev/null
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
      ctest --test-dir "$ASAN_DIR" --output-on-failure -j"$(nproc)"
fi

echo
echo "ci.sh: OK (warnings: $WARNINGS)"
