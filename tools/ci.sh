#!/usr/bin/env bash
# Tier-1 verify with warnings surfaced: configure, build with -Wall -Wextra
# (always on in CMakeLists), print any compiler warnings, run ctest — then
# repeat the test suite under AddressSanitizer (second cmake preset) so the
# thread-pool / tiled-index code is leak- and overflow-checked on every
# verify, and finally run the concurrency-heavy suites (exec pool, tiled,
# pyramid, serve-layer cache + prefetch — the repo's shared mutable state)
# under ThreadSanitizer (third preset, <build-dir>-tsan), and finally a bench
# smoke step: bench_adaptive_ratio on a tiny grid (MRC_SCALE=13 -> 32^3) plus
# bench_codec_hotpath (entropy hot path; gates >= 3x Huffman decode over the
# bit-at-a-time baseline) and bench_server_load (multi-tenant Server under
# concurrent wire clients; gates viewport-walk out-hitting random and
# monotone latency quantiles), with every BENCH_*.json they and earlier runs
# produced validated by tools/check_bench_json.py — malformed bench output
# fails the pipeline. Set
# MRC_SKIP_ASAN=1 / MRC_SKIP_TSAN=1 / MRC_SKIP_BENCH=1 to skip those passes.
# Usage: tools/ci.sh [build-dir]   (default: build; sanitizer presets use
# <build-dir>-asan and <build-dir>-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .

BUILD_LOG="$BUILD_DIR/ci-build.log"
cmake --build "$BUILD_DIR" -j"$(nproc)" 2>&1 | tee "$BUILD_LOG"

echo
WARNINGS=$(grep -c "warning:" "$BUILD_LOG" || true)
if [ "$WARNINGS" -gt 0 ]; then
  echo "== $WARNINGS compiler warning(s) =="
  grep "warning:" "$BUILD_LOG" | sort | uniq -c | sort -rn
else
  echo "== no compiler warnings =="
fi

echo
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

if [ "${MRC_SKIP_ASAN:-0}" != "1" ]; then
  echo
  echo "== AddressSanitizer pass =="
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . -DMRC_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      > /dev/null
  cmake --build "$ASAN_DIR" -j"$(nproc)" --target mrc_tests > /dev/null
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
      ctest --test-dir "$ASAN_DIR" --output-on-failure -j"$(nproc)"
fi

if [ "${MRC_SKIP_TSAN:-0}" != "1" ]; then
  echo
  echo "== ThreadSanitizer pass (exec / tiled / pyramid / serve / server / wire) =="
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DMRC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      > /dev/null
  cmake --build "$TSAN_DIR" -j"$(nproc)" --target mrc_tests > /dev/null
  # Only the concurrency-bearing suites: the serial codec/metric suites add
  # nothing under TSan but multiply its ~10x slowdown.
  "$TSAN_DIR"/mrc_tests \
      --gtest_filter='ThreadPool.*:Tiled*:Pyramid*:Serve*:Server*:Wire*:Adaptive*'
fi

if [ "${MRC_SKIP_BENCH:-0}" != "1" ]; then
  echo
  echo "== bench smoke (tiny grid) + BENCH_*.json validation =="
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_adaptive_ratio \
      bench_codec_hotpath bench_server_load > /dev/null
  (cd "$BUILD_DIR/bench" && MRC_SCALE=13 ./bench_adaptive_ratio > /dev/null)
  # Multi-tenant server smoke: 2 datasets, 2/8 wire clients on a tiny grid;
  # gates viewport-walk hit ratio > random and p50 <= p99 per row.
  (cd "$BUILD_DIR/bench" && MRC_SCALE=25 ./bench_server_load > /dev/null)
  # The entropy hot path: gates >= 3x single-thread Huffman decode over the
  # bit-at-a-time baseline and cross-checks byte-identical streams. Default
  # scale (1M symbols) keeps the timing stable enough for the gate.
  (cd "$BUILD_DIR/bench" && ./bench_codec_hotpath > /dev/null)
  # Validate the freshly produced JSON plus every committed/earlier one.
  find . "$BUILD_DIR/bench" -maxdepth 1 -name 'BENCH_*.json' -print0 |
      xargs -0 python3 tools/check_bench_json.py
fi

echo
echo "ci.sh: OK (warnings: $WARNINGS)"
