#!/usr/bin/env bash
# Tier-1 verify with warnings surfaced: configure, build with -Wall -Wextra
# (always on in CMakeLists), print any compiler warnings, then run ctest.
# Usage: tools/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .

BUILD_LOG="$BUILD_DIR/ci-build.log"
cmake --build "$BUILD_DIR" -j"$(nproc)" 2>&1 | tee "$BUILD_LOG"

echo
WARNINGS=$(grep -c "warning:" "$BUILD_LOG" || true)
if [ "$WARNINGS" -gt 0 ]; then
  echo "== $WARNINGS compiler warning(s) =="
  grep "warning:" "$BUILD_LOG" | sort | uniq -c | sort -rn
else
  echo "== no compiler warnings =="
fi

echo
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo
echo "ci.sh: OK (warnings: $WARNINGS)"
