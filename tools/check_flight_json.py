#!/usr/bin/env python3
"""Validates a flight-recorder dump written by mrc::obs
(`mrcc serve --flight=out.json`, obs::write_flight_json, or the wire
`debug` frame body).

Checks the document shape — {"flight": {capacity, recorded, dropped,
slow_threshold_us, records, slow}} — the accounting invariants (recorded
<= capacity; every count non-negative), and every record's schema: the
16-hex trace id, frame type / outcome bytes, 6-element box, and the
latency/cache counters the slow-log triages by. Slow entries must wrap a
valid record plus either null or a stitched span tree whose "trace"
matches the record. A dump that parses but violates any of these means
the recorder (or its JSON writer) regressed. ci.sh runs this on the
traced `mrcc serve --flight` smoke.

Usage: check_flight_json.py <flight.json> [...]
"""

import json
import sys

RECORD_KEYS = {
    "trace",
    "type",
    "outcome",
    "dataset",
    "level",
    "box",
    "cache_hits",
    "cache_misses",
    "queue_wait_us",
    "total_us",
    "end_us",
}

COUNTER_KEYS = ("cache_hits", "cache_misses", "queue_wait_us", "total_us")


def check_record(rec, where):
    if not isinstance(rec, dict):
        raise ValueError(f"{where} must be an object")
    if set(rec) != RECORD_KEYS:
        raise ValueError(
            f"{where} keys {sorted(rec)} do not match the record schema "
            f"{sorted(RECORD_KEYS)}"
        )
    trace = rec["trace"]
    if (
        not isinstance(trace, str)
        or len(trace) != 16
        or any(c not in "0123456789abcdef" for c in trace)
    ):
        raise ValueError(f"{where} trace {trace!r} is not 16 lowercase hex")
    for key in ("type", "outcome"):
        if not isinstance(rec[key], int) or not 0 <= rec[key] <= 255:
            raise ValueError(f"{where} {key} must be a byte (0..255)")
    if not isinstance(rec["dataset"], int) or rec["dataset"] < 0:
        raise ValueError(f"{where} dataset must be a non-negative integer")
    if not isinstance(rec["level"], int):
        raise ValueError(f"{where} level must be an integer")
    box = rec["box"]
    if (
        not isinstance(box, list)
        or len(box) != 6
        or any(not isinstance(v, int) for v in box)
    ):
        raise ValueError(f"{where} box must be a list of 6 integers")
    for key in COUNTER_KEYS:
        if not isinstance(rec[key], int) or rec[key] < 0:
            raise ValueError(f"{where} {key} must be a non-negative integer")
    if not isinstance(rec["end_us"], (int, float)) or rec["end_us"] < 0:
        raise ValueError(f"{where} end_us must be a non-negative number")


def check(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or set(doc) != {"flight"}:
        raise ValueError("top level must be an object with the single key 'flight'")
    flight = doc["flight"]
    expected = {"capacity", "recorded", "dropped", "slow_threshold_us",
                "records", "slow"}
    if not isinstance(flight, dict) or set(flight) != expected:
        raise ValueError(f"'flight' must be an object with keys {sorted(expected)}")
    for key in ("capacity", "recorded", "dropped", "slow_threshold_us"):
        if not isinstance(flight[key], int) or flight[key] < 0:
            raise ValueError(f"'{key}' must be a non-negative integer")
    if flight["capacity"] < 1:
        raise ValueError("'capacity' must be >= 1")
    records = flight["records"]
    if not isinstance(records, list):
        raise ValueError("'records' must be a list")
    if len(records) != flight["recorded"]:
        raise ValueError(
            f"'recorded' says {flight['recorded']} but 'records' has "
            f"{len(records)} entries"
        )
    if flight["recorded"] > flight["capacity"]:
        raise ValueError("'recorded' exceeds 'capacity'")
    for i, rec in enumerate(records):
        check_record(rec, f"records[{i}]")
    slow = flight["slow"]
    if not isinstance(slow, list):
        raise ValueError("'slow' must be a list")
    for i, entry in enumerate(slow):
        where = f"slow[{i}]"
        if not isinstance(entry, dict) or set(entry) != {"record", "spans"}:
            raise ValueError(f"{where} must be an object with 'record' and 'spans'")
        check_record(entry["record"], f"{where}.record")
        spans = entry["spans"]
        if spans is not None:
            # A captured tree carries its own trace id — it must be the
            # request the slow entry triaged, or the stitch is miswired.
            if not isinstance(spans, dict) or "trace" not in spans:
                raise ValueError(f"{where}.spans must be null or a span tree object")
            if spans["trace"] != entry["record"]["trace"]:
                raise ValueError(
                    f"{where}.spans trace {spans['trace']!r} does not match "
                    f"the record's {entry['record']['trace']!r}"
                )
    return len(records), len(slow)


def main(argv):
    if len(argv) < 2:
        print("usage: check_flight_json.py <flight.json> [...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            records, slow = check(path)
            print(f"{path}: OK ({records} flight records, {slow} slow entries)")
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
