#!/usr/bin/env python3
"""Validates a chrome://tracing / Perfetto JSON written by mrc::obs
(`mrcc --trace=out.json` or obs::write_trace_json).

Checks that the file parses, that traceEvents is a non-empty list of
complete-duration ("ph": "X") events carrying the fields Perfetto needs
(name, ts, dur, pid, tid), and — the part that catches real regressions —
that the trace contains spans from every instrumented layer: a codec stage,
a container brick, and an exec-pool task. A trace that loads but is missing
a layer means someone broke that layer's OBS_SPAN sites. ci.sh runs this on
a traced `mrcc tiled` smoke run.

With --serve the check switches to the request-path layer set: the trace
must contain at least one nonzero request trace id (the 16-hex
`args.trace` stamped by the serve layer's RequestCtx) whose spans cover
the wire, server, and pool layers. That is the end-to-end guarantee of
request-scoped tracing — one client-chosen id visible from frame decode
through the thread pool — and it breaks loudly if any propagation hop
(RequestScope install, pool capture, span stamping) regresses. Every
complete id must also carry exactly one `serve.request` span: a
progressive read's reply is N frames all echoing the same id, and they
must stitch into ONE request tree, not inflate the request count. ci.sh
runs this on traced `mrcc serve` and `mrcc region --progressive` smokes.

Usage: check_trace_json.py [--serve] <trace.json> [...]
"""

import json
import sys

# One span name prefix per instrumented layer; a valid trace of a tiled
# round trip must contain at least one span from each group.
LAYERS = {
    "codec": ("interp.", "lorenzo.", "zfpx."),
    "container": ("tiled.", "pyramid.", "adaptive."),
    "pool": ("exec.",),
}

# Layers a single traced serve request must pass through (--serve mode):
# frame decode/encode on the wire, the server's request span, and the
# thread-pool tasks the read fanned out to.
SERVE_LAYERS = {
    "wire": ("wire.",),
    "server": ("serve.",),
    "pool": ("exec.",),
}

REQUIRED_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")


def check(path, serve=False):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    names = set()
    by_trace = {}  # 16-hex trace id -> {span name: count}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] must be an object")
        for field in REQUIRED_FIELDS:
            if field not in ev:
                raise ValueError(f"traceEvents[{i}] missing '{field}'")
        if ev["ph"] != "X":
            raise ValueError(f"traceEvents[{i}] ph={ev['ph']!r}, expected 'X'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            raise ValueError(f"traceEvents[{i}] name must be a non-empty string")
        for field in ("ts", "dur"):
            if not isinstance(ev[field], (int, float)) or ev[field] < 0:
                raise ValueError(f"traceEvents[{i}] {field} must be >= 0")
        names.add(ev["name"])
        trace = ev.get("args", {}).get("trace")
        if trace is not None:
            if (
                not isinstance(trace, str)
                or len(trace) != 16
                or any(c not in "0123456789abcdef" for c in trace)
            ):
                raise ValueError(
                    f"traceEvents[{i}] args.trace {trace!r} is not 16 lowercase hex"
                )
            counts = by_trace.setdefault(trace, {})
            counts[ev["name"]] = counts.get(ev["name"], 0) + 1

    if serve:
        # At least one request id must have spans in every serve layer —
        # a single region read stitched end to end under one trace id.
        complete = [
            t
            for t, t_counts in by_trace.items()
            if t != "0" * 16
            and all(
                any(n.startswith(p) for n in t_counts for p in prefixes)
                for prefixes in SERVE_LAYERS.values()
            )
        ]
        if not complete:
            raise ValueError(
                f"no trace id covers all serve layers "
                f"{sorted(SERVE_LAYERS)}; per-id span names: "
                f"{ {t: sorted(n) for t, n in by_trace.items()} }"
            )
        # One request = one serve.request span, even when the reply is a
        # progressive multi-frame stream whose frames all echo the id.
        for t in complete:
            requests = by_trace[t].get("serve.request", 0)
            if requests != 1:
                raise ValueError(
                    f"trace id {t} has {requests} serve.request spans, "
                    f"expected exactly 1 (multi-frame replies must not "
                    f"double-count requests)"
                )
        return len(events), sorted(names), sorted(complete)

    missing = [
        layer
        for layer, prefixes in LAYERS.items()
        if not any(n.startswith(p) for n in names for p in prefixes)
    ]
    if missing:
        raise ValueError(
            f"no spans from layer(s) {missing}; span names seen: {sorted(names)}"
        )
    return len(events), sorted(names), sorted(by_trace)


def main(argv):
    args = argv[1:]
    serve = "--serve" in args
    paths = [a for a in args if a != "--serve"]
    if not paths:
        print(
            "usage: check_trace_json.py [--serve] <trace.json> [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in paths:
        try:
            count, names, traces = check(path, serve=serve)
            extra = f", {len(traces)} stitched request id(s)" if serve else ""
            print(f"{path}: OK ({count} spans, {len(names)} distinct names{extra})")
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
