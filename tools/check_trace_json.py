#!/usr/bin/env python3
"""Validates a chrome://tracing / Perfetto JSON written by mrc::obs
(`mrcc --trace=out.json` or obs::write_trace_json).

Checks that the file parses, that traceEvents is a non-empty list of
complete-duration ("ph": "X") events carrying the fields Perfetto needs
(name, ts, dur, pid, tid), and — the part that catches real regressions —
that the trace contains spans from every instrumented layer: a codec stage,
a container brick, and an exec-pool task. A trace that loads but is missing
a layer means someone broke that layer's OBS_SPAN sites. ci.sh runs this on
a traced `mrcc tiled` smoke run.

Usage: check_trace_json.py <trace.json> [...]
"""

import json
import sys

# One span name prefix per instrumented layer; a valid trace of a tiled
# round trip must contain at least one span from each group.
LAYERS = {
    "codec": ("interp.", "lorenzo.", "zfpx."),
    "container": ("tiled.", "pyramid.", "adaptive."),
    "pool": ("exec.",),
}

REQUIRED_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")


def check(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    names = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] must be an object")
        for field in REQUIRED_FIELDS:
            if field not in ev:
                raise ValueError(f"traceEvents[{i}] missing '{field}'")
        if ev["ph"] != "X":
            raise ValueError(f"traceEvents[{i}] ph={ev['ph']!r}, expected 'X'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            raise ValueError(f"traceEvents[{i}] name must be a non-empty string")
        for field in ("ts", "dur"):
            if not isinstance(ev[field], (int, float)) or ev[field] < 0:
                raise ValueError(f"traceEvents[{i}] {field} must be >= 0")
        names.add(ev["name"])
    missing = [
        layer
        for layer, prefixes in LAYERS.items()
        if not any(n.startswith(p) for n in names for p in prefixes)
    ]
    if missing:
        raise ValueError(
            f"no spans from layer(s) {missing}; span names seen: {sorted(names)}"
        )
    return len(events), sorted(names)


def main(argv):
    if len(argv) < 2:
        print("usage: check_trace_json.py <trace.json> [...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            count, names = check(path)
            print(f"{path}: OK ({count} spans, {len(names)} distinct names)")
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
