#!/usr/bin/env python3
"""Validates BENCH_*.json files: every file must parse as a JSON object with
a "bench" name and a non-empty "results" list of objects, and every row of
one file must carry the same keys (a malformed row usually means a broken
fprintf). Benches listed in ROW_SCHEMAS additionally have their row keys
checked against the expected schema, so a renamed or dropped column fails
the pipeline instead of silently rotting dashboards. ci.sh runs this after
the bench smoke step.

Usage: check_bench_json.py <file.json> [...]
"""

import json
import sys

# Benches whose row *identity* column is pinned too: the set of values in
# the named column must match exactly, so a silently dropped stage (e.g. a
# bench that stops emitting the gated sharded-decode rows) fails here.
ROW_IDENTITY = {
    "codec_hotpath": (
        "stage",
        {
            "bitstream_write13",
            "bitstream_read13",
            "huffman_encode",
            "huffman_decode",
            "quant_encode",
            "quant_decode",
            "predict_quant_interp",
            "predict_quant_lorenzo",
            "sharded_decode_t1",
            "sharded_decode_t2",
            "sharded_decode_t4",
        },
    ),
}

# Required row keys per bench name. Rows may not omit any of these; extra
# keys are reported as errors too, so schema drift is always loud.
ROW_SCHEMAS = {
    "codec_hotpath": {"stage", "baseline_mb_s", "optimized_mb_s", "speedup"},
    "obs_overhead": {
        "mode",
        "compress_mb_s",
        "decompress_mb_s",
        "serve_read_mb_s",
    },
    "progressive_stream": {
        "container",
        "level",
        "cum_bytes",
        "psnr",
        "total_bytes",
        "first_answer_bytes",
    },
    "server_load": {"clients", "trace", "p50_us", "p99_us", "hit_ratio"},
    "tiled_scaling": {
        "threads",
        "pool_threads",
        "brick",
        "compress_mb_s",
        "decompress_mb_s",
        "region_mb_s",
        "ratio",
        "region_tiles",
        "total_tiles",
    },
}


def check(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError("top level must be a JSON object")
    for key in ("bench", "results"):
        if key not in doc:
            raise ValueError(f"missing required key '{key}'")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        raise ValueError("'bench' must be a non-empty string")
    rows = doc["results"]
    if not isinstance(rows, list) or not rows:
        raise ValueError("'results' must be a non-empty list")
    keys = None
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or not row:
            raise ValueError(f"results[{i}] must be a non-empty object")
        if keys is None:
            keys = set(row)
        elif set(row) != keys:
            raise ValueError(
                f"results[{i}] keys {sorted(set(row))} differ from "
                f"results[0] keys {sorted(keys)}"
            )
    schema = ROW_SCHEMAS.get(doc["bench"])
    if schema is not None and keys != schema:
        raise ValueError(
            f"bench '{doc['bench']}' row keys {sorted(keys)} do not match "
            f"the expected schema {sorted(schema)}"
        )
    identity = ROW_IDENTITY.get(doc["bench"])
    if identity is not None:
        column, expected = identity
        got = {row.get(column) for row in rows}
        if got != expected:
            raise ValueError(
                f"bench '{doc['bench']}' {column} values {sorted(map(str, got))} "
                f"do not match the expected set {sorted(expected)}"
            )
    return len(rows)


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py <file.json> [...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            rows = check(path)
            print(f"{path}: OK ({rows} result rows)")
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"{path}: FAIL: {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
