#pragma once

// Error-bounded Bézier post-processing for block-wise compressors
// (paper §III-B, Figs. 10-13).
//
// For each point adjacent to a compression-block boundary, a quadratic
// Bézier curve through its two neighbors across the boundary is evaluated at
// t = 0.5:  B(0.5) = (d_{i-1} + 2 d_i + d_{i+1}) / 4,
// and the update is clamped to [d_i - a*eb, d_i + a*eb]; the intensity
// a < 1 is the dynamic limit tuned by sampling (see sampler.h).
//
// The filter runs one sweep per axis (x, y, z). Within a sweep updates are
// Jacobi-style (read the pre-sweep buffer), so each sweep is deterministic,
// order-independent and embarrassingly parallel — the property Table IX's
// overhead numbers rely on.

#include "grid/field.h"

namespace mrc::postproc {

/// Boundary-correction curve family. The paper uses the quadratic Bézier
/// and names exploring other curves as future work (§V); the two
/// alternatives below implement that extension and are compared in
/// bench_ablation_curves.
enum class CurveKind : std::uint8_t {
  bezier_quadratic = 0,  ///< B(0.5) = (d_{i-1} + 2 d_i + d_{i+1}) / 4
  catmull_cubic = 1,     ///< cubic through d_{i±1}, d_{i±2}, blended 50/50 with d_i
  bspline = 2,           ///< cubic B-spline filter (d_{i-1} + 4 d_i + d_{i+1}) / 6
};

struct BezierParams {
  index_t block_size = 4;  ///< compressor block edge (4 for ZFP, 4/6 for SZ2, u for SZ3MR)
  double eb = 0.0;         ///< compressor absolute error bound
  double ax = 0.0;         ///< per-axis intensity a (0 disables the axis)
  double ay = 0.0;
  double az = 0.0;
  CurveKind curve = CurveKind::bezier_quadratic;
};

/// Full x→y→z post-process.
[[nodiscard]] FieldF bezier_postprocess(const FieldF& dec, const BezierParams& p);

/// One-axis sweep (axis 0 = x, 1 = y, 2 = z) — used by the intensity tuner.
[[nodiscard]] FieldF bezier_postprocess_axis(const FieldF& dec, index_t block_size,
                                             double eb, double a, int axis,
                                             CurveKind curve = CurveKind::bezier_quadratic);

/// Unclamped variant ("Bezier" curve in Fig. 12): B(0.5) applied at block
/// boundaries with no error-bound limit. Kept as a comparison baseline.
[[nodiscard]] FieldF bezier_unclamped(const FieldF& dec, index_t block_size);

}  // namespace mrc::postproc
