#pragma once

// Classic image smoothing/denoising filters (Table I comparison baselines).
// These treat the volume like an image stack and, as the paper shows, are
// the wrong tool for error-bounded scientific data — they over-smooth and
// drop PSNR well below the unfiltered decompressed data.

#include "grid/field.h"

namespace mrc::postproc {

/// 3x3x3 median filter.
[[nodiscard]] FieldF median_filter3(const FieldF& f);

/// Separable Gaussian blur, truncated at radius = ceil(3*sigma).
[[nodiscard]] FieldF gaussian_blur(const FieldF& f, double sigma);

/// Perona–Malik anisotropic diffusion (exponential conductance).
[[nodiscard]] FieldF anisotropic_diffusion(const FieldF& f, int iterations, double kappa,
                                           double lambda);

}  // namespace mrc::postproc
