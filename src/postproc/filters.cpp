#include "postproc/filters.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace mrc::postproc {

FieldF median_filter3(const FieldF& f) {
  const Dim3 d = f.dims();
  FieldF out(d);
#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < d.nz; ++z) {
    std::array<float, 27> window;
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x) {
        int n = 0;
        for (index_t k = -1; k <= 1; ++k)
          for (index_t j = -1; j <= 1; ++j)
            for (index_t i = -1; i <= 1; ++i) {
              const index_t xx = std::clamp<index_t>(x + i, 0, d.nx - 1);
              const index_t yy = std::clamp<index_t>(y + j, 0, d.ny - 1);
              const index_t zz = std::clamp<index_t>(z + k, 0, d.nz - 1);
              window[static_cast<std::size_t>(n++)] = f.at(xx, yy, zz);
            }
        auto mid = window.begin() + n / 2;
        std::nth_element(window.begin(), mid, window.begin() + n);
        out.at(x, y, z) = *mid;
      }
  }
  return out;
}

namespace {

FieldF blur_axis(const FieldF& f, const std::vector<double>& kernel, int axis) {
  const Dim3 d = f.dims();
  const auto r = static_cast<index_t>(kernel.size() / 2);
  FieldF out(d);
  const index_t n_axis = d[axis];
#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x) {
        double acc = 0.0;
        for (index_t t = -r; t <= r; ++t) {
          index_t xx = x, yy = y, zz = z;
          auto& c = axis == 0 ? xx : (axis == 1 ? yy : zz);
          c = std::clamp<index_t>(c + t, 0, n_axis - 1);
          acc += kernel[static_cast<std::size_t>(t + r)] * f.at(xx, yy, zz);
        }
        out.at(x, y, z) = static_cast<float>(acc);
      }
  return out;
}

}  // namespace

FieldF gaussian_blur(const FieldF& f, double sigma) {
  MRC_REQUIRE(sigma > 0.0, "sigma must be positive");
  const auto r = static_cast<index_t>(std::ceil(3.0 * sigma));
  std::vector<double> kernel(static_cast<std::size_t>(2 * r + 1));
  double sum = 0.0;
  for (index_t t = -r; t <= r; ++t) {
    const double v = std::exp(-0.5 * (t / sigma) * (t / sigma));
    kernel[static_cast<std::size_t>(t + r)] = v;
    sum += v;
  }
  for (auto& v : kernel) v /= sum;
  FieldF g = blur_axis(f, kernel, 0);
  g = blur_axis(g, kernel, 1);
  g = blur_axis(g, kernel, 2);
  return g;
}

FieldF anisotropic_diffusion(const FieldF& f, int iterations, double kappa, double lambda) {
  MRC_REQUIRE(iterations >= 1 && kappa > 0.0 && lambda > 0.0, "bad diffusion parameters");
  const Dim3 d = f.dims();
  FieldF cur = f;
  FieldF next(d);
  auto g = [&](double grad) {
    const double r = grad / kappa;
    return std::exp(-r * r);
  };
  for (int it = 0; it < iterations; ++it) {
#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (index_t z = 0; z < d.nz; ++z)
      for (index_t y = 0; y < d.ny; ++y)
        for (index_t x = 0; x < d.nx; ++x) {
          const double c = cur.at(x, y, z);
          double acc = 0.0;
          auto flow = [&](index_t xx, index_t yy, index_t zz) {
            const double diff = cur.at(std::clamp<index_t>(xx, 0, d.nx - 1),
                                       std::clamp<index_t>(yy, 0, d.ny - 1),
                                       std::clamp<index_t>(zz, 0, d.nz - 1)) -
                                c;
            acc += g(std::abs(diff)) * diff;
          };
          flow(x - 1, y, z);
          flow(x + 1, y, z);
          flow(x, y - 1, z);
          flow(x, y + 1, z);
          flow(x, y, z - 1);
          flow(x, y, z + 1);
          next.at(x, y, z) = static_cast<float>(c + lambda * acc);
        }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace mrc::postproc
