#include "postproc/bezier.h"

#include <algorithm>

namespace mrc::postproc {

namespace {

/// True when index i sits immediately on either side of an internal block
/// boundary: i == m*bs - 1 (last of a block) or i == m*bs (first of the
/// next), excluding the domain edges which have no cross-boundary neighbor.
bool boundary_adjacent(index_t i, index_t n, index_t bs) {
  if (i <= 0 || i >= n - 1) return false;
  const index_t r = i % bs;
  return r == 0 || r == bs - 1;
}

FieldF sweep(const FieldF& in, index_t bs, double eb, double a, int axis, bool clamp,
             CurveKind curve) {
  const Dim3 d = in.dims();
  const index_t n_axis = d[axis];
  if (n_axis <= bs || (clamp && a <= 0.0)) return in;  // no internal boundaries / disabled

  FieldF out = in;
  const double lim = a * eb;
  const index_t stride = axis == 0 ? 1 : (axis == 1 ? d.nx : d.nx * d.ny);

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x) {
        const index_t i = axis == 0 ? x : (axis == 1 ? y : z);
        if (!boundary_adjacent(i, n_axis, bs)) continue;
        const index_t idx = d.index(x, y, z);
        const double dm = in[idx - stride];
        const double dc = in[idx];
        const double dp = in[idx + stride];
        double b;
        switch (curve) {
          case CurveKind::catmull_cubic: {
            // Cubic Lagrange through the ±1 / ±2 neighbors evaluated at the
            // center, blended 50/50 with d_i (the analog of t = 0.5).
            const bool wide = i >= 2 && i + 2 < n_axis;
            const double dm2 = wide ? in[idx - 2 * stride] : dm;
            const double dp2 = wide ? in[idx + 2 * stride] : dp;
            const double interp = (-dm2 + 4.0 * dm + 4.0 * dp - dp2) / 6.0;
            b = 0.5 * dc + 0.5 * interp;
            break;
          }
          case CurveKind::bspline:
            b = (dm + 4.0 * dc + dp) / 6.0;
            break;
          case CurveKind::bezier_quadratic:
          default:
            b = 0.25 * dm + 0.5 * dc + 0.25 * dp;  // B(0.5)
            break;
        }
        if (clamp) b = std::clamp(b, dc - lim, dc + lim);
        out[idx] = static_cast<float>(b);
      }
  return out;
}

}  // namespace

FieldF bezier_postprocess_axis(const FieldF& dec, index_t block_size, double eb, double a,
                               int axis, CurveKind curve) {
  MRC_REQUIRE(axis >= 0 && axis <= 2, "bad axis");
  MRC_REQUIRE(block_size >= 2, "bad block size");
  return sweep(dec, block_size, eb, a, axis, /*clamp=*/true, curve);
}

FieldF bezier_postprocess(const FieldF& dec, const BezierParams& p) {
  MRC_REQUIRE(p.block_size >= 2, "bad block size");
  FieldF f = sweep(dec, p.block_size, p.eb, p.ax, 0, true, p.curve);
  f = sweep(f, p.block_size, p.eb, p.ay, 1, true, p.curve);
  f = sweep(f, p.block_size, p.eb, p.az, 2, true, p.curve);
  return f;
}

FieldF bezier_unclamped(const FieldF& dec, index_t block_size) {
  MRC_REQUIRE(block_size >= 2, "bad block size");
  FieldF f = sweep(dec, block_size, 0.0, 1.0, 0, false, CurveKind::bezier_quadratic);
  f = sweep(f, block_size, 0.0, 1.0, 1, false, CurveKind::bezier_quadratic);
  f = sweep(f, block_size, 0.0, 1.0, 2, false, CurveKind::bezier_quadratic);
  return f;
}

}  // namespace mrc::postproc
