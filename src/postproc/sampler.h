#pragma once

// Sampling-based selection of the post-processing intensity `a`
// (paper §III-B, "sample + model" stage of Fig. 3).
//
// i^3 sample blocks of edge j*blocksize are drawn (< 1.5 % of the data),
// round-tripped through the same compressor and error bound, and the
// candidate intensity minimizing the sampled L2 error is picked per
// dimension by coordinate descent over the paper's fixed candidate sets
// (a_sz ∈ {0.05..0.50}, a_zfp ∈ {0.005..0.05}). The same samples provide
// the compression-error distribution reused by the uncertainty model
// (§III-C, "reusing the information").

#include <vector>

#include "compressors/compressor.h"
#include "postproc/bezier.h"

namespace mrc::postproc {

struct SampleBlocks {
  std::vector<FieldF> originals;
  index_t block_edge = 0;
  double sample_rate = 0.0;  ///< sampled values / total values
};

/// Draws `count` random aligned blocks of edge `block_edge` (deterministic
/// under `seed`). Blocks are clipped to the field, so degenerate extents are
/// handled (e.g. thin WarpX slabs).
[[nodiscard]] SampleBlocks draw_sample_blocks(const FieldF& f, index_t block_edge, int count,
                                              std::uint64_t seed);

/// Picks block edge/count for a target sample rate (default ~1.5 %).
struct SamplingPlan {
  index_t block_edge;
  int count;
};
[[nodiscard]] SamplingPlan default_sampling(Dim3 dims, index_t compressor_block,
                                            double target_rate = 0.015);

/// The paper's candidate sets.
[[nodiscard]] std::vector<double> sz_candidates();   // 0.05 .. 0.50 step 0.05
[[nodiscard]] std::vector<double> zfp_candidates();  // 0.005 .. 0.05 step 0.005

struct IntensityResult {
  double ax = 0.0, ay = 0.0, az = 0.0;
  double base_mse = 0.0;   ///< sampled MSE before post-processing
  double tuned_mse = 0.0;  ///< sampled MSE after post-processing
};

/// Tunes per-axis intensities on the samples. `block_size` is the
/// compressor's block edge (the Bézier boundary period).
[[nodiscard]] IntensityResult tune_intensity(const SampleBlocks& samples,
                                             const Compressor& comp, double abs_eb,
                                             index_t block_size,
                                             std::span<const double> candidates);

/// Paired original/decompressed values from the sample round trips, reused
/// by the uncertainty error model.
struct ErrorSamples {
  std::vector<float> orig;
  std::vector<float> dec;
};
[[nodiscard]] ErrorSamples collect_error_samples(const SampleBlocks& samples,
                                                 const Compressor& comp, double abs_eb);

}  // namespace mrc::postproc
