#include "postproc/sampler.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "grid/field_ops.h"

namespace mrc::postproc {

SampleBlocks draw_sample_blocks(const FieldF& f, index_t block_edge, int count,
                                std::uint64_t seed) {
  MRC_REQUIRE(block_edge >= 2 && count >= 1, "bad sampling parameters");
  const Dim3 d = f.dims();
  Rng rng(seed);
  SampleBlocks s;
  s.block_edge = block_edge;
  index_t sampled = 0;
  for (int c = 0; c < count; ++c) {
    const Dim3 e{std::min(block_edge, d.nx), std::min(block_edge, d.ny),
                 std::min(block_edge, d.nz)};
    const Coord3 o{
        static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(d.nx - e.nx + 1))),
        static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(d.ny - e.ny + 1))),
        static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(d.nz - e.nz + 1)))};
    s.originals.push_back(extract_region(f, o, e));
    sampled += e.size();
  }
  s.sample_rate = static_cast<double>(sampled) / static_cast<double>(d.size());
  return s;
}

SamplingPlan default_sampling(Dim3 dims, index_t compressor_block, double target_rate) {
  // Paper: i^3 blocks of (j * blocksize)^3 with rate below ~1.5 %.
  const index_t j = 4;
  index_t edge = j * compressor_block;
  edge = std::min({edge, dims.nx, dims.ny, dims.nz});
  edge = std::max<index_t>(edge, 4);
  const double per_block = static_cast<double>(edge) * edge * edge;
  int count = static_cast<int>(std::floor(target_rate * static_cast<double>(dims.size()) /
                                          per_block));
  count = std::clamp(count, 1, 27);
  return {edge, count};
}

std::vector<double> sz_candidates() {
  std::vector<double> c;
  for (int i = 1; i <= 10; ++i) c.push_back(0.05 * i);
  return c;
}

std::vector<double> zfp_candidates() {
  std::vector<double> c;
  for (int i = 1; i <= 10; ++i) c.push_back(0.005 * i);
  return c;
}

namespace {

double mse_between(const FieldF& a, const FieldF& b) {
  double acc = 0.0;
  for (index_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += diff * diff;
  }
  return acc / static_cast<double>(a.size());
}

}  // namespace

IntensityResult tune_intensity(const SampleBlocks& samples, const Compressor& comp,
                               double abs_eb, index_t block_size,
                               std::span<const double> candidates) {
  MRC_REQUIRE(!samples.originals.empty(), "no sample blocks");
  MRC_REQUIRE(!candidates.empty(), "no candidates");

  // Round-trip every sample once.
  std::vector<FieldF> decs;
  decs.reserve(samples.originals.size());
  double base = 0.0;
  for (const auto& o : samples.originals) {
    auto rt = round_trip(comp, o, abs_eb);
    base += mse_between(o, rt.reconstructed);
    decs.push_back(std::move(rt.reconstructed));
  }
  base /= static_cast<double>(samples.originals.size());

  IntensityResult result;
  result.base_mse = base;

  // Per-dimension scan: a = 0 (off) competes against every candidate, so a
  // conservative zero intensity wins when post-processing cannot help
  // (the paper's low-CR behaviour).
  double chosen[3] = {0.0, 0.0, 0.0};
  for (int axis = 0; axis < 3; ++axis) {
    double best_a = 0.0;
    double best_err = base;
    for (const double a : candidates) {
      double err = 0.0;
      for (std::size_t i = 0; i < decs.size(); ++i) {
        const FieldF proc = bezier_postprocess_axis(decs[i], block_size, abs_eb, a,
                                                    axis);
        err += mse_between(samples.originals[i], proc);
      }
      err /= static_cast<double>(decs.size());
      if (err < best_err) {
        best_err = err;
        best_a = a;
      }
    }
    chosen[axis] = best_a;
  }
  result.ax = chosen[0];
  result.ay = chosen[1];
  result.az = chosen[2];

  // Sampled quality with the combined intensities.
  BezierParams p{block_size, abs_eb, result.ax, result.ay, result.az};
  double tuned = 0.0;
  for (std::size_t i = 0; i < decs.size(); ++i)
    tuned += mse_between(samples.originals[i], bezier_postprocess(decs[i], p));
  result.tuned_mse = tuned / static_cast<double>(decs.size());
  return result;
}

ErrorSamples collect_error_samples(const SampleBlocks& samples, const Compressor& comp,
                                   double abs_eb) {
  ErrorSamples es;
  for (const auto& o : samples.originals) {
    const auto rt = round_trip(comp, o, abs_eb);
    for (index_t i = 0; i < o.size(); ++i) {
      es.orig.push_back(o[i]);
      es.dec.push_back(rt.reconstructed[i]);
    }
  }
  return es;
}

}  // namespace mrc::postproc
