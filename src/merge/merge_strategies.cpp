#include "merge/merge_strategies.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mrc {

namespace {

void copy_block_to(const UnitBlockSet& set, index_t slot, FieldF& dst, Coord3 at) {
  const index_t u = set.unit;
  const float* src = set.data.data() + slot * set.values_per_block();
  for (index_t k = 0; k < u; ++k)
    for (index_t j = 0; j < u; ++j)
      for (index_t i = 0; i < u; ++i)
        dst.at(at.x + i, at.y + j, at.z + k) = src[i + u * (j + u * k)];
}

void copy_block_from(UnitBlockSet& set, index_t slot, const FieldF& src, Coord3 at) {
  const index_t u = set.unit;
  float* dst = set.data.data() + slot * set.values_per_block();
  for (index_t k = 0; k < u; ++k)
    for (index_t j = 0; j < u; ++j)
      for (index_t i = 0; i < u; ++i)
        dst[i + u * (j + u * k)] = src.at(at.x + i, at.y + j, at.z + k);
}

/// Interleaves 16-bit coordinates into a Morton key.
std::uint64_t morton3(Coord3 c) {
  auto spread = [](std::uint64_t v) {
    v &= 0xffff;
    v = (v | (v << 32)) & 0x0000ffff0000ffffull;
    v = (v | (v << 16)) & 0x00ff00ff00ff00ffull;
    v = (v | (v << 8)) & 0x0f0f0f0f0f0f0f0full;
    v = (v | (v << 4)) & 0x3333333333333333ull;
    v = (v | (v << 2)) & 0x5555555555555555ull;
    return v;
  };
  return spread(static_cast<std::uint64_t>(c.x)) |
         (spread(static_cast<std::uint64_t>(c.y)) << 1) |
         (spread(static_cast<std::uint64_t>(c.z)) << 2);
}

/// Deterministic Morton placement order used by both merge and unmerge.
std::vector<index_t> morton_order(const UnitBlockSet& set) {
  std::vector<index_t> order(static_cast<std::size_t>(set.block_count()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return morton3(set.block_coord(set.block_ids[static_cast<std::size_t>(a)])) <
           morton3(set.block_coord(set.block_ids[static_cast<std::size_t>(b)]));
  });
  return order;
}

Dim3 stack_arrangement(index_t n) {
  const auto a = static_cast<index_t>(std::ceil(std::cbrt(static_cast<double>(n))));
  const auto b = static_cast<index_t>(
      std::ceil(std::sqrt(static_cast<double>(n) / static_cast<double>(a))));
  const index_t c = ceil_div(n, a * b);
  return {a, b, c};
}

}  // namespace

FieldF merge_linear(const UnitBlockSet& set) {
  MRC_REQUIRE(set.block_count() > 0, "no blocks to merge");
  const index_t u = set.unit;
  FieldF merged({u, u, u * set.block_count()});
  for (index_t b = 0; b < set.block_count(); ++b)
    copy_block_to(set, b, merged, {0, 0, b * u});
  return merged;
}

void unmerge_linear(const FieldF& merged, UnitBlockSet& set) {
  const index_t u = set.unit;
  MRC_REQUIRE(merged.dims() == Dim3(u, u, u * set.block_count()), "merged shape mismatch");
  set.data.assign(static_cast<std::size_t>(set.block_count() * set.values_per_block()), 0.0f);
  for (index_t b = 0; b < set.block_count(); ++b)
    copy_block_from(set, b, merged, {0, 0, b * u});
}

FieldF merge_stack(const UnitBlockSet& set) {
  MRC_REQUIRE(set.block_count() > 0, "no blocks to merge");
  const index_t u = set.unit;
  const index_t n = set.block_count();
  const Dim3 arr = stack_arrangement(n);
  FieldF merged({arr.nx * u, arr.ny * u, arr.nz * u});

  const auto order = morton_order(set);
  for (index_t s = 0; s < arr.size(); ++s) {
    // Tail slots replicate the last real block to avoid a hard zero edge.
    const index_t slot = order[static_cast<std::size_t>(std::min(s, n - 1))];
    const Coord3 at{(s % arr.nx) * u, ((s / arr.nx) % arr.ny) * u,
                    (s / (arr.nx * arr.ny)) * u};
    copy_block_to(set, slot, merged, at);
  }
  return merged;
}

void unmerge_stack(const FieldF& merged, UnitBlockSet& set) {
  const index_t u = set.unit;
  const index_t n = set.block_count();
  const Dim3 arr = stack_arrangement(n);
  MRC_REQUIRE(merged.dims() == Dim3(arr.nx * u, arr.ny * u, arr.nz * u),
              "merged shape mismatch");
  set.data.assign(static_cast<std::size_t>(n * set.values_per_block()), 0.0f);
  const auto order = morton_order(set);
  for (index_t s = 0; s < n; ++s) {
    const Coord3 at{(s % arr.nx) * u, ((s / arr.nx) % arr.ny) * u,
                    (s / (arr.nx * arr.ny)) * u};
    copy_block_from(set, order[static_cast<std::size_t>(s)], merged, at);
  }
}

UnitBlockSet scan_unit_blocks(const LevelData& level, index_t unit) {
  MRC_REQUIRE(unit >= 1, "bad unit size");
  const Dim3 d = level.data.dims();
  MRC_REQUIRE(d.nx % unit == 0 && d.ny % unit == 0 && d.nz % unit == 0,
              "level extents not divisible by unit block size");
  UnitBlockSet set;
  set.unit = unit;
  set.level_dims = d;
  set.block_grid = blocks_for(d, unit);
  for (index_t bz = 0; bz < set.block_grid.nz; ++bz)
    for (index_t by = 0; by < set.block_grid.ny; ++by)
      for (index_t bx = 0; bx < set.block_grid.nx; ++bx) {
        bool occupied = false;
        for (index_t k = 0; k < unit && !occupied; ++k)
          for (index_t j = 0; j < unit && !occupied; ++j)
            for (index_t i = 0; i < unit && !occupied; ++i)
              occupied = level.mask.at(bx * unit + i, by * unit + j, bz * unit + k) != 0;
        if (occupied) set.block_ids.push_back(set.block_grid.index(bx, by, bz));
      }
  return set;
}

FieldF gather_linear(const LevelData& level, const UnitBlockSet& set, bool pad,
                     PadKind kind) {
  MRC_REQUIRE(set.block_count() > 0, "no blocks to merge");
  const index_t u = set.unit;
  const index_t n = set.block_count();
  const index_t mx = pad ? u + 1 : u;
  const index_t my = pad ? u + 1 : u;
  FieldF merged({mx, my, u * n});

  auto extrapolate = [kind](float a, float b, float c) {
    switch (kind) {
      case PadKind::constant: return a;
      case PadKind::linear: return 2.0f * a - b;
      case PadKind::quadratic: return 3.0f * a - 3.0f * b + c;
    }
    return a;
  };

  for (index_t b = 0; b < n; ++b) {
    const Coord3 c = set.block_coord(set.block_ids[static_cast<std::size_t>(b)]);
    for (index_t k = 0; k < u; ++k) {
      const index_t mz = b * u + k;
      for (index_t j = 0; j < u; ++j) {
        const float* src = &level.data.at(c.x * u, c.y * u + j, c.z * u + k);
        float* dst = &merged.at(0, j, mz);
        std::copy(src, src + u, dst);
        if (pad)
          dst[u] = u >= 3 ? extrapolate(dst[u - 1], dst[u - 2], dst[u - 3])
                          : dst[u - 1];
      }
      if (pad) {
        // +y layer, including the +x column already written above.
        for (index_t i = 0; i < mx; ++i) {
          merged.at(i, u, mz) =
              u >= 3 ? extrapolate(merged.at(i, u - 1, mz), merged.at(i, u - 2, mz),
                                   merged.at(i, u - 3, mz))
                     : merged.at(i, u - 1, mz);
        }
      }
    }
  }
  return merged;
}

FieldF gather_stack(const LevelData& level, const UnitBlockSet& set) {
  MRC_REQUIRE(set.block_count() > 0, "no blocks to merge");
  const index_t u = set.unit;
  const index_t n = set.block_count();
  const Dim3 arr = stack_arrangement(n);
  FieldF merged({arr.nx * u, arr.ny * u, arr.nz * u});

  const auto order = morton_order(set);
  for (index_t s = 0; s < arr.size(); ++s) {
    const index_t slot = order[static_cast<std::size_t>(std::min(s, n - 1))];
    const Coord3 c = set.block_coord(set.block_ids[static_cast<std::size_t>(slot)]);
    const Coord3 at{(s % arr.nx) * u, ((s / arr.nx) % arr.ny) * u,
                    (s / (arr.nx * arr.ny)) * u};
    for (index_t k = 0; k < u; ++k)
      for (index_t j = 0; j < u; ++j) {
        const float* src = &level.data.at(c.x * u, c.y * u + j, c.z * u + k);
        float* dst = &merged.at(at.x, at.y + j, at.z + k);
        std::copy(src, src + u, dst);
      }
  }
  return merged;
}

namespace {

struct TacContext {
  const UnitBlockSet& set;
  const std::vector<std::uint8_t>& occupied;
  std::vector<TacBox>& out;
  // Maps linear block id -> slot in set.data (or -1).
  const std::vector<index_t>& slot_of;
};

void tac_recurse(TacContext& ctx, Coord3 lo, Dim3 ext) {
  const Dim3& grid = ctx.set.block_grid;
  index_t count = 0;
  for (index_t z = lo.z; z < lo.z + ext.nz; ++z)
    for (index_t y = lo.y; y < lo.y + ext.ny; ++y)
      for (index_t x = lo.x; x < lo.x + ext.nx; ++x)
        count += ctx.occupied[static_cast<std::size_t>(grid.index(x, y, z))] ? 1 : 0;
  if (count == 0) return;

  if (count == ext.size()) {
    const index_t u = ctx.set.unit;
    TacBox box;
    box.origin_blocks = lo;
    box.extent_blocks = ext;
    box.data = FieldF({ext.nx * u, ext.ny * u, ext.nz * u});
    for (index_t z = 0; z < ext.nz; ++z)
      for (index_t y = 0; y < ext.ny; ++y)
        for (index_t x = 0; x < ext.nx; ++x) {
          const index_t id = grid.index(lo.x + x, lo.y + y, lo.z + z);
          copy_block_to(ctx.set, ctx.slot_of[static_cast<std::size_t>(id)], box.data,
                        {x * u, y * u, z * u});
        }
    ctx.out.push_back(std::move(box));
    return;
  }

  // Split the longest axis; kD-style bisection over the block grid.
  int axis = 0;
  if (ext.ny > ext[axis]) axis = 1;
  if (ext.nz > ext[axis]) axis = 2;
  MRC_REQUIRE(ext[axis] >= 2, "cannot split a unit box");
  const index_t half = ext[axis] / 2;
  Dim3 e1 = ext, e2 = ext;
  Coord3 lo2 = lo;
  if (axis == 0) {
    e1.nx = half;
    e2.nx = ext.nx - half;
    lo2.x += half;
  } else if (axis == 1) {
    e1.ny = half;
    e2.ny = ext.ny - half;
    lo2.y += half;
  } else {
    e1.nz = half;
    e2.nz = ext.nz - half;
    lo2.z += half;
  }
  tac_recurse(ctx, lo, e1);
  tac_recurse(ctx, lo2, e2);
}

}  // namespace

std::vector<TacBox> merge_tac(const UnitBlockSet& set) {
  MRC_REQUIRE(set.block_count() > 0, "no blocks to merge");
  std::vector<std::uint8_t> occupied(static_cast<std::size_t>(set.block_grid.size()), 0);
  std::vector<index_t> slot_of(static_cast<std::size_t>(set.block_grid.size()), -1);
  for (index_t s = 0; s < set.block_count(); ++s) {
    occupied[static_cast<std::size_t>(set.block_ids[static_cast<std::size_t>(s)])] = 1;
    slot_of[static_cast<std::size_t>(set.block_ids[static_cast<std::size_t>(s)])] = s;
  }
  std::vector<TacBox> out;
  TacContext ctx{set, occupied, out, slot_of};
  tac_recurse(ctx, {0, 0, 0}, set.block_grid);
  return out;
}

void unmerge_tac(std::span<const TacBox> boxes, UnitBlockSet& set) {
  std::vector<index_t> slot_of(static_cast<std::size_t>(set.block_grid.size()), -1);
  for (index_t s = 0; s < set.block_count(); ++s)
    slot_of[static_cast<std::size_t>(set.block_ids[static_cast<std::size_t>(s)])] = s;
  set.data.assign(static_cast<std::size_t>(set.block_count() * set.values_per_block()), 0.0f);

  const index_t u = set.unit;
  for (const TacBox& box : boxes) {
    for (index_t z = 0; z < box.extent_blocks.nz; ++z)
      for (index_t y = 0; y < box.extent_blocks.ny; ++y)
        for (index_t x = 0; x < box.extent_blocks.nx; ++x) {
          const index_t id = set.block_grid.index(box.origin_blocks.x + x,
                                                  box.origin_blocks.y + y,
                                                  box.origin_blocks.z + z);
          const index_t slot = slot_of[static_cast<std::size_t>(id)];
          MRC_REQUIRE(slot >= 0, "tac box covers an unoccupied block");
          copy_block_from(set, slot, box.data, {x * u, y * u, z * u});
        }
  }
}

}  // namespace mrc
