#include "merge/unit_blocks.h"

namespace mrc {

UnitBlockSet extract_unit_blocks(const LevelData& level, index_t unit) {
  MRC_REQUIRE(unit >= 1, "bad unit size");
  const Dim3 d = level.data.dims();
  MRC_REQUIRE(d.nx % unit == 0 && d.ny % unit == 0 && d.nz % unit == 0,
              "level extents not divisible by unit block size");
  UnitBlockSet set;
  set.unit = unit;
  set.level_dims = d;
  set.block_grid = blocks_for(d, unit);

  for (index_t bz = 0; bz < set.block_grid.nz; ++bz)
    for (index_t by = 0; by < set.block_grid.ny; ++by)
      for (index_t bx = 0; bx < set.block_grid.nx; ++bx) {
        // Refinement is block-granular, so any valid cell marks the block.
        bool occupied = false;
        for (index_t k = 0; k < unit && !occupied; ++k)
          for (index_t j = 0; j < unit && !occupied; ++j)
            for (index_t i = 0; i < unit && !occupied; ++i)
              occupied = level.mask.at(bx * unit + i, by * unit + j, bz * unit + k) != 0;
        if (!occupied) continue;
        set.block_ids.push_back(set.block_grid.index(bx, by, bz));
        for (index_t k = 0; k < unit; ++k)
          for (index_t j = 0; j < unit; ++j)
            for (index_t i = 0; i < unit; ++i)
              set.data.push_back(level.data.at(bx * unit + i, by * unit + j, bz * unit + k));
      }
  return set;
}

void scatter_unit_blocks(const UnitBlockSet& set, LevelData& level) {
  MRC_REQUIRE(level.data.dims() == set.level_dims, "level dims mismatch");
  MRC_REQUIRE(level.mask.dims() == set.level_dims, "mask dims mismatch");
  const index_t u = set.unit;
  const index_t per = set.values_per_block();
  for (index_t b = 0; b < set.block_count(); ++b) {
    const Coord3 c = set.block_coord(set.block_ids[static_cast<std::size_t>(b)]);
    const float* src = set.data.data() + b * per;
    for (index_t k = 0; k < u; ++k)
      for (index_t j = 0; j < u; ++j)
        for (index_t i = 0; i < u; ++i) {
          level.data.at(c.x * u + i, c.y * u + j, c.z * u + k) = src[i + u * (j + u * k)];
          level.mask.at(c.x * u + i, c.y * u + j, c.z * u + k) = 1;
        }
  }
}

}  // namespace mrc
