#include "merge/padding.h"

#include <algorithm>

namespace mrc {

namespace {

/// Extrapolates one step past the end of a line given up to three trailing
/// samples (a = f[n-1], b = f[n-2], c = f[n-3]); falls back to lower order
/// when the line is short.
float extrapolate(PadKind kind, float a, float b, float c, int avail) {
  switch (kind) {
    case PadKind::constant:
      return a;
    case PadKind::linear:
      return avail >= 2 ? 2.0f * a - b : a;
    case PadKind::quadratic:
      if (avail >= 3) return 3.0f * a - 3.0f * b + c;
      return avail >= 2 ? 2.0f * a - b : a;
  }
  return a;
}

}  // namespace

FieldF pad_xy(const FieldF& merged, PadKind kind) {
  const Dim3 d = merged.dims();
  FieldF out({d.nx + 1, d.ny + 1, d.nz});
  const int ax = d.nx >= 3 ? 3 : static_cast<int>(d.nx);
  const int ay = d.ny >= 3 ? 3 : static_cast<int>(d.ny);
  for (index_t z = 0; z < d.nz; ++z) {
    for (index_t y = 0; y < d.ny; ++y) {
      for (index_t x = 0; x < d.nx; ++x) out.at(x, y, z) = merged.at(x, y, z);
      out.at(d.nx, y, z) = extrapolate(
          kind, merged.at(d.nx - 1, y, z), d.nx >= 2 ? merged.at(d.nx - 2, y, z) : 0.0f,
          d.nx >= 3 ? merged.at(d.nx - 3, y, z) : 0.0f, ax);
    }
    // Pad the +y layer, including the new +x column.
    for (index_t x = 0; x <= d.nx; ++x) {
      out.at(x, d.ny, z) = extrapolate(
          kind, out.at(x, d.ny - 1, z), d.ny >= 2 ? out.at(x, d.ny - 2, z) : 0.0f,
          d.ny >= 3 ? out.at(x, d.ny - 3, z) : 0.0f, ay);
    }
  }
  return out;
}

FieldF strip_pad_xy(const FieldF& padded) {
  const Dim3 d = padded.dims();
  MRC_REQUIRE(d.nx >= 2 && d.ny >= 2, "nothing to strip");
  FieldF out({d.nx - 1, d.ny - 1, d.nz});
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny - 1; ++y)
      for (index_t x = 0; x < d.nx - 1; ++x) out.at(x, y, z) = padded.at(x, y, z);
  return out;
}

FieldF pad_to_even(const FieldF& f, PadKind kind) {
  const Dim3 d = f.dims();
  MRC_REQUIRE(!f.empty(), "pad_to_even of empty field");
  const Dim3 pd{d.nx + (d.nx & 1), d.ny + (d.ny & 1), d.nz + (d.nz & 1)};
  if (pd == d) return f;
  FieldF out(pd);
  const int ax = static_cast<int>(std::min<index_t>(d.nx, 3));
  const int ay = static_cast<int>(std::min<index_t>(d.ny, 3));
  const int az = static_cast<int>(std::min<index_t>(d.nz, 3));
  // Fill each axis in turn (x, then y, then z); later axes extrapolate from
  // already-padded lines so the corner samples are well-defined.
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y) {
      for (index_t x = 0; x < d.nx; ++x) out.at(x, y, z) = f.at(x, y, z);
      if (pd.nx > d.nx)
        out.at(d.nx, y, z) = extrapolate(
            kind, f.at(d.nx - 1, y, z), d.nx >= 2 ? f.at(d.nx - 2, y, z) : 0.0f,
            d.nx >= 3 ? f.at(d.nx - 3, y, z) : 0.0f, ax);
    }
  if (pd.ny > d.ny)
    for (index_t z = 0; z < d.nz; ++z)
      for (index_t x = 0; x < pd.nx; ++x)
        out.at(x, d.ny, z) = extrapolate(
            kind, out.at(x, d.ny - 1, z), d.ny >= 2 ? out.at(x, d.ny - 2, z) : 0.0f,
            d.ny >= 3 ? out.at(x, d.ny - 3, z) : 0.0f, ay);
  if (pd.nz > d.nz)
    for (index_t y = 0; y < pd.ny; ++y)
      for (index_t x = 0; x < pd.nx; ++x)
        out.at(x, y, d.nz) = extrapolate(
            kind, out.at(x, y, d.nz - 1), d.nz >= 2 ? out.at(x, y, d.nz - 2) : 0.0f,
            d.nz >= 3 ? out.at(x, y, d.nz - 3) : 0.0f, az);
  return out;
}

double padding_overhead(index_t u) {
  MRC_REQUIRE(u >= 1, "bad unit size");
  const double up = static_cast<double>(u + 1);
  return (up * up) / (static_cast<double>(u) * static_cast<double>(u));
}

}  // namespace mrc
