#pragma once

// SZ3MR Improvement 1 (paper §III-A, Figs. 7-8): pad one extrapolated layer
// onto the two small dimensions (x, y) of a linearly merged array, turning
// each u = 2^k extent into 2^k + 1 so the interpolation predictor never has
// to extrapolate at inner points. The paper tests constant, linear and
// quadratic pad-value extrapolation and picks linear; all three are kept for
// the ablation bench.

#include "grid/field.h"

namespace mrc {

enum class PadKind : std::uint8_t { constant = 0, linear = 1, quadratic = 2 };

/// Appends one extrapolated layer along +x and +y.
[[nodiscard]] FieldF pad_xy(const FieldF& merged, PadKind kind);

/// Drops the last x/y layer (inverse of pad_xy's shape change).
[[nodiscard]] FieldF strip_pad_xy(const FieldF& padded);

/// Appends one extrapolated layer along every axis whose extent is odd, so a
/// following restrict_half averages only full 2x2x2 boxes — the 3-axis
/// generalization of pad_xy used by the adaptive container's per-brick
/// restriction chain (the clipped-box average at an odd edge is exactly the
/// boundary artifact the paper's padding improvement removes).
[[nodiscard]] FieldF pad_to_even(const FieldF& f, PadKind kind);

/// Size overhead factor of padding, (u+1)^2 / u^2 (paper §III-A).
[[nodiscard]] double padding_overhead(index_t u);

}  // namespace mrc
