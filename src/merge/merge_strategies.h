#pragma once

// The three unit-block arrangements compared in the paper (Fig. 6, part 2):
//
//  * linear merge — concatenate blocks along z into a u × u × (u·n) array.
//    Two tiny dimensions, but consecutive blocks stay in extraction order.
//    This is the baseline our SZ3MR builds on (padding fixes the tiny dims).
//  * stack merge (AMRIC) — place blocks into a near-cubic arrangement.
//    Balanced extents, but stacks non-neighboring blocks against each other,
//    creating unsmooth internal boundaries. Blocks are placed in Morton
//    order of their original coordinates (AMRIC's locality-preserving
//    rearrangement — the "more complex and computationally intensive"
//    pre-process of Table IV).
//  * TAC merge — recursive bisection of the occupied block bounding box;
//    fully-occupied sub-boxes become one contiguous 3-D region each.
//    Preserves real adjacency but emits many variably-shaped boxes, each
//    compressed separately (TAC's encoding overhead).

#include <vector>

#include "merge/padding.h"
#include "merge/unit_blocks.h"

namespace mrc {

enum class MergeKind : std::uint8_t { linear = 0, stack = 1, tac = 2 };

/// u × u × (u·n) concatenation along z, in block_ids order.
[[nodiscard]] FieldF merge_linear(const UnitBlockSet& set);
/// Inverse: splits the merged array back into `set.data` (ids must be set).
void unmerge_linear(const FieldF& merged, UnitBlockSet& set);

/// Near-cubic stacking in Morton order; empty tail slots replicate the last
/// block so the tail stays smooth.
[[nodiscard]] FieldF merge_stack(const UnitBlockSet& set);
void unmerge_stack(const FieldF& merged, UnitBlockSet& set);

/// Single-pass gathers used on the in-situ hot path (Table IV): they read
/// straight from the level grid into the merged layout, so "collect data to
/// the compression buffer" costs exactly one pass. `set` only needs ids and
/// geometry (its payload vector stays untouched).
///
/// gather_linear optionally fuses the +x/+y padding layer into the same
/// pass; the result is bit-identical to pad_xy(merge_linear(set), kind).
[[nodiscard]] FieldF gather_linear(const LevelData& level, const UnitBlockSet& set,
                                   bool pad, PadKind kind);
/// Morton-ordered stacked gather (AMRIC's arrangement) in one pass —
/// inherently scattered writes plus the ordering pass.
[[nodiscard]] FieldF gather_stack(const LevelData& level, const UnitBlockSet& set);

/// Occupancy-only extraction: fills ids and geometry without copying data.
[[nodiscard]] UnitBlockSet scan_unit_blocks(const LevelData& level, index_t unit);

/// One contiguous region produced by the TAC-style recursive merge.
struct TacBox {
  Coord3 origin_blocks;  ///< position in the unit-block grid
  Dim3 extent_blocks;    ///< size in unit blocks
  FieldF data;           ///< gathered samples, extent_blocks * u per axis
};

[[nodiscard]] std::vector<TacBox> merge_tac(const UnitBlockSet& set);
void unmerge_tac(std::span<const TacBox> boxes, UnitBlockSet& set);

}  // namespace mrc
