#pragma once

// Uniform partitioning of one multi-resolution level into u^3 "unit blocks"
// (paper Fig. 6, part 1). Only occupied blocks (valid cells under the level
// mask) are extracted; the set remembers where each block came from so the
// inverse scatter is exact.

#include <vector>

#include "grid/multires.h"

namespace mrc {

struct UnitBlockSet {
  index_t unit = 0;        ///< u — unit block edge length
  Dim3 level_dims;         ///< extents of the level grid
  Dim3 block_grid;         ///< number of unit blocks per axis
  std::vector<index_t> block_ids;  ///< occupied blocks, ascending linear ids
  std::vector<float> data;         ///< block-major payload, u^3 per block

  [[nodiscard]] index_t block_count() const {
    return static_cast<index_t>(block_ids.size());
  }
  [[nodiscard]] index_t values_per_block() const { return unit * unit * unit; }
  [[nodiscard]] Coord3 block_coord(index_t id) const {
    return {id % block_grid.nx, (id / block_grid.nx) % block_grid.ny,
            id / (block_grid.nx * block_grid.ny)};
  }
};

/// Extracts occupied unit blocks from a level. Level extents must be
/// divisible by `unit` (guaranteed when unit = hierarchy block size / ratio).
[[nodiscard]] UnitBlockSet extract_unit_blocks(const LevelData& level, index_t unit);

/// Inverse of extract: writes blocks back into `level.data` and sets
/// `level.mask` over the covered cells. `level` must be pre-sized.
void scatter_unit_blocks(const UnitBlockSet& set, LevelData& level);

}  // namespace mrc
