#pragma once

// Matter power-spectrum analysis for the Nyx experiments (paper Table VI):
// radially binned P(k) = <|F(k)|^2> and the relative error of decompressed
// vs original spectra for all k below a cutoff (the paper uses k < 10 and a
// 1 % acceptability threshold).

#include <vector>

#include "grid/field.h"

namespace mrc::metrics {

/// Radially binned power spectrum; bin i holds the average |F(k)|^2 over
/// integer shells |k| ∈ [i - 0.5, i + 0.5). Extents must be powers of two.
[[nodiscard]] std::vector<double> power_spectrum(const FieldF& f, int n_bins);

struct SpectrumError {
  double max_rel = 0.0;
  double avg_rel = 0.0;
};

/// Relative spectrum error |p'(k)/p(k) - 1| over bins 1..k_max-1.
[[nodiscard]] SpectrumError spectrum_error(const FieldF& original, const FieldF& test,
                                           int k_max = 10);

}  // namespace mrc::metrics
