#include "metrics/ssim.h"

#include <algorithm>
#include <cmath>

#include "grid/field_ops.h"

namespace mrc::metrics {

namespace {

double ssim_impl(const FieldF& a, const FieldF& b, index_t wx, index_t wy, index_t wz,
                 index_t stride, double k1, double k2) {
  const Dim3 d = a.dims();
  const double range = a.value_range();
  const double c1 = (k1 * range) * (k1 * range);
  const double c2 = (k2 * range) * (k2 * range);
  const double inv_n = 1.0 / static_cast<double>(wx * wy * wz);

  double total = 0.0;
  index_t count = 0;

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static) reduction(+ : total, count)
#endif
  for (index_t z0 = 0; z0 <= d.nz - wz; z0 += stride)
    for (index_t y0 = 0; y0 <= d.ny - wy; y0 += stride)
      for (index_t x0 = 0; x0 <= d.nx - wx; x0 += stride) {
        double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
        for (index_t k = 0; k < wz; ++k)
          for (index_t j = 0; j < wy; ++j)
            for (index_t i = 0; i < wx; ++i) {
              const double va = a.at(x0 + i, y0 + j, z0 + k);
              const double vb = b.at(x0 + i, y0 + j, z0 + k);
              sa += va;
              sb += vb;
              saa += va * va;
              sbb += vb * vb;
              sab += va * vb;
            }
        const double mu_a = sa * inv_n;
        const double mu_b = sb * inv_n;
        const double var_a = std::max(0.0, saa * inv_n - mu_a * mu_a);
        const double var_b = std::max(0.0, sbb * inv_n - mu_b * mu_b);
        const double cov = sab * inv_n - mu_a * mu_b;
        const double s = ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) /
                         ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
        total += s;
        ++count;
      }
  MRC_REQUIRE(count > 0, "field smaller than SSIM window");
  return total / static_cast<double>(count);
}

}  // namespace

double ssim(const FieldF& reference, const FieldF& test, const SsimConfig& cfg) {
  MRC_REQUIRE(reference.dims() == test.dims(), "dimension mismatch");
  const Dim3 d = reference.dims();
  const index_t wx = std::min(cfg.window, d.nx);
  const index_t wy = std::min(cfg.window, d.ny);
  const index_t wz = std::min(cfg.window, d.nz);
  return ssim_impl(reference, test, wx, wy, wz, std::max<index_t>(cfg.stride, 1), cfg.k1,
                   cfg.k2);
}

double ssim_central_slice(const FieldF& reference, const FieldF& test) {
  MRC_REQUIRE(reference.dims() == test.dims(), "dimension mismatch");
  const FieldF ra = central_slice_z(reference);
  const FieldF rb = central_slice_z(test);
  const Dim3 d = ra.dims();
  const index_t w = std::min<index_t>(8, std::min(d.nx, d.ny));
  return ssim_impl(ra, rb, w, w, 1, 1, 0.01, 0.03);
}

}  // namespace mrc::metrics
