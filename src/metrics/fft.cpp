#include "metrics/fft.h"

#include <cmath>
#include <numbers>

#include "common/require.h"

namespace mrc::metrics {

void fft_1d(cplx* data, std::size_t n, bool inverse) {
  MRC_REQUIRE(is_pow2(static_cast<index_t>(n)), "FFT length must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = data[i + j];
        const cplx v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= inv_n;
  }
}

void fft_3d(std::vector<cplx>& data, Dim3 dims, bool inverse) {
  MRC_REQUIRE(static_cast<index_t>(data.size()) == dims.size(), "size mismatch");
  MRC_REQUIRE(is_pow2(dims.nx) && is_pow2(dims.ny) && is_pow2(dims.nz),
              "extents must be powers of two");
  const index_t nx = dims.nx, ny = dims.ny, nz = dims.nz;

  // Along x: contiguous lines.
#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t l = 0; l < ny * nz; ++l)
    fft_1d(data.data() + l * nx, static_cast<std::size_t>(nx), inverse);

  // Along y: gather/scatter strided lines.
#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < nz; ++z) {
    std::vector<cplx> line(static_cast<std::size_t>(ny));
    for (index_t x = 0; x < nx; ++x) {
      for (index_t y = 0; y < ny; ++y) line[static_cast<std::size_t>(y)] = data[static_cast<std::size_t>(dims.index(x, y, z))];
      fft_1d(line.data(), static_cast<std::size_t>(ny), inverse);
      for (index_t y = 0; y < ny; ++y) data[static_cast<std::size_t>(dims.index(x, y, z))] = line[static_cast<std::size_t>(y)];
    }
  }

  // Along z.
#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t y = 0; y < ny; ++y) {
    std::vector<cplx> line(static_cast<std::size_t>(nz));
    for (index_t x = 0; x < nx; ++x) {
      for (index_t z = 0; z < nz; ++z) line[static_cast<std::size_t>(z)] = data[static_cast<std::size_t>(dims.index(x, y, z))];
      fft_1d(line.data(), static_cast<std::size_t>(nz), inverse);
      for (index_t z = 0; z < nz; ++z) data[static_cast<std::size_t>(dims.index(x, y, z))] = line[static_cast<std::size_t>(z)];
    }
  }
}

}  // namespace mrc::metrics
