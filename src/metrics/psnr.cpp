#include "metrics/psnr.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mrc::metrics {

ErrorStats error_stats(std::span<const float> reference, std::span<const float> test) {
  MRC_REQUIRE(reference.size() == test.size() && !reference.empty(),
              "mismatched or empty inputs");
  double mse = 0.0, max_err = 0.0;
  float lo = reference[0], hi = reference[0];
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double diff = static_cast<double>(reference[i]) - static_cast<double>(test[i]);
    mse += diff * diff;
    max_err = std::max(max_err, std::abs(diff));
    lo = std::min(lo, reference[i]);
    hi = std::max(hi, reference[i]);
  }
  ErrorStats s;
  s.mse = mse / static_cast<double>(reference.size());
  s.rmse = std::sqrt(s.mse);
  s.max_abs_err = max_err;
  s.value_range = static_cast<double>(hi) - static_cast<double>(lo);
  s.psnr = s.rmse > 0.0 && s.value_range > 0.0
               ? 20.0 * std::log10(s.value_range / s.rmse)
               : std::numeric_limits<double>::infinity();
  return s;
}

ErrorStats error_stats(const FieldF& reference, const FieldF& test) {
  MRC_REQUIRE(reference.dims() == test.dims(), "dimension mismatch");
  return error_stats(reference.span(), test.span());
}

double psnr(const FieldF& reference, const FieldF& test) {
  return error_stats(reference, test).psnr;
}

}  // namespace mrc::metrics
