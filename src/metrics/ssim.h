#pragma once

// Structural Similarity for 3-D volumes and 2-D slices. The paper's SSIM is
// measured on rendered images; volume SSIM tracks the same artifacts
// (blocking, oversmoothing) directly on the data — see DESIGN.md §4.

#include "grid/field.h"

namespace mrc::metrics {

struct SsimConfig {
  index_t window = 7;   ///< cubic window edge
  index_t stride = 2;   ///< window placement stride (1 = dense)
  double k1 = 0.01;
  double k2 = 0.03;
};

/// Mean SSIM over sliding windows; dynamic range from the reference field.
[[nodiscard]] double ssim(const FieldF& reference, const FieldF& test,
                          const SsimConfig& cfg = {});

/// SSIM of the central z-slice with a dense 2-D 8x8 window — closest analog
/// of the paper's image-based SSIM values.
[[nodiscard]] double ssim_central_slice(const FieldF& reference, const FieldF& test);

}  // namespace mrc::metrics
