#include "metrics/spectrum.h"

#include <algorithm>
#include <cmath>

#include "metrics/fft.h"

namespace mrc::metrics {

std::vector<double> power_spectrum(const FieldF& f, int n_bins) {
  MRC_REQUIRE(n_bins >= 2, "need at least two bins");
  const Dim3 d = f.dims();
  std::vector<cplx> data(static_cast<std::size_t>(d.size()));
  // Work on the density *contrast* so P(k) is scale-comparable across error
  // bounds (standard cosmology practice: delta = rho/mean - 1).
  double mean = 0.0;
  for (index_t i = 0; i < f.size(); ++i) mean += f[i];
  mean /= static_cast<double>(f.size());
  const double inv_mean = mean != 0.0 ? 1.0 / mean : 1.0;
  for (index_t i = 0; i < f.size(); ++i)
    data[static_cast<std::size_t>(i)] = cplx(f[i] * inv_mean - 1.0, 0.0);

  fft_3d(data, d, /*inverse=*/false);

  std::vector<double> sum(static_cast<std::size_t>(n_bins), 0.0);
  std::vector<std::int64_t> count(static_cast<std::size_t>(n_bins), 0);
  auto wrapped = [](index_t i, index_t n) {
    return static_cast<double>(i <= n / 2 ? i : i - n);
  };
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x) {
        const double kx = wrapped(x, d.nx);
        const double ky = wrapped(y, d.ny);
        const double kz = wrapped(z, d.nz);
        const auto bin = static_cast<int>(
            std::llround(std::sqrt(kx * kx + ky * ky + kz * kz)));
        if (bin >= n_bins) continue;
        const cplx v = data[static_cast<std::size_t>(d.index(x, y, z))];
        sum[static_cast<std::size_t>(bin)] += std::norm(v);
        ++count[static_cast<std::size_t>(bin)];
      }
  std::vector<double> spectrum(static_cast<std::size_t>(n_bins), 0.0);
  for (int i = 0; i < n_bins; ++i)
    if (count[static_cast<std::size_t>(i)] > 0)
      spectrum[static_cast<std::size_t>(i)] =
          sum[static_cast<std::size_t>(i)] / static_cast<double>(count[static_cast<std::size_t>(i)]);
  return spectrum;
}

SpectrumError spectrum_error(const FieldF& original, const FieldF& test, int k_max) {
  MRC_REQUIRE(original.dims() == test.dims(), "dimension mismatch");
  const auto po = power_spectrum(original, k_max + 1);
  const auto pt = power_spectrum(test, k_max + 1);
  SpectrumError e;
  int n = 0;
  for (int k = 1; k < k_max; ++k) {
    const double denom = po[static_cast<std::size_t>(k)];
    if (denom <= 0.0) continue;
    const double rel = std::abs(pt[static_cast<std::size_t>(k)] / denom - 1.0);
    e.max_rel = std::max(e.max_rel, rel);
    e.avg_rel += rel;
    ++n;
  }
  if (n > 0) e.avg_rel /= static_cast<double>(n);
  return e;
}

}  // namespace mrc::metrics
