#pragma once

// Minimal in-house FFT (iterative radix-2) powering the power-spectrum
// analysis and the Gaussian-random-field generators. Extents must be powers
// of two.

#include <complex>
#include <vector>

#include "common/dims.h"

namespace mrc::metrics {

using cplx = std::complex<double>;

/// In-place 1-D FFT, n a power of two. inverse=true applies 1/n scaling.
void fft_1d(cplx* data, std::size_t n, bool inverse);

/// In-place 3-D FFT over row-major (x fastest) data.
void fft_3d(std::vector<cplx>& data, Dim3 dims, bool inverse);

[[nodiscard]] constexpr bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace mrc::metrics
