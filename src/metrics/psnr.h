#pragma once

// Pointwise quality metrics in the convention of the lossy-compression
// literature: PSNR = 20*log10(value_range / RMSE) against the reference's
// value range.

#include <span>

#include "grid/field.h"

namespace mrc::metrics {

struct ErrorStats {
  double mse = 0.0;
  double rmse = 0.0;
  double psnr = 0.0;
  double max_abs_err = 0.0;
  double value_range = 0.0;  ///< of the reference data
};

[[nodiscard]] ErrorStats error_stats(std::span<const float> reference,
                                     std::span<const float> test);

[[nodiscard]] ErrorStats error_stats(const FieldF& reference, const FieldF& test);

[[nodiscard]] double psnr(const FieldF& reference, const FieldF& test);

}  // namespace mrc::metrics
