#include "pyramid/pyramid.h"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"
#include "grid/field_ops.h"
#include "obs/obs.h"

namespace mrc::pyramid {

namespace {

/// Smallest possible level record: 5 single-byte varints + three f32s.
inline constexpr std::size_t kMinLevelRecord = 17;

}  // namespace

double prolong_error(const FieldF& coarse, const FieldF& fine, exec::ThreadPool& pool) {
  const index_t nz = fine.dims().nz;
  const index_t slabs = std::min<index_t>(nz, 4 * pool.size());
  std::vector<double> errs(static_cast<std::size_t>(slabs), 0.0);
  pool.parallel_for(slabs, [&](index_t s) {
    errs[static_cast<std::size_t>(s)] = prolong_error_slab(
        coarse, fine, s * nz / slabs, (s + 1) * nz / slabs);
  });
  return *std::max_element(errs.begin(), errs.end());
}

std::span<const std::byte> Index::level_stream(std::span<const std::byte> stream,
                                               std::size_t l) const {
  MRC_REQUIRE(l < levels.size(), "level_stream: level out of range");
  const LevelEntry& e = levels[l];
  return stream.subspan(payload_offset + static_cast<std::size_t>(e.offset),
                        static_cast<std::size_t>(e.length));
}

Dim3 level_dims(Dim3 fine, int level) {
  MRC_REQUIRE(level >= 0 && level < kMaxLevels, "bad pyramid level");
  Dim3 d = fine;
  for (int l = 0; l < level; ++l) d = blocks_for(d, 2);
  return d;
}

int auto_levels(Dim3 fine, index_t brick) {
  int n = 1;
  Dim3 d = fine;
  while (n < kMaxLevels && d.max_extent() > brick) {
    d = blocks_for(d, 2);
    ++n;
  }
  return n;
}

Bytes build(const FieldF& f, double abs_eb, const Config& cfg) {
  MRC_REQUIRE(!f.empty(), "pyramid: empty field");
  MRC_REQUIRE(abs_eb > 0.0, "pyramid: error bound must be positive");
  MRC_REQUIRE(cfg.brick >= 1, "pyramid: brick edge must be >= 1");
  MRC_REQUIRE(cfg.levels >= 0 && cfg.levels <= kMaxLevels,
              "pyramid: level count must be in [0, " + std::to_string(kMaxLevels) + "]");
  const Dim3 d = f.dims();
  const int n_levels = cfg.levels == 0 ? auto_levels(d, cfg.brick) : cfg.levels;

  tiled::Config tc;
  tc.codec = cfg.codec;
  tc.tuning = cfg.tuning;
  tc.brick = cfg.brick;
  tc.threads = cfg.threads;

  // restrict_half chain; every level's bricks compress in parallel on the
  // exec pool inside tiled::compress (level 0 holds 8/7 of the total work,
  // so within-level parallelism is the right axis), and the per-level error
  // measurement slabs across a pool of the same width.
  std::vector<Bytes> streams(static_cast<std::size_t>(n_levels));
  std::vector<LevelEntry> entries(static_cast<std::size_t>(n_levels));
  exec::ThreadPool pool(cfg.threads);
  FieldF coarse;  // level l's data for l >= 1
  for (int l = 0; l < n_levels; ++l) {
    if (l > 0) coarse = restrict_half(l == 1 ? f : coarse);
    const FieldF& level = l == 0 ? f : coarse;

    LevelEntry& e = entries[static_cast<std::size_t>(l)];
    e.dims = level.dims();
    const auto [lo, hi] = level.min_max();
    e.vmin = lo;
    e.vmax = hi;
    // The level's fitness for LOD selection: how far a rendering served from
    // this level can sit from the finest grid. Downsampling error is
    // measured against the pre-compression data; the codec adds at most eb.
    e.approx_err = static_cast<float>(
        l == 0 ? abs_eb : prolong_error(level, f, pool) + abs_eb);
    OBS_SPAN("pyramid.level_compress");
    streams[static_cast<std::size_t>(l)] = tiled::compress(level, abs_eb, tc);
  }

  std::uint64_t payload_bytes = 0;
  for (int l = 0; l < n_levels; ++l) {
    auto& e = entries[static_cast<std::size_t>(l)];
    e.offset = payload_bytes;
    e.length = streams[static_cast<std::size_t>(l)].size();
    payload_bytes += e.length;
  }

  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, kPyramidMagic, d, abs_eb);
  w.put_varint(static_cast<std::uint64_t>(n_levels));
  w.put_varint(payload_bytes);
  for (const LevelEntry& e : entries) {
    w.put_varint(e.offset);
    w.put_varint(e.length);
    w.put_varint(static_cast<std::uint64_t>(e.dims.nx));
    w.put_varint(static_cast<std::uint64_t>(e.dims.ny));
    w.put_varint(static_cast<std::uint64_t>(e.dims.nz));
    w.put(e.vmin);
    w.put(e.vmax);
    w.put(e.approx_err);
  }
  for (const Bytes& s : streams) w.put_bytes(s);
  return out;
}

Index read_geometry(std::span<const std::byte> stream) {
  ByteReader r(stream);
  const auto header = detail::read_header(r, kPyramidMagic, "pyramid");

  Index idx;
  idx.dims = header.dims;
  idx.eb = header.eb;
  const std::uint64_t n_levels = r.get_varint();
  // A hostile stream can claim any level count; the cap plus the
  // records-must-fit check bound every allocation before it is sized.
  if (n_levels < 1 || n_levels > static_cast<std::uint64_t>(kMaxLevels))
    throw CodecError("pyramid: bad level count");
  idx.payload_bytes = r.get_varint();
  if (n_levels > r.remaining() / kMinLevelRecord)
    throw CodecError("pyramid: level count exceeds stream size");

  idx.levels.resize(static_cast<std::size_t>(n_levels));
  Dim3 expect = idx.dims;
  std::uint64_t next_offset = 0;
  for (std::size_t l = 0; l < idx.levels.size(); ++l) {
    LevelEntry& e = idx.levels[l];
    e.offset = r.get_varint();
    e.length = r.get_varint();
    e.dims.nx = static_cast<index_t>(r.get_varint());
    e.dims.ny = static_cast<index_t>(r.get_varint());
    e.dims.nz = static_cast<index_t>(r.get_varint());
    e.vmin = r.get<float>();
    e.vmax = r.get<float>();
    e.approx_err = r.get<float>();

    // Levels are pinned to the halving chain and must tile the payload
    // exactly — anything else (overlapping records, gaps, extents that are
    // not the parent's half) means a corrupt or hostile table.
    if (e.dims != expect)
      throw CodecError("pyramid: level " + std::to_string(l) + " extents " +
                       e.dims.str() + " off the halving chain (want " + expect.str() +
                       ")");
    if (e.offset != next_offset || e.length == 0 ||
        e.length > idx.payload_bytes - e.offset)
      throw CodecError("pyramid: level " + std::to_string(l) +
                       " offset/length out of range");
    next_offset = e.offset + e.length;
    expect = blocks_for(expect, 2);
  }
  if (next_offset != idx.payload_bytes)
    throw CodecError("pyramid: level streams do not tile the payload");

  idx.payload_offset = r.position();
  if (r.remaining() < idx.payload_bytes) throw CodecError("pyramid: payload truncated");

  // Level 0's tiled preamble (O(1) peek) supplies the codec + brick edge and
  // cross-checks the finest extents and error bound.
  const tiled::Index fine = tiled::read_geometry(idx.level_stream(stream, 0));
  if (fine.dims != idx.dims)
    throw CodecError("pyramid: level 0 stream extents disagree with the level table");
  if (fine.eb != idx.eb)
    throw CodecError("pyramid: level 0 stream error bound disagrees with the header");
  idx.codec = fine.codec;
  idx.codec_magic = fine.codec_magic;
  idx.brick = fine.brick;
  return idx;
}

Index read_index(std::span<const std::byte> stream) {
  Index idx = read_geometry(stream);
  // Every nested stream must be a tiled stream of exactly the level table's
  // extents, same codec, same bound — a mismatch means the table points at
  // the wrong bytes.
  for (std::size_t l = 1; l < idx.levels.size(); ++l) {
    const tiled::Index li = tiled::read_geometry(idx.level_stream(stream, l));
    if (li.dims != idx.levels[l].dims)
      throw CodecError("pyramid: level " + std::to_string(l) +
                       " stream extents disagree with the level table");
    if (li.codec_magic != idx.codec_magic)
      throw CodecError("pyramid: level " + std::to_string(l) + " codec mismatch");
    if (li.eb != idx.eb)
      throw CodecError("pyramid: level " + std::to_string(l) + " error bound mismatch");
  }
  return idx;
}

FieldF decompress_level(std::span<const std::byte> stream, int level, int threads) {
  const Index idx = read_index(stream);
  MRC_REQUIRE(level >= 0 && level < static_cast<int>(idx.levels.size()),
              "pyramid: level out of range");
  OBS_SPAN("pyramid.level_decode");
  return tiled::decompress(idx.level_stream(stream, static_cast<std::size_t>(level)),
                           threads);
}

tiled::RegionRead read_region(std::span<const std::byte> stream, int level,
                              const tiled::Box& region, int threads) {
  const Index idx = read_index(stream);
  MRC_REQUIRE(level >= 0 && level < static_cast<int>(idx.levels.size()),
              "pyramid: level out of range");
  return tiled::read_region(idx.level_stream(stream, static_cast<std::size_t>(level)),
                            region, threads);
}

}  // namespace mrc::pyramid
