#pragma once

// LOD pyramid container: the field stored at resolutions 1, 1/2, 1/4, ...
// so a renderer (or the serve-layer Dataset) can pull the cheapest level
// that satisfies a sample or error budget instead of always paying for the
// finest grid. Every level is a complete brick-tiled stream (tiled/tiled.h)
// — any registered codec, parallel per-brick compression on the exec pool,
// random-access region reads — and the pyramid adds a small validated level
// table in front of the concatenated level streams.
//
// Stream layout (container header v4 under kPyramidMagic):
//   shared container header      finest-grid extents + absolute error bound
//   varint  n_levels             >= 1, halving chain
//   varint  payload_bytes        total size of the level payload section
//   per level:                   varint offset, varint length,
//                                varint nx,ny,nz (level extents),
//                                f32 vmin, f32 vmax, f32 approx_err
//   payload                      concatenated tiled (MRCT) streams, finest first
//
// Level extents are pinned to the halving chain — level l must have extents
// ceil_div(dims, 2^l) — and the level streams must tile the payload exactly
// (contiguous, non-overlapping, summing to payload_bytes), so hostile level
// counts, overlapping level records, or truncated tails all fail with a
// clean CodecError before any nested stream is touched, and never size an
// allocation from an unvalidated claim.
//
// `approx_err` is the level's fitness for adaptive LOD selection: an upper
// bound on max|prolong_trilinear(level) - finest| + codec eb, measured at
// build time. Level 0's approx_err is the codec error bound itself.

#include <span>
#include <string>
#include <vector>

#include "tiled/tiled.h"

namespace mrc::exec {
class ThreadPool;
}

namespace mrc::pyramid {

/// Container-header stream id of a pyramid stream.
inline constexpr std::uint32_t kPyramidMagic = 0x5043'524d;  // "MRCP"

/// Hard cap on the level chain: 2^40 exceeds any index_t extent, so deeper
/// claims are hostile by construction.
inline constexpr int kMaxLevels = 40;

struct Config {
  std::string codec = "interp";  ///< any registry name, applied per brick
  CodecTuning tuning;            ///< per-brick codec tuning
  index_t brick = tiled::kDefaultBrick;  ///< brick edge of every level
  int threads = 1;               ///< exec-pool lanes per level; 0 = hardware
  /// Level count; 0 = auto: halve until the coarsest level fits one brick.
  int levels = 0;
};

/// One record of the level table.
struct LevelEntry {
  std::uint64_t offset = 0;  ///< within the payload section
  std::uint64_t length = 0;  ///< bytes of this level's tiled stream
  Dim3 dims;                 ///< level extents (= ceil_div(fine, 2^level))
  float vmin = 0.0f;         ///< value range over the level's samples
  float vmax = 0.0f;
  float approx_err = 0.0f;   ///< LOD error bound vs the finest grid (above)
};

/// Parsed + validated level table of a pyramid stream.
struct Index {
  Dim3 dims;          ///< finest-grid extents
  double eb = 0.0;    ///< absolute codec error bound (every level)
  std::string codec;  ///< per-brick codec of level 0 (all levels match)
  std::uint32_t codec_magic = 0;
  index_t brick = 0;  ///< brick edge of level 0
  std::size_t payload_offset = 0;  ///< absolute offset of the payload section
  std::uint64_t payload_bytes = 0;
  std::vector<LevelEntry> levels;  ///< [0] = finest

  /// The sub-span of `stream` holding level `l`'s complete tiled stream.
  [[nodiscard]] std::span<const std::byte> level_stream(
      std::span<const std::byte> stream, std::size_t l) const;
};

/// Extents of level `l` of a pyramid over a `fine`-extent field.
[[nodiscard]] Dim3 level_dims(Dim3 fine, int level);

/// The auto level count: halve until the coarsest level fits in one brick
/// (always >= 1, capped at kMaxLevels).
[[nodiscard]] int auto_levels(Dim3 fine, index_t brick);

/// Max |prolong_trilinear(coarse, fine.dims()) - fine|, z-slabbed across the
/// pool. The LOD-error measurement shared by the pyramid and progressive
/// builders — a full finest-resolution pass per level, so it gets the same
/// parallelism as the compression itself.
[[nodiscard]] double prolong_error(const FieldF& coarse, const FieldF& fine,
                                   exec::ThreadPool& pool);

/// Builds the pyramid: restrict_half chain from `f`, every level brick-tiled
/// and compressed in parallel on the exec pool under the same absolute error
/// bound. Deterministic: byte-identical for any thread count.
[[nodiscard]] Bytes build(const FieldF& f, double abs_eb, const Config& cfg = {});

/// Parses and validates header + level table in O(levels) without touching
/// any nested stream (api::info's peek; also grabs level 0's codec + brick
/// via the tiled O(1) geometry peek). Throws CodecError on malformed input.
[[nodiscard]] Index read_geometry(std::span<const std::byte> stream);

/// read_geometry plus validation of every level's nested tiled preamble
/// (magic, extents, codec and eb agreement with the level table).
[[nodiscard]] Index read_index(std::span<const std::byte> stream);

/// Decodes level `level` in full (parallel across bricks; threads = 0 means
/// hardware).
[[nodiscard]] FieldF decompress_level(std::span<const std::byte> stream, int level,
                                      int threads = 1);

/// Reads `region` (in level-`level` coordinates) out of one level, decoding
/// only the intersecting bricks — bit-identical to the same window of
/// decompress_level.
[[nodiscard]] tiled::RegionRead read_region(std::span<const std::byte> stream, int level,
                                            const tiled::Box& region, int threads = 1);

}  // namespace mrc::pyramid
