#pragma once

// Dependency-free parallel execution engine — the library's scheduling
// primitive. A fixed-size std::thread pool with two entry points:
//
//   * submit(fn)          — run a task asynchronously, get a std::future
//   * parallel_for(n, fn) — dynamic (work-stealing-counter) loop over [0, n)
//
// Tasks carry a two-level priority: Priority::high (the default — interactive
// work, parallel_for lanes) always runs before Priority::low (advisory work
// like serve-layer prefetch). Workers drain the high queue first, so a burst
// of queued prefetch decodes never delays a demand region read behind it —
// this is the backpressure lever the serve::Server admission tier sits on.
//
// A pool of size N owns N-1 worker threads; the calling thread is the N-th
// lane, so ThreadPool(1) spawns nothing and runs everything inline — serial
// call sites pay zero overhead. Construction with threads=0 sizes the pool
// to the hardware. Pools are cheap enough to build per operation (thread
// spawn is microseconds against the millisecond-scale compression work they
// schedule), so call sites that already know their width — the tiled
// container, per-level snapshot encoding, chunked codecs — construct one
// locally instead of sharing global mutable state.
//
// Exceptions thrown by tasks propagate: submit() delivers them through the
// future, parallel_for() rethrows the first one after all lanes have
// drained (remaining iterations may be skipped — fail fast, never deadlock).
//
// Request-context propagation: every posted task captures the submitter's
// obs::RequestCtx (trace id + per-request counters) and re-installs it on
// the executing lane — both priority classes, the inline single-lane path
// (trivially: it runs on the submitter's thread), and parallel_for lanes.
// Spans recorded inside a task therefore carry the trace id of the request
// that queued it, and the flight recorder sees a demand task's queue wait
// attributed to its request. Tasks posted outside any request context by a
// process with obs disabled are posted unwrapped — zero added cost.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/dims.h"

namespace mrc::exec {

/// Usable hardware concurrency; always >= 1 (hardware_concurrency() may
/// report 0 on exotic platforms).
[[nodiscard]] int hardware_threads();

/// True while the calling thread is executing work scheduled by any
/// ThreadPool — a worker running a task, a parallel_for lane (including the
/// calling thread's own lane, and the inline single-lane path), or an
/// inline post() on a workerless pool. Nested operations that could fan out
/// again (the sharded entropy decode) consult this to run serially instead:
/// a nested pool's lanes blocking on futures queued behind the outer pool's
/// own work is a deadlock, and the outer parallel_for is already using the
/// machine.
[[nodiscard]] bool on_pool_lane();

/// Scheduling class of a pool task. High tasks preempt (queue ahead of) low
/// ones; within a class the queue is FIFO.
enum class Priority : std::uint8_t { high, low };

class ThreadPool {
 public:
  /// A pool with `threads` execution lanes (calling thread included);
  /// 0 means hardware_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes (worker threads + the calling thread), >= 1.
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Schedules `fn` on a worker (inline when the pool has no workers) and
  /// returns the future of its result.
  template <typename F>
  [[nodiscard]] auto submit(F fn) -> std::future<std::invoke_result_t<F>> {
    return submit(Priority::high, std::move(fn));
  }

  /// submit with an explicit scheduling class; low-priority tasks wait for
  /// every queued high-priority task.
  template <typename F>
  [[nodiscard]] auto submit(Priority p, F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); }, p);
    return fut;
  }

  /// Tasks queued but not yet picked up by a worker (both classes) — the
  /// serve::Server stats surface reports this as scheduler backlog.
  [[nodiscard]] std::size_t queued() const;

  /// Per-class backlog: demand (high) vs advisory (low) tasks waiting. The
  /// serve stats_ok frame carries both, so a client can tell "the server is
  /// busy warming bricks" from "demand reads are queueing".
  [[nodiscard]] std::size_t queued_high() const;
  [[nodiscard]] std::size_t queued_low() const;

  /// Runs body(i) for i in [0, n) across all lanes, grabbing `grain`-sized
  /// chunks off a shared counter (dynamic load balancing for uneven work
  /// like variable-entropy bricks). Blocks until done; rethrows the first
  /// task exception.
  void parallel_for(index_t n, const std::function<void(index_t)>& body,
                    index_t grain = 1);

 private:
  void post(std::function<void()> fn, Priority p = Priority::high);
  void worker_loop();
  void update_queue_gauges() const;  ///< obs queue-depth gauges; holds mu_

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;      ///< Priority::high, FIFO
  std::deque<std::function<void()>> low_queue_;  ///< Priority::low, FIFO
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mrc::exec
