#pragma once

// Dependency-free parallel execution engine — the library's scheduling
// primitive. A fixed-size std::thread pool with two entry points:
//
//   * submit(fn)          — run a task asynchronously, get a std::future
//   * parallel_for(n, fn) — dynamic (work-stealing-counter) loop over [0, n)
//
// A pool of size N owns N-1 worker threads; the calling thread is the N-th
// lane, so ThreadPool(1) spawns nothing and runs everything inline — serial
// call sites pay zero overhead. Construction with threads=0 sizes the pool
// to the hardware. Pools are cheap enough to build per operation (thread
// spawn is microseconds against the millisecond-scale compression work they
// schedule), so call sites that already know their width — the tiled
// container, per-level snapshot encoding, chunked codecs — construct one
// locally instead of sharing global mutable state.
//
// Exceptions thrown by tasks propagate: submit() delivers them through the
// future, parallel_for() rethrows the first one after all lanes have
// drained (remaining iterations may be skipped — fail fast, never deadlock).

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/dims.h"

namespace mrc::exec {

/// Usable hardware concurrency; always >= 1 (hardware_concurrency() may
/// report 0 on exotic platforms).
[[nodiscard]] int hardware_threads();

class ThreadPool {
 public:
  /// A pool with `threads` execution lanes (calling thread included);
  /// 0 means hardware_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes (worker threads + the calling thread), >= 1.
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Schedules `fn` on a worker (inline when the pool has no workers) and
  /// returns the future of its result.
  template <typename F>
  [[nodiscard]] auto submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  /// Runs body(i) for i in [0, n) across all lanes, grabbing `grain`-sized
  /// chunks off a shared counter (dynamic load balancing for uneven work
  /// like variable-entropy bricks). Blocks until done; rethrows the first
  /// task exception.
  void parallel_for(index_t n, const std::function<void(index_t)>& body,
                    index_t grain = 1);

 private:
  void post(std::function<void()> fn);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mrc::exec
