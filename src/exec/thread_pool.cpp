#include "exec/thread_pool.h"

#include <atomic>
#include <algorithm>

#include "common/require.h"
#include "obs/obs.h"

namespace mrc::exec {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

thread_local bool t_on_pool_lane = false;

/// Marks the current thread as a pool lane for a scope; restores the prior
/// value so nested pools (an inner pool built on an outer worker) unwind
/// correctly.
struct LaneScope {
  bool prev = t_on_pool_lane;
  LaneScope() { t_on_pool_lane = true; }
  ~LaneScope() { t_on_pool_lane = prev; }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;
};

}  // namespace

bool on_pool_lane() { return t_on_pool_lane; }

ThreadPool::ThreadPool(int threads) {
  MRC_REQUIRE(threads >= 0, "negative thread count");
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> fn, Priority p) {
  static obs::Counter& tasks = obs::Registry::global().counter("mrc.exec.tasks");
  tasks.add(1);
  if (workers_.empty()) {  // single-lane pool: run inline, no queue traffic
    const LaneScope lane_scope;
    OBS_SPAN("exec.task");
    fn();
    return;
  }
  // Wrap at enqueue time so (a) the submitter's request context travels to
  // the worker lane — that is what lets a span recorded inside a decode task
  // carry the serving request's trace id — and (b) the task's wait
  // (enqueue -> first instruction) and run (span) are both visible; wait is
  // the scheduler-backlog signal the queue-depth gauges only sample. Context
  // capture is always on (the flight recorder runs with obs disabled); a
  // task posted outside any request by a process with obs off stays
  // unwrapped and pays nothing.
  const obs::RequestCtxPtr ctx = obs::current_request();
  if (ctx != nullptr || obs::enabled()) {
    fn = [inner = std::move(fn), ctx, enq = obs::now_ns(),
          demand = (p == Priority::high)] {
      const obs::RequestScope scope(ctx);
      const std::uint64_t waited = obs::now_ns() - enq;
      // Only demand tasks charge their queue wait to the request: a
      // request's advisory prefetches may sit behind arbitrary low-priority
      // backlog without making *this* request look slow.
      if (ctx != nullptr && demand)
        ctx->queue_wait_ns.fetch_add(waited, std::memory_order_relaxed);
      if (obs::enabled()) {
        static obs::Counter& wait =
            obs::Registry::global().counter("mrc.exec.wait_ns");
        static obs::Counter& run =
            obs::Registry::global().counter("mrc.exec.run_ns");
        wait.add(waited);
        OBS_SPAN("exec.task", &run);
        inner();
        return;
      }
      inner();
    };
  }
  {
    const std::lock_guard lock(mu_);
    (p == Priority::high ? queue_ : low_queue_).push_back(std::move(fn));
    if (obs::enabled()) update_queue_gauges();
  }
  cv_.notify_one();
}

/// Caller holds mu_.
void ThreadPool::update_queue_gauges() const {
  static obs::Gauge& high = obs::Registry::global().gauge("mrc.exec.queue_high");
  static obs::Gauge& low = obs::Registry::global().gauge("mrc.exec.queue_low");
  high.set(static_cast<std::int64_t>(queue_.size()));
  low.set(static_cast<std::int64_t>(low_queue_.size()));
}

std::size_t ThreadPool::queued() const {
  const std::lock_guard lock(mu_);
  return queue_.size() + low_queue_.size();
}

std::size_t ThreadPool::queued_high() const {
  const std::lock_guard lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::queued_low() const {
  const std::lock_guard lock(mu_);
  return low_queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock,
               [this] { return stop_ || !queue_.empty() || !low_queue_.empty(); });
      if (queue_.empty() && low_queue_.empty()) return;  // stop_ and drained
      auto& q = queue_.empty() ? low_queue_ : queue_;
      fn = std::move(q.front());
      q.pop_front();
      if (obs::enabled()) update_queue_gauges();
    }
    const LaneScope lane_scope;
    fn();
  }
}

void ThreadPool::parallel_for(index_t n, const std::function<void(index_t)>& body,
                              index_t grain) {
  MRC_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
  if (n <= 0) return;
  const int lanes = static_cast<int>(std::min<index_t>(size(), ceil_div(n, grain)));
  if (lanes <= 1) {
    // Still a pool lane conceptually (the calling thread), so serial
    // parallel_for runs stay visible in the trace timeline.
    const LaneScope lane_scope;
    OBS_SPAN("exec.lane");
    for (index_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<index_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr error;
  } sh;

  auto lane = [&sh, n, grain, &body] {
    const LaneScope lane_scope;
    OBS_SPAN("exec.lane");
    try {
      for (;;) {
        if (sh.failed.load(std::memory_order_relaxed)) return;
        const index_t i0 = sh.next.fetch_add(grain, std::memory_order_relaxed);
        if (i0 >= n) return;
        const index_t i1 = std::min(i0 + grain, n);
        for (index_t i = i0; i < i1; ++i) body(i);
      }
    } catch (...) {
      const std::lock_guard lock(sh.err_mu);
      if (!sh.error) sh.error = std::current_exception();
      sh.failed.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 0; i < lanes - 1; ++i) futs.push_back(submit(lane));
  lane();  // the calling thread is a lane too
  for (auto& f : futs) f.get();  // lane() never throws; errors land in sh.error
  if (sh.error) std::rethrow_exception(sh.error);
}

}  // namespace mrc::exec
