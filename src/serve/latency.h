#pragma once

// The serve tier's latency histogram is the general obs::Histogram now
// (power-of-two buckets, relaxed atomic counters, quantiles from a bucket
// snapshot — see obs/obs.h); this alias keeps the historical serve-layer
// spelling for the Server implementation and its tests.

#include "obs/obs.h"

namespace mrc::serve {

using LatencyHistogram = obs::Histogram;

}  // namespace mrc::serve
