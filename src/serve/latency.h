#pragma once

// Streaming latency histogram for the serve::Server stats surface: fixed
// power-of-two microsecond buckets with relaxed atomic counters, so every
// request records in O(1) with no lock and no allocation, and quantiles are
// answered from a snapshot of the bucket counts. Quantile values are bucket
// lower bounds, so they are monotone in q (p50 <= p99 always) and accurate
// to within the 2x bucket width — plenty for load shedding and dashboards.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace mrc::serve {

class LatencyHistogram {
 public:
  /// Bucket 0 holds sub-microsecond samples; bucket i >= 1 holds
  /// [2^(i-1), 2^i) microseconds. 2^46 us ~ 2.2 years caps the range.
  static constexpr int kBuckets = 48;

  void record(std::uint64_t us) {
    counts_[static_cast<std::size_t>(bucket(us))].fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
    return n;
  }

  /// The q-quantile (q in [0, 1]) as the lower bound of the bucket holding
  /// that rank; 0 when no samples have been recorded.
  [[nodiscard]] std::uint64_t quantile_us(double q) const {
    std::array<std::uint64_t, kBuckets> snap{};
    std::uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
      snap[static_cast<std::size_t>(i)] =
          counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
      total += snap[static_cast<std::size_t>(i)];
    }
    if (total == 0) return 0;
    const double want = q * static_cast<double>(total);
    std::uint64_t rank = want <= 1.0 ? 1 : static_cast<std::uint64_t>(want);
    if (rank > total) rank = total;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += snap[static_cast<std::size_t>(i)];
      if (seen >= rank) return lower_bound_us(i);
    }
    return lower_bound_us(kBuckets - 1);
  }

 private:
  static int bucket(std::uint64_t us) {
    if (us == 0) return 0;
    const int b = 64 - std::countl_zero(us);  // 1 -> 1, 2..3 -> 2, ...
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  static std::uint64_t lower_bound_us(int bucket) {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

}  // namespace mrc::serve
