#include "serve/brick_cache.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace mrc::serve {

namespace {

/// splitmix64 finalizer over the combined key — spreads consecutive tile ids
/// (and datasets) across shards.
std::size_t key_hash(CacheKey key) {
  std::uint64_t k =
      key.brick + 0x9e3779b97f4a7c15ull * (1 + static_cast<std::uint64_t>(key.dataset));
  k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
  k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>(k ^ (k >> 31));
}

struct KeyHash {
  std::size_t operator()(CacheKey k) const { return key_hash(k); }
};

/// Cap on prefetch decodes queued/running at once — the backlog a demand
/// read can find in front of it is bounded to a handful of bricks (and the
/// low-priority queue keeps even that backlog behind demand work).
inline constexpr std::size_t kMaxPrefetchInFlight = 64;

/// Decoded footprint of a brick entry.
std::size_t brick_bytes(const FieldF& f) {
  return sizeof(FieldF) + sizeof(float) * static_cast<std::size_t>(f.size());
}

/// Process-wide mirrors of the per-shard counter blocks, bumped at the same
/// under-lock sites, so the obs registry (and the wire `metrics` frame)
/// reconciles exactly with any all-datasets CacheStats snapshot taken in a
/// quiescent moment. Always on: these are single relaxed fetch_adds next to
/// plain increments already made under the shard lock.
struct CacheMetrics {
  obs::Counter& lookups = obs::Registry::global().counter("mrc.cache.lookups");
  obs::Counter& hits = obs::Registry::global().counter("mrc.cache.hits");
  obs::Counter& misses = obs::Registry::global().counter("mrc.cache.misses");
  obs::Counter& evictions =
      obs::Registry::global().counter("mrc.cache.evictions");
  obs::Counter& prefetched =
      obs::Registry::global().counter("mrc.cache.prefetched");
  obs::Counter& coalesced =
      obs::Registry::global().counter("mrc.cache.coalesced");

  static CacheMetrics& get() {
    static CacheMetrics m;
    return m;
  }
};

}  // namespace

struct BrickCache::Impl {
  /// Per-dataset counter block of one shard; only touched under the shard
  /// lock, so {lookups, hits, misses} always reconcile in any snapshot.
  struct Counters {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t prefetched = 0;
    std::uint64_t bytes = 0;
    std::uint64_t entries = 0;
  };

  struct Entry {
    CacheKey key;
    BrickPtr brick;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> map;
    std::size_t bytes = 0;
    std::vector<Counters> by_ds;  ///< indexed by dataset id, grown on demand

    Counters& counters(std::uint32_t ds) {
      if (ds >= by_ds.size()) by_ds.resize(static_cast<std::size_t>(ds) + 1);
      return by_ds[ds];
    }
  };

  /// One decode in flight (demand or prefetch). `claimed` flips exactly once
  /// — set by whichever thread will actually run the decode — under fl_mu,
  /// so a waiter only ever blocks on work that is running on some thread.
  struct InFlight {
    std::promise<BrickPtr> promise;
    std::shared_future<BrickPtr> future;
    bool claimed = false;                 ///< guarded by fl_mu
    std::function<BrickPtr()> decode;     ///< queued prefetch job; cleared on claim
    /// Trace id of the request that *owns* the decode right now (0 = none):
    /// the demand fetcher, or — for a queued prefetch — the request that
    /// issued the advisory warm. Updated under fl_mu when a demand fetch
    /// steals a queued prefetch, so claim/adopt spans can name both sides
    /// of a coalesced decode.
    std::uint64_t owner_trace = 0;        ///< guarded by fl_mu
    InFlight() : future(promise.get_future().share()) {}
  };

  std::vector<Shard> shards;
  std::size_t budget = 0;
  std::size_t shard_budget = 0;
  std::atomic<std::uint32_t> next_dataset{0};

  std::mutex fl_mu;
  std::condition_variable fl_cv;
  std::unordered_map<CacheKey, std::shared_ptr<InFlight>, KeyHash> inflight;
  std::size_t prefetch_queued = 0;  ///< unclaimed prefetch entries, guarded by fl_mu

  Impl(std::size_t budget_bytes, int nshards)
      : shards(static_cast<std::size_t>(std::clamp(nshards, 1, 64))),
        budget(budget_bytes) {
    MRC_REQUIRE(budget_bytes >= 1, "serve: cache byte budget must be >= 1");
    shard_budget = std::max<std::size_t>(1, budget / shards.size());
  }

  Shard& shard_of(CacheKey key) { return shards[key_hash(key) % shards.size()]; }
  const Shard& shard_of(CacheKey key) const {
    return shards[key_hash(key) % shards.size()];
  }

  /// Cache probe; refreshes LRU position and counts {lookups, hits} on a
  /// hit. Counts nothing on a miss — the caller classifies the lookup once
  /// its outcome (coalesced wait vs own decode) is known.
  BrickPtr probe(CacheKey key) {
    Shard& s = shard_of(key);
    const std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return nullptr;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    Counters& c = s.counters(key.dataset);
    ++c.lookups;
    ++c.hits;
    CacheMetrics& m = CacheMetrics::get();
    m.lookups.add(1);
    m.hits.add(1);
    if (const obs::RequestCtxPtr& ctx = obs::current_request())
      ctx->cache_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second->brick;
  }

  /// Counts one demand lookup whose outcome was decided off-shard (adopted
  /// in-flight decode = hit, own decode = miss).
  void count(CacheKey key, bool hit) {
    Shard& s = shard_of(key);
    const std::lock_guard lock(s.mu);
    Counters& c = s.counters(key.dataset);
    ++c.lookups;
    ++(hit ? c.hits : c.misses);
    CacheMetrics& m = CacheMetrics::get();
    m.lookups.add(1);
    (hit ? m.hits : m.misses).add(1);
    // A hit decided off-shard is precisely an adopted in-flight decode.
    if (hit) m.coalesced.add(1);
    if (const obs::RequestCtxPtr& ctx = obs::current_request())
      (hit ? ctx->cache_hits : ctx->cache_misses)
          .fetch_add(1, std::memory_order_relaxed);
  }

  /// Inserts a decoded brick, evicting LRU tails (any dataset) until the
  /// shard is back under budget. Even the newest entry is evictable — the
  /// caller already holds the brick via shared_ptr, so a budget smaller
  /// than one brick degrades to a decode-through cache and the global
  /// budget stays a hard ceiling in every snapshot.
  void insert(CacheKey key, const BrickPtr& brick, bool from_prefetch) {
    const std::size_t bytes = brick_bytes(*brick);
    Shard& s = shard_of(key);
    const std::lock_guard lock(s.mu);
    if (from_prefetch) {
      ++s.counters(key.dataset).prefetched;
      CacheMetrics::get().prefetched.add(1);
    }
    if (s.map.find(key) != s.map.end()) return;  // a concurrent decode won
    s.lru.push_front(Entry{key, brick, bytes});
    s.map.emplace(key, s.lru.begin());
    s.bytes += bytes;
    Counters& c = s.counters(key.dataset);
    c.bytes += bytes;
    ++c.entries;
    while (s.bytes > shard_budget && !s.lru.empty()) {
      const Entry& victim = s.lru.back();
      Counters& vc = s.counters(victim.key.dataset);
      vc.bytes -= victim.bytes;
      --vc.entries;
      ++vc.evictions;
      CacheMetrics::get().evictions.add(1);
      s.bytes -= victim.bytes;
      s.map.erase(victim.key);
      s.lru.pop_back();
    }
  }

  /// Publishes the decode result (null = "look it up yourself"), retires the
  /// in-flight entry, and wakes waiters.
  void finish(CacheKey key, const std::shared_ptr<InFlight>& fl, BrickPtr brick) {
    fl->promise.set_value(std::move(brick));
    {
      const std::lock_guard lock(fl_mu);
      inflight.erase(key);
    }
    fl_cv.notify_all();
  }
};

BrickCache::BrickCache(std::size_t budget_bytes, int shards)
    : impl_(std::make_unique<Impl>(budget_bytes, shards)) {}
BrickCache::~BrickCache() = default;

std::uint32_t BrickCache::register_dataset() {
  return impl_->next_dataset.fetch_add(1, std::memory_order_relaxed);
}

BrickPtr BrickCache::fetch(CacheKey key, const std::function<BrickPtr()>& decode) {
  Impl& im = *impl_;
  if (BrickPtr b = im.probe(key)) return b;
  for (;;) {
    std::shared_ptr<Impl::InFlight> fl;
    bool owner = false;
    bool stole_prefetch = false;
    std::uint64_t prev_owner = 0;  ///< owning trace id read/replaced under fl_mu
    {
      const std::lock_guard lock(im.fl_mu);
      const auto it = im.inflight.find(key);
      if (it == im.inflight.end()) {
        fl = std::make_shared<Impl::InFlight>();
        fl->claimed = true;  // we will run the decode
        fl->owner_trace = obs::current_trace();
        im.inflight.emplace(key, fl);
        owner = true;
      } else {
        fl = it->second;
        if (!fl->claimed) {
          // A queued prefetch nobody started: steal it. Its task will find
          // the job gone; we decode inline and the prefetch never runs.
          fl->claimed = true;
          fl->decode = nullptr;
          --im.prefetch_queued;
          prev_owner = fl->owner_trace;  // the request that queued the warm
          fl->owner_trace = obs::current_trace();
          owner = true;
          stole_prefetch = true;
        } else {
          prev_owner = fl->owner_trace;  // the request running the decode
        }
      }
    }
    if (stole_prefetch && obs::enabled()) {
      // Instant marker in *this* request's tree, ref = the prefetch issuer:
      // both trace ids of the hand-off are on record.
      const std::uint64_t t = obs::now_ns();
      obs::detail::record_span_ref("cache.claim_prefetch", t, 0, prev_owner);
    }
    if (!owner) {
      const std::uint64_t tw0 = obs::enabled() ? obs::now_ns() : 0;
      BrickPtr b = fl->future.get();  // decoder is actively running: finite wait
      if (b != nullptr) {
        im.count(key, /*hit=*/true);  // adopted in-flight decode, no new work
        if (obs::enabled())
          // The wait span refs the owning request's trace id, so a stitched
          // tree shows whose decode this request coalesced onto.
          obs::detail::record_span_ref("cache.adopt_decode", tw0,
                                       obs::now_ns() - tw0, prev_owner);
        return b;
      }
      // The decoder bailed (declined prefetch, or its decode failed and the
      // error should surface on whoever needs the brick) — try again; the
      // retry either finds the brick cached or becomes the owner and any
      // decode error propagates here, synchronously.
      if (BrickPtr c = im.probe(key)) return c;
      continue;
    }
    BrickPtr b;
    try {
      b = decode();
    } catch (...) {
      im.count(key, /*hit=*/false);
      im.finish(key, fl, nullptr);
      throw;
    }
    im.count(key, /*hit=*/false);
    if (b != nullptr) im.insert(key, b, /*from_prefetch=*/false);
    im.finish(key, fl, b);
    MRC_REQUIRE(b != nullptr, "serve: brick decode returned no data");
    return b;
  }
}

void BrickCache::prefetch(CacheKey key, exec::ThreadPool& pool,
                          std::function<BrickPtr()> decode) {
  Impl& im = *impl_;
  if (contains(key)) return;
  std::shared_ptr<Impl::InFlight> fl;
  {
    const std::lock_guard lock(im.fl_mu);
    if (im.prefetch_queued >= kMaxPrefetchInFlight) return;  // backlog cap
    if (im.inflight.find(key) != im.inflight.end()) return;  // already coming
    fl = std::make_shared<Impl::InFlight>();
    fl->decode = std::move(decode);
    fl->owner_trace = obs::current_trace();  // the request issuing the warm
    im.inflight.emplace(key, fl);
    ++im.prefetch_queued;
  }
  // The task holds only the entry and the cache — never the dataset — so a
  // dataset can shut down by waiting for its entries, not for the queue.
  (void)pool.submit(exec::Priority::low, [&im, key, fl] {
    std::function<BrickPtr()> job;
    {
      const std::lock_guard lock(im.fl_mu);
      if (!fl->claimed) {
        fl->claimed = true;
        job = std::move(fl->decode);
        fl->decode = nullptr;
        --im.prefetch_queued;
      }
    }
    if (!job) return;  // a demand fetch stole the decode and will finish()
    BrickPtr b;
    try {
      b = job();
    } catch (...) {
      // Prefetch is advisory: the failure resurfaces on the demand path of
      // whoever actually needs the brick.
    }
    if (b != nullptr) im.insert(key, b, /*from_prefetch=*/true);
    im.finish(key, fl, std::move(b));
  });
}

bool BrickCache::contains(CacheKey key) const {
  const Impl::Shard& s = impl_->shard_of(key);
  const std::lock_guard lock(s.mu);
  return s.map.find(key) != s.map.end();
}

CacheStats BrickCache::stats() const {
  CacheStats out;
  for (const Impl::Shard& s : impl_->shards) {
    const std::lock_guard lock(s.mu);
    for (const Impl::Counters& c : s.by_ds) {
      out.lookups += c.lookups;
      out.hits += c.hits;
      out.misses += c.misses;
      out.evictions += c.evictions;
      out.prefetched += c.prefetched;
      out.bytes += static_cast<std::size_t>(c.bytes);
      out.entries += static_cast<std::size_t>(c.entries);
    }
  }
  return out;
}

CacheStats BrickCache::stats(std::uint32_t dataset) const {
  CacheStats out;
  for (const Impl::Shard& s : impl_->shards) {
    const std::lock_guard lock(s.mu);
    if (dataset >= s.by_ds.size()) continue;
    const Impl::Counters& c = s.by_ds[dataset];
    out.lookups += c.lookups;
    out.hits += c.hits;
    out.misses += c.misses;
    out.evictions += c.evictions;
    out.prefetched += c.prefetched;
    out.bytes += static_cast<std::size_t>(c.bytes);
    out.entries += static_cast<std::size_t>(c.entries);
  }
  return out;
}

void BrickCache::drop(std::uint32_t dataset) {
  for (Impl::Shard& s : impl_->shards) {
    const std::lock_guard lock(s.mu);
    for (auto it = s.lru.begin(); it != s.lru.end();) {
      if (it->key.dataset != dataset) {
        ++it;
        continue;
      }
      Impl::Counters& c = s.counters(dataset);
      c.bytes -= it->bytes;
      --c.entries;
      s.bytes -= it->bytes;
      s.map.erase(it->key);
      it = s.lru.erase(it);
    }
  }
}

void BrickCache::wait_idle(std::uint32_t dataset) {
  Impl& im = *impl_;
  std::unique_lock lock(im.fl_mu);
  im.fl_cv.wait(lock, [&] {
    for (const auto& [key, fl] : im.inflight)
      if (key.dataset == dataset) return false;
    return true;
  });
}

void BrickCache::wait_idle() {
  Impl& im = *impl_;
  std::unique_lock lock(im.fl_mu);
  im.fl_cv.wait(lock, [&] { return im.inflight.empty(); });
}

std::size_t BrickCache::budget_bytes() const { return impl_->budget; }

}  // namespace mrc::serve
