#pragma once

// Shared decoded-brick store of the serve layer: one byte-budgeted,
// shard-locked LRU that any number of Datasets — and the multi-tenant
// serve::Server above them — hammer concurrently. Three properties the
// single-Dataset cache it replaces did not have:
//
//   * Global budget across datasets. Keys carry a dataset id, and eviction
//     walks each shard's LRU tail regardless of owner, so a hot dataset's
//     bricks push a cold one's out instead of every dataset hoarding a
//     private allotment. Totals never exceed the configured budget, in any
//     snapshot: even a just-inserted brick is evicted if it busts its
//     shard's slice (the fetching caller holds it via shared_ptr, so a
//     budget smaller than one brick degrades to a decode-through cache).
//
//   * Request coalescing. Every decode — demand or prefetch — registers in
//     one in-flight table. A brick someone else is decoding right now is
//     awaited, never decoded a second time; a brick a *queued* prefetch task
//     has not started yet is claimed and decoded inline by the first demand
//     request that wants it (demand preempts prefetch — the queued task then
//     finds its job gone and does nothing). Exactly one decode runs per
//     (dataset, brick) however many threads collide, and a waiter never
//     blocks on work that is not actively running on some thread.
//
//   * Consistent counters. Lookup/hit/miss/eviction/byte counters live per
//     shard, per dataset, and are only mutated under the shard lock, so any
//     stats() snapshot — even one taken mid-flight from another thread —
//     satisfies `hits + misses == lookups` exactly, per dataset and in
//     aggregate.

#include <cstdint>
#include <functional>
#include <memory>

#include "common/require.h"
#include "exec/thread_pool.h"
#include "grid/field.h"

namespace mrc::serve {

/// Decoded bricks are shared immutably between the cache and readers, so an
/// eviction never invalidates data a read is still assembling from.
using BrickPtr = std::shared_ptr<const FieldF>;

/// Key of one decoded brick in a (possibly multi-dataset) cache.
struct CacheKey {
  std::uint32_t dataset = 0;  ///< BrickCache::register_dataset() id
  std::uint64_t brick = 0;    ///< level/tile key, the owning Dataset's scheme
  constexpr bool operator==(const CacheKey&) const = default;
};

/// Counter snapshot. Taken per shard under the shard lock, so the invariant
/// `hits + misses == lookups` holds exactly in any snapshot, concurrent
/// load included (prefetch decodes are counted separately and are not
/// lookups).
struct CacheStats {
  std::uint64_t lookups = 0;     ///< demand brick lookups (hits + misses)
  std::uint64_t hits = 0;        ///< served from cache or an in-flight decode
  std::uint64_t misses = 0;      ///< lookups that ran a decode
  std::uint64_t evictions = 0;   ///< bricks dropped to stay under budget
  std::uint64_t prefetched = 0;  ///< bricks decoded by the prefetch path
  std::size_t bytes = 0;         ///< decoded bytes currently cached
  std::size_t entries = 0;       ///< bricks currently cached

  [[nodiscard]] double hit_ratio() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class BrickCache {
 public:
  /// A cache with a global byte budget, lock-striped over `shards` (clamped
  /// to [1, 64]). The budget is split evenly per shard; a good key hash
  /// spreads every dataset across all shards, so the split is invisible.
  explicit BrickCache(std::size_t budget_bytes, int shards = 8);
  ~BrickCache();
  BrickCache(const BrickCache&) = delete;
  BrickCache& operator=(const BrickCache&) = delete;

  /// Allocates the next dataset id for keys and per-dataset counters.
  [[nodiscard]] std::uint32_t register_dataset();

  /// Demand path: returns the brick from cache, from a decode another
  /// thread is running right now (awaited, counted a hit), or by running
  /// `decode` (counted a miss; a queued-but-unstarted prefetch of the same
  /// key is claimed so the prefetch task never duplicates the work). Decode
  /// errors propagate to every requester synchronously.
  [[nodiscard]] BrickPtr fetch(CacheKey key, const std::function<BrickPtr()>& decode);

  /// Advisory warming: queues `decode` on `pool` at Priority::low unless the
  /// brick is resident, already in flight, or the prefetch backlog is full.
  /// The closure may return nullptr to decline (e.g. during shutdown).
  /// Failures are swallowed — they resurface on whoever fetches the brick.
  void prefetch(CacheKey key, exec::ThreadPool& pool, std::function<BrickPtr()> decode);

  /// Resident check; no counters, no LRU refresh.
  [[nodiscard]] bool contains(CacheKey key) const;

  [[nodiscard]] CacheStats stats() const;                     ///< all datasets
  [[nodiscard]] CacheStats stats(std::uint32_t dataset) const;

  /// Evicts every resident brick of `dataset` (counters keep accumulating).
  void drop(std::uint32_t dataset);

  /// Blocks until no decode of `dataset` is queued or running. Dataset
  /// teardown uses this: queued prefetch closures reference the dataset.
  void wait_idle(std::uint32_t dataset);
  void wait_idle();  ///< same, across all datasets

  [[nodiscard]] std::size_t budget_bytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrc::serve
