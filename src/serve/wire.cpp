#include "serve/wire.h"

#include <cstring>

#include "grid/field_ops.h"
#include "progressive/progressive.h"

namespace mrc::serve::wire {

namespace {

void require_wire(bool cond, const std::string& msg) {
  if (!cond) throw CodecError("wire: " + msg);
}

/// Frame header: u32 length + u8 type.
inline constexpr std::size_t kHeaderBytes = 5;

}  // namespace

Frame parse_frame(std::span<const std::byte> buf) {
  require_wire(buf.size() >= kHeaderBytes, "frame shorter than its header");
  ByteReader r(buf);
  const auto len = r.get<std::uint32_t>();
  require_wire(len >= 1, "zero-length frame");
  require_wire(len <= kMaxFrameBytes, "frame length exceeds the 1 GiB cap");
  // Exact match — a length larger than the buffer is a truncation (or a
  // hostile claim we refuse before touching the body), smaller means
  // trailing garbage.
  require_wire(static_cast<std::size_t>(len) == buf.size() - 4,
               "frame length does not match the buffer");
  const auto t = r.get<std::uint8_t>();
  return Frame{static_cast<Type>(t), buf.subspan(kHeaderBytes)};
}

Request parse_request(std::span<const std::byte> buf) {
  const Frame f = parse_frame(buf);
  const auto raw = static_cast<std::uint8_t>(f.type);
  Request out;
  out.type = static_cast<Type>(raw & ~kTracedFlag);
  out.body = f.body;
  if ((raw & kTracedFlag) != 0) {
    require_wire(f.body.size() >= sizeof(std::uint64_t),
                 "traced frame shorter than its trace id");
    std::memcpy(&out.trace, f.body.data() + f.body.size() - sizeof(std::uint64_t),
                sizeof(std::uint64_t));
    out.traced = true;
    out.body = f.body.first(f.body.size() - sizeof(std::uint64_t));
  }
  return out;
}

Bytes make_frame(Type t, std::span<const std::byte> body) {
  require_wire(body.size() + 1 <= kMaxFrameBytes, "frame body exceeds the cap");
  const auto len = static_cast<std::uint32_t>(body.size() + 1);
  Bytes out(kHeaderBytes + body.size());
  std::memcpy(out.data(), &len, sizeof(len));
  out[4] = static_cast<std::byte>(t);
  if (!body.empty()) std::memcpy(out.data() + kHeaderBytes, body.data(), body.size());
  return out;
}

Bytes echo_trace(Bytes frame, bool traced, std::uint64_t trace) {
  if (!traced) return frame;
  require_wire(frame.size() >= kHeaderBytes, "cannot trace-stamp a non-frame");
  std::uint32_t len = 0;
  std::memcpy(&len, frame.data(), sizeof(len));
  len += sizeof(std::uint64_t);
  require_wire(len <= kMaxFrameBytes, "traced frame exceeds the cap");
  std::memcpy(frame.data(), &len, sizeof(len));
  frame[4] = static_cast<std::byte>(static_cast<std::uint8_t>(frame[4]) |
                                    kTracedFlag);
  const std::size_t n = frame.size();
  frame.resize(n + sizeof(std::uint64_t));
  std::memcpy(frame.data() + n, &trace, sizeof(trace));
  return frame;
}

Bytes make_error(ServerError::Code code, std::string_view what,
                 std::uint8_t failed_type) {
  Bytes body;
  ByteWriter w(body);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(code));
  w.put_blob(std::as_bytes(std::span(what.data(), what.size())));
  // Which request type earned this error — correlation a pipelining client
  // needs when replies arrive out of band (0 = the frame never parsed).
  w.put<std::uint8_t>(failed_type);
  return make_frame(Type::error, body);
}

void put_box(ByteWriter& w, const tiled::Box& box) {
  w.put<std::int64_t>(box.lo.x);
  w.put<std::int64_t>(box.lo.y);
  w.put<std::int64_t>(box.lo.z);
  w.put<std::int64_t>(box.hi.x);
  w.put<std::int64_t>(box.hi.y);
  w.put<std::int64_t>(box.hi.z);
}

tiled::Box get_box(ByteReader& r) {
  std::int64_t v[6];
  for (auto& x : v) x = r.get<std::int64_t>();
  for (int a = 0; a < 3; ++a) {
    require_wire(v[a] >= 0 && v[a + 3] > v[a], "region box is empty or negative");
    // Checked on the raw i64s, so a hostile 2^48-sample claim dies here —
    // long before any extent arithmetic or allocation sees it.
    require_wire(v[a + 3] - v[a] <= static_cast<std::int64_t>(kMaxExtent),
                 "region extent exceeds the per-axis cap");
  }
  return tiled::Box{{v[0], v[1], v[2]}, {v[3], v[4], v[5]}};
}

Bytes encode_region_ok(const FieldF& f) {
  Bytes body;
  ByteWriter w(body);
  w.put<std::int64_t>(f.dims().nx);
  w.put<std::int64_t>(f.dims().ny);
  w.put<std::int64_t>(f.dims().nz);
  w.put_bytes(std::as_bytes(f.span()));
  return make_frame(Type::region_ok, body);
}

FieldF decode_region_ok(std::span<const std::byte> body) {
  ByteReader r(body);
  const auto nx = r.get<std::int64_t>();
  const auto ny = r.get<std::int64_t>();
  const auto nz = r.get<std::int64_t>();
  std::uint64_t product = 1;
  for (const std::int64_t n : {nx, ny, nz}) {
    require_wire(n >= 1 && n <= static_cast<std::int64_t>(kMaxExtent),
                 "region extent out of range");
    product *= static_cast<std::uint64_t>(n);  // <= 2^60: cannot overflow
  }
  // The sample payload must match the claimed extents byte-for-byte BEFORE
  // the field buffer is allocated from them.
  require_wire(r.remaining() == product * sizeof(float),
               "region payload does not match its extents");
  const std::span<const std::byte> raw =
      r.get_bytes(static_cast<std::size_t>(product) * sizeof(float));
  std::vector<float> data(static_cast<std::size_t>(product));
  std::memcpy(data.data(), raw.data(), raw.size());
  return FieldF{Dim3{nx, ny, nz}, std::move(data)};
}

Bytes encode_progressive_ok(const ProgressiveLayer& layer) {
  Bytes body;
  ByteWriter w(body);
  w.put<std::int32_t>(layer.level);
  w.put<std::uint8_t>(layer.residual ? 1 : 0);
  w.put<std::int64_t>(layer.level_dims.nx);
  w.put<std::int64_t>(layer.level_dims.ny);
  w.put<std::int64_t>(layer.level_dims.nz);
  put_box(w, layer.box);
  w.put_bytes(std::as_bytes(layer.data.span()));
  return make_frame(Type::progressive_ok, body);
}

ProgressiveLayer decode_progressive_ok(std::span<const std::byte> body) {
  ByteReader r(body);
  ProgressiveLayer layer;
  const auto level = r.get<std::int32_t>();
  require_wire(level >= 0 && level < progressive::kMaxLevels,
               "progressive layer level out of range");
  layer.level = level;
  const auto flag = r.get<std::uint8_t>();
  require_wire(flag <= 1, "progressive residual flag must be 0 or 1");
  layer.residual = flag != 0;
  std::int64_t d[3];
  for (auto& v : d) v = r.get<std::int64_t>();
  for (const std::int64_t v : d)
    // Level extents are global grid dims, not a region: capped by the
    // containers' 2^40 total-sample limit rather than kMaxExtent.
    require_wire(v >= 1 && v <= (std::int64_t{1} << 40),
                 "progressive level extents out of range");
  layer.level_dims = Dim3{d[0], d[1], d[2]};
  layer.box = get_box(r);
  require_wire(layer.box.hi.x <= layer.level_dims.nx &&
                   layer.box.hi.y <= layer.level_dims.ny &&
                   layer.box.hi.z <= layer.level_dims.nz,
               "progressive layer box outside its level grid");
  const Dim3 ext{layer.box.hi.x - layer.box.lo.x, layer.box.hi.y - layer.box.lo.y,
                 layer.box.hi.z - layer.box.lo.z};
  const std::uint64_t product = static_cast<std::uint64_t>(ext.nx) *
                                static_cast<std::uint64_t>(ext.ny) *
                                static_cast<std::uint64_t>(ext.nz);  // <= 2^60
  // The sample payload must match the claimed box byte-for-byte BEFORE the
  // field buffer is allocated from it.
  require_wire(r.remaining() == product * sizeof(float),
               "progressive payload does not match its box");
  const std::span<const std::byte> raw =
      r.get_bytes(static_cast<std::size_t>(product) * sizeof(float));
  std::vector<float> data(static_cast<std::size_t>(product));
  std::memcpy(data.data(), raw.data(), raw.size());
  layer.data = FieldF{ext, std::move(data)};
  return layer;
}

Bytes encode_stats_ok(const ServerStats& s) {
  // Fixed layout (7 u64 cache counters, u32 dataset count, 7 u64 server
  // gauges — queue depth split per priority class) built into a pre-sized
  // buffer: the growing-ByteWriter path trips GCC 12's -Wstringop-overflow
  // false positive at -O3 here.
  Bytes body(14 * sizeof(std::uint64_t) + sizeof(std::uint32_t));
  std::byte* p = body.data();
  const auto put64 = [&p](std::uint64_t v) {
    std::memcpy(p, &v, sizeof(v));
    p += sizeof(v);
  };
  put64(s.cache.lookups);
  put64(s.cache.hits);
  put64(s.cache.misses);
  put64(s.cache.evictions);
  put64(s.cache.prefetched);
  put64(s.cache.bytes);
  put64(s.cache.entries);
  const std::uint32_t datasets = s.datasets;
  std::memcpy(p, &datasets, sizeof(datasets));
  p += sizeof(datasets);
  put64(s.queue_high);
  put64(s.queue_low);
  put64(s.active);
  put64(s.requests);
  put64(s.rejected);
  put64(s.p50_us);
  put64(s.p99_us);
  return make_frame(Type::stats_ok, body);
}

ServerStats decode_stats_ok(std::span<const std::byte> body) {
  ByteReader r(body);
  ServerStats s;
  s.cache.lookups = r.get<std::uint64_t>();
  s.cache.hits = r.get<std::uint64_t>();
  s.cache.misses = r.get<std::uint64_t>();
  s.cache.evictions = r.get<std::uint64_t>();
  s.cache.prefetched = r.get<std::uint64_t>();
  s.cache.bytes = static_cast<std::size_t>(r.get<std::uint64_t>());
  s.cache.entries = static_cast<std::size_t>(r.get<std::uint64_t>());
  s.datasets = r.get<std::uint32_t>();
  s.queue_high = r.get<std::uint64_t>();
  s.queue_low = r.get<std::uint64_t>();
  s.active = r.get<std::uint64_t>();
  s.requests = r.get<std::uint64_t>();
  s.rejected = r.get<std::uint64_t>();
  s.p50_us = r.get<std::uint64_t>();
  s.p99_us = r.get<std::uint64_t>();
  require_wire(r.exhausted(), "stats reply has trailing bytes");
  return s;
}

// -- Client -----------------------------------------------------------------

Bytes Client::call(Type t, std::span<const std::byte> body, Type expect) {
  const bool traced = trace_ != 0;
  const Bytes request = echo_trace(make_frame(t, body), traced, trace_);
  Bytes reply = send_(request);
  const Frame f = parse_frame(reply);
  const auto raw = static_cast<std::uint8_t>(f.type);
  const bool traced_reply = (raw & kTracedFlag) != 0;
  const Type reply_type = static_cast<Type>(raw & ~kTracedFlag);
  std::span<const std::byte> reply_body = f.body;
  std::uint64_t echoed = 0;
  if (traced_reply) {
    require_wire(reply_body.size() >= sizeof(std::uint64_t),
                 "traced reply shorter than its trace id");
    std::memcpy(&echoed, reply_body.data() + reply_body.size() - sizeof(echoed),
                sizeof(echoed));
    reply_body = reply_body.first(reply_body.size() - sizeof(echoed));
  }
  // The echo must round-trip exactly: a traced request earns a traced reply
  // carrying the same id — error frames included — and an untraced request
  // must never earn one (a stray id means the transport crossed replies).
  require_wire(traced == traced_reply, "reply trace presence mismatch");
  if (traced) require_wire(echoed == trace_, "reply trace id mismatch");
  if (reply_type == Type::error) {
    ByteReader r(reply_body);
    const auto code = r.get<std::uint8_t>();
    const std::span<const std::byte> msg = r.get_blob();
    const auto failed = r.get<std::uint8_t>();
    require_wire(r.exhausted(), "error reply has trailing bytes");
    ServerError err(static_cast<ServerError::Code>(code),
                    std::string(reinterpret_cast<const char*>(msg.data()),
                                msg.size()));
    err.failed_request = failed;
    err.trace = echoed;
    throw err;
  }
  require_wire(reply_type == expect, "unexpected reply type");
  // Strip the trace suffix so the per-method body decoders (which subspan
  // past the 5-byte header and require exhaustion) see the plain layout.
  if (traced_reply) reply.resize(reply.size() - sizeof(std::uint64_t));
  return reply;
}

OpenInfo Client::open(std::span<const std::byte> stream, std::string_view name) {
  Bytes body;
  ByteWriter w(body);
  w.put_blob(std::as_bytes(std::span(name.data(), name.size())));
  w.put_blob(stream);
  const Bytes reply = call(Type::open, body, Type::open_ok);
  ByteReader r{std::span<const std::byte>(reply).subspan(5)};
  OpenInfo info;
  info.id = r.get<std::uint32_t>();
  info.levels = r.get<std::int32_t>();
  info.dims.nx = r.get<std::int64_t>();
  info.dims.ny = r.get<std::int64_t>();
  info.dims.nz = r.get<std::int64_t>();
  info.eb = r.get<double>();
  require_wire(r.exhausted(), "open reply has trailing bytes");
  return info;
}

FieldF Client::region(std::uint32_t id, int level, const tiled::Box& box) {
  Bytes body;
  ByteWriter w(body);
  w.put<std::uint32_t>(id);
  w.put<std::int32_t>(level);
  put_box(w, box);
  const Bytes reply = call(Type::region, body, Type::region_ok);
  return decode_region_ok(std::span(reply).subspan(5));
}

ProgressiveResult Client::read_progressive(std::uint32_t id, int level,
                                           const tiled::Box& box) {
  Bytes body;
  ByteWriter w(body);
  w.put<std::uint32_t>(id);
  w.put<std::int32_t>(level);
  put_box(w, box);
  const bool traced = trace_ != 0;
  const Bytes request =
      echo_trace(make_frame(Type::progressive, body), traced, trace_);
  const Bytes reply = send_(request);
  const std::span<const std::byte> buf(reply);

  ProgressiveResult out;
  Dim3 window_dims;  // level grid of the current window (out.data/out.box)
  bool have_coarse = false;
  // Record why refinement stopped but keep the refined-so-far window — the
  // point of coarse-first streaming is that a broken tail still leaves a
  // usable answer. Before the coarse frame lands there is nothing to keep,
  // so failures there throw instead.
  const auto degrade = [&](ProgressiveResult::Status st, std::string why) {
    out.status = st;
    out.error = std::move(why);
  };

  std::size_t pos = 0;
  while (pos < buf.size() && out.status == ProgressiveResult::Status::complete) {
    if (have_coarse && out.level == level) {
      degrade(ProgressiveResult::Status::frame_error,
              "trailing bytes past the requested level");
      break;
    }
    // Split one frame off the concatenated reply by its length prefix. A
    // cut anywhere — inside the prefix or inside the frame — degrades.
    std::uint32_t len = 0;
    if (buf.size() - pos >= sizeof(len)) std::memcpy(&len, buf.data() + pos, sizeof(len));
    if (buf.size() - pos < kHeaderBytes || len < 1 || len > kMaxFrameBytes ||
        buf.size() - pos - sizeof(len) < len) {
      if (!have_coarse)
        throw CodecError("wire: progressive reply truncated before the coarse frame");
      degrade(ProgressiveResult::Status::truncated,
              "progressive reply cut mid-frame");
      break;
    }
    const std::span<const std::byte> one =
        buf.subspan(pos, sizeof(len) + static_cast<std::size_t>(len));
    pos += one.size();

    try {
      const Frame f = parse_frame(one);
      const auto raw = static_cast<std::uint8_t>(f.type);
      const bool traced_reply = (raw & kTracedFlag) != 0;
      const Type reply_type = static_cast<Type>(raw & ~kTracedFlag);
      std::span<const std::byte> frame_body = f.body;
      std::uint64_t echoed = 0;
      if (traced_reply) {
        require_wire(frame_body.size() >= sizeof(std::uint64_t),
                     "traced progressive frame shorter than its trace id");
        std::memcpy(&echoed, frame_body.data() + frame_body.size() - sizeof(echoed),
                    sizeof(echoed));
        frame_body = frame_body.first(frame_body.size() - sizeof(echoed));
      }
      // EVERY frame of the multi-frame reply must echo the request's trace
      // id on its own — that is what lets the flight recorder stitch all N
      // frames into one span tree, and the client verifies it per frame.
      require_wire(traced == traced_reply, "progressive frame trace presence mismatch");
      if (traced) require_wire(echoed == trace_, "progressive frame trace id mismatch");
      if (reply_type == Type::error) {
        ByteReader er(frame_body);
        const auto code = er.get<std::uint8_t>();
        const std::span<const std::byte> msg = er.get_blob();
        const auto failed = er.get<std::uint8_t>();
        require_wire(er.exhausted(), "error reply has trailing bytes");
        std::string what(reinterpret_cast<const char*>(msg.data()), msg.size());
        if (!have_coarse) {
          ServerError err(static_cast<ServerError::Code>(code), what);
          err.failed_request = failed;
          err.trace = echoed;
          throw err;
        }
        degrade(ProgressiveResult::Status::frame_error,
                "server error mid-refinement: " + what);
        break;
      }
      require_wire(reply_type == Type::progressive_ok,
                   "unexpected progressive frame type");
      ProgressiveLayer layer = decode_progressive_ok(frame_body);
      if (!have_coarse) {
        require_wire(!layer.residual,
                     "first progressive frame must carry data, not a residual");
        require_wire(layer.level >= level, "coarse frame below the requested level");
        out.data = std::move(layer.data);
        out.box = layer.box;
        out.level = layer.level;
        window_dims = layer.level_dims;
        have_coarse = true;
      } else {
        require_wire(layer.residual, "refinement frame must carry a residual");
        require_wire(layer.level == out.level - 1,
                     "refinement frame out of level order");
        const Dim3 half = blocks_for(layer.level_dims, 2);
        require_wire(half.nx == window_dims.nx && half.ny == window_dims.ny &&
                         half.nz == window_dims.nz,
                     "refinement level extents break the halving chain");
        // The held coarse window must cover the prolongation footprint of
        // the incoming fine box, or refine() would read outside it.
        const Dim3 fine_ext{layer.box.hi.x - layer.box.lo.x,
                            layer.box.hi.y - layer.box.lo.y,
                            layer.box.hi.z - layer.box.lo.z};
        const SupportBox sup =
            prolong_support(window_dims, layer.level_dims, layer.box.lo, fine_ext);
        require_wire(out.box.lo.x <= sup.origin.x && out.box.lo.y <= sup.origin.y &&
                         out.box.lo.z <= sup.origin.z &&
                         sup.origin.x + sup.extent.nx <= out.box.hi.x &&
                         sup.origin.y + sup.extent.ny <= out.box.hi.y &&
                         sup.origin.z + sup.extent.nz <= out.box.hi.z,
                     "refinement box escapes the coarse window's support");
        out.data = progressive::refine(out.data, out.box, window_dims, layer.data,
                                       layer.box, layer.level_dims);
        out.box = layer.box;
        out.level = layer.level;
        window_dims = layer.level_dims;
      }
      out.frames.push_back(
          ProgressiveFrameInfo{layer.level, layer.box, one.size(), layer.residual});
    } catch (const CodecError& e) {
      if (!have_coarse) throw;
      degrade(ProgressiveResult::Status::frame_error, e.what());
      break;
    }
  }
  if (!have_coarse) throw CodecError("wire: empty progressive reply");
  if (out.status == ProgressiveResult::Status::complete && out.level != level)
    degrade(ProgressiveResult::Status::truncated,
            "progressive reply ended before the requested level");
  if (out.complete())
    require_wire(out.box.lo.x == box.lo.x && out.box.lo.y == box.lo.y &&
                     out.box.lo.z == box.lo.z && out.box.hi.x == box.hi.x &&
                     out.box.hi.y == box.hi.y && out.box.hi.z == box.hi.z,
                 "refined box does not match the request");
  return out;
}

int Client::choose_level(std::uint32_t id, const tiled::Box& fine_box,
                         std::uint64_t sample_budget) {
  Bytes body;
  ByteWriter w(body);
  w.put<std::uint32_t>(id);
  put_box(w, fine_box);
  w.put<std::uint64_t>(sample_budget);
  const Bytes reply = call(Type::lod, body, Type::lod_ok);
  ByteReader r{std::span<const std::byte>(reply).subspan(5)};
  const auto level = r.get<std::int32_t>();
  require_wire(r.exhausted(), "lod reply has trailing bytes");
  return level;
}

ServerStats Client::stats(std::uint32_t id) {
  Bytes body;
  ByteWriter w(body);
  w.put<std::uint32_t>(id);
  const Bytes reply = call(Type::stats, body, Type::stats_ok);
  return decode_stats_ok(std::span(reply).subspan(5));
}

std::string Client::metrics() {
  const Bytes reply = call(Type::metrics, {}, Type::metrics_ok);
  ByteReader r{std::span<const std::byte>(reply).subspan(5)};
  const std::span<const std::byte> text = r.get_blob();
  require_wire(r.exhausted(), "metrics reply has trailing bytes");
  return std::string(reinterpret_cast<const char*>(text.data()), text.size());
}

std::string Client::debug() {
  const Bytes reply = call(Type::debug, {}, Type::debug_ok);
  ByteReader r{std::span<const std::byte>(reply).subspan(5)};
  const std::span<const std::byte> text = r.get_blob();
  require_wire(r.exhausted(), "debug reply has trailing bytes");
  return std::string(reinterpret_cast<const char*>(text.data()), text.size());
}

void Client::close(std::uint32_t id) {
  Bytes body;
  ByteWriter w(body);
  w.put<std::uint32_t>(id);
  const Bytes reply = call(Type::close, body, Type::close_ok);
  require_wire(reply.size() == 5, "close reply has trailing bytes");
}

}  // namespace mrc::serve::wire
