#pragma once

// Multi-tenant serving front end: one process, many datasets, many
// concurrent clients. A serve::Server opens any number of
// MRCT/MRCP/MRCA/MRCR streams behind ONE global byte-budgeted BrickCache
// and ONE exec pool:
//
//   * Global cache. Every dataset's bricks compete for the same budget —
//     a hot dataset evicts a cold one's bricks instead of each hoarding a
//     private allotment — and identical concurrent decodes coalesce across
//     clients (see brick_cache.h).
//
//   * Priority + backpressure. Demand reads run their decode lanes at
//     exec::Priority::high while prefetch warms at Priority::low, so a
//     prefetch backlog never delays an interactive read. On top sits a
//     bounded admission gate: more than cfg.max_active concurrently served
//     reads are shed immediately with ServerError::Code::overloaded —
//     clients get an explicit "try again" instead of unbounded queueing.
//
//   * Stats. stats() snapshots the global (or per-dataset) cache counters —
//     consistent: hits + misses == lookups — plus scheduler queue depth,
//     admission counters, and p50/p99 read latency from a lock-free
//     streaming histogram.
//
//   * Wire surface. handle_frame() serves the serve::wire protocol
//     (open/region/lod/stats/close) for any transport that can move bytes;
//     it never throws — every failure is returned as an error frame.
//
// Thread safety: every public method may be called from any number of
// threads. Dataset handles are snapshotted under a shared lock and served
// lock-free, so a close() only takes effect for requests admitted after it.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/dataset.h"

namespace mrc::serve {

struct ServerConfig {
  std::size_t cache_bytes = 256ull << 20;  ///< global budget, all datasets
  int threads = 0;        ///< shared exec-pool lanes; 0 = hardware
  int shards = 8;         ///< cache shard count (lock striping)
  bool prefetch = true;   ///< warm neighbor bricks after each read
  std::size_t max_active = 64;  ///< admission cap on in-flight reads, >= 1
};

/// A server-level failure surfaced to callers and, over the wire, encoded
/// into error frames (the code survives the round trip).
class ServerError : public std::runtime_error {
 public:
  enum class Code : std::uint8_t {
    overloaded = 1,       ///< admission gate shed the request; retry later
    bad_request = 2,      ///< malformed frame / invalid arguments
    unknown_dataset = 3,  ///< no dataset with that id (never opened, or closed)
  };

  ServerError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] Code code() const { return code_; }

  /// Wire attribution, filled in by wire::Client when it decodes an error
  /// frame: the request type byte that failed (0 = the frame never parsed)
  /// and the echoed trace id (0 = the request was untraced). Server-side
  /// throws leave both at 0 — the frame layer adds them on the way out.
  std::uint8_t failed_request = 0;
  std::uint64_t trace = 0;

 private:
  Code code_;
};

/// One stats() snapshot. `cache` is internally consistent (hits + misses ==
/// lookups, exactly, under any concurrency); the remaining fields are
/// independent relaxed reads of server-wide counters.
struct ServerStats {
  CacheStats cache;             ///< global, or one dataset's slice
  std::uint32_t datasets = 0;   ///< streams currently open
  std::uint64_t queue_high = 0;  ///< demand pool tasks queued
  std::uint64_t queue_low = 0;   ///< advisory (prefetch) pool tasks queued
  std::uint64_t active = 0;     ///< reads being served right now
  std::uint64_t requests = 0;   ///< reads admitted since construction
  std::uint64_t rejected = 0;   ///< reads shed with Code::overloaded
  std::uint64_t p50_us = 0;     ///< median admitted-read latency
  std::uint64_t p99_us = 0;     ///< tail admitted-read latency (>= p50)
};

class Server {
 public:
  explicit Server(const ServerConfig& cfg = {});
  ~Server();
  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a tiled/pyramid/adaptive/progressive stream as a served dataset
  /// and returns its handle. Throws CodecError on any other stream.
  std::uint32_t open(Bytes stream, std::string name = {});

  /// Closes a dataset: the handle dies immediately, its cached bricks are
  /// evicted, reads already admitted finish. Throws ServerError
  /// (unknown_dataset) on a bad handle.
  void close(std::uint32_t id);

  /// (id, name) of every open dataset, ascending by id.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::string>> list() const;

  [[nodiscard]] int levels(std::uint32_t id) const;
  [[nodiscard]] Dim3 dims(std::uint32_t id, int level) const;
  [[nodiscard]] double eb(std::uint32_t id) const;

  /// Serves one region read through the global cache — bit-identical to the
  /// container's own read_region. Counts against the admission gate; throws
  /// ServerError (overloaded) when cfg.max_active reads are already in
  /// flight, ServerError (unknown_dataset) on a bad handle.
  [[nodiscard]] FieldF read_region(std::uint32_t id, int level,
                                   const tiled::Box& region);

  /// Serves one progressive read (progressive datasets only): the layered
  /// coarse-first form of read_region, counted against the admission gate
  /// exactly once for the whole layer chain. Folding the layers with
  /// progressive::refine reproduces read_region(id, level, region)
  /// bit-exactly; the wire path streams them as one multi-frame reply.
  [[nodiscard]] std::vector<ProgressiveLayer> read_progressive(
      std::uint32_t id, int level, const tiled::Box& region);

  /// Dataset::choose_level by handle (metadata math: not admission-gated).
  [[nodiscard]] int choose_level(std::uint32_t id, const tiled::Box& fine_box,
                                 index_t sample_budget) const;

  [[nodiscard]] ServerStats stats() const;  ///< global cache scope
  /// Same server-wide gauges, cache counters scoped to one dataset.
  [[nodiscard]] ServerStats stats(std::uint32_t id) const;

  /// Serves one serve::wire request frame and returns the reply frame.
  /// Total: every failure — unparseable frame, unknown type, bad handle,
  /// overload, decode error — is returned as a wire error frame, so a
  /// transport loop never needs a try/catch.
  [[nodiscard]] Bytes handle_frame(std::span<const std::byte> frame);

  /// Blocks until no decode (demand or prefetch) is queued or running.
  void wait_idle();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrc::serve
