#include "serve/dataset.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"

namespace mrc::serve {

namespace {

/// Cache key: level in the high bits, tile id in the low 48 (the container
/// caps total samples at 2^40, so tile counts never reach 2^48).
std::uint64_t brick_key(int level, index_t tile) {
  return (static_cast<std::uint64_t>(level) << 48) |
         static_cast<std::uint64_t>(tile);
}

/// splitmix64 finalizer — spreads consecutive tile ids across shards.
std::size_t key_hash(std::uint64_t k) {
  k += 0x9e3779b97f4a7c15ull;
  k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
  k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>(k ^ (k >> 31));
}

/// Cap on prefetch decodes in flight at once (per read and globally) — the
/// pool queue is FIFO, so synchronous lane tasks of later reads wait behind
/// queued prefetches; the cap bounds that backlog to a handful of bricks.
inline constexpr std::size_t kMaxPrefetchInFlight = 64;

}  // namespace

struct Dataset::Impl {
  // -- immutable after construction -----------------------------------------
  Bytes stream;
  Config cfg;
  Dataset::Kind kind = Dataset::Kind::pyramid;
  pyramid::Index pidx;                     ///< pyramid datasets only
  std::vector<tiled::Index> lidx;          ///< per-level tile index (pyramid)
  adaptive::Index aidx;                    ///< adaptive datasets only
  double adaptive_worst_err = 0.0;         ///< max per-brick approx_err (adaptive)
  std::unique_ptr<Compressor> codec;       ///< stateless; shared by all lanes

  // -- sharded LRU brick cache ----------------------------------------------
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const FieldF> brick;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map;
    std::size_t bytes = 0;
  };
  std::vector<Shard> shards;
  std::size_t shard_budget = 0;

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> prefetched{0};

  // -- prefetch bookkeeping -------------------------------------------------
  using BrickFuture = std::shared_future<std::shared_ptr<const FieldF>>;
  std::mutex pf_mu;
  std::condition_variable pf_cv;
  /// Queued/running prefetch decodes. Synchronous reads that miss the cache
  /// consult this first and adopt the in-flight result instead of decoding
  /// the same brick a second time.
  std::unordered_map<std::uint64_t, BrickFuture> pf_inflight;
  /// Set in ~Impl: queued prefetch tasks still run during pool teardown
  /// (the pool drains its queue), but they skip the pointless decode.
  std::atomic<bool> shutting_down{false};

  // Declared last: destroyed first, so queued prefetch tasks drain while the
  // cache and indexes above are still alive.
  exec::ThreadPool pool;

  Impl(Bytes s, const Config& c)
      : stream(std::move(s)),
        cfg(c),
        shards(static_cast<std::size_t>(std::clamp(c.shards, 1, 64))),
        pool(c.threads) {
    MRC_REQUIRE(cfg.cache_bytes >= 1, "serve: cache byte budget must be >= 1");
    const StreamHeader h = peek_header(stream);
    if (h.codec_magic == adaptive::kAdaptiveMagic) {
      kind = Dataset::Kind::adaptive;
      aidx = adaptive::read_index(stream);
      codec = registry().make_for_magic(aidx.codec_magic);
      adaptive_worst_err = aidx.eb;
      for (const adaptive::BrickEntry& e : aidx.bricks)
        adaptive_worst_err =
            std::max(adaptive_worst_err, static_cast<double>(e.approx_err));
    } else {
      kind = Dataset::Kind::pyramid;
      pidx = pyramid::read_index(stream);
      lidx.reserve(pidx.levels.size());
      for (std::size_t l = 0; l < pidx.levels.size(); ++l)
        lidx.push_back(tiled::read_index(pidx.level_stream(stream, l)));
      codec = registry().make_for_magic(pidx.codec_magic);
    }
    shard_budget = std::max<std::size_t>(1, cfg.cache_bytes / shards.size());
  }

  ~Impl() {
    // The pool destructor (first in destruction order) drains queued
    // prefetch tasks; the flag turns the drained decodes into no-ops so
    // teardown is bounded by in-flight work, not the whole backlog.
    shutting_down.store(true, std::memory_order_relaxed);
  }

  Shard& shard_of(std::uint64_t key) { return shards[key_hash(key) % shards.size()]; }

  /// Cache lookup; refreshes LRU position. Does not touch the counters —
  /// the caller decides whether a probe is a served lookup or a prefetch
  /// dedup check.
  std::shared_ptr<const FieldF> get(std::uint64_t key) {
    Shard& s = shard_of(key);
    const std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return nullptr;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->brick;
  }

  bool contains(std::uint64_t key) {
    Shard& s = shard_of(key);
    const std::lock_guard lock(s.mu);
    return s.map.find(key) != s.map.end();
  }

  /// Inserts a decoded brick, evicting LRU entries to stay under the shard
  /// budget. The newest entry is never evicted, so a budget smaller than one
  /// brick degrades to "cache of one per shard" instead of thrashing empty.
  void put(std::uint64_t key, std::shared_ptr<const FieldF> brick) {
    const std::size_t bytes =
        sizeof(FieldF) + sizeof(float) * static_cast<std::size_t>(brick->size());
    Shard& s = shard_of(key);
    const std::lock_guard lock(s.mu);
    if (s.map.find(key) != s.map.end()) return;  // a concurrent decode won
    s.lru.push_front(Entry{key, std::move(brick), bytes});
    s.map.emplace(key, s.lru.begin());
    s.bytes += bytes;
    while (s.bytes > shard_budget && s.lru.size() > 1) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      s.map.erase(victim.key);
      s.lru.pop_back();
      evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Brick grid the prefetch ring walks (per level for pyramids, the single
  /// fine-lattice grid for adaptive streams).
  [[nodiscard]] const Dim3& grid_of(int level) const {
    return kind == Dataset::Kind::adaptive
               ? aidx.grid
               : lidx[static_cast<std::size_t>(level)].grid;
  }

  /// Cache key of one brick. For adaptive streams the key carries the
  /// brick's own stored level, so a re-encoded stream with different level
  /// assignments never aliases stale cache entries of the same tile id.
  [[nodiscard]] std::uint64_t key_of(int level, index_t tile) const {
    if (kind == Dataset::Kind::adaptive)
      return brick_key(aidx.bricks[static_cast<std::size_t>(tile)].level, tile);
    return brick_key(level, tile);
  }

  std::shared_ptr<const FieldF> decode(int level, index_t tile) {
    if (kind == Dataset::Kind::adaptive) {
      const auto t = static_cast<std::size_t>(tile);
      // The cache holds the fine-resolution rendition — decoded samples for
      // level-0 bricks, the trilinear prolongation for coarse ones — which
      // is what every assembly consumes.
      return std::make_shared<const FieldF>(adaptive::reconstruct_brick(
          aidx, t, adaptive::decode_brick(aidx, *codec, stream, t)));
    }
    return std::make_shared<const FieldF>(
        tiled::decode_tile(lidx[static_cast<std::size_t>(level)], *codec,
                           pidx.level_stream(stream, static_cast<std::size_t>(level)),
                           static_cast<std::size_t>(tile)));
  }

  /// The in-flight future for `key`, if a prefetch decode is queued/running.
  std::optional<BrickFuture> inflight(std::uint64_t key) {
    const std::lock_guard lock(pf_mu);
    const auto it = pf_inflight.find(key);
    if (it == pf_inflight.end()) return std::nullopt;
    return it->second;
  }

  /// Queues async decodes for the bricks ringing `hit`'s bounding tile box.
  void prefetch_ring(int level, const std::vector<index_t>& hit) {
    const Dim3& grid = grid_of(level);
    Coord3 lo{grid.nx, grid.ny, grid.nz};
    Coord3 hi{0, 0, 0};
    for (const index_t t : hit) {
      const Coord3 c = tiled::tile_coord(grid, t);
      lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
      hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
    }
    for (index_t z = std::max<index_t>(0, lo.z - 1);
         z <= std::min(grid.nz - 1, hi.z + 1); ++z)
      for (index_t y = std::max<index_t>(0, lo.y - 1);
           y <= std::min(grid.ny - 1, hi.y + 1); ++y)
        for (index_t x = std::max<index_t>(0, lo.x - 1);
             x <= std::min(grid.nx - 1, hi.x + 1); ++x) {
          if (x >= lo.x && x <= hi.x && y >= lo.y && y <= hi.y && z >= lo.z &&
              z <= hi.z)
            continue;  // inside the footprint: already decoded by the read
          const index_t t = x + grid.nx * (y + grid.ny * z);
          const std::uint64_t key = key_of(level, t);
          if (contains(key)) continue;
          auto promise =
              std::make_shared<std::promise<std::shared_ptr<const FieldF>>>();
          {
            const std::lock_guard lock(pf_mu);
            if (pf_inflight.size() >= kMaxPrefetchInFlight) return;  // backlog cap
            if (!pf_inflight.emplace(key, promise->get_future().share()).second)
              continue;  // already queued
          }
          (void)pool.submit([this, level, t, key, promise] {
            std::shared_ptr<const FieldF> brick;
            try {
              if (!shutting_down.load(std::memory_order_relaxed) && !contains(key)) {
                brick = decode(level, t);
                put(key, brick);
                prefetched.fetch_add(1, std::memory_order_relaxed);
              }
            } catch (...) {
              // Prefetch is advisory: a decode failure here resurfaces on
              // the synchronous path of whoever actually needs the brick.
            }
            promise->set_value(std::move(brick));  // null = "look it up yourself"
            {
              const std::lock_guard lock(pf_mu);
              pf_inflight.erase(key);
            }
            pf_cv.notify_all();
          });
        }
  }
};

Dataset::Dataset(Bytes stream, const Config& cfg)
    : impl_(std::make_unique<Impl>(std::move(stream), cfg)) {}
Dataset::~Dataset() = default;
Dataset::Dataset(Dataset&&) noexcept = default;
Dataset& Dataset::operator=(Dataset&&) noexcept = default;

Dataset::Kind Dataset::kind() const { return impl_->kind; }

const pyramid::Index& Dataset::index() const {
  MRC_REQUIRE(impl_->kind == Kind::pyramid, "serve: not a pyramid dataset");
  return impl_->pidx;
}

const adaptive::Index& Dataset::adaptive_index() const {
  MRC_REQUIRE(impl_->kind == Kind::adaptive, "serve: not an adaptive dataset");
  return impl_->aidx;
}

int Dataset::levels() const {
  return impl_->kind == Kind::adaptive
             ? 1
             : static_cast<int>(impl_->pidx.levels.size());
}

double Dataset::eb() const {
  return impl_->kind == Kind::adaptive ? impl_->aidx.eb : impl_->pidx.eb;
}

Dim3 Dataset::dims(int level) const {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  if (impl_->kind == Kind::adaptive) return impl_->aidx.dims;
  return impl_->pidx.levels[static_cast<std::size_t>(level)].dims;
}

double Dataset::level_error(int level) const {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  if (impl_->kind == Kind::adaptive) return impl_->adaptive_worst_err;
  return impl_->pidx.levels[static_cast<std::size_t>(level)].approx_err;
}

FieldF Dataset::read_region(int level, const tiled::Box& region) {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  Impl& im = *impl_;
  const bool is_adaptive = im.kind == Kind::adaptive;
  // For adaptive streams the hit set already includes the low-side
  // contributors a seam-free blend needs, not just the owners.
  const std::vector<index_t> hit =
      is_adaptive
          ? adaptive::bricks_for_region(im.aidx, region)
          : tiled::tiles_in_region(im.lidx[static_cast<std::size_t>(level)], region);

  // Pass 1: serve what the cache holds; adopt bricks a prefetch task is
  // already decoding (no second decode of the same brick); collect the rest.
  std::vector<std::shared_ptr<const FieldF>> bricks(hit.size());
  std::vector<std::pair<std::size_t, Impl::BrickFuture>> pending;
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < hit.size(); ++i) {
    const std::uint64_t key = im.key_of(level, hit[i]);
    bricks[i] = im.get(key);
    if (bricks[i] != nullptr) continue;
    if (auto fut = im.inflight(key))
      pending.emplace_back(i, std::move(*fut));
    else
      missing.push_back(i);
  }
  // An adopted in-flight decode is a hit: this read triggers no new decode.
  im.hits.fetch_add(hit.size() - missing.size(), std::memory_order_relaxed);
  im.misses.fetch_add(missing.size(), std::memory_order_relaxed);

  // Pass 2: decode the misses in parallel, holding each brick locally so the
  // result stays exact even if the cache immediately evicts it.
  im.pool.parallel_for(static_cast<index_t>(missing.size()), [&](index_t i) {
    const std::size_t slot = missing[static_cast<std::size_t>(i)];
    auto brick = im.decode(level, hit[slot]);
    im.put(im.key_of(level, hit[slot]), brick);
    bricks[slot] = std::move(brick);
  });
  for (auto& [slot, fut] : pending) {
    bricks[slot] = fut.get();
    if (bricks[slot] == nullptr) {
      // The prefetch task bailed (brick appeared in cache first, or its
      // decode failed and the error should surface here, synchronously).
      const std::uint64_t key = im.key_of(level, hit[slot]);
      bricks[slot] = im.get(key);
      if (bricks[slot] == nullptr) {
        bricks[slot] = im.decode(level, hit[slot]);
        im.put(key, bricks[slot]);
      }
    }
  }

  FieldF out(region.extent());
  if (is_adaptive) {
    // Pass 3 (adaptive): the container's blend rule over the cached
    // fine-resolution renditions — bit-identical to adaptive::read_region.
    std::unordered_map<index_t, std::size_t> slot;
    slot.reserve(hit.size());
    for (std::size_t i = 0; i < hit.size(); ++i) slot.emplace(hit[i], i);
    adaptive::detail::assemble_region(
        im.aidx, region,
        [&](index_t t) -> const FieldF& { return *bricks[slot.at(t)]; }, out);
  } else {
    // Pass 3 (pyramid): assemble core ∩ region from every brick — the same
    // ownership rule as tiled::read_region, hence bit-identical output.
    const tiled::Index& ti = im.lidx[static_cast<std::size_t>(level)];
    for (std::size_t i = 0; i < hit.size(); ++i) {
      const auto t = static_cast<std::size_t>(hit[i]);
      const tiled::TileEntry& e = ti.tiles[t];
      const FieldF& b = *bricks[i];
      const Dim3 core = ti.core_extent(t);
      const index_t x0 = std::max(e.origin.x, region.lo.x);
      const index_t x1 = std::min(e.origin.x + core.nx, region.hi.x);
      const index_t y0 = std::max(e.origin.y, region.lo.y);
      const index_t y1 = std::min(e.origin.y + core.ny, region.hi.y);
      const index_t z0 = std::max(e.origin.z, region.lo.z);
      const index_t z1 = std::min(e.origin.z + core.nz, region.hi.z);
      for (index_t z = z0; z < z1; ++z)
        for (index_t y = y0; y < y1; ++y)
          std::copy_n(&b.at(x0 - e.origin.x, y - e.origin.y, z - e.origin.z), x1 - x0,
                      &out.at(x0 - region.lo.x, y - region.lo.y, z - region.lo.z));
    }
  }

  // Single-lane pools would run "async" prefetch inline and make every read
  // pay for its neighbors — only warm ahead when there are real workers.
  if (im.cfg.prefetch && im.pool.size() > 1) im.prefetch_ring(level, hit);
  return out;
}

tiled::Box Dataset::box_at_level(const tiled::Box& fine_box, int level) const {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  const Dim3 fd =
      impl_->kind == Kind::adaptive ? impl_->aidx.dims : impl_->pidx.dims;
  const Dim3 ext = fine_box.extent();
  MRC_REQUIRE(fine_box.lo.x >= 0 && fine_box.lo.y >= 0 && fine_box.lo.z >= 0 &&
                  ext.nx > 0 && ext.ny > 0 && ext.nz > 0 && fine_box.hi.x <= fd.nx &&
                  fine_box.hi.y <= fd.ny && fine_box.hi.z <= fd.nz,
              "serve: box must be a non-empty box inside " + fd.str());
  const index_t s = index_t{1} << level;
  const Dim3 ld = dims(level);
  return {{fine_box.lo.x / s, fine_box.lo.y / s, fine_box.lo.z / s},
          {std::min(ceil_div(fine_box.hi.x, s), ld.nx),
           std::min(ceil_div(fine_box.hi.y, s), ld.ny),
           std::min(ceil_div(fine_box.hi.z, s), ld.nz)}};
}

int Dataset::choose_level(const tiled::Box& fine_box, index_t sample_budget) const {
  MRC_REQUIRE(sample_budget >= 1, "serve: sample budget must be >= 1");
  for (int l = 0; l < levels(); ++l)
    if (box_at_level(fine_box, l).extent().size() <= sample_budget) return l;
  return levels() - 1;
}

int Dataset::choose_level(double eb_budget) const {
  MRC_REQUIRE(eb_budget > 0.0, "serve: error budget must be > 0");
  for (int l = levels() - 1; l > 0; --l)
    if (level_error(l) <= eb_budget) return l;
  return 0;
}

CacheStats Dataset::stats() const {
  const Impl& im = *impl_;
  CacheStats s;
  s.hits = im.hits.load(std::memory_order_relaxed);
  s.misses = im.misses.load(std::memory_order_relaxed);
  s.evictions = im.evictions.load(std::memory_order_relaxed);
  s.prefetched = im.prefetched.load(std::memory_order_relaxed);
  for (const Impl::Shard& sh : im.shards) {
    const std::lock_guard lock(sh.mu);
    s.bytes += sh.bytes;
    s.entries += sh.lru.size();
  }
  return s;
}

void Dataset::wait_idle() {
  Impl& im = *impl_;
  std::unique_lock lock(im.pf_mu);
  im.pf_cv.wait(lock, [&im] { return im.pf_inflight.empty(); });
}

void Dataset::drop_cache() {
  for (Impl::Shard& sh : impl_->shards) {
    const std::lock_guard lock(sh.mu);
    sh.lru.clear();
    sh.map.clear();
    sh.bytes = 0;
  }
}

}  // namespace mrc::serve
