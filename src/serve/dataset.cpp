#include "serve/dataset.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace mrc::serve {

namespace {

/// Brick key within one dataset: level in the high bits, tile id in the low
/// 48 (the container caps total samples at 2^40, so tile counts never reach
/// 2^48).
std::uint64_t brick_key(int level, index_t tile) {
  return (static_cast<std::uint64_t>(level) << 48) |
         static_cast<std::uint64_t>(tile);
}

}  // namespace

struct Dataset::Impl {
  // -- immutable after construction -----------------------------------------
  Bytes stream;
  Config cfg;
  Dataset::Kind kind = Dataset::Kind::pyramid;
  pyramid::Index pidx;             ///< pyramid datasets only
  progressive::Index gidx;         ///< progressive datasets only
  std::vector<tiled::Index> lidx;  ///< per-level tile index (pyramid /
                                   ///< progressive); one entry for tiled
  adaptive::Index aidx;            ///< adaptive datasets only
  double adaptive_worst_err = 0.0; ///< max per-brick approx_err (adaptive)
  std::unique_ptr<Compressor> codec;  ///< stateless; shared by all lanes
  /// Progressive datasets may store the coarsest (data) level under a
  /// different codec than the residual levels; null when they share one.
  std::unique_ptr<Compressor> data_codec;

  // -- shared serving resources ---------------------------------------------
  // The cache is declared before the pool: when this Impl owns both (the
  // standalone ctor), the pool is destroyed first, so queued prefetch tasks
  // drain while the cache they reference is still alive.
  std::shared_ptr<BrickCache> cache;
  std::shared_ptr<exec::ThreadPool> pool;
  std::uint32_t ds_id = 0;
  /// Set in ~Impl: prefetch closures queued in the cache still run during
  /// the teardown drain, but they skip the pointless decode.
  std::atomic<bool> shutting_down{false};

  Impl(Bytes s, const Config& c, std::shared_ptr<BrickCache> sh_cache,
       std::shared_ptr<exec::ThreadPool> sh_pool)
      : stream(std::move(s)), cfg(c) {
    if (sh_cache == nullptr) {
      MRC_REQUIRE(sh_pool == nullptr,
                  "serve: shared cache and pool come as a pair");
      MRC_REQUIRE(cfg.cache_bytes >= 1, "serve: cache byte budget must be >= 1");
      cache = std::make_shared<BrickCache>(cfg.cache_bytes, cfg.shards);
      pool = std::make_shared<exec::ThreadPool>(cfg.threads);
    } else {
      MRC_REQUIRE(sh_pool != nullptr,
                  "serve: shared cache and pool come as a pair");
      cache = std::move(sh_cache);
      pool = std::move(sh_pool);
    }
    ds_id = cache->register_dataset();

    const StreamHeader h = peek_header(stream);
    if (h.codec_magic == adaptive::kAdaptiveMagic) {
      kind = Dataset::Kind::adaptive;
      aidx = adaptive::read_index(stream);
      codec = registry().make_for_magic(aidx.codec_magic);
      adaptive_worst_err = aidx.eb;
      for (const adaptive::BrickEntry& e : aidx.bricks)
        adaptive_worst_err =
            std::max(adaptive_worst_err, static_cast<double>(e.approx_err));
    } else if (h.codec_magic == tiled::kTiledMagic) {
      kind = Dataset::Kind::tiled;
      lidx.push_back(tiled::read_index(stream));
      codec = registry().make_for_magic(lidx[0].codec_magic);
    } else if (h.codec_magic == progressive::kProgressiveMagic) {
      kind = Dataset::Kind::progressive;
      gidx = progressive::read_index(stream);
      lidx.reserve(gidx.levels.size());
      for (std::size_t l = 0; l < gidx.levels.size(); ++l)
        lidx.push_back(tiled::read_index(gidx.level_stream(stream, l)));
      codec = registry().make_for_magic(gidx.codec_magic);
      if (gidx.data_codec_magic != gidx.codec_magic)
        data_codec = registry().make_for_magic(gidx.data_codec_magic);
    } else {
      kind = Dataset::Kind::pyramid;
      pidx = pyramid::read_index(stream);
      lidx.reserve(pidx.levels.size());
      for (std::size_t l = 0; l < pidx.levels.size(); ++l)
        lidx.push_back(tiled::read_index(pidx.level_stream(stream, l)));
      codec = registry().make_for_magic(pidx.codec_magic);
    }
  }

  ~Impl() {
    // Prefetch closures queued in the cache reference this Impl; block until
    // every decode of this dataset has been claimed or drained before any
    // member dies. The flag turns the drained decodes into no-ops, so
    // teardown is bounded by in-flight work, not the whole backlog.
    shutting_down.store(true, std::memory_order_relaxed);
    cache->wait_idle(ds_id);
    cache->drop(ds_id);  // a shared cache hands the budget back immediately
  }

  /// Brick grid the prefetch ring walks (per level for pyramids, the single
  /// tile grid for tiled and adaptive streams).
  [[nodiscard]] const Dim3& grid_of(int level) const {
    return kind == Dataset::Kind::adaptive
               ? aidx.grid
               : lidx[static_cast<std::size_t>(level)].grid;
  }

  /// Cache key of one brick. For adaptive streams the key carries the
  /// brick's own stored level, so a re-encoded stream with different level
  /// assignments never aliases stale cache entries of the same tile id.
  [[nodiscard]] CacheKey key_of(int level, index_t tile) const {
    if (kind == Dataset::Kind::adaptive)
      return {ds_id,
              brick_key(aidx.bricks[static_cast<std::size_t>(tile)].level, tile)};
    return {ds_id, brick_key(level, tile)};
  }

  BrickPtr decode(int level, index_t tile) {
    if (kind == Dataset::Kind::adaptive) {
      const auto t = static_cast<std::size_t>(tile);
      // The cache holds the fine-resolution rendition — decoded samples for
      // level-0 bricks, the trilinear prolongation for coarse ones — which
      // is what every assembly consumes.
      return std::make_shared<const FieldF>(adaptive::reconstruct_brick(
          aidx, t, adaptive::decode_brick(aidx, *codec, stream, t)));
    }
    // Pyramid and progressive streams nest one tiled stream per level; for
    // progressive datasets the cached brick holds *residual* samples (data
    // samples for the coarsest level) — the reconstruction chain sits above
    // the cache, in progressive_layers.
    const tiled::Index& ti = lidx[static_cast<std::size_t>(level)];
    const std::span<const std::byte> level_bytes =
        kind == Dataset::Kind::tiled ? std::span<const std::byte>(stream)
        : kind == Dataset::Kind::progressive
            ? gidx.level_stream(stream, static_cast<std::size_t>(level))
            : pidx.level_stream(stream, static_cast<std::size_t>(level));
    const bool coarsest_data = kind == Dataset::Kind::progressive &&
                               data_codec != nullptr &&
                               static_cast<std::size_t>(level) + 1 == lidx.size();
    const Compressor& c = coarsest_data ? *data_codec : *codec;
    return std::make_shared<const FieldF>(
        tiled::decode_tile(ti, c, level_bytes, static_cast<std::size_t>(tile)));
  }

  /// Assembles the raw stored samples of one level over `box` through the
  /// cache — core ∩ box from every intersecting brick, the same ownership
  /// rule as tiled::read_region. For pyramid/tiled levels that is the data;
  /// for progressive levels below the top it is the residual window.
  FieldF assemble_level(int level, const tiled::Box& box,
                        std::vector<index_t>* hit_out = nullptr) {
    const tiled::Index& ti = lidx[static_cast<std::size_t>(level)];
    std::vector<index_t> hit = tiled::tiles_in_region(ti, box);
    std::vector<BrickPtr> bricks(hit.size());
    pool->parallel_for(static_cast<index_t>(hit.size()), [&](index_t i) {
      const auto slot = static_cast<std::size_t>(i);
      bricks[slot] = cache->fetch(key_of(level, hit[slot]),
                                  [&] { return decode(level, hit[slot]); });
    });
    FieldF out(box.extent());
    for (std::size_t i = 0; i < hit.size(); ++i) {
      const auto t = static_cast<std::size_t>(hit[i]);
      const tiled::TileEntry& e = ti.tiles[t];
      const FieldF& b = *bricks[i];
      const Dim3 core = ti.core_extent(t);
      const index_t x0 = std::max(e.origin.x, box.lo.x);
      const index_t x1 = std::min(e.origin.x + core.nx, box.hi.x);
      const index_t y0 = std::max(e.origin.y, box.lo.y);
      const index_t y1 = std::min(e.origin.y + core.ny, box.hi.y);
      const index_t z0 = std::max(e.origin.z, box.lo.z);
      const index_t z1 = std::min(e.origin.z + core.nz, box.hi.z);
      for (index_t z = z0; z < z1; ++z)
        for (index_t y = y0; y < y1; ++y)
          std::copy_n(&b.at(x0 - e.origin.x, y - e.origin.y, z - e.origin.z), x1 - x0,
                      &out.at(x0 - box.lo.x, y - box.lo.y, z - box.lo.z));
    }
    if (hit_out != nullptr) *hit_out = std::move(hit);
    return out;
  }

  /// The layered progressive read: one cache-assembled window per level of
  /// the support chain, coarsest first. Folding with progressive::refine
  /// reproduces progressive::read_region bit-exactly.
  std::vector<ProgressiveLayer> progressive_layers(int level, const tiled::Box& region) {
    MRC_REQUIRE(kind == Dataset::Kind::progressive,
                "serve: not a progressive dataset");
    const auto boxes = progressive::support_chain(gidx, level, region);
    const int top = static_cast<int>(gidx.levels.size()) - 1;
    std::vector<ProgressiveLayer> layers;
    layers.reserve(static_cast<std::size_t>(top - level + 1));
    std::vector<index_t> request_hit;
    for (int l = top; l >= level; --l) {
      OBS_SPAN("serve.progressive_layer");
      ProgressiveLayer layer;
      layer.level = l;
      layer.level_dims = gidx.levels[static_cast<std::size_t>(l)].dims;
      layer.box = boxes[static_cast<std::size_t>(l)];
      layer.residual = l != top;
      layer.data = assemble_level(l, layer.box, l == level ? &request_hit : nullptr);
      layers.push_back(std::move(layer));
    }
    if (cfg.prefetch && pool->size() > 1) prefetch_ring(level, request_hit);
    return layers;
  }

  /// Queues async decodes for the bricks ringing `hit`'s bounding tile box
  /// at Priority::low (the cache dedups against resident bricks, in-flight
  /// decodes and its own backlog cap).
  void prefetch_ring(int level, const std::vector<index_t>& hit) {
    const Dim3& grid = grid_of(level);
    Coord3 lo{grid.nx, grid.ny, grid.nz};
    Coord3 hi{0, 0, 0};
    for (const index_t t : hit) {
      const Coord3 c = tiled::tile_coord(grid, t);
      lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
      hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
    }
    for (index_t z = std::max<index_t>(0, lo.z - 1);
         z <= std::min(grid.nz - 1, hi.z + 1); ++z)
      for (index_t y = std::max<index_t>(0, lo.y - 1);
           y <= std::min(grid.ny - 1, hi.y + 1); ++y)
        for (index_t x = std::max<index_t>(0, lo.x - 1);
             x <= std::min(grid.nx - 1, hi.x + 1); ++x) {
          if (x >= lo.x && x <= hi.x && y >= lo.y && y <= hi.y && z >= lo.z &&
              z <= hi.z)
            continue;  // inside the footprint: already decoded by the read
          const index_t t = x + grid.nx * (y + grid.ny * z);
          cache->prefetch(key_of(level, t), *pool, [this, level, t]() -> BrickPtr {
            // null = "decline": whoever needs the brick decodes it itself.
            if (shutting_down.load(std::memory_order_relaxed)) return nullptr;
            return decode(level, t);
          });
        }
  }
};

Dataset::Dataset(Bytes stream, const Config& cfg)
    : impl_(std::make_unique<Impl>(std::move(stream), cfg, nullptr, nullptr)) {}
Dataset::Dataset(Bytes stream, const Config& cfg, std::shared_ptr<BrickCache> cache,
                 std::shared_ptr<exec::ThreadPool> pool) {
  MRC_REQUIRE(cache != nullptr && pool != nullptr,
              "serve: shared Dataset needs a cache and a pool");
  impl_ = std::make_unique<Impl>(std::move(stream), cfg, std::move(cache),
                                 std::move(pool));
}
Dataset::~Dataset() = default;
Dataset::Dataset(Dataset&&) noexcept = default;
Dataset& Dataset::operator=(Dataset&&) noexcept = default;

Dataset::Kind Dataset::kind() const { return impl_->kind; }

const tiled::Index& Dataset::tiled_index() const {
  MRC_REQUIRE(impl_->kind == Kind::tiled, "serve: not a tiled dataset");
  return impl_->lidx[0];
}

const pyramid::Index& Dataset::index() const {
  MRC_REQUIRE(impl_->kind == Kind::pyramid, "serve: not a pyramid dataset");
  return impl_->pidx;
}

const adaptive::Index& Dataset::adaptive_index() const {
  MRC_REQUIRE(impl_->kind == Kind::adaptive, "serve: not an adaptive dataset");
  return impl_->aidx;
}

const progressive::Index& Dataset::progressive_index() const {
  MRC_REQUIRE(impl_->kind == Kind::progressive, "serve: not a progressive dataset");
  return impl_->gidx;
}

int Dataset::levels() const {
  switch (impl_->kind) {
    case Kind::pyramid: return static_cast<int>(impl_->pidx.levels.size());
    case Kind::progressive: return static_cast<int>(impl_->gidx.levels.size());
    default: return 1;
  }
}

double Dataset::eb() const {
  switch (impl_->kind) {
    case Kind::adaptive: return impl_->aidx.eb;
    case Kind::tiled: return impl_->lidx[0].eb;
    case Kind::progressive: return impl_->gidx.eb;
    case Kind::pyramid: break;
  }
  return impl_->pidx.eb;
}

Dim3 Dataset::dims(int level) const {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  switch (impl_->kind) {
    case Kind::adaptive: return impl_->aidx.dims;
    case Kind::tiled: return impl_->lidx[0].dims;
    case Kind::progressive:
      return impl_->gidx.levels[static_cast<std::size_t>(level)].dims;
    case Kind::pyramid: break;
  }
  return impl_->pidx.levels[static_cast<std::size_t>(level)].dims;
}

double Dataset::level_error(int level) const {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  switch (impl_->kind) {
    case Kind::adaptive: return impl_->adaptive_worst_err;
    case Kind::tiled: return impl_->lidx[0].eb;  // no LOD: codec bound only
    case Kind::progressive:
      return impl_->gidx.levels[static_cast<std::size_t>(level)].approx_err;
    case Kind::pyramid: break;
  }
  return impl_->pidx.levels[static_cast<std::size_t>(level)].approx_err;
}

FieldF Dataset::read_region(int level, const tiled::Box& region) {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  OBS_SPAN("serve.dataset_read");
  Impl& im = *impl_;
  if (im.kind == Kind::progressive) {
    // Fold the layered read top-down with the shared refine step — the same
    // arithmetic as progressive::read_region, hence bit-identical.
    auto layers = im.progressive_layers(level, region);
    FieldF window = std::move(layers.front().data);
    for (std::size_t i = 1; i < layers.size(); ++i) {
      const ProgressiveLayer& fine = layers[i];
      window = progressive::refine(
          window, layers[i - 1].box,
          im.gidx.levels[static_cast<std::size_t>(layers[i - 1].level)].dims,
          fine.data, fine.box,
          im.gidx.levels[static_cast<std::size_t>(fine.level)].dims);
    }
    return window;
  }
  const bool is_adaptive = im.kind == Kind::adaptive;
  // For adaptive streams the hit set already includes the low-side
  // contributors a seam-free blend needs, not just the owners.
  const std::vector<index_t> hit =
      is_adaptive
          ? adaptive::bricks_for_region(im.aidx, region)
          : tiled::tiles_in_region(im.lidx[static_cast<std::size_t>(level)], region);

  // Fetch every brick through the shared cache: resident bricks are hits,
  // in-flight decodes (another reader's, or a queued prefetch this read
  // claims) are coalesced, the rest decode here — one decode per brick
  // however many threads collide. Each brick is held locally so the result
  // stays exact even if the cache immediately evicts it.
  std::vector<BrickPtr> bricks(hit.size());
  im.pool->parallel_for(static_cast<index_t>(hit.size()), [&](index_t i) {
    const auto slot = static_cast<std::size_t>(i);
    bricks[slot] = im.cache->fetch(im.key_of(level, hit[slot]),
                                   [&] { return im.decode(level, hit[slot]); });
  });

  FieldF out(region.extent());
  if (is_adaptive) {
    // Assemble with the container's blend rule over the cached
    // fine-resolution renditions — bit-identical to adaptive::read_region.
    std::unordered_map<index_t, std::size_t> slot;
    slot.reserve(hit.size());
    for (std::size_t i = 0; i < hit.size(); ++i) slot.emplace(hit[i], i);
    adaptive::detail::assemble_region(
        im.aidx, region,
        [&](index_t t) -> const FieldF& { return *bricks[slot.at(t)]; }, out);
  } else {
    // Assemble core ∩ region from every brick — the same ownership rule as
    // tiled::read_region, hence bit-identical output (tiled and pyramid
    // levels share the tile-index layout).
    const tiled::Index& ti = im.lidx[static_cast<std::size_t>(level)];
    for (std::size_t i = 0; i < hit.size(); ++i) {
      const auto t = static_cast<std::size_t>(hit[i]);
      const tiled::TileEntry& e = ti.tiles[t];
      const FieldF& b = *bricks[i];
      const Dim3 core = ti.core_extent(t);
      const index_t x0 = std::max(e.origin.x, region.lo.x);
      const index_t x1 = std::min(e.origin.x + core.nx, region.hi.x);
      const index_t y0 = std::max(e.origin.y, region.lo.y);
      const index_t y1 = std::min(e.origin.y + core.ny, region.hi.y);
      const index_t z0 = std::max(e.origin.z, region.lo.z);
      const index_t z1 = std::min(e.origin.z + core.nz, region.hi.z);
      for (index_t z = z0; z < z1; ++z)
        for (index_t y = y0; y < y1; ++y)
          std::copy_n(&b.at(x0 - e.origin.x, y - e.origin.y, z - e.origin.z), x1 - x0,
                      &out.at(x0 - region.lo.x, y - region.lo.y, z - region.lo.z));
    }
  }

  // Single-lane pools would run "async" prefetch inline and make every read
  // pay for its neighbors — only warm ahead when there are real workers.
  if (im.cfg.prefetch && im.pool->size() > 1) im.prefetch_ring(level, hit);
  return out;
}

std::vector<ProgressiveLayer> Dataset::read_progressive(int level,
                                                        const tiled::Box& region) {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  OBS_SPAN("serve.dataset_read");
  return impl_->progressive_layers(level, region);
}

tiled::Box Dataset::box_at_level(const tiled::Box& fine_box, int level) const {
  MRC_REQUIRE(level >= 0 && level < levels(), "serve: level out of range");
  const Dim3 fd = dims(0);
  const Dim3 ext = fine_box.extent();
  MRC_REQUIRE(fine_box.lo.x >= 0 && fine_box.lo.y >= 0 && fine_box.lo.z >= 0 &&
                  ext.nx > 0 && ext.ny > 0 && ext.nz > 0 && fine_box.hi.x <= fd.nx &&
                  fine_box.hi.y <= fd.ny && fine_box.hi.z <= fd.nz,
              "serve: box must be a non-empty box inside " + fd.str());
  const index_t s = index_t{1} << level;
  const Dim3 ld = dims(level);
  return {{fine_box.lo.x / s, fine_box.lo.y / s, fine_box.lo.z / s},
          {std::min(ceil_div(fine_box.hi.x, s), ld.nx),
           std::min(ceil_div(fine_box.hi.y, s), ld.ny),
           std::min(ceil_div(fine_box.hi.z, s), ld.nz)}};
}

int Dataset::choose_level(const tiled::Box& fine_box, index_t sample_budget) const {
  MRC_REQUIRE(sample_budget >= 1, "serve: sample budget must be >= 1");
  for (int l = 0; l < levels(); ++l)
    if (box_at_level(fine_box, l).extent().size() <= sample_budget) return l;
  return levels() - 1;
}

int Dataset::choose_level(double eb_budget) const {
  MRC_REQUIRE(eb_budget > 0.0, "serve: error budget must be > 0");
  for (int l = levels() - 1; l > 0; --l)
    if (level_error(l) <= eb_budget) return l;
  return 0;
}

CacheStats Dataset::stats() const { return impl_->cache->stats(impl_->ds_id); }

void Dataset::wait_idle() { impl_->cache->wait_idle(impl_->ds_id); }

void Dataset::drop_cache() { impl_->cache->drop(impl_->ds_id); }

}  // namespace mrc::serve
