#pragma once

// Length-prefixed wire protocol of the serve::Server — the frame codec and a
// thin typed Client, both transport-agnostic: anything that can move a byte
// buffer and return the reply buffer (an in-process loopback in the tests
// and benches, a socket in a real deployment) can carry it.
//
// Frame layout (all integers little-endian, fixed width unless noted):
//
//   u32  length     — bytes that follow (type byte + body), in
//                     [1, kMaxFrameBytes], and must equal exactly what the
//                     buffer holds: no trailing garbage, no truncation
//   u8   type       — wire::Type, optionally OR'd with kTracedFlag
//   ...  body       — per-type payload (see wire.cpp encode/decode pairs)
//   [u64 trace]     — only when the type byte carries kTracedFlag: the
//                     client-generated request trace id, echoed verbatim on
//                     the reply — error frames included — so a client can
//                     attribute any reply under pipelining and the server
//                     can stitch the request's spans into one tree
//
// Validation before allocation, always: every count and extent in a frame is
// checked against the bytes actually present (and against hard caps — e.g.
// per-axis region extents <= 2^20) *before* any buffer is sized from it, so
// a hostile 48-bit length claim costs nothing. Malformed frames throw
// CodecError from the decode helpers; Server::handle_frame converts that to
// an error frame, and Client converts error frames into ServerError (the
// server-side code survives the round trip).

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "serve/server.h"

namespace mrc::serve::wire {

/// Protocol revision. 3 (minor bump over PR 8's 2) adds the progressive
/// read pair: the `progressive` request and the multi-frame `progressive_ok`
/// reply — the one request type whose reply buffer holds N concatenated
/// frames (coarse answer first, then one residual refinement per finer
/// level), each individually length-prefixed and each echoing the request's
/// trace id. Version 2 added optional per-request trace ids (kTracedFlag +
/// trailing u64, echoed on every reply including errors), the `debug`
/// flight-recorder frame, the split queue_high/queue_low fields in
/// stats_ok, and the failed-request-type byte in error frames. There is no
/// on-wire handshake yet (both ends of the loopback transport come from one
/// build); the constant documents the revision and lets a future hello
/// frame carry it.
inline constexpr std::uint32_t kWireVersion = 3;

/// Hard cap on `length` — a frame can never demand more than 1 GiB.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Type-byte flag: the frame body ends with a trailing u64 trace id. Chosen
/// as 0x10 because no assigned type byte uses that bit — requests are
/// 0x01..0x0f, replies 0x81..0x8f, and `error` (0xee) has 0x10 clear.
inline constexpr std::uint8_t kTracedFlag = 0x10;

/// Per-axis cap on region extents in a frame (2^20 samples per axis; the
/// containers cap total samples at 2^40, so nothing real comes close).
inline constexpr std::uint64_t kMaxExtent = 1ull << 20;

/// Dataset-id wildcard: a stats request for the whole server.
inline constexpr std::uint32_t kAllDatasets = 0xffff'ffffu;

/// Frame types. Requests in the low range, replies with the high bit set;
/// `error` is the one reply any request may earn.
enum class Type : std::uint8_t {
  open = 0x01,    ///< name blob + stream blob
  region = 0x02,  ///< u32 id, i32 level, box (6 x i64)
  lod = 0x03,     ///< u32 id, box (6 x i64), u64 sample budget
  stats = 0x04,    ///< u32 id (kAllDatasets = server-wide)
  close = 0x05,    ///< u32 id
  metrics = 0x06,  ///< empty — the process-wide obs registry exposition
  debug = 0x07,    ///< empty — flight recorder + slow-log JSON
  progressive = 0x08,  ///< u32 id, i32 level, box (6 x i64)

  open_ok = 0x81,    ///< u32 id, i32 levels, dims (3 x i64), f64 eb
  region_ok = 0x82,  ///< extents (3 x i64), then extents-product f32 samples
  lod_ok = 0x83,     ///< i32 level
  stats_ok = 0x84,   ///< ServerStats fields (see wire.cpp)
  close_ok = 0x85,   ///< empty
  metrics_ok = 0x86, ///< Prometheus-style text blob (obs::render_text)
  debug_ok = 0x87,   ///< JSON text blob (obs::flight_json)
  /// One layer of a progressive reply: i32 level, u8 residual flag, level
  /// dims (3 x i64), box (6 x i64), then box-extent-product f32 samples.
  /// The reply to `progressive` is N of these concatenated in one buffer,
  /// coarsest first, every one echoing the request's trace id.
  progressive_ok = 0x88,
  error = 0xee,      ///< u8 ServerError::Code, message blob, u8 failed type
};

/// A parsed frame; `body` aliases the input buffer.
struct Frame {
  Type type = Type::error;
  std::span<const std::byte> body;
};

/// Validates and splits one complete frame: the length prefix must match the
/// buffer exactly. Throws CodecError otherwise (before looking at the body).
/// The type byte is returned raw — it may still carry kTracedFlag (see
/// parse_request, which strips it).
[[nodiscard]] Frame parse_frame(std::span<const std::byte> buf);

/// A request with its optional trace id split off: `type` has kTracedFlag
/// cleared, `body` excludes the trailing id bytes. `type` defaults to 0 —
/// "the frame never parsed" — which is what the server's flight record and
/// error frames report when parse_request itself throws.
struct Request {
  Type type = static_cast<Type>(0);
  bool traced = false;
  std::uint64_t trace = 0;
  std::span<const std::byte> body;
};

/// parse_frame + trace-id extraction. Throws CodecError when the frame is
/// malformed (including a traced frame too short to hold its id).
[[nodiscard]] Request parse_request(std::span<const std::byte> buf);

/// Wraps a body in the length + type framing.
[[nodiscard]] Bytes make_frame(Type t, std::span<const std::byte> body = {});

/// Stamps a finished frame with a trace id: sets kTracedFlag on the type
/// byte, appends the id, and fixes the length prefix. Identity when
/// `traced` is false. This is how every reply — error frames included —
/// echoes the request's id without each encode path knowing about tracing.
[[nodiscard]] Bytes echo_trace(Bytes frame, bool traced, std::uint64_t trace);

/// An error reply frame carrying a ServerError code + message + the request
/// type byte that failed (0 when the frame never parsed).
[[nodiscard]] Bytes make_error(ServerError::Code code, std::string_view what,
                               std::uint8_t failed_type = 0);

/// What open_ok reports about a freshly opened dataset.
struct OpenInfo {
  std::uint32_t id = 0;
  int levels = 0;
  Dim3 dims;  ///< finest-level extents
  double eb = 0.0;
};

/// One request/reply exchange: ships a frame, returns the reply frame bytes.
/// A progressive request's reply buffer holds N concatenated frames.
using Transport = std::function<Bytes(std::span<const std::byte>)>;

/// One applied frame of a progressive read, for byte accounting (`mrcc
/// region --progressive` prints bytes-streamed-per-level from these).
struct ProgressiveFrameInfo {
  int level = 0;
  tiled::Box box;
  std::size_t frame_bytes = 0;  ///< whole frame incl. length prefix + trace
  bool residual = false;
};

/// Outcome of Client::read_progressive. The client applies frames as they
/// parse, so even a truncated or mid-stream-error reply leaves `data`
/// holding the last fully refined window — a usable coarse answer — with a
/// typed status instead of an exception. Only a reply with *no* usable
/// coarse frame throws.
struct ProgressiveResult {
  enum class Status : std::uint8_t {
    complete,     ///< refined all the way to the requested level
    truncated,    ///< reply ended early (connection drop mid-refinement)
    frame_error,  ///< a malformed/error frame stopped refinement
  };
  FieldF data;     ///< reconstruction over `box` in level-`level` coordinates
  tiled::Box box;  ///< box of `data` (the requested box once complete)
  int level = 0;   ///< level actually reached (the requested one on complete)
  Status status = Status::complete;
  std::string error;  ///< what stopped refinement (empty on complete)
  std::vector<ProgressiveFrameInfo> frames;  ///< applied frames, coarsest first
  [[nodiscard]] bool complete() const { return status == Status::complete; }
};

/// Typed client over any Transport. Methods mirror the Server API; an error
/// frame in reply is rethrown as ServerError with the original code, and a
/// malformed reply throws CodecError.
class Client {
 public:
  explicit Client(Transport send) : send_(std::move(send)) {
    MRC_REQUIRE(send_ != nullptr, "wire: client needs a transport");
  }

  /// Trace id attached to every subsequent request (echoed by the server on
  /// the matching reply, which this client verifies). 0 turns tracing off.
  void set_trace(std::uint64_t id) { trace_ = id; }
  [[nodiscard]] std::uint64_t trace() const { return trace_; }

  OpenInfo open(std::span<const std::byte> stream, std::string_view name = {});
  [[nodiscard]] FieldF region(std::uint32_t id, int level, const tiled::Box& box);
  /// A coarse-first streaming read of a progressive (MRCR) dataset: ships
  /// one `progressive` request, splits the multi-frame reply, and refines
  /// in place — coarse data first, then prolong + residual per level — with
  /// every frame's trace echo, level sequence, support coverage and payload
  /// size validated before it is applied. On complete, `data` is bit-exact
  /// with region(id, level, box). A truncated or mid-stream-error reply
  /// degrades gracefully (see ProgressiveResult); a reply without one
  /// usable coarse frame throws ServerError/CodecError.
  [[nodiscard]] ProgressiveResult read_progressive(std::uint32_t id, int level,
                                                   const tiled::Box& box);
  [[nodiscard]] int choose_level(std::uint32_t id, const tiled::Box& fine_box,
                                 std::uint64_t sample_budget);
  [[nodiscard]] ServerStats stats(std::uint32_t id = kAllDatasets);
  /// The server process's obs registry as Prometheus-style text.
  [[nodiscard]] std::string metrics();
  /// The server process's flight recorder + slow-log as JSON.
  [[nodiscard]] std::string debug();
  void close(std::uint32_t id);

 private:
  /// Ships `body` under `t` (tagged with trace_ when set), validates the
  /// reply frame and its echoed trace id, rethrows error frames as
  /// ServerError (with failed_request/trace attribution filled in), and
  /// requires the reply type to be `expect`. Returns the reply buffer with
  /// any trace suffix already stripped (body = bytes past the 5-byte
  /// header).
  Bytes call(Type t, std::span<const std::byte> body, Type expect);

  Transport send_;
  std::uint64_t trace_ = 0;
};

// -- codec helpers shared by Server::handle_frame and Client ----------------
// (exposed for the fuzz tests; application code uses Server/Client)

void put_box(ByteWriter& w, const tiled::Box& box);
[[nodiscard]] tiled::Box get_box(ByteReader& r);  ///< validates 0 <= lo < hi, extent <= kMaxExtent

[[nodiscard]] Bytes encode_region_ok(const FieldF& f);
[[nodiscard]] FieldF decode_region_ok(std::span<const std::byte> body);

/// One progressive_ok frame from one layer (layout under Type).
[[nodiscard]] Bytes encode_progressive_ok(const ProgressiveLayer& layer);
/// Validates level, flag, dims, box-within-dims and payload == extent
/// product * 4 BEFORE the sample buffer is allocated.
[[nodiscard]] ProgressiveLayer decode_progressive_ok(std::span<const std::byte> body);

[[nodiscard]] Bytes encode_stats_ok(const ServerStats& s);
[[nodiscard]] ServerStats decode_stats_ok(std::span<const std::byte> body);

}  // namespace mrc::serve::wire
