#pragma once

// Length-prefixed wire protocol of the serve::Server — the frame codec and a
// thin typed Client, both transport-agnostic: anything that can move a byte
// buffer and return the reply buffer (an in-process loopback in the tests
// and benches, a socket in a real deployment) can carry it.
//
// Frame layout (all integers little-endian, fixed width unless noted):
//
//   u32  length     — bytes that follow (type byte + body), in
//                     [1, kMaxFrameBytes], and must equal exactly what the
//                     buffer holds: no trailing garbage, no truncation
//   u8   type       — wire::Type
//   ...  body       — per-type payload (see wire.cpp encode/decode pairs)
//
// Validation before allocation, always: every count and extent in a frame is
// checked against the bytes actually present (and against hard caps — e.g.
// per-axis region extents <= 2^20) *before* any buffer is sized from it, so
// a hostile 48-bit length claim costs nothing. Malformed frames throw
// CodecError from the decode helpers; Server::handle_frame converts that to
// an error frame, and Client converts error frames into ServerError (the
// server-side code survives the round trip).

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "serve/server.h"

namespace mrc::serve::wire {

/// Hard cap on `length` — a frame can never demand more than 1 GiB.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Per-axis cap on region extents in a frame (2^20 samples per axis; the
/// containers cap total samples at 2^40, so nothing real comes close).
inline constexpr std::uint64_t kMaxExtent = 1ull << 20;

/// Dataset-id wildcard: a stats request for the whole server.
inline constexpr std::uint32_t kAllDatasets = 0xffff'ffffu;

/// Frame types. Requests in the low range, replies with the high bit set;
/// `error` is the one reply any request may earn.
enum class Type : std::uint8_t {
  open = 0x01,    ///< name blob + stream blob
  region = 0x02,  ///< u32 id, i32 level, box (6 x i64)
  lod = 0x03,     ///< u32 id, box (6 x i64), u64 sample budget
  stats = 0x04,    ///< u32 id (kAllDatasets = server-wide)
  close = 0x05,    ///< u32 id
  metrics = 0x06,  ///< empty — the process-wide obs registry exposition

  open_ok = 0x81,    ///< u32 id, i32 levels, dims (3 x i64), f64 eb
  region_ok = 0x82,  ///< extents (3 x i64), then extents-product f32 samples
  lod_ok = 0x83,     ///< i32 level
  stats_ok = 0x84,   ///< ServerStats fields (see wire.cpp)
  close_ok = 0x85,   ///< empty
  metrics_ok = 0x86, ///< Prometheus-style text blob (obs::render_text)
  error = 0xee,      ///< u8 ServerError::Code, message blob
};

/// A parsed frame; `body` aliases the input buffer.
struct Frame {
  Type type = Type::error;
  std::span<const std::byte> body;
};

/// Validates and splits one complete frame: the length prefix must match the
/// buffer exactly. Throws CodecError otherwise (before looking at the body).
[[nodiscard]] Frame parse_frame(std::span<const std::byte> buf);

/// Wraps a body in the length + type framing.
[[nodiscard]] Bytes make_frame(Type t, std::span<const std::byte> body = {});

/// An error reply frame carrying a ServerError code + message.
[[nodiscard]] Bytes make_error(ServerError::Code code, std::string_view what);

/// What open_ok reports about a freshly opened dataset.
struct OpenInfo {
  std::uint32_t id = 0;
  int levels = 0;
  Dim3 dims;  ///< finest-level extents
  double eb = 0.0;
};

/// One request/reply exchange: ships a frame, returns the reply frame bytes.
using Transport = std::function<Bytes(std::span<const std::byte>)>;

/// Typed client over any Transport. Methods mirror the Server API; an error
/// frame in reply is rethrown as ServerError with the original code, and a
/// malformed reply throws CodecError.
class Client {
 public:
  explicit Client(Transport send) : send_(std::move(send)) {
    MRC_REQUIRE(send_ != nullptr, "wire: client needs a transport");
  }

  OpenInfo open(std::span<const std::byte> stream, std::string_view name = {});
  [[nodiscard]] FieldF region(std::uint32_t id, int level, const tiled::Box& box);
  [[nodiscard]] int choose_level(std::uint32_t id, const tiled::Box& fine_box,
                                 std::uint64_t sample_budget);
  [[nodiscard]] ServerStats stats(std::uint32_t id = kAllDatasets);
  /// The server process's obs registry as Prometheus-style text.
  [[nodiscard]] std::string metrics();
  void close(std::uint32_t id);

 private:
  /// Ships `body` under `t`, validates the reply frame, rethrows error
  /// frames as ServerError, and requires the reply type to be `expect`.
  /// Returns the whole reply buffer (body = bytes past the 5-byte header).
  Bytes call(Type t, std::span<const std::byte> body, Type expect);

  Transport send_;
};

// -- codec helpers shared by Server::handle_frame and Client ----------------
// (exposed for the fuzz tests; application code uses Server/Client)

void put_box(ByteWriter& w, const tiled::Box& box);
[[nodiscard]] tiled::Box get_box(ByteReader& r);  ///< validates 0 <= lo < hi, extent <= kMaxExtent

[[nodiscard]] Bytes encode_region_ok(const FieldF& f);
[[nodiscard]] FieldF decode_region_ok(std::span<const std::byte> body);

[[nodiscard]] Bytes encode_stats_ok(const ServerStats& s);
[[nodiscard]] ServerStats decode_stats_ok(std::span<const std::byte> body);

}  // namespace mrc::serve::wire
