#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "obs/flight.h"
#include "obs/obs.h"
#include "serve/latency.h"
#include "serve/wire.h"

namespace mrc::serve {

struct Server::Impl {
  ServerConfig cfg;

  // The cache is declared before the pool and the pool before the dataset
  // registry: destruction runs datasets (each drains its decodes) -> pool
  // (joins workers) -> cache, so no queued task ever outlives what it
  // references.
  std::shared_ptr<BrickCache> cache;
  std::shared_ptr<exec::ThreadPool> pool;

  struct Served {
    std::string name;
    std::shared_ptr<Dataset> ds;
  };
  mutable std::shared_mutex mu;           ///< guards the registry only
  std::map<std::uint32_t, Served> datasets;
  std::uint32_t next_id = 1;

  std::atomic<std::uint64_t> active{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> rejected{0};
  LatencyHistogram latency;

  explicit Impl(const ServerConfig& c) : cfg(c) {
    MRC_REQUIRE(cfg.cache_bytes >= 1, "serve: cache byte budget must be >= 1");
    MRC_REQUIRE(cfg.max_active >= 1, "serve: admission cap must be >= 1");
    cache = std::make_shared<BrickCache>(cfg.cache_bytes, cfg.shards);
    pool = std::make_shared<exec::ThreadPool>(cfg.threads);
  }

  /// Handle lookup: a shared_ptr snapshot, so reads keep serving a dataset
  /// that is concurrently close()d and the registry lock is never held
  /// across a decode.
  [[nodiscard]] std::shared_ptr<Dataset> find(std::uint32_t id) const {
    const std::shared_lock lock(mu);
    const auto it = datasets.find(id);
    if (it == datasets.end())
      throw ServerError(ServerError::Code::unknown_dataset,
                        "serve: unknown dataset id " + std::to_string(id));
    return it->second.ds;
  }

  /// Admission gate: at most cfg.max_active reads in flight; excess load is
  /// shed immediately (Code::overloaded) instead of queueing without bound.
  struct Admission {
    Impl& im;
    explicit Admission(Impl& im_) : im(im_) {
      // The registry mirrors (mrc.serve.requests / .rejected) tick at the
      // same sites as the per-server atomics, so the wire `metrics` frame
      // reconciles exactly with ServerStats in a single-server process.
      static obs::Counter& g_requests =
          obs::Registry::global().counter("mrc.serve.requests");
      static obs::Counter& g_rejected =
          obs::Registry::global().counter("mrc.serve.rejected");
      if (im.active.fetch_add(1, std::memory_order_acq_rel) >=
          im.cfg.max_active) {
        im.active.fetch_sub(1, std::memory_order_acq_rel);
        im.rejected.fetch_add(1, std::memory_order_relaxed);
        g_rejected.add(1);
        throw ServerError(ServerError::Code::overloaded,
                          "serve: overloaded, retry later (admission cap " +
                              std::to_string(im.cfg.max_active) + ")");
      }
      im.requests.fetch_add(1, std::memory_order_relaxed);
      g_requests.add(1);
    }
    ~Admission() { im.active.fetch_sub(1, std::memory_order_acq_rel); }
    Admission(const Admission&) = delete;
    Admission& operator=(const Admission&) = delete;
  };

  /// Server-wide gauges around a cache-counter snapshot of any scope.
  [[nodiscard]] ServerStats gauges(CacheStats c) const {
    ServerStats s;
    s.cache = c;
    {
      const std::shared_lock lock(mu);
      s.datasets = static_cast<std::uint32_t>(datasets.size());
    }
    s.queue_high = pool->queued_high();
    s.queue_low = pool->queued_low();
    s.active = active.load(std::memory_order_relaxed);
    s.requests = requests.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.p50_us = latency.quantile_us(0.50);
    s.p99_us = latency.quantile_us(0.99);
    return s;
  }
};

Server::Server(const ServerConfig& cfg) : impl_(std::make_unique<Impl>(cfg)) {}
Server::~Server() = default;
Server::Server(Server&&) noexcept = default;
Server& Server::operator=(Server&&) noexcept = default;

std::uint32_t Server::open(Bytes stream, std::string name) {
  Impl& im = *impl_;
  Config dcfg;  // budget/threads/shards live in the shared resources
  dcfg.prefetch = im.cfg.prefetch;
  auto ds = std::make_shared<Dataset>(std::move(stream), dcfg, im.cache, im.pool);
  const std::unique_lock lock(im.mu);
  const std::uint32_t id = im.next_id++;
  im.datasets.emplace(id, Impl::Served{std::move(name), std::move(ds)});
  return id;
}

void Server::close(std::uint32_t id) {
  Impl& im = *impl_;
  std::shared_ptr<Dataset> ds;  // destroyed outside the lock: teardown drains
  {
    const std::unique_lock lock(im.mu);
    const auto it = im.datasets.find(id);
    if (it == im.datasets.end())
      throw ServerError(ServerError::Code::unknown_dataset,
                        "serve: unknown dataset id " + std::to_string(id));
    ds = std::move(it->second.ds);
    im.datasets.erase(it);
  }
  ds->drop_cache();  // hand the budget back now, not at the last reference
}

std::vector<std::pair<std::uint32_t, std::string>> Server::list() const {
  const Impl& im = *impl_;
  const std::shared_lock lock(im.mu);
  std::vector<std::pair<std::uint32_t, std::string>> out;
  out.reserve(im.datasets.size());
  for (const auto& [id, served] : im.datasets) out.emplace_back(id, served.name);
  return out;
}

int Server::levels(std::uint32_t id) const { return impl_->find(id)->levels(); }

Dim3 Server::dims(std::uint32_t id, int level) const {
  return impl_->find(id)->dims(level);
}

double Server::eb(std::uint32_t id) const { return impl_->find(id)->eb(); }

FieldF Server::read_region(std::uint32_t id, int level, const tiled::Box& region) {
  Impl& im = *impl_;
  const std::shared_ptr<Dataset> ds = im.find(id);
  const Impl::Admission gate(im);
  OBS_SPAN("serve.read_region");
  const auto t0 = std::chrono::steady_clock::now();
  FieldF out = ds->read_region(level, region);
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  im.latency.record(us);
  if (obs::enabled()) {
    static obs::Histogram& h =
        obs::Registry::global().histogram("mrc.serve.read_us");
    h.record(us);
  }
  return out;
}

std::vector<ProgressiveLayer> Server::read_progressive(std::uint32_t id, int level,
                                                       const tiled::Box& region) {
  Impl& im = *impl_;
  const std::shared_ptr<Dataset> ds = im.find(id);
  // One admission slot covers the whole layer chain — a progressive read is
  // one request, not one per level.
  const Impl::Admission gate(im);
  OBS_SPAN("serve.read_progressive");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ProgressiveLayer> out = ds->read_progressive(level, region);
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  im.latency.record(us);
  if (obs::enabled()) {
    static obs::Histogram& h =
        obs::Registry::global().histogram("mrc.serve.read_us");
    h.record(us);
  }
  return out;
}

int Server::choose_level(std::uint32_t id, const tiled::Box& fine_box,
                         index_t sample_budget) const {
  return impl_->find(id)->choose_level(fine_box, sample_budget);
}

ServerStats Server::stats() const { return impl_->gauges(impl_->cache->stats()); }

ServerStats Server::stats(std::uint32_t id) const {
  return impl_->gauges(impl_->find(id)->stats());
}

void Server::wait_idle() { impl_->cache->wait_idle(); }

Bytes Server::handle_frame(std::span<const std::byte> frame) {
  const auto done = [](ByteReader& r) {
    if (!r.exhausted()) throw CodecError("wire: request has trailing bytes");
  };
  // The request clock, context, and flight record start before parsing:
  // even an unparseable frame gets a record (frame_type 0) with its true
  // latency. The context scope makes the request's trace id and per-request
  // counters visible to everything this thread — and, via the pool's task
  // wrapper, every lane — touches while serving it.
  const std::uint64_t t0 = obs::now_ns();
  const auto ctx = std::make_shared<obs::RequestCtx>();
  const obs::RequestScope scope(ctx);
  wire::Request req;     // stays zeroed when parse_request throws
  obs::FlightRecord fr;  // dataset/box/level filled per frame type below

  // Per-frame-type latency histograms (mrc.serve.frame_us.<type>) and the
  // stitched request span, recorded around the full dispatch — parse to
  // reply bytes — when obs is enabled. The serve.request span is recorded
  // *before* the flight record so a slow-log capture sees the whole tree.
  const bool timed = obs::enabled();
  const auto reply = [&](const char* type_name, Bytes r, std::uint8_t outcome) {
    const std::uint64_t t1 = obs::now_ns();
    if (timed) {
      obs::Registry::global()
          .histogram(std::string("mrc.serve.frame_us.") + type_name)
          .record((t1 - t0) / 1000);
      obs::detail::record_span("serve.request", t0, t1 - t0);
    }
    fr.trace = req.trace;
    fr.frame_type = static_cast<std::uint8_t>(req.type);
    fr.outcome = outcome;
    fr.cache_hits = ctx->cache_hits.load(std::memory_order_relaxed);
    fr.cache_misses = ctx->cache_misses.load(std::memory_order_relaxed);
    fr.queue_wait_us = ctx->queue_wait_ns.load(std::memory_order_relaxed) / 1000;
    fr.end_ns = t1;
    fr.total_us = (t1 - t0) / 1000;
    obs::FlightRecorder::global().record(fr);
    return r;
  };
  const auto finish = [&](const char* type_name, Bytes r) {
    return reply(type_name, wire::echo_trace(std::move(r), req.traced, req.trace),
                 /*outcome=*/0);
  };
  try {
    {
      // Recorded after ctx->trace is set, so the decode span carries the id.
      const std::uint64_t tp0 = timed ? obs::now_ns() : 0;
      req = wire::parse_request(frame);
      ctx->trace = req.trace;
      if (timed)
        obs::detail::record_span("wire.decode", tp0, obs::now_ns() - tp0);
    }
    ByteReader r(req.body);
    switch (req.type) {
      case wire::Type::open: {
        const std::span<const std::byte> name_b = r.get_blob();
        const std::span<const std::byte> stream_b = r.get_blob();
        done(r);
        std::string name(reinterpret_cast<const char*>(name_b.data()),
                         name_b.size());
        const std::uint32_t id =
            open(Bytes(stream_b.begin(), stream_b.end()), std::move(name));
        fr.dataset = id;
        Bytes body;
        ByteWriter w(body);
        w.put<std::uint32_t>(id);
        w.put<std::int32_t>(levels(id));
        const Dim3 d = dims(id, 0);
        w.put<std::int64_t>(d.nx);
        w.put<std::int64_t>(d.ny);
        w.put<std::int64_t>(d.nz);
        w.put<double>(eb(id));
        return finish("open", wire::make_frame(wire::Type::open_ok, body));
      }
      case wire::Type::region: {
        const auto id = r.get<std::uint32_t>();
        const auto level = r.get<std::int32_t>();
        const tiled::Box box = wire::get_box(r);
        done(r);
        fr.dataset = id;
        fr.level = level;
        fr.box_lo[0] = box.lo.x, fr.box_lo[1] = box.lo.y, fr.box_lo[2] = box.lo.z;
        fr.box_hi[0] = box.hi.x, fr.box_hi[1] = box.hi.y, fr.box_hi[2] = box.hi.z;
        const FieldF f = read_region(id, level, box);
        const std::uint64_t te0 = timed ? obs::now_ns() : 0;
        Bytes out = wire::encode_region_ok(f);
        if (timed)
          obs::detail::record_span("wire.encode", te0, obs::now_ns() - te0);
        return finish("region", std::move(out));
      }
      case wire::Type::progressive: {
        const auto id = r.get<std::uint32_t>();
        const auto level = r.get<std::int32_t>();
        const tiled::Box box = wire::get_box(r);
        done(r);
        fr.dataset = id;
        fr.level = level;
        fr.box_lo[0] = box.lo.x, fr.box_lo[1] = box.lo.y, fr.box_lo[2] = box.lo.z;
        fr.box_hi[0] = box.hi.x, fr.box_hi[1] = box.hi.y, fr.box_hi[2] = box.hi.z;
        const std::vector<ProgressiveLayer> layers =
            read_progressive(id, level, box);
        // The reply is N concatenated frames, coarsest first, and every one
        // echoes the trace id itself — so this case concatenates already-
        // stamped frames and returns through `reply`, NOT `finish` (which
        // would stamp the concatenation a second time).
        const std::uint64_t te0 = timed ? obs::now_ns() : 0;
        Bytes out;
        for (const ProgressiveLayer& layer : layers) {
          const Bytes one = wire::echo_trace(wire::encode_progressive_ok(layer),
                                             req.traced, req.trace);
          out.insert(out.end(), one.begin(), one.end());
        }
        if (timed)
          obs::detail::record_span("wire.encode", te0, obs::now_ns() - te0);
        if (obs::enabled()) {
          static obs::Counter& g_req =
              obs::Registry::global().counter("mrc.progressive.requests");
          static obs::Counter& g_frames =
              obs::Registry::global().counter("mrc.progressive.frames");
          static obs::Counter& g_bytes =
              obs::Registry::global().counter("mrc.progressive.bytes");
          g_req.add(1);
          g_frames.add(layers.size());
          g_bytes.add(out.size());
        }
        return reply("progressive", std::move(out), /*outcome=*/0);
      }
      case wire::Type::lod: {
        const auto id = r.get<std::uint32_t>();
        const tiled::Box box = wire::get_box(r);
        const auto budget = r.get<std::uint64_t>();
        done(r);
        fr.dataset = id;
        fr.box_lo[0] = box.lo.x, fr.box_lo[1] = box.lo.y, fr.box_lo[2] = box.lo.z;
        fr.box_hi[0] = box.hi.x, fr.box_hi[1] = box.hi.y, fr.box_hi[2] = box.hi.z;
        const int level = choose_level(id, box, static_cast<index_t>(budget));
        fr.level = level;
        Bytes body;
        ByteWriter w(body);
        w.put<std::int32_t>(level);
        return finish("lod", wire::make_frame(wire::Type::lod_ok, body));
      }
      case wire::Type::stats: {
        const auto id = r.get<std::uint32_t>();
        done(r);
        fr.dataset = id;
        return finish("stats",
                      wire::encode_stats_ok(id == wire::kAllDatasets ? stats()
                                                                     : stats(id)));
      }
      case wire::Type::metrics: {
        // Malformed metrics frames (trailing bytes) die in done() — before
        // the exposition text is built or any reply buffer is allocated.
        done(r);
        const std::string text = obs::render_text();
        Bytes body;
        ByteWriter w(body);
        w.put_blob(std::as_bytes(std::span(text.data(), text.size())));
        return finish("metrics", wire::make_frame(wire::Type::metrics_ok, body));
      }
      case wire::Type::debug: {
        done(r);
        const std::string text = obs::flight_json();
        Bytes body;
        ByteWriter w(body);
        w.put_blob(std::as_bytes(std::span(text.data(), text.size())));
        return finish("debug", wire::make_frame(wire::Type::debug_ok, body));
      }
      case wire::Type::close: {
        const auto id = r.get<std::uint32_t>();
        done(r);
        fr.dataset = id;
        close(id);
        return finish("close", wire::make_frame(wire::Type::close_ok));
      }
      default:
        throw ServerError(ServerError::Code::bad_request,
                          "wire: unknown frame type");
    }
  } catch (const ServerError& e) {
    // Error frames carry the failed request type and — like every reply —
    // echo the trace id, so a pipelining client can attribute the failure.
    return reply("error",
                 wire::echo_trace(
                     wire::make_error(e.code(), e.what(),
                                      static_cast<std::uint8_t>(req.type)),
                     req.traced, req.trace),
                 static_cast<std::uint8_t>(e.code()));
  } catch (const std::exception& e) {
    // Contract violations, malformed frames, decode failures: the client
    // asked for something the server cannot do — a bad request either way.
    return reply("error",
                 wire::echo_trace(
                     wire::make_error(ServerError::Code::bad_request, e.what(),
                                      static_cast<std::uint8_t>(req.type)),
                     req.traced, req.trace),
                 static_cast<std::uint8_t>(ServerError::Code::bad_request));
  }
}

}  // namespace mrc::serve
