#pragma once

// Cached Dataset serving layer over the multi-resolution containers: open a
// tiled stream (MRCT), a LOD pyramid (MRCP), an adaptive stream (MRCA) or a
// progressive residual stream (MRCR) once, then answer region queries with
// a working set bounded by a byte budget instead of the request size. The
// pieces:
//
//   * a shared, sharded, byte-budgeted brick cache (serve::BrickCache) so
//     repeated viewport queries decode each brick once. A standalone Dataset
//     owns a private cache and exec pool sized by its Config; Datasets
//     opened by a multi-tenant serve::Server instead share one global cache
//     and one pool, so a hot dataset's bricks can evict a cold one's;
//   * request coalescing: every decode — demand or prefetch — registers in
//     the cache's in-flight table, so identical concurrent requests for one
//     brick run exactly one decode, and a demand read claims (preempts) a
//     queued-but-unstarted prefetch of the same brick instead of waiting
//     behind it;
//   * async prefetch of the bricks ringing a query's footprint, queued at
//     exec::Priority::low so warming never delays a demand read;
//   * adaptive LOD selection — choose_level maps a viewport box plus a
//     sample budget (or an error budget) to the cheapest sufficient level,
//     so callers ask for a window and a budget, not a level.
//
// Dataset is safe to hammer from any number of threads: every read is
// bit-identical to tiled/pyramid/adaptive read_region on the same
// (level, box), whatever the cache/prefetch state. stats() returns an
// atomically consistent snapshot: `hits + misses == lookups` holds exactly
// in any snapshot, concurrent load included (counters are mutated only
// under the cache's shard locks — see brick_cache.h). Adaptive and tiled
// streams expose one addressable level (0); for adaptive that is the
// seam-free blended finest grid, and what varies is the stored resolution
// underneath, which is the container's business.

#include <cstdint>
#include <memory>

#include <vector>

#include "adaptive/adaptive.h"
#include "common/bytes.h"
#include "progressive/progressive.h"
#include "pyramid/pyramid.h"
#include "serve/brick_cache.h"

namespace mrc::serve {

/// One layer of a progressive read: the coarsest layer carries decoded
/// data over its box; every finer layer carries a *residual* window the
/// client applies in place via progressive::refine. Boxes are in each
/// layer's own level coordinates and follow the prolongation-support chain
/// (layer l+1's box covers the prolongation footprint of layer l's).
struct ProgressiveLayer {
  int level = 0;
  Dim3 level_dims;  ///< global extents of this level (client prolongs with these)
  tiled::Box box;
  FieldF data;
  bool residual = false;  ///< false only for the coarsest layer
};

struct Config {
  std::size_t cache_bytes = 256ull << 20;  ///< decoded-brick byte budget
  int threads = 0;   ///< exec-pool lanes for decode + prefetch; 0 = hardware
  bool prefetch = true;  ///< warm neighbor bricks asynchronously (needs > 1 lane)
  int shards = 8;    ///< cache shard count (lock striping)
};

class Dataset {
 public:
  enum class Kind : std::uint8_t { tiled, pyramid, adaptive, progressive };

  /// Opens a tiled (MRCT), pyramid (MRCP), adaptive (MRCA) or progressive
  /// (MRCR) stream — dispatched on the container header — taking ownership
  /// of the bytes and parsing + validating the full index once. Builds a
  /// private cache (cfg.cache_bytes, cfg.shards) and exec pool
  /// (cfg.threads). Throws CodecError on any other stream.
  explicit Dataset(Bytes stream, const Config& cfg = {});

  /// Same, but serving through a shared cache and pool (the multi-tenant
  /// serve::Server path). cfg.cache_bytes/threads/shards are ignored — the
  /// shared resources already exist — and cfg.prefetch still gates the
  /// prefetch ring. Both pointers must be non-null.
  Dataset(Bytes stream, const Config& cfg, std::shared_ptr<BrickCache> cache,
          std::shared_ptr<exec::ThreadPool> pool);

  ~Dataset();
  Dataset(Dataset&&) noexcept;
  Dataset& operator=(Dataset&&) noexcept;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  [[nodiscard]] Kind kind() const;
  /// The tile index of a tiled dataset (throws ContractError otherwise).
  [[nodiscard]] const tiled::Index& tiled_index() const;
  /// The pyramid index (pyramid datasets only; throws ContractError else).
  [[nodiscard]] const pyramid::Index& index() const;
  /// The adaptive brick index (adaptive datasets only).
  [[nodiscard]] const adaptive::Index& adaptive_index() const;
  /// The progressive level table (progressive datasets only).
  [[nodiscard]] const progressive::Index& progressive_index() const;
  /// Addressable level count: the pyramid's/progressive stream's level
  /// table, or 1 for tiled and adaptive streams (adaptive level 0 = the
  /// blended finest grid).
  [[nodiscard]] int levels() const;
  [[nodiscard]] Dim3 dims(int level) const;  ///< extents of one level
  [[nodiscard]] double eb() const;
  /// LOD error bound of a level: pyramid::LevelEntry::approx_err, the worst
  /// per-brick approx_err of an adaptive stream (its level 0 already mixes
  /// resolutions), or the codec error bound for tiled streams (no LOD).
  [[nodiscard]] double level_error(int level) const;

  /// Reads `region` (in level-`level` coordinates) through the brick cache —
  /// bit-identical to tiled/pyramid/progressive::read_region(stream, level,
  /// region), or to adaptive::read_region(stream, region) for adaptive
  /// datasets (which serve only level 0, in finest-grid coordinates). For
  /// progressive datasets the cache holds residual bricks keyed by their own
  /// level and the reconstruction chain runs here, top-down.
  [[nodiscard]] FieldF read_region(int level, const tiled::Box& region);

  /// The layered form of a progressive read (progressive datasets only):
  /// the coarsest layer's decoded data over the support chain's top box,
  /// then one residual window per finer level down to `level`, coarsest
  /// first. Folding the layers with progressive::refine reproduces
  /// read_region(level, region) bit-exactly — this is what the wire
  /// protocol streams so a client can show the coarse answer immediately
  /// and refine in place.
  [[nodiscard]] std::vector<ProgressiveLayer> read_progressive(
      int level, const tiled::Box& region);

  /// A finest-grid box mapped onto level `level` (floor/ceil to cover the
  /// same spatial extent, clipped to the level grid).
  [[nodiscard]] tiled::Box box_at_level(const tiled::Box& fine_box, int level) const;

  /// The finest level whose rendition of `fine_box` fits in `sample_budget`
  /// samples; never exceeds the budget unless even the coarsest level does
  /// (then the coarsest level — the cheapest available — is returned).
  [[nodiscard]] int choose_level(const tiled::Box& fine_box,
                                 index_t sample_budget) const;

  /// The coarsest (cheapest) level whose LOD error bound stays within
  /// `eb_budget`; level 0 if none does.
  [[nodiscard]] int choose_level(double eb_budget) const;

  /// This dataset's slice of the cache counters. The snapshot is internally
  /// consistent: `hits + misses == lookups` holds exactly — under concurrent
  /// reads, mid-prefetch, always — because counters only change under the
  /// cache's shard locks. With a shared cache, bytes/entries/evictions
  /// reflect this dataset's residency inside the *global* budget.
  [[nodiscard]] CacheStats stats() const;

  /// Blocks until no decode of this dataset is queued or running (benches
  /// and tests use this to make cache contents deterministic).
  void wait_idle();

  /// Evicts this dataset's bricks (counters keep accumulating).
  void drop_cache();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrc::serve
