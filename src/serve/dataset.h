#pragma once

// Cached Dataset serving layer over the multi-resolution containers: open a
// LOD pyramid (MRCP) or an adaptive stream (MRCA) once, then answer region
// queries with a working set bounded by a byte budget instead of the request
// size. The pieces:
//
//   * a sharded, thread-safe LRU brick cache (keyed by level + brick id —
//     for adaptive streams the key carries each brick's *own* level —
//     byte-budgeted, hit/miss/eviction counters) so repeated viewport
//     queries decode each brick once;
//   * async prefetch of the bricks ringing a query's footprint on the exec
//     pool, so a panning viewport finds its next bricks already decoded;
//   * adaptive LOD selection — choose_level maps a viewport box plus a
//     sample budget (or an error budget) to the cheapest sufficient level,
//     so callers ask for a window and a budget, not a level.
//
// Dataset is safe to hammer from any number of threads: every read is
// bit-identical to pyramid::read_region / adaptive::read_region on the same
// (level, box), whatever the cache/prefetch state, and counters stay
// consistent (hits + misses == brick lookups). Adaptive streams expose one
// addressable level (0, the seam-free blended finest grid); what varies is
// the stored resolution underneath, which is the container's business.

#include <cstdint>
#include <memory>

#include "adaptive/adaptive.h"
#include "common/bytes.h"
#include "pyramid/pyramid.h"

namespace mrc::serve {

struct Config {
  std::size_t cache_bytes = 256ull << 20;  ///< decoded-brick byte budget
  int threads = 0;   ///< exec-pool lanes for decode + prefetch; 0 = hardware
  bool prefetch = true;  ///< warm neighbor bricks asynchronously (needs > 1 lane)
  int shards = 8;    ///< cache shard count (lock striping)
};

struct CacheStats {
  std::uint64_t hits = 0;        ///< brick lookups served from cache
  std::uint64_t misses = 0;      ///< brick lookups that had to decode
  std::uint64_t evictions = 0;   ///< bricks dropped to stay under budget
  std::uint64_t prefetched = 0;  ///< bricks decoded by the prefetch path
  std::size_t bytes = 0;         ///< decoded bytes currently cached
  std::size_t entries = 0;       ///< bricks currently cached

  [[nodiscard]] double hit_ratio() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class Dataset {
 public:
  enum class Kind : std::uint8_t { pyramid, adaptive };

  /// Opens a pyramid (MRCP) or adaptive (MRCA) stream — dispatched on the
  /// container header — taking ownership of the bytes and parsing +
  /// validating the full index once. Throws CodecError on anything else.
  explicit Dataset(Bytes stream, const Config& cfg = {});
  ~Dataset();
  Dataset(Dataset&&) noexcept;
  Dataset& operator=(Dataset&&) noexcept;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  [[nodiscard]] Kind kind() const;
  /// The pyramid index (pyramid datasets only; throws ContractError else).
  [[nodiscard]] const pyramid::Index& index() const;
  /// The adaptive brick index (adaptive datasets only).
  [[nodiscard]] const adaptive::Index& adaptive_index() const;
  /// Addressable level count: the pyramid's level table, or 1 for adaptive
  /// streams (level 0 = the blended finest grid).
  [[nodiscard]] int levels() const;
  [[nodiscard]] Dim3 dims(int level) const;  ///< extents of one level
  [[nodiscard]] double eb() const;
  /// LOD error bound of a level: pyramid::LevelEntry::approx_err, or the
  /// worst per-brick approx_err of an adaptive stream (its level 0 already
  /// mixes resolutions).
  [[nodiscard]] double level_error(int level) const;

  /// Reads `region` (in level-`level` coordinates) through the brick cache —
  /// bit-identical to pyramid::read_region(stream, level, region), or to
  /// adaptive::read_region(stream, region) for adaptive datasets (which
  /// serve only level 0, in finest-grid coordinates).
  [[nodiscard]] FieldF read_region(int level, const tiled::Box& region);

  /// A finest-grid box mapped onto level `level` (floor/ceil to cover the
  /// same spatial extent, clipped to the level grid).
  [[nodiscard]] tiled::Box box_at_level(const tiled::Box& fine_box, int level) const;

  /// The finest level whose rendition of `fine_box` fits in `sample_budget`
  /// samples; never exceeds the budget unless even the coarsest level does
  /// (then the coarsest level — the cheapest available — is returned).
  [[nodiscard]] int choose_level(const tiled::Box& fine_box,
                                 index_t sample_budget) const;

  /// The coarsest (cheapest) level whose LOD error bound stays within
  /// `eb_budget`; level 0 if none does.
  [[nodiscard]] int choose_level(double eb_budget) const;

  [[nodiscard]] CacheStats stats() const;

  /// Blocks until all outstanding prefetch tasks have drained (benches and
  /// tests use this to make cache contents deterministic).
  void wait_idle();

  /// Empties the brick cache (counters keep accumulating).
  void drop_cache();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrc::serve
