#include "lossless/lzss.h"

#include <array>
#include <cstring>

namespace mrc::lossless {

namespace {

constexpr std::size_t kWindow = 65535;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 259;  // length - kMinMatch fits one byte
constexpr int kHashBits = 15;
constexpr int kMaxChain = 48;

std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

enum class Mode : std::uint8_t { raw = 0, compressed = 1 };

}  // namespace

Bytes lzss_compress(std::span<const std::byte> in) {
  Bytes out;
  ByteWriter header(out);
  header.put(Mode::compressed);
  header.put_varint(in.size());

  // Token stream: a control byte precedes each group of 8 tokens; bit i set
  // means token i is a match (3 bytes: 16-bit distance, 8-bit length-4),
  // clear means a literal byte.
  std::vector<std::int64_t> head(static_cast<std::size_t>(1) << kHashBits, -1);
  std::vector<std::int64_t> prev(in.size(), -1);

  Bytes tokens;
  std::uint8_t control = 0;
  int group_fill = 0;
  std::size_t control_pos = 0;
  auto begin_group = [&] {
    control = 0;
    group_fill = 0;
    control_pos = tokens.size();
    tokens.push_back(std::byte{0});
  };
  auto end_token = [&](bool is_match) {
    if (is_match) control |= static_cast<std::uint8_t>(1u << group_fill);
    if (++group_fill == 8) {
      tokens[control_pos] = static_cast<std::byte>(control);
      begin_group();
    }
  };

  begin_group();
  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= in.size()) {
      const auto h = hash4(in.data() + i);
      std::int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindow &&
             chain++ < kMaxChain) {
        const auto c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        const std::size_t limit = std::min(kMaxMatch, in.size() - i);
        while (len < limit && in[c + len] == in[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == limit) break;
        }
        cand = prev[c];
      }
    }

    if (best_len >= kMinMatch) {
      tokens.push_back(static_cast<std::byte>(best_dist & 0xff));
      tokens.push_back(static_cast<std::byte>((best_dist >> 8) & 0xff));
      tokens.push_back(static_cast<std::byte>(best_len - kMinMatch));
      end_token(true);
      // Insert hash entries for the covered positions so later matches can
      // reference the interior of this match.
      const std::size_t stop = std::min(i + best_len, in.size() - kMinMatch + 1);
      for (std::size_t j = i; j < stop; ++j) {
        const auto h = hash4(in.data() + j);
        prev[j] = head[h];
        head[h] = static_cast<std::int64_t>(j);
      }
      i += best_len;
    } else {
      if (i + kMinMatch <= in.size()) {
        const auto h = hash4(in.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      tokens.push_back(in[i]);
      end_token(false);
      ++i;
    }
  }
  if (group_fill > 0) tokens[control_pos] = static_cast<std::byte>(control);

  header.put_bytes(tokens);
  if (out.size() >= in.size() + 2) {
    Bytes raw;
    ByteWriter rw(raw);
    rw.put(Mode::raw);
    rw.put_varint(in.size());
    rw.put_bytes(in);
    return raw;
  }
  return out;
}

Bytes lzss_decompress(std::span<const std::byte> in) {
  ByteReader r(in);
  const auto mode = r.get<Mode>();
  const auto n = static_cast<std::size_t>(r.get_varint());
  if (mode == Mode::raw) {
    auto body = r.get_bytes(n);
    return Bytes(body.begin(), body.end());
  }
  if (mode != Mode::compressed) throw CodecError("lzss: bad mode byte");

  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const auto control = static_cast<std::uint8_t>(r.get<std::byte>());
    for (int t = 0; t < 8 && out.size() < n; ++t) {
      if (control & (1u << t)) {
        const auto lo = static_cast<std::uint32_t>(static_cast<std::uint8_t>(r.get<std::byte>()));
        const auto hi = static_cast<std::uint32_t>(static_cast<std::uint8_t>(r.get<std::byte>()));
        const std::size_t dist = lo | (hi << 8);
        const std::size_t len =
            static_cast<std::size_t>(static_cast<std::uint8_t>(r.get<std::byte>())) + kMinMatch;
        if (dist == 0 || dist > out.size()) throw CodecError("lzss: bad match distance");
        // Overlapping copies are valid (e.g. run-length style matches).
        const std::size_t start = out.size() - dist;
        for (std::size_t j = 0; j < len; ++j) out.push_back(out[start + j]);
      } else {
        out.push_back(r.get<std::byte>());
      }
    }
  }
  if (out.size() != n) throw CodecError("lzss: size mismatch");
  return out;
}

}  // namespace mrc::lossless
