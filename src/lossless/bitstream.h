#pragma once

// Bit-granular I/O used by the entropy coders and the ZFP-class codec.
// Bits are packed LSB-first within each byte; multi-bit writes emit the
// least-significant bit of the value first, and reads mirror that order.

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/require.h"

namespace mrc::lossless {

class BitWriter {
 public:
  BitWriter() = default;

  void write_bit(std::uint32_t bit) {
    if (nbits_ == 0) out_.push_back(std::byte{0});
    if (bit & 1u) {
      out_.back() = static_cast<std::byte>(static_cast<std::uint8_t>(out_.back()) |
                                           (1u << nbits_));
    }
    nbits_ = (nbits_ + 1) & 7;
  }

  /// Writes the low `n` bits of `v`, LSB first. n in [0, 64].
  void write_bits(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) write_bit(static_cast<std::uint32_t>((v >> i) & 1u));
  }

  /// Number of bits written so far.
  [[nodiscard]] std::uint64_t bit_count() const {
    return out_.size() * 8 - ((8 - nbits_) & 7);
  }

  [[nodiscard]] const Bytes& bytes() const { return out_; }
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
  int nbits_ = 0;  // bits used in the last byte (0 == byte boundary)
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> in) : in_(in) {}

  [[nodiscard]] std::uint32_t read_bit() {
    const std::size_t byte = pos_ >> 3;
    if (byte >= in_.size()) throw CodecError("bit stream truncated");
    const auto b = static_cast<std::uint8_t>(in_[byte]);
    const std::uint32_t bit = (b >> (pos_ & 7)) & 1u;
    ++pos_;
    return bit;
  }

  [[nodiscard]] std::uint64_t read_bits(int n) {
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(read_bit()) << i;
    return v;
  }

  [[nodiscard]] std::uint64_t bit_position() const { return pos_; }
  [[nodiscard]] std::uint64_t bits_remaining() const { return in_.size() * 8 - pos_; }

 private:
  std::span<const std::byte> in_;
  std::uint64_t pos_ = 0;
};

}  // namespace mrc::lossless
