#pragma once

// Bit-granular I/O used by the entropy coders and the ZFP-class codec.
// Bits are packed LSB-first within each byte; multi-bit writes emit the
// least-significant bit of the value first, and reads mirror that order.
//
// Both ends operate a word at a time: the writer gathers bits in a 64-bit
// accumulator and appends whole little-endian words to the buffer, the
// reader serves read_bits / peek from an unaligned 64-bit load over the
// input. The byte stream produced/consumed is identical to the historical
// bit-at-a-time implementation — the format is frozen (see the golden-bytes
// tests in tests/test_frozen_format.cpp).

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/require.h"

namespace mrc::lossless {

namespace detail {

/// Low-n-bit mask; n in [0, 64].
[[nodiscard]] constexpr std::uint64_t low_mask(int n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

}  // namespace detail

class BitWriter {
 public:
  BitWriter() = default;

  void write_bit(std::uint32_t bit) { write_bits(bit & 1u, 1); }

  /// Writes the low `n` bits of `v`, LSB first. n in [0, 64].
  void write_bits(std::uint64_t v, int n) {
    if (n <= 0) return;
    if (flushed_) unflush();
    v &= detail::low_mask(n);
    acc_ |= v << nacc_;
    const int total = nacc_ + n;
    if (total >= 64) {
      append_word(acc_);
      const int used = 64 - nacc_;
      acc_ = used >= 64 ? 0 : v >> used;
      nacc_ = total - 64;
    } else {
      nacc_ = total;
    }
    bit_count_ += static_cast<std::uint64_t>(n);
  }

  /// Grows the buffer up front (hint only; the stream is unaffected).
  void reserve_bytes(std::size_t n) { out_.reserve(n); }

  /// Number of bits written so far.
  [[nodiscard]] std::uint64_t bit_count() const { return bit_count_; }

  /// The stream so far, padded with zero bits to a byte boundary. Writing
  /// after bytes() continues the stream at bit_count() as if the padding had
  /// never happened.
  [[nodiscard]] const Bytes& bytes() {
    flush_tail();
    return out_;
  }

  [[nodiscard]] Bytes take() {
    flush_tail();
    Bytes b = std::move(out_);
    *this = BitWriter();
    return b;
  }

 private:
  void append_word(std::uint64_t w) {
    const std::size_t s = out_.size();
    out_.resize(s + 8);
    std::byte* p = out_.data() + s;
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>((w >> (8 * i)) & 0xff);
  }

  /// Appends the pending (< 64) accumulator bits, zero-padded to a byte.
  void flush_tail() {
    if (flushed_) return;
    for (int done = 0; done < nacc_; done += 8)
      out_.push_back(static_cast<std::byte>((acc_ >> done) & 0xff));
    flushed_ = true;
  }

  /// Reloads the partial final byte into the accumulator after a flush so
  /// interleaved bytes()/write_bits() keeps the historical semantics.
  void unflush() {
    const int partial = static_cast<int>(bit_count_ & 7);
    if (partial != 0) {
      acc_ = static_cast<std::uint8_t>(out_.back());
      out_.pop_back();
    } else {
      acc_ = 0;
    }
    nacc_ = partial;
    flushed_ = false;
  }

  Bytes out_;
  std::uint64_t acc_ = 0;      // pending bits, LSB = oldest
  int nacc_ = 0;               // pending bit count, in [0, 64)
  std::uint64_t bit_count_ = 0;
  bool flushed_ = false;
};

/// Reads the stream through a cached 64-bit window: `acc_` always holds the
/// next `navail_` unconsumed bits (LSB = next bit), refilled with one
/// unaligned load per ~7 consumed bytes, so peek() is a register read and
/// read_bits()/consume() are shifts.
class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> in)
      : in_(in), nbits_(static_cast<std::uint64_t>(in.size()) * 8) {
    refill();
  }

  [[nodiscard]] std::uint32_t read_bit() {
    if (navail_ == 0) {
      refill();
      if (navail_ == 0) throw CodecError("bit stream truncated");
    }
    const auto bit = static_cast<std::uint32_t>(acc_ & 1u);
    acc_ >>= 1;
    --navail_;
    return bit;
  }

  [[nodiscard]] std::uint64_t read_bits(int n) {
    if (n <= 0) return 0;
    if (navail_ < n) {
      refill();
      if (navail_ < n) return read_bits_split(n);
    }
    const std::uint64_t v = acc_ & detail::low_mask(n);
    acc_ = n >= 64 ? 0 : acc_ >> n;
    navail_ -= n;
    return v;
  }

  /// The next up-to-64 bits without consuming them, zero-padded past the end
  /// of the stream. At least min(min_bits, bits_remaining()) low bits are
  /// real stream bits; min_bits must be <= 56 (all refill() guarantees),
  /// and the default covers any canonical Huffman code (<= 56 bits). Asking
  /// for fewer valid bits refills less often — the Huffman fast path peeks
  /// only its table width.
  [[nodiscard]] std::uint64_t peek(int min_bits = 56) {
    if (navail_ < min_bits) refill();
    return acc_;
  }

  /// Advances past `n` (<= 56) bits previously inspected with peek().
  void consume(int n) {
    if (navail_ < n) {
      refill();
      if (navail_ < n) throw CodecError("bit stream truncated");
    }
    acc_ >>= n;
    navail_ -= n;
  }

  [[nodiscard]] std::uint64_t bit_position() const {
    return static_cast<std::uint64_t>(byte_pos_) * 8 - static_cast<std::uint64_t>(navail_);
  }
  [[nodiscard]] std::uint64_t bits_remaining() const { return nbits_ - bit_position(); }

 private:
  /// Tops the window up to >= 56 bits (or to end of input).
  void refill() {
    if (byte_pos_ + 8 <= in_.size()) {
      // One unaligned load; advance only past the bytes that fit, so the
      // overlap is re-read by the next refill.
      acc_ |= load_le64(in_.data() + byte_pos_) << navail_;
      byte_pos_ += static_cast<std::size_t>((63 - navail_) >> 3);
      navail_ |= 56;
      return;
    }
    while (navail_ <= 56 && byte_pos_ < in_.size()) {
      acc_ |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in_[byte_pos_]))
              << navail_;
      navail_ += 8;
      ++byte_pos_;
    }
  }

  /// Cold path: a multi-word read that straddles the refill boundary near
  /// the end of input (navail_ < n <= 64 after a refill).
  std::uint64_t read_bits_split(int n) {
    if (bits_remaining() < static_cast<std::uint64_t>(n))
      throw CodecError("bit stream truncated");
    std::uint64_t v = 0;
    for (int got = 0; got < n;) {
      const int take = std::min(n - got, navail_ == 0 ? 0 : navail_);
      if (take == 0) {
        refill();
        if (navail_ == 0) throw CodecError("bit stream truncated");
        continue;
      }
      v |= (acc_ & detail::low_mask(take)) << got;
      acc_ = take >= 64 ? 0 : acc_ >> take;
      navail_ -= take;
      got += take;
    }
    return v;
  }

  static std::uint64_t load_le64(const std::byte* p) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    return w;
#else
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i)
      w |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
    return w;
#endif
  }

  std::span<const std::byte> in_;
  std::uint64_t nbits_ = 0;
  std::uint64_t acc_ = 0;   // next navail_ bits, LSB = oldest
  int navail_ = 0;
  std::size_t byte_pos_ = 0;  // first byte not yet absorbed into acc_
};

}  // namespace mrc::lossless
