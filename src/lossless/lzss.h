#pragma once

// Byte-oriented LZSS with a 64 KiB window. Plays the role zstd plays behind
// SZ-family compressors: squeezing residual redundancy out of already
// entropy-light payloads (outlier arrays, metadata streams).

#include <span>

#include "common/bytes.h"

namespace mrc::lossless {

/// Compresses `in`; output always decompresses back exactly. If compression
/// does not pay off the payload is stored raw (one header byte overhead).
[[nodiscard]] Bytes lzss_compress(std::span<const std::byte> in);

[[nodiscard]] Bytes lzss_decompress(std::span<const std::byte> in);

}  // namespace mrc::lossless
