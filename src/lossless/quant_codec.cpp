#include "lossless/quant_codec.h"

#include "lossless/huffman.h"

namespace mrc::lossless {

namespace {

constexpr std::size_t kMinRun = 6;    // shorter zero runs are cheaper as literals
constexpr int kRunBuckets = 48;       // bucket b covers runs in [2^b, 2^{b+1})

struct Token {
  std::uint32_t symbol;
  std::uint64_t extra;
  int extra_bits;
};

int bucket_of(std::uint64_t run) {
  int b = 0;
  while ((run >> (b + 1)) != 0) ++b;
  return b;
}

std::vector<Token> tokenize(std::span<const std::uint32_t> codes, std::uint32_t radius) {
  const std::uint32_t zero = radius;
  const std::uint32_t run_base = 2 * radius + 1;
  std::vector<Token> tokens;
  tokens.reserve(codes.size() / 4 + 16);

  std::size_t i = 0;
  while (i < codes.size()) {
    if (codes[i] == zero) {
      std::size_t j = i;
      while (j < codes.size() && codes[j] == zero) ++j;
      const std::uint64_t run = j - i;
      if (run >= kMinRun) {
        const int b = bucket_of(run);
        tokens.push_back({run_base + static_cast<std::uint32_t>(b),
                          run - (std::uint64_t{1} << b), b});
      } else {
        for (std::uint64_t k = 0; k < run; ++k) tokens.push_back({zero, 0, 0});
      }
      i = j;
    } else {
      MRC_REQUIRE(codes[i] <= 2 * radius, "quant code outside alphabet");
      tokens.push_back({codes[i], 0, 0});
      ++i;
    }
  }
  return tokens;
}

}  // namespace

Bytes encode_quant_codes(std::span<const std::uint32_t> codes, std::uint32_t radius) {
  const auto tokens = tokenize(codes, radius);
  const std::uint32_t alphabet = 2 * radius + 1 + kRunBuckets;

  std::vector<std::uint64_t> freqs(alphabet, 0);
  for (const auto& t : tokens) ++freqs[t.symbol];
  const auto cb = HuffmanCodebook::from_frequencies(freqs);

  BitWriter bw;
  bw.write_bits(codes.size(), 48);
  cb.serialize(bw);
  for (const auto& t : tokens) {
    cb.encode(bw, t.symbol);
    if (t.extra_bits > 0) bw.write_bits(t.extra, t.extra_bits);
  }
  return bw.take();
}

std::vector<std::uint32_t> decode_quant_codes(std::span<const std::byte> in,
                                              std::uint32_t radius) {
  const std::uint32_t zero = radius;
  const std::uint32_t run_base = 2 * radius + 1;

  BitReader br(in);
  const auto n = static_cast<std::size_t>(br.read_bits(48));
  if (n > (std::size_t{1} << 40)) throw CodecError("quant codec: implausible count");
  const auto cb = HuffmanCodebook::deserialize(br);

  std::vector<std::uint32_t> codes;
  codes.reserve(n);
  while (codes.size() < n) {
    const auto sym = cb.decode(br);
    if (sym < run_base) {
      codes.push_back(sym);
    } else {
      const int b = static_cast<int>(sym - run_base);
      if (b >= kRunBuckets) throw CodecError("quant codec: bad run bucket");
      const std::uint64_t run = (std::uint64_t{1} << b) + br.read_bits(b);
      if (codes.size() + run > n) throw CodecError("quant codec: run overflow");
      codes.insert(codes.end(), static_cast<std::size_t>(run), zero);
    }
  }
  return codes;
}

}  // namespace mrc::lossless
