#include "lossless/quant_codec.h"

#include <algorithm>
#include <bit>

#include "lossless/huffman.h"

namespace mrc::lossless {

namespace {

constexpr std::size_t kMinRun = 6;    // shorter zero runs are cheaper as literals
constexpr int kRunBuckets = 48;       // bucket b covers runs in [2^b, 2^{b+1})

int bucket_of(std::uint64_t run) {
  // floor(log2(run)); bit_width avoids the `run >> (b + 1)` scan whose shift
  // count can reach the word size (UB) on huge inputs.
  return std::bit_width(run) - 1;
}

/// Runs the fixed tokenization over `codes`, calling
/// emit(symbol, extra, extra_bits) per token. Both encoder passes (count,
/// emit) share this scan, so no intermediate token vector is materialized.
template <typename Emit>
void for_each_token(std::span<const std::uint32_t> codes, std::uint32_t radius,
                    Emit&& emit) {
  const std::uint32_t zero = radius;
  const std::uint32_t run_base = 2 * radius + 1;
  std::size_t i = 0;
  while (i < codes.size()) {
    if (codes[i] == zero) {
      std::size_t j = i;
      while (j < codes.size() && codes[j] == zero) ++j;
      const std::uint64_t run = j - i;
      if (run >= kMinRun) {
        const int b = bucket_of(run);
        emit(run_base + static_cast<std::uint32_t>(b), run - (std::uint64_t{1} << b), b);
      } else {
        for (std::uint64_t k = 0; k < run; ++k) emit(zero, 0, 0);
      }
      i = j;
    } else {
      MRC_REQUIRE(codes[i] <= 2 * radius, "quant code outside alphabet");
      emit(codes[i], 0, 0);
      ++i;
    }
  }
}

}  // namespace

Bytes encode_quant_codes(std::span<const std::uint32_t> codes, std::uint32_t radius) {
  const std::uint32_t alphabet = 2 * radius + 1 + kRunBuckets;

  // Pass 1: token frequencies (plus the raw extra-bit budget for sizing).
  std::vector<std::uint64_t> freqs(alphabet, 0);
  std::uint64_t extra_bits_total = 0;
  for_each_token(codes, radius,
                 [&](std::uint32_t sym, std::uint64_t /*extra*/, int extra_bits) {
                   ++freqs[sym];
                   extra_bits_total += static_cast<std::uint64_t>(extra_bits);
                 });
  const auto cb = HuffmanCodebook::from_frequencies(freqs);

  std::uint64_t code_bits_total = 0;
  for (std::uint32_t s = 0; s < alphabet; ++s)
    code_bits_total += freqs[s] * static_cast<std::uint64_t>(cb.code_length(s));

  // Pass 2: emit straight into the stream.
  BitWriter bw;
  bw.reserve_bytes(static_cast<std::size_t>(
      (code_bits_total + extra_bits_total) / 8 + 4 * alphabet / 8 + 64));
  bw.write_bits(codes.size(), 48);
  cb.serialize(bw);
  for_each_token(codes, radius,
                 [&](std::uint32_t sym, std::uint64_t extra, int extra_bits) {
                   cb.encode(bw, sym);
                   if (extra_bits > 0) bw.write_bits(extra, extra_bits);
                 });
  return bw.take();
}

namespace {

/// Shared decode loop; Sink provides literal(sym) and run(count, zero).
template <typename Sink>
void decode_stream(BitReader& br, const HuffmanCodebook& cb, std::uint32_t radius,
                   std::size_t n, Sink&& sink) {
  const std::uint32_t run_base = 2 * radius + 1;
  std::size_t produced = 0;
  while (produced < n) {
    const auto sym = cb.decode(br);
    if (sym < run_base) {
      sink.literal(sym);
      ++produced;
    } else {
      const int b = static_cast<int>(sym - run_base);
      if (b >= kRunBuckets) throw CodecError("quant codec: bad run bucket");
      const std::uint64_t run = (std::uint64_t{1} << b) + br.read_bits(b);
      if (run > n - produced) throw CodecError("quant codec: run overflow");
      sink.run(static_cast<std::size_t>(run));
      produced += static_cast<std::size_t>(run);
    }
  }
}

}  // namespace

std::vector<std::uint32_t> decode_quant_codes(std::span<const std::byte> in,
                                              std::uint32_t radius) {
  BitReader br(in);
  const auto n = static_cast<std::size_t>(br.read_bits(48));
  if (n > (std::size_t{1} << 40)) throw CodecError("quant codec: implausible count");
  const auto cb = HuffmanCodebook::deserialize(br);

  std::vector<std::uint32_t> codes;
  // A symbol costs >= 1 bit, so clamp the reserve by the payload actually
  // held: a hostile 48-bit count must not size an allocation.
  codes.reserve(std::min<std::size_t>(n, static_cast<std::size_t>(br.bits_remaining())));
  struct VecSink {
    std::vector<std::uint32_t>& out;
    std::uint32_t zero;
    void literal(std::uint32_t sym) { out.push_back(sym); }
    void run(std::size_t count) { out.insert(out.end(), count, zero); }
  } sink{codes, radius};
  decode_stream(br, cb, radius, n, sink);
  return codes;
}

void decode_quant_codes_into(std::span<const std::byte> in, std::uint32_t radius,
                             std::vector<std::uint32_t>& out,
                             std::uint64_t expected_count) {
  BitReader br(in);
  const auto n = static_cast<std::size_t>(br.read_bits(48));
  if (n != expected_count) throw CodecError("quant codec: count mismatch");
  const auto cb = HuffmanCodebook::deserialize(br);
  out.resize(n);

  struct SpanSink {
    std::uint32_t* dst;
    std::uint32_t zero;
    void literal(std::uint32_t sym) { *dst++ = sym; }
    void run(std::size_t count) {
      std::fill_n(dst, count, zero);
      dst += count;
    }
  } sink{out.data(), radius};
  decode_stream(br, cb, radius, n, sink);
}

}  // namespace mrc::lossless
