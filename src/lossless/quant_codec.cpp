#include "lossless/quant_codec.h"

#include <algorithm>
#include <bit>

#include "exec/thread_pool.h"
#include "lossless/huffman.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace mrc::lossless {

namespace {

constexpr std::size_t kMinRun = 6;    // shorter zero runs are cheaper as literals
constexpr int kRunBuckets = 48;       // bucket b covers runs in [2^b, 2^{b+1})
constexpr std::uint64_t kMaxCount = std::uint64_t{1} << 40;

// Sharded-layout framing (documented in quant_codec.h). The marker is the
// all-ones 48-bit word: monolithic streams open with their symbol count,
// which is capped at 2^40, so no legal monolithic stream can start with it.
constexpr std::uint64_t kShardMarker = 0xFFFF'FFFF'FFFFull;
constexpr std::uint64_t kShardLayoutVersion = 1;

int bucket_of(std::uint64_t run) {
  // floor(log2(run)); bit_width avoids the `run >> (b + 1)` scan whose shift
  // count can reach the word size (UB) on huge inputs.
  return std::bit_width(run) - 1;
}

/// A maximal zero-bin run of length >= kMinRun, by position in the code
/// array. The token scan records these so the emit pass can stream literals
/// between them with no per-symbol run detection.
struct ZeroRun {
  std::uint64_t start = 0;
  std::uint64_t len = 0;
};

/// One pass over the codes: validated token frequencies, the long-run list,
/// and the raw extra-bit budget — everything both the codebook build and the
/// emit pass need.
struct TokenScan {
  std::vector<std::uint64_t> freqs;
  std::vector<ZeroRun> runs;
  std::uint64_t extra_bits_total = 0;
};

/// Cold path: re-checks a block the vector validity test flagged, to throw
/// with the standard contract message.
void require_in_alphabet(const std::uint32_t* p, std::size_t count, std::uint32_t limit) {
  for (std::size_t k = 0; k < count; ++k)
    MRC_REQUIRE(p[k] <= limit, "quant code outside alphabet");
}

#if defined(__SSE2__)

/// 16 lanes starting at p: bit j of the result set iff p[j] == zero. Lanes
/// above `limit` (biased unsigned compare) are OR-ed into *bad.
inline std::uint32_t zero_mask16(const std::uint32_t* p, __m128i vzero,
                                 __m128i vlimit_biased, __m128i vbias, __m128i* bad) {
  const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0));
  const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 4));
  const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 8));
  const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 12));
  __m128i over = _mm_cmpgt_epi32(_mm_xor_si128(a, vbias), vlimit_biased);
  over = _mm_or_si128(over, _mm_cmpgt_epi32(_mm_xor_si128(b, vbias), vlimit_biased));
  over = _mm_or_si128(over, _mm_cmpgt_epi32(_mm_xor_si128(c, vbias), vlimit_biased));
  over = _mm_or_si128(over, _mm_cmpgt_epi32(_mm_xor_si128(d, vbias), vlimit_biased));
  *bad = _mm_or_si128(*bad, over);
  const __m128i lo = _mm_packs_epi32(_mm_cmpeq_epi32(a, vzero), _mm_cmpeq_epi32(b, vzero));
  const __m128i hi = _mm_packs_epi32(_mm_cmpeq_epi32(c, vzero), _mm_cmpeq_epi32(d, vzero));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_packs_epi16(lo, hi)));
}

#endif  // __SSE2__

/// Single fused scan: per-64-symbol block it builds a zero-bin bitmask
/// (SSE2 compare+movemask where available), validates the block against the
/// alphabet, extracts zero runs from the mask word, and histograms the
/// block. Four histogram banks break the store-to-load dependency a run of
/// equal symbols would otherwise serialize on; long runs are subtracted from
/// the zero-bin frequency afterwards, which reproduces the token counts of
/// the original symbol-at-a-time tokenizer exactly.
TokenScan scan_tokens(std::span<const std::uint32_t> codes, std::uint32_t radius) {
  const std::uint32_t zero = radius;
  const std::uint32_t limit = 2 * radius;
  const std::uint32_t alphabet = 2 * radius + 1 + kRunBuckets;
  const std::size_t n = codes.size();

  TokenScan ts;
  // Bank stride: 4 banks for every realistic alphabet; one bank (stride 0)
  // past 2^14 symbols keeps the scratch bounded for absurd radii.
  const bool banked = alphabet <= (1u << 14);
  const std::size_t bs = banked ? alphabet : 0;
  std::vector<std::uint64_t> h((banked ? 4 : 1) * std::size_t{alphabet}, 0);

  std::uint64_t open_start = 0;
  std::uint64_t open_len = 0;
  auto flush_run = [&] {
    if (open_len >= kMinRun) ts.runs.push_back({open_start, open_len});
    open_len = 0;
  };
  // Consumes one mask word (vb valid bits for symbols [base, base+vb)):
  // walks its set-bit segments, keeping a run that touches the word edge
  // open so cross-word runs merge.
  auto feed_word = [&](std::uint64_t m, int vb, std::uint64_t base) {
    if (vb < 64) m &= detail::low_mask(vb);
    int pos = 0;
    for (;;) {
      const std::uint64_t rem = pos >= 64 ? 0 : (m >> pos);
      if (rem == 0) {
        if (pos < vb) flush_run();  // trailing zeros end any open run
        return;
      }
      const int skip = std::countr_zero(rem);
      if (skip > 0) flush_run();
      pos += skip;
      const std::uint64_t inv = ~(m >> pos);
      const int ones = inv == 0 ? 64 - pos : std::countr_zero(inv);
      if (open_len == 0) open_start = base + static_cast<std::uint64_t>(pos);
      open_len += static_cast<std::uint64_t>(ones);
      pos += ones;
      if (pos >= vb) return;  // run reaches the word edge — stays open
    }
  };

  std::size_t i = 0;
#if defined(__SSE2__)
  if (n >= 64) {
    const __m128i vzero = _mm_set1_epi32(static_cast<int>(zero));
    const __m128i vbias = _mm_set1_epi32(static_cast<int>(0x8000'0000u));
    const __m128i vlim = _mm_set1_epi32(static_cast<int>(limit ^ 0x8000'0000u));
    for (; i + 64 <= n; i += 64) {
      const std::uint32_t* p = codes.data() + i;
      __m128i bad = _mm_setzero_si128();
      std::uint64_t m = 0;
      for (int k = 0; k < 4; ++k)
        m |= std::uint64_t{zero_mask16(p + 16 * k, vzero, vlim, vbias, &bad)} << (16 * k);
      if (_mm_movemask_epi8(bad) != 0) require_in_alphabet(p, 64, limit);
      feed_word(m, 64, i);
      for (int k = 0; k < 64; k += 4) {
        ++h[p[k]];
        ++h[bs + p[k + 1]];
        ++h[2 * bs + p[k + 2]];
        ++h[3 * bs + p[k + 3]];
      }
    }
  }
#endif
  {
    std::uint64_t m = 0;
    int vb = 0;
    std::uint64_t base = i;
    for (; i < n; ++i) {
      const std::uint32_t c = codes[i];
      MRC_REQUIRE(c <= limit, "quant code outside alphabet");
      ++h[c];
      m |= std::uint64_t{c == zero} << vb;
      if (++vb == 64) {
        feed_word(m, 64, base);
        m = 0;
        vb = 0;
        base = i + 1;
      }
    }
    if (vb > 0) feed_word(m, vb, base);
  }
  flush_run();

  ts.freqs.assign(alphabet, 0);
  const std::size_t nbanks = banked ? 4 : 1;
  for (std::size_t b = 0; b < nbanks; ++b)
    for (std::size_t s = 0; s < alphabet; ++s) ts.freqs[s] += h[b * bs + s];

  const std::uint32_t run_base = 2 * radius + 1;
  for (const ZeroRun& r : ts.runs) {
    ts.freqs[zero] -= r.len;
    const int b = bucket_of(r.len);
    ++ts.freqs[run_base + static_cast<std::uint32_t>(b)];
    ts.extra_bits_total += static_cast<std::uint64_t>(b);
  }
  return ts;
}

/// Streams the token sequence: tight literal loops between the pre-found
/// long runs (no per-symbol run detection), run symbol + raw extra bits at
/// each run. Byte-identical to the historical symbol-at-a-time emitter.
void emit_tokens(BitWriter& bw, const HuffmanCodebook& cb,
                 std::span<const std::uint32_t> codes, std::uint32_t radius,
                 const std::vector<ZeroRun>& runs) {
  const std::uint32_t run_base = 2 * radius + 1;
  const std::uint32_t* p = codes.data();
  const std::size_t n = codes.size();
  std::size_t i = 0;
  std::size_t r = 0;
  while (i < n) {
    const std::size_t stop = r < runs.size() ? static_cast<std::size_t>(runs[r].start) : n;
    for (; i < stop; ++i) cb.encode(bw, p[i]);
    if (i >= n) break;
    const std::uint64_t run = runs[r].len;
    const int b = bucket_of(run);
    cb.encode(bw, run_base + static_cast<std::uint32_t>(b));
    bw.write_bits(run - (std::uint64_t{1} << b), b);
    i += static_cast<std::size_t>(run);
    ++r;
  }
}

std::size_t stream_reserve_hint(const TokenScan& ts, const HuffmanCodebook& cb,
                                std::uint32_t alphabet) {
  std::uint64_t code_bits_total = 0;
  for (std::uint32_t s = 0; s < alphabet; ++s)
    code_bits_total += ts.freqs[s] * static_cast<std::uint64_t>(cb.code_length(s));
  return static_cast<std::size_t>((code_bits_total + ts.extra_bits_total) / 8 +
                                  4 * alphabet / 8 + 64);
}

}  // namespace

Bytes encode_quant_codes(std::span<const std::uint32_t> codes, std::uint32_t radius) {
  const std::uint32_t alphabet = 2 * radius + 1 + kRunBuckets;
  const TokenScan ts = scan_tokens(codes, radius);
  const auto cb = HuffmanCodebook::from_frequencies(ts.freqs);

  BitWriter bw;
  bw.reserve_bytes(stream_reserve_hint(ts, cb, alphabet));
  bw.write_bits(codes.size(), 48);
  cb.serialize(bw);
  emit_tokens(bw, cb, codes, radius, ts.runs);
  return bw.take();
}

std::uint32_t negotiate_entropy_shards(std::uint64_t n, std::uint32_t requested) {
  const std::uint64_t w =
      std::min<std::uint64_t>({requested, kMaxEntropyShards, n / kMinShardSymbols});
  return w <= 1 ? 1u : static_cast<std::uint32_t>(w);
}

Bytes encode_quant_codes_sharded(std::span<const std::uint32_t> codes,
                                 std::uint32_t radius, std::uint32_t shards) {
  const std::size_t n = codes.size();
  const std::uint32_t negotiated = negotiate_entropy_shards(n, shards);
  if (negotiated <= 1) return encode_quant_codes(codes, radius);
  MRC_REQUIRE(n < kMaxCount, "quant codec: too many symbols for one stream");

  const auto W = static_cast<std::uint32_t>(negotiated);
  const std::uint32_t alphabet = 2 * radius + 1 + kRunBuckets;

  // Even split; every shard has >= kMinShardSymbols / 2 symbols by the clamp.
  std::vector<std::size_t> bound(W + 1);
  for (std::uint32_t s = 0; s <= W; ++s)
    bound[s] = static_cast<std::size_t>(static_cast<std::uint64_t>(n) * s / W);

  // Shared codebook from the summed per-shard token frequencies. Runs are
  // split at shard boundaries (each shard tokenizes its slice
  // independently), so the frequencies come from the per-shard scans, not a
  // whole-array scan.
  std::vector<TokenScan> scans(W);
  for (std::uint32_t s = 0; s < W; ++s)
    scans[s] = scan_tokens(codes.subspan(bound[s], bound[s + 1] - bound[s]), radius);
  std::vector<std::uint64_t> freqs(alphabet, 0);
  for (const TokenScan& t : scans)
    for (std::uint32_t s = 0; s < alphabet; ++s) freqs[s] += t.freqs[s];
  const auto cb = HuffmanCodebook::from_frequencies(freqs);

  std::vector<Bytes> chunks(W);
  for (std::uint32_t s = 0; s < W; ++s) {
    BitWriter cw;
    cw.reserve_bytes(stream_reserve_hint(scans[s], cb, alphabet));
    emit_tokens(cw, cb, codes.subspan(bound[s], bound[s + 1] - bound[s]), radius,
                scans[s].runs);
    chunks[s] = cw.take();
  }

  BitWriter bw;
  bw.write_bits(kShardMarker, 48);
  bw.write_bits(kShardLayoutVersion, 8);
  bw.write_bits(n, 48);
  bw.write_bits(W, 16);
  cb.serialize(bw);
  std::uint64_t off = 0;
  for (std::uint32_t s = 0; s < W; ++s) {
    bw.write_bits(off, 48);
    bw.write_bits(chunks[s].size(), 48);
    bw.write_bits(bound[s + 1] - bound[s], 48);
    off += chunks[s].size();
  }
  Bytes out = bw.take();
  out.reserve(out.size() + static_cast<std::size_t>(off));
  for (const Bytes& c : chunks) out.insert(out.end(), c.begin(), c.end());
  return out;
}

bool is_sharded_quant_stream(std::span<const std::byte> in) {
  if (in.size() < 6) return false;
  for (int k = 0; k < 6; ++k)
    if (in[static_cast<std::size_t>(k)] != std::byte{0xff}) return false;
  return true;
}

namespace {

/// Shared decode loop; Sink provides literal(sym) and run(count, zero).
template <typename Sink>
void decode_stream(BitReader& br, const HuffmanCodebook& cb, std::uint32_t radius,
                   std::size_t n, Sink&& sink) {
  const std::uint32_t run_base = 2 * radius + 1;
  std::size_t produced = 0;
  while (produced < n) {
    const auto sym = cb.decode(br);
    if (sym < run_base) {
      sink.literal(sym);
      ++produced;
    } else {
      const int b = static_cast<int>(sym - run_base);
      if (b >= kRunBuckets) throw CodecError("quant codec: bad run bucket");
      const std::uint64_t run = (std::uint64_t{1} << b) + br.read_bits(b);
      if (run > n - produced) throw CodecError("quant codec: run overflow");
      sink.run(static_cast<std::size_t>(run));
      produced += static_cast<std::size_t>(run);
    }
  }
}

struct SpanSink {
  std::uint32_t* dst;
  std::uint32_t zero;
  void literal(std::uint32_t sym) { *dst++ = sym; }
  void run(std::size_t count) {
    std::fill_n(dst, count, zero);
    dst += count;
  }
};

struct ShardEntry {
  std::uint64_t off = 0;
  std::uint64_t len = 0;
  std::uint64_t count = 0;
};

struct ShardedHeader {
  std::uint64_t n = 0;
  HuffmanCodebook cb;
  std::vector<ShardEntry> table;
  std::size_t payload_start = 0;
};

constexpr std::uint64_t kAnyCount = ~std::uint64_t{0};

/// Parses and fully validates a sharded stream's header + shard table.
/// Nothing output-sized is allocated here; a hostile table (overlapping or
/// out-of-range offsets, counts that lie about the total) throws before the
/// caller sizes its buffer. `expected_count` == kAnyCount applies only the
/// 2^40 plausibility cap (the convenience decoder's contract).
ShardedHeader parse_sharded(std::span<const std::byte> in, std::uint64_t expected_count) {
  BitReader br(in);
  if (br.read_bits(48) != kShardMarker)
    throw CodecError("quant codec: not a sharded stream");
  if (br.read_bits(8) != kShardLayoutVersion)
    throw CodecError("quant codec: unknown shard layout version");
  ShardedHeader h;
  h.n = br.read_bits(48);
  if (expected_count == kAnyCount) {
    if (h.n > kMaxCount) throw CodecError("quant codec: implausible count");
  } else if (h.n != expected_count) {
    throw CodecError("quant codec: count mismatch");
  }
  const std::uint64_t w = br.read_bits(16);
  if (w < 2 || w > kMaxEntropyShards || w > h.n)
    throw CodecError("quant codec: bad shard count");
  h.cb = HuffmanCodebook::deserialize(br);

  h.table.resize(static_cast<std::size_t>(w));
  std::uint64_t expected_off = 0;
  std::uint64_t count_sum = 0;
  for (ShardEntry& e : h.table) {
    e.off = br.read_bits(48);
    e.len = br.read_bits(48);
    e.count = br.read_bits(48);
    // Contiguity pins every chunk: offset 0 for the first, previous end for
    // the rest — which rules out overlaps, gaps, and reordering in one check.
    if (e.off != expected_off || e.len == 0 || e.count == 0 || e.count > h.n)
      throw CodecError("quant codec: bad shard table entry");
    expected_off = e.off + e.len;
    count_sum += e.count;  // cannot overflow: counts <= 2^48, w <= 4096
  }
  if (count_sum != h.n)
    throw CodecError("quant codec: shard counts disagree with total");
  h.payload_start = static_cast<std::size_t>((br.bit_position() + 7) / 8);
  if (expected_off != in.size() - h.payload_start)
    throw CodecError("quant codec: shard table does not cover stream");
  return h;
}

/// Decodes every shard into its disjoint slice of dst. Each chunk is an
/// independent BitReader over its validated sub-span, so shards run in any
/// order — or concurrently — and produce the same bytes.
void decode_shards(std::span<const std::byte> in, std::uint32_t radius,
                   std::uint32_t* dst, const ShardedHeader& h,
                   exec::ThreadPool* pool) {
  const auto shard_count = static_cast<index_t>(h.table.size());
  std::vector<std::uint64_t> first(h.table.size() + 1, 0);
  for (std::size_t s = 0; s < h.table.size(); ++s)
    first[s + 1] = first[s] + h.table[s].count;

  auto decode_one = [&](index_t s) {
    const ShardEntry& e = h.table[static_cast<std::size_t>(s)];
    BitReader br(in.subspan(h.payload_start + static_cast<std::size_t>(e.off),
                            static_cast<std::size_t>(e.len)));
    SpanSink sink{dst + first[static_cast<std::size_t>(s)], radius};
    decode_stream(br, h.cb, radius, static_cast<std::size_t>(e.count), sink);
  };

  if (pool != nullptr) {
    pool->parallel_for(shard_count, decode_one);
  } else if (!exec::on_pool_lane() && exec::hardware_threads() > 1) {
    // Private fan-out pool, sized by the work. Never when already on a pool
    // lane: a nested pool's lanes blocking behind the outer pool's queue is
    // a deadlock, and the outer parallel_for already owns the machine.
    exec::ThreadPool local(static_cast<int>(
        std::min<index_t>(shard_count, exec::hardware_threads())));
    local.parallel_for(shard_count, decode_one);
  } else {
    for (index_t s = 0; s < shard_count; ++s) decode_one(s);
  }
}

void decode_into_impl(std::span<const std::byte> in, std::uint32_t radius,
                      AlignedVec<std::uint32_t>& out, std::uint64_t expected_count,
                      exec::ThreadPool* pool) {
  if (is_sharded_quant_stream(in)) {
    const ShardedHeader h = parse_sharded(in, expected_count);
    out.resize(static_cast<std::size_t>(h.n));
    decode_shards(in, radius, out.data(), h, pool);
    return;
  }
  BitReader br(in);
  const auto n = static_cast<std::size_t>(br.read_bits(48));
  if (n != expected_count) throw CodecError("quant codec: count mismatch");
  const auto cb = HuffmanCodebook::deserialize(br);
  out.resize(n);
  SpanSink sink{out.data(), radius};
  decode_stream(br, cb, radius, n, sink);
}

}  // namespace

std::uint32_t quant_stream_shards(std::span<const std::byte> in) {
  if (!is_sharded_quant_stream(in)) return 1;
  BitReader br(in);
  (void)br.read_bits(48);
  if (br.read_bits(8) != kShardLayoutVersion)
    throw CodecError("quant codec: unknown shard layout version");
  const std::uint64_t n = br.read_bits(48);
  const std::uint64_t w = br.read_bits(16);
  if (w < 2 || w > kMaxEntropyShards || w > n)
    throw CodecError("quant codec: bad shard count");
  return static_cast<std::uint32_t>(w);
}

std::vector<std::uint32_t> decode_quant_codes(std::span<const std::byte> in,
                                              std::uint32_t radius) {
  if (is_sharded_quant_stream(in)) {
    const ShardedHeader h = parse_sharded(in, kAnyCount);
    std::vector<std::uint32_t> codes(static_cast<std::size_t>(h.n));
    decode_shards(in, radius, codes.data(), h, nullptr);
    return codes;
  }
  BitReader br(in);
  const auto n = static_cast<std::size_t>(br.read_bits(48));
  if (n > kMaxCount) throw CodecError("quant codec: implausible count");
  const auto cb = HuffmanCodebook::deserialize(br);

  std::vector<std::uint32_t> codes;
  // A symbol costs >= 1 bit, so clamp the reserve by the payload actually
  // held: a hostile 48-bit count must not size an allocation.
  codes.reserve(std::min<std::size_t>(n, static_cast<std::size_t>(br.bits_remaining())));
  struct VecSink {
    std::vector<std::uint32_t>& out;
    std::uint32_t zero;
    void literal(std::uint32_t sym) { out.push_back(sym); }
    void run(std::size_t count) { out.insert(out.end(), count, zero); }
  } sink{codes, radius};
  decode_stream(br, cb, radius, n, sink);
  return codes;
}

void decode_quant_codes_into(std::span<const std::byte> in, std::uint32_t radius,
                             AlignedVec<std::uint32_t>& out,
                             std::uint64_t expected_count) {
  decode_into_impl(in, radius, out, expected_count, nullptr);
}

void decode_quant_codes_into(std::span<const std::byte> in, std::uint32_t radius,
                             AlignedVec<std::uint32_t>& out,
                             std::uint64_t expected_count, exec::ThreadPool& pool) {
  decode_into_impl(in, radius, out, expected_count, &pool);
}

}  // namespace mrc::lossless
