#include "lossless/huffman.h"

#include <algorithm>
#include <bit>
#include <numeric>

namespace mrc::lossless {

namespace detail {

void gamma_encode(BitWriter& bw, std::uint64_t v) {
  MRC_REQUIRE(v >= 1, "gamma code requires v >= 1");
  // n = floor(log2(v)) via bit_width — the naive `v >> (n + 1)` scan hits a
  // 64-bit shift (UB) for v >= 2^63.
  const int n = std::bit_width(v) - 1;
  bw.write_bits(0, n);
  bw.write_bit(1);
  bw.write_bits(v & ((std::uint64_t{1} << n) - 1), n);
}

std::uint64_t gamma_decode(BitReader& br) {
  int n = 0;
  while (br.read_bit() == 0) {
    ++n;
    if (n > 63) throw CodecError("gamma code too long");
  }
  return (std::uint64_t{1} << n) | br.read_bits(n);
}

}  // namespace detail

namespace {

using detail::gamma_decode;
using detail::gamma_encode;

/// Reverses the low `n` bits of `v` (MSB-first code -> LSB-first emission).
std::uint64_t bit_reverse(std::uint64_t v, int n) {
  std::uint64_t r = 0;
  for (int i = 0; i < n; ++i) r |= ((v >> i) & 1u) << (n - 1 - i);
  return r;
}

// Computes code lengths with the two-queue Huffman construction.
// Returns max length; lengths[sym] == 0 for unused symbols.
int build_lengths(std::span<const std::uint64_t> freqs, std::vector<std::uint8_t>& lengths) {
  struct Node {
    std::uint64_t freq;
    int left;   // -1 for leaf
    int right;
    std::uint32_t symbol;
  };
  std::vector<std::uint32_t> used;
  for (std::uint32_t s = 0; s < freqs.size(); ++s)
    if (freqs[s] > 0) used.push_back(s);

  lengths.assign(freqs.size(), 0);
  if (used.empty()) return 0;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return 1;
  }

  std::sort(used.begin(), used.end(),
            [&](std::uint32_t a, std::uint32_t b) { return freqs[a] < freqs[b]; });

  std::vector<Node> nodes;
  nodes.reserve(used.size() * 2);
  for (auto s : used) nodes.push_back({freqs[s], -1, -1, s});

  // Two queues: leaves (already sorted) and internal nodes (produced in
  // non-decreasing order).
  std::vector<int> internal;
  std::size_t li = 0, ii = 0;
  auto pop_min = [&]() -> int {
    const bool leaf_ok = li < used.size();
    const bool int_ok = ii < internal.size();
    if (leaf_ok && (!int_ok || nodes[li].freq <= nodes[internal[ii]].freq))
      return static_cast<int>(li++);
    MRC_REQUIRE(int_ok, "huffman queue underflow");
    return internal[ii++];
  };

  const std::size_t n_leaves = used.size();
  while ((n_leaves - li) + (internal.size() - ii) > 1) {
    const int a = pop_min();
    const int b = pop_min();
    nodes.push_back({nodes[a].freq + nodes[b].freq, a, b, 0});
    internal.push_back(static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first depth assignment (iterative to bound stack usage).
  const int root = internal.empty() ? 0 : internal.back();
  std::vector<std::pair<int, int>> stack{{root, 0}};
  int max_len = 0;
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[idx];
    if (nd.left < 0) {
      const int len = std::max(depth, 1);
      lengths[nd.symbol] = static_cast<std::uint8_t>(len);
      max_len = std::max(max_len, len);
    } else {
      stack.emplace_back(nd.left, depth + 1);
      stack.emplace_back(nd.right, depth + 1);
    }
  }
  return max_len;
}

}  // namespace

HuffmanCodebook HuffmanCodebook::from_frequencies(std::span<const std::uint64_t> freqs) {
  HuffmanCodebook cb;
  std::vector<std::uint64_t> f(freqs.begin(), freqs.end());
  // Length-limit by frequency scaling: rarely triggers, keeps codes <= 56
  // bits so they fit comfortably in a u64 during canonical decoding.
  for (;;) {
    const int max_len = build_lengths(f, cb.lengths_);
    if (max_len <= 56) break;
    for (auto& v : f)
      if (v > 0) v = (v >> 1) | 1;
  }
  cb.build_canonical();
  return cb;
}

void HuffmanCodebook::build_canonical() {
  sorted_symbols_.clear();
  for (std::uint32_t s = 0; s < lengths_.size(); ++s)
    if (lengths_[s] > 0) sorted_symbols_.push_back(s);
  std::stable_sort(sorted_symbols_.begin(), sorted_symbols_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return lengths_[a] != lengths_[b] ? lengths_[a] < lengths_[b] : a < b;
                   });

  max_length_ = 0;
  for (auto s : sorted_symbols_) max_length_ = std::max<int>(max_length_, lengths_[s]);

  codes_.assign(lengths_.size(), 0);
  enc_bits_.assign(lengths_.size(), 0);
  first_code_.assign(static_cast<std::size_t>(max_length_) + 2, 0);
  first_index_.assign(static_cast<std::size_t>(max_length_) + 2, 0);

  std::uint64_t code = 0;
  int prev_len = 0;
  std::vector<bool> seen(static_cast<std::size_t>(max_length_) + 2, false);
  for (std::uint32_t i = 0; i < sorted_symbols_.size(); ++i) {
    const auto sym = sorted_symbols_[i];
    const int len = lengths_[sym];
    code <<= (len - prev_len);
    if (!seen[static_cast<std::size_t>(len)]) {
      first_code_[static_cast<std::size_t>(len)] = code;
      first_index_[static_cast<std::size_t>(len)] = i;
      seen[static_cast<std::size_t>(len)] = true;
    }
    codes_[sym] = code;
    enc_bits_[sym] = bit_reverse(code, len);
    ++code;
    prev_len = len;
  }
  // For lengths with no symbols, make ranges empty but monotone so decode's
  // range check stays simple.
  std::uint32_t next_index = static_cast<std::uint32_t>(sorted_symbols_.size());
  for (int len = max_length_; len >= 1; --len) {
    if (!seen[static_cast<std::size_t>(len)]) {
      first_index_[static_cast<std::size_t>(len)] = next_index;
      first_code_[static_cast<std::size_t>(len)] = ~std::uint64_t{0} >> (64 - len);
    } else {
      next_index = first_index_[static_cast<std::size_t>(len)];
    }
  }
  first_index_[static_cast<std::size_t>(max_length_) + 1] =
      static_cast<std::uint32_t>(sorted_symbols_.size());

  // Direct decode table over the first table_bits_ stream bits. A code of
  // length L <= table_bits_ owns every entry whose low L bits are its
  // bit-reversed pattern; the 2^(table_bits_ - L) fill patterns enumerate the
  // bits of whatever follows it in the stream.
  table_bits_ = std::min(kDecodeTableBits, max_length_);
  if (sorted_symbols_.empty()) {
    // Keep one always-miss entry so decode() needs no emptiness branch.
    table_.assign(1, 0);
    table_mask_ = 0;
    return;
  }
  table_.assign(std::size_t{1} << table_bits_, 0);
  table_mask_ = table_.size() - 1;
  for (auto sym : sorted_symbols_) {
    const int len = lengths_[sym];
    if (len > table_bits_) continue;
    const std::uint64_t base = enc_bits_[sym];
    const std::uint32_t entry = (sym << 6) | static_cast<std::uint32_t>(len);
    for (std::uint64_t fill = base; fill < table_.size();
         fill += std::uint64_t{1} << len)
      table_[static_cast<std::size_t>(fill)] = entry;
  }
}

std::uint32_t HuffmanCodebook::decode_long(BitReader& br, std::uint64_t window) const {
  // Codes longer than the table (or an invalid stream): canonical scan over
  // lengths, rebuilding the MSB-first code from the LSB-first window.
  std::uint64_t code = 0;
  for (int len = 1; len <= max_length_; ++len) {
    code = (code << 1) | ((window >> (len - 1)) & 1u);
    if (len <= table_bits_) continue;  // table already proved no match here
    const auto l = static_cast<std::size_t>(len);
    const std::uint32_t count = first_index_[l + 1] - first_index_[l];
    if (count > 0 && code >= first_code_[l] && code < first_code_[l] + count) {
      br.consume(len);
      return sorted_symbols_[first_index_[l] + static_cast<std::uint32_t>(code - first_code_[l])];
    }
  }
  throw CodecError("invalid huffman code");
}

void HuffmanCodebook::serialize(BitWriter& bw) const {
  bw.write_bits(lengths_.size(), 24);
  bw.write_bits(sorted_symbols_.size(), 24);
  // Symbols in ascending order with gamma-coded deltas + 6-bit lengths.
  std::vector<std::uint32_t> asc;
  for (std::uint32_t s = 0; s < lengths_.size(); ++s)
    if (lengths_[s] > 0) asc.push_back(s);
  std::uint32_t prev = 0;
  for (auto s : asc) {
    gamma_encode(bw, static_cast<std::uint64_t>(s) - prev + 1);
    bw.write_bits(lengths_[s], 6);
    prev = s;
  }
}

HuffmanCodebook HuffmanCodebook::deserialize(BitReader& br) {
  HuffmanCodebook cb;
  const auto alphabet = static_cast<std::size_t>(br.read_bits(24));
  const auto n_used = static_cast<std::size_t>(br.read_bits(24));
  cb.lengths_.assign(alphabet, 0);
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < n_used; ++i) {
    const auto delta = gamma_decode(br);
    const std::uint64_t sym = prev + delta - 1;
    if (sym >= alphabet) throw CodecError("huffman symbol out of range");
    const auto len = static_cast<std::uint8_t>(br.read_bits(6));
    if (len == 0 || len > 56) throw CodecError("huffman length out of range");
    cb.lengths_[static_cast<std::size_t>(sym)] = len;
    prev = static_cast<std::uint32_t>(sym);
  }
  cb.build_canonical();
  return cb;
}

Bytes huffman_encode(std::span<const std::uint32_t> symbols, std::uint32_t alphabet_size) {
  std::vector<std::uint64_t> freqs(alphabet_size, 0);
  for (auto s : symbols) {
    MRC_REQUIRE(s < alphabet_size, "symbol outside alphabet");
    ++freqs[s];
  }
  auto cb = HuffmanCodebook::from_frequencies(freqs);
  BitWriter bw;
  bw.write_bits(symbols.size(), 48);
  cb.serialize(bw);
  for (auto s : symbols) cb.encode(bw, s);
  return bw.take();
}

std::vector<std::uint32_t> huffman_decode(std::span<const std::byte> in) {
  BitReader br(in);
  const auto n = static_cast<std::size_t>(br.read_bits(48));
  if (n > (std::size_t{1} << 40)) throw CodecError("huffman: implausible count");
  auto cb = HuffmanCodebook::deserialize(br);
  std::vector<std::uint32_t> out;
  // A symbol costs at least one bit, so a hostile count field can never
  // justify reserving more than the payload could hold.
  out.reserve(std::min<std::size_t>(n, static_cast<std::size_t>(br.bits_remaining())));
  for (std::size_t i = 0; i < n; ++i) out.push_back(cb.decode(br));
  return out;
}

}  // namespace mrc::lossless
