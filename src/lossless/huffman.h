#pragma once

// Canonical Huffman coding over a bounded symbol alphabet.
//
// The codebook is reusable symbol-at-a-time so callers (the quantization-code
// codec) can interleave Huffman codes with raw extra bits in one bit stream,
// the way SZ-family compressors interleave run lengths.
//
// Codes are MSB-first canonical codes (the format is frozen), but both
// directions run word-at-a-time: encode() writes a precomputed bit-reversed
// (code, length) pair with one write_bits() call, and decode() indexes a
// (1 << kDecodeTableBits)-entry lookup table with a peeked window, chaining
// to the canonical first_code/first_index scan only for longer codes.

#include <cstdint>
#include <span>
#include <vector>

#include "lossless/bitstream.h"

namespace mrc::lossless {

namespace detail {

/// Elias-gamma coding for small positive integers (symbol deltas in the
/// codebook header). Exposed for boundary tests; v >= 1, any u64.
void gamma_encode(BitWriter& bw, std::uint64_t v);
[[nodiscard]] std::uint64_t gamma_decode(BitReader& br);

}  // namespace detail

class HuffmanCodebook {
 public:
  /// Direct-lookup decode table width: codes at most this long decode with
  /// one peek + one table load. Longer codes (rare by construction — the
  /// table covers the high-frequency symbols) fall back to the canonical
  /// per-length scan.
  static constexpr int kDecodeTableBits = 12;

  /// Builds length-limited (<= 56 bits) canonical codes from frequencies.
  /// Symbols with zero frequency get no code.
  static HuffmanCodebook from_frequencies(std::span<const std::uint64_t> freqs);

  /// Writes the code-length table (only used symbols) to the stream.
  void serialize(BitWriter& bw) const;

  /// Reads a code-length table produced by serialize().
  static HuffmanCodebook deserialize(BitReader& br);

  void encode(BitWriter& bw, std::uint32_t symbol) const {
    MRC_REQUIRE(symbol < lengths_.size() && lengths_[symbol] > 0, "symbol has no code");
    bw.write_bits(enc_bits_[symbol], lengths_[symbol]);
  }

  [[nodiscard]] std::uint32_t decode(BitReader& br) const {
    const std::uint64_t w = br.peek(table_bits_);
    const std::uint32_t e = table_[w & table_mask_];  // never empty: see build_canonical
    if (e != 0) {
      br.consume(static_cast<int>(e & 63u));
      return e >> 6;
    }
    // Rare: a code longer than the table (or an invalid stream) — re-peek
    // with the full window so the per-length scan sees up to 56 bits.
    return decode_long(br, br.peek());
  }

  [[nodiscard]] std::size_t alphabet_size() const { return lengths_.size(); }
  [[nodiscard]] int code_length(std::uint32_t symbol) const { return lengths_[symbol]; }

 private:
  void build_canonical();
  [[nodiscard]] std::uint32_t decode_long(BitReader& br, std::uint64_t window) const;

  std::vector<std::uint8_t> lengths_;   // per-symbol code length (0 == unused)
  std::vector<std::uint64_t> codes_;    // canonical code, MSB-first semantics
  std::vector<std::uint64_t> enc_bits_; // codes_ bit-reversed for LSB-first emission
  // Direct decode table: entry = (symbol << 6) | length for codes no longer
  // than table_bits_; 0 = fall back to the per-length scan below.
  std::vector<std::uint32_t> table_;
  std::uint64_t table_mask_ = 0;
  int table_bits_ = 0;
  // Canonical decoding state: for each length, the first code and the index
  // of its first symbol in the length-sorted symbol list.
  std::vector<std::uint64_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint32_t> sorted_symbols_;
  int max_length_ = 0;
};

/// Convenience one-shot helpers (tests, small metadata streams).
Bytes huffman_encode(std::span<const std::uint32_t> symbols, std::uint32_t alphabet_size);
std::vector<std::uint32_t> huffman_decode(std::span<const std::byte> in);

}  // namespace mrc::lossless
