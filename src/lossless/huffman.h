#pragma once

// Canonical Huffman coding over a bounded symbol alphabet.
//
// The codebook is reusable symbol-at-a-time so callers (the quantization-code
// codec) can interleave Huffman codes with raw extra bits in one bit stream,
// the way SZ-family compressors interleave run lengths.

#include <cstdint>
#include <span>
#include <vector>

#include "lossless/bitstream.h"

namespace mrc::lossless {

class HuffmanCodebook {
 public:
  /// Builds length-limited (<= 56 bits) canonical codes from frequencies.
  /// Symbols with zero frequency get no code.
  static HuffmanCodebook from_frequencies(std::span<const std::uint64_t> freqs);

  /// Writes the code-length table (only used symbols) to the stream.
  void serialize(BitWriter& bw) const;

  /// Reads a code-length table produced by serialize().
  static HuffmanCodebook deserialize(BitReader& br);

  void encode(BitWriter& bw, std::uint32_t symbol) const;
  [[nodiscard]] std::uint32_t decode(BitReader& br) const;

  [[nodiscard]] std::size_t alphabet_size() const { return lengths_.size(); }
  [[nodiscard]] int code_length(std::uint32_t symbol) const { return lengths_[symbol]; }

 private:
  void build_canonical();

  std::vector<std::uint8_t> lengths_;   // per-symbol code length (0 == unused)
  std::vector<std::uint64_t> codes_;    // canonical code, MSB-first semantics
  // Canonical decoding state: for each length, the first code and the index
  // of its first symbol in the length-sorted symbol list.
  std::vector<std::uint64_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint32_t> sorted_symbols_;
  int max_length_ = 0;
};

/// Convenience one-shot helpers (tests, small metadata streams).
Bytes huffman_encode(std::span<const std::uint32_t> symbols, std::uint32_t alphabet_size);
std::vector<std::uint32_t> huffman_decode(std::span<const std::byte> in);

}  // namespace mrc::lossless
