#pragma once

// Entropy codec for error-bounded quantization codes.
//
// SZ-family compressors follow quantization with Huffman + a dictionary
// stage (zstd); the dictionary stage is what pushes rates below one bit per
// value on smooth data, where almost every residual lands in the zero bin.
// We reach the same sub-bit regime directly: runs of the zero bin are
// re-tokenized into run-length symbols (deflate-style logarithmic buckets
// with raw extra bits), then the whole token stream is Huffman coded.
//
// Code conventions (shared with all compressors in this library):
//   code == 0         : outlier escape — the exact value is stored separately
//   code == radius    : zero residual
//   code in [1, 2*radius] : residual bin (code - radius)

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"

namespace mrc::lossless {

/// Encodes `codes` (each in [0, 2*radius]).
[[nodiscard]] Bytes encode_quant_codes(std::span<const std::uint32_t> codes,
                                       std::uint32_t radius);

/// Decodes a stream produced by encode_quant_codes. Convenience/test API:
/// the output grows to whatever the stream encodes, and run-length tokens
/// legitimately expand a few bytes into millions of zero bins (that is the
/// sub-bit regime working as designed — bounded only by the 2^40 count cap).
/// Production decode paths that know the expected geometry must use
/// decode_quant_codes_into, which rejects any count the caller did not ask
/// for before sizing anything.
[[nodiscard]] std::vector<std::uint32_t> decode_quant_codes(std::span<const std::byte> in,
                                                            std::uint32_t radius);

/// Decodes into a caller-provided reusable buffer (the allocation-free hot
/// path: callers that know the expected symbol count — e.g. the grid size —
/// pass it, and `out` is resized to exactly that). The stream's recorded
/// count is checked against `expected_count` *before* `out` is sized
/// (validate-before-allocate: a corrupt stream whose count disagrees with
/// the caller's geometry throws without any sizing). Throws CodecError on
/// mismatch.
void decode_quant_codes_into(std::span<const std::byte> in, std::uint32_t radius,
                             std::vector<std::uint32_t>& out,
                             std::uint64_t expected_count);

}  // namespace mrc::lossless
