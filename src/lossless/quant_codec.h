#pragma once

// Entropy codec for error-bounded quantization codes.
//
// SZ-family compressors follow quantization with Huffman + a dictionary
// stage (zstd); the dictionary stage is what pushes rates below one bit per
// value on smooth data, where almost every residual lands in the zero bin.
// We reach the same sub-bit regime directly: runs of the zero bin are
// re-tokenized into run-length symbols (deflate-style logarithmic buckets
// with raw extra bits), then the whole token stream is Huffman coded.
//
// Code conventions (shared with all compressors in this library):
//   code == 0         : outlier escape — the exact value is stored separately
//   code == radius    : zero residual
//   code in [1, 2*radius] : residual bin (code - radius)
//
// Two wire layouts share these token semantics:
//
//   * Monolithic (frozen): 48-bit count, serialized codebook, one token
//     stream. Every v6-and-older stream uses it and its bytes must never
//     change (tests/test_frozen_format.cpp).
//   * Sharded (opt-in, container v7): the code array is split into W
//     independently decodable chunks that share one codebook, so one large
//     brick's decode can fan out across the exec pool instead of
//     serializing on a single bitstream. Layout:
//       48-bit marker 0xFFFF'FFFF'FFFF   (monolithic counts are capped at
//                                         2^40, so the marker never collides)
//       u8   shard-layout version (1)
//       48-bit total symbol count
//       16-bit shard count W
//       serialized shared codebook
//       W x (48-bit byte offset, 48-bit byte length, 48-bit symbol count)
//       zero-pad to a byte boundary, then the W chunks back to back
//     Each chunk tokenizes its own slice (zero runs split at shard
//     boundaries) and is byte-aligned. The shard table is fully validated —
//     contiguous offsets covering the payload exactly, counts >= 1 summing
//     to the total — before any output allocation.

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/bytes.h"

namespace mrc::exec {
class ThreadPool;
}

namespace mrc::lossless {

/// Hard cap on shards per entropy stream: enough to feed any plausible pool
/// from one brick while keeping the shard table trivially small; also the
/// bound the container-header and shard-table validators enforce.
inline constexpr std::uint32_t kMaxEntropyShards = 4096;

/// Fewest symbols worth an independent shard — below this the per-shard
/// Huffman flush + table entry costs more than the parallelism pays. The
/// sharded encoder clamps the requested shard count by it.
inline constexpr std::uint64_t kMinShardSymbols = 4096;

/// The shard count actually used for an n-symbol stream when `requested`
/// shards are asked for: clamped to kMaxEntropyShards and to one shard per
/// kMinShardSymbols, floored at 1. Writers record this (not the raw request)
/// in v7 container headers so header and stream layout always agree.
[[nodiscard]] std::uint32_t negotiate_entropy_shards(std::uint64_t n,
                                                     std::uint32_t requested);

/// Encodes `codes` (each in [0, 2*radius]) in the frozen monolithic layout.
[[nodiscard]] Bytes encode_quant_codes(std::span<const std::uint32_t> codes,
                                       std::uint32_t radius);

/// Encodes in the sharded layout with (up to) `shards` chunks. The count is
/// negotiated down — clamped to kMaxEntropyShards and to one shard per
/// kMinShardSymbols symbols — and when it collapses to 1 the frozen
/// monolithic layout is emitted instead, so small inputs never pay the
/// shard-table overhead and a shards<=1 request is exactly
/// encode_quant_codes(). Output bytes depend only on (codes, radius,
/// shards), never on thread counts.
[[nodiscard]] Bytes encode_quant_codes_sharded(std::span<const std::uint32_t> codes,
                                               std::uint32_t radius,
                                               std::uint32_t shards);

/// True iff `in` begins with the sharded-layout marker.
[[nodiscard]] bool is_sharded_quant_stream(std::span<const std::byte> in);

/// Shard count a stream was written with: 1 for the monolithic layout,
/// the recorded W for a sharded stream (validated to [2, kMaxEntropyShards]).
[[nodiscard]] std::uint32_t quant_stream_shards(std::span<const std::byte> in);

/// Decodes a stream produced by either encoder. Convenience/test API:
/// the output grows to whatever the stream encodes, and run-length tokens
/// legitimately expand a few bytes into millions of zero bins (that is the
/// sub-bit regime working as designed — bounded only by the 2^40 count cap).
/// Production decode paths that know the expected geometry must use
/// decode_quant_codes_into, which rejects any count the caller did not ask
/// for before sizing anything.
[[nodiscard]] std::vector<std::uint32_t> decode_quant_codes(std::span<const std::byte> in,
                                                            std::uint32_t radius);

/// Decodes into a caller-provided reusable buffer (the allocation-free hot
/// path: callers that know the expected symbol count — e.g. the grid size —
/// pass it, and `out` is resized to exactly that). The stream's recorded
/// count is checked against `expected_count` *before* `out` is sized
/// (validate-before-allocate: a corrupt stream whose count disagrees with
/// the caller's geometry throws without any sizing; for a sharded stream
/// the whole shard table is validated first too). Throws CodecError on any
/// mismatch. Sharded streams fan their chunks out across a small private
/// pool when the calling thread is not already an exec pool lane
/// (exec::on_pool_lane()); decoded bytes are identical either way.
void decode_quant_codes_into(std::span<const std::byte> in, std::uint32_t radius,
                             AlignedVec<std::uint32_t>& out,
                             std::uint64_t expected_count);

/// Same, but sharded streams decode on `pool` (benches/tests that want an
/// explicit width; monolithic streams ignore it).
void decode_quant_codes_into(std::span<const std::byte> in, std::uint32_t radius,
                             AlignedVec<std::uint32_t>& out,
                             std::uint64_t expected_count, exec::ThreadPool& pool);

}  // namespace mrc::lossless
