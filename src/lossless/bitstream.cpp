#include "lossless/bitstream.h"

// Header-only implementation; this translation unit anchors the target.
