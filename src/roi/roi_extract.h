#pragma once

// Compression-oriented ROI extraction (paper §III preamble, Fig. 4):
// converts uniform-resolution data into two-level "adaptive data" by keeping
// the top-x% of b^3 blocks (ranked by value range) at full resolution and
// storing the rest 2x coarser.

#include "grid/multires.h"

namespace mrc::roi {

/// Converts a uniform field into adaptive (2-level) multi-resolution data.
/// `roi_fraction` is the paper's x (default 0.5), `block_size` its b (2^n,
/// n > 2).
[[nodiscard]] MultiResField extract_adaptive(const FieldF& uniform, index_t block_size,
                                             double roi_fraction);

/// Fig. 4 diagnostic: fraction of "interesting" cells (value above
/// `threshold`, e.g. over-density halos) that the ROI keeps at full
/// resolution.
[[nodiscard]] double captured_fraction(const MultiResField& adaptive, const FieldF& original,
                                       float threshold);

}  // namespace mrc::roi
