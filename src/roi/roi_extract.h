#pragma once

// Compression-oriented ROI extraction (paper §III preamble, Fig. 4):
// converts uniform-resolution data into two-level "adaptive data" by keeping
// the top-x% of b^3 blocks (ranked by value range) at full resolution and
// storing the rest 2x coarser.

#include <span>

#include "grid/multires.h"

namespace mrc::roi {

/// Converts a uniform field into adaptive (2-level) multi-resolution data.
/// `roi_fraction` is the paper's x (default 0.5), `block_size` its b (2^n,
/// n > 2).
[[nodiscard]] MultiResField extract_adaptive(const FieldF& uniform, index_t block_size,
                                             double roi_fraction);

/// The paper's top-x% ranking rule generalized to any per-block score: the
/// smallest score still kept when the best `fraction` of blocks are kept.
/// fraction <= 0 keeps nothing (+inf), fraction >= 1 keeps everything
/// (-inf). Ties at the threshold are kept, so the kept set may slightly
/// exceed `fraction`.
[[nodiscard]] double keep_fraction_threshold(std::span<const double> scores,
                                             double fraction);

/// The value with (about) the top `fraction` of `values` at or above it —
/// the halo-preservation bench's density-threshold convention, shared here
/// so the facade's auto halo cut cannot drift from it.
[[nodiscard]] float top_value_quantile(std::span<const float> values, double fraction);

/// Fig. 4 diagnostic: fraction of "interesting" cells (value above
/// `threshold`, e.g. over-density halos) that the ROI keeps at full
/// resolution.
[[nodiscard]] double captured_fraction(const MultiResField& adaptive, const FieldF& original,
                                       float threshold);

}  // namespace mrc::roi
