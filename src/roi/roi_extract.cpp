#include "roi/roi_extract.h"

#include <array>

namespace mrc::roi {

MultiResField extract_adaptive(const FieldF& uniform, index_t block_size,
                               double roi_fraction) {
  MRC_REQUIRE(roi_fraction > 0.0 && roi_fraction <= 1.0, "roi fraction in (0, 1]");
  MRC_REQUIRE(block_size >= 8, "paper requires b = 2^n with n > 2");
  const std::array<double, 2> fractions{roi_fraction, 1.0 - roi_fraction};
  return amr::build_hierarchy(uniform, block_size, fractions);
}

double captured_fraction(const MultiResField& adaptive, const FieldF& original,
                         float threshold) {
  MRC_REQUIRE(!adaptive.levels.empty(), "empty hierarchy");
  const LevelData& fine = adaptive.levels.front();
  MRC_REQUIRE(fine.data.dims() == original.dims(), "dimension mismatch");
  index_t interesting = 0;
  index_t captured = 0;
  for (index_t i = 0; i < original.size(); ++i) {
    if (original[i] >= threshold) {
      ++interesting;
      captured += fine.mask[i] ? 1 : 0;
    }
  }
  return interesting == 0 ? 1.0
                          : static_cast<double>(captured) / static_cast<double>(interesting);
}

}  // namespace mrc::roi
