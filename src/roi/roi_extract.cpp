#include "roi/roi_extract.h"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

namespace mrc::roi {

float top_value_quantile(std::span<const float> values, double fraction) {
  MRC_REQUIRE(!values.empty(), "roi: quantile of no values");
  MRC_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
              "roi: quantile fraction must be in [0, 1]");
  std::vector<float> sorted(values.begin(), values.end());
  const auto keep = std::clamp<std::size_t>(
      static_cast<std::size_t>(fraction * static_cast<double>(sorted.size())), 1,
      sorted.size());
  std::nth_element(sorted.begin(), sorted.begin() + (sorted.size() - keep),
                   sorted.end());
  return sorted[sorted.size() - keep];
}

double keep_fraction_threshold(std::span<const double> scores, double fraction) {
  MRC_REQUIRE(fraction == fraction, "roi: keep fraction must not be NaN");
  if (fraction <= 0.0 || scores.empty()) return std::numeric_limits<double>::infinity();
  if (fraction >= 1.0) return -std::numeric_limits<double>::infinity();
  const auto keep = std::min(
      scores.size(),
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   fraction * static_cast<double>(scores.size()) + 0.5)));
  std::vector<double> sorted(scores.begin(), scores.end());
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                   sorted.end(), std::greater<>());
  return sorted[keep - 1];
}

MultiResField extract_adaptive(const FieldF& uniform, index_t block_size,
                               double roi_fraction) {
  MRC_REQUIRE(roi_fraction > 0.0 && roi_fraction <= 1.0, "roi fraction in (0, 1]");
  MRC_REQUIRE(block_size >= 8, "paper requires b = 2^n with n > 2");
  const std::array<double, 2> fractions{roi_fraction, 1.0 - roi_fraction};
  return amr::build_hierarchy(uniform, block_size, fractions);
}

double captured_fraction(const MultiResField& adaptive, const FieldF& original,
                         float threshold) {
  MRC_REQUIRE(!adaptive.levels.empty(), "empty hierarchy");
  const LevelData& fine = adaptive.levels.front();
  MRC_REQUIRE(fine.data.dims() == original.dims(), "dimension mismatch");
  index_t interesting = 0;
  index_t captured = 0;
  for (index_t i = 0; i < original.size(); ++i) {
    if (original[i] >= threshold) {
      ++interesting;
      captured += fine.mask[i] ? 1 : 0;
    }
  }
  return interesting == 0 ? 1.0
                          : static_cast<double>(captured) / static_cast<double>(interesting);
}

}  // namespace mrc::roi
