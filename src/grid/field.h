#pragma once

// Owning 3-D scalar field. Header-only: this type is on every hot path.

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "common/dims.h"
#include "common/require.h"

namespace mrc {

/// Row-major (x fastest) owning 3-D array of scalars.
template <typename T>
class Field3D {
 public:
  Field3D() = default;

  explicit Field3D(Dim3 dims, T init = T{})
      : dims_(dims), data_(static_cast<std::size_t>(dims.size()), init) {
    MRC_REQUIRE(dims.nx >= 0 && dims.ny >= 0 && dims.nz >= 0, "negative extent");
  }

  Field3D(Dim3 dims, std::vector<T> data) : dims_(dims), data_(std::move(data)) {
    MRC_REQUIRE(static_cast<index_t>(data_.size()) == dims_.size(),
                "data size does not match extents");
  }

  [[nodiscard]] const Dim3& dims() const { return dims_; }
  [[nodiscard]] index_t size() const { return dims_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& at(index_t x, index_t y, index_t z) {
    return data_[static_cast<std::size_t>(dims_.index(x, y, z))];
  }
  [[nodiscard]] const T& at(index_t x, index_t y, index_t z) const {
    return data_[static_cast<std::size_t>(dims_.index(x, y, z))];
  }

  /// Bounds-checked access; use in tests and non-hot paths.
  [[nodiscard]] T& at_checked(index_t x, index_t y, index_t z) {
    MRC_REQUIRE(dims_.contains(x, y, z), "index out of range");
    return at(x, y, z);
  }

  [[nodiscard]] T& operator[](index_t i) { return data_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const T& operator[](index_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const { return {data_.data(), data_.size()}; }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  [[nodiscard]] std::pair<T, T> min_max() const {
    MRC_REQUIRE(!data_.empty(), "min_max of empty field");
    auto [lo, hi] = std::minmax_element(data_.begin(), data_.end());
    return {*lo, *hi};
  }

  [[nodiscard]] double value_range() const {
    auto [lo, hi] = min_max();
    return static_cast<double>(hi) - static_cast<double>(lo);
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Moves the storage out (the field becomes empty). Lets hot paths lend a
  /// reusable buffer to a Field3D and take it back without reallocating.
  [[nodiscard]] std::vector<T> release() {
    dims_ = {};
    return std::move(data_);
  }

  bool operator==(const Field3D&) const = default;

 private:
  Dim3 dims_{};
  std::vector<T> data_{};
};

using FieldF = Field3D<float>;
using FieldD = Field3D<double>;
using MaskField = Field3D<std::uint8_t>;

}  // namespace mrc
