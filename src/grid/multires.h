#pragma once

// Multi-resolution data model covering both AMR output and "adaptive data"
// derived from uniform grids (paper §II-B / §III preamble).
//
// Every level stores a full grid at its own resolution plus a validity mask:
// a cell is valid at exactly one level (the finest level that covers its
// region). Refinement is block-granular — a `block_size`^3 region of the
// finest grid is assigned to one level as a whole — matching block-structured
// AMR codes (AMReX) and making unit-block extraction exact.

#include <vector>

#include "grid/field.h"
#include "grid/field_ops.h"

namespace mrc {

struct LevelData {
  FieldF data;      ///< full grid at this level's resolution
  MaskField mask;   ///< 1 where this level is the valid representation
  index_t ratio;    ///< refinement ratio vs the finest level (1, 2, 4, ...)

  /// Fraction of this level's cells that are valid (the paper's "density").
  [[nodiscard]] double density() const;
  /// Number of valid cells.
  [[nodiscard]] index_t valid_count() const;
};

struct MultiResField {
  std::vector<LevelData> levels;  ///< [0] = finest
  Dim3 fine_dims;
  index_t block_size = 16;  ///< refinement granularity on the finest grid

  /// Composes a uniform fine-resolution field: valid fine cells where
  /// present, trilinear prolongation of coarser levels elsewhere.
  [[nodiscard]] FieldF reconstruct_uniform() const;

  /// Total number of stored (valid) samples across levels.
  [[nodiscard]] index_t stored_samples() const;
};

namespace amr {

/// Builds an AMR-style hierarchy from a uniform fine field.
///
/// The finest grid is tiled into block_size^3 blocks, ranked by value range
/// (the range-threshold criterion of [Kumar et al., SC'14] the paper adopts);
/// the top `fractions[0]` stay at level 0, the next `fractions[1]` at level 1
/// (2x coarser), and so on. The last level absorbs the remainder, so
/// `fractions` needs one entry per level and they must sum to <= 1 with the
/// final entry ignored in favor of "everything left".
[[nodiscard]] MultiResField build_hierarchy(const FieldF& fine, index_t block_size,
                                            std::span<const double> fractions);

}  // namespace amr

}  // namespace mrc
