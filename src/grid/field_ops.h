#pragma once

// Whole-field operations shared by the AMR model, ROI conversion, metrics
// and benches: restriction/prolongation between resolution levels, region
// copies, and slicing.

#include "grid/field.h"

namespace mrc {

/// Box-average downsampling by an integer factor along every axis.
/// Extents must be divisible by the factor.
[[nodiscard]] FieldF restrict_average(const FieldF& fine, index_t factor);

/// Box-average downsampling by 2 for arbitrary extents: the coarse grid has
/// ceil(n/2) samples per axis and each coarse cell averages its (possibly
/// boundary-clipped) 2x2x2 fine box. The pyramid container's level chain is
/// built by iterating this, so level extents follow ceil_div(dims, 2^level).
[[nodiscard]] FieldF restrict_half(const FieldF& fine);

/// Nearest-neighbor (injection) upsampling to `fine_dims`.
[[nodiscard]] FieldF prolong_nearest(const FieldF& coarse, Dim3 fine_dims);

/// Trilinear upsampling to `fine_dims` (cell-centered alignment).
[[nodiscard]] FieldF prolong_trilinear(const FieldF& coarse, Dim3 fine_dims);

/// Coarse footprint of prolong_trilinear over the fine window
/// [fine_origin, fine_origin + fine_extent) of a fine_dims grid: the
/// half-open coarse index range covering both neighbors (i0 and i1) of
/// every fine sample in the window. origin/extent are in coarse indices.
struct SupportBox {
  Coord3 origin;
  Dim3 extent;
};
[[nodiscard]] SupportBox prolong_support(Dim3 coarse_dims, Dim3 fine_dims,
                                         Coord3 fine_origin, Dim3 fine_extent);

/// prolong_trilinear restricted to the fine window [fine_origin,
/// fine_origin + fine_extent), reading coarse samples from `coarse_window`
/// (a copy of the coarse box [window_origin, window_origin +
/// coarse_window.dims()), which must cover prolong_support of the fine
/// window). Sample arithmetic is identical to prolong_trilinear on the full
/// grids, so the result is bit-exact with the same window of the full
/// prolongation — the progressive container's refinement reads depend on
/// this.
[[nodiscard]] FieldF prolong_trilinear_region(const FieldF& coarse_window,
                                              Coord3 window_origin, Dim3 coarse_dims,
                                              Dim3 fine_dims, Coord3 fine_origin,
                                              Dim3 fine_extent);

/// Max |prolong_trilinear(coarse, fine.dims()) - fine| over the fine z-slab
/// [z0, z1), without materializing the prolonged field. This is the pyramid
/// builder's LOD-error kernel; slabs are independent, so callers parallelize
/// by splitting z across a pool.
[[nodiscard]] double prolong_error_slab(const FieldF& coarse, const FieldF& fine,
                                        index_t z0, index_t z1);

/// Pointwise gradient magnitude |∇f| via central differences (one-sided at
/// domain boundaries, unit grid spacing). The adaptive container's default
/// importance signal: high-gradient bricks are where downsampling hurts.
[[nodiscard]] FieldF gradient_magnitude(const FieldF& f);

/// Copies the box [origin, origin+extent) out of `f`.
[[nodiscard]] FieldF extract_region(const FieldF& f, Coord3 origin, Dim3 extent);

/// Writes `region` into `f` at `origin`.
void insert_region(FieldF& f, Coord3 origin, const FieldF& region);

/// Central z-slice as a degenerate (nz == 1) field, used for 2-D SSIM.
[[nodiscard]] FieldF central_slice_z(const FieldF& f);

/// Per-block value range (max - min) over a b^3 tiling — the paper's ROI
/// criterion. Returns one value per block, in block raster order.
[[nodiscard]] std::vector<double> block_value_ranges(const FieldF& f, index_t block);

}  // namespace mrc
