#include "grid/multires.h"

#include <algorithm>
#include <numeric>

namespace mrc {

double LevelData::density() const {
  if (mask.empty()) return 0.0;
  return static_cast<double>(valid_count()) / static_cast<double>(mask.size());
}

index_t LevelData::valid_count() const {
  index_t n = 0;
  for (index_t i = 0; i < mask.size(); ++i) n += mask[i] ? 1 : 0;
  return n;
}

FieldF MultiResField::reconstruct_uniform() const {
  MRC_REQUIRE(!levels.empty(), "empty hierarchy");
  // Start from the coarsest level prolonged everywhere, then overlay finer
  // levels where they are valid.
  FieldF out = prolong_trilinear(levels.back().data, fine_dims);
  for (int l = static_cast<int>(levels.size()) - 2; l >= 0; --l) {
    const LevelData& lev = levels[static_cast<std::size_t>(l)];
    const index_t r = lev.ratio;
    const Dim3 ld = lev.data.dims();
    // Prolong only where this level is valid; nearest for ratio 1.
    if (r == 1) {
      for (index_t i = 0; i < ld.size(); ++i)
        if (lev.mask[i]) out[i] = lev.data[i];
    } else {
      FieldF up = prolong_trilinear(lev.data, fine_dims);
      for (index_t z = 0; z < fine_dims.nz; ++z)
        for (index_t y = 0; y < fine_dims.ny; ++y)
          for (index_t x = 0; x < fine_dims.nx; ++x) {
            if (lev.mask.at(x / r, y / r, z / r))
              out.at(x, y, z) = up.at(x, y, z);
          }
    }
  }
  return out;
}

index_t MultiResField::stored_samples() const {
  index_t n = 0;
  for (const auto& l : levels) n += l.valid_count();
  return n;
}

namespace amr {

MultiResField build_hierarchy(const FieldF& fine, index_t block_size,
                              std::span<const double> fractions) {
  MRC_REQUIRE(!fractions.empty(), "need at least one level");
  const auto n_levels = static_cast<int>(fractions.size());
  const Dim3 fd = fine.dims();
  MRC_REQUIRE(block_size >= 2 && (block_size & (block_size - 1)) == 0,
              "block size must be a power of two");
  const index_t coarsest_ratio = index_t{1} << (n_levels - 1);
  MRC_REQUIRE(block_size % coarsest_ratio == 0,
              "block size must be divisible by the coarsest refinement ratio");
  MRC_REQUIRE(fd.nx % block_size == 0 && fd.ny % block_size == 0 && fd.nz % block_size == 0,
              "extents must be divisible by the block size");

  // Rank blocks by value range and assign to levels by rank quantile.
  const auto ranges = block_value_ranges(fine, block_size);
  const Dim3 nb = blocks_for(fd, block_size);
  std::vector<index_t> order(ranges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](index_t a, index_t b) { return ranges[static_cast<std::size_t>(a)] > ranges[static_cast<std::size_t>(b)]; });

  std::vector<int> level_of(ranges.size(), n_levels - 1);
  std::size_t cursor = 0;
  for (int l = 0; l < n_levels - 1; ++l) {
    const auto take = static_cast<std::size_t>(
        std::llround(fractions[static_cast<std::size_t>(l)] * static_cast<double>(ranges.size())));
    for (std::size_t i = 0; i < take && cursor < order.size(); ++i, ++cursor)
      level_of[static_cast<std::size_t>(order[cursor])] = l;
  }

  MultiResField mr;
  mr.fine_dims = fd;
  mr.block_size = block_size;
  mr.levels.resize(static_cast<std::size_t>(n_levels));

  for (int l = 0; l < n_levels; ++l) {
    auto& lev = mr.levels[static_cast<std::size_t>(l)];
    lev.ratio = index_t{1} << l;
    const Dim3 ld{fd.nx / lev.ratio, fd.ny / lev.ratio, fd.nz / lev.ratio};
    lev.data = (l == 0) ? fine : restrict_average(fine, lev.ratio);
    lev.mask = MaskField(ld, 0);
    const index_t lb = block_size / lev.ratio;  // block extent at this level
    for (index_t bz = 0; bz < nb.nz; ++bz)
      for (index_t by = 0; by < nb.ny; ++by)
        for (index_t bx = 0; bx < nb.nx; ++bx) {
          if (level_of[static_cast<std::size_t>(nb.index(bx, by, bz))] != l) continue;
          for (index_t k = 0; k < lb; ++k)
            for (index_t j = 0; j < lb; ++j)
              for (index_t i = 0; i < lb; ++i)
                lev.mask.at(bx * lb + i, by * lb + j, bz * lb + k) = 1;
        }
  }
  return mr;
}

}  // namespace amr

}  // namespace mrc
