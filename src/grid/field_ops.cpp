#include "grid/field_ops.h"

#include <algorithm>
#include <cmath>

namespace mrc {

FieldF restrict_average(const FieldF& fine, index_t factor) {
  MRC_REQUIRE(factor >= 1, "bad restriction factor");
  const Dim3 fd = fine.dims();
  MRC_REQUIRE(fd.nx % factor == 0 && fd.ny % factor == 0 && fd.nz % factor == 0,
              "extents not divisible by restriction factor");
  const Dim3 cd{fd.nx / factor, fd.ny / factor, fd.nz / factor};
  FieldF coarse(cd);
  const double inv = 1.0 / static_cast<double>(factor * factor * factor);
  for (index_t z = 0; z < cd.nz; ++z)
    for (index_t y = 0; y < cd.ny; ++y)
      for (index_t x = 0; x < cd.nx; ++x) {
        double sum = 0.0;
        for (index_t k = 0; k < factor; ++k)
          for (index_t j = 0; j < factor; ++j)
            for (index_t i = 0; i < factor; ++i)
              sum += fine.at(x * factor + i, y * factor + j, z * factor + k);
        coarse.at(x, y, z) = static_cast<float>(sum * inv);
      }
  return coarse;
}

FieldF restrict_half(const FieldF& fine) {
  MRC_REQUIRE(!fine.empty(), "restrict_half of empty field");
  const Dim3 fd = fine.dims();
  const Dim3 cd = blocks_for(fd, 2);
  FieldF coarse(cd);
  for (index_t z = 0; z < cd.nz; ++z) {
    const index_t z0 = 2 * z, z1 = std::min(z0 + 2, fd.nz);
    for (index_t y = 0; y < cd.ny; ++y) {
      const index_t y0 = 2 * y, y1 = std::min(y0 + 2, fd.ny);
      for (index_t x = 0; x < cd.nx; ++x) {
        const index_t x0 = 2 * x, x1 = std::min(x0 + 2, fd.nx);
        double sum = 0.0;
        for (index_t k = z0; k < z1; ++k)
          for (index_t j = y0; j < y1; ++j)
            for (index_t i = x0; i < x1; ++i) sum += fine.at(i, j, k);
        coarse.at(x, y, z) = static_cast<float>(
            sum / static_cast<double>((x1 - x0) * (y1 - y0) * (z1 - z0)));
      }
    }
  }
  return coarse;
}

FieldF prolong_nearest(const FieldF& coarse, Dim3 fine_dims) {
  const Dim3 cd = coarse.dims();
  FieldF fine(fine_dims);
  for (index_t z = 0; z < fine_dims.nz; ++z) {
    const index_t cz = std::min(z * cd.nz / fine_dims.nz, cd.nz - 1);
    for (index_t y = 0; y < fine_dims.ny; ++y) {
      const index_t cy = std::min(y * cd.ny / fine_dims.ny, cd.ny - 1);
      for (index_t x = 0; x < fine_dims.nx; ++x) {
        const index_t cx = std::min(x * cd.nx / fine_dims.nx, cd.nx - 1);
        fine.at(x, y, z) = coarse.at(cx, cy, cz);
      }
    }
  }
  return fine;
}

FieldF prolong_trilinear(const FieldF& coarse, Dim3 fine_dims) {
  const Dim3 cd = coarse.dims();
  FieldF fine(fine_dims);
  // Cell-centered alignment: fine cell center x_f maps to coarse coordinate
  // (x_f + 0.5) * (cd/fd) - 0.5.
  const double rx = static_cast<double>(cd.nx) / static_cast<double>(fine_dims.nx);
  const double ry = static_cast<double>(cd.ny) / static_cast<double>(fine_dims.ny);
  const double rz = static_cast<double>(cd.nz) / static_cast<double>(fine_dims.nz);
  auto clampi = [](index_t v, index_t lo, index_t hi) { return std::clamp(v, lo, hi); };
  for (index_t z = 0; z < fine_dims.nz; ++z) {
    const double gz = (static_cast<double>(z) + 0.5) * rz - 0.5;
    const auto z0 = clampi(static_cast<index_t>(std::floor(gz)), 0, cd.nz - 1);
    const auto z1 = clampi(z0 + 1, 0, cd.nz - 1);
    const double fz = std::clamp(gz - static_cast<double>(z0), 0.0, 1.0);
    for (index_t y = 0; y < fine_dims.ny; ++y) {
      const double gy = (static_cast<double>(y) + 0.5) * ry - 0.5;
      const auto y0 = clampi(static_cast<index_t>(std::floor(gy)), 0, cd.ny - 1);
      const auto y1 = clampi(y0 + 1, 0, cd.ny - 1);
      const double fy = std::clamp(gy - static_cast<double>(y0), 0.0, 1.0);
      for (index_t x = 0; x < fine_dims.nx; ++x) {
        const double gx = (static_cast<double>(x) + 0.5) * rx - 0.5;
        const auto x0 = clampi(static_cast<index_t>(std::floor(gx)), 0, cd.nx - 1);
        const auto x1 = clampi(x0 + 1, 0, cd.nx - 1);
        const double fx = std::clamp(gx - static_cast<double>(x0), 0.0, 1.0);
        const double c00 = coarse.at(x0, y0, z0) * (1 - fx) + coarse.at(x1, y0, z0) * fx;
        const double c10 = coarse.at(x0, y1, z0) * (1 - fx) + coarse.at(x1, y1, z0) * fx;
        const double c01 = coarse.at(x0, y0, z1) * (1 - fx) + coarse.at(x1, y0, z1) * fx;
        const double c11 = coarse.at(x0, y1, z1) * (1 - fx) + coarse.at(x1, y1, z1) * fx;
        const double c0 = c00 * (1 - fy) + c10 * fy;
        const double c1 = c01 * (1 - fy) + c11 * fy;
        fine.at(x, y, z) = static_cast<float>(c0 * (1 - fz) + c1 * fz);
      }
    }
  }
  return fine;
}

SupportBox prolong_support(Dim3 coarse_dims, Dim3 fine_dims, Coord3 fine_origin,
                           Dim3 fine_extent) {
  MRC_REQUIRE(fine_extent.nx >= 1 && fine_extent.ny >= 1 && fine_extent.nz >= 1,
              "prolong_support: empty fine window");
  MRC_REQUIRE(fine_origin.x >= 0 && fine_origin.y >= 0 && fine_origin.z >= 0 &&
                  fine_origin.x + fine_extent.nx <= fine_dims.nx &&
                  fine_origin.y + fine_extent.ny <= fine_dims.ny &&
                  fine_origin.z + fine_extent.nz <= fine_dims.nz,
              "prolong_support: fine window outside grid");
  // g(x) is monotone in x, so the first sample's i0 and the last sample's i1
  // bound the footprint along each axis.
  auto axis = [](index_t cd, index_t fd, index_t lo, index_t n, index_t& out_lo,
                 index_t& out_n) {
    const double r = static_cast<double>(cd) / static_cast<double>(fd);
    auto i0_of = [&](index_t x) {
      const double g = (static_cast<double>(x) + 0.5) * r - 0.5;
      return std::clamp(static_cast<index_t>(std::floor(g)), index_t{0}, cd - 1);
    };
    const index_t first = i0_of(lo);
    const index_t last = std::clamp(i0_of(lo + n - 1) + 1, index_t{0}, cd - 1);
    out_lo = first;
    out_n = last + 1 - first;
  };
  SupportBox s;
  axis(coarse_dims.nx, fine_dims.nx, fine_origin.x, fine_extent.nx, s.origin.x,
       s.extent.nx);
  axis(coarse_dims.ny, fine_dims.ny, fine_origin.y, fine_extent.ny, s.origin.y,
       s.extent.ny);
  axis(coarse_dims.nz, fine_dims.nz, fine_origin.z, fine_extent.nz, s.origin.z,
       s.extent.nz);
  return s;
}

FieldF prolong_trilinear_region(const FieldF& coarse_window, Coord3 window_origin,
                                Dim3 coarse_dims, Dim3 fine_dims, Coord3 fine_origin,
                                Dim3 fine_extent) {
  const SupportBox need =
      prolong_support(coarse_dims, fine_dims, fine_origin, fine_extent);
  const Dim3 wd = coarse_window.dims();
  MRC_REQUIRE(window_origin.x <= need.origin.x && window_origin.y <= need.origin.y &&
                  window_origin.z <= need.origin.z &&
                  window_origin.x + wd.nx >= need.origin.x + need.extent.nx &&
                  window_origin.y + wd.ny >= need.origin.y + need.extent.ny &&
                  window_origin.z + wd.nz >= need.origin.z + need.extent.nz,
              "prolong_trilinear_region: coarse window does not cover the support");
  FieldF fine(fine_extent);
  // Exactly prolong_trilinear's cell-centered arithmetic, evaluated at global
  // fine indices with global coarse dims — the per-sample double expressions
  // match term for term, so the float results are bit-identical to the same
  // window of the full prolongation.
  const double rx =
      static_cast<double>(coarse_dims.nx) / static_cast<double>(fine_dims.nx);
  const double ry =
      static_cast<double>(coarse_dims.ny) / static_cast<double>(fine_dims.ny);
  const double rz =
      static_cast<double>(coarse_dims.nz) / static_cast<double>(fine_dims.nz);
  auto clampi = [](index_t v, index_t lo, index_t hi) { return std::clamp(v, lo, hi); };
  for (index_t z = 0; z < fine_extent.nz; ++z) {
    const double gz = (static_cast<double>(fine_origin.z + z) + 0.5) * rz - 0.5;
    const auto z0 = clampi(static_cast<index_t>(std::floor(gz)), 0, coarse_dims.nz - 1);
    const auto z1 = clampi(z0 + 1, 0, coarse_dims.nz - 1);
    const double fz = std::clamp(gz - static_cast<double>(z0), 0.0, 1.0);
    for (index_t y = 0; y < fine_extent.ny; ++y) {
      const double gy = (static_cast<double>(fine_origin.y + y) + 0.5) * ry - 0.5;
      const auto y0 =
          clampi(static_cast<index_t>(std::floor(gy)), 0, coarse_dims.ny - 1);
      const auto y1 = clampi(y0 + 1, 0, coarse_dims.ny - 1);
      const double fy = std::clamp(gy - static_cast<double>(y0), 0.0, 1.0);
      for (index_t x = 0; x < fine_extent.nx; ++x) {
        const double gx = (static_cast<double>(fine_origin.x + x) + 0.5) * rx - 0.5;
        const auto x0 =
            clampi(static_cast<index_t>(std::floor(gx)), 0, coarse_dims.nx - 1);
        const auto x1 = clampi(x0 + 1, 0, coarse_dims.nx - 1);
        const double fx = std::clamp(gx - static_cast<double>(x0), 0.0, 1.0);
        auto c = [&](index_t cx, index_t cy, index_t cz) {
          return coarse_window.at(cx - window_origin.x, cy - window_origin.y,
                                  cz - window_origin.z);
        };
        const double c00 = c(x0, y0, z0) * (1 - fx) + c(x1, y0, z0) * fx;
        const double c10 = c(x0, y1, z0) * (1 - fx) + c(x1, y1, z0) * fx;
        const double c01 = c(x0, y0, z1) * (1 - fx) + c(x1, y0, z1) * fx;
        const double c11 = c(x0, y1, z1) * (1 - fx) + c(x1, y1, z1) * fx;
        const double c0 = c00 * (1 - fy) + c10 * fy;
        const double c1 = c01 * (1 - fy) + c11 * fy;
        fine.at(x, y, z) = static_cast<float>(c0 * (1 - fz) + c1 * fz);
      }
    }
  }
  return fine;
}

double prolong_error_slab(const FieldF& coarse, const FieldF& fine, index_t z0,
                          index_t z1) {
  const Dim3 cd = coarse.dims();
  const Dim3 fd = fine.dims();
  MRC_REQUIRE(z0 >= 0 && z0 <= z1 && z1 <= fd.nz, "bad prolongation slab");
  // Same cell-centered sampling as prolong_trilinear, but compared against
  // `fine` sample-by-sample instead of stored.
  const double rx = static_cast<double>(cd.nx) / static_cast<double>(fd.nx);
  const double ry = static_cast<double>(cd.ny) / static_cast<double>(fd.ny);
  const double rz = static_cast<double>(cd.nz) / static_cast<double>(fd.nz);
  auto clampi = [](index_t v, index_t lo, index_t hi) { return std::clamp(v, lo, hi); };
  double err = 0.0;
  for (index_t z = z0; z < z1; ++z) {
    const double gz = (static_cast<double>(z) + 0.5) * rz - 0.5;
    const auto cz0 = clampi(static_cast<index_t>(std::floor(gz)), 0, cd.nz - 1);
    const auto cz1 = clampi(cz0 + 1, 0, cd.nz - 1);
    const double fz = std::clamp(gz - static_cast<double>(cz0), 0.0, 1.0);
    for (index_t y = 0; y < fd.ny; ++y) {
      const double gy = (static_cast<double>(y) + 0.5) * ry - 0.5;
      const auto cy0 = clampi(static_cast<index_t>(std::floor(gy)), 0, cd.ny - 1);
      const auto cy1 = clampi(cy0 + 1, 0, cd.ny - 1);
      const double fy = std::clamp(gy - static_cast<double>(cy0), 0.0, 1.0);
      for (index_t x = 0; x < fd.nx; ++x) {
        const double gx = (static_cast<double>(x) + 0.5) * rx - 0.5;
        const auto cx0 = clampi(static_cast<index_t>(std::floor(gx)), 0, cd.nx - 1);
        const auto cx1 = clampi(cx0 + 1, 0, cd.nx - 1);
        const double fx = std::clamp(gx - static_cast<double>(cx0), 0.0, 1.0);
        const double c00 =
            coarse.at(cx0, cy0, cz0) * (1 - fx) + coarse.at(cx1, cy0, cz0) * fx;
        const double c10 =
            coarse.at(cx0, cy1, cz0) * (1 - fx) + coarse.at(cx1, cy1, cz0) * fx;
        const double c01 =
            coarse.at(cx0, cy0, cz1) * (1 - fx) + coarse.at(cx1, cy0, cz1) * fx;
        const double c11 =
            coarse.at(cx0, cy1, cz1) * (1 - fx) + coarse.at(cx1, cy1, cz1) * fx;
        const double c0 = c00 * (1 - fy) + c10 * fy;
        const double c1 = c01 * (1 - fy) + c11 * fy;
        const auto value = static_cast<float>(c0 * (1 - fz) + c1 * fz);
        err = std::max(err, std::abs(static_cast<double>(value) -
                                     static_cast<double>(fine.at(x, y, z))));
      }
    }
  }
  return err;
}

FieldF gradient_magnitude(const FieldF& f) {
  MRC_REQUIRE(!f.empty(), "gradient_magnitude of empty field");
  const Dim3 d = f.dims();
  FieldF g(d);
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x) {
        auto diff = [&](index_t lo_x, index_t lo_y, index_t lo_z, index_t hi_x,
                        index_t hi_y, index_t hi_z, index_t span) {
          return span == 0 ? 0.0
                           : (static_cast<double>(f.at(hi_x, hi_y, hi_z)) -
                              static_cast<double>(f.at(lo_x, lo_y, lo_z))) /
                                 static_cast<double>(span);
        };
        const index_t xm = std::max<index_t>(x - 1, 0), xp = std::min(x + 1, d.nx - 1);
        const index_t ym = std::max<index_t>(y - 1, 0), yp = std::min(y + 1, d.ny - 1);
        const index_t zm = std::max<index_t>(z - 1, 0), zp = std::min(z + 1, d.nz - 1);
        const double gx = diff(xm, y, z, xp, y, z, xp - xm);
        const double gy = diff(x, ym, z, x, yp, z, yp - ym);
        const double gz = diff(x, y, zm, x, y, zp, zp - zm);
        g.at(x, y, z) = static_cast<float>(std::sqrt(gx * gx + gy * gy + gz * gz));
      }
  return g;
}

FieldF extract_region(const FieldF& f, Coord3 origin, Dim3 extent) {
  MRC_REQUIRE(origin.x >= 0 && origin.y >= 0 && origin.z >= 0 &&
                  origin.x + extent.nx <= f.dims().nx &&
                  origin.y + extent.ny <= f.dims().ny &&
                  origin.z + extent.nz <= f.dims().nz,
              "region outside field");
  FieldF r(extent);
  for (index_t z = 0; z < extent.nz; ++z)
    for (index_t y = 0; y < extent.ny; ++y)
      for (index_t x = 0; x < extent.nx; ++x)
        r.at(x, y, z) = f.at(origin.x + x, origin.y + y, origin.z + z);
  return r;
}

void insert_region(FieldF& f, Coord3 origin, const FieldF& region) {
  const Dim3 e = region.dims();
  MRC_REQUIRE(origin.x >= 0 && origin.y >= 0 && origin.z >= 0 &&
                  origin.x + e.nx <= f.dims().nx && origin.y + e.ny <= f.dims().ny &&
                  origin.z + e.nz <= f.dims().nz,
              "region outside field");
  for (index_t z = 0; z < e.nz; ++z)
    for (index_t y = 0; y < e.ny; ++y)
      for (index_t x = 0; x < e.nx; ++x)
        f.at(origin.x + x, origin.y + y, origin.z + z) = region.at(x, y, z);
}

FieldF central_slice_z(const FieldF& f) {
  const Dim3 d = f.dims();
  return extract_region(f, {0, 0, d.nz / 2}, {d.nx, d.ny, 1});
}

std::vector<double> block_value_ranges(const FieldF& f, index_t block) {
  MRC_REQUIRE(block >= 1, "bad block size");
  const Dim3 d = f.dims();
  const Dim3 nb = blocks_for(d, block);
  std::vector<double> ranges(static_cast<std::size_t>(nb.size()));
  for (index_t bz = 0; bz < nb.nz; ++bz)
    for (index_t by = 0; by < nb.ny; ++by)
      for (index_t bx = 0; bx < nb.nx; ++bx) {
        float lo = f.at(bx * block, by * block, bz * block);
        float hi = lo;
        const index_t ex = std::min(block, d.nx - bx * block);
        const index_t ey = std::min(block, d.ny - by * block);
        const index_t ez = std::min(block, d.nz - bz * block);
        for (index_t k = 0; k < ez; ++k)
          for (index_t j = 0; j < ey; ++j)
            for (index_t i = 0; i < ex; ++i) {
              const float v = f.at(bx * block + i, by * block + j, bz * block + k);
              lo = std::min(lo, v);
              hi = std::max(hi, v);
            }
        ranges[static_cast<std::size_t>(nb.index(bx, by, bz))] =
            static_cast<double>(hi) - static_cast<double>(lo);
      }
  return ranges;
}

}  // namespace mrc
