#include "tiled/tiled.h"

#include <algorithm>
#include <cstdio>

#include "exec/thread_pool.h"
#include "obs/obs.h"

namespace mrc::tiled {

Coord3 tile_coord(const Dim3& grid, index_t t) {
  return {t % grid.nx, (t / grid.nx) % grid.ny, t / (grid.nx * grid.ny)};
}

namespace {

/// Stored extents of the brick at core origin `o`: core + overlap, clipped
/// to the domain.
Dim3 stored_extent(const Dim3& dims, const Coord3& o, index_t brick, index_t overlap) {
  return {std::min(brick + overlap, dims.nx - o.x),
          std::min(brick + overlap, dims.ny - o.y),
          std::min(brick + overlap, dims.nz - o.z)};
}

std::string magic_hex(std::uint32_t magic) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", magic);
  return buf;
}

/// Smallest possible index record: 8 single-byte varints + two f32s.
inline constexpr std::size_t kMinTileRecord = 16;

}  // namespace

FieldF decode_tile(const Index& idx, const Compressor& codec,
                   std::span<const std::byte> stream, std::size_t t) {
  MRC_REQUIRE(t < idx.tiles.size(), "decode_tile: tile id out of range");
  static obs::Counter& bricks =
      obs::Registry::global().counter("mrc.tiled.bricks_decoded");
  bricks.add(1);
  OBS_SPAN("tiled.brick_decode");
  const TileEntry& e = idx.tiles[t];
  const auto payload = stream.subspan(idx.payload_offset,
                                      static_cast<std::size_t>(idx.payload_bytes));
  const auto brick_stream =
      payload.subspan(static_cast<std::size_t>(e.offset), static_cast<std::size_t>(e.length));
  const FieldF b = codec.decompress(brick_stream);
  if (b.dims() != e.stored)
    throw CodecError("tiled: brick " + std::to_string(t) + " decodes to " +
                     b.dims().str() + ", index says " + e.stored.str());
  return b;
}

std::vector<index_t> tiles_in_region(const Index& idx, const Box& region) {
  const Dim3 ext = region.extent();
  MRC_REQUIRE(region.lo.x >= 0 && region.lo.y >= 0 && region.lo.z >= 0 &&
                  ext.nx > 0 && ext.ny > 0 && ext.nz > 0 && region.hi.x <= idx.dims.nx &&
                  region.hi.y <= idx.dims.ny && region.hi.z <= idx.dims.nz,
              "tiles_in_region: region must be a non-empty box inside " + idx.dims.str());
  const index_t tx0 = region.lo.x / idx.brick, tx1 = ceil_div(region.hi.x, idx.brick);
  const index_t ty0 = region.lo.y / idx.brick, ty1 = ceil_div(region.hi.y, idx.brick);
  const index_t tz0 = region.lo.z / idx.brick, tz1 = ceil_div(region.hi.z, idx.brick);
  std::vector<index_t> hit;
  hit.reserve(static_cast<std::size_t>((tx1 - tx0) * (ty1 - ty0) * (tz1 - tz0)));
  for (index_t tz = tz0; tz < tz1; ++tz)
    for (index_t ty = ty0; ty < ty1; ++ty)
      for (index_t tx = tx0; tx < tx1; ++tx)
        hit.push_back(tx + idx.grid.nx * (ty + idx.grid.ny * tz));
  return hit;
}

Dim3 Index::core_extent(std::size_t t) const {
  const Coord3 tc = tile_coord(grid, static_cast<index_t>(t));
  return {std::min(brick, dims.nx - tc.x * brick), std::min(brick, dims.ny - tc.y * brick),
          std::min(brick, dims.nz - tc.z * brick)};
}

Bytes compress(const FieldF& f, double abs_eb, const Config& cfg) {
  MRC_REQUIRE(!f.empty(), "tiled: empty field");
  MRC_REQUIRE(abs_eb > 0.0, "tiled: error bound must be positive");
  MRC_REQUIRE(cfg.brick >= 1, "tiled: brick edge must be >= 1");
  const Dim3 d = f.dims();
  const Dim3 grid = blocks_for(d, cfg.brick);
  const index_t n_tiles = grid.size();

  // The pool parallelises across bricks; each brick's codec runs serially.
  // One compressor instance serves every lane — they are stateless and
  // compress() is const.
  CodecTuning tuning = cfg.tuning;
  tuning.threads = 1;
  const auto codec = registry().make(cfg.codec, tuning);

  std::vector<Bytes> streams(static_cast<std::size_t>(n_tiles));
  std::vector<TileEntry> entries(static_cast<std::size_t>(n_tiles));

  exec::ThreadPool pool(cfg.threads);
  pool.parallel_for(n_tiles, [&](index_t t) {
    static obs::Counter& bricks =
        obs::Registry::global().counter("mrc.tiled.bricks_compressed");
    bricks.add(1);
    OBS_SPAN("tiled.brick_compress");
    const Coord3 tc = tile_coord(grid, t);
    const Coord3 o{tc.x * cfg.brick, tc.y * cfg.brick, tc.z * cfg.brick};
    const Dim3 s = stored_extent(d, o, cfg.brick, kOverlap);

    // Per-lane brick buffer: lent to a FieldF for the codec call and taken
    // back afterwards, so gathering N bricks costs one allocation per lane
    // instead of one per brick.
    thread_local std::vector<float> brick_scratch;
    brick_scratch.resize(static_cast<std::size_t>(s.size()));
    FieldF b(s, std::move(brick_scratch));
    for (index_t z = 0; z < s.nz; ++z)
      for (index_t y = 0; y < s.ny; ++y)
        std::copy_n(&f.at(o.x, o.y + y, o.z + z), s.nx, &b.at(0, y, z));

    TileEntry& e = entries[static_cast<std::size_t>(t)];
    e.origin = o;
    e.stored = s;
    const auto [lo, hi] = b.min_max();
    e.vmin = lo;
    e.vmax = hi;
    streams[static_cast<std::size_t>(t)] = codec->compress(b, abs_eb);
    brick_scratch = b.release();
  });

  std::uint64_t payload_bytes = 0;
  for (index_t t = 0; t < n_tiles; ++t) {
    auto& e = entries[static_cast<std::size_t>(t)];
    e.offset = payload_bytes;
    e.length = streams[static_cast<std::size_t>(t)].size();
    payload_bytes += e.length;
  }

  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, kTiledMagic, d, abs_eb);
  w.put_varint(static_cast<std::uint64_t>(cfg.brick));
  w.put_varint(static_cast<std::uint64_t>(kOverlap));
  w.put(registry().find(cfg.codec)->magic);
  w.put_varint(static_cast<std::uint64_t>(grid.nx));
  w.put_varint(static_cast<std::uint64_t>(grid.ny));
  w.put_varint(static_cast<std::uint64_t>(grid.nz));
  w.put_varint(payload_bytes);
  for (const TileEntry& e : entries) {
    w.put_varint(e.offset);
    w.put_varint(e.length);
    w.put_varint(static_cast<std::uint64_t>(e.origin.x));
    w.put_varint(static_cast<std::uint64_t>(e.origin.y));
    w.put_varint(static_cast<std::uint64_t>(e.origin.z));
    w.put_varint(static_cast<std::uint64_t>(e.stored.nx));
    w.put_varint(static_cast<std::uint64_t>(e.stored.ny));
    w.put_varint(static_cast<std::uint64_t>(e.stored.nz));
    w.put(e.vmin);
    w.put(e.vmax);
  }
  for (const Bytes& s : streams) w.put_bytes(s);
  return out;
}

namespace {

/// Shared preamble parse; leaves `r` positioned at the first tile record.
Index parse_geometry(ByteReader& r) {
  const auto header = detail::read_header(r, kTiledMagic, "tiled");

  Index idx;
  idx.dims = header.dims;
  idx.eb = header.eb;
  idx.brick = static_cast<index_t>(r.get_varint());
  idx.overlap = static_cast<index_t>(r.get_varint());
  // Brick edges beyond the domain are legal (single-tile stream); the cap
  // only guards the brick+overlap arithmetic against overflow.
  if (idx.brick < 1 || idx.brick > (index_t{1} << 40))
    throw CodecError("tiled: bad brick edge");
  if (idx.overlap < 0 || idx.overlap > idx.brick)
    throw CodecError("tiled: bad overlap");
  idx.codec_magic = r.get<std::uint32_t>();
  const auto* entry = registry().find_magic(idx.codec_magic);
  idx.codec = entry != nullptr ? entry->name : magic_hex(idx.codec_magic);

  idx.grid.nx = static_cast<index_t>(r.get_varint());
  idx.grid.ny = static_cast<index_t>(r.get_varint());
  idx.grid.nz = static_cast<index_t>(r.get_varint());
  if (idx.grid != blocks_for(idx.dims, idx.brick))
    throw CodecError("tiled: tile grid does not match extents / brick edge");
  idx.payload_bytes = r.get_varint();
  return idx;
}

}  // namespace

Index read_geometry(std::span<const std::byte> stream) {
  ByteReader r(stream);
  return parse_geometry(r);
}

Index read_index(std::span<const std::byte> stream) {
  ByteReader r(stream);
  Index idx = parse_geometry(r);

  const index_t n_tiles = idx.grid.size();
  // A hostile stream can claim a consistent but astronomically tiled grid;
  // the records must actually fit in the bytes we hold before any
  // allocation is sized from the claim.
  if (static_cast<std::uint64_t>(n_tiles) > r.remaining() / kMinTileRecord)
    throw CodecError("tiled: tile count exceeds stream size");
  idx.tiles.resize(static_cast<std::size_t>(n_tiles));
  for (index_t t = 0; t < n_tiles; ++t) {
    TileEntry& e = idx.tiles[static_cast<std::size_t>(t)];
    e.offset = r.get_varint();
    e.length = r.get_varint();
    e.origin.x = static_cast<index_t>(r.get_varint());
    e.origin.y = static_cast<index_t>(r.get_varint());
    e.origin.z = static_cast<index_t>(r.get_varint());
    e.stored.nx = static_cast<index_t>(r.get_varint());
    e.stored.ny = static_cast<index_t>(r.get_varint());
    e.stored.nz = static_cast<index_t>(r.get_varint());
    e.vmin = r.get<float>();
    e.vmax = r.get<float>();

    // Each tile's core is pinned to the brick lattice and its stored extents
    // are a pure function of (dims, brick, overlap) — anything else means a
    // corrupt index (misplaced or overlapping bricks).
    const Coord3 tc = tile_coord(idx.grid, t);
    const Coord3 expect{tc.x * idx.brick, tc.y * idx.brick, tc.z * idx.brick};
    if (e.origin != expect)
      throw CodecError("tiled: tile " + std::to_string(t) + " origin off-lattice");
    if (e.stored != stored_extent(idx.dims, e.origin, idx.brick, idx.overlap))
      throw CodecError("tiled: tile " + std::to_string(t) + " stored extents corrupt");
    if (e.length == 0 || e.offset > idx.payload_bytes ||
        e.length > idx.payload_bytes - e.offset)
      throw CodecError("tiled: tile " + std::to_string(t) + " offset/length out of range");
  }

  idx.payload_offset = r.position();
  if (r.remaining() < idx.payload_bytes) throw CodecError("tiled: payload truncated");
  return idx;
}

RegionRead read_region(std::span<const std::byte> stream, const Box& region, int threads) {
  const Index idx = read_index(stream);
  const std::vector<index_t> hit = tiles_in_region(idx, region);

  RegionRead out;
  out.data = FieldF(region.extent());
  out.tiles_total = idx.tiles.size();
  out.tiles_decoded = hit.size();

  const auto codec = registry().make_for_magic(idx.codec_magic);
  exec::ThreadPool pool(threads);
  pool.parallel_for(static_cast<index_t>(hit.size()), [&](index_t i) {
    const auto t = static_cast<std::size_t>(hit[static_cast<std::size_t>(i)]);
    const FieldF b = decode_tile(idx, *codec, stream, t);
    const TileEntry& e = idx.tiles[t];
    const Dim3 core = idx.core_extent(t);
    // Copy core ∩ region; every output sample comes from its owning brick's
    // core, so the result is bit-identical to a full decompress.
    const index_t x0 = std::max(e.origin.x, region.lo.x);
    const index_t x1 = std::min(e.origin.x + core.nx, region.hi.x);
    const index_t y0 = std::max(e.origin.y, region.lo.y);
    const index_t y1 = std::min(e.origin.y + core.ny, region.hi.y);
    const index_t z0 = std::max(e.origin.z, region.lo.z);
    const index_t z1 = std::min(e.origin.z + core.nz, region.hi.z);
    for (index_t z = z0; z < z1; ++z)
      for (index_t y = y0; y < y1; ++y)
        std::copy_n(&b.at(x0 - e.origin.x, y - e.origin.y, z - e.origin.z), x1 - x0,
                    &out.data.at(x0 - region.lo.x, y - region.lo.y, z - region.lo.z));
  });
  return out;
}

FieldF decompress(std::span<const std::byte> stream, int threads) {
  const StreamHeader h = peek_header(stream);
  return read_region(stream, full_box(h.dims), threads).data;
}

}  // namespace mrc::tiled
