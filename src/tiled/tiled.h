#pragma once

// Brick-tiled container: a field split into fixed-edge bricks (default 64^3,
// +1-sample overlap on the high faces so bricks render seam-free on their
// own), every brick compressed independently through any registered codec on
// the exec thread pool, plus a per-tile index enabling parallel decode and
// random-access region reads that touch only intersecting bricks.
//
// Stream layout (container header v3 under kTiledMagic):
//   shared container header      field extents + absolute error bound
//   varint  brick                core brick edge
//   varint  overlap              extra samples on each high face (1)
//   u32     inner codec magic    registry id every brick was encoded with
//   varint  ntx, nty, ntz        tile grid (must equal blocks_for(dims, brick))
//   varint  payload_bytes        total size of the brick payload section
//   per tile (x fastest):        varint offset, varint length,
//                                varint x0,y0,z0 (core origin),
//                                varint sx,sy,sz (stored extents, overlap incl.),
//                                f32 vmin, f32 vmax
//   payload                      concatenated self-describing brick streams
//
// The index is fully validated on read (grid shape, core placement, stored
// extents, offset/length bounds) so corrupt or hostile streams fail with a
// clean CodecError before any brick is decoded. Each stored sample belongs
// to exactly one brick's core; overlap samples are decode redundancy only,
// which is what makes read_region bit-identical to a full decompress.

#include <span>
#include <string>
#include <vector>

#include "compressors/registry.h"
#include "grid/field.h"

namespace mrc::tiled {

/// Container-header stream id of a tiled stream.
inline constexpr std::uint32_t kTiledMagic = 0x5443'524d;  // "MRCT"

/// Samples of overlap written past each brick's high faces (domain edge
/// permitting) — one layer is enough to interpolate/render across a seam.
inline constexpr index_t kOverlap = 1;

inline constexpr index_t kDefaultBrick = 64;

/// Half-open axis-aligned box [lo, hi) in sample coordinates.
struct Box {
  Coord3 lo;
  Coord3 hi;
  [[nodiscard]] constexpr Dim3 extent() const {
    return {hi.x - lo.x, hi.y - lo.y, hi.z - lo.z};
  }
  constexpr bool operator==(const Box&) const = default;
};

/// Whole-domain box of a field with extents `d`.
[[nodiscard]] constexpr Box full_box(const Dim3& d) {
  return {{0, 0, 0}, {d.nx, d.ny, d.nz}};
}

struct Config {
  std::string codec = "interp";  ///< any registry name, applied per brick
  CodecTuning tuning;            ///< per-brick codec tuning (threads forced to 1)
  index_t brick = kDefaultBrick; ///< core brick edge, >= 1
  int threads = 1;               ///< pool lanes; 0 = hardware
};

/// One record of the tile index.
struct TileEntry {
  std::uint64_t offset = 0;  ///< within the payload section
  std::uint64_t length = 0;  ///< compressed brick stream bytes
  Coord3 origin;             ///< core origin in the field
  Dim3 stored;               ///< stored extents (core + overlap, clipped)
  float vmin = 0.0f;         ///< value range over the stored samples
  float vmax = 0.0f;
};

/// Parsed + validated index of a tiled stream.
struct Index {
  Dim3 dims;
  double eb = 0.0;
  index_t brick = 0;
  index_t overlap = 0;
  std::uint32_t codec_magic = 0;
  std::string codec;  ///< registry name, or hex magic if unregistered
  Dim3 grid;          ///< tile counts per axis
  std::size_t payload_offset = 0;  ///< absolute offset of the payload section
  std::uint64_t payload_bytes = 0;
  std::vector<TileEntry> tiles;  ///< grid.size() entries, x fastest

  /// Core extents of tile `t` (stored minus overlap clipping).
  [[nodiscard]] Dim3 core_extent(std::size_t t) const;
};

/// Splits `f` into bricks and compresses every brick independently on a
/// thread pool of cfg.threads lanes. Deterministic: the stream is
/// byte-identical for any thread count.
[[nodiscard]] Bytes compress(const FieldF& f, double abs_eb, const Config& cfg = {});

/// Parses and validates just the fixed-size preamble — dims, brick,
/// overlap, codec, grid — in O(1), leaving `tiles` empty. This is what
/// api::info uses: stream identification never pays the O(tiles) record
/// walk.
[[nodiscard]] Index read_geometry(std::span<const std::byte> stream);

/// Parses and validates header + full tile index without decoding any
/// brick. Throws CodecError on malformed streams.
[[nodiscard]] Index read_index(std::span<const std::byte> stream);

/// Decodes every brick (in parallel) and reassembles the full field from
/// brick cores. threads = 0 means hardware.
[[nodiscard]] FieldF decompress(std::span<const std::byte> stream, int threads = 1);

/// Result of a region read, with the decode counters the random-access
/// guarantee is tested against.
struct RegionRead {
  FieldF data;                    ///< extents = region.extent()
  std::size_t tiles_decoded = 0;  ///< bricks actually decompressed
  std::size_t tiles_total = 0;    ///< bricks in the stream
};

/// Decodes only the bricks intersecting `region` and returns that region,
/// bit-identical to the same window of a full decompress(). Throws
/// ContractError if the region is empty or outside the field.
[[nodiscard]] RegionRead read_region(std::span<const std::byte> stream, const Box& region,
                                     int threads = 1);

/// Decodes the single brick `t` of a parsed stream and validates its extents
/// against the index record. `codec` must match idx.codec_magic (one
/// stateless instance can serve any number of threads). This is the unit the
/// serve-layer brick cache is built on.
[[nodiscard]] FieldF decode_tile(const Index& idx, const Compressor& codec,
                                 std::span<const std::byte> stream, std::size_t t);

/// Tile ids of the bricks whose cores intersect `region` (x fastest), i.e.
/// exactly the bricks a region read must decode.
[[nodiscard]] std::vector<index_t> tiles_in_region(const Index& idx, const Box& region);

/// Tile-grid coordinate of tile id `t` (ids are x fastest).
[[nodiscard]] Coord3 tile_coord(const Dim3& grid, index_t t);

}  // namespace mrc::tiled
