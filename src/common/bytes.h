#pragma once

// Bounds-checked serialization helpers for codec headers and payloads.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/require.h"

namespace mrc {

using Bytes = std::vector<std::byte>;

/// Appends POD values / byte ranges to a growing buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    // resize + memcpy rather than insert(end, p, p + sizeof(T)): GCC 12's
    // -Wstringop-overflow misjudges the insert reallocation path at -O3.
    const std::size_t n = out_.size();
    out_.resize(n + sizeof(T));
    std::memcpy(out_.data() + n, &v, sizeof(T));
  }

  void put_bytes(std::span<const std::byte> b) { out_.insert(out_.end(), b.begin(), b.end()); }

  /// Little-endian base-128 varint for non-negative sizes.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<std::byte>(v));
  }

  /// Length-prefixed nested buffer.
  void put_blob(std::span<const std::byte> b) {
    put_varint(b.size());
    put_bytes(b);
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  Bytes& out_;
};

/// Reads POD values / byte ranges with explicit bounds checking; throws
/// CodecError on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> in) : in_(in) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    check(sizeof(T));
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::span<const std::byte> get_bytes(std::size_t n) {
    check(n);
    auto s = in_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      check(1);
      const auto b = static_cast<std::uint8_t>(in_[pos_++]);
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) throw CodecError("varint overflow");
    }
    return v;
  }

  [[nodiscard]] std::span<const std::byte> get_blob() {
    const auto n = get_varint();
    return get_bytes(static_cast<std::size_t>(n));
  }

  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == in_.size(); }

 private:
  void check(std::size_t n) const {
    if (pos_ + n > in_.size()) throw CodecError("byte stream truncated");
  }

  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

}  // namespace mrc
