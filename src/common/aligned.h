#pragma once

// 64-byte-aligned std::vector for codec scratch buffers.
//
// The SIMD predict/quantize kernels ("compressors/simd_kernels.h") issue
// aligned vector loads/stores over the thread-local `codes` / `outliers`
// lanes, and the sharded entropy decoder writes disjoint shard slices of one
// buffer from multiple threads. A 64-byte base alignment guarantees (a) no
// vector access straddles a cache line and (b) shard boundaries rounded to
// the vector width never false-share a line between lanes. std::allocator
// only guarantees alignof(T), so the scratch vectors use this allocator
// instead; AlignedVec<T> is drop-in for std::vector<T> everywhere the codecs
// used one (ScratchGuard / trim_scratch are templates and keep working).

#include <cstddef>
#include <new>
#include <vector>

namespace mrc {

/// One x86 cache line; also the widest vector (AVX-512) register width, so
/// it stays valid if the kernels ever grow a 512-bit path.
inline constexpr std::size_t kScratchAlign = 64;

template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kScratchAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kScratchAlign});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector whose data() is always 64-byte aligned.
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace mrc
