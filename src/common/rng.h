#pragma once

// Deterministic, seedable RNG for synthetic data generation and sampling.
// xoshiro256** with splitmix64 seeding — fast and reproducible across
// platforms (std::mt19937 distributions are not bit-stable across stdlibs).

#include <cmath>
#include <cstdint>
#include <numbers>

namespace mrc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& s : s_) {
      // splitmix64
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Standard normal via Box–Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    const double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace mrc
