#pragma once

// Wall-clock timer for the in-situ output-time and overhead experiments.

#include <chrono>

namespace mrc {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mrc
