#include "common/config.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace mrc {

int scale_percent() {
  static const int cached = [] {
    if (const char* full = std::getenv("MRC_FULL"); full && std::string(full) == "1") return 100;
    if (const char* s = std::getenv("MRC_SCALE")) {
      const int v = std::atoi(s);
      if (v >= 5 && v <= 400) return v;
    }
    return 50;
  }();
  return cached;
}

index_t scaled_extent(index_t paper_extent) {
  const index_t v = std::max<index_t>(paper_extent * scale_percent() / 100, 16);
  // Snap to the nearest power of two: the spectral generators and the
  // power-spectrum analysis require pow2 extents, and AMR block sizes
  // divide them evenly.
  index_t p = 16;
  while (p * 2 <= v) p *= 2;
  return (v - p < 2 * p - v) ? p : 2 * p;
}

Dim3 scaled(Dim3 paper_dims) {
  return Dim3{scaled_extent(paper_dims.nx), scaled_extent(paper_dims.ny),
              scaled_extent(paper_dims.nz)};
}

}  // namespace mrc
