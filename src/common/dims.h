#pragma once

// 3-D extents and index arithmetic. The whole library uses row-major layout
// with x fastest: linear index = x + nx * (y + ny * z).

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/require.h"

namespace mrc {

using index_t = std::int64_t;

/// Extents of a 3-D grid. Degenerate grids (nz == 1, or ny == nz == 1) model
/// 2-D and 1-D data without a separate code path.
struct Dim3 {
  index_t nx = 0;
  index_t ny = 0;
  index_t nz = 0;

  constexpr Dim3() = default;
  constexpr Dim3(index_t x, index_t y, index_t z) : nx(x), ny(y), nz(z) {}

  [[nodiscard]] constexpr index_t size() const { return nx * ny * nz; }
  [[nodiscard]] constexpr bool empty() const { return size() == 0; }

  [[nodiscard]] constexpr index_t index(index_t x, index_t y, index_t z) const {
    return x + nx * (y + ny * z);
  }

  [[nodiscard]] constexpr bool contains(index_t x, index_t y, index_t z) const {
    return x >= 0 && x < nx && y >= 0 && y < ny && z >= 0 && z < nz;
  }

  [[nodiscard]] constexpr index_t operator[](int axis) const {
    return axis == 0 ? nx : (axis == 1 ? ny : nz);
  }

  [[nodiscard]] constexpr index_t max_extent() const {
    index_t m = nx > ny ? nx : ny;
    return m > nz ? m : nz;
  }

  constexpr bool operator==(const Dim3&) const = default;

  [[nodiscard]] std::string str() const {
    return std::to_string(nx) + "x" + std::to_string(ny) + "x" + std::to_string(nz);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Dim3& d) { return os << d.str(); }

/// Integer coordinate of a cell/block.
struct Coord3 {
  index_t x = 0;
  index_t y = 0;
  index_t z = 0;
  constexpr bool operator==(const Coord3&) const = default;
};

/// Ceil-division, used throughout block partitioning.
[[nodiscard]] constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

/// Number of b-sized blocks needed to tile d along each axis.
[[nodiscard]] constexpr Dim3 blocks_for(const Dim3& d, index_t b) {
  return Dim3{ceil_div(d.nx, b), ceil_div(d.ny, b), ceil_div(d.nz, b)};
}

}  // namespace mrc
