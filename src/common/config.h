#pragma once

// Environment-driven scaling of the benchmark workloads.
//
// The paper runs 512^3-class grids on 128 Bridges-2 cores; this environment
// is much smaller, so benches default to scaled-down grids with identical
// structure. Set MRC_FULL=1 to run paper-scale sizes, or MRC_SCALE=<percent>
// for anything in between (100 = paper scale, 50 = half per axis, default).

#include "common/dims.h"

namespace mrc {

/// Percentage applied per-axis to paper-scale extents (default 50).
[[nodiscard]] int scale_percent();

/// Scales a paper-scale extent and snaps to the nearest power of two
/// (>= 16), which the spectral generators and FFT analysis require.
[[nodiscard]] index_t scaled_extent(index_t paper_extent);

/// Scales all three axes.
[[nodiscard]] Dim3 scaled(Dim3 paper_dims);

}  // namespace mrc
