#pragma once

// Thin OpenMP shims so call sites stay readable and the library still builds
// without OpenMP — in which case width queries delegate to the exec thread
// pool (the library's own scheduling primitive), so serial builds still
// scale across the hardware instead of hard-returning 1.

#include <cstdint>

#if defined(MRC_HAVE_OPENMP)
#include <omp.h>
#else
namespace mrc::exec {
int hardware_threads();  // exec/thread_pool.h, sans its <thread>/<future> weight
}
#endif

namespace mrc {

[[nodiscard]] inline int max_threads() {
#if defined(MRC_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return exec::hardware_threads();
#endif
}

[[nodiscard]] inline int thread_id() {
#if defined(MRC_HAVE_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

}  // namespace mrc
