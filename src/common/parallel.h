#pragma once

// Thin OpenMP shims so call sites stay readable and the library still builds
// (serially) without OpenMP.

#include <cstdint>

#if defined(MRC_HAVE_OPENMP)
#include <omp.h>
#endif

namespace mrc {

[[nodiscard]] inline int max_threads() {
#if defined(MRC_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

[[nodiscard]] inline int thread_id() {
#if defined(MRC_HAVE_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

}  // namespace mrc
