#pragma once

// Lightweight precondition / invariant checking used across the library.
// Violations throw (never abort) so callers and tests can observe them;
// see C++ Core Guidelines I.6/E.x — interfaces state and check expectations.

#include <stdexcept>
#include <string>

namespace mrc {

/// Thrown when a documented precondition or internal invariant is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an encoded stream is malformed or truncated.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* cond, const char* file, int line,
                                        const std::string& msg) {
  throw ContractError(std::string("requirement failed: ") + cond + " at " + file + ":" +
                      std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace mrc

#define MRC_REQUIRE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) ::mrc::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
