#pragma once

// Probabilistic marching cubes (Pöthkow et al. 2011; Athawale et al. 2021),
// applied to decompressed data as in paper §III-C / Fig. 14: each voxel's
// value is a random variable v_i + N(mean, sigma^2); a cell crosses the
// isosurface unless all eight corners fall on the same side, so
//   P(cross) = 1 - P(all above) - P(all below).
// With independent per-voxel Gaussians both terms are products of normal
// CDFs (closed form). A Monte-Carlo estimator is provided for validation
// and for correlated extensions.

#include "grid/field.h"
#include "uncertainty/error_model.h"

namespace mrc::uq {

/// Per-cell crossing probability; result extents are max(n-1, 1) per axis.
[[nodiscard]] FieldD crossing_probability(const FieldF& dec, double isovalue,
                                          const ErrorModel& model);

/// Monte-Carlo estimator drawing `n_draws` joint realizations per cell.
[[nodiscard]] FieldD crossing_probability_mc(const FieldF& dec, double isovalue,
                                             const ErrorModel& model, int n_draws,
                                             std::uint64_t seed);

/// Deterministic crossing mask of a field (no uncertainty).
[[nodiscard]] Field3D<std::uint8_t> crossing_cells(const FieldF& f, double isovalue);

/// Fig. 14 bookkeeping: isosurface cells lost to compression and how many of
/// them the probability field flags (p >= p_threshold).
struct UncertaintyStats {
  index_t cells_crossed_original = 0;
  index_t cells_crossed_decompressed = 0;
  index_t cells_missed = 0;     ///< crossed in original, not in decompressed
  index_t cells_spurious = 0;   ///< crossed in decompressed, not in original
  index_t missed_recovered = 0; ///< missed cells with p >= threshold
  [[nodiscard]] double recovery_rate() const {
    return cells_missed == 0
               ? 1.0
               : static_cast<double>(missed_recovered) / static_cast<double>(cells_missed);
  }
};

[[nodiscard]] UncertaintyStats compare_isosurfaces(const FieldF& original,
                                                   const FieldF& dec, const FieldD& prob,
                                                   double isovalue, double p_threshold);

}  // namespace mrc::uq
