#include "uncertainty/probabilistic_mc.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace mrc::uq {

namespace {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

Dim3 cell_dims(Dim3 d) {
  return {std::max<index_t>(d.nx - 1, 1), std::max<index_t>(d.ny - 1, 1),
          std::max<index_t>(d.nz - 1, 1)};
}

/// Collects the up-to-8 corner values of cell (x, y, z).
int cell_corners(const FieldF& f, index_t x, index_t y, index_t z, double* out) {
  const Dim3 d = f.dims();
  int n = 0;
  for (index_t k = 0; k < 2; ++k)
    for (index_t j = 0; j < 2; ++j)
      for (index_t i = 0; i < 2; ++i) {
        const index_t xx = std::min(x + i, d.nx - 1);
        const index_t yy = std::min(y + j, d.ny - 1);
        const index_t zz = std::min(z + k, d.nz - 1);
        out[n++] = f.at(xx, yy, zz);
      }
  return n;
}

}  // namespace

FieldD crossing_probability(const FieldF& dec, double isovalue, const ErrorModel& model) {
  const Dim3 cd = cell_dims(dec.dims());
  FieldD prob(cd);
  const double sigma = std::max(model.sigma, 1e-300);

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < cd.nz; ++z)
    for (index_t y = 0; y < cd.ny; ++y)
      for (index_t x = 0; x < cd.nx; ++x) {
        double corners[8];
        cell_corners(dec, x, y, z, corners);
        // Per-voxel value ~ N(dec + mean, sigma^2): the model's mean is the
        // expected (orig - dec) bias.
        double p_below = 1.0, p_above = 1.0;
        for (double c : corners) {
          const double mu = c + model.mean;
          const double pb = normal_cdf((isovalue - mu) / sigma);
          p_below *= pb;
          p_above *= 1.0 - pb;
        }
        prob.at(x, y, z) = std::clamp(1.0 - p_below - p_above, 0.0, 1.0);
      }
  return prob;
}

FieldD crossing_probability_mc(const FieldF& dec, double isovalue, const ErrorModel& model,
                               int n_draws, std::uint64_t seed) {
  MRC_REQUIRE(n_draws >= 1, "need at least one draw");
  const Dim3 cd = cell_dims(dec.dims());
  FieldD prob(cd);

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < cd.nz; ++z) {
    Rng rng(seed ^ (0x9e37u + static_cast<std::uint64_t>(z) * 0x1000193u));
    for (index_t y = 0; y < cd.ny; ++y)
      for (index_t x = 0; x < cd.nx; ++x) {
        double corners[8];
        cell_corners(dec, x, y, z, corners);
        int crossings = 0;
        for (int t = 0; t < n_draws; ++t) {
          bool any_above = false, any_below = false;
          for (double c : corners) {
            const double v = c + rng.normal(model.mean, model.sigma);
            (v >= isovalue ? any_above : any_below) = true;
          }
          crossings += (any_above && any_below) ? 1 : 0;
        }
        prob.at(x, y, z) = static_cast<double>(crossings) / static_cast<double>(n_draws);
      }
  }
  return prob;
}

Field3D<std::uint8_t> crossing_cells(const FieldF& f, double isovalue) {
  const Dim3 cd = cell_dims(f.dims());
  Field3D<std::uint8_t> cells(cd, 0);
  for (index_t z = 0; z < cd.nz; ++z)
    for (index_t y = 0; y < cd.ny; ++y)
      for (index_t x = 0; x < cd.nx; ++x) {
        double corners[8];
        cell_corners(f, x, y, z, corners);
        bool any_above = false, any_below = false;
        for (double c : corners) (c >= isovalue ? any_above : any_below) = true;
        cells.at(x, y, z) = (any_above && any_below) ? 1 : 0;
      }
  return cells;
}

UncertaintyStats compare_isosurfaces(const FieldF& original, const FieldF& dec,
                                     const FieldD& prob, double isovalue,
                                     double p_threshold) {
  MRC_REQUIRE(original.dims() == dec.dims(), "dimension mismatch");
  const auto co = crossing_cells(original, isovalue);
  const auto cdx = crossing_cells(dec, isovalue);
  MRC_REQUIRE(co.dims() == prob.dims(), "probability field dims mismatch");

  UncertaintyStats s;
  for (index_t i = 0; i < co.size(); ++i) {
    const bool in_orig = co[i] != 0;
    const bool in_dec = cdx[i] != 0;
    s.cells_crossed_original += in_orig ? 1 : 0;
    s.cells_crossed_decompressed += in_dec ? 1 : 0;
    if (in_orig && !in_dec) {
      ++s.cells_missed;
      if (prob[i] >= p_threshold) ++s.missed_recovered;
    } else if (!in_orig && in_dec) {
      ++s.cells_spurious;
    }
  }
  return s;
}

}  // namespace mrc::uq
