#include "uncertainty/marching_cubes.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace mrc::uq {

namespace {

// Corner numbering (Bourke convention): corner c at offsets
//   0:(0,0,0) 1:(1,0,0) 2:(1,1,0) 3:(0,1,0) 4:(0,0,1) 5:(1,0,1) 6:(1,1,1) 7:(0,1,1)
constexpr int kCornerOffset[8][3] = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
                                     {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};

// Edge e connects corners kEdgeCorners[e][0..1].
constexpr int kEdgeCorners[12][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6},
                                     {6, 7}, {7, 4}, {0, 4}, {1, 5}, {2, 6}, {3, 7}};

struct EdgeKey {
  std::uint64_t a, b;
  bool operator==(const EdgeKey&) const = default;
};
struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& k) const {
    return std::hash<std::uint64_t>()(k.a * 0x9e3779b97f4a7c15ull ^ k.b);
  }
};

}  // namespace

TriMesh marching_cubes(const FieldF& f, double isovalue) {
  const Dim3 d = f.dims();
  TriMesh mesh;
  if (d.nx < 2 || d.ny < 2 || d.nz < 2) return mesh;

  // Deduplicate vertices along shared edges so meshes are watertight.
  std::unordered_map<EdgeKey, std::uint32_t, EdgeKeyHash> edge_vertex;

  auto point_id = [&](index_t x, index_t y, index_t z) {
    return static_cast<std::uint64_t>(d.index(x, y, z));
  };

  auto edge_vertex_index = [&](index_t x, index_t y, index_t z, int edge) {
    const int* c0 = kCornerOffset[kEdgeCorners[edge][0]];
    const int* c1 = kCornerOffset[kEdgeCorners[edge][1]];
    const index_t x0 = x + c0[0], y0 = y + c0[1], z0 = z + c0[2];
    const index_t x1 = x + c1[0], y1 = y + c1[1], z1 = z + c1[2];
    EdgeKey key{point_id(x0, y0, z0), point_id(x1, y1, z1)};
    if (key.a > key.b) std::swap(key.a, key.b);
    if (const auto it = edge_vertex.find(key); it != edge_vertex.end()) return it->second;

    const double v0 = f.at(x0, y0, z0);
    const double v1 = f.at(x1, y1, z1);
    double t = 0.5;
    if (std::abs(v1 - v0) > 1e-300) t = (isovalue - v0) / (v1 - v0);
    t = std::clamp(t, 0.0, 1.0);
    const std::array<float, 3> p{
        static_cast<float>(x0 + t * (x1 - x0)),
        static_cast<float>(y0 + t * (y1 - y0)),
        static_cast<float>(z0 + t * (z1 - z0)),
    };
    const auto id = static_cast<std::uint32_t>(mesh.vertices.size());
    mesh.vertices.push_back(p);
    edge_vertex.emplace(key, id);
    return id;
  };

  for (index_t z = 0; z < d.nz - 1; ++z)
    for (index_t y = 0; y < d.ny - 1; ++y)
      for (index_t x = 0; x < d.nx - 1; ++x) {
        unsigned cube = 0;
        for (int c = 0; c < 8; ++c) {
          const double v = f.at(x + kCornerOffset[c][0], y + kCornerOffset[c][1],
                                z + kCornerOffset[c][2]);
          if (v < isovalue) cube |= 1u << c;
        }
        if (tables::kEdgeTable[cube] == 0) continue;
        const auto& tri = tables::kTriTable[cube];
        for (int t = 0; tri[static_cast<std::size_t>(t)] != -1; t += 3) {
          const auto i0 = edge_vertex_index(x, y, z, tri[static_cast<std::size_t>(t)]);
          const auto i1 = edge_vertex_index(x, y, z, tri[static_cast<std::size_t>(t) + 1]);
          const auto i2 = edge_vertex_index(x, y, z, tri[static_cast<std::size_t>(t) + 2]);
          mesh.triangles.push_back({i0, i1, i2});
        }
      }
  return mesh;
}

}  // namespace mrc::uq
