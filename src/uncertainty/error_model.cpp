#include "uncertainty/error_model.h"

#include <cmath>

namespace mrc::uq {

namespace {

ErrorModel fit_filtered(std::span<const float> orig, std::span<const float> dec,
                        bool filtered, double isovalue, double window) {
  MRC_REQUIRE(orig.size() == dec.size() && !orig.empty(), "mismatched or empty samples");
  double sum = 0.0, sum2 = 0.0;
  index_t n = 0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (filtered && std::abs(static_cast<double>(orig[i]) - isovalue) > window) continue;
    const double e = static_cast<double>(orig[i]) - static_cast<double>(dec[i]);
    sum += e;
    sum2 += e * e;
    ++n;
  }
  ErrorModel m;
  m.n_samples = n;
  if (n > 0) {
    m.mean = sum / static_cast<double>(n);
    const double var = std::max(0.0, sum2 / static_cast<double>(n) - m.mean * m.mean);
    m.sigma = std::sqrt(var);
  }
  return m;
}

}  // namespace

ErrorModel ErrorModel::fit(std::span<const float> orig, std::span<const float> dec) {
  return fit_filtered(orig, dec, false, 0.0, 0.0);
}

ErrorModel ErrorModel::fit_near_isovalue(std::span<const float> orig,
                                         std::span<const float> dec, double isovalue,
                                         double window, index_t min_samples) {
  ErrorModel m = fit_filtered(orig, dec, true, isovalue, window);
  if (m.n_samples < min_samples) return fit(orig, dec);
  return m;
}

}  // namespace mrc::uq
