#pragma once

// Gaussian model of the compression error (paper §III-C). SZ/ZFP errors are
// approximately normal at large error bounds [Lindstrom'17], so per-voxel
// uncertainty is N(mean, sigma^2) with moments estimated from the sampled
// round trips already collected for post-processing ("reusing the
// information"). The isovalue-conditioned fit restricts the estimate to
// samples whose original value lies near the isovalue, because compression
// error can depend on the data value.

#include <span>

#include "grid/field.h"

namespace mrc::uq {

struct ErrorModel {
  double mean = 0.0;
  double sigma = 0.0;
  index_t n_samples = 0;

  /// Fit from paired original/decompressed samples.
  [[nodiscard]] static ErrorModel fit(std::span<const float> orig,
                                      std::span<const float> dec);

  /// Isovalue-conditioned fit: uses only samples with
  /// |orig - isovalue| <= window; falls back to the global fit when fewer
  /// than `min_samples` qualify.
  [[nodiscard]] static ErrorModel fit_near_isovalue(std::span<const float> orig,
                                                    std::span<const float> dec,
                                                    double isovalue, double window,
                                                    index_t min_samples = 64);
};

}  // namespace mrc::uq
