#pragma once

// Marching cubes isosurface extraction (Lorensen & Cline) with the full
// 256-case tables, used for the isosurface comparisons of Figs. 9/14/16 and
// the OBJ exports in the examples.

#include <array>
#include <vector>

#include "grid/field.h"

namespace mrc::uq {

struct TriMesh {
  std::vector<std::array<float, 3>> vertices;
  std::vector<std::array<std::uint32_t, 3>> triangles;

  [[nodiscard]] std::size_t triangle_count() const { return triangles.size(); }
  [[nodiscard]] std::size_t vertex_count() const { return vertices.size(); }
};

/// Extracts the isosurface at `isovalue`. Vertices are in grid coordinates
/// with linear interpolation along cell edges.
[[nodiscard]] TriMesh marching_cubes(const FieldF& f, double isovalue);

namespace tables {
extern const std::array<std::uint16_t, 256> kEdgeTable;
extern const std::array<std::array<std::int8_t, 16>, 256> kTriTable;
}  // namespace tables

}  // namespace mrc::uq
