#include "obs/flight.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/require.h"
#include "obs/obs.h"

namespace mrc::obs {

FlightRecorder& FlightRecorder::global() {
  // Leaked like the registry: requests can complete during static
  // destruction of whatever owns the server.
  static FlightRecorder* g = new FlightRecorder();
  return *g;
}

void FlightRecorder::record(const FlightRecord& rec) {
  // Round-robin striping from one global sequence: with N total record()
  // calls every stripe sees its exact share, so stats() can account for
  // every dropped record precisely (the wraparound test depends on it).
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Stripe& s = stripes_[static_cast<std::size_t>(seq % kStripes)];
  {
    const std::lock_guard lock(s.mu);
    if (s.ring.size() < kStripeCapacity) {
      s.ring.push_back(rec);
    } else {
      s.ring[static_cast<std::size_t>(s.pushed % kStripeCapacity)] = rec;
    }
    ++s.pushed;
  }
  // Tail capture: errors always, slow requests past the threshold. The span
  // tree only exists when obs is enabled and the request was traced — the
  // record itself is kept either way.
  if (rec.outcome != 0 ||
      rec.total_us >= slow_us_.load(std::memory_order_relaxed)) {
    std::string spans;
    if (rec.trace != 0 && enabled()) spans = span_tree_json(rec.trace);
    const std::lock_guard lock(slow_mu_);
    if (slow_.size() >= kSlowLogCapacity) slow_.pop_front();
    slow_.push_back(SlowEntry{rec, std::move(spans)});
  }
}

FlightRecorder::Stats FlightRecorder::stats() const {
  Stats out;
  for (const Stripe& s : stripes_) {
    const std::lock_guard lock(s.mu);
    out.recorded += s.ring.size();
    out.dropped += s.pushed - s.ring.size();
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(kCapacity);
  for (const Stripe& s : stripes_) {
    const std::lock_guard lock(s.mu);
    // Un-wrap the ring into push order: oldest surviving record first.
    const std::size_t n = s.ring.size();
    const std::size_t start =
        n < kStripeCapacity ? 0 : static_cast<std::size_t>(s.pushed % kStripeCapacity);
    for (std::size_t i = 0; i < n; ++i) out.push_back(s.ring[(start + i) % n]);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.end_ns < b.end_ns;
            });
  return out;
}

std::vector<FlightRecorder::SlowEntry> FlightRecorder::slow_log() const {
  const std::lock_guard lock(slow_mu_);
  return {slow_.begin(), slow_.end()};
}

void FlightRecorder::set_slow_threshold_us(std::uint64_t us) {
  slow_us_.store(us, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::slow_threshold_us() const {
  return slow_us_.load(std::memory_order_relaxed);
}

void FlightRecorder::reset() {
  for (Stripe& s : stripes_) {
    const std::lock_guard lock(s.mu);
    s.ring.clear();
    s.pushed = 0;
  }
  const std::lock_guard lock(slow_mu_);
  slow_.clear();
}

namespace {

void append_record_json(std::string& out, const FlightRecord& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"trace\":\"%016" PRIx64 "\",\"type\":%u,\"outcome\":%u,"
      "\"dataset\":%u,\"level\":%d,"
      "\"box\":[%lld,%lld,%lld,%lld,%lld,%lld],"
      "\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"queue_wait_us\":%llu,\"total_us\":%llu,\"end_us\":%.3f}",
      r.trace, static_cast<unsigned>(r.frame_type),
      static_cast<unsigned>(r.outcome), r.dataset, r.level,
      static_cast<long long>(r.box_lo[0]), static_cast<long long>(r.box_lo[1]),
      static_cast<long long>(r.box_lo[2]), static_cast<long long>(r.box_hi[0]),
      static_cast<long long>(r.box_hi[1]), static_cast<long long>(r.box_hi[2]),
      static_cast<unsigned long long>(r.cache_hits),
      static_cast<unsigned long long>(r.cache_misses),
      static_cast<unsigned long long>(r.queue_wait_us),
      static_cast<unsigned long long>(r.total_us),
      static_cast<double>(r.end_ns) * 1e-3);
  out += buf;
}

}  // namespace

std::string flight_json() {
  FlightRecorder& fr = FlightRecorder::global();
  const FlightRecorder::Stats st = fr.stats();
  const std::vector<FlightRecord> records = fr.snapshot();
  const std::vector<FlightRecorder::SlowEntry> slow = fr.slow_log();

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"flight\":{\"capacity\":%zu,\"recorded\":%llu,"
                "\"dropped\":%llu,\"slow_threshold_us\":%llu,\n\"records\":[\n",
                FlightRecorder::kCapacity,
                static_cast<unsigned long long>(st.recorded),
                static_cast<unsigned long long>(st.dropped),
                static_cast<unsigned long long>(fr.slow_threshold_us()));
  out += buf;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i != 0) out += ",\n";
    append_record_json(out, records[i]);
  }
  out += "\n],\n\"slow\":[\n";
  for (std::size_t i = 0; i < slow.size(); ++i) {
    if (i != 0) out += ",\n";
    out += "{\"record\":";
    append_record_json(out, slow[i].rec);
    out += ",\"spans\":";
    // The span tree is already JSON; an empty capture becomes null.
    out += slow[i].spans.empty() ? "null" : slow[i].spans;
    out += '}';
  }
  out += "\n]}}\n";
  return out;
}

void write_flight_json(const std::string& path) {
  const std::string json = flight_json();
  FILE* f = std::fopen(path.c_str(), "w");
  MRC_REQUIRE(f != nullptr, "obs: cannot open flight output file " + path);
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  MRC_REQUIRE(n == json.size(), "obs: short write to flight file " + path);
}

}  // namespace mrc::obs
