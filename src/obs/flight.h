#pragma once

// Always-on flight recorder of the serve tier: a fixed-size, lock-striped
// ring of per-request records plus a bounded slow-log that retains the full
// stitched span tree of tail requests. Unlike the span rings (obs.h), this
// is NOT behind the obs kill switch — it is the artifact that explains a p99
// outlier or an error reply *after the fact*, so it must already be running
// when the question is asked.
//
// Cost model (enforced by bench_obs_overhead, which runs the serve path with
// the recorder on in every mode):
//
//   * record()      — one relaxed fetch_add to pick a stripe, one stripe
//     mutex (uncontended at 8 stripes unless >8 threads complete requests
//     in the same instant) and a 96-byte struct copy. O(1), no allocation
//     after the rings fill, independent of obs::enabled().
//   * slow capture  — only for requests ending in an error frame or slower
//     than the threshold: those additionally snapshot their span tree
//     (empty when obs is disabled — the record itself still lands).
//
// Accounting is exact: stripes are chosen round-robin from one global
// sequence counter, and each stripe counts lifetime pushes under its lock,
// so recorded + dropped == total record() calls in any stats() snapshot,
// under any thread interleaving.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace mrc::obs {

/// One served request, as the flight recorder keeps it. `frame_type` is the
/// raw wire request type byte (0 = the frame never parsed); `outcome` is 0
/// for success, else the ServerError code of the error reply. `box`/`level`
/// are only meaningful for region/lod requests (zeroed otherwise).
struct FlightRecord {
  std::uint64_t trace = 0;          ///< client trace id; 0 = untraced
  std::uint64_t end_ns = 0;         ///< obs::now_ns at reply completion
  std::uint64_t total_us = 0;       ///< frame in -> reply bytes out
  std::uint64_t queue_wait_us = 0;  ///< demand pool tasks' queue wait, summed
  std::uint64_t cache_hits = 0;     ///< brick lookups this request won
  std::uint64_t cache_misses = 0;   ///< brick lookups this request decoded
  std::int64_t box_lo[3] = {0, 0, 0};
  std::int64_t box_hi[3] = {0, 0, 0};
  std::uint32_t dataset = 0;
  std::int32_t level = 0;
  std::uint8_t frame_type = 0;
  std::uint8_t outcome = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kStripes = 8;
  static constexpr std::size_t kCapacity = 1024;  ///< records held, total
  static constexpr std::size_t kSlowLogCapacity = 32;
  static constexpr std::uint64_t kDefaultSlowUs = 50'000;

  /// The process-wide recorder (leaked singleton, same lifetime rules as
  /// the obs registry).
  static FlightRecorder& global();

  /// Appends one record; wraps round-robin once the stripe fills. Also
  /// captures the request into the slow-log when it errored or exceeded the
  /// slow threshold.
  void record(const FlightRecord& rec);

  struct Stats {
    std::uint64_t recorded = 0;  ///< records currently held
    std::uint64_t dropped = 0;   ///< records overwritten by wraparound
  };
  [[nodiscard]] Stats stats() const;

  /// Every held record, oldest-to-newest per stripe (cross-stripe order is
  /// by end_ns only as far as the caller sorts it).
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  struct SlowEntry {
    FlightRecord rec;
    std::string spans;  ///< span_tree_json at capture; "" when obs was off
  };
  [[nodiscard]] std::vector<SlowEntry> slow_log() const;

  /// Requests slower than this (or ending in an error) enter the slow-log.
  void set_slow_threshold_us(std::uint64_t us);
  [[nodiscard]] std::uint64_t slow_threshold_us() const;

  void reset();  ///< drops held records, slow entries, and push counters

 private:
  FlightRecorder() = default;

  struct Stripe {
    mutable std::mutex mu;
    std::vector<FlightRecord> ring;  ///< grows to kCapacity/kStripes, wraps
    std::uint64_t pushed = 0;        ///< lifetime; dropped = pushed - held
  };

  static constexpr std::size_t kStripeCapacity = kCapacity / kStripes;

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> slow_us_{kDefaultSlowUs};
  mutable std::mutex slow_mu_;
  std::deque<SlowEntry> slow_;  ///< newest kept; oldest dropped at capacity
};

/// The recorder + slow-log as one JSON document:
/// {"flight":{"capacity","recorded","dropped","slow_threshold_us",
///            "records":[...newest-last...],"slow":[{"record",...,"spans"}]}}
[[nodiscard]] std::string flight_json();
void write_flight_json(const std::string& path);

}  // namespace mrc::obs
