#include "obs/obs.h"

#include <chrono>

namespace mrc::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  if constexpr (kCompiledIn)
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {
// The thread's current request context. A plain thread_local shared_ptr:
// installing/restoring a scope is two moves, reading it is one TLS load —
// cheap enough to stay on with obs disabled (the flight recorder needs it).
thread_local RequestCtxPtr t_request;
}  // namespace

const RequestCtxPtr& current_request() { return t_request; }

std::uint64_t current_trace() {
  return t_request == nullptr ? 0 : t_request->trace;
}

RequestScope::RequestScope(RequestCtxPtr ctx) : prev_(std::move(t_request)) {
  t_request = std::move(ctx);
}

RequestScope::~RequestScope() { t_request = std::move(prev_); }

std::uint64_t now_ns() {
  // A process-local epoch keeps span timestamps small enough that the
  // microsecond doubles in the trace JSON stay exact.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Registry& Registry::global() {
  // Leaked on purpose: instrumentation sites cache handle references in
  // function-local statics, and spans can still close during static
  // destruction — the registry must outlive everything.
  static Registry* g = new Registry();
  return *g;
}

namespace {

template <typename T>
T& get_or_create(std::vector<std::pair<std::string, std::unique_ptr<T>>>& map,
                 std::string_view name) {
  for (auto& [n, p] : map)
    if (n == name) return *p;
  map.emplace_back(std::string(name), std::make_unique<T>());
  return *map.back().second;
}

/// Prometheus metric names take [a-zA-Z0-9_:]; our dotted names map '.' (and
/// anything else exotic) to '_'.
std::string promname(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard lock(mu_);
  return get_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard lock(mu_);
  return get_or_create(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard lock(mu_);
  return get_or_create(hists_, name);
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const std::lock_guard lock(mu_);
  for (const auto& [n, p] : counters_)
    if (n == name) return p->value();
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  const std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [n, p] : counters_) out.emplace_back(n, p->value());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> Registry::gauges() const {
  const std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [n, p] : gauges_) out.emplace_back(n, p->value());
  return out;
}

std::vector<HistogramView> Registry::histograms() const {
  const std::lock_guard lock(mu_);
  std::vector<HistogramView> out;
  out.reserve(hists_.size());
  for (const auto& [n, p] : hists_) {
    HistogramView v;
    v.name = n;
    v.count = p->count();
    v.sum = p->sum();
    v.p50 = p->quantile(0.50);
    v.p99 = p->quantile(0.99);
    out.push_back(std::move(v));
  }
  return out;
}

std::string Registry::render_text() const {
  const std::lock_guard lock(mu_);
  std::string out;
  out.reserve(1024);
  const auto line = [&out](const std::string& name, std::uint64_t v) {
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  for (const auto& [n, p] : counters_) {
    const std::string pn = promname(n);
    out += "# TYPE " + pn + " counter\n";
    line(pn, p->value());
  }
  for (const auto& [n, p] : gauges_) {
    const std::string pn = promname(n);
    out += "# TYPE " + pn + " gauge\n";
    out += pn;
    out += ' ';
    out += std::to_string(p->value());
    out += '\n';
  }
  for (const auto& [n, p] : hists_) {
    const std::string pn = promname(n);
    out += "# TYPE " + pn + " histogram\n";
    // Real histogram exposition over the log2 buckets: cumulative
    // `_bucket{le="..."}` lines, sparse (only buckets holding samples; a
    // 48-bucket histogram would otherwise emit 48 lines of zeros each), and
    // le is each bucket's inclusive upper bound — samples are integers, so
    // "<= 2^b - 1" captures bucket b exactly. Totals come from the same
    // snapshot as the bucket lines, so `+Inf` == `_count` always, even if
    // samples land concurrently.
    const auto counts = p->bucket_counts();
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    std::uint64_t cum = 0;
    for (int b = 0; b + 1 < Histogram::kBuckets; ++b) {
      const std::uint64_t c = counts[static_cast<std::size_t>(b)];
      if (c == 0) continue;
      cum += c;
      out += pn + "_bucket{le=\"" + std::to_string(Histogram::bucket_upper(b)) +
             "\"} " + std::to_string(cum) + "\n";
    }
    out += pn + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
    line(pn + "_sum", p->sum());
    line(pn + "_count", total);
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard lock(mu_);
  for (auto& [n, p] : counters_) p->reset();
  for (auto& [n, p] : gauges_) p->reset();
  for (auto& [n, p] : hists_) p->reset();
}

std::string render_text() { return Registry::global().render_text(); }

}  // namespace mrc::obs
