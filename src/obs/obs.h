#pragma once

// Dependency-free observability: one process-wide registry of named
// counters / gauges / log2 histograms, plus span-based tracing with a
// chrome://tracing (Perfetto) JSON exporter. Everything the codecs, the
// containers, the exec pool, the brick cache and the serve tier report
// flows through here, so every later perf PR measures with the same ruler.
//
// Cost model, enforced by bench_obs_overhead:
//
//   * compile-time off  — build with -DMRC_OBS=OFF (defines MRC_OBS_DISABLED);
//     enabled() folds to `false` and every gated site dead-codes away.
//   * runtime off       — the default at process start. One relaxed atomic
//     load + branch per span; no clock reads, no ring-buffer traffic.
//     Event counters that feed the serve stats surface (cache hits, request
//     admissions, brick counts) still tick — they are single relaxed
//     fetch_adds on cache lines that are already being written under the
//     same locks, and keeping them unconditional is what makes the wire
//     `metrics` frame reconcile exactly with ServerStats.
//   * enabled           — spans read the clock twice and push one 40-byte
//     event (name, times, request trace id) into a per-thread ring buffer
//     (per-buffer mutex, uncontended on the hot path, so the exporter can
//     snapshot live buffers TSan-clean).
//
// Independent of the kill switch, the serve tier's *request context*
// (RequestCtx below) and the flight recorder (obs/flight.h) are always on:
// they cost O(1) relaxed writes per served request, not per span.
//
// Registry handles have stable addresses for the life of the process, so
// instrumentation sites cache them in function-local statics and the hot
// path never touches the registry mutex.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mrc::obs {

#ifdef MRC_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when observability is compiled in AND runtime-enabled. One relaxed
/// load; constant false under MRC_OBS_DISABLED so gated sites vanish.
[[nodiscard]] inline bool enabled() {
  if constexpr (!kCompiledIn) return false;
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime kill switch; a no-op (stays off) when compiled out.
void set_enabled(bool on);

/// Nanoseconds since an arbitrary process-local epoch (steady clock).
[[nodiscard]] std::uint64_t now_ns();

/// Monotonic event counter. Relaxed fetch_add; safe from any thread.
class Counter {
 public:
  void add(std::uint64_t v = 1) { v_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (queue depths, bytes held).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t v) { v_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Streaming log2-bucket histogram (the generalization of the old
/// serve::LatencyHistogram): fixed power-of-two buckets with relaxed atomic
/// counters, so every sample records in O(1) with no lock and no
/// allocation, and quantiles are answered from a snapshot of the bucket
/// counts. Quantile values are bucket lower bounds, so they are monotone in
/// q (p50 <= p99 always) and accurate to within the 2x bucket width. The
/// unit is the caller's (the serve tier records microseconds).
class Histogram {
 public:
  /// Bucket 0 holds sub-unit samples; bucket i >= 1 holds [2^(i-1), 2^i).
  /// 2^46 us ~ 2.2 years caps the range; larger samples land in the last
  /// (overflow) bucket.
  static constexpr int kBuckets = 48;

  void record(std::uint64_t v) {
    counts_[static_cast<std::size_t>(bucket(v))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
    return n;
  }

  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// The q-quantile as the lower bound of the bucket holding that rank; 0
  /// when no samples have been recorded. q is clamped to [0, 1]; q=0 asks
  /// for the first sample's bucket and q=1 for the last's, and a rank is
  /// always at least 1, so a single-sample histogram answers every q with
  /// that sample's bucket and an all-overflow histogram answers with the
  /// overflow bucket's lower bound.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    std::array<std::uint64_t, kBuckets> snap{};
    std::uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
      snap[static_cast<std::size_t>(i)] =
          counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
      total += snap[static_cast<std::size_t>(i)];
    }
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double want = q * static_cast<double>(total);
    std::uint64_t rank = static_cast<std::uint64_t>(want);
    if (static_cast<double>(rank) < want) ++rank;  // ceil
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += snap[static_cast<std::size_t>(i)];
      if (seen >= rank) return lower_bound(i);
    }
    return lower_bound(kBuckets - 1);
  }

  /// serve-layer compatibility spelling (that tier records microseconds).
  [[nodiscard]] std::uint64_t quantile_us(double q) const { return quantile(q); }

  /// Snapshot of the raw per-bucket counters (index = internal bucket id;
  /// see bucket_upper for each bucket's value range). Feeds the Prometheus
  /// cumulative `_bucket{le=...}` exposition and tests.
  [[nodiscard]] std::array<std::uint64_t, kBuckets> bucket_counts() const {
    std::array<std::uint64_t, kBuckets> out{};
    for (int i = 0; i < kBuckets; ++i)
      out[static_cast<std::size_t>(i)] =
          counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    return out;
  }

  /// Largest sample value bucket `b` holds, inclusive: 0 for bucket 0,
  /// 2^b - 1 for the log2 buckets. The last bucket is the overflow bucket —
  /// render it as le="+Inf", not as this finite bound.
  [[nodiscard]] static std::uint64_t bucket_upper(int b) {
    return b <= 0 ? 0 : (std::uint64_t{1} << b) - 1;
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  static int bucket(std::uint64_t v) {
    if (v == 0) return 0;
    const int b = 64 - std::countl_zero(v);  // 1 -> 1, 2..3 -> 2, ...
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  static std::uint64_t lower_bound(int bucket) {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Histogram snapshot row for render_text / tests.
struct HistogramView {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

/// Process-wide name -> instrument map. Handles returned by counter() /
/// gauge() / histogram() are get-or-create and address-stable forever, so
/// call sites hold `static Counter& c = Registry::global().counter(...)`
/// and pay the mutex once per site per process. reset() zeroes values in
/// place (addresses survive) — test isolation, not deregistration.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a named counter, 0 when it was never created.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> gauges() const;
  [[nodiscard]] std::vector<HistogramView> histograms() const;

  /// Prometheus-style text exposition: names with '.' mapped to '_',
  /// counters as `# TYPE <n> counter`, gauges as gauge, histograms as real
  /// `histogram` exposition — cumulative `_bucket{le="..."}` lines over the
  /// log2 buckets (sparse: only buckets that hold samples, plus the +Inf
  /// line) followed by `_sum` and `_count`.
  [[nodiscard]] std::string render_text() const;

  void reset();

 private:
  Registry() = default;

  template <typename T>
  using Map = std::vector<std::pair<std::string, std::unique_ptr<T>>>;

  mutable std::mutex mu_;
  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<Histogram> hists_;
};

/// Convenience: Registry::global().render_text().
[[nodiscard]] std::string render_text();

// -- Request context --------------------------------------------------------

/// Per-request state threaded from the serve tier through the exec pool and
/// the brick cache: the client-generated trace id plus the per-request
/// counters the flight recorder reports. Shared (shared_ptr) between the
/// request thread and every pool task it spawns, so the counters are relaxed
/// atomics. Always compiled in — the flight recorder needs it with obs
/// disabled — and always cheap: installing a scope is two shared_ptr moves.
struct RequestCtx {
  std::uint64_t trace = 0;  ///< client-generated id; 0 = untraced request
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> queue_wait_ns{0};  ///< demand-lane queue wait
};
using RequestCtxPtr = std::shared_ptr<RequestCtx>;

/// The calling thread's current request context (null outside any request).
[[nodiscard]] const RequestCtxPtr& current_request();

/// Shorthand: current_request()'s trace id, 0 when there is none.
[[nodiscard]] std::uint64_t current_trace();

/// RAII installer for a request context on this thread; restores the
/// previous one (usually null) on destruction. The exec pool wraps every
/// posted task in one of these so context survives both priority lanes; a
/// null ctx clears the slot (workers start clear anyway).
class RequestScope {
 public:
  explicit RequestScope(RequestCtxPtr ctx);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  RequestCtxPtr prev_;
};

// -- Tracing ----------------------------------------------------------------

/// One closed span; name must be a string literal (stored by pointer).
/// `trace` is the owning request's id (captured from the thread's current
/// RequestCtx at record time); `ref` links a span to *another* request — the
/// brick cache sets it when a decode is adopted across requests, recording
/// both the owning and the adopting trace id on one event.
struct TraceEvent {
  const char* name;
  std::uint64_t t0_ns;
  std::uint64_t dur_ns;
  std::uint64_t trace;
  std::uint64_t ref;
};

/// Per-thread ring capacity: newest events win once a thread wraps.
inline constexpr std::size_t kTraceCapacity = 8192;

struct TraceStats {
  std::uint64_t recorded = 0;  ///< events currently held across all rings
  std::uint64_t dropped = 0;   ///< events overwritten by ring wraparound
};

[[nodiscard]] TraceStats trace_stats();
void reset_trace();

/// chrome://tracing / Perfetto JSON ({"traceEvents": [...]}, complete "X"
/// events, ts/dur in microseconds, one tid per instrumented thread). Spans
/// recorded under a request context carry `"args":{"trace":"<16-hex>"}`
/// (plus `"ref"` for cross-request adoption events), so one request's spans
/// can be filtered out of the interleaved per-thread rings.
[[nodiscard]] std::string trace_json();
void write_trace_json(const std::string& path);

/// Every held span whose trace id equals `trace_id` (any thread, any order).
[[nodiscard]] std::vector<TraceEvent> spans_for(std::uint64_t trace_id);

/// The stitched per-request span tree: all spans carrying `trace_id`,
/// nested by interval containment across threads (the pool shares the
/// process clock, so a task span sits inside the request span that posted
/// it). Text form is an indented one-line-per-span rendering for
/// `mrcc trace-read`; JSON form is {"trace":"<16-hex>","spans":[nodes]} with
/// each node {"name","ts","dur","tid","children"} — the slow-log keeps this.
[[nodiscard]] std::string span_tree_text(std::uint64_t trace_id);
[[nodiscard]] std::string span_tree_json(std::uint64_t trace_id);

namespace detail {
void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t dur_ns);
/// As record_span, with an explicit cross-request link (see TraceEvent::ref).
void record_span_ref(const char* name, std::uint64_t t0_ns,
                     std::uint64_t dur_ns, std::uint64_t ref);
}  // namespace detail

/// RAII trace scope. Construction is one enabled() branch when obs is off;
/// when on, the destructor pushes {name, t0, dur} into this thread's ring
/// and adds dur to the optional linked counter (per-stage _ns totals).
class Span {
 public:
  explicit Span(const char* name, Counter* dur_ns_counter = nullptr) {
    if (!enabled()) return;
    name_ = name;
    counter_ = dur_ns_counter;
    t0_ = now_ns();
  }
  ~Span() {
    if (name_ == nullptr) return;
    const std::uint64_t dur = now_ns() - t0_;
    if (counter_ != nullptr) counter_->add(dur);
    detail::record_span(name_, t0_, dur);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  Counter* counter_ = nullptr;
  std::uint64_t t0_ = 0;
};

// OBS_SPAN("stage") / OBS_SPAN("stage", &dur_counter): a uniquely named
// Span for the rest of the enclosing scope. Under MRC_OBS_DISABLED the Span
// body is constexpr-empty, so the whole statement compiles away.
//
// Placement rule: a span must wrap an *out-of-line* call, never share a
// function body with an inlined hot loop. The span itself is nearly free,
// but its destructor cleanup path and the registry magic-statics change the
// enclosing function's size and register pressure, which can cost a few
// percent on a loop inlined into the same body — a cost that would survive
// even with obs runtime-disabled. Mark the loop's function MRC_OBS_NOINLINE
// (and keep it free of obs code) so its codegen is identical whether or not
// the instrumentation around the call site is compiled in.
#define MRC_OBS_CONCAT_(a, b) a##b
#define MRC_OBS_CONCAT(a, b) MRC_OBS_CONCAT_(a, b)
#define OBS_SPAN(...) \
  const ::mrc::obs::Span MRC_OBS_CONCAT(obs_span_, __LINE__)(__VA_ARGS__)
#if defined(__GNUC__) || defined(__clang__)
#define MRC_OBS_NOINLINE __attribute__((noinline))
#else
#define MRC_OBS_NOINLINE
#endif

/// Wall-clock section timer that doubles as a span emitter — the one timing
/// helper benches and tools share with production code, so bench sections
/// land in the same Perfetto timeline as codec/container/pool spans. Each
/// completed section (construction-to-restart, restart-to-restart, or
/// last-restart-to-destruction) is traced under the current name when obs
/// is enabled; seconds() / restart() always work, enabled or not.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name = "timer") : name_(name), t0_(tick()) {}

  ~ScopedTimer() { close(); }

  /// Seconds elapsed in the current (open) section.
  [[nodiscard]] double seconds() const {
    return static_cast<double>(tick() - t0_) * 1e-9;
  }

  /// Closes the current section (emitting its span), optionally renames,
  /// and starts the next one; returns the closed section's seconds.
  double restart(const char* next_name = nullptr) {
    const double s = close();
    if (next_name != nullptr) name_ = next_name;
    t0_ = tick();
    return s;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  // Always a real clock read: sections must time correctly with obs off.
  [[nodiscard]] static std::uint64_t tick() { return now_ns(); }

  double close() {
    const std::uint64_t t1 = tick();
    if (enabled()) detail::record_span(name_, t0_, t1 - t0_);
    return static_cast<double>(t1 - t0_) * 1e-9;
  }

  const char* name_;
  std::uint64_t t0_;
};

}  // namespace mrc::obs
