#include "obs/obs.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "common/require.h"

namespace mrc::obs {

namespace {

/// One thread's span ring. The mutex is uncontended on the hot path (only
/// the owning thread pushes); it exists so the exporter can snapshot a live
/// buffer — including one whose thread is mid-push — TSan-clean.
struct Ring {
  std::mutex mu;
  std::vector<TraceEvent> ev;   ///< grows to kTraceCapacity, then wraps
  std::uint64_t pushed = 0;     ///< lifetime pushes; dropped = pushed - held
  std::uint32_t tid = 0;        ///< stable small id for the trace JSON
};

struct Rings {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> all;  ///< kept alive past thread exit
  std::uint32_t next_tid = 1;
};

Rings& rings() {
  static Rings* g = new Rings();  // leaked: spans may close during shutdown
  return *g;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> mine = [] {
    auto r = std::make_shared<Ring>();
    r->ev.reserve(kTraceCapacity);
    Rings& g = rings();
    const std::lock_guard lock(g.mu);
    r->tid = g.next_tid++;
    g.all.push_back(r);
    return r;
  }();
  return *mine;
}

/// Span names are string literals from our own call sites, but escape
/// defensively so the exporter can never emit invalid JSON.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

namespace detail {

void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t dur_ns) {
  Ring& r = local_ring();
  const std::lock_guard lock(r.mu);
  if (r.ev.size() < kTraceCapacity) {
    r.ev.push_back(TraceEvent{name, t0_ns, dur_ns});
  } else {
    // The ring filled in push order, so pushed % capacity keeps overwriting
    // round-robin: the newest kTraceCapacity events always survive.
    r.ev[static_cast<std::size_t>(r.pushed % kTraceCapacity)] =
        TraceEvent{name, t0_ns, dur_ns};
  }
  ++r.pushed;
}

}  // namespace detail

TraceStats trace_stats() {
  TraceStats s;
  Rings& g = rings();
  const std::lock_guard glock(g.mu);
  for (const auto& r : g.all) {
    const std::lock_guard lock(r->mu);
    s.recorded += r->ev.size();
    s.dropped += r->pushed - r->ev.size();
  }
  return s;
}

void reset_trace() {
  Rings& g = rings();
  const std::lock_guard glock(g.mu);
  for (const auto& r : g.all) {
    const std::lock_guard lock(r->mu);
    r->ev.clear();
    r->pushed = 0;
  }
}

std::string trace_json() {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  Rings& g = rings();
  const std::lock_guard glock(g.mu);
  for (const auto& r : g.all) {
    std::vector<TraceEvent> snap;
    std::uint32_t tid = 0;
    {
      const std::lock_guard lock(r->mu);
      snap = r->ev;
      tid = r->tid;
    }
    char buf[96];
    for (const TraceEvent& e : snap) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"";
      append_escaped(out, e.name);
      // Complete events, ts/dur in (fractional) microseconds per the Trace
      // Event Format; pid is fixed (single process), tid is the ring's id.
      std::snprintf(buf, sizeof buf,
                    "\",\"cat\":\"mrc\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%u}",
                    static_cast<double>(e.t0_ns) * 1e-3,
                    static_cast<double>(e.dur_ns) * 1e-3, tid);
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

void write_trace_json(const std::string& path) {
  const std::string json = trace_json();
  FILE* f = std::fopen(path.c_str(), "w");
  MRC_REQUIRE(f != nullptr, "obs: cannot open trace output file " + path);
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  MRC_REQUIRE(n == json.size(), "obs: short write to trace file " + path);
}

}  // namespace mrc::obs
