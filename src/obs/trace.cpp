#include "obs/obs.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "common/require.h"

namespace mrc::obs {

namespace {

/// One thread's span ring. The mutex is uncontended on the hot path (only
/// the owning thread pushes); it exists so the exporter can snapshot a live
/// buffer — including one whose thread is mid-push — TSan-clean.
struct Ring {
  std::mutex mu;
  std::vector<TraceEvent> ev;   ///< grows to kTraceCapacity, then wraps
  std::uint64_t pushed = 0;     ///< lifetime pushes; dropped = pushed - held
  std::uint32_t tid = 0;        ///< stable small id for the trace JSON
};

struct Rings {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> all;  ///< kept alive past thread exit
  std::uint32_t next_tid = 1;
};

Rings& rings() {
  static Rings* g = new Rings();  // leaked: spans may close during shutdown
  return *g;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> mine = [] {
    auto r = std::make_shared<Ring>();
    r->ev.reserve(kTraceCapacity);
    Rings& g = rings();
    const std::lock_guard lock(g.mu);
    r->tid = g.next_tid++;
    g.all.push_back(r);
    return r;
  }();
  return *mine;
}

/// Span names are string literals from our own call sites, but escape
/// defensively so the exporter can never emit invalid JSON.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

namespace detail {

void record_span_ref(const char* name, std::uint64_t t0_ns,
                     std::uint64_t dur_ns, std::uint64_t ref) {
  // The owning request's trace id rides along automatically: it is read
  // from this thread's current RequestCtx, which the exec pool re-installs
  // inside every posted task, so spans recorded on a worker lane still
  // carry the id of the request that queued them.
  const TraceEvent e{name, t0_ns, dur_ns, current_trace(), ref};
  Ring& r = local_ring();
  const std::lock_guard lock(r.mu);
  if (r.ev.size() < kTraceCapacity) {
    r.ev.push_back(e);
  } else {
    // The ring filled in push order, so pushed % capacity keeps overwriting
    // round-robin: the newest kTraceCapacity events always survive.
    r.ev[static_cast<std::size_t>(r.pushed % kTraceCapacity)] = e;
  }
  ++r.pushed;
}

void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t dur_ns) {
  record_span_ref(name, t0_ns, dur_ns, /*ref=*/0);
}

}  // namespace detail

TraceStats trace_stats() {
  TraceStats s;
  Rings& g = rings();
  const std::lock_guard glock(g.mu);
  for (const auto& r : g.all) {
    const std::lock_guard lock(r->mu);
    s.recorded += r->ev.size();
    s.dropped += r->pushed - r->ev.size();
  }
  return s;
}

void reset_trace() {
  Rings& g = rings();
  const std::lock_guard glock(g.mu);
  for (const auto& r : g.all) {
    const std::lock_guard lock(r->mu);
    r->ev.clear();
    r->pushed = 0;
  }
}

std::string trace_json() {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  Rings& g = rings();
  const std::lock_guard glock(g.mu);
  for (const auto& r : g.all) {
    std::vector<TraceEvent> snap;
    std::uint32_t tid = 0;
    {
      const std::lock_guard lock(r->mu);
      snap = r->ev;
      tid = r->tid;
    }
    char buf[160];
    for (const TraceEvent& e : snap) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"";
      append_escaped(out, e.name);
      // Complete events, ts/dur in (fractional) microseconds per the Trace
      // Event Format; pid is fixed (single process), tid is the ring's id.
      std::snprintf(buf, sizeof buf,
                    "\",\"cat\":\"mrc\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%u",
                    static_cast<double>(e.t0_ns) * 1e-3,
                    static_cast<double>(e.dur_ns) * 1e-3, tid);
      out += buf;
      // Trace ids as 16-hex-digit strings, not JSON numbers: 64-bit ids do
      // not survive a double round trip in most JSON consumers.
      if (e.trace != 0 || e.ref != 0) {
        std::snprintf(buf, sizeof buf, ",\"args\":{\"trace\":\"%016" PRIx64 "\"",
                      e.trace);
        out += buf;
        if (e.ref != 0) {
          std::snprintf(buf, sizeof buf, ",\"ref\":\"%016" PRIx64 "\"", e.ref);
          out += buf;
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "\n]}\n";
  return out;
}

std::vector<TraceEvent> spans_for(std::uint64_t trace_id) {
  std::vector<TraceEvent> out;
  Rings& g = rings();
  const std::lock_guard glock(g.mu);
  for (const auto& r : g.all) {
    const std::lock_guard lock(r->mu);
    for (const TraceEvent& e : r->ev)
      if (e.trace == trace_id) out.push_back(e);
  }
  return out;
}

namespace {

/// A span plus its ring id and child links — the stitched tree is built over
/// indices into one flat vector.
struct TreeNode {
  TraceEvent ev{};
  std::uint32_t tid = 0;
  std::vector<std::size_t> kids;
};

/// Collects the spans of one request (with their ring ids) and nests them by
/// interval containment: sort by start time (ties: longest first, so a
/// parent precedes the children it contains), then a stack of open intervals
/// assigns each span to the innermost one enclosing it. Containment works
/// across threads because every ring shares the process clock — a pool
/// task's span really does sit inside the request span that posted it.
/// Returns the flat node vector plus the root indices.
std::pair<std::vector<TreeNode>, std::vector<std::size_t>> build_tree(
    std::uint64_t trace_id) {
  std::vector<TreeNode> nodes;
  {
    Rings& g = rings();
    const std::lock_guard glock(g.mu);
    for (const auto& r : g.all) {
      const std::lock_guard lock(r->mu);
      for (const TraceEvent& e : r->ev)
        if (e.trace == trace_id && trace_id != 0)
          nodes.push_back(TreeNode{e, r->tid, {}});
    }
  }
  std::sort(nodes.begin(), nodes.end(), [](const TreeNode& a, const TreeNode& b) {
    if (a.ev.t0_ns != b.ev.t0_ns) return a.ev.t0_ns < b.ev.t0_ns;
    return a.ev.dur_ns > b.ev.dur_ns;
  });
  std::vector<std::size_t> roots;
  std::vector<std::size_t> stack;  // indices of open (enclosing) spans
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TraceEvent& e = nodes[i].ev;
    while (!stack.empty()) {
      const TraceEvent& top = nodes[stack.back()].ev;
      if (top.t0_ns <= e.t0_ns && e.t0_ns + e.dur_ns <= top.t0_ns + top.dur_ns)
        break;
      stack.pop_back();
    }
    if (stack.empty())
      roots.push_back(i);
    else
      nodes[stack.back()].kids.push_back(i);
    stack.push_back(i);
  }
  return {std::move(nodes), std::move(roots)};
}

void render_text_node(std::string& out, const std::vector<TreeNode>& nodes,
                      std::size_t i, int depth) {
  const TreeNode& n = nodes[i];
  char buf[128];
  std::snprintf(buf, sizeof buf, "%*s%-*s %10.1f us  tid %u", depth * 2, "",
                std::max(1, 32 - depth * 2), n.ev.name,
                static_cast<double>(n.ev.dur_ns) * 1e-3, n.tid);
  out += buf;
  if (n.ev.ref != 0) {
    std::snprintf(buf, sizeof buf, "  (ref %016" PRIx64 ")", n.ev.ref);
    out += buf;
  }
  out += '\n';
  for (const std::size_t k : n.kids) render_text_node(out, nodes, k, depth + 1);
}

void render_json_node(std::string& out, const std::vector<TreeNode>& nodes,
                      std::size_t i) {
  const TreeNode& n = nodes[i];
  out += "{\"name\":\"";
  append_escaped(out, n.ev.name);
  char buf[160];
  std::snprintf(buf, sizeof buf, "\",\"ts\":%.3f,\"dur\":%.3f,\"tid\":%u",
                static_cast<double>(n.ev.t0_ns) * 1e-3,
                static_cast<double>(n.ev.dur_ns) * 1e-3, n.tid);
  out += buf;
  if (n.ev.ref != 0) {
    std::snprintf(buf, sizeof buf, ",\"ref\":\"%016" PRIx64 "\"", n.ev.ref);
    out += buf;
  }
  out += ",\"children\":[";
  for (std::size_t k = 0; k < n.kids.size(); ++k) {
    if (k != 0) out += ',';
    render_json_node(out, nodes, n.kids[k]);
  }
  out += "]}";
}

}  // namespace

std::string span_tree_text(std::uint64_t trace_id) {
  const auto [nodes, roots] = build_tree(trace_id);
  std::string out;
  for (const std::size_t r : roots) render_text_node(out, nodes, r, 0);
  return out;
}

std::string span_tree_json(std::uint64_t trace_id) {
  const auto [nodes, roots] = build_tree(trace_id);
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"trace\":\"%016" PRIx64 "\",\"spans\":[",
                trace_id);
  out += buf;
  for (std::size_t r = 0; r < roots.size(); ++r) {
    if (r != 0) out += ',';
    render_json_node(out, nodes, roots[r]);
  }
  out += "]}";
  return out;
}

void write_trace_json(const std::string& path) {
  const std::string json = trace_json();
  FILE* f = std::fopen(path.c_str(), "w");
  MRC_REQUIRE(f != nullptr, "obs: cannot open trace output file " + path);
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  MRC_REQUIRE(n == json.size(), "obs: short write to trace file " + path);
}

}  // namespace mrc::obs
