#include "io/raw_io.h"

#include <cstdint>
#include <fstream>

namespace mrc::io {

namespace {
constexpr std::uint64_t kMagic = 0x4d524357'46333231ull;  // "MRCWF321"
}

Bytes read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  MRC_REQUIRE(in.good(), "cannot open: " + path);
  Bytes out(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out.data()), static_cast<std::streamsize>(out.size()));
  MRC_REQUIRE(in.good(), "read failed: " + path);
  return out;
}

void write_bytes(std::span<const std::byte> data, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MRC_REQUIRE(out.good(), "cannot open: " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  MRC_REQUIRE(out.good(), "write failed: " + path);
}

void write_raw(const FieldF& f, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MRC_REQUIRE(out.good(), "cannot open for writing: " + path);
  const std::uint64_t header[4] = {kMagic, static_cast<std::uint64_t>(f.dims().nx),
                                   static_cast<std::uint64_t>(f.dims().ny),
                                   static_cast<std::uint64_t>(f.dims().nz)};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(f.data()),
            static_cast<std::streamsize>(f.size() * sizeof(float)));
  MRC_REQUIRE(out.good(), "write failed: " + path);
}

FieldF read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MRC_REQUIRE(in.good(), "cannot open for reading: " + path);
  std::uint64_t header[4] = {};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  MRC_REQUIRE(in.good() && header[0] == kMagic, "not an mrcomp raw file: " + path);
  const Dim3 d{static_cast<index_t>(header[1]), static_cast<index_t>(header[2]),
               static_cast<index_t>(header[3])};
  FieldF f(d);
  in.read(reinterpret_cast<char*>(f.data()),
          static_cast<std::streamsize>(f.size() * sizeof(float)));
  MRC_REQUIRE(in.good(), "truncated raw file: " + path);
  return f;
}

FieldF read_raw_f32(const std::string& path, Dim3 dims) {
  std::ifstream in(path, std::ios::binary);
  MRC_REQUIRE(in.good(), "cannot open for reading: " + path);
  FieldF f(dims);
  in.read(reinterpret_cast<char*>(f.data()),
          static_cast<std::streamsize>(f.size() * sizeof(float)));
  MRC_REQUIRE(in.good(), "truncated f32 file: " + path);
  return f;
}

}  // namespace mrc::io
