#pragma once

// Wavefront OBJ export of marching-cubes isosurfaces.

#include <string>

#include "uncertainty/marching_cubes.h"

namespace mrc::io {

void write_obj(const uq::TriMesh& mesh, const std::string& path);

}  // namespace mrc::io
