#pragma once

// Legacy-VTK structured-points writer so decompressed fields and probability
// volumes drop straight into ParaView/VisIt — the visualization half of the
// paper's workflow.

#include <string>

#include "grid/field.h"

namespace mrc::io {

/// Writes a scalar volume as legacy VTK (binary, big-endian per spec).
void write_vtk(const FieldF& f, const std::string& path,
               const std::string& field_name = "value");

/// Double-precision overload (e.g. crossing-probability fields).
void write_vtk(const FieldD& f, const std::string& path,
               const std::string& field_name = "probability");

}  // namespace mrc::io
