#include "io/vtk_writer.h"

#include <bit>
#include <cstring>
#include <fstream>

namespace mrc::io {

namespace {

template <typename T>
void write_big_endian(std::ofstream& out, const T* data, index_t count) {
  static_assert(sizeof(T) == 4 || sizeof(T) == 8);
  std::vector<char> buf(static_cast<std::size_t>(count) * sizeof(T));
  for (index_t i = 0; i < count; ++i) {
    char tmp[sizeof(T)];
    std::memcpy(tmp, &data[i], sizeof(T));
    if constexpr (std::endian::native == std::endian::little) {
      for (std::size_t b = 0; b < sizeof(T); ++b)
        buf[static_cast<std::size_t>(i) * sizeof(T) + b] = tmp[sizeof(T) - 1 - b];
    } else {
      std::memcpy(buf.data() + static_cast<std::size_t>(i) * sizeof(T), tmp, sizeof(T));
    }
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

template <typename T>
void write_vtk_impl(const Field3D<T>& f, const std::string& path,
                    const std::string& field_name, const char* vtk_type) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MRC_REQUIRE(out.good(), "cannot open for writing: " + path);
  const Dim3 d = f.dims();
  out << "# vtk DataFile Version 3.0\n"
      << "mrcomp field\n"
      << "BINARY\n"
      << "DATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << d.nx << ' ' << d.ny << ' ' << d.nz << '\n'
      << "ORIGIN 0 0 0\n"
      << "SPACING 1 1 1\n"
      << "POINT_DATA " << d.size() << '\n'
      << "SCALARS " << field_name << ' ' << vtk_type << " 1\n"
      << "LOOKUP_TABLE default\n";
  write_big_endian(out, f.data(), f.size());
  MRC_REQUIRE(out.good(), "write failed: " + path);
}

}  // namespace

void write_vtk(const FieldF& f, const std::string& path, const std::string& field_name) {
  write_vtk_impl(f, path, field_name, "float");
}

void write_vtk(const FieldD& f, const std::string& path, const std::string& field_name) {
  write_vtk_impl(f, path, field_name, "double");
}

}  // namespace mrc::io
