#pragma once

// Raw binary field I/O (SDRBench-style .f32 payload with a tiny header for
// self-description) used by examples and the overhead experiment's I/O
// phase.

#include <span>
#include <string>

#include "common/bytes.h"
#include "grid/field.h"

namespace mrc::io {

/// Reads a whole file into a byte buffer.
[[nodiscard]] Bytes read_bytes(const std::string& path);

/// Writes a byte buffer to a file, truncating.
void write_bytes(std::span<const std::byte> data, const std::string& path);

/// Writes extents + float32 payload.
void write_raw(const FieldF& f, const std::string& path);

/// Reads a file written by write_raw.
[[nodiscard]] FieldF read_raw(const std::string& path);

/// Reads a bare float32 payload with caller-supplied extents (SDRBench
/// files carry no header).
[[nodiscard]] FieldF read_raw_f32(const std::string& path, Dim3 dims);

}  // namespace mrc::io
