#include "io/obj_writer.h"

#include <fstream>

namespace mrc::io {

void write_obj(const uq::TriMesh& mesh, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  MRC_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << "# mrcomp isosurface: " << mesh.vertex_count() << " vertices, "
      << mesh.triangle_count() << " triangles\n";
  for (const auto& v : mesh.vertices)
    out << "v " << v[0] << ' ' << v[1] << ' ' << v[2] << '\n';
  for (const auto& t : mesh.triangles)
    out << "f " << t[0] + 1 << ' ' << t[1] + 1 << ' ' << t[2] + 1 << '\n';
  MRC_REQUIRE(out.good(), "write failed: " + path);
}

}  // namespace mrc::io
