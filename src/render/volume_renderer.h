#pragma once

// Software volume renderer: orthographic front-to-back ray marching with a
// configurable color/opacity transfer function, plus the red uncertainty
// overlay of Fig. 14c (crossing-probability blended over the rendering).
//
// §V lists "incorporate other visualization methods (e.g., volume
// rendering)" as future work for the uncertainty pipeline — this module
// implements it. Renders also let benches compute *image-space* SSIM, the
// quantity the paper actually reports for its figures.

#include <array>
#include <string>
#include <vector>

#include "grid/field.h"

namespace mrc::serve {
class Dataset;
}

namespace mrc::render {

struct Image {
  index_t width = 0;
  index_t height = 0;
  std::vector<std::array<std::uint8_t, 3>> pixels;  // row-major, y-down

  [[nodiscard]] std::array<std::uint8_t, 3>& at(index_t x, index_t y) {
    return pixels[static_cast<std::size_t>(y * width + x)];
  }
  [[nodiscard]] const std::array<std::uint8_t, 3>& at(index_t x, index_t y) const {
    return pixels[static_cast<std::size_t>(y * width + x)];
  }
};

/// Cool-to-warm transfer function over [lo, hi]; opacity ramps linearly
/// from 0 at `lo` scaled by `opacity_scale` per sample.
struct TransferFunction {
  double lo = 0.0;
  double hi = 1.0;
  double opacity_scale = 0.05;
};

/// Builds a transfer function spanning the field's value range.
[[nodiscard]] TransferFunction auto_transfer(const FieldF& f, double opacity_scale = 0.05);

/// Orthographic ray march along +z (one ray per (x, y) column).
[[nodiscard]] Image volume_render(const FieldF& f, const TransferFunction& tf);

/// Renders one pyramid level served through a Dataset's brick cache —
/// identical pixels to volume_render(pyramid::decompress_level(...), tf),
/// but the data flows through the cached serving layer, so a sequence of
/// renders (camera orbits, level sweeps) decodes each brick once.
[[nodiscard]] Image volume_render(serve::Dataset& ds, int level,
                                  const TransferFunction& tf);

/// Renders a Dataset's finest addressable level (level 0). For an adaptive
/// (MRCA) dataset that is the seam-free mixed-resolution reconstruction —
/// identical pixels to volume_render(adaptive::decompress(...), tf) — with
/// each brick decoded once through the cache across repeated renders.
[[nodiscard]] Image volume_render(serve::Dataset& ds, const TransferFunction& tf);

/// Fig. 14c: blends red into pixels whose column contains a cell with
/// crossing probability >= threshold (probability field from
/// uq::crossing_probability; extents = field extents - 1).
[[nodiscard]] Image overlay_probability(const Image& base, const FieldD& prob,
                                        double threshold);

/// Mean SSIM between two renderings (8x8 windows) — the paper's image-space
/// quality metric.
[[nodiscard]] double image_ssim(const Image& a, const Image& b);

/// Binary PPM (P6) writer.
void write_ppm(const Image& img, const std::string& path);

}  // namespace mrc::render
