#include "render/volume_renderer.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "grid/field.h"
#include "metrics/ssim.h"
#include "serve/dataset.h"
#include "tiled/tiled.h"

namespace mrc::render {

namespace {

/// Cool-to-warm (blue -> white -> red) diverging color map on t in [0, 1].
std::array<double, 3> cool_warm(double t) {
  t = std::clamp(t, 0.0, 1.0);
  const std::array<double, 3> cool{0.23, 0.30, 0.75};
  const std::array<double, 3> mid{0.87, 0.87, 0.87};
  const std::array<double, 3> warm{0.71, 0.016, 0.15};
  std::array<double, 3> c;
  if (t < 0.5) {
    const double u = t * 2.0;
    for (int i = 0; i < 3; ++i) c[static_cast<std::size_t>(i)] = cool[static_cast<std::size_t>(i)] * (1 - u) + mid[static_cast<std::size_t>(i)] * u;
  } else {
    const double u = (t - 0.5) * 2.0;
    for (int i = 0; i < 3; ++i) c[static_cast<std::size_t>(i)] = mid[static_cast<std::size_t>(i)] * (1 - u) + warm[static_cast<std::size_t>(i)] * u;
  }
  return c;
}

}  // namespace

TransferFunction auto_transfer(const FieldF& f, double opacity_scale) {
  const auto [lo, hi] = f.min_max();
  TransferFunction tf;
  tf.lo = lo;
  tf.hi = hi > lo ? hi : lo + 1.0;
  tf.opacity_scale = opacity_scale;
  return tf;
}

Image volume_render(const FieldF& f, const TransferFunction& tf) {
  const Dim3 d = f.dims();
  Image img;
  img.width = d.nx;
  img.height = d.ny;
  img.pixels.assign(static_cast<std::size_t>(d.nx * d.ny), {0, 0, 0});
  const double inv_range = 1.0 / (tf.hi - tf.lo);

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t y = 0; y < d.ny; ++y)
    for (index_t x = 0; x < d.nx; ++x) {
      // Front-to-back compositing along +z.
      double r = 0, g = 0, b = 0, alpha = 0;
      for (index_t z = 0; z < d.nz && alpha < 0.995; ++z) {
        const double t = (static_cast<double>(f.at(x, y, z)) - tf.lo) * inv_range;
        const double sample_alpha = std::clamp(t, 0.0, 1.0) * tf.opacity_scale;
        if (sample_alpha <= 0.0) continue;
        const auto c = cool_warm(t);
        const double w = (1.0 - alpha) * sample_alpha;
        r += w * c[0];
        g += w * c[1];
        b += w * c[2];
        alpha += w;
      }
      img.at(x, y) = {static_cast<std::uint8_t>(std::clamp(r, 0.0, 1.0) * 255.0),
                      static_cast<std::uint8_t>(std::clamp(g, 0.0, 1.0) * 255.0),
                      static_cast<std::uint8_t>(std::clamp(b, 0.0, 1.0) * 255.0)};
    }
  return img;
}

Image volume_render(serve::Dataset& ds, int level, const TransferFunction& tf) {
  const FieldF f = ds.read_region(level, tiled::full_box(ds.dims(level)));
  return volume_render(f, tf);
}

Image volume_render(serve::Dataset& ds, const TransferFunction& tf) {
  return volume_render(ds, /*level=*/0, tf);
}

Image overlay_probability(const Image& base, const FieldD& prob, double threshold) {
  Image out = base;
  const Dim3 pd = prob.dims();
  const index_t w = std::min(out.width, pd.nx);
  const index_t h = std::min(out.height, pd.ny);
  for (index_t y = 0; y < h; ++y)
    for (index_t x = 0; x < w; ++x) {
      // Column-max probability — "could the isosurface pass through here?"
      double pmax = 0.0;
      for (index_t z = 0; z < pd.nz; ++z) pmax = std::max(pmax, prob.at(x, y, z));
      if (pmax < threshold) continue;
      auto& px = out.at(x, y);
      const double blend = std::min(1.0, pmax);
      px[0] = static_cast<std::uint8_t>(px[0] * (1 - blend) + 255.0 * blend);
      px[1] = static_cast<std::uint8_t>(px[1] * (1 - blend));
      px[2] = static_cast<std::uint8_t>(px[2] * (1 - blend));
    }
  return out;
}

double image_ssim(const Image& a, const Image& b) {
  MRC_REQUIRE(a.width == b.width && a.height == b.height, "image size mismatch");
  // Luminance-only SSIM via the volume SSIM machinery on a 2-D field.
  FieldF fa({a.width, a.height, 1});
  FieldF fb({a.width, a.height, 1});
  for (index_t y = 0; y < a.height; ++y)
    for (index_t x = 0; x < a.width; ++x) {
      const auto& pa = a.at(x, y);
      const auto& pb = b.at(x, y);
      fa.at(x, y, 0) = 0.299f * pa[0] + 0.587f * pa[1] + 0.114f * pa[2];
      fb.at(x, y, 0) = 0.299f * pb[0] + 0.587f * pb[1] + 0.114f * pb[2];
    }
  metrics::SsimConfig cfg;
  cfg.window = 8;
  cfg.stride = 1;
  return metrics::ssim(fa, fb, cfg);
}

void write_ppm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MRC_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << "P6\n" << img.width << ' ' << img.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.pixels.data()),
            static_cast<std::streamsize>(img.pixels.size() * 3));
  MRC_REQUIRE(out.good(), "write failed: " + path);
}

}  // namespace mrc::render
