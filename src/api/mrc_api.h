#pragma once

// mrc::api — the single public entry point of the library.
//
// One Options struct (codec choice, error-bound mode, pipeline / ROI /
// codec tuning knobs; parseable from "key=value" strings for CLIs) and four
// free functions cover the whole workflow:
//
//   api::compress / api::decompress      — one field through one codec
//   api::compress_adaptive / api::restore — the paper's full pipeline:
//       ROI extraction -> multi-resolution SZ3MR -> self-describing snapshot,
//       and back to a uniform grid.
//   api::compress_tiled / api::read_region — the brick-tiled container:
//       every brick compressed independently on the exec thread pool
//       (Options::tile / Options::threads), random-access region reads that
//       decode only intersecting bricks.
//   api::build_pyramid / api::open_dataset — the LOD pyramid + the cached
//       Dataset serving layer: the field at resolutions 1, 1/2, 1/4, ...
//       (Options::levels), served through a byte-budgeted LRU brick cache
//       (Options::cache_mb) with async neighbor prefetch (Options::prefetch)
//       and adaptive choose_level LOD selection.
//   api::compress_adaptive_roi — the adaptive multi-resolution container
//       (MRCA): every brick stored at its own level, chosen by an importance
//       map (Options::importance = halo|gradient|roi|file, Options::roi,
//       Options::coarse_level), decoded seam-free; open_dataset serves MRCA
//       streams through the same brick cache.
//   api::build_progressive — the progressive residual container (MRCR):
//       the coarsest level verbatim plus per-level residual streams, so a
//       region can be answered coarse-first and refined in place
//       (serve::wire progressive reads stream exactly those layers).
//
// Every stream these functions produce starts with the shared container
// header (compressor.h), so api::info identifies any of them — single-field
// codec streams and multi-level snapshots alike — by peeking a few header
// bytes, never by decompressing or probing codecs with exceptions.
//
//   const FieldF f = ...;
//   auto opt = api::Options::parse("codec=zfpx,eb=1e-3,eb_mode=rel");
//   const Bytes stream = api::compress(f, opt);
//   const FieldF back = api::decompress(stream);
//
// New codecs become available here (and in every CLI/bench built on this
// facade) by adding a CodecRegistry entry — no caller changes.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "adaptive/adaptive.h"
#include "compressors/registry.h"
#include "core/workflow.h"
#include "progressive/progressive.h"
#include "pyramid/pyramid.h"
#include "serve/server.h"
#include "tiled/tiled.h"

namespace mrc::api {

enum class EbMode : std::uint8_t {
  relative,  ///< `eb` is a fraction of the field's value range
  absolute,  ///< `eb` is the absolute bound itself
};

/// Unified configuration for the whole compression surface; subsumes
/// sz3mr::Config and workflow::Config plus per-codec tuning.
struct Options {
  // Codec + error bound.
  std::string codec = "interp";  ///< any registry name
  double eb = 1e-4;
  EbMode eb_mode = EbMode::relative;

  // Multi-resolution pipeline (compress_adaptive / snapshots).
  MergeKind merge = MergeKind::linear;
  bool pad = true;
  PadKind pad_kind = PadKind::linear;
  index_t min_pad_unit = 5;
  /// Per-level error-bound tightening. Unset = context default: ON for the
  /// multi-resolution pipeline (the paper's full SZ3MR), OFF for single-codec
  /// compress (plain-codec behavior). Set it to force either path.
  std::optional<bool> adaptive_eb;
  double alpha = 2.25;
  double beta = 8.0;
  std::uint32_t quant_radius = 512;
  bool postprocess = false;

  // ROI extraction (compress_adaptive).
  index_t roi_block = 16;
  double roi_fraction = 0.5;

  // Codec-specific tuning.
  index_t block_size = 0;  ///< lorenzo block edge; 0 = codec default
  bool use_regression = true;
  /// Exec-pool lanes: brick compression in compress_tiled, per-level stream
  /// compression in compress_adaptive, chunk count of the chunked codecs.
  /// 0 = hardware concurrency.
  int threads = 1;
  /// Requested entropy shards per Huffman code stream (negotiated down by
  /// stream size). > 1 writes the v7 sharded layout so one large brick's
  /// decode fans out across the pool; the default 1 keeps every stream
  /// byte-identical to the frozen v6 bytes.
  std::uint32_t entropy_shards = 1;

  // Tiled container (compress_tiled / read_region).
  index_t tile = tiled::kDefaultBrick;  ///< brick edge

  // Pyramid + Dataset serving (build_pyramid / open_dataset).
  int levels = 0;           ///< pyramid level count; 0 = auto (one-brick coarsest)
  double cache_mb = 256.0;  ///< Dataset brick-cache budget in MiB
  bool prefetch = true;     ///< Dataset async neighbor-brick warming

  // Adaptive container (compress_adaptive_roi).
  /// Importance source: "halo" (halo-finder membership), "gradient"
  /// (|∇f| ranking), "roi" (explicit box, requires `roi`), "file"
  /// (io::write_raw score field at `importance_file`).
  std::string importance = "gradient";
  std::string importance_file;   ///< importance=file: path of the score field
  /// importance=roi box, finest-grid half-open [lo, hi). Parseable as
  /// "roi=x0:y0:z0:x1:y1:z1" (':' keeps Options::parse's comma-splitting
  /// happy; ',' is also accepted when set directly, e.g. from CLI args).
  std::optional<tiled::Box> roi;
  int coarse_level = 2;          ///< level of unimportant bricks
  /// importance=halo density cut; 0 = auto (the top-0.2%-of-cells quantile,
  /// the halo-preservation bench's convention).
  double halo_threshold = 0.0;

  /// Applies one "key=value" assignment. Throws ContractError on an unknown
  /// key or unparseable value — unknown keys are rejected with the full list
  /// of valid keys, never silently ignored.
  void set(const std::string& key, const std::string& value);

  /// Parses a comma-separated "key=value,key=value" list (empty items are
  /// ignored, so trailing commas are fine).
  [[nodiscard]] static Options parse(const std::string& spec);

  /// Serializes every knob as "key=value,..."; parse(to_string())
  /// round-trips, so CLIs can echo the effective options of any run.
  [[nodiscard]] std::string to_string() const;

  /// Shorthand alias of to_string().
  [[nodiscard]] std::string str() const { return to_string(); }

  /// The knobs a codec factory understands.
  [[nodiscard]] CodecTuning tuning() const;

  /// The multi-resolution pipeline configuration.
  [[nodiscard]] sz3mr::Config pipeline() const;

  /// The tiled-container configuration (codec, tuning, tile, threads).
  [[nodiscard]] tiled::Config tiled_config() const;

  /// The pyramid-build configuration (codec, tuning, tile, threads, levels).
  [[nodiscard]] pyramid::Config pyramid_config() const;

  /// The progressive-build configuration (same knobs as the pyramid's).
  [[nodiscard]] progressive::Config progressive_config() const;

  /// The adaptive-container configuration (codec, tuning, tile, threads,
  /// pad_kind).
  [[nodiscard]] adaptive::Config adaptive_config() const;

  /// The Dataset serving configuration (cache_mb, threads, prefetch).
  [[nodiscard]] serve::Config serve_config() const;

  /// The multi-tenant serve::Server configuration — same knobs, but
  /// cache_mb budgets ONE cache shared by every dataset the server opens.
  [[nodiscard]] serve::ServerConfig server_config() const;

  /// Resolves the error bound against a concrete field.
  [[nodiscard]] double absolute_eb(const FieldF& f) const;
};

/// Compresses one field with the configured codec.
[[nodiscard]] Bytes compress(const FieldF& f, const Options& opt = {});

/// Reconstructs a uniform field from any stream this facade produces: codec
/// streams decode through the registry (magic-peek dispatch), snapshots are
/// restored to the uniform grid. Throws CodecError on foreign data.
[[nodiscard]] FieldF decompress(std::span<const std::byte> stream);

/// The paper's full workflow: ROI-based adaptive conversion + per-level
/// SZ3MR compression, returned as one self-describing snapshot stream. The
/// pipeline is interp-based; a different `opt.codec` is rejected with
/// ContractError rather than silently ignored.
[[nodiscard]] Bytes compress_adaptive(const FieldF& uniform, const Options& opt = {});

/// Decodes a snapshot back to its multi-resolution form.
[[nodiscard]] MultiResField restore_adaptive(std::span<const std::byte> snapshot);

/// Decodes a snapshot and reconstructs the uniform fine-resolution grid.
[[nodiscard]] FieldF restore(std::span<const std::byte> snapshot);

/// Compresses `f` into the brick-tiled container: `opt.tile`-edge bricks
/// (+1-sample overlap), each compressed independently with `opt.codec` on a
/// pool of `opt.threads` lanes. The stream supports parallel decompression
/// and random-access region reads, and is byte-identical for any thread
/// count.
[[nodiscard]] Bytes compress_tiled(const FieldF& f, const Options& opt = {});

/// Reads `region` out of a tiled stream, decoding only the bricks that
/// intersect it — bit-identical to the same window of a full decompress.
/// threads = 0 means hardware concurrency.
[[nodiscard]] FieldF read_region(std::span<const std::byte> stream,
                                 const tiled::Box& region, int threads = 1);

/// Builds the LOD pyramid container: `f` at resolutions 1, 1/2, 1/4, ...
/// (`opt.levels` levels; 0 = auto until the coarsest level fits one brick),
/// every level a brick-tiled stream compressed in parallel with `opt.codec`.
[[nodiscard]] Bytes build_pyramid(const FieldF& f, const Options& opt = {});

/// Builds the progressive residual container (MRCR): the restrict_half
/// chain of `f` (`opt.levels` levels; 0 = auto until the coarsest fits one
/// brick) stored as the coarsest level verbatim plus one residual stream
/// per finer level, each brick-tiled and compressed with `opt.codec` under
/// the same absolute bound. Reconstruction is strictly top-down and
/// bit-deterministic; the per-level error bound telescopes (see
/// progressive/progressive.h). open_dataset and serve::Server serve MRCR
/// streams, including coarse-first progressive wire reads.
[[nodiscard]] Bytes build_progressive(const FieldF& f, const Options& opt = {});

/// Builds the adaptive multi-resolution container (MRCA): bricks the
/// importance map marks as interesting stay at full resolution (level 0,
/// byte-identical to the tiled container), the rest drop to
/// `opt.coarse_level`. The importance map comes from `opt.importance`:
/// "halo" runs the halo finder on `f` itself, "gradient"/"file" keep the
/// top `opt.roi_fraction` of bricks by score, "roi" pins `opt.roi`.
/// Decoding (api::decompress / adaptive::read_region / open_dataset) is
/// seam-free across level boundaries.
[[nodiscard]] Bytes compress_adaptive_roi(const FieldF& f, const Options& opt = {});

/// Opens a tiled (MRCT), pyramid (MRCP), adaptive (MRCA) or progressive
/// (MRCR) stream — taking ownership of the bytes — as a cached serving
/// Dataset: region reads through a `opt.cache_mb` LRU brick cache with
/// async prefetch, plus choose_level adaptive LOD (pyramids and
/// progressive streams; tiled and adaptive streams serve level 0 — for
/// adaptive that is the seam-free mixed-resolution reconstruction). To
/// serve many streams from one process behind one shared cache, construct
/// a serve::Server (Options::server_config()) instead and Server::open
/// each stream.
[[nodiscard]] serve::Dataset open_dataset(Bytes stream, const Options& opt = {});

/// What a stream is, from its container header alone (no decompression).
struct StreamInfo {
  enum class Kind : std::uint8_t {
    field, level, snapshot, tiled, pyramid, adaptive, progressive
  };
  Kind kind = Kind::field;
  std::string codec;  ///< registry name ("snapshot"/"sz3mr" for those kinds;
                      ///< the per-brick codec for tiled/pyramid/adaptive streams)
  unsigned version = 0;
  /// Entropy-layout minor version of the container header: the shard count
  /// each Huffman code stream was split into (1 = frozen monolithic v6
  /// layout; containers of bricks report the outer header, their per-brick
  /// streams carry their own).
  std::uint32_t entropy_shards = 1;
  Dim3 dims;          ///< field extents (snapshot/pyramid: finest-grid extents)
  double eb = 0.0;    ///< absolute error bound the stream was encoded under
  /// snapshot/pyramid/progressive level count; adaptive streams report 1 +
  /// the maximum per-brick level (1 otherwise).
  std::size_t levels = 1;
  std::size_t stream_bytes = 0;

  // Tile geometry (tiled/adaptive streams; pyramids report level 0's brick).
  index_t brick = 0;    ///< core brick edge
  index_t overlap = 0;  ///< overlap samples per high face
  Dim3 tile_grid;       ///< tile counts per axis
  std::size_t tiles = 0;

  /// Full pyramid level table (extents, compressed bytes, value range, LOD
  /// error bound), finest first — what `mrcc info` prints so adaptive/LOD
  /// decisions are inspectable without decoding anything.
  struct LevelMeta {
    Dim3 dims;
    std::uint64_t bytes = 0;
    float vmin = 0.0f;
    float vmax = 0.0f;
    float approx_err = 0.0f;
  };
  std::vector<LevelMeta> level_meta;  ///< pyramid/progressive streams, finest first
};

/// Identifies any mrcomp stream by its header. Throws CodecError on foreign
/// or truncated data.
[[nodiscard]] StreamInfo info(std::span<const std::byte> stream);

}  // namespace mrc::api
