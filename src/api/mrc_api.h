#pragma once

// mrc::api — the single public entry point of the library.
//
// One Options struct (codec choice, error-bound mode, pipeline / ROI /
// codec tuning knobs; parseable from "key=value" strings for CLIs) and four
// free functions cover the whole workflow:
//
//   api::compress / api::decompress      — one field through one codec
//   api::compress_adaptive / api::restore — the paper's full pipeline:
//       ROI extraction -> multi-resolution SZ3MR -> self-describing snapshot,
//       and back to a uniform grid.
//
// Every stream these functions produce starts with the shared container
// header (compressor.h), so api::info identifies any of them — single-field
// codec streams and multi-level snapshots alike — by peeking a few header
// bytes, never by decompressing or probing codecs with exceptions.
//
//   const FieldF f = ...;
//   auto opt = api::Options::parse("codec=zfpx,eb=1e-3,eb_mode=rel");
//   const Bytes stream = api::compress(f, opt);
//   const FieldF back = api::decompress(stream);
//
// New codecs become available here (and in every CLI/bench built on this
// facade) by adding a CodecRegistry entry — no caller changes.

#include <optional>
#include <span>
#include <string>

#include "compressors/registry.h"
#include "core/workflow.h"

namespace mrc::api {

enum class EbMode : std::uint8_t {
  relative,  ///< `eb` is a fraction of the field's value range
  absolute,  ///< `eb` is the absolute bound itself
};

/// Unified configuration for the whole compression surface; subsumes
/// sz3mr::Config and workflow::Config plus per-codec tuning.
struct Options {
  // Codec + error bound.
  std::string codec = "interp";  ///< any registry name
  double eb = 1e-4;
  EbMode eb_mode = EbMode::relative;

  // Multi-resolution pipeline (compress_adaptive / snapshots).
  MergeKind merge = MergeKind::linear;
  bool pad = true;
  PadKind pad_kind = PadKind::linear;
  index_t min_pad_unit = 5;
  /// Per-level error-bound tightening. Unset = context default: ON for the
  /// multi-resolution pipeline (the paper's full SZ3MR), OFF for single-codec
  /// compress (plain-codec behavior). Set it to force either path.
  std::optional<bool> adaptive_eb;
  double alpha = 2.25;
  double beta = 8.0;
  std::uint32_t quant_radius = 512;
  bool postprocess = false;

  // ROI extraction (compress_adaptive).
  index_t roi_block = 16;
  double roi_fraction = 0.5;

  // Codec-specific tuning.
  index_t block_size = 0;  ///< lorenzo block edge; 0 = codec default
  bool use_regression = true;
  int threads = 1;

  /// Applies one "key=value" assignment. Throws ContractError on an unknown
  /// key or unparseable value.
  void set(const std::string& key, const std::string& value);

  /// Parses a comma-separated "key=value,key=value" list (empty items are
  /// ignored, so trailing commas are fine).
  [[nodiscard]] static Options parse(const std::string& spec);

  /// Serializes every knob as "key=value,..."; parse(str()) round-trips.
  [[nodiscard]] std::string str() const;

  /// The knobs a codec factory understands.
  [[nodiscard]] CodecTuning tuning() const;

  /// The multi-resolution pipeline configuration.
  [[nodiscard]] sz3mr::Config pipeline() const;

  /// Resolves the error bound against a concrete field.
  [[nodiscard]] double absolute_eb(const FieldF& f) const;
};

/// Compresses one field with the configured codec.
[[nodiscard]] Bytes compress(const FieldF& f, const Options& opt = {});

/// Reconstructs a uniform field from any stream this facade produces: codec
/// streams decode through the registry (magic-peek dispatch), snapshots are
/// restored to the uniform grid. Throws CodecError on foreign data.
[[nodiscard]] FieldF decompress(std::span<const std::byte> stream);

/// The paper's full workflow: ROI-based adaptive conversion + per-level
/// SZ3MR compression, returned as one self-describing snapshot stream. The
/// pipeline is interp-based; a different `opt.codec` is rejected with
/// ContractError rather than silently ignored.
[[nodiscard]] Bytes compress_adaptive(const FieldF& uniform, const Options& opt = {});

/// Decodes a snapshot back to its multi-resolution form.
[[nodiscard]] MultiResField restore_adaptive(std::span<const std::byte> snapshot);

/// Decodes a snapshot and reconstructs the uniform fine-resolution grid.
[[nodiscard]] FieldF restore(std::span<const std::byte> snapshot);

/// What a stream is, from its container header alone (no decompression).
struct StreamInfo {
  enum class Kind : std::uint8_t { field, level, snapshot };
  Kind kind = Kind::field;
  std::string codec;  ///< registry name, or "sz3mr"/"snapshot" stream kinds
  unsigned version = 0;
  Dim3 dims;          ///< field extents (snapshot: finest-grid extents)
  double eb = 0.0;    ///< absolute error bound the stream was encoded under
  std::size_t levels = 1;       ///< snapshot level count (1 otherwise)
  std::size_t stream_bytes = 0;
};

/// Identifies any mrcomp stream by its header. Throws CodecError on foreign
/// or truncated data.
[[nodiscard]] StreamInfo info(std::span<const std::byte> stream);

}  // namespace mrc::api
