#include "api/mrc_api.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exec/thread_pool.h"
#include "io/raw_io.h"
#include "lossless/quant_codec.h"
#include "obs/obs.h"
#include "roi/roi_extract.h"
#include "serve/server.h"

namespace mrc::api {

namespace {

bool parse_bool(const std::string& key, const std::string& v) {
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  throw ContractError("options: bad boolean for '" + key + "': " + v);
}

double parse_double(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end != v.c_str() + v.size() || v.empty())
    throw ContractError("options: bad number for '" + key + "': " + v);
  return d;
}

index_t parse_index(const std::string& key, const std::string& v, index_t min_value) {
  const double d = parse_double(key, v);
  // Range-check before the cast: double -> int64 of an out-of-range value
  // (e.g. 1e300) is undefined behavior, not merely a wrong number.
  if (!(d >= -9.2e18 && d <= 9.2e18))
    throw ContractError("options: bad integer for '" + key + "': " + v);
  const auto i = static_cast<index_t>(d);
  if (static_cast<double>(i) != d || i < min_value)
    throw ContractError("options: bad integer for '" + key + "': " + v);
  return i;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* merge_str(MergeKind m) {
  switch (m) {
    case MergeKind::linear: return "linear";
    case MergeKind::stack: return "stack";
    default: return "tac";
  }
}

const char* pad_kind_str(PadKind p) {
  switch (p) {
    case PadKind::constant: return "constant";
    case PadKind::linear: return "linear";
    default: return "quadratic";
  }
}

/// Parses "x0:y0:z0:x1:y1:z1" (':' or ',' separated) into a box.
tiled::Box parse_box(const std::string& key, const std::string& v) {
  std::array<index_t, 6> c{};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t sep =
        i + 1 < 6 ? std::min(v.find(':', pos), v.find(',', pos)) : std::string::npos;
    const std::string item =
        v.substr(pos, (sep == std::string::npos ? v.size() : sep) - pos);
    c[i] = parse_index(key, item, 0);
    if (i + 1 < 6) {
      if (sep == std::string::npos)
        throw ContractError("options: " + key + " needs x0:y0:z0:x1:y1:z1, got " + v);
      pos = sep + 1;
    }
  }
  return {{c[0], c[1], c[2]}, {c[3], c[4], c[5]}};
}

}  // namespace

void Options::set(const std::string& key, const std::string& value) {
  if (key == "codec") {
    codec = value;
  } else if (key == "eb") {
    eb = parse_double(key, value);
    if (!(eb > 0.0)) throw ContractError("options: eb must be > 0, got " + value);
  } else if (key == "eb_mode") {
    if (value == "rel" || value == "relative")
      eb_mode = EbMode::relative;
    else if (value == "abs" || value == "absolute")
      eb_mode = EbMode::absolute;
    else
      throw ContractError("options: eb_mode must be rel|abs, got " + value);
  } else if (key == "merge") {
    if (value == "linear")
      merge = MergeKind::linear;
    else if (value == "stack")
      merge = MergeKind::stack;
    else if (value == "tac")
      merge = MergeKind::tac;
    else
      throw ContractError("options: merge must be linear|stack|tac, got " + value);
  } else if (key == "pad") {
    pad = parse_bool(key, value);
  } else if (key == "pad_kind") {
    if (value == "constant")
      pad_kind = PadKind::constant;
    else if (value == "linear")
      pad_kind = PadKind::linear;
    else if (value == "quadratic")
      pad_kind = PadKind::quadratic;
    else
      throw ContractError("options: pad_kind must be constant|linear|quadratic, got " +
                          value);
  } else if (key == "min_pad_unit") {
    min_pad_unit = parse_index(key, value, 1);
  } else if (key == "adaptive_eb") {
    adaptive_eb = parse_bool(key, value);
  } else if (key == "alpha") {
    alpha = parse_double(key, value);
    if (!(alpha > 0.0)) throw ContractError("options: alpha must be > 0, got " + value);
  } else if (key == "beta") {
    beta = parse_double(key, value);
    if (!(beta > 0.0)) throw ContractError("options: beta must be > 0, got " + value);
  } else if (key == "quant_radius") {
    quant_radius = static_cast<std::uint32_t>(parse_index(key, value, 1));
  } else if (key == "postprocess") {
    postprocess = parse_bool(key, value);
  } else if (key == "roi_block") {
    roi_block = parse_index(key, value, 1);
  } else if (key == "roi_fraction") {
    roi_fraction = parse_double(key, value);
    // Negated range check so NaN is rejected too.
    if (!(roi_fraction >= 0.0 && roi_fraction <= 1.0))
      throw ContractError("options: roi_fraction must be in [0,1], got " + value);
  } else if (key == "block_size") {
    block_size = parse_index(key, value, 0);
  } else if (key == "use_regression") {
    use_regression = parse_bool(key, value);
  } else if (key == "threads") {
    threads = static_cast<int>(parse_index(key, value, 0));  // 0 = hardware
  } else if (key == "entropy_shards") {
    entropy_shards = static_cast<std::uint32_t>(parse_index(key, value, 1));
    if (entropy_shards > lossless::kMaxEntropyShards)
      throw ContractError("options: entropy_shards must be <= " +
                          std::to_string(lossless::kMaxEntropyShards) + ", got " + value);
  } else if (key == "tile") {
    tile = parse_index(key, value, 1);
  } else if (key == "levels") {
    levels = static_cast<int>(parse_index(key, value, 0));  // 0 = auto
    if (levels > pyramid::kMaxLevels)
      throw ContractError("options: levels must be <= " +
                          std::to_string(pyramid::kMaxLevels) + ", got " + value);
  } else if (key == "cache_mb") {
    cache_mb = parse_double(key, value);
    if (!(cache_mb > 0.0))
      throw ContractError("options: cache_mb must be > 0, got " + value);
  } else if (key == "prefetch") {
    prefetch = parse_bool(key, value);
  } else if (key == "importance") {
    if (value != "halo" && value != "gradient" && value != "roi" && value != "file")
      throw ContractError("options: importance must be halo|gradient|roi|file, got " +
                          value);
    importance = value;
  } else if (key == "importance_file") {
    importance_file = value;
  } else if (key == "roi") {
    roi = parse_box(key, value);
  } else if (key == "coarse_level") {
    coarse_level = static_cast<int>(parse_index(key, value, 0));
    if (coarse_level >= adaptive::kMaxLevels)
      throw ContractError("options: coarse_level must be < " +
                          std::to_string(adaptive::kMaxLevels) + ", got " + value);
  } else if (key == "halo_threshold") {
    halo_threshold = parse_double(key, value);
    if (!(halo_threshold >= 0.0))
      throw ContractError("options: halo_threshold must be >= 0, got " + value);
  } else {
    throw ContractError(
        "options: unknown key '" + key +
        "' (known: codec eb eb_mode merge pad pad_kind min_pad_unit adaptive_eb alpha "
        "beta quant_radius postprocess roi_block roi_fraction block_size "
        "use_regression threads entropy_shards tile levels cache_mb prefetch "
        "importance importance_file roi coarse_level halo_threshold)");
  }
}

Options Options::parse(const std::string& spec) {
  Options o;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw ContractError("options: expected key=value, got '" + item + "'");
    o.set(item.substr(0, eq), item.substr(eq + 1));
  }
  return o;
}

std::string Options::to_string() const {
  std::string s;
  s += "codec=" + codec;
  s += ",eb=" + fmt_double(eb);
  s += std::string(",eb_mode=") + (eb_mode == EbMode::relative ? "rel" : "abs");
  s += std::string(",merge=") + merge_str(merge);
  s += std::string(",pad=") + (pad ? "1" : "0");
  s += std::string(",pad_kind=") + pad_kind_str(pad_kind);
  s += ",min_pad_unit=" + std::to_string(min_pad_unit);
  if (adaptive_eb.has_value())
    s += std::string(",adaptive_eb=") + (*adaptive_eb ? "1" : "0");
  s += ",alpha=" + fmt_double(alpha);
  s += ",beta=" + fmt_double(beta);
  s += ",quant_radius=" + std::to_string(quant_radius);
  s += std::string(",postprocess=") + (postprocess ? "1" : "0");
  s += ",roi_block=" + std::to_string(roi_block);
  s += ",roi_fraction=" + fmt_double(roi_fraction);
  s += ",block_size=" + std::to_string(block_size);
  s += std::string(",use_regression=") + (use_regression ? "1" : "0");
  s += ",threads=" + std::to_string(threads);
  s += ",entropy_shards=" + std::to_string(entropy_shards);
  s += ",tile=" + std::to_string(tile);
  s += ",levels=" + std::to_string(levels);
  s += ",cache_mb=" + fmt_double(cache_mb);
  s += std::string(",prefetch=") + (prefetch ? "1" : "0");
  s += ",importance=" + importance;
  if (!importance_file.empty()) s += ",importance_file=" + importance_file;
  if (roi.has_value())
    s += ",roi=" + std::to_string(roi->lo.x) + ":" + std::to_string(roi->lo.y) + ":" +
         std::to_string(roi->lo.z) + ":" + std::to_string(roi->hi.x) + ":" +
         std::to_string(roi->hi.y) + ":" + std::to_string(roi->hi.z);
  s += ",coarse_level=" + std::to_string(coarse_level);
  s += ",halo_threshold=" + fmt_double(halo_threshold);
  return s;
}

CodecTuning Options::tuning() const {
  CodecTuning t;
  t.quant_radius = quant_radius;
  t.adaptive_eb = adaptive_eb.value_or(false);  // plain-codec default
  t.alpha = alpha;
  t.beta = beta;
  t.block_size = block_size;
  t.use_regression = use_regression;
  // Codec chunk counts need a concrete width; 0 resolves to the hardware.
  t.threads = threads == 0 ? exec::hardware_threads() : threads;
  t.entropy_shards = entropy_shards;
  return t;
}

sz3mr::Config Options::pipeline() const {
  sz3mr::Config c;
  c.merge = merge;
  c.pad = pad;
  c.pad_kind = pad_kind;
  c.min_pad_unit = min_pad_unit;
  c.adaptive_eb = adaptive_eb.value_or(true);  // the paper's full SZ3MR
  c.alpha = alpha;
  c.beta = beta;
  c.quant_radius = quant_radius;
  c.postprocess = postprocess;
  c.threads = threads;
  return c;
}

tiled::Config Options::tiled_config() const {
  tiled::Config c;
  c.codec = codec;
  c.tuning = tuning();
  c.brick = tile;
  c.threads = threads;
  return c;
}

pyramid::Config Options::pyramid_config() const {
  pyramid::Config c;
  c.codec = codec;
  c.tuning = tuning();
  c.brick = tile;
  c.threads = threads;
  c.levels = levels;
  return c;
}

progressive::Config Options::progressive_config() const {
  progressive::Config c;
  c.codec = codec;
  c.tuning = tuning();
  c.brick = tile;
  c.threads = threads;
  c.levels = levels;
  return c;
}

adaptive::Config Options::adaptive_config() const {
  adaptive::Config c;
  c.codec = codec;
  c.tuning = tuning();
  c.brick = tile;
  c.threads = threads;
  c.pad_kind = pad_kind;
  return c;
}

serve::Config Options::serve_config() const {
  // The field is public, so a caller can bypass set()'s check; a negative
  // budget must fail here, not hit a float->size_t cast (UB when negative).
  MRC_REQUIRE(cache_mb > 0.0, "options: cache_mb must be > 0");
  serve::Config c;
  c.cache_bytes = static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
  c.threads = threads;
  c.prefetch = prefetch;
  return c;
}

serve::ServerConfig Options::server_config() const {
  MRC_REQUIRE(cache_mb > 0.0, "options: cache_mb must be > 0");
  serve::ServerConfig c;
  c.cache_bytes = static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
  c.threads = threads;
  c.prefetch = prefetch;
  return c;
}

double Options::absolute_eb(const FieldF& f) const {
  if (eb_mode == EbMode::absolute) return eb;
  const double range = f.value_range();
  // A constant field has zero range; any positive bound is exact then.
  return eb * (range > 0.0 ? range : 1.0);
}

Bytes compress(const FieldF& f, const Options& opt) {
  OBS_SPAN("api.compress");
  const auto codec = registry().make(opt.codec, opt.tuning());
  return codec->compress(f, opt.absolute_eb(f));
}

FieldF decompress(std::span<const std::byte> stream) {
  OBS_SPAN("api.decompress");
  const StreamHeader h = peek_header(stream);
  if (h.codec_magic == workflow::kSnapshotMagic) return restore(stream);
  if (h.codec_magic == tiled::kTiledMagic)
    // Single lane, like every other facade default — callers that want the
    // parallel decode pass threads to tiled::decompress / api::read_region.
    return tiled::decompress(stream, /*threads=*/1);
  if (h.codec_magic == pyramid::kPyramidMagic)
    // The uniform reconstruction of a pyramid is its finest level.
    return pyramid::decompress_level(stream, /*level=*/0, /*threads=*/1);
  if (h.codec_magic == adaptive::kAdaptiveMagic)
    // The seam-free blended finest grid of the adaptive container.
    return adaptive::decompress(stream, /*threads=*/1);
  if (h.codec_magic == progressive::kProgressiveMagic)
    // The uniform reconstruction of a residual pyramid is its finest level.
    return progressive::decompress_level(stream, /*level=*/0, /*threads=*/1);
  if (h.codec_magic == sz3mr::kLevelMagic)
    // A bare level stream decodes to its level grid (zeros outside the mask).
    return sz3mr::decompress_level(stream).data;
  return registry().make_for_magic(h.codec_magic)->decompress(stream);
}

Bytes compress_adaptive(const FieldF& uniform, const Options& opt) {
  // The multi-resolution pipeline is interp-based (paper §III-A); honoring
  // other codecs here is future work, so reject rather than silently ignore.
  MRC_REQUIRE(opt.codec == "interp",
              "compress_adaptive: the multi-resolution pipeline supports only "
              "codec=interp, got codec=" + opt.codec);
  const auto adaptive = roi::extract_adaptive(uniform, opt.roi_block, opt.roi_fraction);
  return workflow::encode_snapshot(adaptive, opt.absolute_eb(uniform), opt.pipeline());
}

MultiResField restore_adaptive(std::span<const std::byte> snapshot) {
  return workflow::decode_snapshot(snapshot);
}

FieldF restore(std::span<const std::byte> snapshot) {
  return workflow::decode_snapshot(snapshot).reconstruct_uniform();
}

Bytes compress_tiled(const FieldF& f, const Options& opt) {
  return tiled::compress(f, opt.absolute_eb(f), opt.tiled_config());
}

FieldF read_region(std::span<const std::byte> stream, const tiled::Box& region,
                   int threads) {
  return tiled::read_region(stream, region, threads).data;
}

Bytes build_pyramid(const FieldF& f, const Options& opt) {
  return pyramid::build(f, opt.absolute_eb(f), opt.pyramid_config());
}

Bytes build_progressive(const FieldF& f, const Options& opt) {
  return progressive::build(f, opt.absolute_eb(f), opt.progressive_config());
}

Bytes compress_adaptive_roi(const FieldF& f, const Options& opt) {
  const index_t brick = opt.tile;
  adaptive::LevelMap map;
  if (opt.importance == "halo") {
    const float thr = opt.halo_threshold > 0.0
                          ? static_cast<float>(opt.halo_threshold)
                          : roi::top_value_quantile(f.span(), 0.002);
    map = adaptive::map_from_halos(f, brick, thr, /*min_cells=*/8, opt.coarse_level);
  } else if (opt.importance == "gradient") {
    map = adaptive::map_from_gradient(f, brick, opt.roi_fraction, opt.coarse_level);
  } else if (opt.importance == "roi") {
    MRC_REQUIRE(opt.roi.has_value(),
                "compress_adaptive_roi: importance=roi needs roi=x0:y0:z0:x1:y1:z1");
    const tiled::Box box = *opt.roi;
    map = adaptive::map_from_boxes(f.dims(), brick, {&box, 1}, opt.coarse_level);
  } else if (opt.importance == "file") {
    MRC_REQUIRE(!opt.importance_file.empty(),
                "compress_adaptive_roi: importance=file needs importance_file=<path>");
    const FieldF score = io::read_raw(opt.importance_file);
    MRC_REQUIRE(score.dims() == f.dims(),
                "compress_adaptive_roi: importance field is " + score.dims().str() +
                    ", data is " + f.dims().str());
    map = adaptive::map_from_field(score, brick, opt.roi_fraction, opt.coarse_level);
  } else {
    throw ContractError("compress_adaptive_roi: importance must be "
                        "halo|gradient|roi|file, got " + opt.importance);
  }
  return adaptive::compress(f, opt.absolute_eb(f), map, opt.adaptive_config());
}

serve::Dataset open_dataset(Bytes stream, const Options& opt) {
  return serve::Dataset(std::move(stream), opt.serve_config());
}

StreamInfo info(std::span<const std::byte> stream) {
  const StreamHeader h = peek_header(stream);
  StreamInfo out;
  out.version = h.version;
  out.entropy_shards = h.entropy_shards;
  out.dims = h.dims;
  out.eb = h.eb;
  out.stream_bytes = stream.size();
  if (h.codec_magic == workflow::kSnapshotMagic) {
    out.kind = StreamInfo::Kind::snapshot;
    out.codec = "snapshot";
    ByteReader r(stream.subspan(h.header_bytes));
    (void)r.get_varint();  // block size
    out.levels = static_cast<std::size_t>(r.get_varint());
  } else if (h.codec_magic == tiled::kTiledMagic) {
    // O(1) preamble peek — the per-tile records are not walked here.
    const tiled::Index idx = tiled::read_geometry(stream);
    out.kind = StreamInfo::Kind::tiled;
    out.codec = idx.codec;
    out.brick = idx.brick;
    out.overlap = idx.overlap;
    out.tile_grid = idx.grid;
    out.tiles = static_cast<std::size_t>(idx.grid.size());
  } else if (h.codec_magic == pyramid::kPyramidMagic) {
    // O(levels) table peek — no nested tile index is walked here.
    const pyramid::Index idx = pyramid::read_geometry(stream);
    out.kind = StreamInfo::Kind::pyramid;
    out.codec = idx.codec;
    out.brick = idx.brick;
    out.levels = idx.levels.size();
    out.level_meta.reserve(idx.levels.size());
    for (const auto& e : idx.levels)
      out.level_meta.push_back({e.dims, e.length, e.vmin, e.vmax, e.approx_err});
  } else if (h.codec_magic == adaptive::kAdaptiveMagic) {
    // O(1) preamble peek — the per-brick records are not walked here.
    const adaptive::Index idx = adaptive::read_geometry(stream);
    out.kind = StreamInfo::Kind::adaptive;
    out.codec = idx.codec;
    out.brick = idx.brick;
    out.overlap = idx.overlap;
    out.tile_grid = idx.grid;
    out.tiles = static_cast<std::size_t>(idx.grid.size());
    out.levels = static_cast<std::size_t>(idx.n_levels);
  } else if (h.codec_magic == progressive::kProgressiveMagic) {
    // O(levels) table peek — no nested tile index is walked here.
    const progressive::Index idx = progressive::read_geometry(stream);
    out.kind = StreamInfo::Kind::progressive;
    out.codec = idx.codec;
    out.brick = idx.brick;
    out.levels = idx.levels.size();
    out.level_meta.reserve(idx.levels.size());
    for (const auto& e : idx.levels)
      out.level_meta.push_back({e.dims, e.length, e.vmin, e.vmax, e.approx_err});
  } else if (h.codec_magic == sz3mr::kLevelMagic) {
    out.kind = StreamInfo::Kind::level;
    out.codec = "sz3mr";
  } else if (const auto* entry = registry().find_magic(h.codec_magic)) {
    out.kind = StreamInfo::Kind::field;
    out.codec = entry->name;
  } else {
    throw CodecError("stream written by an unregistered codec");
  }
  return out;
}

}  // namespace mrc::api
