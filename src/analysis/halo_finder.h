#pragma once

// Density-threshold halo finder for the Nyx post-analysis story.
//
// The paper's §III (Fig. 4) motivates ROI extraction with "the Halo-finder
// analysis of Nyx", and §V lists preserving halo-finder quality under the
// workflow as future work. This module implements the classic
// over-density-threshold finder (connected components of cells above a
// density threshold, 6-connectivity — the grid analog of spherical
// over-density finders [Davis et al. 1985]) plus catalog matching, so
// compression settings can be validated against the analysis that actually
// consumes the data (bench_halo_preservation).

#include <vector>

#include "grid/field.h"

namespace mrc::analysis {

struct Halo {
  index_t cells = 0;       ///< cell count of the connected component
  double total_mass = 0.0; ///< sum of density over the component
  Coord3 peak;             ///< location of the densest cell
  float peak_value = 0.0f;
};

struct HaloCatalog {
  std::vector<Halo> halos;           ///< sorted by total_mass, descending
  index_t cells_above_threshold = 0;

  [[nodiscard]] std::size_t count() const { return halos.size(); }
  [[nodiscard]] double total_mass() const;
};

/// Connected components (6-connectivity) of {density >= threshold};
/// components smaller than min_cells are discarded as noise.
[[nodiscard]] HaloCatalog find_halos(const FieldF& density, float threshold,
                                     index_t min_cells = 8);

/// Per-cell membership mask of the kept halos: 1 exactly on the cells of the
/// components find_halos would report (same threshold / min_cells semantics),
/// 0 elsewhere. This is the importance signal the adaptive container's
/// halo-driven level assignment consumes.
[[nodiscard]] MaskField halo_mask(const FieldF& density, float threshold,
                                  index_t min_cells = 8);

/// Catalog match: a reference halo is matched if some test halo's peak lies
/// within `match_distance` cells and the total masses agree within
/// `mass_rel_tol`.
struct HaloComparison {
  std::size_t n_reference = 0;
  std::size_t n_test = 0;
  std::size_t matched = 0;
  double mean_mass_rel_err = 0.0;  ///< over matched pairs
  double max_mass_rel_err = 0.0;

  [[nodiscard]] double match_rate() const {
    return n_reference == 0 ? 1.0
                            : static_cast<double>(matched) /
                                  static_cast<double>(n_reference);
  }
};

[[nodiscard]] HaloComparison compare_catalogs(const HaloCatalog& reference,
                                              const HaloCatalog& test,
                                              double match_distance = 4.0,
                                              double mass_rel_tol = 0.2);

}  // namespace mrc::analysis
