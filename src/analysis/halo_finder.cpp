#include "analysis/halo_finder.h"

#include <algorithm>
#include <cmath>

namespace mrc::analysis {

double HaloCatalog::total_mass() const {
  double m = 0.0;
  for (const auto& h : halos) m += h.total_mass;
  return m;
}

namespace {

/// Shared component sweep of find_halos / halo_mask: floods every
/// above-threshold component once and hands the kept ones (and their cell
/// lists) to the caller.
HaloCatalog sweep_components(const FieldF& density, float threshold, index_t min_cells,
                             MaskField* mask) {
  const Dim3 d = density.dims();
  HaloCatalog catalog;
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(d.size()), 0);
  std::vector<index_t> stack;
  std::vector<index_t> cells;  // current component, for the mask

  for (index_t seed = 0; seed < d.size(); ++seed) {
    if (visited[static_cast<std::size_t>(seed)] || density[seed] < threshold) continue;

    Halo halo;
    stack.clear();
    cells.clear();
    stack.push_back(seed);
    visited[static_cast<std::size_t>(seed)] = 1;
    while (!stack.empty()) {
      const index_t idx = stack.back();
      stack.pop_back();
      ++halo.cells;
      halo.total_mass += density[idx];
      if (mask != nullptr) cells.push_back(idx);
      const index_t x = idx % d.nx;
      const index_t y = (idx / d.nx) % d.ny;
      const index_t z = idx / (d.nx * d.ny);
      if (density[idx] > halo.peak_value) {
        halo.peak_value = density[idx];
        halo.peak = {x, y, z};
      }
      const index_t nbrs[6][3] = {{x - 1, y, z}, {x + 1, y, z}, {x, y - 1, z},
                                  {x, y + 1, z}, {x, y, z - 1}, {x, y, z + 1}};
      for (const auto& nb : nbrs) {
        if (!d.contains(nb[0], nb[1], nb[2])) continue;
        const index_t nidx = d.index(nb[0], nb[1], nb[2]);
        if (visited[static_cast<std::size_t>(nidx)] || density[nidx] < threshold)
          continue;
        visited[static_cast<std::size_t>(nidx)] = 1;
        stack.push_back(nidx);
      }
    }
    catalog.cells_above_threshold += halo.cells;
    if (halo.cells >= min_cells) {
      catalog.halos.push_back(halo);
      if (mask != nullptr)
        for (const index_t idx : cells) (*mask)[idx] = 1;
    }
  }

  std::sort(catalog.halos.begin(), catalog.halos.end(),
            [](const Halo& a, const Halo& b) { return a.total_mass > b.total_mass; });
  return catalog;
}

}  // namespace

HaloCatalog find_halos(const FieldF& density, float threshold, index_t min_cells) {
  return sweep_components(density, threshold, min_cells, nullptr);
}

MaskField halo_mask(const FieldF& density, float threshold, index_t min_cells) {
  MaskField mask(density.dims(), 0);
  (void)sweep_components(density, threshold, min_cells, &mask);
  return mask;
}

HaloComparison compare_catalogs(const HaloCatalog& reference, const HaloCatalog& test,
                                double match_distance, double mass_rel_tol) {
  HaloComparison c;
  c.n_reference = reference.count();
  c.n_test = test.count();
  std::vector<bool> used(test.count(), false);

  for (const Halo& ref : reference.halos) {
    double best_dist = match_distance;
    std::ptrdiff_t best = -1;
    for (std::size_t t = 0; t < test.halos.size(); ++t) {
      if (used[t]) continue;
      const Halo& cand = test.halos[t];
      const double dx = static_cast<double>(cand.peak.x - ref.peak.x);
      const double dy = static_cast<double>(cand.peak.y - ref.peak.y);
      const double dz = static_cast<double>(cand.peak.z - ref.peak.z);
      const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
      const double mass_err =
          std::abs(cand.total_mass - ref.total_mass) / std::max(ref.total_mass, 1e-30);
      if (dist <= best_dist && mass_err <= mass_rel_tol) {
        best_dist = dist;
        best = static_cast<std::ptrdiff_t>(t);
      }
    }
    if (best >= 0) {
      used[static_cast<std::size_t>(best)] = true;
      ++c.matched;
      const double mass_err =
          std::abs(test.halos[static_cast<std::size_t>(best)].total_mass - ref.total_mass) /
          std::max(ref.total_mass, 1e-30);
      c.mean_mass_rel_err += mass_err;
      c.max_mass_rel_err = std::max(c.max_mass_rel_err, mass_err);
    }
  }
  if (c.matched > 0) c.mean_mass_rel_err /= static_cast<double>(c.matched);
  return c;
}

}  // namespace mrc::analysis
