#include "compressors/compressor.h"

#include <cmath>

#include "lossless/quant_codec.h"

namespace mrc {

namespace {
// First container version whose shared header carries the entropy shard
// count (detail::kContainerVersionSharded; local alias keeps parse_header
// readable).
constexpr unsigned kSharedHeaderShardVersion = detail::kContainerVersionSharded;
}  // namespace

double compression_ratio(index_t n_values, std::size_t compressed_bytes) {
  MRC_REQUIRE(compressed_bytes > 0, "empty compressed stream");
  return static_cast<double>(n_values) * sizeof(float) /
         static_cast<double>(compressed_bytes);
}

RoundTrip round_trip(const Compressor& c, const FieldF& f, double abs_eb) {
  auto stream = c.compress(f, abs_eb);
  RoundTrip rt;
  rt.compressed_bytes = stream.size();
  rt.ratio = compression_ratio(f.size(), stream.size());
  rt.reconstructed = c.decompress(stream);
  return rt;
}

namespace {

StreamHeader parse_header(ByteReader& r, const char* who) {
  StreamHeader h;
  if (r.get<std::uint32_t>() != detail::kContainerMagic)
    throw CodecError(std::string(who) + ": not an mrcomp stream");
  h.version = r.get<std::uint8_t>();
  if (h.version == 0 || h.version > detail::kContainerVersionMax)
    throw CodecError(std::string(who) + ": unsupported stream version " +
                     std::to_string(h.version));
  h.codec_magic = r.get<std::uint32_t>();
  h.dims.nx = static_cast<index_t>(r.get_varint());
  h.dims.ny = static_cast<index_t>(r.get_varint());
  h.dims.nz = static_cast<index_t>(r.get_varint());
  h.eb = r.get<double>();
  // Corrupt streams must fail cleanly, not attempt absurd allocations. The
  // total-size check is division-based so the nx*ny*nz product can never
  // overflow index_t, whatever the individual extents claim.
  constexpr index_t kMaxExtent = index_t{1} << 32;
  constexpr index_t kMaxSize = index_t{1} << 40;
  if (h.dims.nx <= 0 || h.dims.ny <= 0 || h.dims.nz <= 0 || h.dims.nx > kMaxExtent ||
      h.dims.ny > kMaxExtent || h.dims.nz > kMaxExtent)
    throw CodecError(std::string(who) + ": bad extents");
  if (h.dims.ny > kMaxSize / h.dims.nx ||
      h.dims.nz > kMaxSize / (h.dims.nx * h.dims.ny))
    throw CodecError(std::string(who) + ": bad extents");
  if (!(h.eb > 0.0) || !std::isfinite(h.eb))
    throw CodecError(std::string(who) + ": bad error bound");
  if (h.version >= kSharedHeaderShardVersion) {
    // v7 exists only to record a sharded entropy layout, so a count of 0/1
    // (or an absurd one) is corruption, not a degenerate-but-legal stream.
    const std::uint64_t shards = r.get_varint();
    if (shards < 2 || shards > lossless::kMaxEntropyShards)
      throw CodecError(std::string(who) + ": bad entropy shard count " +
                       std::to_string(shards));
    h.entropy_shards = static_cast<std::uint32_t>(shards);
  }
  h.header_bytes = r.position();
  return h;
}

}  // namespace

StreamHeader peek_header(std::span<const std::byte> stream) {
  ByteReader r(stream);
  return parse_header(r, "peek_header");
}

namespace detail {

void write_header(ByteWriter& w, std::uint32_t codec_magic, Dim3 dims, double eb,
                  std::uint32_t entropy_shards) {
  MRC_REQUIRE(entropy_shards <= lossless::kMaxEntropyShards,
              "entropy shard count out of range");
  w.put(kContainerMagic);
  w.put(entropy_shards > 1 ? kContainerVersionSharded : kContainerVersion);
  w.put(codec_magic);
  w.put_varint(static_cast<std::uint64_t>(dims.nx));
  w.put_varint(static_cast<std::uint64_t>(dims.ny));
  w.put_varint(static_cast<std::uint64_t>(dims.nz));
  w.put(eb);
  if (entropy_shards > 1) w.put_varint(entropy_shards);
}

Header read_header(ByteReader& r, std::uint32_t expected_magic, const char* codec_name) {
  const StreamHeader h = parse_header(r, codec_name);
  if (h.codec_magic != expected_magic)
    throw CodecError(std::string(codec_name) + ": stream magic mismatch");
  return Header{h.dims, h.eb, h.entropy_shards};
}

}  // namespace detail

}  // namespace mrc
