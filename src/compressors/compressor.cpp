#include "compressors/compressor.h"

#include <cmath>

namespace mrc {

double compression_ratio(index_t n_values, std::size_t compressed_bytes) {
  MRC_REQUIRE(compressed_bytes > 0, "empty compressed stream");
  return static_cast<double>(n_values) * sizeof(float) /
         static_cast<double>(compressed_bytes);
}

RoundTrip round_trip(const Compressor& c, const FieldF& f, double abs_eb) {
  auto stream = c.compress(f, abs_eb);
  RoundTrip rt;
  rt.compressed_bytes = stream.size();
  rt.ratio = compression_ratio(f.size(), stream.size());
  rt.reconstructed = c.decompress(stream);
  return rt;
}

namespace detail {

void write_header(ByteWriter& w, std::uint32_t magic, Dim3 dims, double eb) {
  w.put(magic);
  w.put_varint(static_cast<std::uint64_t>(dims.nx));
  w.put_varint(static_cast<std::uint64_t>(dims.ny));
  w.put_varint(static_cast<std::uint64_t>(dims.nz));
  w.put(eb);
}

Header read_header(ByteReader& r, std::uint32_t expected_magic, const char* codec_name) {
  const auto magic = r.get<std::uint32_t>();
  if (magic != expected_magic)
    throw CodecError(std::string(codec_name) + ": stream magic mismatch");
  Header h;
  h.dims.nx = static_cast<index_t>(r.get_varint());
  h.dims.ny = static_cast<index_t>(r.get_varint());
  h.dims.nz = static_cast<index_t>(r.get_varint());
  h.eb = r.get<double>();
  // Corrupt streams must fail cleanly, not attempt absurd allocations.
  constexpr index_t kMaxExtent = index_t{1} << 32;
  constexpr index_t kMaxSize = index_t{1} << 40;
  if (h.dims.nx <= 0 || h.dims.ny <= 0 || h.dims.nz <= 0 || h.dims.nx > kMaxExtent ||
      h.dims.ny > kMaxExtent || h.dims.nz > kMaxExtent || h.dims.size() > kMaxSize)
    throw CodecError(std::string(codec_name) + ": bad extents");
  if (!(h.eb > 0.0) || !std::isfinite(h.eb))
    throw CodecError(std::string(codec_name) + ": bad error bound");
  return h;
}

}  // namespace detail

}  // namespace mrc
