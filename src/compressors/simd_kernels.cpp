#include "compressors/simd_kernels.h"

#include <atomic>

#include "compressors/simd_kernels_scalar.h"

namespace mrc::simd {

namespace {

using namespace detail;

void sc_quantize_linear(const float* orig, const float* lo, const float* hi,
                        std::size_t n, double eb, std::uint32_t radius,
                        std::uint32_t* codes, float* recon, AlignedVec<float>& outliers) {
  s_quantize_linear(orig, lo, hi, n, eb, radius, codes, recon, outliers);
}
void sc_quantize_cubic(const float* orig, const float* a, const float* b,
                       const float* c, const float* d, std::size_t n, double eb,
                       std::uint32_t radius, std::uint32_t* codes, float* recon,
                       AlignedVec<float>& outliers) {
  s_quantize_cubic(orig, a, b, c, d, n, eb, radius, codes, recon, outliers);
}
void sc_quantize_constant(const float* orig, const float* src, std::size_t n,
                          double eb, std::uint32_t radius, std::uint32_t* codes,
                          float* recon, AlignedVec<float>& outliers) {
  s_quantize_constant(orig, src, n, eb, radius, codes, recon, outliers);
}
void sc_quantize_plane(const float* orig, std::size_t n, double m, double gx,
                       double ci, double aj, double ak, double eb,
                       std::uint32_t radius, std::uint32_t* codes, float* recon,
                       AlignedVec<float>& outliers) {
  s_quantize_plane(orig, n, m, gx, ci, aj, ak, eb, radius, codes, recon, outliers);
}
void sc_dequantize_linear(const std::uint32_t* codes, const float* lo, const float* hi,
                          std::size_t n, double eb, std::uint32_t radius, float* recon,
                          std::span<const float> outliers, std::size_t& pos) {
  s_dequantize_linear(codes, lo, hi, n, eb, radius, recon, outliers, pos);
}
void sc_dequantize_cubic(const std::uint32_t* codes, const float* a, const float* b,
                         const float* c, const float* d, std::size_t n, double eb,
                         std::uint32_t radius, float* recon,
                         std::span<const float> outliers, std::size_t& pos) {
  s_dequantize_cubic(codes, a, b, c, d, n, eb, radius, recon, outliers, pos);
}
void sc_dequantize_constant(const std::uint32_t* codes, const float* src, std::size_t n,
                            double eb, std::uint32_t radius, float* recon,
                            std::span<const float> outliers, std::size_t& pos) {
  s_dequantize_constant(codes, src, n, eb, radius, recon, outliers, pos);
}
void sc_dequantize_plane(const std::uint32_t* codes, std::size_t n, double m, double gx,
                         double ci, double aj, double ak, double eb, std::uint32_t radius,
                         float* recon, std::span<const float> outliers, std::size_t& pos) {
  s_dequantize_plane(codes, n, m, gx, ci, aj, ak, eb, radius, recon, outliers, pos);
}

constexpr KernelTable kScalarTable = {
    sc_quantize_linear,   sc_quantize_cubic,   sc_quantize_constant,
    sc_quantize_plane,    sc_dequantize_linear, sc_dequantize_cubic,
    sc_dequantize_constant, sc_dequantize_plane,
};

const KernelTable* table_for(Isa isa) {
  switch (isa) {
    case Isa::avx2:
      if (const KernelTable* t = avx2_table()) return t;
      [[fallthrough]];
    case Isa::sse2:
      if (const KernelTable* t = sse2_table()) return t;
      [[fallthrough]];
    case Isa::scalar:
      break;
  }
  return &kScalarTable;
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Isa detect_best() {
  if (avx2_table() != nullptr && cpu_has_avx2()) return Isa::avx2;
  if (sse2_table() != nullptr) return Isa::sse2;
  return Isa::scalar;
}

struct Dispatch {
  std::atomic<const KernelTable*> table;
  std::atomic<Isa> isa;
  Dispatch() : table(table_for(detect_best())), isa(detect_best()) {}
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

const KernelTable* active() { return dispatch().table.load(std::memory_order_relaxed); }

}  // namespace

Isa best_isa() {
  static const Isa best = detect_best();
  return best;
}

Isa active_isa() { return dispatch().isa.load(std::memory_order_relaxed); }

Isa force_isa(Isa isa) {
  Isa applied = isa <= best_isa() ? isa : best_isa();
  if (applied == Isa::avx2 && avx2_table() == nullptr) applied = Isa::sse2;
  if (applied == Isa::sse2 && sse2_table() == nullptr) applied = Isa::scalar;
  dispatch().table.store(table_for(applied), std::memory_order_relaxed);
  dispatch().isa.store(applied, std::memory_order_relaxed);
  return applied;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::scalar: return "scalar";
    case Isa::sse2: return "sse2";
    case Isa::avx2: return "avx2";
  }
  return "?";
}

void quantize_row_linear(const float* orig, const float* lo, const float* hi,
                         std::size_t n, double eb, std::uint32_t radius,
                         std::uint32_t* codes, float* recon, AlignedVec<float>& outliers) {
  active()->quantize_linear(orig, lo, hi, n, eb, radius, codes, recon, outliers);
}
void quantize_row_cubic(const float* orig, const float* a, const float* b,
                        const float* c, const float* d, std::size_t n, double eb,
                        std::uint32_t radius, std::uint32_t* codes, float* recon,
                        AlignedVec<float>& outliers) {
  active()->quantize_cubic(orig, a, b, c, d, n, eb, radius, codes, recon, outliers);
}
void quantize_row_constant(const float* orig, const float* src, std::size_t n, double eb,
                           std::uint32_t radius, std::uint32_t* codes, float* recon,
                           AlignedVec<float>& outliers) {
  active()->quantize_constant(orig, src, n, eb, radius, codes, recon, outliers);
}
void quantize_row_plane(const float* orig, std::size_t n, double m, double gx, double ci,
                        double aj, double ak, double eb, std::uint32_t radius,
                        std::uint32_t* codes, float* recon, AlignedVec<float>& outliers) {
  active()->quantize_plane(orig, n, m, gx, ci, aj, ak, eb, radius, codes, recon,
                           outliers);
}
void dequantize_row_linear(const std::uint32_t* codes, const float* lo, const float* hi,
                           std::size_t n, double eb, std::uint32_t radius, float* recon,
                           std::span<const float> outliers, std::size_t& outlier_pos) {
  active()->dequantize_linear(codes, lo, hi, n, eb, radius, recon, outliers, outlier_pos);
}
void dequantize_row_cubic(const std::uint32_t* codes, const float* a, const float* b,
                          const float* c, const float* d, std::size_t n, double eb,
                          std::uint32_t radius, float* recon,
                          std::span<const float> outliers, std::size_t& outlier_pos) {
  active()->dequantize_cubic(codes, a, b, c, d, n, eb, radius, recon, outliers,
                             outlier_pos);
}
void dequantize_row_constant(const std::uint32_t* codes, const float* src, std::size_t n,
                             double eb, std::uint32_t radius, float* recon,
                             std::span<const float> outliers, std::size_t& outlier_pos) {
  active()->dequantize_constant(codes, src, n, eb, radius, recon, outliers, outlier_pos);
}
void dequantize_row_plane(const std::uint32_t* codes, std::size_t n, double m, double gx,
                          double ci, double aj, double ak, double eb, std::uint32_t radius,
                          float* recon, std::span<const float> outliers,
                          std::size_t& outlier_pos) {
  active()->dequantize_plane(codes, n, m, gx, ci, aj, ak, eb, radius, recon, outliers,
                             outlier_pos);
}

}  // namespace mrc::simd
