// SSE2 kernel TU — compiled with the project's baseline flags (SSE2 is part
// of x86-64, so no extra -m flags and no risk of illegal instructions).

#include "compressors/simd_kernels.h"

#if defined(__SSE2__)

#define MRC_SIMD_NS ksse2
#define MRC_SIMD_AVX2 0
#include "compressors/simd_kernels_x86.h"

namespace mrc::simd::detail {
const KernelTable* sse2_table() { return &mrc::simd::ksse2::kTable; }
}  // namespace mrc::simd::detail

#else

namespace mrc::simd::detail {
const KernelTable* sse2_table() { return nullptr; }
}  // namespace mrc::simd::detail

#endif
