#pragma once

// Central codec registry — the single construction path for every compressor
// in the library. Each codec is installed under both its string name (encode
// dispatch: `registry().make("interp")`) and its stream magic (decode
// dispatch: `registry().make_for_magic(peek_header(stream).codec_magic)`),
// so adding a backend is one registry entry instead of a cross-cutting edit
// to every caller, and identifying a stream never probes codecs with
// exceptions.
//
// Most code should sit one level higher still, on the "api/mrc_api.h"
// facade; the registry is the extension point for new backends.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compressors/compressor.h"

namespace mrc {

/// Generic tuning knobs a codec factory may honour. Codecs ignore the knobs
/// they do not understand, so one struct configures any registered backend.
struct CodecTuning {
  std::uint32_t quant_radius = 512;  ///< interp/lorenzo residual bins per side
  bool adaptive_eb = false;          ///< interp per-level eb tightening
  double alpha = 2.25;               ///< adaptive-eb decay (paper §III-A)
  double beta = 8.0;                 ///< adaptive-eb decay cap
  index_t block_size = 0;            ///< lorenzo block edge; 0 = codec default
  bool use_regression = true;        ///< lorenzo per-block predictor choice
  int threads = 1;                   ///< independent chunks for parallel codecs
  /// Requested entropy shards per Huffman code stream (interp/lorenzo; zfpx
  /// folds it into its chunk count, whose streams are already independent).
  /// Negotiated down by stream size; > 1 writes the v7 sharded layout, the
  /// default 1 keeps every stream byte-identical to v6.
  std::uint32_t entropy_shards = 1;
};

class CodecRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Compressor>(const CodecTuning&)>;

  struct Entry {
    std::string name;         ///< CLI/config identifier ("interp", ...)
    std::uint32_t magic = 0;  ///< stream id written into the container header
    std::string description;
    index_t block_edge = 0;  ///< block granularity (post-process unit); 0 = global
    Factory factory;
  };

  /// Installs a codec. Throws ContractError on a duplicate name or magic, or
  /// an incomplete entry (empty name, zero magic, missing factory).
  void add(Entry e);

  [[nodiscard]] const Entry* find(const std::string& name) const;
  [[nodiscard]] const Entry* find_magic(std::uint32_t magic) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }

  /// Constructs a codec by name. Throws CodecError naming the known codecs.
  [[nodiscard]] std::unique_ptr<Compressor> make(const std::string& name,
                                                 const CodecTuning& tuning = {}) const;

  /// Constructs the decoder for a stream magic (from peek_header). Throws
  /// CodecError on an unknown magic.
  [[nodiscard]] std::unique_ptr<Compressor> make_for_magic(
      std::uint32_t magic, const CodecTuning& tuning = {}) const;

  /// Registered codec names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<Entry> entries_;
};

/// Process-wide registry with all built-in codecs installed.
[[nodiscard]] CodecRegistry& registry();

}  // namespace mrc
