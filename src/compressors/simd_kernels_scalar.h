#pragma once

// Scalar reference implementations of the predict+quantize row kernels
// ("compressors/simd_kernels.h"). These are exact transcriptions of the
// loops the codecs used before vectorization — every cast, every operation
// order — and serve three masters: the always-available scalar ISA, the
// sub-4-element tails of the SIMD kernels, and the oracle side of the
// bit-identity tests. Any change here is a frozen-format change.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/aligned.h"
#include "common/require.h"

namespace mrc::simd::detail {

/// Quantizer constants hoisted out of the row loops. All products here are
/// exact or match the scalar expressions they replace: 2.0 * eb is an exact
/// power-of-two scale, so range == 2.0 * eb * radius and the per-element
/// diff / (2.0 * eb) see bit-identical operands.
struct QP {
  double eb;
  double two_eb;    ///< 2.0 * eb (exact)
  double range;     ///< 2.0 * eb * radius, the outlier threshold
  double radius_d;  ///< (double)radius
  std::uint32_t radius;
};

inline QP make_qp(double eb, std::uint32_t radius) {
  return {eb, 2.0 * eb, 2.0 * eb * static_cast<double>(radius),
          static_cast<double>(radius), radius};
}

/// LinearQuantizer::encode, verbatim (compressors/quantizer.h): quantize one
/// value against its prediction, writing recon and returning the code;
/// unquantizable values escape to `outliers` with code 0.
template <typename OutVec>
inline std::uint32_t quantize_one(float orig, double pred, const QP& p, float& recon,
                                  OutVec& outliers) {
  const double diff = static_cast<double>(orig) - pred;
  if (std::abs(diff) < p.range) {
    const long long q = std::llround(diff / p.two_eb);
    if (std::llabs(q) < static_cast<long long>(p.radius)) {
      const float cand = static_cast<float>(pred + p.two_eb * static_cast<double>(q));
      if (std::abs(static_cast<double>(cand) - static_cast<double>(orig)) <= p.eb) {
        recon = cand;
        return static_cast<std::uint32_t>(q + p.radius);
      }
    }
  }
  outliers.push_back(orig);
  recon = orig;
  return 0;
}

/// LinearQuantizer::decode, verbatim.
inline float dequantize_one(std::uint32_t code, double pred, const QP& p,
                            std::span<const float> outliers, std::size_t& pos) {
  if (code == 0) {
    if (pos >= outliers.size()) throw CodecError("quantizer: outlier underrun");
    return outliers[pos++];
  }
  const auto q = static_cast<std::int64_t>(code) - static_cast<std::int64_t>(p.radius);
  return static_cast<float>(pred + p.two_eb * static_cast<double>(q));
}

// Row-uniform predictions, matching the codec expressions exactly.
// Linear adds the two float neighbours in FLOAT precision first (that is
// what `0.5 * (line[a] + line[b])` does with float operands) — the SIMD
// kernels must do the same (addps, then convert, then * 0.5).
inline double pred_linear(float lo, float hi) { return 0.5 * (lo + hi); }
inline double pred_cubic(float a, float b, float c, float d) {
  return (-static_cast<double>(a) + 9.0 * static_cast<double>(b) +
          9.0 * static_cast<double>(c) - static_cast<double>(d)) /
         16.0;
}
inline double pred_constant(float src) { return static_cast<double>(src); }
inline double pred_plane(double m, double gx, double di, double aj, double ak) {
  return ((m + gx * di) + aj) + ak;
}

// Scalar row kernels (also the tails of the vector ones).

inline void s_quantize_linear(const float* orig, const float* lo, const float* hi,
                              std::size_t n, double eb, std::uint32_t radius,
                              std::uint32_t* codes, float* recon,
                              AlignedVec<float>& outliers, std::size_t i0 = 0) {
  const QP p = make_qp(eb, radius);
  for (std::size_t i = i0; i < n; ++i)
    codes[i] = quantize_one(orig[i], pred_linear(lo[i], hi[i]), p, recon[i], outliers);
}

inline void s_quantize_cubic(const float* orig, const float* a, const float* b,
                             const float* c, const float* d, std::size_t n, double eb,
                             std::uint32_t radius, std::uint32_t* codes, float* recon,
                             AlignedVec<float>& outliers, std::size_t i0 = 0) {
  const QP p = make_qp(eb, radius);
  for (std::size_t i = i0; i < n; ++i)
    codes[i] =
        quantize_one(orig[i], pred_cubic(a[i], b[i], c[i], d[i]), p, recon[i], outliers);
}

inline void s_quantize_constant(const float* orig, const float* src, std::size_t n,
                                double eb, std::uint32_t radius, std::uint32_t* codes,
                                float* recon, AlignedVec<float>& outliers,
                                std::size_t i0 = 0) {
  const QP p = make_qp(eb, radius);
  for (std::size_t i = i0; i < n; ++i)
    codes[i] = quantize_one(orig[i], pred_constant(src[i]), p, recon[i], outliers);
}

inline void s_quantize_plane(const float* orig, std::size_t n, double m, double gx,
                             double ci, double aj, double ak, double eb,
                             std::uint32_t radius, std::uint32_t* codes, float* recon,
                             AlignedVec<float>& outliers, std::size_t i0 = 0) {
  const QP p = make_qp(eb, radius);
  for (std::size_t i = i0; i < n; ++i) {
    const double pred = pred_plane(m, gx, static_cast<double>(i) - ci, aj, ak);
    codes[i] = quantize_one(orig[i], pred, p, recon[i], outliers);
  }
}

inline void s_dequantize_linear(const std::uint32_t* codes, const float* lo,
                                const float* hi, std::size_t n, double eb,
                                std::uint32_t radius, float* recon,
                                std::span<const float> outliers, std::size_t& pos,
                                std::size_t i0 = 0) {
  const QP p = make_qp(eb, radius);
  for (std::size_t i = i0; i < n; ++i)
    recon[i] = dequantize_one(codes[i], pred_linear(lo[i], hi[i]), p, outliers, pos);
}

inline void s_dequantize_cubic(const std::uint32_t* codes, const float* a,
                               const float* b, const float* c, const float* d,
                               std::size_t n, double eb, std::uint32_t radius,
                               float* recon, std::span<const float> outliers,
                               std::size_t& pos, std::size_t i0 = 0) {
  const QP p = make_qp(eb, radius);
  for (std::size_t i = i0; i < n; ++i)
    recon[i] =
        dequantize_one(codes[i], pred_cubic(a[i], b[i], c[i], d[i]), p, outliers, pos);
}

inline void s_dequantize_constant(const std::uint32_t* codes, const float* src,
                                  std::size_t n, double eb, std::uint32_t radius,
                                  float* recon, std::span<const float> outliers,
                                  std::size_t& pos, std::size_t i0 = 0) {
  const QP p = make_qp(eb, radius);
  for (std::size_t i = i0; i < n; ++i)
    recon[i] = dequantize_one(codes[i], pred_constant(src[i]), p, outliers, pos);
}

inline void s_dequantize_plane(const std::uint32_t* codes, std::size_t n, double m,
                               double gx, double ci, double aj, double ak, double eb,
                               std::uint32_t radius, float* recon,
                               std::span<const float> outliers, std::size_t& pos,
                               std::size_t i0 = 0) {
  const QP p = make_qp(eb, radius);
  for (std::size_t i = i0; i < n; ++i) {
    const double pred = pred_plane(m, gx, static_cast<double>(i) - ci, aj, ak);
    recon[i] = dequantize_one(codes[i], pred, p, outliers, pos);
  }
}

}  // namespace mrc::simd::detail
