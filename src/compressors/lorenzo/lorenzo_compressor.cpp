#include "compressors/lorenzo/lorenzo_compressor.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "exec/thread_pool.h"
#include "compressors/quantizer.h"
#include "compressors/simd_kernels.h"
#include "lossless/bitstream.h"
#include "lossless/lzss.h"
#include "lossless/quant_codec.h"
#include "obs/obs.h"

namespace mrc {

namespace {


std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Regression plane v ≈ m + gx*(i-ci) + gy*(j-cj) + gz*(k-ck), local coords.
struct Plane {
  double m = 0, gx = 0, gy = 0, gz = 0;
};

Plane fit_plane(const float* orig, const Dim3& d, index_t x0, index_t y0, index_t z0,
                index_t ex, index_t ey, index_t ez) {
  const double ci = (ex - 1) / 2.0, cj = (ey - 1) / 2.0, ck = (ez - 1) / 2.0;
  double sum = 0, sx = 0, sy = 0, sz = 0;
  for (index_t k = 0; k < ez; ++k)
    for (index_t j = 0; j < ey; ++j) {
      const float* row = orig + d.index(x0, y0 + j, z0 + k);
      for (index_t i = 0; i < ex; ++i) {
        const double v = row[i];
        sum += v;
        sx += v * (i - ci);
        sy += v * (j - cj);
        sz += v * (k - ck);
      }
    }
  const double n = static_cast<double>(ex * ey * ez);
  auto var1d = [](index_t e) { return static_cast<double>(e) * (e * e - 1) / 12.0; };
  Plane p;
  p.m = sum / n;
  const double vx = var1d(ex) * ey * ez;
  const double vy = var1d(ey) * ex * ez;
  const double vz = var1d(ez) * ex * ey;
  p.gx = vx > 0 ? sx / vx : 0.0;
  p.gy = vy > 0 ? sy / vy : 0.0;
  p.gz = vz > 0 ? sz / vz : 0.0;
  return p;
}

/// 3-D Lorenzo prediction from reconstructed data; positions below `zmin`
/// (the chunk floor) or outside the domain contribute zero, so chunks stay
/// independent.
double lorenzo_pred(const float* recon, const Dim3& d, index_t x, index_t y, index_t z,
                    index_t zmin) {
  auto v = [&](index_t dx, index_t dy, index_t dz) -> double {
    const index_t xx = x - dx, yy = y - dy, zz = z - dz;
    if (xx < 0 || yy < 0 || zz < zmin) return 0.0;
    return recon[d.index(xx, yy, zz)];
  };
  return v(1, 0, 0) + v(0, 1, 0) + v(0, 0, 1) - v(1, 1, 0) - v(1, 0, 1) - v(0, 1, 1) +
         v(1, 1, 1);
}

/// Same stencil over the original data — the encoder-side estimate used for
/// predictor selection (SZ2's trick: cheap, no reconstruction dependency).
double lorenzo_pred_orig(const float* orig, const Dim3& d, index_t x, index_t y, index_t z,
                         index_t zmin) {
  return lorenzo_pred(orig, d, x, y, z, zmin);
}

/// Branch-free interior form of lorenzo_pred: valid when x >= 1, y >= 1 and
/// z >= zmin+1, where all seven stencil neighbours exist and the 21 bounds
/// checks of v() collapse to straight loads. Same terms, same left-to-right
/// summation order — bit-identical to the checked form.
double lorenzo_pred_fast(const float* recon, index_t idx, index_t sy, index_t sz) {
  const double v100 = recon[idx - 1];
  const double v010 = recon[idx - sy];
  const double v001 = recon[idx - sz];
  const double v110 = recon[idx - 1 - sy];
  const double v101 = recon[idx - 1 - sz];
  const double v011 = recon[idx - sy - sz];
  const double v111 = recon[idx - 1 - sy - sz];
  return v100 + v010 + v001 - v110 - v101 - v011 + v111;
}

struct ChunkStream {
  Bytes flags;
  Bytes coeffs;
  Bytes codes;
  Bytes outliers;
};

struct CoeffQuant {
  double pm, pg;  // precision of mean / gradient codes

  std::array<std::int64_t, 4> quantize(const Plane& p) const {
    return {std::llround(p.m / pm), std::llround(p.gx / pg), std::llround(p.gy / pg),
            std::llround(p.gz / pg)};
  }
  Plane dequantize(const std::array<std::int64_t, 4>& q) const {
    return {q[0] * pm, q[1] * pg, q[2] * pg, q[3] * pg};
  }
};

}  // namespace

LorenzoCompressor::LorenzoCompressor(LorenzoConfig cfg) : cfg_(cfg) {
  MRC_REQUIRE(cfg_.block_size >= 2, "block size too small");
  MRC_REQUIRE(cfg_.quant_radius >= 2, "quant radius too small");
  MRC_REQUIRE(cfg_.chunks >= 1, "bad chunk count");
}

std::string LorenzoCompressor::name() const {
  return cfg_.chunks > 1 ? "lorenzo(mt)" : "lorenzo";
}

Bytes LorenzoCompressor::compress(const FieldF& f, double abs_eb) const {
  MRC_REQUIRE(abs_eb > 0.0, "error bound must be positive");
  MRC_REQUIRE(!f.empty(), "empty field");
  const Dim3 d = f.dims();
  const index_t bs = cfg_.block_size;
  const index_t nbz = ceil_div(d.nz, bs);
  const int n_chunks = static_cast<int>(std::min<index_t>(cfg_.chunks, nbz));
  const CoeffQuant cq{abs_eb / 2.0, abs_eb / (2.0 * static_cast<double>(bs))};
  const LinearQuantizer quant{abs_eb, cfg_.quant_radius};

  FieldF recon(d);
  std::vector<ChunkStream> chunks(static_cast<std::size_t>(n_chunks));
  const float* orig = f.data();

  exec::ThreadPool pool(std::min(n_chunks, exec::hardware_threads()));
  pool.parallel_for(n_chunks, [&](index_t c) {
    const index_t bz0 = nbz * c / n_chunks;
    const index_t bz1 = nbz * (c + 1) / n_chunks;
    const index_t zmin = bz0 * bs;

    lossless::BitWriter flag_bits;
    Bytes coeff_bytes;
    ByteWriter coeff_writer(coeff_bytes);
    // Per-lane scratch, reused when several chunks land on one pool lane;
    // 64-byte aligned for the SIMD row kernels.
    thread_local AlignedVec<std::uint32_t> codes;
    thread_local AlignedVec<float> outliers;
    const detail::ScratchGuard gc(codes);
    const detail::ScratchGuard go(outliers);
    codes.resize(static_cast<std::size_t>(
        (std::min(bz1 * bs, d.nz) - zmin) * d.nx * d.ny));
    outliers.clear();
    std::size_t emitted = 0;
    std::array<std::int64_t, 4> prev_q{0, 0, 0, 0};

    static obs::Counter& ns_pq =
        obs::Registry::global().counter("mrc.codec.predict_quant_ns");
    static obs::Counter& ns_ent =
        obs::Registry::global().counter("mrc.codec.entropy_ns");
    static obs::Counter& ns_ll =
        obs::Registry::global().counter("mrc.codec.lossless_ns");
    {
      OBS_SPAN("lorenzo.predict_quant", &ns_pq);
      for (index_t bz = bz0; bz < bz1; ++bz)
        for (index_t by = 0; by < ceil_div(d.ny, bs); ++by)
          for (index_t bx = 0; bx < ceil_div(d.nx, bs); ++bx) {
            const index_t x0 = bx * bs, y0 = by * bs, z0 = bz * bs;
            const index_t ex = std::min(bs, d.nx - x0);
            const index_t ey = std::min(bs, d.ny - y0);
            const index_t ez = std::min(bs, d.nz - z0);

            // Predictor selection on original data.
            bool use_reg = false;
            Plane plane;
            if (cfg_.use_regression && ex * ey * ez >= 8) {
              plane = fit_plane(orig, d, x0, y0, z0, ex, ey, ez);
              double err_reg = 0, err_lor = 0;
              const double ci = (ex - 1) / 2.0, cj = (ey - 1) / 2.0, ck = (ez - 1) / 2.0;
              for (index_t k = 0; k < ez; ++k)
                for (index_t j = 0; j < ey; ++j)
                  for (index_t i = 0; i < ex; ++i) {
                    const double v = orig[d.index(x0 + i, y0 + j, z0 + k)];
                    const double pr =
                        plane.m + plane.gx * (i - ci) + plane.gy * (j - cj) + plane.gz * (k - ck);
                    err_reg += std::abs(v - pr);
                    err_lor += std::abs(
                        v - lorenzo_pred_orig(orig, d, x0 + i, y0 + j, z0 + k, zmin));
                  }
              use_reg = err_reg < err_lor;
            }
            flag_bits.write_bit(use_reg ? 1u : 0u);

            Plane qplane;
            if (use_reg) {
              const auto q = cq.quantize(plane);
              for (int t = 0; t < 4; ++t) {
                coeff_writer.put_varint(zigzag(q[t] - prev_q[t]));
              }
              prev_q = q;
              qplane = cq.dequantize(q);
            }

            const double ci = (ex - 1) / 2.0, cj = (ey - 1) / 2.0, ck = (ez - 1) / 2.0;
            if (use_reg) {
              // Plane prediction is row-uniform along x: one kernel call per
              // row, with the j/k gradient terms hoisted (same factors the
              // scalar expression multiplies — bit-identical).
              for (index_t k = 0; k < ez; ++k)
                for (index_t j = 0; j < ey; ++j) {
                  const index_t idx = d.index(x0, y0 + j, z0 + k);
                  const double aj = qplane.gy * (static_cast<double>(j) - cj);
                  const double ak = qplane.gz * (static_cast<double>(k) - ck);
                  simd::quantize_row_plane(orig + idx, static_cast<std::size_t>(ex),
                                           qplane.m, qplane.gx, ci, aj, ak, abs_eb,
                                           cfg_.quant_radius, codes.data() + emitted,
                                           recon.data() + idx, outliers);
                  emitted += static_cast<std::size_t>(ex);
                }
            } else {
              float* rec = recon.data();
              for (index_t k = 0; k < ez; ++k)
                for (index_t j = 0; j < ey; ++j) {
                  const bool interior_row = y0 + j >= 1 && z0 + k >= zmin + 1;
                  for (index_t i = 0; i < ex; ++i) {
                    const index_t idx = d.index(x0 + i, y0 + j, z0 + k);
                    const double pred =
                        interior_row && x0 + i >= 1
                            ? lorenzo_pred_fast(rec, idx, d.nx, d.nx * d.ny)
                            : lorenzo_pred(rec, d, x0 + i, y0 + j, z0 + k, zmin);
                    codes[emitted++] = quant.encode(orig[idx], pred, rec[idx], outliers);
                  }
                }
            }
          }

    }
    auto& cs = chunks[static_cast<std::size_t>(c)];
    cs.flags = flag_bits.take();
    {
      OBS_SPAN("lorenzo.lossless", &ns_ll);
      cs.coeffs = lossless::lzss_compress(coeff_bytes);
      cs.outliers = lossless::lzss_compress(std::as_bytes(std::span<const float>(outliers)));
    }
    {
      OBS_SPAN("lorenzo.entropy", &ns_ent);
      cs.codes = lossless::encode_quant_codes_sharded(codes, cfg_.quant_radius,
                                                      cfg_.entropy_shards);
    }
  });

  // Header entropy-layout minor version: the widest shard count any chunk
  // actually negotiated (the chunk cell counts are closed-form, so this
  // agrees with what encode_quant_codes_sharded emitted above).
  std::uint32_t header_shards = 1;
  for (int c = 0; c < n_chunks; ++c) {
    const index_t bz0 = nbz * c / n_chunks;
    const index_t bz1 = nbz * (c + 1) / n_chunks;
    const auto cells = static_cast<std::uint64_t>(
        (std::min(bz1 * bs, d.nz) - bz0 * bs) * d.nx * d.ny);
    header_shards = std::max(
        header_shards, lossless::negotiate_entropy_shards(cells, cfg_.entropy_shards));
  }

  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, kMagic, d, abs_eb, header_shards);
  w.put_varint(static_cast<std::uint64_t>(bs));
  w.put_varint(cfg_.quant_radius);
  w.put(static_cast<std::uint8_t>(cfg_.use_regression ? 1 : 0));
  w.put_varint(static_cast<std::uint64_t>(n_chunks));
  for (const auto& cs : chunks) {
    w.put_blob(cs.flags);
    w.put_blob(cs.coeffs);
    w.put_blob(cs.codes);
    w.put_blob(cs.outliers);
  }
  return out;
}

FieldF LorenzoCompressor::decompress(std::span<const std::byte> stream) const {
  ByteReader r(stream);
  const auto h = detail::read_header(r, kMagic, "lorenzo");
  const auto bs = static_cast<index_t>(r.get_varint());
  const auto radius = static_cast<std::uint32_t>(r.get_varint());
  (void)r.get<std::uint8_t>();  // use_regression flag (informational)
  const auto n_chunks = static_cast<int>(r.get_varint());
  const Dim3 d = h.dims;
  if (bs < 2) throw CodecError("lorenzo: bad block size");
  const index_t nbz = ceil_div(d.nz, bs);
  if (n_chunks < 1 || n_chunks > nbz) throw CodecError("lorenzo: bad chunk count");
  const CoeffQuant cq{h.eb / 2.0, h.eb / (2.0 * static_cast<double>(bs))};
  const LinearQuantizer quant{h.eb, radius};

  struct ChunkIn {
    std::span<const std::byte> flags, coeffs, codes, outliers;
  };
  std::vector<ChunkIn> chunk_in(static_cast<std::size_t>(n_chunks));
  for (auto& ci : chunk_in) {
    ci.flags = r.get_blob();
    ci.coeffs = r.get_blob();
    ci.codes = r.get_blob();
    ci.outliers = r.get_blob();
  }

  FieldF recon(d);

  exec::ThreadPool pool(std::min(n_chunks, exec::hardware_threads()));
  pool.parallel_for(n_chunks, [&](index_t c) {
   try {
    const index_t bz0 = nbz * c / n_chunks;
    const index_t bz1 = nbz * (c + 1) / n_chunks;
    const index_t zmin = bz0 * bs;
    const auto& ci_in = chunk_in[static_cast<std::size_t>(c)];

    static obs::Counter& ns_pq =
        obs::Registry::global().counter("mrc.codec.predict_quant_ns");
    static obs::Counter& ns_ent =
        obs::Registry::global().counter("mrc.codec.entropy_ns");
    static obs::Counter& ns_ll =
        obs::Registry::global().counter("mrc.codec.lossless_ns");

    lossless::BitReader flag_bits(ci_in.flags);
    const auto coeff_raw = [&] {
      OBS_SPAN("lorenzo.lossless", &ns_ll);
      return lossless::lzss_decompress(ci_in.coeffs);
    }();
    ByteReader coeff_reader(coeff_raw);
    // Per-lane scratch; the chunk's cell count is a closed-form function of
    // its z-slab, and decode_quant_codes_into validates the stream's count
    // against it before sizing the buffer.
    thread_local AlignedVec<std::uint32_t> codes;
    thread_local AlignedVec<float> outliers;
    const detail::ScratchGuard gc(codes);
    const detail::ScratchGuard go(outliers);
    {
      OBS_SPAN("lorenzo.entropy", &ns_ent);
      lossless::decode_quant_codes_into(
          ci_in.codes, radius, codes,
          static_cast<std::uint64_t>((std::min(bz1 * bs, d.nz) - zmin) * d.nx * d.ny));
    }
    {
      OBS_SPAN("lorenzo.lossless", &ns_ll);
      const auto outlier_raw = lossless::lzss_decompress(ci_in.outliers);
      outliers.resize(outlier_raw.size() / sizeof(float));
      std::memcpy(outliers.data(), outlier_raw.data(), outlier_raw.size());
    }

    std::size_t code_pos = 0, outlier_pos = 0;
    std::array<std::int64_t, 4> prev_q{0, 0, 0, 0};

    // Closes at the end of the try block — the block loop is its last
    // statement, so the span covers exactly the reconstruction sweep.
    obs::Span span_recon("lorenzo.predict_recon", &ns_pq);
    for (index_t bz = bz0; bz < bz1; ++bz)
      for (index_t by = 0; by < ceil_div(d.ny, bs); ++by)
        for (index_t bx = 0; bx < ceil_div(d.nx, bs); ++bx) {
          const index_t x0 = bx * bs, y0 = by * bs, z0 = bz * bs;
          const index_t ex = std::min(bs, d.nx - x0);
          const index_t ey = std::min(bs, d.ny - y0);
          const index_t ez = std::min(bs, d.nz - z0);

          const bool use_reg = flag_bits.read_bit() != 0;
          Plane qplane;
          if (use_reg) {
            std::array<std::int64_t, 4> q;
            for (int t = 0; t < 4; ++t)
              q[t] = prev_q[t] + unzigzag(coeff_reader.get_varint());
            prev_q = q;
            qplane = cq.dequantize(q);
          }

          const double cx = (ex - 1) / 2.0, cy = (ey - 1) / 2.0, cz = (ez - 1) / 2.0;
          const std::span<const float> ospan(outliers.data(), outliers.size());
          if (use_reg) {
            for (index_t k = 0; k < ez; ++k)
              for (index_t j = 0; j < ey; ++j) {
                if (code_pos + static_cast<std::size_t>(ex) > codes.size())
                  throw CodecError("lorenzo: code underrun");
                const index_t idx = d.index(x0, y0 + j, z0 + k);
                const double aj = qplane.gy * (static_cast<double>(j) - cy);
                const double ak = qplane.gz * (static_cast<double>(k) - cz);
                simd::dequantize_row_plane(codes.data() + code_pos,
                                           static_cast<std::size_t>(ex), qplane.m,
                                           qplane.gx, cx, aj, ak, h.eb, radius,
                                           recon.data() + idx, ospan, outlier_pos);
                code_pos += static_cast<std::size_t>(ex);
              }
          } else {
            float* rec = recon.data();
            for (index_t k = 0; k < ez; ++k)
              for (index_t j = 0; j < ey; ++j) {
                const bool interior_row = y0 + j >= 1 && z0 + k >= zmin + 1;
                for (index_t i = 0; i < ex; ++i) {
                  const index_t idx = d.index(x0 + i, y0 + j, z0 + k);
                  const double pred =
                      interior_row && x0 + i >= 1
                          ? lorenzo_pred_fast(rec, idx, d.nx, d.nx * d.ny)
                          : lorenzo_pred(rec, d, x0 + i, y0 + j, z0 + k, zmin);
                  if (code_pos >= codes.size()) throw CodecError("lorenzo: code underrun");
                  rec[idx] = quant.decode(codes[code_pos++], pred, ospan, outlier_pos);
                }
              }
          }
        }
   } catch (...) {
     throw CodecError("lorenzo: corrupt chunk stream");
   }
  });
  return recon;
}

}  // namespace mrc
