#pragma once

// SZ2-class error-bounded compressor: block-wise predictor selection between
// the 3-D Lorenzo predictor and a per-block linear regression (plane fit).
//
// Matching SZ2's behaviour and the paper's observations:
//   * the default block is 6^3 for uniform-resolution data; multi-resolution
//     pipelines use 4^3 (AMRIC's choice, §III-B), which increases blocking
//     artifacts;
//   * regression predictions never cross block boundaries, which is the
//     source of the blocking artifacts the Bézier post-process removes;
//   * `chunks > 1` splits the domain into z-slabs compressed and
//     entropy-coded independently (per-chunk Huffman tables) on the exec
//     thread pool. That is the "embarrassingly parallel" mode of Table IX —
//     faster, slightly lower compression ratio.

#include "compressors/compressor.h"

namespace mrc {

struct LorenzoConfig {
  index_t block_size = 6;
  std::uint32_t quant_radius = 512;
  bool use_regression = true;  ///< per-block choice; false = pure Lorenzo
  int chunks = 1;              ///< independent z-slab chunks (parallel mode)
  /// Requested entropy shards per chunk stream (negotiated down by chunk
  /// size; > 1 writes the v7 sharded layout, 1 keeps the frozen v6 bytes).
  std::uint32_t entropy_shards = 1;
};

class LorenzoCompressor final : public Compressor {
 public:
  /// Stream/registry id written into the container header.
  static constexpr std::uint32_t kMagic = 0x4c32'5a53;  // "SZ2L"

  explicit LorenzoCompressor(LorenzoConfig cfg = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Bytes compress(const FieldF& f, double abs_eb) const override;
  [[nodiscard]] FieldF decompress(std::span<const std::byte> stream) const override;

  [[nodiscard]] const LorenzoConfig& config() const { return cfg_; }

 private:
  LorenzoConfig cfg_;
};

}  // namespace mrc
