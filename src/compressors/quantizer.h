#pragma once

// Error-bounded linear quantizer shared by the prediction-based codecs.
// Residuals are mapped to 2*eb-wide bins; values whose bin falls outside the
// radius (or whose reconstruction misses the bound after float rounding) are
// stored exactly as outliers (code 0), the SZ "unpredictable data" path.

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/require.h"

namespace mrc {

struct LinearQuantizer {
  double eb;
  std::uint32_t radius;

  /// Quantizes `orig` against `pred`; writes the reconstructed value to
  /// `recon` and returns the code (0 = outlier, appended to `outliers` —
  /// any push_back-able float container, e.g. std::vector or AlignedVec).
  template <typename OutlierVec>
  std::uint32_t encode(float orig, double pred, float& recon,
                       OutlierVec& outliers) const {
    const double diff = static_cast<double>(orig) - pred;
    if (std::abs(diff) < 2.0 * eb * radius) {
      const auto q = std::llround(diff / (2.0 * eb));
      if (std::llabs(q) < radius) {
        const auto cand = static_cast<float>(pred + 2.0 * eb * static_cast<double>(q));
        if (std::abs(static_cast<double>(cand) - static_cast<double>(orig)) <= eb) {
          recon = cand;
          return static_cast<std::uint32_t>(q + radius);
        }
      }
    }
    outliers.push_back(orig);
    recon = orig;
    return 0;
  }

  /// Inverse of encode(); consumes outliers in order for code 0.
  float decode(std::uint32_t code, double pred, std::span<const float> outliers,
               std::size_t& outlier_pos) const {
    if (code == 0) {
      if (outlier_pos >= outliers.size()) throw CodecError("quantizer: outlier underrun");
      return outliers[outlier_pos++];
    }
    const auto q = static_cast<std::int64_t>(code) - radius;
    return static_cast<float>(pred + 2.0 * eb * static_cast<double>(q));
  }
};

}  // namespace mrc
