#pragma once

// Shared interface for the three error-bounded lossy compressors
// (SZ3-class interpolation, SZ2-class Lorenzo/regression, ZFP-class
// transform). All of them:
//   * take an absolute error bound and guarantee max|x - x̂| <= eb,
//   * emit a self-describing byte stream (magic, extents, eb, payload),
//   * decompress without any side information.

#include <memory>
#include <span>
#include <string>

#include "common/bytes.h"
#include "common/dims.h"
#include "grid/field.h"

namespace mrc {

class Compressor {
 public:
  virtual ~Compressor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Compresses `f` under absolute error bound `abs_eb` (> 0).
  [[nodiscard]] virtual Bytes compress(const FieldF& f, double abs_eb) const = 0;

  /// Reconstructs the field from a stream produced by compress().
  [[nodiscard]] virtual FieldF decompress(std::span<const std::byte> stream) const = 0;
};

/// Compression ratio: original float bytes / compressed bytes.
[[nodiscard]] double compression_ratio(index_t n_values, std::size_t compressed_bytes);

/// Round-trip convenience used everywhere in benches/tests.
struct RoundTrip {
  FieldF reconstructed;
  std::size_t compressed_bytes = 0;
  double ratio = 0.0;
};
[[nodiscard]] RoundTrip round_trip(const Compressor& c, const FieldF& f, double abs_eb);

namespace detail {

/// Stream header shared by all codecs.
void write_header(ByteWriter& w, std::uint32_t magic, Dim3 dims, double eb);

struct Header {
  Dim3 dims;
  double eb = 0.0;
};
[[nodiscard]] Header read_header(ByteReader& r, std::uint32_t expected_magic,
                                 const char* codec_name);

}  // namespace detail

}  // namespace mrc
