#pragma once

// Shared interface for the error-bounded lossy compressors (SZ3-class
// interpolation, SZ2-class Lorenzo/regression, ZFP-class transform, and any
// future backend). All of them:
//   * take an absolute error bound and guarantee max|x - x̂| <= eb,
//   * emit a self-describing byte stream: the versioned container header
//     below (container magic, version, codec id, extents, eb), then the
//     codec payload,
//   * decompress without any side information.
//
// Callers normally do not construct compressors directly: they are built
// through the CodecRegistry ("compressors/registry.h") which maps string
// names and stream magics to factories, and most code should go through the
// top-level facade in "api/mrc_api.h" (api::compress / api::decompress /
// api::compress_adaptive / api::restore). Decode-side codec dispatch is a
// zero-cost header peek (`peek_header`), never exception probing.

#include <memory>
#include <span>
#include <string>

#include "common/bytes.h"
#include "common/dims.h"
#include "grid/field.h"

namespace mrc {

class Compressor {
 public:
  virtual ~Compressor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Compresses `f` under absolute error bound `abs_eb` (> 0).
  [[nodiscard]] virtual Bytes compress(const FieldF& f, double abs_eb) const = 0;

  /// Reconstructs the field from a stream produced by compress().
  [[nodiscard]] virtual FieldF decompress(std::span<const std::byte> stream) const = 0;
};

/// Compression ratio: original float bytes / compressed bytes.
[[nodiscard]] double compression_ratio(index_t n_values, std::size_t compressed_bytes);

/// Round-trip convenience used everywhere in benches/tests.
struct RoundTrip {
  FieldF reconstructed;
  std::size_t compressed_bytes = 0;
  double ratio = 0.0;
};
[[nodiscard]] RoundTrip round_trip(const Compressor& c, const FieldF& f, double abs_eb);

/// Decoded container header of any mrcomp stream — codec streams, sz3mr
/// level streams, and snapshots all start with the same layout, so one
/// reader identifies any of them without touching the payload:
///   u32     container magic "MRC1"
///   u8      container version
///   u32     codec magic (the registry / stream-kind id)
///   varint  nx, ny, nz
///   f64     absolute error bound
///   varint  entropy shard count (version >= 7 only; v6 and older imply 1)
struct StreamHeader {
  std::uint32_t codec_magic = 0;
  unsigned version = 0;
  Dim3 dims;
  double eb = 0.0;
  /// Entropy-layout minor version: shards the writer split each Huffman
  /// code stream into (1 = the frozen monolithic v6 layout).
  std::uint32_t entropy_shards = 1;
  std::size_t header_bytes = 0;  ///< offset where the payload begins
};

/// Parses and validates the container header. Throws CodecError on anything
/// that is not a well-formed mrcomp stream (wrong magic, unsupported
/// version, truncation, absurd extents, non-finite eb).
[[nodiscard]] StreamHeader peek_header(std::span<const std::byte> stream);

namespace detail {

/// Caps how much per-lane (thread_local) codec scratch survives a call.
/// Brick-sized buffers — the container hot path this scratch exists for —
/// stay well under the cap and are reused across tasks; a monolithic
/// full-field call releases its field-sized buffer instead of pinning it in
/// the thread_local for the rest of the thread's life.
inline constexpr std::size_t kScratchKeepBytes = std::size_t{32} << 20;

template <typename V>
inline void trim_scratch(V& v) {
  if (v.capacity() * sizeof(typename V::value_type) > kScratchKeepBytes) {
    V{}.swap(v);
  }
}

/// Trims a scratch vector on every scope exit — including the CodecError
/// paths, so a failed decode of a huge corrupt stream cannot pin a
/// field-sized buffer in the thread_local either.
template <typename V>
class ScratchGuard {
 public:
  explicit ScratchGuard(V& v) : v_(v) {}
  ~ScratchGuard() { trim_scratch(v_); }
  ScratchGuard(const ScratchGuard&) = delete;
  ScratchGuard& operator=(const ScratchGuard&) = delete;

 private:
  V& v_;
};

inline constexpr std::uint32_t kContainerMagic = 0x3143'524d;  // "MRC1"
// v7 is the sharded entropy layout (a trailing varint shard count in the
// header, Huffman code streams split into independently decodable chunks);
// it is written *only* when a writer was asked for >1 shard, so every
// default stream stays byte-identical to v6 and the frozen goldens hold.
// v6 adds the progressive residual container (progressive/progressive.h);
// v5 the adaptive multi-resolution container (adaptive/adaptive.h);
// v4 added the LOD pyramid (pyramid/pyramid.h); v3 the tiled container
// (tiled/tiled.h). Older streams still parse — peek_header accepts any
// version up to kContainerVersionMax.
inline constexpr std::uint8_t kContainerVersion = 6;
inline constexpr std::uint8_t kContainerVersionSharded = 7;
inline constexpr std::uint8_t kContainerVersionMax = kContainerVersionSharded;

/// Writes the shared container header (layout above). entropy_shards <= 1
/// emits the frozen v6 header byte-for-byte; > 1 emits a v7 header with the
/// shard count appended.
void write_header(ByteWriter& w, std::uint32_t codec_magic, Dim3 dims, double eb,
                  std::uint32_t entropy_shards = 1);

struct Header {
  Dim3 dims;
  double eb = 0.0;
  std::uint32_t entropy_shards = 1;  ///< 1 unless a v7 header said otherwise
};
/// Reads the container header and checks the codec magic matches.
[[nodiscard]] Header read_header(ByteReader& r, std::uint32_t expected_magic,
                                 const char* codec_name);

}  // namespace detail

}  // namespace mrc
