#include "compressors/registry.h"

#include <cstdio>

#include "compressors/interp/interp_compressor.h"
#include "compressors/lorenzo/lorenzo_compressor.h"
#include "compressors/zfpx/zfpx_compressor.h"

namespace mrc {

void CodecRegistry::add(Entry e) {
  MRC_REQUIRE(!e.name.empty(), "codec entry needs a name");
  MRC_REQUIRE(e.magic != 0, "codec entry needs a stream magic: " + e.name);
  MRC_REQUIRE(static_cast<bool>(e.factory), "codec entry needs a factory: " + e.name);
  for (const auto& have : entries_) {
    MRC_REQUIRE(have.name != e.name, "duplicate codec name: " + e.name);
    MRC_REQUIRE(have.magic != e.magic, "duplicate codec magic: " + e.name);
  }
  entries_.push_back(std::move(e));
}

const CodecRegistry::Entry* CodecRegistry::find(const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

const CodecRegistry::Entry* CodecRegistry::find_magic(std::uint32_t magic) const {
  for (const auto& e : entries_)
    if (e.magic == magic) return &e;
  return nullptr;
}

std::vector<std::string> CodecRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

namespace {

std::string join_names(const CodecRegistry& reg) {
  std::string out;
  for (const auto& n : reg.names()) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

}  // namespace

std::unique_ptr<Compressor> CodecRegistry::make(const std::string& name,
                                                const CodecTuning& tuning) const {
  if (const Entry* e = find(name)) return e->factory(tuning);
  throw CodecError("unknown codec '" + name + "' (known: " + join_names(*this) + ")");
}

std::unique_ptr<Compressor> CodecRegistry::make_for_magic(
    std::uint32_t magic, const CodecTuning& tuning) const {
  if (const Entry* e = find_magic(magic)) return e->factory(tuning);
  throw CodecError("stream written by an unregistered codec (magic 0x" +
                   [&] {
                     char buf[16];
                     std::snprintf(buf, sizeof buf, "%08x", magic);
                     return std::string(buf);
                   }() +
                   ")");
}

namespace {

CodecRegistry make_builtin_registry() {
  CodecRegistry reg;
  reg.add({.name = "interp",
           .magic = InterpCompressor::kMagic,
           .description = "SZ3-class global interpolation predictor",
           .block_edge = 0,
           .factory =
               [](const CodecTuning& t) -> std::unique_ptr<Compressor> {
                 InterpConfig c;
                 c.quant_radius = t.quant_radius;
                 c.adaptive_eb = t.adaptive_eb;
                 c.alpha = t.alpha;
                 c.beta = t.beta;
                 c.entropy_shards = t.entropy_shards;
                 return std::make_unique<InterpCompressor>(c);
               }});
  reg.add({.name = "lorenzo",
           .magic = LorenzoCompressor::kMagic,
           .description = "SZ2-class Lorenzo + per-block regression",
           .block_edge = 6,
           .factory =
               [](const CodecTuning& t) -> std::unique_ptr<Compressor> {
                 LorenzoConfig c;
                 if (t.block_size > 0) c.block_size = t.block_size;
                 c.quant_radius = t.quant_radius;
                 c.use_regression = t.use_regression;
                 c.chunks = t.threads;
                 c.entropy_shards = t.entropy_shards;
                 return std::make_unique<LorenzoCompressor>(c);
               }});
  reg.add({.name = "zfpx",
           .magic = ZfpxCompressor::kMagic,
           .description = "ZFP-class fixed-accuracy transform codec",
           .block_edge = ZfpxCompressor::kBlock,
           .factory =
               [](const CodecTuning& t) -> std::unique_ptr<Compressor> {
                 ZfpxConfig c;
                 c.chunks = t.threads;
                 c.entropy_shards = t.entropy_shards;
                 return std::make_unique<ZfpxCompressor>(c);
               }});
  return reg;
}

}  // namespace

CodecRegistry& registry() {
  static CodecRegistry reg = make_builtin_registry();
  return reg;
}

}  // namespace mrc
