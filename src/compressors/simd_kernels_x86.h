#pragma once

// Vector bodies of the predict+quantize row kernels, included by the per-ISA
// translation units with
//   MRC_SIMD_NS    the implementation namespace (e.g. ksse2 / kavx2)
//   MRC_SIMD_AVX2  1 for one 256-bit double vector per step, 0 for a pair of
//                  128-bit vectors (the x86-64 SSE2 baseline)
//
// Everything here must stay bit-identical to the scalar reference in
// simd_kernels_scalar.h. The rules that make that true:
//   * every scalar operation maps to exactly one vector operation in the
//     same order (no FMA — these TUs are never compiled with -mfma, and
//     contraction cannot happen without it),
//   * llround is emulated as magic-number round-to-even ((x + 1.5*2^52) -
//     1.5*2^52, exact for |x| < 2^51, guaranteed by the radius guard) plus a
//     sign-aware tie correction: +1 when x - r == +0.5 and x > 0, -1 when
//     x - r == -0.5 and x < 0 — which is precisely round-half-away-from-zero,
//   * negation is a sign-bit xor (vsub(0, a) would flip the sign of zero
//     differently),
//   * lanes that fail any quantizer check compute garbage freely and are
//     masked out of the code/recon stores; outliers are patched from the
//     lane mask in ascending order, matching the scalar push order,
//   * radius >= 2^30 (codes would not fit int32) falls back to scalar.

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "compressors/simd_kernels.h"
#include "compressors/simd_kernels_scalar.h"

namespace mrc::simd::MRC_SIMD_NS {

namespace sd = mrc::simd::detail;

#if MRC_SIMD_AVX2

using vd = __m256d;
inline vd vset1(double x) { return _mm256_set1_pd(x); }
inline vd vadd(vd a, vd b) { return _mm256_add_pd(a, b); }
inline vd vsub(vd a, vd b) { return _mm256_sub_pd(a, b); }
inline vd vmul(vd a, vd b) { return _mm256_mul_pd(a, b); }
inline vd vdiv(vd a, vd b) { return _mm256_div_pd(a, b); }
inline vd vand(vd a, vd b) { return _mm256_and_pd(a, b); }
inline vd vandnot(vd a, vd b) { return _mm256_andnot_pd(a, b); }  // ~a & b
inline vd vxor(vd a, vd b) { return _mm256_xor_pd(a, b); }
inline vd cmp_lt(vd a, vd b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
inline vd cmp_le(vd a, vd b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
inline vd cmp_eq(vd a, vd b) { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
inline vd cvt_f(__m128 f) { return _mm256_cvtps_pd(f); }
inline __m128 cvt_d(vd x) { return _mm256_cvtpd_ps(x); }
inline __m128i cvtt_i(vd x) { return _mm256_cvttpd_epi32(x); }
inline vd cvt_i(__m128i x) { return _mm256_cvtepi32_pd(x); }
/// Narrows a 64-bit lane mask to the matching 32-bit float-lane mask.
inline __m128 mask_ps(vd m) {
  const __m128 lo = _mm_castpd_ps(_mm256_castpd256_pd128(m));
  const __m128 hi = _mm_castpd_ps(_mm256_extractf128_pd(m, 1));
  return _mm_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0));
}
inline vd viota(double base) {
  return _mm256_setr_pd(base, base + 1.0, base + 2.0, base + 3.0);
}

#else  // SSE2 pair

struct vd {
  __m128d lo, hi;
};
inline vd vset1(double x) { return {_mm_set1_pd(x), _mm_set1_pd(x)}; }
inline vd vadd(vd a, vd b) { return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)}; }
inline vd vsub(vd a, vd b) { return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)}; }
inline vd vmul(vd a, vd b) { return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)}; }
inline vd vdiv(vd a, vd b) { return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)}; }
inline vd vand(vd a, vd b) { return {_mm_and_pd(a.lo, b.lo), _mm_and_pd(a.hi, b.hi)}; }
inline vd vandnot(vd a, vd b) {
  return {_mm_andnot_pd(a.lo, b.lo), _mm_andnot_pd(a.hi, b.hi)};
}
inline vd vxor(vd a, vd b) { return {_mm_xor_pd(a.lo, b.lo), _mm_xor_pd(a.hi, b.hi)}; }
inline vd cmp_lt(vd a, vd b) {
  return {_mm_cmplt_pd(a.lo, b.lo), _mm_cmplt_pd(a.hi, b.hi)};
}
inline vd cmp_le(vd a, vd b) {
  return {_mm_cmple_pd(a.lo, b.lo), _mm_cmple_pd(a.hi, b.hi)};
}
inline vd cmp_eq(vd a, vd b) {
  return {_mm_cmpeq_pd(a.lo, b.lo), _mm_cmpeq_pd(a.hi, b.hi)};
}
inline vd cvt_f(__m128 f) {
  return {_mm_cvtps_pd(f), _mm_cvtps_pd(_mm_movehl_ps(f, f))};
}
inline __m128 cvt_d(vd x) {
  return _mm_movelh_ps(_mm_cvtpd_ps(x.lo), _mm_cvtpd_ps(x.hi));
}
inline __m128i cvtt_i(vd x) {
  return _mm_unpacklo_epi64(_mm_cvttpd_epi32(x.lo), _mm_cvttpd_epi32(x.hi));
}
inline vd cvt_i(__m128i x) {
  return {_mm_cvtepi32_pd(x),
          _mm_cvtepi32_pd(_mm_shuffle_epi32(x, _MM_SHUFFLE(1, 0, 3, 2)))};
}
inline __m128 mask_ps(vd m) {
  return _mm_shuffle_ps(_mm_castpd_ps(m.lo), _mm_castpd_ps(m.hi),
                        _MM_SHUFFLE(2, 0, 2, 0));
}
inline vd viota(double base) {
  return {_mm_setr_pd(base, base + 1.0), _mm_setr_pd(base + 2.0, base + 3.0)};
}

#endif

inline vd vabs(vd x) { return vandnot(vset1(-0.0), x); }
inline vd vneg(vd x) { return vxor(x, vset1(-0.0)); }

/// Vector quantizer constants (sd::QP broadcast, plus llround helpers).
struct QV {
  vd two_eb, range, radius_d, eb, half, neg_half, zero, one, magic;
};
inline QV make_qv(const sd::QP& p) {
  return {vset1(p.two_eb), vset1(p.range),  vset1(p.radius_d),
          vset1(p.eb),     vset1(0.5),      vset1(-0.5),
          vset1(0.0),      vset1(1.0),      vset1(6755399441055744.0)};  // 2^52+2^51
}

/// std::llround in the double domain: round-to-even via the magic constant,
/// then push exact .5 ties away from zero. Valid for |x| < 2^51; lanes
/// outside (which always fail the quantizer's range check) produce garbage
/// that the caller masks off.
inline vd round_llround(vd x, const QV& qv) {
  vd r = vsub(vadd(x, qv.magic), qv.magic);
  const vd d = vsub(x, r);  // exact: |d| <= 0.5
  r = vadd(r, vand(vand(cmp_eq(d, qv.half), cmp_lt(qv.zero, x)), qv.one));
  r = vsub(r, vand(vand(cmp_eq(d, qv.neg_half), cmp_lt(x, qv.zero)), qv.one));
  return r;
}

/// Quantizes 4 lanes against `pred`, storing codes+recon; returns the
/// outlier lane mask (bit b set => lane b escaped).
inline int quant4(__m128 forig, vd pred, const QV& qv, std::uint32_t* codes,
                  float* recon) {
  const vd xd = cvt_f(forig);
  const vd diff = vsub(xd, pred);
  const vd ok1 = cmp_lt(vabs(diff), qv.range);
  const vd q = round_llround(vdiv(diff, qv.two_eb), qv);
  const vd ok2 = cmp_lt(vabs(q), qv.radius_d);
  const __m128 candf = cvt_d(vadd(pred, vmul(qv.two_eb, q)));
  const vd candd = cvt_f(candf);
  const vd ok3 = cmp_le(vabs(vsub(candd, xd)), qv.eb);
  const __m128 mf = mask_ps(vand(ok1, vand(ok2, ok3)));
  const __m128i code = _mm_and_si128(cvtt_i(vadd(q, qv.radius_d)), _mm_castps_si128(mf));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(codes), code);
  _mm_storeu_ps(recon, _mm_or_ps(_mm_and_ps(mf, candf), _mm_andnot_ps(mf, forig)));
  return _mm_movemask_ps(mf) ^ 0xf;
}

inline void push_bad(const float* orig, int bad, AlignedVec<float>& outliers) {
  while (bad != 0) {
    const int b = std::countr_zero(static_cast<unsigned>(bad));
    outliers.push_back(orig[b]);
    bad &= bad - 1;
  }
}

/// Dequantizes 4 lanes; outlier (code 0) lanes hold garbage for the caller
/// to patch. Returns the outlier lane mask.
inline int dequant4(const std::uint32_t* codes, vd pred, const QV& qv, float* recon) {
  const __m128i ci = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes));
  const int zmask =
      _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(ci, _mm_setzero_si128())));
  const vd qd = vsub(cvt_i(ci), qv.radius_d);
  _mm_storeu_ps(recon, cvt_d(vadd(pred, vmul(qv.two_eb, qd))));
  return zmask;
}

inline void patch_outliers(float* recon, int zmask, std::span<const float> outliers,
                           std::size_t& pos) {
  while (zmask != 0) {
    const int b = std::countr_zero(static_cast<unsigned>(zmask));
    if (pos >= outliers.size()) throw CodecError("quantizer: outlier underrun");
    recon[b] = outliers[pos++];
    zmask &= zmask - 1;
  }
}

/// Codes are masked into int32 lanes, so a radius at or past 2^30 (code
/// range 2*radius would overflow) takes the scalar path instead.
inline bool vectorizable(std::uint32_t radius, std::size_t n) {
  return radius < (1u << 30) && n >= 4;
}

void k_quantize_linear(const float* orig, const float* lo, const float* hi,
                       std::size_t n, double eb, std::uint32_t radius,
                       std::uint32_t* codes, float* recon, AlignedVec<float>& outliers) {
  if (!vectorizable(radius, n)) {
    sd::s_quantize_linear(orig, lo, hi, n, eb, radius, codes, recon, outliers);
    return;
  }
  const QV qv = make_qv(sd::make_qp(eb, radius));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Neighbour sum in FLOAT first — that is what the scalar expression does.
    const __m128 s = _mm_add_ps(_mm_loadu_ps(lo + i), _mm_loadu_ps(hi + i));
    const vd pred = vmul(qv.half, cvt_f(s));
    const int bad = quant4(_mm_loadu_ps(orig + i), pred, qv, codes + i, recon + i);
    if (bad != 0) push_bad(orig + i, bad, outliers);
  }
  sd::s_quantize_linear(orig, lo, hi, n, eb, radius, codes, recon, outliers, i);
}

void k_quantize_cubic(const float* orig, const float* a, const float* b, const float* c,
                      const float* d, std::size_t n, double eb, std::uint32_t radius,
                      std::uint32_t* codes, float* recon, AlignedVec<float>& outliers) {
  if (!vectorizable(radius, n)) {
    sd::s_quantize_cubic(orig, a, b, c, d, n, eb, radius, codes, recon, outliers);
    return;
  }
  const QV qv = make_qv(sd::make_qp(eb, radius));
  const vd nine = vset1(9.0), sixteen = vset1(16.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const vd A = cvt_f(_mm_loadu_ps(a + i)), B = cvt_f(_mm_loadu_ps(b + i));
    const vd C = cvt_f(_mm_loadu_ps(c + i)), D = cvt_f(_mm_loadu_ps(d + i));
    vd t = vadd(vneg(A), vmul(nine, B));
    t = vadd(t, vmul(nine, C));
    t = vsub(t, D);
    const vd pred = vdiv(t, sixteen);
    const int bad = quant4(_mm_loadu_ps(orig + i), pred, qv, codes + i, recon + i);
    if (bad != 0) push_bad(orig + i, bad, outliers);
  }
  sd::s_quantize_cubic(orig, a, b, c, d, n, eb, radius, codes, recon, outliers, i);
}

void k_quantize_constant(const float* orig, const float* src, std::size_t n, double eb,
                         std::uint32_t radius, std::uint32_t* codes, float* recon,
                         AlignedVec<float>& outliers) {
  if (!vectorizable(radius, n)) {
    sd::s_quantize_constant(orig, src, n, eb, radius, codes, recon, outliers);
    return;
  }
  const QV qv = make_qv(sd::make_qp(eb, radius));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const vd pred = cvt_f(_mm_loadu_ps(src + i));
    const int bad = quant4(_mm_loadu_ps(orig + i), pred, qv, codes + i, recon + i);
    if (bad != 0) push_bad(orig + i, bad, outliers);
  }
  sd::s_quantize_constant(orig, src, n, eb, radius, codes, recon, outliers, i);
}

void k_quantize_plane(const float* orig, std::size_t n, double m, double gx, double ci,
                      double aj, double ak, double eb, std::uint32_t radius,
                      std::uint32_t* codes, float* recon, AlignedVec<float>& outliers) {
  if (!vectorizable(radius, n)) {
    sd::s_quantize_plane(orig, n, m, gx, ci, aj, ak, eb, radius, codes, recon, outliers);
    return;
  }
  const QV qv = make_qv(sd::make_qp(eb, radius));
  const vd mm = vset1(m), vgx = vset1(gx), vci = vset1(ci);
  const vd vaj = vset1(aj), vak = vset1(ak);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const vd di = vsub(viota(static_cast<double>(i)), vci);
    const vd pred = vadd(vadd(vadd(mm, vmul(vgx, di)), vaj), vak);
    const int bad = quant4(_mm_loadu_ps(orig + i), pred, qv, codes + i, recon + i);
    if (bad != 0) push_bad(orig + i, bad, outliers);
  }
  sd::s_quantize_plane(orig, n, m, gx, ci, aj, ak, eb, radius, codes, recon, outliers, i);
}

void k_dequantize_linear(const std::uint32_t* codes, const float* lo, const float* hi,
                         std::size_t n, double eb, std::uint32_t radius, float* recon,
                         std::span<const float> outliers, std::size_t& pos) {
  if (!vectorizable(radius, n)) {
    sd::s_dequantize_linear(codes, lo, hi, n, eb, radius, recon, outliers, pos);
    return;
  }
  const QV qv = make_qv(sd::make_qp(eb, radius));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 s = _mm_add_ps(_mm_loadu_ps(lo + i), _mm_loadu_ps(hi + i));
    const vd pred = vmul(qv.half, cvt_f(s));
    const int z = dequant4(codes + i, pred, qv, recon + i);
    if (z != 0) patch_outliers(recon + i, z, outliers, pos);
  }
  sd::s_dequantize_linear(codes, lo, hi, n, eb, radius, recon, outliers, pos, i);
}

void k_dequantize_cubic(const std::uint32_t* codes, const float* a, const float* b,
                        const float* c, const float* d, std::size_t n, double eb,
                        std::uint32_t radius, float* recon,
                        std::span<const float> outliers, std::size_t& pos) {
  if (!vectorizable(radius, n)) {
    sd::s_dequantize_cubic(codes, a, b, c, d, n, eb, radius, recon, outliers, pos);
    return;
  }
  const QV qv = make_qv(sd::make_qp(eb, radius));
  const vd nine = vset1(9.0), sixteen = vset1(16.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const vd A = cvt_f(_mm_loadu_ps(a + i)), B = cvt_f(_mm_loadu_ps(b + i));
    const vd C = cvt_f(_mm_loadu_ps(c + i)), D = cvt_f(_mm_loadu_ps(d + i));
    vd t = vadd(vneg(A), vmul(nine, B));
    t = vadd(t, vmul(nine, C));
    t = vsub(t, D);
    const vd pred = vdiv(t, sixteen);
    const int z = dequant4(codes + i, pred, qv, recon + i);
    if (z != 0) patch_outliers(recon + i, z, outliers, pos);
  }
  sd::s_dequantize_cubic(codes, a, b, c, d, n, eb, radius, recon, outliers, pos, i);
}

void k_dequantize_constant(const std::uint32_t* codes, const float* src, std::size_t n,
                           double eb, std::uint32_t radius, float* recon,
                           std::span<const float> outliers, std::size_t& pos) {
  if (!vectorizable(radius, n)) {
    sd::s_dequantize_constant(codes, src, n, eb, radius, recon, outliers, pos);
    return;
  }
  const QV qv = make_qv(sd::make_qp(eb, radius));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const vd pred = cvt_f(_mm_loadu_ps(src + i));
    const int z = dequant4(codes + i, pred, qv, recon + i);
    if (z != 0) patch_outliers(recon + i, z, outliers, pos);
  }
  sd::s_dequantize_constant(codes, src, n, eb, radius, recon, outliers, pos, i);
}

void k_dequantize_plane(const std::uint32_t* codes, std::size_t n, double m, double gx,
                        double ci, double aj, double ak, double eb, std::uint32_t radius,
                        float* recon, std::span<const float> outliers, std::size_t& pos) {
  if (!vectorizable(radius, n)) {
    sd::s_dequantize_plane(codes, n, m, gx, ci, aj, ak, eb, radius, recon, outliers, pos);
    return;
  }
  const QV qv = make_qv(sd::make_qp(eb, radius));
  const vd mm = vset1(m), vgx = vset1(gx), vci = vset1(ci);
  const vd vaj = vset1(aj), vak = vset1(ak);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const vd di = vsub(viota(static_cast<double>(i)), vci);
    const vd pred = vadd(vadd(vadd(mm, vmul(vgx, di)), vaj), vak);
    const int z = dequant4(codes + i, pred, qv, recon + i);
    if (z != 0) patch_outliers(recon + i, z, outliers, pos);
  }
  sd::s_dequantize_plane(codes, n, m, gx, ci, aj, ak, eb, radius, recon, outliers, pos, i);
}

inline constexpr mrc::simd::detail::KernelTable kTable = {
    k_quantize_linear,   k_quantize_cubic,   k_quantize_constant,   k_quantize_plane,
    k_dequantize_linear, k_dequantize_cubic, k_dequantize_constant, k_dequantize_plane,
};

}  // namespace mrc::simd::MRC_SIMD_NS
