#pragma once

// Runtime-dispatched SIMD kernels for the predictor+quantizer hot loops.
//
// The prediction-based codecs (interp, lorenzo) spend their time in rows of
// the same four shapes: a row-uniform prediction (linear / cubic / constant
// extrapolation along one axis, or a regression plane) followed by the
// LinearQuantizer encode or decode of every element. These kernels run that
// row 4 lanes at a time — predictions and the quantizer's double-precision
// checks in vector registers, outliers collected from a lane mask and
// patched after the store — and are required to be BIT-IDENTICAL to the
// scalar code they replace: same operation order, same single roundings,
// llround's round-half-away-from-zero emulated exactly (magic-number
// round-to-even plus a sign-aware tie correction). The frozen-format goldens
// pin this; tests/test_simd_kernels.cpp compares every ISA against scalar
// lane by lane.
//
// Three implementations are registered: scalar (portable reference, always
// available), SSE2 (the x86-64 baseline, two 128-bit double vectors per
// row step), and AVX2 (one 256-bit vector, compiled in its own TU with
// -mavx2 and selected only when the CPU reports AVX2). FMA is deliberately
// never enabled: a fused multiply-add changes roundings and would break
// bit-identity with the scalar path. Dispatch is a table-pointer load;
// force_isa() lets tests and benches pin a path (clamped to what the build
// and CPU support).

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/aligned.h"

namespace mrc::simd {

enum class Isa : std::uint8_t { scalar = 0, sse2 = 1, avx2 = 2 };

/// Best ISA this build + CPU supports.
[[nodiscard]] Isa best_isa();

/// Currently dispatched ISA (best_isa() unless force_isa() lowered it).
[[nodiscard]] Isa active_isa();

/// Pins dispatch to `isa` (clamped to best_isa()); returns what was applied.
/// For tests and benches — e.g. forcing scalar to produce the baseline side
/// of a bit-identity comparison.
Isa force_isa(Isa isa);

const char* isa_name(Isa isa);

// Encode kernels: quantize row `orig[0..n)` against the row-uniform
// prediction, writing codes[0..n) and recon[0..n); outlier values append to
// `outliers` in ascending lane order (exactly the scalar push order).
//   linear   pred_i = 0.5 * (float)(lo[i] + hi[i])
//   cubic    pred_i = (-a[i] + 9*b[i] + 9*c[i] - d[i]) / 16   (doubles)
//   constant pred_i = (double)src[i]
//   plane    pred_i = ((m + gx*((double)i - ci)) + aj) + ak
void quantize_row_linear(const float* orig, const float* lo, const float* hi,
                         std::size_t n, double eb, std::uint32_t radius,
                         std::uint32_t* codes, float* recon,
                         AlignedVec<float>& outliers);
void quantize_row_cubic(const float* orig, const float* a, const float* b,
                        const float* c, const float* d, std::size_t n, double eb,
                        std::uint32_t radius, std::uint32_t* codes, float* recon,
                        AlignedVec<float>& outliers);
void quantize_row_constant(const float* orig, const float* src, std::size_t n,
                           double eb, std::uint32_t radius, std::uint32_t* codes,
                           float* recon, AlignedVec<float>& outliers);
void quantize_row_plane(const float* orig, std::size_t n, double m, double gx,
                        double ci, double aj, double ak, double eb,
                        std::uint32_t radius, std::uint32_t* codes, float* recon,
                        AlignedVec<float>& outliers);

// Decode kernels: reconstruct recon[0..n) from codes[0..n) and the same
// row-uniform prediction; code 0 consumes outliers[outlier_pos++] (throws
// CodecError "outlier underrun" when exhausted).
void dequantize_row_linear(const std::uint32_t* codes, const float* lo,
                           const float* hi, std::size_t n, double eb,
                           std::uint32_t radius, float* recon,
                           std::span<const float> outliers, std::size_t& outlier_pos);
void dequantize_row_cubic(const std::uint32_t* codes, const float* a,
                          const float* b, const float* c, const float* d,
                          std::size_t n, double eb, std::uint32_t radius,
                          float* recon, std::span<const float> outliers,
                          std::size_t& outlier_pos);
void dequantize_row_constant(const std::uint32_t* codes, const float* src,
                             std::size_t n, double eb, std::uint32_t radius,
                             float* recon, std::span<const float> outliers,
                             std::size_t& outlier_pos);
void dequantize_row_plane(const std::uint32_t* codes, std::size_t n, double m,
                          double gx, double ci, double aj, double ak, double eb,
                          std::uint32_t radius, float* recon,
                          std::span<const float> outliers, std::size_t& outlier_pos);

namespace detail {

/// Per-ISA entry points. A null table means the ISA is not compiled in.
struct KernelTable {
  void (*quantize_linear)(const float*, const float*, const float*, std::size_t,
                          double, std::uint32_t, std::uint32_t*, float*,
                          AlignedVec<float>&);
  void (*quantize_cubic)(const float*, const float*, const float*, const float*,
                         const float*, std::size_t, double, std::uint32_t,
                         std::uint32_t*, float*, AlignedVec<float>&);
  void (*quantize_constant)(const float*, const float*, std::size_t, double,
                            std::uint32_t, std::uint32_t*, float*,
                            AlignedVec<float>&);
  void (*quantize_plane)(const float*, std::size_t, double, double, double,
                         double, double, double, std::uint32_t, std::uint32_t*,
                         float*, AlignedVec<float>&);
  void (*dequantize_linear)(const std::uint32_t*, const float*, const float*,
                            std::size_t, double, std::uint32_t, float*,
                            std::span<const float>, std::size_t&);
  void (*dequantize_cubic)(const std::uint32_t*, const float*, const float*,
                           const float*, const float*, std::size_t, double,
                           std::uint32_t, float*, std::span<const float>,
                           std::size_t&);
  void (*dequantize_constant)(const std::uint32_t*, const float*, std::size_t,
                              double, std::uint32_t, float*,
                              std::span<const float>, std::size_t&);
  void (*dequantize_plane)(const std::uint32_t*, std::size_t, double, double,
                           double, double, double, double, std::uint32_t, float*,
                           std::span<const float>, std::size_t&);
};

/// Defined in simd_kernels_sse2.cpp / simd_kernels_avx2.cpp; nullptr when
/// the build does not support the ISA.
const KernelTable* sse2_table();
const KernelTable* avx2_table();

}  // namespace detail

}  // namespace mrc::simd
