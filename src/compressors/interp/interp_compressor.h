#pragma once

// SZ3-class global interpolation compressor.
//
// Prediction sweeps level-by-level from the coarsest stride (2^(L-1), with
// L = ceil(log2(max extent))) down to stride 1, interpolating along x, then
// y, then z within each level. Each line endpoint (index n-1 per axis) is
// treated as an anchor predicted up front, matching the construction in
// §III-A of the paper (Fig. 7: d1 predicts d8 before the strided levels).
// Interior points use cubic interpolation where four equally spaced
// reconstructed neighbors exist, linear where two exist, and constant
// extrapolation from the left neighbor when the right neighbor falls outside
// the grid — the exact failure mode the paper's padding strategy removes.
//
// The adaptive per-level error bound implements the QoZ-style rule the paper
// adopts for multi-resolution data:
//     eb(level) = eb / min(alpha^(level-1), beta),   level 1 = finest
// with the paper's fixed alpha = 2.25, beta = 8.

#include "compressors/compressor.h"

namespace mrc {

struct InterpConfig {
  std::uint32_t quant_radius = 512;  ///< residual bins per side; code 0 = outlier
  bool cubic = true;                 ///< cubic spline where 4 neighbors exist
  bool adaptive_eb = false;          ///< per-level error-bound tightening
  double alpha = 2.25;               ///< per-level eb decay (paper §III-A)
  double beta = 8.0;                 ///< eb decay cap (paper §III-A)
  /// Requested entropy shards per stream (negotiated down by grid size; > 1
  /// writes the v7 sharded layout, 1 keeps the frozen v6 bytes).
  std::uint32_t entropy_shards = 1;
};

class InterpCompressor final : public Compressor {
 public:
  /// Stream/registry id written into the container header.
  static constexpr std::uint32_t kMagic = 0x4d33'5a53;  // "SZ3M"

  explicit InterpCompressor(InterpConfig cfg = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Bytes compress(const FieldF& f, double abs_eb) const override;
  [[nodiscard]] FieldF decompress(std::span<const std::byte> stream) const override;

  [[nodiscard]] const InterpConfig& config() const { return cfg_; }

  /// Number of interior points that require constant extrapolation (no right
  /// neighbor) when compressing a grid of these extents — the quantity the
  /// paper's Figs. 7/8 count and padding eliminates. Exposed for the
  /// bench_fig8_padding experiment and tests.
  [[nodiscard]] static index_t count_extrapolated_points(Dim3 dims);

 private:
  InterpConfig cfg_;
};

}  // namespace mrc
