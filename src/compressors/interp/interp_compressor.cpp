#include "compressors/interp/interp_compressor.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "compressors/simd_kernels.h"
#include "lossless/lzss.h"
#include "lossless/quant_codec.h"
#include "obs/obs.h"

namespace mrc {

namespace {


int ceil_log2(index_t n) {
  int l = 0;
  while ((index_t{1} << l) < n) ++l;
  return l;
}

/// Prediction along one axis of the reconstruction buffer.
/// `line` points at element 0 of the line, `ms` is the memory stride between
/// consecutive elements along the axis. Returns the prediction and whether
/// constant extrapolation was forced (right neighbor outside the grid).
struct Prediction {
  double value;
  bool extrapolated;
};

Prediction predict(const float* line, index_t ms, index_t i, index_t n, index_t s,
                   bool cubic) {
  if (i + s > n - 1) return {static_cast<double>(line[(i - s) * ms]), true};
  if (cubic && i - 3 * s >= 0 && i + 3 * s <= n - 1) {
    const double a = line[(i - 3 * s) * ms];
    const double b = line[(i - s) * ms];
    const double c = line[(i + s) * ms];
    const double d = line[(i + 3 * s) * ms];
    return {(-a + 9.0 * b + 9.0 * c - d) / 16.0, false};
  }
  return {0.5 * (line[(i - s) * ms] + line[(i + s) * ms]), false};
}

/// Indices known *before* the current level's sweep along an axis
/// (multiples of 2s) plus the per-line anchor at n-1.
std::vector<index_t> coarse_set(index_t n, index_t s) {
  std::vector<index_t> v;
  for (index_t i = 0; i < n; i += 2 * s) v.push_back(i);
  if (n > 1 && (n - 1) % (2 * s) != 0) v.push_back(n - 1);
  return v;
}

/// Indices known after this level's sweep along an axis (multiples of s)
/// plus the anchor.
std::vector<index_t> fine_set(index_t n, index_t s) {
  std::vector<index_t> v;
  for (index_t i = 0; i < n; i += s) v.push_back(i);
  if (n > 1 && (n - 1) % s != 0) v.push_back(n - 1);
  return v;
}

/// Targets of this level's sweep along an axis: i ≡ s (mod 2s), excluding the
/// anchor at n-1 which is coded up front.
std::vector<index_t> target_set(index_t n, index_t s) {
  std::vector<index_t> v;
  for (index_t i = s; i < n - 1; i += 2 * s) v.push_back(i);
  return v;
}

/// Anchor corners: every coordinate is 0 or n-1, deduplicated, ordered so a
/// corner's parent (last nonzero coordinate zeroed) always precedes it.
struct Corner {
  index_t x, y, z;
};

std::vector<Corner> corner_list(Dim3 d) {
  std::vector<Corner> corners;
  auto ends = [](index_t n) {
    return n > 1 ? std::vector<index_t>{0, n - 1} : std::vector<index_t>{0};
  };
  for (index_t z : ends(d.nz))
    for (index_t y : ends(d.ny))
      for (index_t x : ends(d.nx)) corners.push_back({x, y, z});
  return corners;  // z-major loop order already places parents first
}

double corner_prediction(const FieldF& recon, const Corner& c) {
  if (c.z != 0) return recon.at(c.x, c.y, 0);
  if (c.y != 0) return recon.at(c.x, 0, 0);
  if (c.x != 0) return recon.at(0, 0, 0);
  return 0.0;
}

/// A contiguous run of targets whose prediction is row-uniform: in the s==1
/// y-sweep every x makes one row per (y, z) with sources at y±1 (and y±3 for
/// cubic); in the s==1 z-sweep the whole fully-fine x-y slab of a target z
/// is one run with slab sources at z±1 / z±3. Targets always have a right
/// neighbour at s==1 (target_set stops at n-2), so constant extrapolation
/// never appears in these runs — the kinds are exactly linear and cubic.
/// traverse() hands these to its row handler (the SIMD kernel hook);
/// everything else (corners, x-sweep, s>1 levels) stays per-point.
enum class RowKind : std::uint8_t { linear, cubic };

struct RowCtx {
  index_t row = 0;  ///< linear index of the first element
  index_t n = 0;    ///< contiguous element count
  int lev = 1;
  RowKind kind = RowKind::linear;
  index_t a = 0, b = 0, c = 0, d = 0;  ///< source-run starts: b/c = ∓s, a/d = ∓3s
};

/// Visits every grid point exactly once in the fixed compressor order.
/// handler(linear_index, prediction, level, extrapolated) where level = 1 is
/// the finest stride and corners report the coarsest level; row-uniform runs
/// go to rows(RowCtx) instead (same traversal positions, same order).
template <typename Handler, typename RowHandler>
void traverse(const Dim3& d, FieldF& recon, bool cubic, Handler&& handler,
              RowHandler&& rows) {
  const int levels = std::max(ceil_log2(d.max_extent()), 1);

  for (const Corner& c : corner_list(d)) {
    const double pred = corner_prediction(recon, c);
    handler(d.index(c.x, c.y, c.z), pred, levels, false);
  }

  float* base = recon.data();
  const index_t sx = 1, sy = d.nx, sz = d.nx * d.ny;

  for (int lev = levels; lev >= 1; --lev) {
    const index_t s = index_t{1} << (lev - 1);

    // Sweep along x: y and z on the coarse grid.
    {
      const auto tx = target_set(d.nx, s);
      if (!tx.empty()) {
        const auto cy = coarse_set(d.ny, s);
        const auto cz = coarse_set(d.nz, s);
        for (index_t z : cz)
          for (index_t y : cy) {
            const float* line = base + d.index(0, y, z);
            for (index_t x : tx) {
              const auto p = predict(line, sx, x, d.nx, s, cubic);
              handler(d.index(x, y, z), p.value, lev, p.extrapolated);
            }
          }
      }
    }
    // Sweep along y: x already refined this level, z still coarse.
    {
      const auto ty = target_set(d.ny, s);
      if (!ty.empty()) {
        const auto cz = coarse_set(d.nz, s);
        if (s == 1) {
          // fine_set(nx, 1) is every x in order: one contiguous row per (y, z).
          for (index_t z : cz)
            for (index_t y : ty) {
              RowCtx rc;
              rc.row = d.index(0, y, z);
              rc.n = d.nx;
              rc.lev = lev;
              rc.b = d.index(0, y - 1, z);
              rc.c = d.index(0, y + 1, z);
              if (cubic && y - 3 >= 0 && y + 3 <= d.ny - 1) {
                rc.kind = RowKind::cubic;
                rc.a = d.index(0, y - 3, z);
                rc.d = d.index(0, y + 3, z);
              }
              rows(rc);
            }
        } else {
          const auto fx = fine_set(d.nx, s);
          for (index_t z : cz)
            for (index_t y : ty)
              for (index_t x : fx) {
                const float* line = base + d.index(x, 0, z);
                const auto p = predict(line, sy, y, d.ny, s, cubic);
                handler(d.index(x, y, z), p.value, lev, p.extrapolated);
              }
        }
      }
    }
    // Sweep along z: x and y refined this level.
    {
      const auto tz = target_set(d.nz, s);
      if (!tz.empty()) {
        if (s == 1) {
          // Both in-slab axes fully fine: each target z is one contiguous
          // nx*ny run predicted from the z∓1 (and z∓3) slabs.
          for (index_t z : tz) {
            RowCtx rc;
            rc.row = d.index(0, 0, z);
            rc.n = d.nx * d.ny;
            rc.lev = lev;
            rc.b = d.index(0, 0, z - 1);
            rc.c = d.index(0, 0, z + 1);
            if (cubic && z - 3 >= 0 && z + 3 <= d.nz - 1) {
              rc.kind = RowKind::cubic;
              rc.a = d.index(0, 0, z - 3);
              rc.d = d.index(0, 0, z + 3);
            }
            rows(rc);
          }
        } else {
          const auto fx = fine_set(d.nx, s);
          const auto fy = fine_set(d.ny, s);
          for (index_t z : tz)
            for (index_t y : fy)
              for (index_t x : fx) {
                const float* line = base + d.index(x, y, 0);
                const auto p = predict(line, sz, z, d.nz, s, cubic);
                handler(d.index(x, y, z), p.value, lev, p.extrapolated);
              }
        }
      }
    }
  }
}

/// Per-point traverse: row-uniform runs are replayed element-wise through
/// `handler` with exactly the predictions predict() would produce.
template <typename Handler>
void traverse(const Dim3& d, FieldF& recon, bool cubic, Handler&& handler) {
  const float* base = recon.data();
  traverse(d, recon, cubic, handler, [&](const RowCtx& rc) {
    const float* b = base + rc.b;
    const float* c = base + rc.c;
    if (rc.kind == RowKind::cubic) {
      const float* a = base + rc.a;
      const float* dd = base + rc.d;
      for (index_t i = 0; i < rc.n; ++i) {
        const double pred = (-static_cast<double>(a[i]) + 9.0 * b[i] + 9.0 * c[i] -
                             static_cast<double>(dd[i])) /
                            16.0;
        handler(rc.row + i, pred, rc.lev, false);
      }
    } else {
      for (index_t i = 0; i < rc.n; ++i)
        handler(rc.row + i, 0.5 * (b[i] + c[i]), rc.lev, false);
    }
  });
}

/// Per-level error bound (QoZ-style; level 1 = finest keeps the full bound).
double level_eb(double eb, int level, const InterpConfig& cfg) {
  if (!cfg.adaptive_eb || level <= 1) return eb;
  const double factor = std::min(std::pow(cfg.alpha, level - 1), cfg.beta);
  return eb / factor;
}

// The two traverse passes live in their own non-inlined functions, free of
// any obs:: code, so the OBS_SPANs at their call sites cannot perturb the
// hot loop's codegen (see the placement rule next to OBS_SPAN in obs/obs.h).

MRC_OBS_NOINLINE std::size_t predict_quant_pass(const FieldF& f, double abs_eb,
                                                const InterpConfig& cfg,
                                                FieldF& recon,
                                                AlignedVec<std::uint32_t>& codes,
                                                AlignedVec<float>& outliers) {
  const auto radius = cfg.quant_radius;
  const float* orig = f.data();
  float* rec = recon.data();
  std::size_t emitted = 0;
  traverse(
      f.dims(), recon, cfg.cubic,
      [&](index_t idx, double pred, int level, bool /*extrap*/) {
        const double eb = level_eb(abs_eb, level, cfg);
        const float x = orig[idx];
        const double diff = static_cast<double>(x) - pred;
        std::uint32_t code = 0;
        if (std::abs(diff) < 2.0 * eb * radius) {
          const auto q = std::llround(diff / (2.0 * eb));
          if (std::llabs(q) < radius) {
            const auto cand =
                static_cast<float>(pred + 2.0 * eb * static_cast<double>(q));
            if (std::abs(static_cast<double>(cand) - static_cast<double>(x)) <= eb) {
              code = static_cast<std::uint32_t>(q + radius);
              rec[idx] = cand;
            }
          }
        }
        if (code == 0) {
          outliers.push_back(x);
          rec[idx] = x;
        }
        codes[emitted++] = code;
      },
      [&](const RowCtx& rc) {
        const double eb = level_eb(abs_eb, rc.lev, cfg);
        const auto n = static_cast<std::size_t>(rc.n);
        const float* op = orig + rc.row;
        std::uint32_t* cp = codes.data() + emitted;
        float* rp = rec + rc.row;
        if (rc.kind == RowKind::cubic)
          simd::quantize_row_cubic(op, rec + rc.a, rec + rc.b, rec + rc.c, rec + rc.d,
                                   n, eb, radius, cp, rp, outliers);
        else
          simd::quantize_row_linear(op, rec + rc.b, rec + rc.c, n, eb, radius, cp, rp,
                                    outliers);
        emitted += n;
      });
  return emitted;
}

MRC_OBS_NOINLINE void predict_recon_pass(const Dim3& dims, double stream_eb,
                                         const InterpConfig& cfg, FieldF& recon,
                                         const AlignedVec<std::uint32_t>& codes,
                                         const AlignedVec<float>& outliers) {
  std::size_t ci = 0;
  std::size_t oi = 0;
  const auto radius = cfg.quant_radius;
  float* rec = recon.data();
  const std::span<const float> ospan(outliers.data(), outliers.size());
  traverse(
      dims, recon, cfg.cubic,
      [&](index_t idx, double pred, int level, bool /*extrap*/) {
        const double eb = level_eb(stream_eb, level, cfg);
        const std::uint32_t code = codes[ci++];
        if (code == 0) {
          if (oi >= outliers.size()) throw CodecError("interp: outlier underrun");
          rec[idx] = outliers[oi++];
        } else {
          const auto q = static_cast<std::int64_t>(code) - radius;
          rec[idx] = static_cast<float>(pred + 2.0 * eb * static_cast<double>(q));
        }
      },
      [&](const RowCtx& rc) {
        const double eb = level_eb(stream_eb, rc.lev, cfg);
        const auto n = static_cast<std::size_t>(rc.n);
        const std::uint32_t* cp = codes.data() + ci;
        float* rp = rec + rc.row;
        if (rc.kind == RowKind::cubic)
          simd::dequantize_row_cubic(cp, rec + rc.a, rec + rc.b, rec + rc.c,
                                     rec + rc.d, n, eb, radius, rp, ospan, oi);
        else
          simd::dequantize_row_linear(cp, rec + rc.b, rec + rc.c, n, eb, radius, rp,
                                      ospan, oi);
        ci += n;
      });
  if (oi != outliers.size()) throw CodecError("interp: outlier overrun");
}

}  // namespace

InterpCompressor::InterpCompressor(InterpConfig cfg) : cfg_(cfg) {
  MRC_REQUIRE(cfg_.quant_radius >= 2, "quant radius too small");
  MRC_REQUIRE(cfg_.alpha > 1.0 && cfg_.beta >= 1.0, "bad adaptive-eb parameters");
}

std::string InterpCompressor::name() const {
  return cfg_.adaptive_eb ? "interp(adaptive-eb)" : "interp";
}

Bytes InterpCompressor::compress(const FieldF& f, double abs_eb) const {
  MRC_REQUIRE(abs_eb > 0.0, "error bound must be positive");
  MRC_REQUIRE(!f.empty(), "empty field");
  const Dim3 d = f.dims();
  const auto radius = cfg_.quant_radius;

  FieldF recon(d);
  // Per-lane scratch: tiled/pyramid/adaptive containers run one compress per
  // brick on an exec-pool lane, so these buffers are reused across bricks
  // instead of reallocated for each one. 64-byte aligned so the SIMD row
  // kernels' stores start on cache-line boundaries.
  thread_local AlignedVec<std::uint32_t> codes;
  thread_local AlignedVec<float> outliers;
  const detail::ScratchGuard gc(codes);
  const detail::ScratchGuard go(outliers);
  codes.resize(static_cast<std::size_t>(d.size()));
  outliers.clear();
  std::size_t emitted = 0;

  static obs::Counter& ns_pq =
      obs::Registry::global().counter("mrc.codec.predict_quant_ns");
  static obs::Counter& ns_ent =
      obs::Registry::global().counter("mrc.codec.entropy_ns");
  static obs::Counter& ns_ll =
      obs::Registry::global().counter("mrc.codec.lossless_ns");

  {
    OBS_SPAN("interp.predict_quant", &ns_pq);
    emitted = predict_quant_pass(f, abs_eb, cfg_, recon, codes, outliers);
  }
  MRC_REQUIRE(emitted == codes.size(), "traversal did not cover the grid");

  // The negotiated shard count (not the raw request) goes into the header,
  // so the container version and the entropy stream's actual layout agree;
  // 1 keeps the frozen v6 header and monolithic stream byte-for-byte.
  const std::uint32_t shards = lossless::negotiate_entropy_shards(
      static_cast<std::uint64_t>(d.size()), cfg_.entropy_shards);
  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, kMagic, d, abs_eb, shards);
  w.put(static_cast<std::uint8_t>(cfg_.adaptive_eb ? 1 : 0));
  w.put(static_cast<std::uint8_t>(cfg_.cubic ? 1 : 0));
  w.put(cfg_.alpha);
  w.put(cfg_.beta);
  w.put_varint(radius);

  {
    OBS_SPAN("interp.entropy", &ns_ent);
    w.put_blob(lossless::encode_quant_codes_sharded(codes, radius, shards));
  }
  {
    OBS_SPAN("interp.lossless", &ns_ll);
    const auto outlier_bytes = std::as_bytes(std::span<const float>(outliers));
    w.put_blob(lossless::lzss_compress(outlier_bytes));
  }
  return out;
}

FieldF InterpCompressor::decompress(std::span<const std::byte> stream) const {
  ByteReader r(stream);
  const auto h = detail::read_header(r, kMagic, "interp");

  InterpConfig cfg;
  cfg.adaptive_eb = r.get<std::uint8_t>() != 0;
  cfg.cubic = r.get<std::uint8_t>() != 0;
  cfg.alpha = r.get<double>();
  cfg.beta = r.get<double>();
  cfg.quant_radius = static_cast<std::uint32_t>(r.get_varint());

  // Per-lane scratch (see compress); decode_quant_codes_into validates the
  // stream's count against the header dims before sizing the buffer, then
  // writes straight into it.
  thread_local AlignedVec<std::uint32_t> codes;
  thread_local AlignedVec<float> outliers;
  const detail::ScratchGuard gc(codes);
  const detail::ScratchGuard go(outliers);
  static obs::Counter& ns_ent =
      obs::Registry::global().counter("mrc.codec.entropy_ns");
  static obs::Counter& ns_ll =
      obs::Registry::global().counter("mrc.codec.lossless_ns");
  static obs::Counter& ns_pq =
      obs::Registry::global().counter("mrc.codec.predict_quant_ns");
  {
    OBS_SPAN("interp.entropy", &ns_ent);
    lossless::decode_quant_codes_into(r.get_blob(), cfg.quant_radius, codes,
                                      static_cast<std::uint64_t>(h.dims.size()));
  }
  {
    OBS_SPAN("interp.lossless", &ns_ll);
    const auto outlier_raw = lossless::lzss_decompress(r.get_blob());
    if (outlier_raw.size() % sizeof(float) != 0)
      throw CodecError("interp: bad outlier blob");
    outliers.resize(outlier_raw.size() / sizeof(float));
    std::memcpy(outliers.data(), outlier_raw.data(), outlier_raw.size());
  }

  FieldF recon(h.dims);
  OBS_SPAN("interp.predict_recon", &ns_pq);
  predict_recon_pass(h.dims, h.eb, cfg, recon, codes, outliers);
  return recon;
}

index_t InterpCompressor::count_extrapolated_points(Dim3 dims) {
  FieldF scratch(dims, 0.0f);
  index_t count = 0;
  traverse(dims, scratch, /*cubic=*/true,
           [&](index_t, double, int, bool extrap) { count += extrap ? 1 : 0; });
  return count;
}

}  // namespace mrc
