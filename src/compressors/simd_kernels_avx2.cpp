// AVX2 kernel TU — CMakeLists compiles exactly this file with -mavx2 (never
// -mfma: fused multiply-adds would change roundings and break bit-identity
// with the scalar path). On toolchains where that flag is unavailable the
// guard below compiles the TU to a null table and dispatch stays on SSE2.

#include "compressors/simd_kernels.h"

#if defined(__AVX2__)

#define MRC_SIMD_NS kavx2
#define MRC_SIMD_AVX2 1
#include "compressors/simd_kernels_x86.h"

namespace mrc::simd::detail {
const KernelTable* avx2_table() { return &mrc::simd::kavx2::kTable; }
}  // namespace mrc::simd::detail

#else

namespace mrc::simd::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace mrc::simd::detail

#endif
