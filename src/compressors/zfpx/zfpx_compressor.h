#pragma once

// ZFP-class fixed-accuracy transform codec.
//
// Faithful to the published ZFP pipeline for float32 volumes:
//   4^3 blocks → block-floating-point (common exponent) → integer lifting
//   transform along x/y/z → total-sequency coefficient reordering →
//   negabinary → embedded bitplane coding with group testing.
//
// Accuracy mode: bitplanes are coded down to the ZFP cutoff
//   maxprec = max(0, emax - floor(log2(eb)) + 2*(3+1)),
// which guarantees max|x - x̂| <= eb and usually lands well below it — the
// "underestimation characteristic" the paper exploits when choosing smaller
// post-processing intensities for ZFP (§III-B).
//
// `chunks > 1` encodes z-slabs of blocks into independent bit streams in
// parallel on the exec thread pool (Table IX's parallel mode). Unlike SZ2,
// parallel ZFP loses no compression ratio: blocks are independent already.

#include "compressors/compressor.h"

namespace mrc {

struct ZfpxConfig {
  int chunks = 1;  ///< independent z-slab chunks, compressed in parallel
  /// Requested entropy shards. zfpx has no Huffman stage to shard — its
  /// chunk streams are already independently decodable — so the request
  /// folds into the chunk count (max of the two, clamped by slab count).
  /// 1 (the default) leaves the stream bytes unchanged.
  std::uint32_t entropy_shards = 1;
};

class ZfpxCompressor final : public Compressor {
 public:
  /// Stream/registry id written into the container header.
  static constexpr std::uint32_t kMagic = 0x5846'505a;  // "ZPFX"

  explicit ZfpxCompressor(ZfpxConfig cfg = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Bytes compress(const FieldF& f, double abs_eb) const override;
  [[nodiscard]] FieldF decompress(std::span<const std::byte> stream) const override;

  static constexpr index_t kBlock = 4;

 private:
  ZfpxConfig cfg_;
};

namespace zfpx_detail {
// Exposed for unit tests: the lifting pair is inverse up to low-order
// rounding (each ">> 1" drops a bit), matching ZFP's standard transform.
void fwd_lift(std::int32_t* p, std::ptrdiff_t s);
void inv_lift(std::int32_t* p, std::ptrdiff_t s);
/// Sequency-order permutation of the 4x4x4 coefficients.
const std::array<std::uint8_t, 64>& sequency_perm();
}  // namespace zfpx_detail

}  // namespace mrc
