#include "compressors/zfpx/zfpx_compressor.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "exec/thread_pool.h"
#include "lossless/bitstream.h"
#include "lossless/quant_codec.h"
#include "obs/obs.h"

namespace mrc {

namespace zfpx_detail {

void fwd_lift(std::int32_t* p, std::ptrdiff_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

void inv_lift(std::int32_t* p, std::ptrdiff_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

const std::array<std::uint8_t, 64>& sequency_perm() {
  static const std::array<std::uint8_t, 64> perm = [] {
    std::array<std::uint8_t, 64> p{};
    std::array<int, 64> idx{};
    std::iota(idx.begin(), idx.end(), 0);
    auto key = [](int i) {
      const int x = i & 3, y = (i >> 2) & 3, z = (i >> 4) & 3;
      return std::tuple(x + y + z, x * x + y * y + z * z, i);
    };
    std::sort(idx.begin(), idx.end(), [&](int a, int b) { return key(a) < key(b); });
    for (int i = 0; i < 64; ++i) p[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(idx[static_cast<std::size_t>(i)]);
    return p;
  }();
  return perm;
}

}  // namespace zfpx_detail

namespace {

using zfpx_detail::fwd_lift;
using zfpx_detail::inv_lift;
using zfpx_detail::sequency_perm;

constexpr int kIntPrec = 32;
constexpr int kExpBias = 300;  // biased block exponent, 10 bits

std::uint32_t to_negabinary(std::int32_t x) {
  const std::uint32_t mask = 0xaaaaaaaau;
  return (static_cast<std::uint32_t>(x) + mask) ^ mask;
}
std::int32_t from_negabinary(std::uint32_t u) {
  const std::uint32_t mask = 0xaaaaaaaau;
  return static_cast<std::int32_t>((u ^ mask) - mask);
}

/// Bitplanes coded for a block: ZFP's accuracy-mode precision formula for
/// 3-D data (minexp = floor(log2(eb))).
int block_precision(int emax, int minexp) {
  return std::clamp(emax - minexp + 2 * (3 + 1), 0, kIntPrec);
}

void encode_block(lossless::BitWriter& bw, const float* vals, double eb_log2_floor) {
  float maxabs = 0.0f;
  for (int i = 0; i < 64; ++i) maxabs = std::max(maxabs, std::abs(vals[i]));

  const int minexp = static_cast<int>(eb_log2_floor);
  int emax = 0;
  int prec = 0;
  if (maxabs > 0.0f) {
    std::frexp(maxabs, &emax);  // maxabs = m * 2^emax, m in [0.5, 1)
    prec = block_precision(emax, minexp);
  }
  if (prec == 0) {
    bw.write_bit(0);  // empty / all-below-tolerance block
    return;
  }
  bw.write_bit(1);
  bw.write_bits(static_cast<std::uint64_t>(emax + kExpBias), 10);

  // Block floating point: scale into int32 with two guard bits.
  std::array<std::int32_t, 64> iblock;
  const double scale = std::ldexp(1.0, kIntPrec - 2 - emax);
  for (int i = 0; i < 64; ++i)
    iblock[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(static_cast<double>(vals[i]) * scale);

  // Decorrelate: x lines, then y, then z.
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y) fwd_lift(&iblock[static_cast<std::size_t>(4 * (y + 4 * z))], 1);
  for (int x = 0; x < 4; ++x)
    for (int z = 0; z < 4; ++z) fwd_lift(&iblock[static_cast<std::size_t>(x + 16 * z)], 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) fwd_lift(&iblock[static_cast<std::size_t>(x + 4 * y)], 16);

  const auto& perm = sequency_perm();
  std::array<std::uint32_t, 64> nb;
  for (int i = 0; i < 64; ++i)
    nb[static_cast<std::size_t>(i)] = to_negabinary(iblock[perm[static_cast<std::size_t>(i)]]);

  // Embedded coding, group testing per bit plane (ZFP's scheme).
  const int kmin = kIntPrec - prec;
  std::uint32_t n = 0;
  for (int k = kIntPrec - 1; k >= kmin; --k) {
    std::uint64_t x = 0;
    for (int i = 0; i < 64; ++i)
      x |= static_cast<std::uint64_t>((nb[static_cast<std::size_t>(i)] >> k) & 1u) << i;

    bw.write_bits(x, static_cast<int>(n));
    x >>= n;
    std::uint32_t idx = n;
    while (idx < 64) {
      const bool any = x != 0;
      bw.write_bit(any ? 1u : 0u);
      if (!any) break;
      while (idx < 63) {
        const auto bit = static_cast<std::uint32_t>(x & 1u);
        bw.write_bit(bit);
        if (bit) break;
        x >>= 1;
        ++idx;
      }
      x >>= 1;
      ++idx;
    }
    n = idx;
  }
}

void decode_block(lossless::BitReader& br, float* vals, double eb_log2_floor) {
  if (br.read_bit() == 0) {
    std::fill_n(vals, 64, 0.0f);
    return;
  }
  const int emax = static_cast<int>(br.read_bits(10)) - kExpBias;
  const int minexp = static_cast<int>(eb_log2_floor);
  const int prec = block_precision(emax, minexp);
  const int kmin = kIntPrec - prec;

  std::array<std::uint32_t, 64> nb{};
  std::uint32_t n = 0;
  for (int k = kIntPrec - 1; k >= kmin; --k) {
    std::uint64_t x = br.read_bits(static_cast<int>(n));
    std::uint32_t idx = n;
    while (idx < 64 && br.read_bit()) {
      while (idx < 63 && !br.read_bit()) ++idx;
      x |= std::uint64_t{1} << idx;
      ++idx;
    }
    n = idx;
    for (int i = 0; x != 0; ++i, x >>= 1)
      if (x & 1u) nb[static_cast<std::size_t>(i)] |= 1u << k;
  }

  const auto& perm = sequency_perm();
  std::array<std::int32_t, 64> iblock{};
  for (int i = 0; i < 64; ++i)
    iblock[perm[static_cast<std::size_t>(i)]] = from_negabinary(nb[static_cast<std::size_t>(i)]);

  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) inv_lift(&iblock[static_cast<std::size_t>(x + 4 * y)], 16);
  for (int x = 0; x < 4; ++x)
    for (int z = 0; z < 4; ++z) inv_lift(&iblock[static_cast<std::size_t>(x + 16 * z)], 4);
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y) inv_lift(&iblock[static_cast<std::size_t>(4 * (y + 4 * z))], 1);

  const double inv_scale = std::ldexp(1.0, emax - (kIntPrec - 2));
  for (int i = 0; i < 64; ++i)
    vals[i] = static_cast<float>(iblock[static_cast<std::size_t>(i)] * inv_scale);
}

/// Gathers a 4^3 block with edge replication for partial blocks.
void gather(const FieldF& f, index_t x0, index_t y0, index_t z0, float* out) {
  const Dim3& d = f.dims();
  for (index_t k = 0; k < 4; ++k) {
    const index_t z = std::min(z0 + k, d.nz - 1);
    for (index_t j = 0; j < 4; ++j) {
      const index_t y = std::min(y0 + j, d.ny - 1);
      for (index_t i = 0; i < 4; ++i) {
        const index_t x = std::min(x0 + i, d.nx - 1);
        out[i + 4 * (j + 4 * k)] = f.at(x, y, z);
      }
    }
  }
}

void scatter(FieldF& f, index_t x0, index_t y0, index_t z0, const float* in) {
  const Dim3& d = f.dims();
  for (index_t k = 0; k < 4 && z0 + k < d.nz; ++k)
    for (index_t j = 0; j < 4 && y0 + j < d.ny; ++j)
      for (index_t i = 0; i < 4 && x0 + i < d.nx; ++i)
        f.at(x0 + i, y0 + j, z0 + k) = in[i + 4 * (j + 4 * k)];
}

}  // namespace

ZfpxCompressor::ZfpxCompressor(ZfpxConfig cfg) : cfg_(cfg) {
  MRC_REQUIRE(cfg_.chunks >= 1, "bad chunk count");
}

std::string ZfpxCompressor::name() const {
  return cfg_.chunks > 1 ? "zfpx(mt)" : "zfpx";
}

Bytes ZfpxCompressor::compress(const FieldF& f, double abs_eb) const {
  MRC_REQUIRE(abs_eb > 0.0, "error bound must be positive");
  MRC_REQUIRE(!f.empty(), "empty field");
  const Dim3 d = f.dims();
  const Dim3 nb = blocks_for(d, kBlock);
  const double minexp = std::floor(std::log2(abs_eb));
  // entropy_shards folds into chunking: zfpx chunk streams are already
  // independently decodable, so more chunks IS the sharded-decode story here.
  const auto want_chunks = std::max<index_t>(
      cfg_.chunks, static_cast<index_t>(std::min<std::uint32_t>(
                       cfg_.entropy_shards, lossless::kMaxEntropyShards)));
  const int n_chunks = static_cast<int>(std::min<index_t>(want_chunks, nb.nz));

  std::vector<Bytes> streams(static_cast<std::size_t>(n_chunks));

  exec::ThreadPool pool(std::min(n_chunks, exec::hardware_threads()));
  pool.parallel_for(n_chunks, [&](index_t c) {
    // zfpx fuses transform + bit-plane coding per block, so one span covers
    // the chunk's whole encode; the duration feeds the entropy-stage total.
    static obs::Counter& ns_ent =
        obs::Registry::global().counter("mrc.codec.entropy_ns");
    OBS_SPAN("zfpx.encode_blocks", &ns_ent);
    const index_t bz0 = nb.nz * c / n_chunks;
    const index_t bz1 = nb.nz * (c + 1) / n_chunks;
    lossless::BitWriter bw;
    // Typical accuracy-mode blocks land well under 32 bytes; one up-front
    // reservation replaces the first few doublings of the chunk stream.
    bw.reserve_bytes(static_cast<std::size_t>((bz1 - bz0) * nb.ny * nb.nx) * 16);
    float block[64];
    for (index_t bz = bz0; bz < bz1; ++bz)
      for (index_t by = 0; by < nb.ny; ++by)
        for (index_t bx = 0; bx < nb.nx; ++bx) {
          gather(f, bx * kBlock, by * kBlock, bz * kBlock, block);
          encode_block(bw, block, minexp);
        }
    streams[static_cast<std::size_t>(c)] = bw.take();
  });

  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, kMagic, d, abs_eb);
  w.put_varint(static_cast<std::uint64_t>(n_chunks));
  for (const auto& s : streams) w.put_blob(s);
  return out;
}

FieldF ZfpxCompressor::decompress(std::span<const std::byte> stream) const {
  ByteReader r(stream);
  const auto h = detail::read_header(r, kMagic, "zfpx");
  const auto n_chunks = static_cast<int>(r.get_varint());
  const Dim3 d = h.dims;
  const Dim3 nb = blocks_for(d, kBlock);
  if (n_chunks < 1 || n_chunks > nb.nz) throw CodecError("zfpx: bad chunk count");
  const double minexp = std::floor(std::log2(h.eb));

  std::vector<std::span<const std::byte>> chunk_in(static_cast<std::size_t>(n_chunks));
  for (auto& ci : chunk_in) ci = r.get_blob();

  FieldF recon(d);

  exec::ThreadPool pool(std::min(n_chunks, exec::hardware_threads()));
  pool.parallel_for(n_chunks, [&](index_t c) {
   try {
    static obs::Counter& ns_ent =
        obs::Registry::global().counter("mrc.codec.entropy_ns");
    OBS_SPAN("zfpx.decode_blocks", &ns_ent);
    const index_t bz0 = nb.nz * c / n_chunks;
    const index_t bz1 = nb.nz * (c + 1) / n_chunks;
    lossless::BitReader br(chunk_in[static_cast<std::size_t>(c)]);
    float block[64];
    for (index_t bz = bz0; bz < bz1; ++bz)
      for (index_t by = 0; by < nb.ny; ++by)
        for (index_t bx = 0; bx < nb.nx; ++bx) {
          decode_block(br, block, minexp);
          scatter(recon, bx * kBlock, by * kBlock, bz * kBlock, block);
        }
   } catch (...) {
     throw CodecError("zfpx: corrupt chunk stream");
   }
  });
  return recon;
}

}  // namespace mrc
