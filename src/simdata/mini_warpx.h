#pragma once

// MiniWarpX: a scalar FDTD wave solver standing in for WarpX's
// electromagnetic stepping (paper §IV-B, Figs. 16/17). A driven wave packet
// propagates along z on a uniform grid; each step's Ez field feeds the
// adaptive-data (ROI) compression path, the same way the paper uses WarpX
// for uniform-grid in-situ experiments.

#include "grid/field.h"

namespace mrc::sim {

class MiniWarpX {
 public:
  struct Params {
    Dim3 dims{128, 128, 1024};
    std::uint64_t seed = 11;
    double courant = 0.5;   ///< c*dt/dx, < 1/sqrt(3) for 3-D stability
    int source_period = 24; ///< driving period in steps
  };

  explicit MiniWarpX(const Params& p);

  /// Advances the wave equation one time step (leapfrog).
  void step();

  [[nodiscard]] const FieldF& ez() const { return cur_; }
  [[nodiscard]] int current_step() const { return step_; }

 private:
  Params params_;
  FieldF prev_, cur_, next_;
  int step_ = 0;
};

}  // namespace mrc::sim
