#include "simdata/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "metrics/fft.h"

namespace mrc::sim {

namespace {

using metrics::cplx;

double sqr(double v) { return v * v; }

}  // namespace

FieldF gaussian_random_field(Dim3 dims, double spectral_index, std::uint64_t seed) {
  MRC_REQUIRE(metrics::is_pow2(dims.nx) && metrics::is_pow2(dims.ny) &&
                  metrics::is_pow2(dims.nz),
              "GRF extents must be powers of two");
  std::vector<cplx> spec(static_cast<std::size_t>(dims.size()));
  Rng rng(seed);

  auto wrapped = [](index_t i, index_t n) {
    return static_cast<double>(i <= n / 2 ? i : i - n);
  };
  for (index_t z = 0; z < dims.nz; ++z)
    for (index_t y = 0; y < dims.ny; ++y)
      for (index_t x = 0; x < dims.nx; ++x) {
        const double kx = wrapped(x, dims.nx);
        const double ky = wrapped(y, dims.ny);
        const double kz = wrapped(z, dims.nz);
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        double amp = 0.0;
        if (k > 0.0) amp = std::pow(k, -spectral_index / 2.0);
        spec[static_cast<std::size_t>(dims.index(x, y, z))] =
            cplx(rng.normal() * amp, rng.normal() * amp);
      }
  metrics::fft_3d(spec, dims, /*inverse=*/true);

  // Take the real part and normalize to zero mean, unit variance.
  FieldF out(dims);
  double mean = 0.0;
  for (index_t i = 0; i < dims.size(); ++i) {
    out[i] = static_cast<float>(spec[static_cast<std::size_t>(i)].real());
    mean += out[i];
  }
  mean /= static_cast<double>(dims.size());
  double var = 0.0;
  for (index_t i = 0; i < dims.size(); ++i) var += sqr(out[i] - mean);
  var /= static_cast<double>(dims.size());
  const double inv_std = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
  for (index_t i = 0; i < dims.size(); ++i)
    out[i] = static_cast<float>((out[i] - mean) * inv_std);
  return out;
}

FieldF nyx_density(Dim3 dims, std::uint64_t seed, double bias) {
  FieldF g = gaussian_random_field(dims, 3.0, seed);
  FieldF rho(dims);
  // Log-normal transform; normalize to mean ~1e9 afterwards so values land
  // in Nyx's baryon-density unit range.
  double sum = 0.0;
  for (index_t i = 0; i < dims.size(); ++i) {
    const double v = std::exp(bias * static_cast<double>(g[i]));
    rho[i] = static_cast<float>(v);
    sum += v;
  }
  const double scale = 1e9 * static_cast<double>(dims.size()) / sum;
  for (index_t i = 0; i < dims.size(); ++i)
    rho[i] = static_cast<float>(rho[i] * scale);
  return rho;
}

FieldF warpx_ez(Dim3 dims, std::uint64_t seed) {
  Rng rng(seed);
  FieldF ez(dims);
  const double cx = dims.nx / 2.0, cy = dims.ny / 2.0;
  const double z0 = dims.nz * 0.65;  // packet position along propagation axis
  const double sig_z = dims.nz * 0.04;
  const double sig_r = std::min(dims.nx, dims.ny) * 0.18;
  const double k_laser = 2.0 * std::numbers::pi / (dims.nz * 0.02);
  const double k_plasma = 2.0 * std::numbers::pi / (dims.nz * 0.08);
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);

  // Low-amplitude broadband background so the field is not exactly zero
  // away from the packet (mirrors physical noise in PIC output).
  FieldF noise = gaussian_random_field(dims, 2.0, seed ^ 0xabcdef);

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < dims.nz; ++z)
    for (index_t y = 0; y < dims.ny; ++y)
      for (index_t x = 0; x < dims.nx; ++x) {
        const double r2 = sqr(x - cx) + sqr(y - cy);
        const double radial = std::exp(-r2 / (2.0 * sqr(sig_r)));
        const double dz = z - z0;
        // Laser packet.
        double v = std::exp(-sqr(dz) / (2.0 * sqr(sig_z))) * std::sin(k_laser * dz + phase);
        // Plasma wake behind the packet, slowly decaying.
        if (dz < 0) {
          v += 0.35 * std::exp(dz / (dims.nz * 0.25)) * std::sin(k_plasma * dz + phase) *
               std::cos(r2 / (2.0 * sqr(sig_r)));
        }
        ez.at(x, y, z) =
            static_cast<float>(1e11 * (radial * v + 2e-4 * noise.at(x, y, z)));
      }
  return ez;
}

FieldF rayleigh_taylor(Dim3 dims, std::uint64_t seed) {
  Rng rng(seed);
  FieldF rho(dims);
  const int n_modes = 6;
  double ax[n_modes], kx[n_modes], ky[n_modes], ph[n_modes];
  for (int m = 0; m < n_modes; ++m) {
    ax[m] = dims.nz * 0.03 * rng.uniform(0.5, 1.5) / (m + 1);
    kx[m] = 2.0 * std::numbers::pi * (m + 1) / static_cast<double>(dims.nx);
    ky[m] = 2.0 * std::numbers::pi * (m + 1) / static_cast<double>(dims.ny);
    ph[m] = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  // Fine-scale structure concentrated near the interface (mixing layer).
  // Spectral index ~3.2 keeps the turbulence smooth enough that the data
  // compresses in the regime the paper's RT dataset occupies.
  FieldF turb = gaussian_random_field(dims, 3.2, seed ^ 0x5117);

  const double z_mid = dims.nz / 2.0;
  const double delta = dims.nz * 0.015;  // interface thickness

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < dims.nz; ++z)
    for (index_t y = 0; y < dims.ny; ++y)
      for (index_t x = 0; x < dims.nx; ++x) {
        double h = z_mid;
        for (int m = 0; m < n_modes; ++m)
          h += ax[m] * std::cos(kx[m] * x + ph[m]) * std::cos(ky[m] * y + 0.7 * ph[m]);
        const double s = std::tanh((z - h) / delta);
        const double envelope = std::exp(-sqr(z - h) / (2.0 * sqr(8.0 * delta)));
        const double v = 2.0 + s + 0.12 * envelope * turb.at(x, y, z);
        rho.at(x, y, z) = static_cast<float>(v);
      }
  return rho;
}

FieldF hurricane_field(Dim3 dims, std::uint64_t seed) {
  Rng rng(seed);
  FieldF wind(dims);
  const double r_core = std::min(dims.nx, dims.ny) * 0.06;
  const double v_max = 70.0;  // m/s scale
  const double tilt = rng.uniform(-0.15, 0.15);

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < dims.nz; ++z) {
    // Vortex center drifts (tilts) with height.
    const double cx = dims.nx * 0.5 + tilt * static_cast<double>(z) * 2.0;
    const double cy = dims.ny * 0.5 - tilt * static_cast<double>(z) * 1.5;
    const double vert = std::exp(-sqr(z - dims.nz * 0.3) / (2.0 * sqr(dims.nz * 0.35)));
    for (index_t y = 0; y < dims.ny; ++y)
      for (index_t x = 0; x < dims.nx; ++x) {
        const double dx = x - cx, dy = y - cy;
        const double r = std::sqrt(dx * dx + dy * dy) + 1e-9;
        const double theta = std::atan2(dy, dx);
        // Rankine profile: solid-body core, 1/r^0.6 decay outside.
        double v = r < r_core ? v_max * (r / r_core)
                              : v_max * std::pow(r_core / r, 0.6);
        // Spiral rain bands.
        v *= 1.0 + 0.25 * std::cos(2.0 * theta - 0.15 * r);
        // Calm far field => sparse data (many near-zero values).
        v *= std::exp(-r / (std::min(dims.nx, dims.ny) * 0.45));
        wind.at(x, y, z) = static_cast<float>(v * vert);
      }
  }
  return wind;
}

FieldF s3d_flame(Dim3 dims, std::uint64_t seed) {
  Rng rng(seed);
  const int n_kernels = 5;
  double cx[n_kernels], cy[n_kernels], cz[n_kernels], radius[n_kernels];
  for (int i = 0; i < n_kernels; ++i) {
    cx[i] = rng.uniform(0.2, 0.8) * dims.nx;
    cy[i] = rng.uniform(0.2, 0.8) * dims.ny;
    cz[i] = rng.uniform(0.2, 0.8) * dims.nz;
    radius[i] = rng.uniform(0.08, 0.22) * dims.max_extent();
  }
  FieldF wrinkle = gaussian_random_field(dims, 3.5, seed ^ 0xf1a3);
  FieldF temp(dims);
  const double t_unburnt = 300.0, t_burnt = 2100.0;
  const double layer = dims.max_extent() * 0.01;  // reaction-layer thickness

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 0; z < dims.nz; ++z)
    for (index_t y = 0; y < dims.ny; ++y)
      for (index_t x = 0; x < dims.nx; ++x) {
        double burn = 0.0;  // max over kernels of the progress variable
        for (int i = 0; i < n_kernels; ++i) {
          const double r = std::sqrt(sqr(x - cx[i]) + sqr(y - cy[i]) + sqr(z - cz[i]));
          const double wr = radius[i] * (1.0 + 0.18 * wrinkle.at(x, y, z));
          burn = std::max(burn, 0.5 * (1.0 + std::tanh((wr - r) / layer)));
        }
        temp.at(x, y, z) = static_cast<float>(t_unburnt + (t_burnt - t_unburnt) * burn);
      }
  return temp;
}

}  // namespace mrc::sim
