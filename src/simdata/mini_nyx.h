#pragma once

// MiniNyx: a toy AMR cosmology driver for the in-situ experiments
// (paper §IV-B, Fig. 15 / Table IV). It evolves a log-normal density field
// by growing the fluctuation amplitude (linear-growth emulation) and
// re-grids a two-level AMR hierarchy each step, mimicking the output side
// of the real Nyx + AMReX pipeline: per-step hierarchy → compress → write.

#include "grid/multires.h"

namespace mrc::sim {

class MiniNyx {
 public:
  struct Params {
    Dim3 dims{256, 256, 256};
    std::uint64_t seed = 7;
    double initial_bias = 1.2;   ///< log-normal amplitude at step 0
    double growth_per_step = 0.15;
    index_t block_size = 16;     ///< AMR refinement granularity
    double fine_fraction = 0.18; ///< Nyx-T1's fine-level density (Table III)
  };

  explicit MiniNyx(const Params& p);

  /// Advances one coarse time step (grows structure, drifts the field).
  void step();

  [[nodiscard]] const FieldF& density() const { return density_; }
  [[nodiscard]] int current_step() const { return step_; }

  /// Regrids and returns the current two-level hierarchy.
  [[nodiscard]] MultiResField hierarchy() const;

 private:
  void rebuild_density();

  Params params_;
  FieldF gaussian_;  ///< frozen initial GRF
  FieldF density_;
  double bias_;
  int step_ = 0;
};

}  // namespace mrc::sim
