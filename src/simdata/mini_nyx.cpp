#include "simdata/mini_nyx.h"

#include <array>
#include <cmath>

#include "simdata/generators.h"

namespace mrc::sim {

MiniNyx::MiniNyx(const Params& p)
    : params_(p),
      gaussian_(gaussian_random_field(p.dims, 3.0, p.seed)),
      bias_(p.initial_bias) {
  rebuild_density();
}

void MiniNyx::rebuild_density() {
  const Dim3 d = params_.dims;
  density_ = FieldF(d);
  // Structure drifts along x as it grows, so consecutive snapshots differ
  // in both amplitude and position (enough to exercise in-situ output).
  const index_t shift = static_cast<index_t>(step_ * 3) % d.nx;
  double sum = 0.0;
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x) {
        const index_t xs = (x + shift) % d.nx;
        const double v = std::exp(bias_ * static_cast<double>(gaussian_.at(xs, y, z)));
        density_.at(x, y, z) = static_cast<float>(v);
        sum += v;
      }
  const double scale = 1e9 * static_cast<double>(d.size()) / sum;
  for (index_t i = 0; i < d.size(); ++i)
    density_[i] = static_cast<float>(density_[i] * scale);
}

void MiniNyx::step() {
  ++step_;
  bias_ += params_.growth_per_step;
  rebuild_density();
}

MultiResField MiniNyx::hierarchy() const {
  const std::array<double, 2> fractions{params_.fine_fraction, 1.0 - params_.fine_fraction};
  return amr::build_hierarchy(density_, params_.block_size, fractions);
}

}  // namespace mrc::sim
