#pragma once

// Synthetic stand-ins for the paper's evaluation datasets (Table III).
// Each generator reproduces the statistical features that drive the paper's
// results — see DESIGN.md §4 for the substitution rationale. All are
// deterministic under the seed.

#include "grid/field.h"

namespace mrc::sim {

/// Gaussian random field with power-law spectrum P(k) ∝ k^-spectral_index,
/// normalized to zero mean / unit variance. Extents must be powers of two.
[[nodiscard]] FieldF gaussian_random_field(Dim3 dims, double spectral_index,
                                           std::uint64_t seed);

/// Nyx-like baryon density: log-normal transform of a GRF — heavy-tailed,
/// halo-dominated, mean ~1e9 (Nyx's unit scale).
[[nodiscard]] FieldF nyx_density(Dim3 dims, std::uint64_t seed, double bias = 2.0);

/// WarpX-like Ez: laser wake-field packet + trailing plasma oscillation.
[[nodiscard]] FieldF warpx_ez(Dim3 dims, std::uint64_t seed);

/// Rayleigh–Taylor instability: perturbed heavy/light interface with
/// plume structure concentrated near the interface.
[[nodiscard]] FieldF rayleigh_taylor(Dim3 dims, std::uint64_t seed);

/// Hurricane-like wind-speed magnitude: tilted Rankine vortex with spiral
/// rain bands and a calm (near-zero) far field.
[[nodiscard]] FieldF hurricane_field(Dim3 dims, std::uint64_t seed);

/// S3D-like combustion temperature: wrinkled spherical flame fronts with
/// steep reaction layers.
[[nodiscard]] FieldF s3d_flame(Dim3 dims, std::uint64_t seed);

}  // namespace mrc::sim
