#include "simdata/mini_warpx.h"

#include <cmath>
#include <numbers>

namespace mrc::sim {

MiniWarpX::MiniWarpX(const Params& p)
    : params_(p), prev_(p.dims, 0.0f), cur_(p.dims, 0.0f), next_(p.dims, 0.0f) {
  MRC_REQUIRE(p.courant > 0.0 && p.courant < 0.577, "unstable Courant number");
}

void MiniWarpX::step() {
  const Dim3 d = params_.dims;
  const double c2 = params_.courant * params_.courant;

#if defined(MRC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (index_t z = 1; z < d.nz - 1; ++z)
    for (index_t y = 1; y < d.ny - 1; ++y)
      for (index_t x = 1; x < d.nx - 1; ++x) {
        const double lap = cur_.at(x - 1, y, z) + cur_.at(x + 1, y, z) +
                           cur_.at(x, y - 1, z) + cur_.at(x, y + 1, z) +
                           cur_.at(x, y, z - 1) + cur_.at(x, y, z + 1) -
                           6.0 * cur_.at(x, y, z);
        next_.at(x, y, z) = static_cast<float>(2.0 * cur_.at(x, y, z) - prev_.at(x, y, z) +
                                               c2 * lap);
      }

  // Gaussian-profile driven source near the low-z end (laser injection).
  const double amp = 1e11 * std::sin(2.0 * std::numbers::pi * step_ /
                                     static_cast<double>(params_.source_period));
  const index_t zs = 4;
  const double cx = d.nx / 2.0, cy = d.ny / 2.0;
  const double sig = std::min(d.nx, d.ny) * 0.15;
  for (index_t y = 1; y < d.ny - 1; ++y)
    for (index_t x = 1; x < d.nx - 1; ++x) {
      const double r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
      next_.at(x, y, zs) += static_cast<float>(amp * std::exp(-r2 / (2.0 * sig * sig)));
    }

  std::swap(prev_, cur_);
  std::swap(cur_, next_);
  ++step_;
}

}  // namespace mrc::sim
