#pragma once

// Progressive residual pyramid container: the coarsest level stored
// verbatim plus one residual stream per finer level, computed against the
// *reconstruction* of the level below —
//
//   residual_L = level_L - prolong_trilinear(recon(level_{L+1}))
//
// so decoding level L needs only the reconstructed L+1 and the small, spiky
// residual stream, which the quantizer+Huffman path compresses far better
// than re-storing the level outright (the MRCP pyramid pays ~15% over a
// flat stream for exactly that). Reconstruction is strictly top-down and
// bit-deterministic: recon(top) = decode(top), recon(L) =
// prolong(recon(L+1)) + decode(residual_L), every arithmetic step pinned so
// a windowed region read reproduces the same bits as a full decode.
//
// Error model (telescoped): each residual stream is compressed under the
// same absolute bound eb, and because residual_L is measured against the
// reconstruction (not the pristine level), the per-level decode error does
// NOT accumulate — recon(L) = level_L + delta_L with |delta_L| <= eb up to
// float rounding. The level table still records the conservative telescoped
// bound cum_err(L) = eb * (n_levels - L), the a-priori guarantee that holds
// compositionally without trusting the build-time measurement.
//
// Stream layout (container header v6 under kProgressiveMagic):
//   shared container header      finest-grid extents + absolute error bound
//   varint  n_levels             >= 1, halving chain
//   varint  payload_bytes        total size of the level payload section
//   per level:                   varint offset, varint length,
//                                varint nx,ny,nz (level extents),
//                                f32 vmin, f32 vmax      (level data range)
//                                f32 resid_max           (max |residual|)
//                                f32 resid_entropy       (bits/sample, 2eb bins)
//                                f32 cum_err             (telescoped bound)
//                                f32 approx_err          (LOD error vs finest)
//   payload                      concatenated tiled (MRCT) residual streams,
//                                finest first; the last one is the coarsest
//                                level's data stream. Residual levels share
//                                one codec, the data level may use another
//                                (each nested preamble is self-describing).
//
// Validation discipline matches pyramid/tiled/adaptive: level extents are
// pinned to the halving chain, level streams must tile the payload exactly,
// hostile level counts are rejected before any allocation is sized from
// them, and read_index cross-checks every nested tiled preamble.

#include <span>
#include <string>
#include <vector>

#include "pyramid/pyramid.h"
#include "tiled/tiled.h"

namespace mrc::progressive {

/// Container-header stream id of a progressive residual stream.
inline constexpr std::uint32_t kProgressiveMagic = 0x5243'524d;  // "MRCR"

/// Same hard cap as the pyramid: the halving chain machinery is shared.
inline constexpr int kMaxLevels = pyramid::kMaxLevels;

/// Level extents + auto level count follow the pyramid's halving chain.
using pyramid::auto_levels;
using pyramid::level_dims;

struct Config {
  std::string codec = "interp";  ///< coarsest (data) level, any registry name
  /// Codec of the residual levels. Residuals are near-zero, spiky and
  /// spatially decorrelated; a hierarchical interpolation predictor re-learns
  /// exactly what the prolongation already removed and gains nothing (interp
  /// residual streams come out within 0.3% of the plain pyramid). Lorenzo's
  /// local predictor plus the quantizer+Huffman stage is the robust fit —
  /// measured ~7% under the pyramid at equal eb on mini-Nyx.
  std::string resid_codec = "lorenzo";
  CodecTuning tuning;            ///< per-brick codec tuning
  index_t brick = tiled::kDefaultBrick;  ///< brick edge of every level
  int threads = 1;               ///< exec-pool lanes per level; 0 = hardware
  /// Level count; 0 = auto: halve until the coarsest level fits one brick.
  int levels = 0;
};

/// One record of the level table.
struct LevelEntry {
  std::uint64_t offset = 0;  ///< within the payload section
  std::uint64_t length = 0;  ///< bytes of this level's tiled residual stream
  Dim3 dims;                 ///< level extents (= ceil_div(fine, 2^level))
  float vmin = 0.0f;         ///< value range over the level's *data* samples
  float vmax = 0.0f;
  float resid_max = 0.0f;      ///< max |residual| (coarsest: max |data|)
  float resid_entropy = 0.0f;  ///< Shannon bits/sample over 2eb-wide bins
  float cum_err = 0.0f;        ///< telescoped bound eb * (n_levels - level)
  float approx_err = 0.0f;     ///< LOD bound: max|prolong(level)-finest|+cum_err
};

/// Parsed + validated level table of a progressive stream.
struct Index {
  Dim3 dims;          ///< finest-grid extents
  double eb = 0.0;    ///< absolute codec error bound (every residual level)
  std::string codec;  ///< per-brick codec of level 0 (all residual levels match)
  std::uint32_t codec_magic = 0;
  std::string data_codec;  ///< codec of the coarsest (data) level
  std::uint32_t data_codec_magic = 0;
  index_t brick = 0;  ///< brick edge of level 0
  std::size_t payload_offset = 0;  ///< absolute offset of the payload section
  std::uint64_t payload_bytes = 0;
  std::vector<LevelEntry> levels;  ///< [0] = finest residual, back() = coarsest data

  /// The sub-span of `stream` holding level `l`'s complete tiled stream.
  [[nodiscard]] std::span<const std::byte> level_stream(
      std::span<const std::byte> stream, std::size_t l) const;
};

/// Builds the residual pyramid: restrict_half chain from `f`, the coarsest
/// level compressed verbatim, every finer level as a residual against the
/// decoded reconstruction of the level below, all through tiled::compress
/// on the exec pool. Deterministic: byte-identical for any thread count.
[[nodiscard]] Bytes build(const FieldF& f, double abs_eb, const Config& cfg = {});

/// Parses and validates header + level table in O(levels) without touching
/// any nested stream beyond O(1) geometry peeks of level 0 (residual codec +
/// brick) and the coarsest level (data codec). Throws CodecError on
/// malformed input.
[[nodiscard]] Index read_geometry(std::span<const std::byte> stream);

/// read_geometry plus validation of every level's nested tiled preamble
/// (magic, extents, codec and eb agreement with the level table).
[[nodiscard]] Index read_index(std::span<const std::byte> stream);

/// Reconstructs level `level` in full: decode the coarsest stream, then
/// prolong + residual down to `level`. Bit-deterministic for any thread
/// count (threads = 0 means hardware).
[[nodiscard]] FieldF decompress_level(std::span<const std::byte> stream, int level,
                                      int threads = 1);

/// Reconstructs `region` (in level-`level` coordinates) decoding only the
/// bricks under the region's prolongation support chain — bit-identical to
/// the same window of decompress_level.
[[nodiscard]] FieldF read_region(std::span<const std::byte> stream, int level,
                                 const tiled::Box& region, int threads = 1);

/// The prolongation-support chain of a region read: boxes[level] = region,
/// boxes[l+1] = the coarse footprint prolong_trilinear needs for boxes[l]
/// (levels below `level` are left empty). Windowed reconstruction — and the
/// serve layer's progressive read — decodes exactly these boxes.
[[nodiscard]] std::vector<tiled::Box> support_chain(const Index& idx, int level,
                                                    const tiled::Box& region);

/// One refinement step: prolong the coarse window onto `fine_box` and add
/// the residual window, accumulating in double with a single float rounding
/// per sample. Every reconstruction path — build, decompress_level,
/// read_region, serve::Dataset and the wire client's in-place refinement —
/// applies this exact expression, which is what makes them bit-identical.
[[nodiscard]] FieldF refine(const FieldF& coarse_window, const tiled::Box& coarse_box,
                            Dim3 coarse_dims, const FieldF& residual,
                            const tiled::Box& fine_box, Dim3 fine_dims);

}  // namespace mrc::progressive
