#include "progressive/progressive.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "exec/thread_pool.h"
#include "grid/field_ops.h"
#include "obs/obs.h"

namespace mrc::progressive {

namespace {

/// Smallest possible level record: 5 single-byte varints + six f32s.
inline constexpr std::size_t kMinLevelRecord = 29;

/// a + b per sample, accumulated in double and rounded once to float — the
/// single reconstruction step recon = prolong + residual. Build, full
/// decode, windowed reads and the wire client all go through this exact
/// expression, which is what makes every path bit-identical.
void add_into(FieldF& acc, const FieldF& add) {
  MRC_REQUIRE(acc.dims() == add.dims(), "progressive: addend extents mismatch");
  const Dim3 d = acc.dims();
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x)
        acc.at(x, y, z) = static_cast<float>(static_cast<double>(acc.at(x, y, z)) +
                                             static_cast<double>(add.at(x, y, z)));
}

/// data - base per sample (double accumulate, one float rounding).
FieldF subtract(const FieldF& data, const FieldF& base) {
  MRC_REQUIRE(data.dims() == base.dims(), "progressive: residual extents mismatch");
  const Dim3 d = data.dims();
  FieldF out(d);
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x)
        out.at(x, y, z) = static_cast<float>(static_cast<double>(data.at(x, y, z)) -
                                             static_cast<double>(base.at(x, y, z)));
  return out;
}

float max_abs(const FieldF& f) {
  const auto [lo, hi] = f.min_max();
  return std::max(std::abs(lo), std::abs(hi));
}

/// Shannon entropy (bits/sample) of the field quantized into 2*eb-wide bins
/// — the same bin width the quantizer uses, so this estimates the entropy
/// the Huffman stage actually sees. Recorded per level for `mrcc
/// progressive`'s table.
float bin_entropy(const FieldF& f, double eb) {
  std::unordered_map<long long, std::uint64_t> bins;
  const Dim3 d = f.dims();
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x)
        ++bins[std::llround(static_cast<double>(f.at(x, y, z)) / (2.0 * eb))];
  const double n = static_cast<double>(d.size());
  double h = 0.0;
  for (const auto& [bin, count] : bins) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return static_cast<float>(h);
}

}  // namespace

std::vector<tiled::Box> support_chain(const Index& idx, int level,
                                      const tiled::Box& region) {
  MRC_REQUIRE(level >= 0 && level < static_cast<int>(idx.levels.size()),
              "progressive: level out of range");
  const int top = static_cast<int>(idx.levels.size()) - 1;
  std::vector<tiled::Box> boxes(idx.levels.size());
  boxes[static_cast<std::size_t>(level)] = region;
  for (int l = level; l < top; ++l) {
    const tiled::Box& b = boxes[static_cast<std::size_t>(l)];
    const SupportBox s =
        prolong_support(idx.levels[static_cast<std::size_t>(l + 1)].dims,
                        idx.levels[static_cast<std::size_t>(l)].dims, b.lo, b.extent());
    boxes[static_cast<std::size_t>(l + 1)] = {
        s.origin,
        {s.origin.x + s.extent.nx, s.origin.y + s.extent.ny, s.origin.z + s.extent.nz}};
  }
  return boxes;
}

FieldF refine(const FieldF& coarse_window, const tiled::Box& coarse_box,
              Dim3 coarse_dims, const FieldF& residual, const tiled::Box& fine_box,
              Dim3 fine_dims) {
  MRC_REQUIRE(coarse_window.dims() == coarse_box.extent() &&
                  residual.dims() == fine_box.extent(),
              "progressive: refine window extents mismatch");
  FieldF prolonged = prolong_trilinear_region(coarse_window, coarse_box.lo, coarse_dims,
                                              fine_dims, fine_box.lo,
                                              fine_box.extent());
  add_into(prolonged, residual);
  return prolonged;
}

std::span<const std::byte> Index::level_stream(std::span<const std::byte> stream,
                                               std::size_t l) const {
  MRC_REQUIRE(l < levels.size(), "level_stream: level out of range");
  const LevelEntry& e = levels[l];
  return stream.subspan(payload_offset + static_cast<std::size_t>(e.offset),
                        static_cast<std::size_t>(e.length));
}

Bytes build(const FieldF& f, double abs_eb, const Config& cfg) {
  MRC_REQUIRE(!f.empty(), "progressive: empty field");
  MRC_REQUIRE(abs_eb > 0.0, "progressive: error bound must be positive");
  MRC_REQUIRE(cfg.brick >= 1, "progressive: brick edge must be >= 1");
  MRC_REQUIRE(cfg.levels >= 0 && cfg.levels <= kMaxLevels,
              "progressive: level count must be in [0, " + std::to_string(kMaxLevels) +
                  "]");
  const Dim3 d = f.dims();
  const int n_levels = cfg.levels == 0 ? auto_levels(d, cfg.brick) : cfg.levels;

  tiled::Config tc;
  tc.codec = cfg.codec;
  tc.tuning = cfg.tuning;
  tc.brick = cfg.brick;
  tc.threads = cfg.threads;
  tiled::Config tc_resid = tc;
  tc_resid.codec = cfg.resid_codec;

  // The restrict_half chain, materialized coarse-to-fine is not needed —
  // levels() holds l >= 1, level 0 reads straight from f.
  std::vector<FieldF> chain(static_cast<std::size_t>(n_levels));
  for (int l = 1; l < n_levels; ++l)
    chain[static_cast<std::size_t>(l)] =
        restrict_half(l == 1 ? f : chain[static_cast<std::size_t>(l - 1)]);
  auto level_data = [&](int l) -> const FieldF& {
    return l == 0 ? f : chain[static_cast<std::size_t>(l)];
  };

  std::vector<Bytes> streams(static_cast<std::size_t>(n_levels));
  std::vector<LevelEntry> entries(static_cast<std::size_t>(n_levels));
  exec::ThreadPool pool(cfg.threads);

  // Top-down with the decoder in the loop: each residual is measured against
  // the *reconstruction* the reader will actually have, so per-level decode
  // error stays at eb instead of accumulating down the chain.
  FieldF recon;
  for (int l = n_levels - 1; l >= 0; --l) {
    const FieldF& data = level_data(l);
    LevelEntry& e = entries[static_cast<std::size_t>(l)];
    e.dims = data.dims();
    const auto [lo, hi] = data.min_max();
    e.vmin = lo;
    e.vmax = hi;
    e.cum_err = static_cast<float>(abs_eb * (n_levels - l));
    e.approx_err = static_cast<float>(
        l == 0 ? static_cast<double>(e.cum_err)
               : pyramid::prolong_error(data, f, pool) + static_cast<double>(e.cum_err));

    OBS_SPAN("progressive.level_compress");
    if (l == n_levels - 1) {
      // Coarsest level: stored verbatim; "residual" stats describe the data.
      e.resid_max = max_abs(data);
      e.resid_entropy = bin_entropy(data, abs_eb);
      streams[static_cast<std::size_t>(l)] = tiled::compress(data, abs_eb, tc);
      recon = tiled::decompress(streams[static_cast<std::size_t>(l)], cfg.threads);
    } else {
      FieldF prolonged = prolong_trilinear(recon, data.dims());
      const FieldF resid = subtract(data, prolonged);
      e.resid_max = max_abs(resid);
      e.resid_entropy = bin_entropy(resid, abs_eb);
      streams[static_cast<std::size_t>(l)] = tiled::compress(resid, abs_eb, tc_resid);
      if (l > 0) {
        add_into(prolonged,
                 tiled::decompress(streams[static_cast<std::size_t>(l)], cfg.threads));
        recon = std::move(prolonged);
      }
    }
  }

  std::uint64_t payload_bytes = 0;
  for (int l = 0; l < n_levels; ++l) {
    auto& e = entries[static_cast<std::size_t>(l)];
    e.offset = payload_bytes;
    e.length = streams[static_cast<std::size_t>(l)].size();
    payload_bytes += e.length;
  }

  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, kProgressiveMagic, d, abs_eb);
  w.put_varint(static_cast<std::uint64_t>(n_levels));
  w.put_varint(payload_bytes);
  for (const LevelEntry& e : entries) {
    w.put_varint(e.offset);
    w.put_varint(e.length);
    w.put_varint(static_cast<std::uint64_t>(e.dims.nx));
    w.put_varint(static_cast<std::uint64_t>(e.dims.ny));
    w.put_varint(static_cast<std::uint64_t>(e.dims.nz));
    w.put(e.vmin);
    w.put(e.vmax);
    w.put(e.resid_max);
    w.put(e.resid_entropy);
    w.put(e.cum_err);
    w.put(e.approx_err);
  }
  for (const Bytes& s : streams) w.put_bytes(s);
  return out;
}

Index read_geometry(std::span<const std::byte> stream) {
  ByteReader r(stream);
  const auto header = detail::read_header(r, kProgressiveMagic, "progressive");

  Index idx;
  idx.dims = header.dims;
  idx.eb = header.eb;
  const std::uint64_t n_levels = r.get_varint();
  // A hostile stream can claim any level count; the cap plus the
  // records-must-fit check bound every allocation before it is sized.
  if (n_levels < 1 || n_levels > static_cast<std::uint64_t>(kMaxLevels))
    throw CodecError("progressive: bad level count");
  idx.payload_bytes = r.get_varint();
  if (n_levels > r.remaining() / kMinLevelRecord)
    throw CodecError("progressive: level count exceeds stream size");

  idx.levels.resize(static_cast<std::size_t>(n_levels));
  Dim3 expect = idx.dims;
  std::uint64_t next_offset = 0;
  for (std::size_t l = 0; l < idx.levels.size(); ++l) {
    LevelEntry& e = idx.levels[l];
    e.offset = r.get_varint();
    e.length = r.get_varint();
    e.dims.nx = static_cast<index_t>(r.get_varint());
    e.dims.ny = static_cast<index_t>(r.get_varint());
    e.dims.nz = static_cast<index_t>(r.get_varint());
    e.vmin = r.get<float>();
    e.vmax = r.get<float>();
    e.resid_max = r.get<float>();
    e.resid_entropy = r.get<float>();
    e.cum_err = r.get<float>();
    e.approx_err = r.get<float>();

    // Levels are pinned to the halving chain and must tile the payload
    // exactly — anything else (overlapping records, gaps, extents that are
    // not the parent's half) means a corrupt or hostile table.
    if (e.dims != expect)
      throw CodecError("progressive: level " + std::to_string(l) + " extents " +
                       e.dims.str() + " off the halving chain (want " + expect.str() +
                       ")");
    if (e.offset != next_offset || e.length == 0 ||
        e.length > idx.payload_bytes - e.offset)
      throw CodecError("progressive: level " + std::to_string(l) +
                       " offset/length out of range");
    next_offset = e.offset + e.length;
    expect = blocks_for(expect, 2);
  }
  if (next_offset != idx.payload_bytes)
    throw CodecError("progressive: level streams do not tile the payload");

  idx.payload_offset = r.position();
  if (r.remaining() < idx.payload_bytes)
    throw CodecError("progressive: payload truncated");

  // Level 0's tiled preamble (O(1) peek) supplies the residual codec + brick
  // edge and cross-checks the finest extents and error bound; the coarsest
  // level's preamble supplies the data codec (residuals and data carry
  // different statistics and may use different codecs).
  const tiled::Index fine = tiled::read_geometry(idx.level_stream(stream, 0));
  if (fine.dims != idx.dims)
    throw CodecError(
        "progressive: level 0 stream extents disagree with the level table");
  if (fine.eb != idx.eb)
    throw CodecError(
        "progressive: level 0 stream error bound disagrees with the header");
  idx.codec = fine.codec;
  idx.codec_magic = fine.codec_magic;
  idx.brick = fine.brick;
  if (idx.levels.size() == 1) {
    idx.data_codec = fine.codec;
    idx.data_codec_magic = fine.codec_magic;
  } else {
    const tiled::Index coarse =
        tiled::read_geometry(idx.level_stream(stream, idx.levels.size() - 1));
    if (coarse.dims != idx.levels.back().dims)
      throw CodecError(
          "progressive: coarsest stream extents disagree with the level table");
    if (coarse.eb != idx.eb)
      throw CodecError(
          "progressive: coarsest stream error bound disagrees with the header");
    idx.data_codec = coarse.codec;
    idx.data_codec_magic = coarse.codec_magic;
  }
  return idx;
}

Index read_index(std::span<const std::byte> stream) {
  Index idx = read_geometry(stream);
  // Every nested stream must be a tiled stream of exactly the level table's
  // extents, the section's codec (residual levels share one, the coarsest
  // data level its own), same bound — a mismatch means the table points at
  // the wrong bytes.
  for (std::size_t l = 1; l < idx.levels.size(); ++l) {
    const tiled::Index li = tiled::read_geometry(idx.level_stream(stream, l));
    const std::uint32_t want =
        l == idx.levels.size() - 1 ? idx.data_codec_magic : idx.codec_magic;
    if (li.dims != idx.levels[l].dims)
      throw CodecError("progressive: level " + std::to_string(l) +
                       " stream extents disagree with the level table");
    if (li.codec_magic != want)
      throw CodecError("progressive: level " + std::to_string(l) + " codec mismatch");
    if (li.eb != idx.eb)
      throw CodecError("progressive: level " + std::to_string(l) +
                       " error bound mismatch");
  }
  return idx;
}

FieldF decompress_level(std::span<const std::byte> stream, int level, int threads) {
  const Index idx = read_index(stream);
  MRC_REQUIRE(level >= 0 && level < static_cast<int>(idx.levels.size()),
              "progressive: level out of range");
  const int top = static_cast<int>(idx.levels.size()) - 1;
  OBS_SPAN("progressive.level_decode");
  FieldF recon =
      tiled::decompress(idx.level_stream(stream, static_cast<std::size_t>(top)),
                        threads);
  for (int l = top - 1; l >= level; --l) {
    FieldF prolonged =
        prolong_trilinear(recon, idx.levels[static_cast<std::size_t>(l)].dims);
    add_into(prolonged,
             tiled::decompress(idx.level_stream(stream, static_cast<std::size_t>(l)),
                               threads));
    recon = std::move(prolonged);
  }
  return recon;
}

FieldF read_region(std::span<const std::byte> stream, int level,
                   const tiled::Box& region, int threads) {
  const Index idx = read_index(stream);
  MRC_REQUIRE(level >= 0 && level < static_cast<int>(idx.levels.size()),
              "progressive: level out of range");
  const int top = static_cast<int>(idx.levels.size()) - 1;
  const auto boxes = support_chain(idx, level, region);
  OBS_SPAN("progressive.level_decode");
  FieldF window =
      tiled::read_region(idx.level_stream(stream, static_cast<std::size_t>(top)),
                         boxes[static_cast<std::size_t>(top)], threads)
          .data;
  for (int l = top - 1; l >= level; --l) {
    const tiled::Box& fine_box = boxes[static_cast<std::size_t>(l)];
    const FieldF resid =
        tiled::read_region(idx.level_stream(stream, static_cast<std::size_t>(l)),
                           fine_box, threads)
            .data;
    window = refine(window, boxes[static_cast<std::size_t>(l + 1)],
                    idx.levels[static_cast<std::size_t>(l + 1)].dims, resid, fine_box,
                    idx.levels[static_cast<std::size_t>(l)].dims);
  }
  return window;
}

}  // namespace mrc::progressive
