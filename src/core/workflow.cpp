#include "core/workflow.h"

#include <fstream>

#include "obs/obs.h"
#include "exec/thread_pool.h"
#include "io/raw_io.h"

namespace mrc::workflow {

CompressedAdaptive compress_uniform(const FieldF& uniform, double abs_eb,
                                    const Config& cfg) {
  CompressedAdaptive out;
  out.adaptive = roi::extract_adaptive(uniform, cfg.roi_block, cfg.roi_fraction);
  out.streams = sz3mr::compress_multires(out.adaptive, abs_eb, cfg.pipeline);
  out.ratio = sz3mr::multires_ratio(out.adaptive, out.streams);
  return out;
}

namespace {

/// Snapshot preamble: shared container header (finest-grid dims + eb) under
/// kSnapshotMagic, then block size and level count. Level streams follow as
/// length-prefixed blobs, identically on disk and in memory.
Bytes snapshot_header(const MultiResField& mr, double abs_eb) {
  MRC_REQUIRE(!mr.levels.empty(), "snapshot needs at least one level");
  const Dim3 fine =
      mr.fine_dims.size() > 0 ? mr.fine_dims : mr.levels.front().data.dims();
  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, kSnapshotMagic, fine, abs_eb);
  w.put_varint(static_cast<std::uint64_t>(mr.block_size));
  w.put_varint(mr.levels.size());
  return out;
}

}  // namespace

OutputTiming write_snapshot(const MultiResField& mr, double abs_eb,
                            const sz3mr::Config& cfg, const std::string& path) {
  OutputTiming t;

  // Phase 1: pre-process — collect data into compression buffers.
  obs::ScopedTimer timer("workflow.preprocess");
  std::vector<sz3mr::PreparedLevel> prepared;
  prepared.reserve(mr.levels.size());
  for (const auto& level : mr.levels) {
    const index_t unit = std::max<index_t>(mr.block_size / level.ratio, 1);
    prepared.push_back(sz3mr::prepare_level(level, unit, cfg));
  }
  t.preprocess_s = timer.seconds();

  // Phase 2: compression + writing to the file system, in level order. With
  // one lane, each level is encoded and written before the next is touched
  // (peak memory = one compressed level); with more, levels encode
  // concurrently and buffer until the ordered write.
  timer.restart("workflow.compress_write");
  // Open (and so validate) the output path before any encoding work.
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  MRC_REQUIRE(f.good(), "cannot open snapshot file: " + path);
  exec::ThreadPool pool(cfg.threads);
  std::vector<Bytes> encoded(prepared.size());
  if (pool.size() > 1)
    pool.parallel_for(static_cast<index_t>(prepared.size()), [&](index_t l) {
      encoded[static_cast<std::size_t>(l)] =
          sz3mr::encode_prepared(prepared[static_cast<std::size_t>(l)], abs_eb);
    });
  const Bytes head = snapshot_header(mr, abs_eb);
  f.write(reinterpret_cast<const char*>(head.data()),
          static_cast<std::streamsize>(head.size()));
  t.bytes_written += head.size();
  for (std::size_t l = 0; l < prepared.size(); ++l) {
    const Bytes stream = pool.size() > 1
                             ? std::move(encoded[l])
                             : sz3mr::encode_prepared(prepared[l], abs_eb);
    Bytes len;  // varint length prefix only; the payload is written directly
    ByteWriter w(len);
    w.put_varint(stream.size());
    f.write(reinterpret_cast<const char*>(len.data()),
            static_cast<std::streamsize>(len.size()));
    f.write(reinterpret_cast<const char*>(stream.data()),
            static_cast<std::streamsize>(stream.size()));
    t.bytes_written += len.size() + stream.size();
  }
  f.flush();
  MRC_REQUIRE(f.good(), "snapshot write failed: " + path);
  t.compress_write_s = timer.seconds();
  return t;
}

Bytes encode_snapshot(const MultiResField& mr, double abs_eb,
                      const sz3mr::Config& cfg) {
  // Per-level SZ3MR streams compress concurrently (cfg.threads lanes); the
  // snapshot bytes are identical for any thread count.
  const sz3mr::MultiResStreams streams = sz3mr::compress_multires(mr, abs_eb, cfg);
  Bytes out = snapshot_header(mr, abs_eb);
  ByteWriter w(out);
  for (const Bytes& s : streams.level_streams) w.put_blob(s);
  return out;
}

MultiResField decode_snapshot(std::span<const std::byte> snapshot) {
  ByteReader r(snapshot);
  const auto header = detail::read_header(r, kSnapshotMagic, "snapshot");
  MultiResField mr;
  mr.fine_dims = header.dims;
  mr.block_size = static_cast<index_t>(r.get_varint());
  const auto n_levels = r.get_varint();
  if (mr.block_size <= 0 || n_levels == 0 || n_levels > 64)
    throw CodecError("snapshot: bad block size / level count");
  for (std::uint64_t l = 0; l < n_levels; ++l)
    mr.levels.push_back(sz3mr::decompress_level(r.get_blob()));
  return mr;
}

MultiResField read_snapshot(const std::string& path) {
  return decode_snapshot(io::read_bytes(path));
}

}  // namespace mrc::workflow
