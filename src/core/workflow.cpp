#include "core/workflow.h"

#include <fstream>

#include "common/timer.h"

namespace mrc::workflow {

CompressedAdaptive compress_uniform(const FieldF& uniform, double abs_eb,
                                    const Config& cfg) {
  CompressedAdaptive out;
  out.adaptive = roi::extract_adaptive(uniform, cfg.roi_block, cfg.roi_fraction);
  out.streams = sz3mr::compress_multires(out.adaptive, abs_eb, cfg.pipeline);
  out.ratio = sz3mr::multires_ratio(out.adaptive, out.streams);
  return out;
}

OutputTiming write_snapshot(const MultiResField& mr, double abs_eb,
                            const sz3mr::Config& cfg, const std::string& path) {
  OutputTiming t;

  // Phase 1: pre-process — collect data into compression buffers.
  WallTimer timer;
  std::vector<sz3mr::PreparedLevel> prepared;
  prepared.reserve(mr.levels.size());
  for (const auto& level : mr.levels) {
    const index_t unit = std::max<index_t>(mr.block_size / level.ratio, 1);
    prepared.push_back(sz3mr::prepare_level(level, unit, cfg));
  }
  t.preprocess_s = timer.seconds();

  // Phase 2: compression + writing to the file system.
  timer.restart();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  MRC_REQUIRE(f.good(), "cannot open snapshot file: " + path);
  const auto n_levels = static_cast<std::uint64_t>(prepared.size());
  f.write(reinterpret_cast<const char*>(&n_levels), sizeof(n_levels));
  for (const auto& prep : prepared) {
    const Bytes stream = sz3mr::encode_prepared(prep, abs_eb);
    const auto len = static_cast<std::uint64_t>(stream.size());
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write(reinterpret_cast<const char*>(stream.data()),
            static_cast<std::streamsize>(stream.size()));
    t.bytes_written += sizeof(len) + stream.size();
  }
  f.flush();
  MRC_REQUIRE(f.good(), "snapshot write failed: " + path);
  t.compress_write_s = timer.seconds();
  return t;
}

MultiResField read_snapshot(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  MRC_REQUIRE(f.good(), "cannot open snapshot file: " + path);
  std::uint64_t n_levels = 0;
  f.read(reinterpret_cast<char*>(&n_levels), sizeof(n_levels));
  sz3mr::MultiResStreams streams;
  for (std::uint64_t l = 0; l < n_levels; ++l) {
    std::uint64_t len = 0;
    f.read(reinterpret_cast<char*>(&len), sizeof(len));
    MRC_REQUIRE(f.good(), "truncated snapshot: " + path);
    Bytes b(len);
    f.read(reinterpret_cast<char*>(b.data()), static_cast<std::streamsize>(len));
    MRC_REQUIRE(f.good(), "truncated snapshot: " + path);
    streams.level_streams.push_back(std::move(b));
  }
  return sz3mr::decompress_multires(streams);
}

}  // namespace mrc::workflow
