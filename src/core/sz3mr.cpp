#include "core/sz3mr.h"

#include <algorithm>

#include "exec/thread_pool.h"
#include "postproc/sampler.h"

namespace mrc::sz3mr {

namespace {

std::unique_ptr<Compressor> make_interp(const Config& cfg) {
  CodecTuning t;
  t.quant_radius = cfg.quant_radius;
  t.adaptive_eb = cfg.adaptive_eb;
  t.alpha = cfg.alpha;
  t.beta = cfg.beta;
  return registry().make("interp", t);
}

bool should_pad(const Config& cfg, index_t unit) {
  return cfg.pad && cfg.merge == MergeKind::linear && unit >= cfg.min_pad_unit;
}

}  // namespace

Config baseline_sz3() {
  Config c;
  c.pad = false;
  c.adaptive_eb = false;
  return c;
}

Config amric_sz3() {
  Config c;
  c.merge = MergeKind::stack;
  c.pad = false;
  c.adaptive_eb = false;
  return c;
}

Config tac_sz3() {
  Config c;
  c.merge = MergeKind::tac;
  c.pad = false;
  c.adaptive_eb = false;
  return c;
}

Config ours_pad() {
  Config c;
  c.pad = true;
  c.adaptive_eb = false;
  return c;
}

Config ours_pad_eb() {
  Config c;
  c.pad = true;
  c.adaptive_eb = true;
  return c;
}

Config ours_processed() {
  Config c = ours_pad_eb();
  c.postprocess = true;
  return c;
}

PreparedLevel prepare_level(const LevelData& level, index_t unit, const Config& cfg) {
  PreparedLevel prep;
  prep.cfg = cfg;
  prep.ratio = level.ratio;
  // Occupancy scan only; the gathers below read the level grid directly so
  // pre-processing is a single pass (the Table IV "collect data" phase).
  prep.set = scan_unit_blocks(level, unit);
  if (prep.set.block_count() == 0) return prep;

  switch (cfg.merge) {
    case MergeKind::linear:
      prep.padded = should_pad(cfg, unit);
      prep.merged = gather_linear(level, prep.set, prep.padded, cfg.pad_kind);
      break;
    case MergeKind::stack:
      prep.merged = gather_stack(level, prep.set);
      break;
    case MergeKind::tac: {
      auto full = extract_unit_blocks(level, unit);
      prep.boxes = merge_tac(full);
      break;
    }
  }
  return prep;
}

Bytes encode_prepared(const PreparedLevel& prep, double abs_eb) {
  const Config& cfg = prep.cfg;
  const UnitBlockSet& set = prep.set;

  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, kLevelMagic, set.level_dims, abs_eb);
  w.put_varint(static_cast<std::uint64_t>(prep.ratio));
  w.put_varint(static_cast<std::uint64_t>(set.unit));
  w.put(static_cast<std::uint8_t>(cfg.merge));
  w.put(static_cast<std::uint8_t>(prep.padded ? 1 : 0));
  w.put(static_cast<std::uint8_t>(cfg.pad_kind));

  w.put_varint(static_cast<std::uint64_t>(set.block_count()));
  index_t prev = -1;
  for (const index_t id : set.block_ids) {
    w.put_varint(static_cast<std::uint64_t>(id - prev));
    prev = id;
  }
  if (set.block_count() == 0) {
    w.put(static_cast<std::uint8_t>(0));  // no post-process section
    return out;
  }

  const auto interp = make_interp(cfg);

  // Optional sampled Bézier intensities ("Ours (processed)"). The tuning
  // works on the unpadded merged geometry, which is what decompression
  // post-processes after stripping the pad.
  double ax = 0.0, ay = 0.0, az = 0.0;
  if (cfg.postprocess && cfg.merge != MergeKind::tac) {
    const FieldF& tune_src = prep.merged;
    const index_t unit = set.unit;
    const auto plan = postproc::default_sampling(tune_src.dims(), unit);
    const auto samples =
        postproc::draw_sample_blocks(tune_src, plan.block_edge, plan.count, /*seed=*/42);
    const auto tuned = postproc::tune_intensity(samples, *interp, abs_eb, unit,
                                                postproc::sz_candidates());
    ax = tuned.ax;
    ay = tuned.ay;
    az = tuned.az;
  }
  w.put(static_cast<std::uint8_t>(cfg.postprocess ? 1 : 0));
  if (cfg.postprocess) {
    w.put(ax);
    w.put(ay);
    w.put(az);
  }

  if (cfg.merge == MergeKind::tac) {
    w.put_varint(prep.boxes.size());
    for (const TacBox& box : prep.boxes) {
      w.put_varint(static_cast<std::uint64_t>(box.origin_blocks.x));
      w.put_varint(static_cast<std::uint64_t>(box.origin_blocks.y));
      w.put_varint(static_cast<std::uint64_t>(box.origin_blocks.z));
      w.put_varint(static_cast<std::uint64_t>(box.extent_blocks.nx));
      w.put_varint(static_cast<std::uint64_t>(box.extent_blocks.ny));
      w.put_varint(static_cast<std::uint64_t>(box.extent_blocks.nz));
      w.put_blob(interp->compress(box.data, abs_eb));
    }
  } else {
    w.put_blob(interp->compress(prep.merged, abs_eb));
  }
  return out;
}

Bytes compress_level(const LevelData& level, index_t unit, double abs_eb,
                     const Config& cfg) {
  return encode_prepared(prepare_level(level, unit, cfg), abs_eb);
}

LevelData decompress_level(std::span<const std::byte> stream) {
  ByteReader r(stream);
  const auto header = detail::read_header(r, kLevelMagic, "sz3mr");
  const Dim3 ld = header.dims;
  const double eb = header.eb;

  UnitBlockSet set;
  const auto ratio = static_cast<index_t>(r.get_varint());
  const auto unit = static_cast<index_t>(r.get_varint());
  if (unit <= 0 || unit > ld.max_extent() || ratio <= 0)
    throw CodecError("sz3mr: bad unit/ratio");
  const auto merge = static_cast<MergeKind>(r.get<std::uint8_t>());
  const bool padded = r.get<std::uint8_t>() != 0;
  (void)r.get<std::uint8_t>();  // pad kind (informational; strip is shape-only)

  set.unit = unit;
  set.level_dims = ld;
  set.block_grid = blocks_for(ld, unit);
  const auto n_blocks = static_cast<index_t>(r.get_varint());
  if (n_blocks > set.block_grid.size()) throw CodecError("sz3mr: too many blocks");
  index_t prev = -1;
  for (index_t i = 0; i < n_blocks; ++i) {
    const auto delta = static_cast<index_t>(r.get_varint());
    if (delta <= 0) throw CodecError("sz3mr: non-increasing block ids");
    prev += delta;
    if (prev >= set.block_grid.size()) throw CodecError("sz3mr: block id out of range");
    set.block_ids.push_back(prev);
  }

  LevelData level;
  level.ratio = ratio;
  level.data = FieldF(ld, 0.0f);
  level.mask = MaskField(ld, 0);

  const bool has_post = r.get<std::uint8_t>() != 0;
  double ax = 0.0, ay = 0.0, az = 0.0;
  if (has_post) {
    ax = r.get<double>();
    ay = r.get<double>();
    az = r.get<double>();
  }
  if (n_blocks == 0) return level;

  // Codec config is decoded from the nested payload itself.
  const auto interp = registry().make("interp");

  if (merge == MergeKind::tac) {
    const auto n_boxes = r.get_varint();
    std::vector<TacBox> boxes;
    boxes.reserve(static_cast<std::size_t>(n_boxes));
    for (std::uint64_t b = 0; b < n_boxes; ++b) {
      TacBox box;
      box.origin_blocks.x = static_cast<index_t>(r.get_varint());
      box.origin_blocks.y = static_cast<index_t>(r.get_varint());
      box.origin_blocks.z = static_cast<index_t>(r.get_varint());
      box.extent_blocks.nx = static_cast<index_t>(r.get_varint());
      box.extent_blocks.ny = static_cast<index_t>(r.get_varint());
      box.extent_blocks.nz = static_cast<index_t>(r.get_varint());
      box.data = interp->decompress(r.get_blob());
      boxes.push_back(std::move(box));
    }
    unmerge_tac(boxes, set);
  } else {
    FieldF merged = interp->decompress(r.get_blob());
    if (padded) merged = strip_pad_xy(merged);
    if (has_post && (ax > 0.0 || ay > 0.0 || az > 0.0)) {
      postproc::BezierParams p{unit, eb, ax, ay, az};
      merged = postproc::bezier_postprocess(merged, p);
    }
    if (merge == MergeKind::linear)
      unmerge_linear(merged, set);
    else
      unmerge_stack(merged, set);
  }

  scatter_unit_blocks(set, level);
  return level;
}

std::size_t MultiResStreams::total_bytes() const {
  std::size_t n = 0;
  for (const auto& s : level_streams) n += s.size();
  return n;
}

MultiResStreams compress_multires(const MultiResField& mr, double abs_eb,
                                  const Config& cfg) {
  MultiResStreams out;
  out.level_streams.resize(mr.levels.size());
  // Levels are independent streams, so they compress concurrently on the
  // pool; results land at their level index, keeping the output identical
  // to a serial run.
  exec::ThreadPool pool(cfg.threads);
  pool.parallel_for(static_cast<index_t>(mr.levels.size()), [&](index_t l) {
    const auto& level = mr.levels[static_cast<std::size_t>(l)];
    const index_t unit = std::max<index_t>(mr.block_size / level.ratio, 1);
    out.level_streams[static_cast<std::size_t>(l)] =
        compress_level(level, unit, abs_eb, cfg);
  });
  return out;
}

MultiResField decompress_multires(const MultiResStreams& streams) {
  MultiResField mr;
  MRC_REQUIRE(!streams.level_streams.empty(), "no level streams");
  for (const auto& s : streams.level_streams)
    mr.levels.push_back(decompress_level(s));
  mr.fine_dims = mr.levels.front().data.dims();
  // block size = unit of the finest level; recover from its dims/ratio via
  // the coarsest ratio (units halve per level).
  mr.block_size = 0;
  for (const auto& l : mr.levels) mr.block_size = std::max(mr.block_size, l.ratio);
  return mr;
}

double multires_ratio(const MultiResField& mr, const MultiResStreams& s) {
  return static_cast<double>(mr.stored_samples()) * sizeof(float) /
         static_cast<double>(s.total_bytes());
}

}  // namespace mrc::sz3mr
