#pragma once

// SZ3MR: the paper's multi-resolution compression pipeline (§III-A) plus the
// baselines it is evaluated against.
//
// Per level:  extract unit blocks → merge (linear / stack / TAC) →
//             [pad the two small dims] → SZ3-class compression with
//             [per-level adaptive error bounds] → self-describing stream.
// Decompression mirrors the pipeline and can optionally run the Bézier
// post-process on the merged array before unmerging ("Ours (processed)").
//
// Named presets reproduce the curves of Figs. 15/17/18:
//   baseline_sz3()  — linear merge, plain SZ3
//   amric_sz3()     — AMRIC's stack merge, plain SZ3
//   tac_sz3()       — TAC's adjacency merge, plain SZ3 per box (offline only)
//   ours_pad()      — linear merge + padding
//   ours_pad_eb()   — + adaptive error bound (the full SZ3MR)
//   ours_processed()— + sampled Bézier post-process
//
// This is the pipeline layer under the "api/mrc_api.h" facade: applications
// normally call api::compress_adaptive / api::restore with an api::Options
// (which subsumes this Config) instead of driving sz3mr directly. Level
// streams start with the shared container header of compressor.h under
// kLevelMagic, so one reader (peek_header) identifies them too.

#include "compressors/registry.h"
#include "merge/merge_strategies.h"
#include "merge/padding.h"

namespace mrc::sz3mr {

/// Container-header stream id of an sz3mr level stream.
inline constexpr std::uint32_t kLevelMagic = 0x314c'524d;  // "MRL1"

struct Config {
  MergeKind merge = MergeKind::linear;
  bool pad = true;
  PadKind pad_kind = PadKind::linear;
  index_t min_pad_unit = 5;  ///< pad only when unit > 4 (paper §III-A)
  bool adaptive_eb = true;
  double alpha = 2.25;
  double beta = 8.0;
  std::uint32_t quant_radius = 512;
  bool postprocess = false;  ///< tune + embed Bézier intensities in the stream
  /// Exec-pool lanes used to compress/decompress hierarchy levels
  /// concurrently (compress_multires / encode_snapshot); streams are
  /// byte-identical for any value. 0 = hardware.
  int threads = 1;
};

[[nodiscard]] Config baseline_sz3();
[[nodiscard]] Config amric_sz3();
[[nodiscard]] Config tac_sz3();
[[nodiscard]] Config ours_pad();
[[nodiscard]] Config ours_pad_eb();
[[nodiscard]] Config ours_processed();

/// Preprocessing output — separated from encoding so the in-situ experiment
/// (Table IV) can time "collect data into the compression buffer" apart from
/// "compress and write".
struct PreparedLevel {
  UnitBlockSet set;             ///< ids + geometry (payload moved into merged/boxes)
  FieldF merged;                ///< linear/stack merges
  std::vector<TacBox> boxes;    ///< tac merge
  index_t ratio = 1;
  bool padded = false;
  Config cfg;
};

[[nodiscard]] PreparedLevel prepare_level(const LevelData& level, index_t unit,
                                          const Config& cfg);
[[nodiscard]] Bytes encode_prepared(const PreparedLevel& prep, double abs_eb);

/// prepare + encode in one call.
[[nodiscard]] Bytes compress_level(const LevelData& level, index_t unit, double abs_eb,
                                   const Config& cfg);

/// Full inverse; reconstructs the level's data + mask (zeros elsewhere).
[[nodiscard]] LevelData decompress_level(std::span<const std::byte> stream);

/// Hierarchy-level driver. Unit block size per level = block_size / ratio.
struct MultiResStreams {
  std::vector<Bytes> level_streams;
  [[nodiscard]] std::size_t total_bytes() const;
};

[[nodiscard]] MultiResStreams compress_multires(const MultiResField& mr, double abs_eb,
                                                const Config& cfg);
[[nodiscard]] MultiResField decompress_multires(const MultiResStreams& streams);

/// Compression ratio over the *stored* samples of the hierarchy.
[[nodiscard]] double multires_ratio(const MultiResField& mr, const MultiResStreams& s);

}  // namespace mrc::sz3mr
