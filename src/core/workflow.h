#pragma once

// End-to-end workflow driver (paper Fig. 3): uniform data → ROI-based
// adaptive conversion → per-level SZ3MR compression → storage, with the
// in-situ output-time instrumentation used by Table IV.

#include <string>

#include "core/sz3mr.h"
#include "roi/roi_extract.h"

namespace mrc::workflow {

/// Container-header stream id of a multi-level snapshot. Snapshots start
/// with the same versioned header as every codec stream (dims = finest-grid
/// extents, eb = the bound all levels were encoded under), so peek_header
/// identifies them without decompressing anything.
inline constexpr std::uint32_t kSnapshotMagic = 0x5343'524d;  // "MRCS"

struct Config {
  index_t roi_block = 16;     ///< ROI partition b (2^n, n > 2)
  double roi_fraction = 0.5;  ///< paper's x (top blocks kept at full res)
  sz3mr::Config pipeline = sz3mr::ours_pad_eb();
};

/// Uniform field → adaptive multi-resolution → compressed streams.
struct CompressedAdaptive {
  sz3mr::MultiResStreams streams;
  MultiResField adaptive;  ///< the (uncompressed) adaptive structure
  double ratio = 0.0;      ///< stored samples vs compressed bytes
};
[[nodiscard]] CompressedAdaptive compress_uniform(const FieldF& uniform, double abs_eb,
                                                  const Config& cfg);

/// In-situ snapshot output with the paper's two-phase timing split:
/// (1) pre-process — collect unit blocks into the compression buffer
///     (merge + optional padding),
/// (2) compression + writing the compressed data to the file system.
struct OutputTiming {
  double preprocess_s = 0.0;
  double compress_write_s = 0.0;
  std::size_t bytes_written = 0;
  [[nodiscard]] double total_s() const { return preprocess_s + compress_write_s; }
};

[[nodiscard]] OutputTiming write_snapshot(const MultiResField& mr, double abs_eb,
                                          const sz3mr::Config& cfg,
                                          const std::string& path);

/// In-memory form of write_snapshot's on-disk format (identical bytes):
/// container header under kSnapshotMagic, then block size, level count, and
/// one length-prefixed sz3mr level stream per level.
[[nodiscard]] Bytes encode_snapshot(const MultiResField& mr, double abs_eb,
                                    const sz3mr::Config& cfg);

/// Full inverse of encode_snapshot / the bytes of a write_snapshot file.
[[nodiscard]] MultiResField decode_snapshot(std::span<const std::byte> snapshot);

/// Reads back a snapshot written by write_snapshot.
[[nodiscard]] MultiResField read_snapshot(const std::string& path);

}  // namespace mrc::workflow
