#include "adaptive/adaptive.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <unordered_map>

#include "analysis/halo_finder.h"
#include "exec/thread_pool.h"
#include "grid/field_ops.h"
#include "obs/obs.h"
#include "roi/roi_extract.h"

namespace mrc::adaptive {

namespace {

std::string magic_hex(std::uint32_t magic) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", magic);
  return buf;
}

/// Smallest possible index record: 6 single-byte varints + three f32s.
inline constexpr std::size_t kMinBrickRecord = 18;

/// Per-brick max score over the core region of every brick.
std::vector<double> brick_max_scores(const FieldF& score, index_t brick) {
  const Dim3 d = score.dims();
  const Dim3 grid = blocks_for(d, brick);
  std::vector<double> out(static_cast<std::size_t>(grid.size()),
                          -std::numeric_limits<double>::infinity());
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x) {
        const index_t t = (x / brick) + grid.nx * ((y / brick) + grid.ny * (z / brick));
        auto& s = out[static_cast<std::size_t>(t)];
        s = std::max(s, static_cast<double>(score.at(x, y, z)));
      }
  return out;
}

LevelMap map_from_scores(Dim3 dims, index_t brick, std::span<const double> scores,
                         double keep_fraction, int coarse_level) {
  MRC_REQUIRE(coarse_level >= 0 && coarse_level <= max_level(brick),
              "adaptive: coarse level must be in [0, max_level(brick)]");
  MRC_REQUIRE(keep_fraction >= 0.0 && keep_fraction <= 1.0,
              "adaptive: keep fraction must be in [0, 1]");
  LevelMap map;
  map.grid = blocks_for(dims, brick);
  MRC_REQUIRE(static_cast<std::size_t>(map.grid.size()) == scores.size(),
              "adaptive: one score per brick required");
  const double thr = roi::keep_fraction_threshold(scores, keep_fraction);
  map.level.resize(scores.size());
  for (std::size_t t = 0; t < scores.size(); ++t)
    map.level[t] = scores[t] >= thr ? 0 : static_cast<std::uint8_t>(coarse_level);
  return map;
}

}  // namespace

int max_level(index_t brick) {
  MRC_REQUIRE(brick >= 1, "adaptive: brick edge must be >= 1");
  int l = 0;
  while (l + 1 < kMaxLevels && (kOverlap << (l + 1)) <= brick) ++l;
  return l;
}

int LevelMap::n_levels() const {
  std::uint8_t top = 0;
  for (const std::uint8_t l : level) top = std::max(top, l);
  return static_cast<int>(top) + 1;
}

LevelMap uniform_map(Dim3 dims, index_t brick, int level) {
  MRC_REQUIRE(level >= 0 && level <= max_level(brick),
              "adaptive: level must be in [0, max_level(brick)]");
  LevelMap map;
  map.grid = blocks_for(dims, brick);
  map.level.assign(static_cast<std::size_t>(map.grid.size()),
                   static_cast<std::uint8_t>(level));
  return map;
}

LevelMap map_from_mask(Dim3 dims, index_t brick, const MaskField& important,
                       int coarse_level, index_t dilate_bricks) {
  MRC_REQUIRE(important.dims() == dims, "adaptive: mask extents must match the field");
  MRC_REQUIRE(coarse_level >= 0 && coarse_level <= max_level(brick),
              "adaptive: coarse level must be in [0, max_level(brick)]");
  MRC_REQUIRE(dilate_bricks >= 0, "adaptive: dilation must be >= 0");
  LevelMap map;
  map.grid = blocks_for(dims, brick);
  std::vector<std::uint8_t> hot(static_cast<std::size_t>(map.grid.size()), 0);
  for (index_t z = 0; z < dims.nz; ++z)
    for (index_t y = 0; y < dims.ny; ++y)
      for (index_t x = 0; x < dims.nx; ++x)
        if (important.at(x, y, z) != 0)
          hot[static_cast<std::size_t>((x / brick) +
                                       map.grid.nx * ((y / brick) +
                                                      map.grid.ny * (z / brick)))] = 1;
  map.level.resize(hot.size());
  const Dim3 g = map.grid;
  for (index_t tz = 0; tz < g.nz; ++tz)
    for (index_t ty = 0; ty < g.ny; ++ty)
      for (index_t tx = 0; tx < g.nx; ++tx) {
        bool fine = false;
        for (index_t dz = -dilate_bricks; dz <= dilate_bricks && !fine; ++dz)
          for (index_t dy = -dilate_bricks; dy <= dilate_bricks && !fine; ++dy)
            for (index_t dx = -dilate_bricks; dx <= dilate_bricks && !fine; ++dx) {
              const index_t nx = tx + dx, ny = ty + dy, nz = tz + dz;
              if (nx < 0 || ny < 0 || nz < 0 || nx >= g.nx || ny >= g.ny || nz >= g.nz)
                continue;
              fine = hot[static_cast<std::size_t>(nx + g.nx * (ny + g.ny * nz))] != 0;
            }
        map.level[static_cast<std::size_t>(tx + g.nx * (ty + g.ny * tz))] =
            fine ? 0 : static_cast<std::uint8_t>(coarse_level);
      }
  return map;
}

LevelMap map_from_halos(const FieldF& density, index_t brick, float threshold,
                        index_t min_cells, int coarse_level) {
  const MaskField mask = analysis::halo_mask(density, threshold, min_cells);
  return map_from_mask(density.dims(), brick, mask, coarse_level, /*dilate_bricks=*/1);
}

LevelMap map_from_gradient(const FieldF& f, index_t brick, double keep_fraction,
                           int coarse_level) {
  const FieldF g = gradient_magnitude(f);
  const auto scores = brick_max_scores(g, brick);
  return map_from_scores(f.dims(), brick, scores, keep_fraction, coarse_level);
}

LevelMap map_from_boxes(Dim3 dims, index_t brick, std::span<const tiled::Box> rois,
                        int coarse_level) {
  MRC_REQUIRE(coarse_level >= 0 && coarse_level <= max_level(brick),
              "adaptive: coarse level must be in [0, max_level(brick)]");
  LevelMap map;
  map.grid = blocks_for(dims, brick);
  map.level.assign(static_cast<std::size_t>(map.grid.size()),
                   static_cast<std::uint8_t>(coarse_level));
  for (const tiled::Box& b : rois) {
    const Dim3 ext = b.extent();
    MRC_REQUIRE(b.lo.x >= 0 && b.lo.y >= 0 && b.lo.z >= 0 && ext.nx > 0 && ext.ny > 0 &&
                    ext.nz > 0 && b.hi.x <= dims.nx && b.hi.y <= dims.ny &&
                    b.hi.z <= dims.nz,
                "adaptive: ROI must be a non-empty box inside " + dims.str());
    for (index_t tz = b.lo.z / brick; tz < ceil_div(b.hi.z, brick); ++tz)
      for (index_t ty = b.lo.y / brick; ty < ceil_div(b.hi.y, brick); ++ty)
        for (index_t tx = b.lo.x / brick; tx < ceil_div(b.hi.x, brick); ++tx)
          map.level[static_cast<std::size_t>(tx + map.grid.nx *
                                                      (ty + map.grid.ny * tz))] = 0;
  }
  return map;
}

LevelMap map_from_field(const FieldF& importance, index_t brick, double keep_fraction,
                        int coarse_level) {
  const auto scores = brick_max_scores(importance, brick);
  return map_from_scores(importance.dims(), brick, scores, keep_fraction, coarse_level);
}

Dim3 brick_fine_extent(const Dim3& dims, const Coord3& o, index_t brick, int level) {
  const index_t reach = brick + (kOverlap << level);
  return {std::min(reach, dims.nx - o.x), std::min(reach, dims.ny - o.y),
          std::min(reach, dims.nz - o.z)};
}

Dim3 brick_stored_extent(const Dim3& dims, const Coord3& o, index_t brick, int level) {
  const Dim3 fine = brick_fine_extent(dims, o, brick, level);
  const index_t s = index_t{1} << level;
  return {ceil_div(fine.nx, s), ceil_div(fine.ny, s), ceil_div(fine.nz, s)};
}

Coord3 Index::origin(std::size_t t) const {
  const Coord3 tc = tiled::tile_coord(grid, static_cast<index_t>(t));
  return {tc.x * brick, tc.y * brick, tc.z * brick};
}

Dim3 Index::core_extent(std::size_t t) const {
  const Coord3 o = origin(t);
  return {std::min(brick, dims.nx - o.x), std::min(brick, dims.ny - o.y),
          std::min(brick, dims.nz - o.z)};
}

Dim3 Index::fine_extent(std::size_t t) const {
  return brick_fine_extent(dims, origin(t), brick, bricks[t].level);
}

Bytes compress(const FieldF& f, double abs_eb, const LevelMap& levels,
               const Config& cfg) {
  MRC_REQUIRE(!f.empty(), "adaptive: empty field");
  MRC_REQUIRE(abs_eb > 0.0, "adaptive: error bound must be positive");
  MRC_REQUIRE(cfg.brick >= 1, "adaptive: brick edge must be >= 1");
  const Dim3 d = f.dims();
  const Dim3 grid = blocks_for(d, cfg.brick);
  const index_t n_bricks = grid.size();
  MRC_REQUIRE(levels.grid == grid && static_cast<index_t>(levels.level.size()) == n_bricks,
              "adaptive: level map does not match the brick grid");
  const int top = max_level(cfg.brick);
  int n_levels = 1;
  for (const std::uint8_t l : levels.level) {
    MRC_REQUIRE(static_cast<int>(l) <= top,
                "adaptive: brick level exceeds max_level(brick)");
    n_levels = std::max(n_levels, static_cast<int>(l) + 1);
  }

  // One stateless compressor instance serves every pool lane.
  CodecTuning tuning = cfg.tuning;
  tuning.threads = 1;
  const auto codec = registry().make(cfg.codec, tuning);

  std::vector<Bytes> streams(static_cast<std::size_t>(n_bricks));
  std::vector<BrickEntry> entries(static_cast<std::size_t>(n_bricks));

  exec::ThreadPool pool(cfg.threads);
  pool.parallel_for(n_bricks, [&](index_t t) {
    static obs::Counter& bricks =
        obs::Registry::global().counter("mrc.adaptive.bricks_compressed");
    bricks.add(1);
    OBS_SPAN("adaptive.brick_compress");
    const Coord3 tc = tiled::tile_coord(grid, t);
    const Coord3 o{tc.x * cfg.brick, tc.y * cfg.brick, tc.z * cfg.brick};
    const int level = static_cast<int>(levels.level[static_cast<std::size_t>(t)]);
    const Dim3 sf = brick_fine_extent(d, o, cfg.brick, level);

    FieldF b = extract_region(f, o, sf);
    // Restriction chain: pad odd extents to even so every coarse sample
    // averages a full 2x2x2 box, then halve. Extents follow ceil_div, same
    // as an unpadded restrict_half — padding only changes boundary values.
    for (int l = 0; l < level; ++l) b = restrict_half(pad_to_even(b, cfg.pad_kind));

    BrickEntry& e = entries[static_cast<std::size_t>(t)];
    e.level = level;
    e.origin = o;
    e.stored = b.dims();
    const auto [lo, hi] = b.min_max();
    e.vmin = lo;
    e.vmax = hi;
    if (level == 0) {
      e.approx_err = static_cast<float>(abs_eb);
    } else {
      // Downsampling error over the brick's own fine region, measured on the
      // pre-codec restriction (the codec adds at most eb on top).
      e.approx_err = static_cast<float>(
          prolong_error_slab(b, extract_region(f, o, sf), 0, sf.nz) + abs_eb);
    }
    streams[static_cast<std::size_t>(t)] = codec->compress(b, abs_eb);
  });

  std::uint64_t payload_bytes = 0;
  for (index_t t = 0; t < n_bricks; ++t) {
    auto& e = entries[static_cast<std::size_t>(t)];
    e.offset = payload_bytes;
    e.length = streams[static_cast<std::size_t>(t)].size();
    payload_bytes += e.length;
  }

  Bytes out;
  ByteWriter w(out);
  mrc::detail::write_header(w, kAdaptiveMagic, d, abs_eb);
  w.put_varint(static_cast<std::uint64_t>(cfg.brick));
  w.put_varint(static_cast<std::uint64_t>(kOverlap));
  w.put(registry().find(cfg.codec)->magic);
  w.put_varint(static_cast<std::uint64_t>(n_levels));
  w.put_varint(static_cast<std::uint64_t>(grid.nx));
  w.put_varint(static_cast<std::uint64_t>(grid.ny));
  w.put_varint(static_cast<std::uint64_t>(grid.nz));
  w.put_varint(payload_bytes);
  for (const BrickEntry& e : entries) {
    w.put_varint(static_cast<std::uint64_t>(e.level));
    w.put_varint(e.offset);
    w.put_varint(e.length);
    w.put_varint(static_cast<std::uint64_t>(e.stored.nx));
    w.put_varint(static_cast<std::uint64_t>(e.stored.ny));
    w.put_varint(static_cast<std::uint64_t>(e.stored.nz));
    w.put(e.vmin);
    w.put(e.vmax);
    w.put(e.approx_err);
  }
  for (const Bytes& s : streams) w.put_bytes(s);
  return out;
}

namespace {

/// Shared preamble parse; leaves `r` positioned at the first brick record.
Index parse_geometry(ByteReader& r) {
  const auto header = mrc::detail::read_header(r, kAdaptiveMagic, "adaptive");

  Index idx;
  idx.dims = header.dims;
  idx.eb = header.eb;
  idx.brick = static_cast<index_t>(r.get_varint());
  if (idx.brick < 1 || idx.brick > (index_t{1} << 40))
    throw CodecError("adaptive: bad brick edge");
  idx.overlap = static_cast<index_t>(r.get_varint());
  // Every geometry formula below (brick_fine_extent / brick_stored_extent,
  // hence stored-extent validation, reconstruction and blending) is defined
  // in terms of kOverlap; a stream claiming anything else is either corrupt
  // or from a future format this reader cannot serve correctly.
  if (idx.overlap != kOverlap) throw CodecError("adaptive: unsupported overlap");
  idx.codec_magic = r.get<std::uint32_t>();
  const auto* entry = registry().find_magic(idx.codec_magic);
  idx.codec = entry != nullptr ? entry->name : magic_hex(idx.codec_magic);

  const std::uint64_t n_levels = r.get_varint();
  if (n_levels < 1 || n_levels > static_cast<std::uint64_t>(kMaxLevels))
    throw CodecError("adaptive: bad level count");
  idx.n_levels = static_cast<int>(n_levels);

  idx.grid.nx = static_cast<index_t>(r.get_varint());
  idx.grid.ny = static_cast<index_t>(r.get_varint());
  idx.grid.nz = static_cast<index_t>(r.get_varint());
  if (idx.grid != blocks_for(idx.dims, idx.brick))
    throw CodecError("adaptive: brick grid does not match extents / brick edge");
  idx.payload_bytes = r.get_varint();
  return idx;
}

}  // namespace

Index read_geometry(std::span<const std::byte> stream) {
  ByteReader r(stream);
  return parse_geometry(r);
}

Index read_index(std::span<const std::byte> stream) {
  ByteReader r(stream);
  Index idx = parse_geometry(r);

  const index_t n_bricks = idx.grid.size();
  // A hostile stream can claim a consistent but astronomically bricked grid;
  // the records must actually fit in the bytes we hold before any
  // allocation is sized from the claim.
  if (static_cast<std::uint64_t>(n_bricks) > r.remaining() / kMinBrickRecord)
    throw CodecError("adaptive: brick count exceeds stream size");
  idx.bricks.resize(static_cast<std::size_t>(n_bricks));
  for (index_t t = 0; t < n_bricks; ++t) {
    BrickEntry& e = idx.bricks[static_cast<std::size_t>(t)];
    const std::uint64_t level = r.get_varint();
    // The level gates shift arithmetic below; reject before using it.
    if (level >= static_cast<std::uint64_t>(idx.n_levels))
      throw CodecError("adaptive: brick " + std::to_string(t) + " level out of range");
    e.level = static_cast<int>(level);
    if ((idx.overlap << e.level) > idx.brick)
      throw CodecError("adaptive: brick " + std::to_string(t) +
                       " level too coarse for the brick edge");
    e.offset = r.get_varint();
    e.length = r.get_varint();
    e.stored.nx = static_cast<index_t>(r.get_varint());
    e.stored.ny = static_cast<index_t>(r.get_varint());
    e.stored.nz = static_cast<index_t>(r.get_varint());
    e.vmin = r.get<float>();
    e.vmax = r.get<float>();
    e.approx_err = r.get<float>();

    // Origin and stored extents are pure functions of (dims, brick, overlap,
    // level) — anything else means a corrupt index.
    e.origin = idx.origin(static_cast<std::size_t>(t));
    if (e.stored != brick_stored_extent(idx.dims, e.origin, idx.brick, e.level))
      throw CodecError("adaptive: brick " + std::to_string(t) +
                       " stored extents corrupt");
    if (e.length == 0 || e.offset > idx.payload_bytes ||
        e.length > idx.payload_bytes - e.offset)
      throw CodecError("adaptive: brick " + std::to_string(t) +
                       " offset/length out of range");
  }

  idx.payload_offset = r.position();
  if (r.remaining() < idx.payload_bytes) throw CodecError("adaptive: payload truncated");
  return idx;
}

FieldF decode_brick(const Index& idx, const Compressor& codec,
                    std::span<const std::byte> stream, std::size_t t) {
  MRC_REQUIRE(t < idx.bricks.size(), "decode_brick: brick id out of range");
  static obs::Counter& bricks =
      obs::Registry::global().counter("mrc.adaptive.bricks_decoded");
  bricks.add(1);
  OBS_SPAN("adaptive.brick_decode");
  const BrickEntry& e = idx.bricks[t];
  const auto payload = stream.subspan(idx.payload_offset,
                                      static_cast<std::size_t>(idx.payload_bytes));
  const auto brick_stream = payload.subspan(static_cast<std::size_t>(e.offset),
                                            static_cast<std::size_t>(e.length));
  const FieldF b = codec.decompress(brick_stream);
  if (b.dims() != e.stored)
    throw CodecError("adaptive: brick " + std::to_string(t) + " decodes to " +
                     b.dims().str() + ", index says " + e.stored.str());
  return b;
}

FieldF reconstruct_brick(const Index& idx, std::size_t t, const FieldF& decoded) {
  MRC_REQUIRE(t < idx.bricks.size(), "reconstruct_brick: brick id out of range");
  const BrickEntry& e = idx.bricks[t];
  MRC_REQUIRE(decoded.dims() == e.stored, "reconstruct_brick: extents mismatch");
  if (e.level == 0) return decoded;
  return prolong_trilinear(decoded, idx.fine_extent(t));
}

std::vector<index_t> bricks_for_region(const Index& idx, const tiled::Box& region) {
  const Dim3 ext = region.extent();
  MRC_REQUIRE(region.lo.x >= 0 && region.lo.y >= 0 && region.lo.z >= 0 && ext.nx > 0 &&
                  ext.ny > 0 && ext.nz > 0 && region.hi.x <= idx.dims.nx &&
                  region.hi.y <= idx.dims.ny && region.hi.z <= idx.dims.nz,
              "adaptive: region must be a non-empty box inside " + idx.dims.str());
  const Dim3 g = idx.grid;
  const index_t tx0 = region.lo.x / idx.brick, tx1 = ceil_div(region.hi.x, idx.brick);
  const index_t ty0 = region.lo.y / idx.brick, ty1 = ceil_div(region.hi.y, idx.brick);
  const index_t tz0 = region.lo.z / idx.brick, tz1 = ceil_div(region.hi.z, idx.brick);
  // Dedup bitmap over the owner box expanded one brick on the low sides —
  // the only bricks a read can touch — so the cost is O(hit), not O(grid):
  // a small warm viewport query must stay cheap on a huge brick lattice.
  const index_t ex0 = std::max<index_t>(0, tx0 - 1);
  const index_t ey0 = std::max<index_t>(0, ty0 - 1);
  const index_t ez0 = std::max<index_t>(0, tz0 - 1);
  const Dim3 e{tx1 - ex0, ty1 - ey0, tz1 - ez0};
  std::vector<std::uint8_t> need(static_cast<std::size_t>(e.size()), 0);
  const auto slot = [&](index_t tx, index_t ty, index_t tz) {
    return static_cast<std::size_t>((tx - ex0) +
                                    e.nx * ((ty - ey0) + e.ny * (tz - ez0)));
  };
  for (index_t tz = tz0; tz < tz1; ++tz)
    for (index_t ty = ty0; ty < ty1; ++ty)
      for (index_t tx = tx0; tx < tx1; ++tx) {
        need[slot(tx, ty, tz)] = 1;
        const index_t t = tx + g.nx * (ty + g.ny * tz);
        if (idx.bricks[static_cast<std::size_t>(t)].level == 0) continue;
        // A coarse owner blends with any brick whose stored region covers
        // its core — only the seven low-side neighbors can (the scaled
        // overlap never reaches past one brick).
        for (int dz = -1; dz <= 0; ++dz)
          for (int dy = -1; dy <= 0; ++dy)
            for (int dx = -1; dx <= 0; ++dx) {
              const index_t nx = tx + dx, ny = ty + dy, nz = tz + dz;
              if (nx < 0 || ny < 0 || nz < 0) continue;
              need[slot(nx, ny, nz)] = 1;
            }
      }
  std::vector<index_t> out;
  for (index_t tz = ez0; tz < tz1; ++tz)
    for (index_t ty = ey0; ty < ty1; ++ty)
      for (index_t tx = ex0; tx < tx1; ++tx)
        if (need[slot(tx, ty, tz)] != 0) out.push_back(tx + g.nx * (ty + g.ny * tz));
  return out;
}

namespace detail {

void assemble_region(const Index& idx, const tiled::Box& region,
                     const std::function<const FieldF&(index_t)>& recon, FieldF& out) {
  const Dim3 g = idx.grid;
  const index_t tx0 = region.lo.x / idx.brick, tx1 = ceil_div(region.hi.x, idx.brick);
  const index_t ty0 = region.lo.y / idx.brick, ty1 = ceil_div(region.hi.y, idx.brick);
  const index_t tz0 = region.lo.z / idx.brick, tz1 = ceil_div(region.hi.z, idx.brick);
  for (index_t tz = tz0; tz < tz1; ++tz)
    for (index_t ty = ty0; ty < ty1; ++ty)
      for (index_t tx = tx0; tx < tx1; ++tx) {
        const auto t = static_cast<std::size_t>(tx + g.nx * (ty + g.ny * tz));
        const BrickEntry& e = idx.bricks[t];
        const FieldF& b = recon(static_cast<index_t>(t));
        const Dim3 core = idx.core_extent(t);
        const index_t x0 = std::max(e.origin.x, region.lo.x);
        const index_t x1 = std::min(e.origin.x + core.nx, region.hi.x);
        const index_t y0 = std::max(e.origin.y, region.lo.y);
        const index_t y1 = std::min(e.origin.y + core.ny, region.hi.y);
        const index_t z0 = std::max(e.origin.z, region.lo.z);
        const index_t z1 = std::min(e.origin.z + core.nz, region.hi.z);

        if (e.level == 0) {
          // Fine owner: its core samples are the reconstruction, bit for bit.
          for (index_t z = z0; z < z1; ++z)
            for (index_t y = y0; y < y1; ++y)
              std::copy_n(&b.at(x0 - e.origin.x, y - e.origin.y, z - e.origin.z),
                          x1 - x0,
                          &out.at(x0 - region.lo.x, y - region.lo.y, z - region.lo.z));
          continue;
        }

        // Coarse owner: blend with every low-side neighbor whose stored
        // region covers the sample. Gather the candidate neighbors once.
        struct Contributor {
          const FieldF* field;
          Coord3 origin;
          Dim3 fine;  ///< fine extents of the neighbor's stored region
        };
        std::vector<Contributor> nbrs;
        for (int dz = -1; dz <= 0; ++dz)
          for (int dy = -1; dy <= 0; ++dy)
            for (int dx = -1; dx <= 0; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const index_t nx = tx + dx, ny = ty + dy, nz = tz + dz;
              if (nx < 0 || ny < 0 || nz < 0) continue;
              const auto nt = static_cast<std::size_t>(nx + g.nx * (ny + g.ny * nz));
              nbrs.push_back({&recon(static_cast<index_t>(nt)), idx.origin(nt),
                              idx.fine_extent(nt)});
            }

        for (index_t z = z0; z < z1; ++z)
          for (index_t y = y0; y < y1; ++y)
            for (index_t x = x0; x < x1; ++x) {
              double sum = b.at(x - e.origin.x, y - e.origin.y, z - e.origin.z);
              int cnt = 1;
              for (const Contributor& c : nbrs) {
                const index_t lx = x - c.origin.x, ly = y - c.origin.y,
                              lz = z - c.origin.z;
                if (lx < c.fine.nx && ly < c.fine.ny && lz < c.fine.nz) {
                  sum += c.field->at(lx, ly, lz);
                  ++cnt;
                }
              }
              out.at(x - region.lo.x, y - region.lo.y, z - region.lo.z) =
                  static_cast<float>(sum / cnt);
            }
      }
}

}  // namespace detail

tiled::RegionRead read_region(std::span<const std::byte> stream, const tiled::Box& region,
                              int threads) {
  const Index idx = read_index(stream);
  const std::vector<index_t> need = bricks_for_region(idx, region);

  tiled::RegionRead out;
  out.data = FieldF(region.extent());
  out.tiles_total = idx.bricks.size();
  out.tiles_decoded = need.size();

  const auto codec = registry().make_for_magic(idx.codec_magic);
  std::vector<FieldF> recon(need.size());
  std::unordered_map<index_t, std::size_t> slot;
  slot.reserve(need.size());
  for (std::size_t i = 0; i < need.size(); ++i) slot.emplace(need[i], i);
  exec::ThreadPool pool(threads);
  pool.parallel_for(static_cast<index_t>(need.size()), [&](index_t i) {
    const auto t = static_cast<std::size_t>(need[static_cast<std::size_t>(i)]);
    recon[static_cast<std::size_t>(i)] =
        reconstruct_brick(idx, t, decode_brick(idx, *codec, stream, t));
  });

  detail::assemble_region(
      idx, region, [&](index_t t) -> const FieldF& { return recon[slot.at(t)]; },
      out.data);
  return out;
}

FieldF decompress(std::span<const std::byte> stream, int threads) {
  const StreamHeader h = peek_header(stream);
  return adaptive::read_region(stream, tiled::full_box(h.dims), threads).data;
}

std::vector<std::size_t> level_histogram(const Index& idx) {
  std::vector<std::size_t> hist(static_cast<std::size_t>(idx.n_levels), 0);
  for (const BrickEntry& e : idx.bricks) ++hist[static_cast<std::size_t>(e.level)];
  return hist;
}

std::vector<std::uint64_t> level_bytes(const Index& idx) {
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(idx.n_levels), 0);
  for (const BrickEntry& e : idx.bricks)
    bytes[static_cast<std::size_t>(e.level)] += e.length;
  return bytes;
}

}  // namespace mrc::adaptive
