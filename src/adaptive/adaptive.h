#pragma once

// Adaptive multi-resolution container (MRCA): the field split into bricks on
// the same lattice as the tiled container, but every brick stored at its own
// resolution level, chosen per brick by an importance map — halo membership
// (analysis/halo_finder), gradient magnitude (grid/field_ops), explicit ROI
// boxes, or any caller-supplied score field. Scientifically important bricks
// stay at level 0 (full resolution, byte-identical to the tiled container);
// the rest are restricted 2^level-fold before compression, so storage cost
// scales with *information*, not volume (paper's regionally adaptive
// reduction, Wang et al. SC 2024).
//
// Stream layout (container header v5 under kAdaptiveMagic):
//   shared container header      finest-grid extents + absolute error bound
//   varint  brick                core brick edge (finest-grid samples)
//   varint  overlap              level-0 samples past each high face (1)
//   u32     inner codec magic    registry id every brick was encoded with
//   varint  n_levels             1 + max per-brick level in the stream
//   varint  ntx, nty, ntz        brick grid (must equal blocks_for(dims, brick))
//   varint  payload_bytes        total size of the brick payload section
//   per brick (x fastest):       varint level, varint offset, varint length,
//                                varint sx,sy,sz (stored extents at `level`),
//                                f32 vmin, f32 vmax, f32 approx_err
//   payload                      concatenated self-describing brick streams
//
// Per-brick storage. A brick at core origin o covers the fine region
// [o, o + min(brick + (overlap << level), dims - o)) — the overlap scales
// with the level so one *coarse* sample of decode redundancy always spans
// the seam. Level-0 bricks store that region directly (identical bytes to
// tiled::compress at the same settings). Coarser bricks store the region
// restricted `level` times: each step pads odd extents to even with one
// linearly extrapolated layer (merge/padding, the paper's padding
// improvement — a clipped-box average at an odd edge is exactly the
// boundary artifact it removes) and then box-averages 2x2x2 (restrict_half
// semantics), so stored extents are ceil_div(fine extents, 2^level).
//
// Seam-free reconstruction. The value of fine sample x is a pure function
// of the stream — never of the query box — so any two read_region calls
// agree on every shared sample:
//   * owner brick (the one whose core contains x) at level 0: the decoded
//     sample itself, bit-identical to the tiled container;
//   * owner at level > 0: the mean of R_b(x) over *every* brick b whose
//     stored fine region covers x — the owner plus any low-side neighbors
//     whose overlap reaches x — where R_b is the brick's decoded data
//     prolonged trilinearly back to its fine region (or the decoded data
//     itself for level-0 neighbors). Blending the prolongations across the
//     level boundary is what removes the seam: the coarse side is pulled
//     toward the neighbor's rendition of the shared samples.
//
// The per-brick index is fully validated on read — grid shape, per-brick
// level against n_levels and the brick edge, stored extents against the
// closed-form chain above, offset/length bounds, payload size — so corrupt
// or hostile streams fail with CodecError before any allocation is sized
// from an unvalidated claim.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "grid/field.h"
#include "merge/padding.h"
#include "tiled/tiled.h"

namespace mrc::adaptive {

/// Container-header stream id of an adaptive stream.
inline constexpr std::uint32_t kAdaptiveMagic = 0x4143'524d;  // "MRCA"

/// Hard cap on per-brick levels (n_levels <= kMaxLevels); deeper claims are
/// hostile by construction and the real bound is max_level(brick) anyway.
inline constexpr int kMaxLevels = 20;

/// Samples of overlap past each high face at level 0; a brick at level l
/// stores (kOverlap << l) fine samples of overlap = kOverlap coarse samples.
inline constexpr index_t kOverlap = tiled::kOverlap;

/// The coarsest level a brick edge supports: the scaled overlap must not
/// reach past the next brick, i.e. (kOverlap << level) <= brick.
[[nodiscard]] int max_level(index_t brick);

/// Per-brick level assignment over the brick grid of a field — the encoded
/// form of an importance map (level 0 = most important / full resolution).
struct LevelMap {
  Dim3 grid;                        ///< brick counts per axis
  std::vector<std::uint8_t> level;  ///< grid.size() entries, x fastest

  /// 1 + the maximum assigned level.
  [[nodiscard]] int n_levels() const;
};

/// Every brick at the same level (level 0 reproduces the tiled layout).
[[nodiscard]] LevelMap uniform_map(Dim3 dims, index_t brick, int level);

/// Bricks whose core contains any set mask cell stay at level 0, optionally
/// dilated by `dilate_bricks` bricks (26-connectivity) so the fine region
/// keeps a margin around the important cells; everything else drops to
/// `coarse_level`.
[[nodiscard]] LevelMap map_from_mask(Dim3 dims, index_t brick, const MaskField& important,
                                     int coarse_level, index_t dilate_bricks = 0);

/// Halo-driven importance: cells of the kept halos (analysis::halo_mask with
/// the same threshold / min_cells semantics) pin their bricks — plus a
/// one-brick margin — at level 0.
[[nodiscard]] LevelMap map_from_halos(const FieldF& density, index_t brick,
                                      float threshold, index_t min_cells,
                                      int coarse_level);

/// Gradient-driven importance: bricks ranked by max |∇f| over the core; the
/// top `keep_fraction` stay at level 0 (paper's top-x% ROI ranking rule).
[[nodiscard]] LevelMap map_from_gradient(const FieldF& f, index_t brick,
                                         double keep_fraction, int coarse_level);

/// Explicit ROI boxes (finest-grid coordinates): bricks whose core
/// intersects any box stay at level 0.
[[nodiscard]] LevelMap map_from_boxes(Dim3 dims, index_t brick,
                                      std::span<const tiled::Box> rois,
                                      int coarse_level);

/// Caller-supplied importance field (same extents as the data): bricks
/// ranked by max importance over the core, top `keep_fraction` kept fine.
[[nodiscard]] LevelMap map_from_field(const FieldF& importance, index_t brick,
                                      double keep_fraction, int coarse_level);

struct Config {
  std::string codec = "interp";  ///< any registry name, applied per brick
  CodecTuning tuning;            ///< per-brick codec tuning (threads forced to 1)
  index_t brick = tiled::kDefaultBrick;  ///< core brick edge, >= 1
  int threads = 1;               ///< pool lanes; 0 = hardware
  PadKind pad_kind = PadKind::linear;  ///< odd-extent pad extrapolation
};

/// One record of the brick index.
struct BrickEntry {
  int level = 0;             ///< resolution level this brick is stored at
  std::uint64_t offset = 0;  ///< within the payload section
  std::uint64_t length = 0;  ///< compressed brick stream bytes
  Coord3 origin;             ///< core origin in the finest grid (derived)
  Dim3 stored;               ///< stored extents at `level` (overlap incl.)
  float vmin = 0.0f;         ///< value range over the stored samples
  float vmax = 0.0f;
  float approx_err = 0.0f;   ///< max |recon - fine| over the core + codec eb
};

/// Parsed + validated index of an adaptive stream.
struct Index {
  Dim3 dims;          ///< finest-grid extents
  double eb = 0.0;
  index_t brick = 0;
  index_t overlap = 0;
  std::uint32_t codec_magic = 0;
  std::string codec;  ///< registry name, or hex magic if unregistered
  int n_levels = 1;   ///< 1 + max per-brick level
  Dim3 grid;          ///< brick counts per axis
  std::size_t payload_offset = 0;  ///< absolute offset of the payload section
  std::uint64_t payload_bytes = 0;
  std::vector<BrickEntry> bricks;  ///< grid.size() entries, x fastest

  /// Core origin of brick `t` on the finest grid.
  [[nodiscard]] Coord3 origin(std::size_t t) const;
  /// Core extents of brick `t` on the finest grid (clipped at the domain).
  [[nodiscard]] Dim3 core_extent(std::size_t t) const;
  /// Fine extents of brick `t`'s stored region (core + scaled overlap).
  [[nodiscard]] Dim3 fine_extent(std::size_t t) const;
};

/// Fine extents of the stored region of a brick with core origin `o` at
/// `level` — min(brick + (kOverlap << level), dims - o) per axis.
[[nodiscard]] Dim3 brick_fine_extent(const Dim3& dims, const Coord3& o, index_t brick,
                                     int level);

/// Stored (coarse) extents of the same region: ceil_div(fine, 2^level).
[[nodiscard]] Dim3 brick_stored_extent(const Dim3& dims, const Coord3& o, index_t brick,
                                       int level);

/// Splits `f` into bricks, restricts each to its assigned level and
/// compresses every brick independently on a thread pool of cfg.threads
/// lanes. Deterministic: the stream is byte-identical for any thread count,
/// and an all-level-0 map yields brick payloads byte-identical to
/// tiled::compress at the same settings.
[[nodiscard]] Bytes compress(const FieldF& f, double abs_eb, const LevelMap& levels,
                             const Config& cfg = {});

/// Parses and validates just the fixed-size preamble — dims, brick, overlap,
/// codec, n_levels, grid — in O(1), leaving `bricks` empty (api::info).
[[nodiscard]] Index read_geometry(std::span<const std::byte> stream);

/// Parses and validates header + full brick index without decoding any
/// brick. Throws CodecError on malformed streams.
[[nodiscard]] Index read_index(std::span<const std::byte> stream);

/// Decodes the single brick `t` and validates its extents against the index
/// record. `codec` must match idx.codec_magic.
[[nodiscard]] FieldF decode_brick(const Index& idx, const Compressor& codec,
                                  std::span<const std::byte> stream, std::size_t t);

/// Fine-resolution rendition of one decoded brick over its stored fine
/// region: the decoded samples themselves at level 0, the trilinear
/// prolongation otherwise. This is the unit the serve-layer cache holds for
/// adaptive streams.
[[nodiscard]] FieldF reconstruct_brick(const Index& idx, std::size_t t,
                                       const FieldF& decoded);

/// Brick ids a seam-free read of `region` must decode: the bricks whose core
/// intersects it, plus the low-side neighbors of every coarse one (their
/// scaled overlap contributes to the blend).
[[nodiscard]] std::vector<index_t> bricks_for_region(const Index& idx,
                                                     const tiled::Box& region);

/// Reads `region` (finest-grid coordinates) seam-free, decoding only the
/// bricks bricks_for_region names — bit-identical to the same window of a
/// full decompress() for any query box.
[[nodiscard]] tiled::RegionRead read_region(std::span<const std::byte> stream,
                                            const tiled::Box& region, int threads = 1);

/// Reconstructs the full finest grid (read_region over the whole domain).
[[nodiscard]] FieldF decompress(std::span<const std::byte> stream, int threads = 1);

/// Brick counts per level (size = idx.n_levels).
[[nodiscard]] std::vector<std::size_t> level_histogram(const Index& idx);

/// Compressed payload bytes per level (size = idx.n_levels).
[[nodiscard]] std::vector<std::uint64_t> level_bytes(const Index& idx);

namespace detail {

/// Assembles `region` from reconstructed bricks: `recon(t)` must return the
/// reconstruct_brick rendition of brick `t` for every id bricks_for_region
/// lists. Shared by read_region and the serve-layer Dataset so both produce
/// bit-identical output.
void assemble_region(const Index& idx, const tiled::Box& region,
                     const std::function<const FieldF&(index_t)>& recon, FieldF& out);

}  // namespace detail

}  // namespace mrc::adaptive
