#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/obj_writer.h"
#include "io/raw_io.h"
#include "io/vtk_writer.h"
#include "test_util.h"
#include "uncertainty/marching_cubes.h"

namespace mrc::io {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(RawIo, RoundTrip) {
  const FieldF f = test::smooth_field({6, 7, 8});
  const auto path = temp_path("mrc_test_raw.bin");
  write_raw(f, path);
  const FieldF g = read_raw(path);
  EXPECT_EQ(f, g);
  std::remove(path.c_str());
}

TEST(RawIo, BareF32RoundTrip) {
  const FieldF f = test::noise_field({5, 4, 3}, 2.0);
  const auto path = temp_path("mrc_test_bare.f32");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(f.data()),
              static_cast<std::streamsize>(f.size() * sizeof(float)));
  }
  const FieldF g = read_raw_f32(path, {5, 4, 3});
  EXPECT_EQ(f, g);
  std::remove(path.c_str());
}

TEST(RawIo, RejectsWrongMagic) {
  const auto path = temp_path("mrc_test_junk.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[64] = {1, 2, 3};
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW((void)read_raw(path), ContractError);
  std::remove(path.c_str());
}

TEST(RawIo, MissingFileThrows) {
  EXPECT_THROW((void)read_raw("/nonexistent/path/file.bin"), ContractError);
}

TEST(VtkWriter, ProducesWellFormedHeader) {
  const FieldF f = test::smooth_field({4, 5, 6});
  const auto path = temp_path("mrc_test.vtk");
  write_vtk(f, path, "density");
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("DIMENSIONS 4 5 6"), std::string::npos);
  EXPECT_NE(all.find("SCALARS density float 1"), std::string::npos);
  // Binary payload size: header + 4 bytes per value.
  EXPECT_GT(std::filesystem::file_size(path), 120u * 4u);
  std::remove(path.c_str());
}

TEST(VtkWriter, DoubleOverload) {
  FieldD p({3, 3, 3}, 0.5);
  const auto path = temp_path("mrc_test_prob.vtk");
  write_vtk(p, path);
  std::ifstream in(path, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("SCALARS probability double 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObjWriter, WritesValidMesh) {
  FieldF f({8, 8, 8});
  for (index_t z = 0; z < 8; ++z)
    for (index_t y = 0; y < 8; ++y)
      for (index_t x = 0; x < 8; ++x) f.at(x, y, z) = static_cast<float>(z) - 3.5f;
  const auto mesh = uq::marching_cubes(f, 0.0);
  ASSERT_GT(mesh.triangle_count(), 0u);
  const auto path = temp_path("mrc_test.obj");
  write_obj(mesh, path);
  std::ifstream in(path);
  std::string line;
  std::size_t nv = 0, nf = 0;
  while (std::getline(in, line)) {
    if (line.starts_with("v ")) ++nv;
    if (line.starts_with("f ")) ++nf;
  }
  EXPECT_EQ(nv, mesh.vertex_count());
  EXPECT_EQ(nf, mesh.triangle_count());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrc::io
