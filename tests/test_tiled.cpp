// tiled:: brick container — round trips across codecs and awkward extents,
// overlap geometry, random-access region reads (decode counters +
// bit-exactness against a full decompress), determinism across thread
// counts, and index-corruption robustness (every malformed stream must fail
// with a clean CodecError, no OOB access — the ASan ci pass enforces the
// latter).

#include <gtest/gtest.h>

#include <algorithm>

#include "api/mrc_api.h"
#include "test_util.h"
#include "tiled/tiled.h"

namespace mrc {
namespace {

using tiled::Box;

Bytes make_stream(const FieldF& f, const std::string& codec = "zfpx",
                  index_t brick = 16, int threads = 2, double eb = 0.05) {
  tiled::Config cfg;
  cfg.codec = codec;
  cfg.brick = brick;
  cfg.threads = threads;
  return tiled::compress(f, eb, cfg);
}

/// Re-serializes a (possibly mutated) index in front of the original
/// payload — the targeted fuzzing tool: corrupt exactly one index field and
/// nothing else.
Bytes rebuild(const tiled::Index& idx, std::span<const std::byte> payload) {
  Bytes out;
  ByteWriter w(out);
  detail::write_header(w, tiled::kTiledMagic, idx.dims, idx.eb);
  w.put_varint(static_cast<std::uint64_t>(idx.brick));
  w.put_varint(static_cast<std::uint64_t>(idx.overlap));
  w.put(idx.codec_magic);
  w.put_varint(static_cast<std::uint64_t>(idx.grid.nx));
  w.put_varint(static_cast<std::uint64_t>(idx.grid.ny));
  w.put_varint(static_cast<std::uint64_t>(idx.grid.nz));
  w.put_varint(idx.payload_bytes);
  for (const auto& e : idx.tiles) {
    w.put_varint(e.offset);
    w.put_varint(e.length);
    w.put_varint(static_cast<std::uint64_t>(e.origin.x));
    w.put_varint(static_cast<std::uint64_t>(e.origin.y));
    w.put_varint(static_cast<std::uint64_t>(e.origin.z));
    w.put_varint(static_cast<std::uint64_t>(e.stored.nx));
    w.put_varint(static_cast<std::uint64_t>(e.stored.ny));
    w.put_varint(static_cast<std::uint64_t>(e.stored.nz));
    w.put(e.vmin);
    w.put(e.vmax);
  }
  w.put_bytes(payload);
  return out;
}

/// Applies `mutate` to a freshly parsed index and returns the corrupted
/// stream.
template <typename M>
Bytes corrupt(std::span<const std::byte> stream, M mutate) {
  tiled::Index idx = tiled::read_index(stream);
  const auto payload = stream.subspan(idx.payload_offset);
  mutate(idx);
  return rebuild(idx, payload);
}

// ---------------------------------------------------------------------------
// Round trips + geometry.
// ---------------------------------------------------------------------------

TEST(Tiled, RoundTripAllCodecsAwkwardExtents) {
  for (const auto& codec : registry().names()) {
    for (const Dim3 d : {Dim3{33, 18, 9}, Dim3{16, 16, 16}, Dim3{70, 5, 3}}) {
      const FieldF f = test::smooth_field(d);
      const Bytes stream = make_stream(f, codec, 16);
      const FieldF back = tiled::decompress(stream, 2);
      ASSERT_EQ(back.dims(), d) << codec << " " << d;
      EXPECT_LE(test::max_abs_err(f, back), 0.05 * (1 + 1e-9)) << codec << " " << d;
    }
  }
}

TEST(Tiled, DegenerateAndSingleBrickFields) {
  // 2-D, 1-D, and brick >= extent all collapse to valid tilings.
  for (const Dim3 d : {Dim3{40, 30, 1}, Dim3{100, 1, 1}, Dim3{7, 7, 7}}) {
    const FieldF f = test::smooth_field(d);
    const Bytes stream = make_stream(f, "interp", 16, 1);
    EXPECT_EQ(tiled::read_index(stream).grid, blocks_for(d, 16));
    EXPECT_EQ(tiled::decompress(stream).dims(), d);
  }
}

TEST(Tiled, IndexRecordsOverlapGeometry) {
  // 40^3 at brick 16 -> grid 3^3. Interior bricks store 17 samples per axis
  // (+1 overlap), the last brick along each axis stores the 8 remaining.
  const FieldF f = test::smooth_field({40, 40, 40});
  const auto idx = tiled::read_index(make_stream(f, "zfpx", 16));
  ASSERT_EQ(idx.grid, (Dim3{3, 3, 3}));
  EXPECT_EQ(idx.brick, 16);
  EXPECT_EQ(idx.overlap, tiled::kOverlap);
  EXPECT_EQ(idx.tiles[0].stored, (Dim3{17, 17, 17}));
  EXPECT_EQ(idx.tiles[2].stored, (Dim3{8, 17, 17}));  // x-edge brick
  EXPECT_EQ(idx.tiles[0].origin, (Coord3{0, 0, 0}));
  EXPECT_EQ(idx.tiles[2].origin, (Coord3{32, 0, 0}));
  EXPECT_EQ(idx.core_extent(0), (Dim3{16, 16, 16}));
  EXPECT_EQ(idx.core_extent(2), (Dim3{8, 16, 16}));
  // min/max are per-brick value ranges of the original data.
  const auto [lo, hi] = f.min_max();
  for (const auto& e : idx.tiles) {
    EXPECT_GE(e.vmin, lo);
    EXPECT_LE(e.vmax, hi);
    EXPECT_LE(e.vmin, e.vmax);
  }
}

TEST(Tiled, StreamBytesIdenticalForAnyThreadCount) {
  const FieldF f = test::noise_field({48, 33, 21}, 10.0);
  const Bytes s1 = make_stream(f, "interp", 16, 1);
  const Bytes s2 = make_stream(f, "interp", 16, 2);
  const Bytes s7 = make_stream(f, "interp", 16, 7);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s7);
}

TEST(Tiled, RejectsBadConfigAndInputs) {
  const FieldF f = test::smooth_field({16, 16, 16});
  tiled::Config cfg;
  cfg.brick = 0;
  EXPECT_THROW((void)tiled::compress(f, 0.1, cfg), ContractError);
  cfg.brick = 16;
  cfg.codec = "no-such-codec";
  EXPECT_THROW((void)tiled::compress(f, 0.1, cfg), CodecError);
  EXPECT_THROW((void)tiled::compress(FieldF{}, 0.1, {}), ContractError);
  EXPECT_THROW((void)tiled::compress(f, 0.0, {}), ContractError);
}

// ---------------------------------------------------------------------------
// Random-access region reads.
// ---------------------------------------------------------------------------

TEST(Tiled, ReadRegionDecodesOnlyIntersectingBricks) {
  const FieldF f = test::smooth_field({64, 64, 64});
  const Bytes stream = make_stream(f, "zfpx", 16);  // 4^3 = 64 bricks

  // Strictly inside one brick.
  auto rr = tiled::read_region(stream, {{17, 18, 19}, {30, 31, 32}}, 2);
  EXPECT_EQ(rr.tiles_total, 64u);
  EXPECT_EQ(rr.tiles_decoded, 1u);

  // Crossing one brick boundary along x only.
  rr = tiled::read_region(stream, {{12, 0, 0}, {20, 16, 16}}, 2);
  EXPECT_EQ(rr.tiles_decoded, 2u);

  // A 2x2x2 brick corner.
  rr = tiled::read_region(stream, {{15, 15, 15}, {17, 17, 17}}, 2);
  EXPECT_EQ(rr.tiles_decoded, 8u);

  // The whole domain.
  rr = tiled::read_region(stream, tiled::full_box(f.dims()), 2);
  EXPECT_EQ(rr.tiles_decoded, 64u);
}

TEST(Tiled, ReadRegionMatchesFullDecompressBitForBit) {
  const FieldF f = test::noise_field({40, 36, 28}, 25.0);
  const Bytes stream = make_stream(f, "interp", 16);
  const FieldF full = tiled::decompress(stream, 2);

  for (const Box box : {Box{{0, 0, 0}, {40, 36, 28}}, Box{{3, 5, 7}, {21, 19, 17}},
                        Box{{15, 15, 15}, {17, 17, 17}}, Box{{39, 35, 27}, {40, 36, 28}},
                        Box{{0, 0, 13}, {40, 36, 14}}}) {
    const auto rr = tiled::read_region(stream, box, 2);
    ASSERT_EQ(rr.data.dims(), box.extent());
    for (index_t z = 0; z < rr.data.dims().nz; ++z)
      for (index_t y = 0; y < rr.data.dims().ny; ++y)
        for (index_t x = 0; x < rr.data.dims().nx; ++x)
          ASSERT_EQ(rr.data.at(x, y, z),
                    full.at(box.lo.x + x, box.lo.y + y, box.lo.z + z))
              << box.lo.x << "," << box.lo.y << "," << box.lo.z;
  }
}

TEST(Tiled, ReadRegionRejectsBadBoxes) {
  const FieldF f = test::smooth_field({32, 32, 32});
  const Bytes stream = make_stream(f);
  EXPECT_THROW((void)tiled::read_region(stream, {{0, 0, 0}, {0, 16, 16}}, 1),
               ContractError);  // empty
  EXPECT_THROW((void)tiled::read_region(stream, {{-1, 0, 0}, {8, 8, 8}}, 1),
               ContractError);  // negative origin
  EXPECT_THROW((void)tiled::read_region(stream, {{0, 0, 0}, {33, 8, 8}}, 1),
               ContractError);  // past the domain
  EXPECT_THROW((void)tiled::read_region(stream, {{8, 8, 8}, {4, 16, 16}}, 1),
               ContractError);  // inverted
}

// ---------------------------------------------------------------------------
// Corrupt / truncated streams: clean CodecError, never OOB.
// ---------------------------------------------------------------------------

TEST(TiledRobustness, TruncationAtEveryStageRejected) {
  const FieldF f = test::smooth_field({24, 24, 24});
  const Bytes stream = make_stream(f, "zfpx", 16, 1);
  const auto idx = tiled::read_index(stream);
  // Cut inside the header, inside the index, at the payload start, and one
  // byte short of the end.
  for (const std::size_t len :
       {std::size_t{5}, std::size_t{20}, idx.payload_offset / 2, idx.payload_offset,
        stream.size() - 1}) {
    const auto cut = std::span(stream).first(len);
    EXPECT_THROW((void)tiled::decompress(cut), CodecError) << len;
    EXPECT_THROW((void)api::decompress(cut), CodecError) << len;
  }
}

TEST(TiledRobustness, OutOfRangeOffsetsAndLengthsRejected) {
  const FieldF f = test::smooth_field({24, 24, 24});
  const Bytes stream = make_stream(f, "zfpx", 16, 1);

  EXPECT_THROW((void)tiled::read_index(corrupt(
                   stream, [](tiled::Index& i) { i.tiles[1].offset = i.payload_bytes; })),
               CodecError);
  EXPECT_THROW(
      (void)tiled::read_index(corrupt(
          stream, [](tiled::Index& i) { i.tiles[0].length = i.payload_bytes + 1; })),
      CodecError);
  EXPECT_THROW((void)tiled::read_index(
                   corrupt(stream, [](tiled::Index& i) { i.tiles[3].length = 0; })),
               CodecError);
  // Offset pointing at the wrong (but in-bounds) brick: the brick decodes to
  // extents that contradict the index record.
  EXPECT_THROW((void)tiled::decompress(corrupt(
                   stream,
                   [](tiled::Index& i) {
                     i.tiles[1].offset = i.tiles[0].offset;
                     i.tiles[1].length = i.tiles[0].length;
                   })),
               CodecError);
  // Claiming a longer payload section than the stream carries.
  EXPECT_THROW((void)tiled::read_index(
                   corrupt(stream, [](tiled::Index& i) { i.payload_bytes += 1000; })),
               CodecError);
}

TEST(TiledRobustness, OverlappingOrMisplacedExtentsRejected) {
  const FieldF f = test::smooth_field({24, 24, 24});
  const Bytes stream = make_stream(f, "zfpx", 16, 1);

  // Off-lattice origin (would overlap its neighbour's core).
  EXPECT_THROW((void)tiled::read_index(
                   corrupt(stream, [](tiled::Index& i) { i.tiles[1].origin.x -= 3; })),
               CodecError);
  // Stored extents inflated past the overlap rule.
  EXPECT_THROW((void)tiled::read_index(
                   corrupt(stream, [](tiled::Index& i) { i.tiles[0].stored.ny += 2; })),
               CodecError);
  // Stored extents shrunk below the core.
  EXPECT_THROW((void)tiled::read_index(
                   corrupt(stream, [](tiled::Index& i) { i.tiles[7].stored.nz -= 4; })),
               CodecError);
}

TEST(TiledRobustness, TileCountMismatchRejected) {
  const FieldF f = test::smooth_field({24, 24, 24});
  const Bytes stream = make_stream(f, "zfpx", 16, 1);

  // Grid that disagrees with dims/brick.
  EXPECT_THROW(
      (void)tiled::read_index(corrupt(stream, [](tiled::Index& i) { i.grid.nz += 1; })),
      CodecError);
  // Fewer index records than the grid demands (reader runs into payload
  // bytes that cannot validate).
  EXPECT_THROW(
      (void)tiled::read_index(corrupt(stream, [](tiled::Index& i) { i.tiles.pop_back(); })),
      CodecError);
  // Brick edge that disagrees with the recorded grid.
  EXPECT_THROW(
      (void)tiled::read_index(corrupt(stream, [](tiled::Index& i) { i.brick = 8; })),
      CodecError);
  // Absurd overlap.
  EXPECT_THROW(
      (void)tiled::read_index(corrupt(stream, [](tiled::Index& i) { i.overlap = 99; })),
      CodecError);
}

TEST(TiledRobustness, AstronomicalTileCountRejectedBeforeAllocation) {
  // A ~50-byte hostile stream claiming a self-consistent 2^39-tile grid must
  // fail on the records-vs-bytes check, not attempt a terabyte-scale
  // index allocation (std::bad_alloc / OOM kill).
  Bytes evil;
  ByteWriter w(evil);
  detail::write_header(w, tiled::kTiledMagic, {index_t{1} << 32, 1, 128}, 1.0);
  w.put_varint(1);  // brick
  w.put_varint(0);  // overlap
  w.put(registry().find("zfpx")->magic);
  w.put_varint(std::uint64_t{1} << 32);  // grid, consistent with dims/brick
  w.put_varint(1);
  w.put_varint(128);
  w.put_varint(0);  // payload_bytes
  EXPECT_THROW((void)tiled::read_index(evil), CodecError);
  EXPECT_THROW((void)api::decompress(evil), CodecError);
}

TEST(TiledRobustness, EveryIndexByteFlipFailsCleanlyOrDecodes) {
  // Exhaustive single-byte corruption of the header + index region: each
  // mutant must either decode to the right extents (flips in advisory
  // fields like min/max) or throw CodecError — anything else (crash, OOB,
  // wrong dims) is a bug. ASan in ci.sh turns latent OOB reads into hard
  // failures here.
  const FieldF f = test::smooth_field({20, 20, 20});
  const Bytes stream = make_stream(f, "zfpx", 8, 1);
  const std::size_t index_end = tiled::read_index(stream).payload_offset;
  for (std::size_t pos = 0; pos < index_end; ++pos) {
    Bytes bad = stream;
    bad[pos] ^= std::byte{0x2d};
    try {
      const FieldF out = tiled::decompress(bad, 1);
      EXPECT_EQ(out.dims(), f.dims()) << "byte " << pos;
    } catch (const CodecError&) {
      // clean rejection
    }
  }
}

}  // namespace
}  // namespace mrc
