#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "uncertainty/error_model.h"
#include "uncertainty/marching_cubes.h"
#include "uncertainty/probabilistic_mc.h"
#include "test_util.h"

namespace mrc::uq {
namespace {

TEST(ErrorModel, FitRecoversMoments) {
  Rng rng(12);
  std::vector<float> orig, dec;
  const double mu = 0.3, sigma = 0.8;
  for (int i = 0; i < 50000; ++i) {
    const float o = static_cast<float>(rng.uniform(0.0, 100.0));
    orig.push_back(o);
    dec.push_back(o - static_cast<float>(rng.normal(mu, sigma)));
  }
  const auto m = ErrorModel::fit(orig, dec);
  EXPECT_NEAR(m.mean, mu, 0.02);
  EXPECT_NEAR(m.sigma, sigma, 0.02);
}

TEST(ErrorModel, IsovalueConditioningSelectsLocalErrors) {
  // Error depends on value: tiny below 50, large above.
  std::vector<float> orig, dec;
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const float o = static_cast<float>(rng.uniform(0.0, 100.0));
    const double s = o < 50.0 ? 0.01 : 2.0;
    orig.push_back(o);
    dec.push_back(o + static_cast<float>(rng.normal(0.0, s)));
  }
  const auto low = ErrorModel::fit_near_isovalue(orig, dec, 25.0, 10.0);
  const auto high = ErrorModel::fit_near_isovalue(orig, dec, 75.0, 10.0);
  EXPECT_LT(low.sigma, 0.1);
  EXPECT_GT(high.sigma, 1.0);
}

TEST(ErrorModel, FallsBackWhenWindowEmpty) {
  std::vector<float> orig(100, 1.0f), dec(100, 1.5f);
  const auto m = ErrorModel::fit_near_isovalue(orig, dec, 1000.0, 0.5);
  EXPECT_EQ(m.n_samples, 100);  // global fallback
  EXPECT_NEAR(m.mean, -0.5, 1e-6);
}

TEST(ProbMc, DeterministicCellWellAwayFromIso) {
  FieldF f({4, 4, 4}, 10.0f);
  ErrorModel m{0.0, 0.01, 1000};
  const FieldD p = crossing_probability(f, 0.0, m);
  for (index_t i = 0; i < p.size(); ++i) EXPECT_LT(p[i], 1e-10);
}

TEST(ProbMc, CellStraddlingIsoHasProbabilityOne) {
  FieldF f({2, 2, 2});
  for (index_t i = 0; i < 8; ++i) f[i] = i < 4 ? -10.0f : 10.0f;
  ErrorModel m{0.0, 0.1, 1000};
  const FieldD p = crossing_probability(f, 0.0, m);
  EXPECT_GT(p.at(0, 0, 0), 0.999);
}

TEST(ProbMc, LargeSigmaPushesProbabilityTowardUniform) {
  FieldF f({2, 2, 2}, 5.0f);
  ErrorModel tight{0.0, 0.01, 1000};
  ErrorModel wide{0.0, 100.0, 1000};
  const double p_tight = crossing_probability(f, 0.0, tight).at(0, 0, 0);
  const double p_wide = crossing_probability(f, 0.0, wide).at(0, 0, 0);
  EXPECT_LT(p_tight, 1e-10);
  EXPECT_GT(p_wide, 0.3);
}

TEST(ProbMc, ClosedFormMatchesMonteCarlo) {
  const FieldF f = test::smooth_field({8, 8, 8}, 10.0);
  ErrorModel m{0.1, 2.0, 1000};
  const FieldD exact = crossing_probability(f, 0.0, m);
  const FieldD mc = crossing_probability_mc(f, 0.0, m, 4000, 5);
  double max_diff = 0.0;
  for (index_t i = 0; i < exact.size(); ++i)
    max_diff = std::max(max_diff, std::abs(exact[i] - mc[i]));
  EXPECT_LT(max_diff, 0.05);  // ~4σ of the MC estimator at n=4000
}

TEST(ProbMc, MeanShiftMatters) {
  // Corners at -1.5 and -0.5: without bias the cell sits fully below the
  // isovalue; a +1 error-model bias moves the upper corners across it.
  FieldF f({2, 2, 2});
  for (index_t i = 0; i < 8; ++i) f[i] = i < 4 ? -1.5f : -0.5f;
  ErrorModel no_bias{0.0, 0.1, 1000};
  ErrorModel bias{1.0, 0.1, 1000};
  EXPECT_LT(crossing_probability(f, 0.0, no_bias).at(0, 0, 0), 0.05);
  EXPECT_GT(crossing_probability(f, 0.0, bias).at(0, 0, 0), 0.9);
}

TEST(ProbMc, CompareIsosurfacesCountsMissedCells) {
  // Original has a thin feature; "decompression" flattens it out.
  FieldF orig({8, 8, 8}, 0.0f);
  for (index_t y = 0; y < 8; ++y)
    for (index_t x = 0; x < 8; ++x) orig.at(x, y, 4) = 10.0f;  // sheet above iso
  FieldF dec({8, 8, 8}, 0.0f);  // feature gone
  ErrorModel m{0.0, 6.0, 1000};
  const FieldD prob = crossing_probability(dec, 5.0, m);
  const auto stats = compare_isosurfaces(orig, dec, prob, 5.0, 0.2);
  EXPECT_GT(stats.cells_crossed_original, 0);
  EXPECT_EQ(stats.cells_crossed_decompressed, 0);
  EXPECT_EQ(stats.cells_missed, stats.cells_crossed_original);
  // With sigma comparable to the lost amplitude, the probability field must
  // flag (recover) the missing region.
  EXPECT_GT(stats.recovery_rate(), 0.9);
}

// ---------------------------------------------------------------------------
// Marching cubes.
// ---------------------------------------------------------------------------

FieldF sphere_field(Dim3 d, double r) {
  FieldF f(d);
  const double cx = (d.nx - 1) / 2.0, cy = (d.ny - 1) / 2.0, cz = (d.nz - 1) / 2.0;
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x)
        f.at(x, y, z) = static_cast<float>(
            std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy) + (z - cz) * (z - cz)) - r);
  return f;
}

double mesh_area(const TriMesh& m) {
  double area = 0.0;
  for (const auto& t : m.triangles) {
    const auto& a = m.vertices[t[0]];
    const auto& b = m.vertices[t[1]];
    const auto& c = m.vertices[t[2]];
    const double ux = b[0] - a[0], uy = b[1] - a[1], uz = b[2] - a[2];
    const double vx = c[0] - a[0], vy = c[1] - a[1], vz = c[2] - a[2];
    const double cxp = uy * vz - uz * vy;
    const double cyp = uz * vx - ux * vz;
    const double czp = ux * vy - uy * vx;
    area += 0.5 * std::sqrt(cxp * cxp + cyp * cyp + czp * czp);
  }
  return area;
}

TEST(MarchingCubes, EmptyWhenNoCrossing) {
  FieldF f({8, 8, 8}, 1.0f);
  const auto mesh = marching_cubes(f, 5.0);
  EXPECT_EQ(mesh.triangle_count(), 0u);
}

TEST(MarchingCubes, SphereAreaMatchesAnalytic) {
  const double r = 10.0;
  const auto mesh = marching_cubes(sphere_field({32, 32, 32}, r), 0.0);
  EXPECT_GT(mesh.triangle_count(), 500u);
  const double analytic = 4.0 * std::numbers::pi * r * r;
  EXPECT_NEAR(mesh_area(mesh), analytic, analytic * 0.05);
}

TEST(MarchingCubes, PlaneAreaMatchesCrossSection) {
  // f = z - 7.5 -> plane through a 16^3 grid: area = 15 x 15.
  FieldF f({16, 16, 16});
  for (index_t z = 0; z < 16; ++z)
    for (index_t y = 0; y < 16; ++y)
      for (index_t x = 0; x < 16; ++x) f.at(x, y, z) = static_cast<float>(z) - 7.5f;
  const auto mesh = marching_cubes(f, 0.0);
  EXPECT_NEAR(mesh_area(mesh), 225.0, 1.0);
}

TEST(MarchingCubes, VerticesLieOnIsosurface) {
  const auto f = sphere_field({24, 24, 24}, 8.0);
  const auto mesh = marching_cubes(f, 0.0);
  const double c = 11.5;
  for (const auto& v : mesh.vertices) {
    const double r = std::sqrt((v[0] - c) * (v[0] - c) + (v[1] - c) * (v[1] - c) +
                               (v[2] - c) * (v[2] - c));
    EXPECT_NEAR(r, 8.0, 0.35);  // linear interpolation accuracy on unit cells
  }
}

TEST(MarchingCubes, SharedVerticesAreDeduplicated) {
  const auto mesh = marching_cubes(sphere_field({16, 16, 16}, 5.0), 0.0);
  // A closed triangulated surface has E ≈ 1.5 T and V ≈ T/2 + 2 (Euler);
  // without dedup V would be 3T.
  EXPECT_LT(mesh.vertex_count(), mesh.triangle_count());
}

TEST(MarchingCubes, DegenerateGridsReturnEmpty) {
  FieldF f({1, 8, 8}, 0.0f);
  EXPECT_EQ(marching_cubes(f, 0.5).triangle_count(), 0u);
}

TEST(CrossingCells, MatchesMarchingCubesOccupancy) {
  const auto f = sphere_field({16, 16, 16}, 5.0);
  const auto cells = crossing_cells(f, 0.0);
  index_t n_crossed = 0;
  for (index_t i = 0; i < cells.size(); ++i) n_crossed += cells[i];
  EXPECT_GT(n_crossed, 0);
  // Each crossed cell emits at least one triangle.
  const auto mesh = marching_cubes(f, 0.0);
  EXPECT_GE(mesh.triangle_count(), static_cast<std::size_t>(n_crossed));
}

}  // namespace
}  // namespace mrc::uq
