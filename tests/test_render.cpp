#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "render/volume_renderer.h"
#include "test_util.h"
#include "uncertainty/probabilistic_mc.h"

namespace mrc::render {
namespace {

TEST(VolumeRender, ImageDimensionsMatchGrid) {
  const FieldF f = test::smooth_field({24, 16, 8});
  const auto img = volume_render(f, auto_transfer(f));
  EXPECT_EQ(img.width, 24);
  EXPECT_EQ(img.height, 16);
  EXPECT_EQ(img.pixels.size(), 24u * 16u);
}

TEST(VolumeRender, EmptyVolumeRendersBlack) {
  FieldF f({8, 8, 8}, 0.0f);
  TransferFunction tf{0.0, 1.0, 0.1};
  const auto img = volume_render(f, tf);
  for (const auto& p : img.pixels) {
    EXPECT_EQ(p[0], 0);
    EXPECT_EQ(p[1], 0);
    EXPECT_EQ(p[2], 0);
  }
}

TEST(VolumeRender, HotColumnShowsWarmColor) {
  FieldF f({8, 8, 8}, 0.0f);
  for (index_t z = 0; z < 8; ++z) f.at(4, 4, z) = 100.0f;
  TransferFunction tf{0.0, 100.0, 0.4};
  const auto img = volume_render(f, tf);
  // Hot column: red channel dominates; empty corner stays black.
  EXPECT_GT(img.at(4, 4)[0], img.at(4, 4)[2]);
  EXPECT_EQ(img.at(0, 0)[0], 0);
}

TEST(VolumeRender, IdenticalInputsGiveSsimOne) {
  const FieldF f = test::smooth_field({32, 32, 16});
  const auto img = volume_render(f, auto_transfer(f));
  EXPECT_NEAR(image_ssim(img, img), 1.0, 1e-12);
}

TEST(VolumeRender, DistortionLowersImageSsim) {
  const FieldF f = test::smooth_field({32, 32, 16}, 100.0);
  FieldF g = f;
  Rng rng(9);
  for (index_t i = 0; i < g.size(); ++i) g[i] += static_cast<float>(rng.normal(0, 25.0));
  const auto tf = auto_transfer(f);
  const auto ia = volume_render(f, tf);
  const auto ib = volume_render(g, tf);
  EXPECT_LT(image_ssim(ia, ib), 0.999);
}

TEST(VolumeRender, ProbabilityOverlayPaintsRed) {
  const FieldF f = test::smooth_field({16, 16, 8});
  const auto img = volume_render(f, auto_transfer(f));
  FieldD prob({15, 15, 7}, 0.0);
  prob.at(5, 5, 3) = 0.9;
  const auto over = overlay_probability(img, prob, 0.5);
  EXPECT_GT(over.at(5, 5)[0], 200);  // red
  EXPECT_EQ(over.at(0, 0), img.at(0, 0));  // untouched elsewhere
}

TEST(VolumeRender, PpmRoundTripHeader) {
  const FieldF f = test::smooth_field({10, 6, 4});
  const auto img = volume_render(f, auto_transfer(f));
  const auto path = (std::filesystem::temp_directory_path() / "mrc_test.ppm").string();
  write_ppm(img, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 10);
  EXPECT_EQ(h, 6);
  EXPECT_EQ(maxv, 255);
  EXPECT_EQ(std::filesystem::file_size(path) - static_cast<std::size_t>(in.tellg()) - 1,
            10u * 6u * 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrc::render
