// serve::Dataset — cached pyramid serving: bit-exact region reads through
// the brick cache, hit/miss/eviction counter consistency (including under
// N-thread contention on one Dataset), byte-budget eviction, async prefetch
// warming, adaptive choose_level budgets, and renderer integration. The
// cache + prefetch path is the repo's first heavily-shared mutable state;
// ci.sh reruns these tests under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/mrc_api.h"
#include "common/rng.h"
#include "pyramid/pyramid.h"
#include "render/volume_renderer.h"
#include "serve/dataset.h"
#include "test_util.h"

namespace mrc {
namespace {

using tiled::Box;

/// 40^3 zfpx pyramid, brick 8 -> levels 40^3 (125 bricks), 20^3 (27), 10^3
/// (8), 5^3 (1).
Bytes test_pyramid(double eb = 0.05) {
  const FieldF f = test::smooth_field({40, 40, 40});
  pyramid::Config cfg;
  cfg.codec = "zfpx";
  cfg.brick = 8;
  cfg.threads = 2;
  return pyramid::build(f, eb, cfg);
}

serve::Config no_prefetch(std::size_t cache_bytes = 256ull << 20, int threads = 2) {
  serve::Config c;
  c.cache_bytes = cache_bytes;
  c.threads = threads;
  c.prefetch = false;
  return c;
}

// ---------------------------------------------------------------------------
// Serving correctness.
// ---------------------------------------------------------------------------

TEST(Serve, OpensPyramidAndReportsGeometry) {
  const Bytes stream = test_pyramid();
  serve::Dataset ds(stream, no_prefetch());
  EXPECT_EQ(ds.levels(), 4);
  EXPECT_EQ(ds.dims(0), (Dim3{40, 40, 40}));
  EXPECT_EQ(ds.dims(2), (Dim3{10, 10, 10}));
  EXPECT_DOUBLE_EQ(ds.eb(), 0.05);
  EXPECT_GE(ds.level_error(3), ds.level_error(0));
  EXPECT_THROW((void)ds.dims(4), ContractError);
  EXPECT_THROW((void)ds.read_region(4, Box{{0, 0, 0}, {1, 1, 1}}), ContractError);
  EXPECT_THROW((void)ds.read_region(0, Box{{0, 0, 0}, {99, 1, 1}}), ContractError);
}

TEST(Serve, OpensTiledStreamsAsSingleLevelDatasets) {
  const FieldF f = test::smooth_field({16, 16, 16});
  const Bytes stream = api::compress_tiled(f);
  serve::Dataset ds(stream, no_prefetch());
  EXPECT_EQ(ds.kind(), serve::Dataset::Kind::tiled);
  EXPECT_EQ(ds.levels(), 1);
  EXPECT_EQ(ds.dims(0), (Dim3{16, 16, 16}));
  EXPECT_GT(ds.eb(), 0.0);
  EXPECT_DOUBLE_EQ(ds.level_error(0), ds.eb());  // no LOD: codec bound only
  const Box box{{3, 0, 5}, {16, 9, 12}};
  EXPECT_EQ(ds.read_region(0, box), tiled::read_region(stream, box).data);
  EXPECT_EQ(ds.read_region(0, box), tiled::read_region(stream, box).data);
  EXPECT_GT(ds.stats().hits, 0u);  // the second read came from cache
}

TEST(Serve, RejectsNonContainerStreams) {
  const FieldF f = test::smooth_field({16, 16, 16});
  EXPECT_THROW((void)serve::Dataset(api::compress(f), no_prefetch()), CodecError);
  EXPECT_THROW((void)serve::Dataset(Bytes(8, std::byte{0}), no_prefetch()), CodecError);
}

TEST(Serve, RegionsBitExactAgainstPyramidReads) {
  const Bytes stream = test_pyramid();
  serve::Dataset ds(stream, no_prefetch());
  for (int l = 0; l < ds.levels(); ++l) {
    const Dim3 ld = ds.dims(l);
    for (const Box box :
         {tiled::full_box(ld), Box{{1, 0, 2}, {ld.nx / 2 + 1, ld.ny, ld.nz / 2 + 1}},
          Box{{ld.nx - 1, ld.ny - 1, ld.nz - 1}, {ld.nx, ld.ny, ld.nz}}}) {
      const FieldF served = ds.read_region(l, box);
      const FieldF direct = pyramid::read_region(stream, l, box, 1).data;
      EXPECT_EQ(served, direct) << "level " << l;
      // Serve the same box again — now entirely from cache, still exact.
      EXPECT_EQ(ds.read_region(l, box), direct) << "level " << l;
    }
  }
}

TEST(Serve, CacheCountersTrackHitsAndMisses) {
  serve::Dataset ds(test_pyramid(), no_prefetch());
  // Level 2 is 10^3 with brick 8 -> a 2x2x2 tile grid, 8 bricks.
  const Box all = tiled::full_box(ds.dims(2));
  (void)ds.read_region(2, all);
  auto st = ds.stats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 8u);
  EXPECT_EQ(st.entries, 8u);
  EXPECT_GT(st.bytes, 0u);

  (void)ds.read_region(2, all);
  st = ds.stats();
  EXPECT_EQ(st.hits, 8u);
  EXPECT_EQ(st.misses, 8u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.5);

  // A one-brick window only touches that brick.
  (void)ds.read_region(2, Box{{0, 0, 0}, {8, 8, 8}});
  st = ds.stats();
  EXPECT_EQ(st.hits, 9u);
  EXPECT_EQ(st.misses, 8u);

  ds.drop_cache();
  st = ds.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.bytes, 0u);
  (void)ds.read_region(2, all);
  EXPECT_EQ(ds.stats().misses, 16u);
}

TEST(Serve, TinyBudgetEvictsButStaysExact) {
  const Bytes stream = test_pyramid();
  // ~1 KiB budget cannot hold even one 9^3 decoded brick per shard.
  serve::Dataset ds(stream, no_prefetch(/*cache_bytes=*/1024));
  const Box all = tiled::full_box(ds.dims(0));
  const FieldF direct = pyramid::read_region(stream, 0, all, 1).data;
  EXPECT_EQ(ds.read_region(0, all), direct);
  EXPECT_EQ(ds.read_region(0, all), direct);  // still exact with a cold cache
  const auto st = ds.stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_LE(st.bytes, 64u * 1024u);  // newest-per-shard floor, not unbounded
}

// ---------------------------------------------------------------------------
// Adaptive LOD selection.
// ---------------------------------------------------------------------------

TEST(Serve, ChooseLevelRespectsSampleBudget) {
  serve::Dataset ds(test_pyramid(), no_prefetch());
  const Box view{{0, 0, 0}, {40, 40, 40}};
  // Budgets from "whole finest grid" down to "one sample": the chosen level
  // never exceeds a feasible budget, and larger budgets never pick coarser.
  int prev = 0;
  for (const index_t budget : {index_t{64000}, index_t{8000}, index_t{1000},
                               index_t{125}, index_t{1}}) {
    const int l = ds.choose_level(view, budget);
    const index_t served = ds.box_at_level(view, l).extent().size();
    if (budget >= 125) {  // coarsest rendition of the full view is 5^3
      EXPECT_LE(served, budget) << budget;
    }
    EXPECT_GE(l, prev) << budget;  // monotone: tighter budget, coarser level
    prev = l;
  }
  EXPECT_EQ(ds.choose_level(view, 64000), 0);
  EXPECT_EQ(ds.choose_level(view, 8000), 1);
  EXPECT_EQ(ds.choose_level(view, 1), ds.levels() - 1);  // infeasible: coarsest
  // A small window fits the finest level under a small budget.
  EXPECT_EQ(ds.choose_level(Box{{0, 0, 0}, {4, 4, 4}}, 64), 0);
  EXPECT_THROW((void)ds.choose_level(view, 0), ContractError);
}

TEST(Serve, ChooseLevelRespectsErrorBudget) {
  serve::Dataset ds(test_pyramid(/*eb=*/0.01), no_prefetch());
  // Tighter than the finest level's error -> finest; looser than the
  // coarsest's -> coarsest; anything between picks the cheapest level whose
  // recorded LOD error fits.
  EXPECT_EQ(ds.choose_level(1e-9), 0);
  EXPECT_EQ(ds.choose_level(1e9), ds.levels() - 1);
  for (int l = 0; l < ds.levels(); ++l) {
    const int chosen = ds.choose_level(ds.level_error(l) * (1 + 1e-6));
    EXPECT_GE(chosen, l);  // at least as cheap as l
    EXPECT_LE(ds.level_error(chosen), ds.level_error(l) * (1 + 1e-5));
  }
  EXPECT_THROW((void)ds.choose_level(0.0), ContractError);
}

// ---------------------------------------------------------------------------
// Prefetch.
// ---------------------------------------------------------------------------

TEST(Serve, PrefetchWarmsTheNeighborRing) {
  serve::Config cfg;
  cfg.threads = 4;
  cfg.prefetch = true;
  serve::Dataset ds(test_pyramid(), cfg);
  // Level 0 is a 5x5x5 tile grid. Reading the center brick's box prefetches
  // the 26 surrounding bricks.
  (void)ds.read_region(0, Box{{16, 16, 16}, {24, 24, 24}});
  ds.wait_idle();
  auto st = ds.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.prefetched, 26u);
  EXPECT_EQ(st.entries, 27u);
  // The whole 3x3x3 neighborhood now serves from cache: zero new misses.
  (void)ds.read_region(0, Box{{8, 8, 8}, {32, 32, 32}});
  st = ds.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 27u);
}

// ---------------------------------------------------------------------------
// Contention: N threads hammering one Dataset.
// ---------------------------------------------------------------------------

TEST(Serve, ConcurrentReadersStayExactAndCountersConsistent) {
  const Bytes stream = test_pyramid();
  serve::Dataset ds(stream, no_prefetch(/*cache_bytes=*/1u << 20, /*threads=*/2));
  const FieldF full = pyramid::decompress_level(stream, 0, 2);
  const Dim3 ld = full.dims();

  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 25;
  std::atomic<std::uint64_t> expected_lookups{0};
  std::atomic<int> mismatches{0};

  // Hammer stats() from a sampler thread while the readers run: every
  // snapshot — taken mid-decode, mid-eviction, whenever — must satisfy the
  // documented invariant hits + misses == lookups exactly (counters only
  // move under the cache's shard locks; see serve/brick_cache.h).
  std::atomic<bool> sampling{true};
  std::atomic<int> inconsistent_snapshots{0};
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      const auto snap = ds.stats();
      if (snap.hits + snap.misses != snap.lookups) inconsistent_snapshots.fetch_add(1);
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1234u + static_cast<std::uint64_t>(w));
      for (int r = 0; r < kReadsPerThread; ++r) {
        const index_t x0 = static_cast<index_t>(rng.uniform() * 32);
        const index_t y0 = static_cast<index_t>(rng.uniform() * 32);
        const index_t z0 = static_cast<index_t>(rng.uniform() * 32);
        const Box box{{x0, y0, z0}, {x0 + 8, y0 + 8, z0 + 8}};
        // Bricks the read must look up (brick edge 8 on a 40^3 level).
        const index_t bricks = (ceil_div(box.hi.x, 8) - x0 / 8) *
                               (ceil_div(box.hi.y, 8) - y0 / 8) *
                               (ceil_div(box.hi.z, 8) - z0 / 8);
        expected_lookups.fetch_add(static_cast<std::uint64_t>(bricks));
        const FieldF got = ds.read_region(0, box);
        for (index_t z = 0; z < 8; ++z)
          for (index_t y = 0; y < 8; ++y)
            for (index_t x = 0; x < 8; ++x)
              if (got.at(x, y, z) != full.at(x0 + x, y0 + y, z0 + z)) {
                mismatches.fetch_add(1);
                return;
              }
      }
    });
  }
  for (auto& t : workers) t.join();
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(inconsistent_snapshots.load(), 0);
  const auto st = ds.stats();
  EXPECT_EQ(st.lookups, expected_lookups.load());
  EXPECT_EQ(st.hits + st.misses, expected_lookups.load());
  EXPECT_GT(st.hits, 0u);
  (void)ld;
}

// ---------------------------------------------------------------------------
// Renderer integration.
// ---------------------------------------------------------------------------

TEST(Serve, RendererDrawsIdenticalPixelsFromTheDataset) {
  const Bytes stream = test_pyramid();
  serve::Dataset ds(stream, no_prefetch());
  for (const int level : {0, 2}) {
    const FieldF direct = pyramid::decompress_level(stream, level, 1);
    const auto tf = render::auto_transfer(direct);
    const render::Image a = render::volume_render(direct, tf);
    const render::Image b = render::volume_render(ds, level, tf);
    ASSERT_EQ(a.width, b.width);
    ASSERT_EQ(a.height, b.height);
    EXPECT_EQ(a.pixels, b.pixels) << "level " << level;
  }
}

}  // namespace
}  // namespace mrc
