#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/workflow.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"
#include "simdata/generators.h"
#include "simdata/mini_nyx.h"
#include "test_util.h"

namespace mrc::workflow {
namespace {

TEST(Workflow, UniformToAdaptiveEndToEnd) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 17);
  Config cfg;
  cfg.roi_block = 16;
  cfg.roi_fraction = 0.3;
  const double eb = f.value_range() * 1e-3;
  const auto comp = compress_uniform(f, eb, cfg);
  EXPECT_GT(comp.ratio, 1.0);
  ASSERT_EQ(comp.adaptive.levels.size(), 2u);

  const auto mr = sz3mr::decompress_multires(comp.streams);
  // Compose and compare against the adaptive representation (the storage
  // target): valid fine cells must obey the bound.
  const auto& fine_in = comp.adaptive.levels[0];
  const auto& fine_out = mr.levels[0];
  for (index_t i = 0; i < fine_in.data.size(); ++i)
    if (fine_in.mask[i]) {
      EXPECT_LE(std::abs(static_cast<double>(fine_in.data[i]) - fine_out.data[i]),
                eb * (1 + 1e-12));
    }
}

TEST(Workflow, ReconstructionQualityReasonable) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 23);
  Config cfg;
  cfg.roi_fraction = 0.5;
  const double eb = f.value_range() * 1e-4;
  const auto comp = compress_uniform(f, eb, cfg);
  const auto mr = sz3mr::decompress_multires(comp.streams);
  MultiResField full = mr;
  full.fine_dims = f.dims();
  const FieldF recon = full.reconstruct_uniform();
  // Multi-resolution + compression: SSIM should stay high (cf. Fig. 4's
  // 0.99995 for ROI-only at 15%).
  EXPECT_GT(metrics::ssim(f, recon), 0.9);
}

TEST(Workflow, SnapshotWriteReadRoundTrip) {
  sim::MiniNyx::Params p;
  p.dims = {32, 32, 32};
  p.block_size = 8;
  sim::MiniNyx nyx(p);
  const auto mr = nyx.hierarchy();
  const auto path =
      (std::filesystem::temp_directory_path() / "mrc_test_snapshot.mrc").string();

  const double eb = nyx.density().value_range() * 1e-3;
  const auto timing = write_snapshot(mr, eb, sz3mr::ours_pad_eb(), path);
  EXPECT_GT(timing.bytes_written, 0u);
  EXPECT_GE(timing.preprocess_s, 0.0);
  EXPECT_GE(timing.compress_write_s, 0.0);

  const auto back = read_snapshot(path);
  ASSERT_EQ(back.levels.size(), mr.levels.size());
  for (std::size_t l = 0; l < mr.levels.size(); ++l) {
    const auto& a = mr.levels[l];
    const auto& b = back.levels[l];
    ASSERT_EQ(a.data.dims(), b.data.dims());
    for (index_t i = 0; i < a.data.size(); ++i)
      if (a.mask[i]) {
        EXPECT_LE(std::abs(static_cast<double>(a.data[i]) - b.data[i]), eb * (1 + 1e-12));
      }
  }
  std::remove(path.c_str());
}

TEST(Workflow, InSituLoopMultipleSteps) {
  sim::MiniNyx::Params p;
  p.dims = {32, 32, 32};
  p.block_size = 8;
  sim::MiniNyx nyx(p);
  const auto dir = std::filesystem::temp_directory_path();
  for (int s = 0; s < 3; ++s) {
    const auto mr = nyx.hierarchy();
    const auto path = (dir / ("mrc_step_" + std::to_string(s) + ".mrc")).string();
    const double eb = nyx.density().value_range() * 1e-3;
    const auto t = write_snapshot(mr, eb, sz3mr::ours_pad_eb(), path);
    EXPECT_GT(t.bytes_written, 0u);
    std::remove(path.c_str());
    nyx.step();
  }
}

TEST(Workflow, HigherRoiFractionStoresMoreSamples) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 29);
  Config lo, hi;
  lo.roi_fraction = 0.15;
  hi.roi_fraction = 0.6;
  const auto a = roi::extract_adaptive(f, 16, lo.roi_fraction);
  const auto b = roi::extract_adaptive(f, 16, hi.roi_fraction);
  EXPECT_LT(a.stored_samples(), b.stored_samples());
}

}  // namespace
}  // namespace mrc::workflow
