// End-to-end integration sweep: every synthetic dataset through every codec
// (and the post-processing and workflow layers on top), verifying the
// invariants a downstream user relies on regardless of data/codec pairing:
//   * the absolute error bound holds,
//   * tuned post-processing never degrades sampled quality,
//   * tighter bounds give equal-or-better SSIM,
//   * the adaptive workflow round-trips its ROI regions within bound.

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "compressors/registry.h"
#include "core/workflow.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"
#include "postproc/bezier.h"
#include "postproc/sampler.h"
#include "simdata/generators.h"
#include "test_util.h"

namespace mrc {
namespace {

struct IntegrationCase {
  int dataset;  // 0 nyx, 1 warpx, 2 rt, 3 hurricane, 4 s3d
  int codec;    // 0 interp, 1 lorenzo, 2 zfpx
};

FieldF make_dataset(int id) {
  switch (id) {
    case 0: return sim::nyx_density({64, 64, 64}, 7);
    case 1: return sim::warpx_ez({32, 32, 256}, 11);
    case 2: return sim::rayleigh_taylor({64, 64, 64}, 13);
    case 3: return sim::hurricane_field({64, 64, 32}, 19);
    default: return sim::s3d_flame({64, 64, 64}, 29);
  }
}

const char* dataset_name(int id) {
  switch (id) {
    case 0: return "nyx";
    case 1: return "warpx";
    case 2: return "rt";
    case 3: return "hurricane";
    default: return "s3d";
  }
}

const char* codec_name(int id) {
  switch (id) {
    case 0: return "interp";
    case 1: return "lorenzo";
    default: return "zfpx";
  }
}

std::unique_ptr<Compressor> make_codec(int id) { return registry().make(codec_name(id)); }

class DatasetCodecSweep : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(DatasetCodecSweep, BoundHoldsAtThreeScales) {
  const auto [dataset, codec_id] = GetParam();
  const FieldF f = make_dataset(dataset);
  const auto codec = make_codec(codec_id);
  for (const double rel : {1e-2, 1e-4, 1e-6}) {
    const double eb = f.value_range() * rel;
    const auto rt = round_trip(*codec, f, eb);
    ASSERT_LE(test::max_abs_err(f, rt.reconstructed), eb * (1 + 1e-9)) << "rel " << rel;
  }
}

TEST_P(DatasetCodecSweep, TighterBoundNeverWorseSsim) {
  const auto [dataset, codec_id] = GetParam();
  const FieldF f = make_dataset(dataset);
  const auto codec = make_codec(codec_id);
  const double loose = metrics::ssim(
      f, round_trip(*codec, f, f.value_range() * 1e-2).reconstructed, {7, 4, 0.01, 0.03});
  const double tight = metrics::ssim(
      f, round_trip(*codec, f, f.value_range() * 1e-5).reconstructed, {7, 4, 0.01, 0.03});
  EXPECT_GE(tight, loose - 1e-6);
}

TEST_P(DatasetCodecSweep, TunedPostprocessNeverDegradesSamples) {
  const auto [dataset, codec_id] = GetParam();
  const FieldF f = make_dataset(dataset);
  const auto codec = make_codec(codec_id);
  const double eb = f.value_range() * 2e-3;
  const index_t block_edge = registry().find(codec_name(codec_id))->block_edge;
  const index_t block = block_edge > 0 ? block_edge : index_t{6};
  const auto candidates =
      codec_id == 2 ? postproc::zfp_candidates() : postproc::sz_candidates();
  const auto samples = postproc::draw_sample_blocks(f, 4 * block, 4, 17);
  const auto tuned = postproc::tune_intensity(samples, *codec, eb, block, candidates);
  EXPECT_LE(tuned.tuned_mse, tuned.base_mse * (1 + 1e-9))
      << dataset_name(dataset) << "+" << codec_name(codec_id);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, DatasetCodecSweep,
    ::testing::Values(IntegrationCase{0, 0}, IntegrationCase{0, 1}, IntegrationCase{0, 2},
                      IntegrationCase{1, 0}, IntegrationCase{1, 1}, IntegrationCase{1, 2},
                      IntegrationCase{2, 0}, IntegrationCase{2, 1}, IntegrationCase{2, 2},
                      IntegrationCase{3, 0}, IntegrationCase{3, 1}, IntegrationCase{3, 2},
                      IntegrationCase{4, 0}, IntegrationCase{4, 1}, IntegrationCase{4, 2}),
    [](const auto& info) {
      return std::string(dataset_name(info.param.dataset)) + "_" +
             codec_name(info.param.codec);
    });

// ---------------------------------------------------------------------------
// Workflow-level integration on every dataset.
// ---------------------------------------------------------------------------

class WorkflowSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkflowSweep, AdaptiveRoundTripWithinBoundOnRoi) {
  const FieldF f = make_dataset(GetParam());
  workflow::Config cfg;
  cfg.roi_fraction = 0.3;
  const double eb = f.value_range() * 1e-4;
  const auto comp = workflow::compress_uniform(f, eb, cfg);
  const auto dec = sz3mr::decompress_multires(comp.streams);
  const auto& fine_in = comp.adaptive.levels[0];
  for (index_t i = 0; i < fine_in.data.size(); ++i)
    if (fine_in.mask[i]) {
      ASSERT_LE(std::abs(static_cast<double>(fine_in.data[i]) - dec.levels[0].data[i]),
                eb * (1 + 1e-12));
    }
  EXPECT_GT(comp.ratio, 1.0);
}

TEST_P(WorkflowSweep, ReconstructionSsimHighAtTightBound) {
  const FieldF f = make_dataset(GetParam());
  workflow::Config cfg;
  cfg.roi_fraction = 0.5;
  const auto comp = workflow::compress_uniform(f, f.value_range() * 1e-5, cfg);
  auto dec = sz3mr::decompress_multires(comp.streams);
  dec.fine_dims = f.dims();
  // 0.8 floor: at these small test grids half the domain is stored 2x
  // coarser, so reconstruction SSIM is dominated by the downsampling, not
  // the compression (benches at full scale sit far above this).
  EXPECT_GT(metrics::ssim(f, dec.reconstruct_uniform(), {7, 4, 0.01, 0.03}), 0.8);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, WorkflowSweep, ::testing::Values(0, 1, 2, 3, 4),
                         [](const auto& info) {
                           return std::string(dataset_name(info.param));
                         });

}  // namespace
}  // namespace mrc
