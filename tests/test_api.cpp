// CodecRegistry + mrc::api facade: registration invariants, magic-peek
// dispatch across every registered codec, container-header robustness, and
// Options key=value parsing.

#include <gtest/gtest.h>

#include "api/mrc_api.h"
#include "test_util.h"

namespace mrc {
namespace {

// ---------------------------------------------------------------------------
// Registry invariants.
// ---------------------------------------------------------------------------

TEST(CodecRegistry, BuiltinsRegistered) {
  const auto names = registry().names();
  for (const char* expected : {"interp", "lorenzo", "zfpx"})
    EXPECT_TRUE(registry().contains(expected)) << expected;
  EXPECT_GE(names.size(), 3u);
}

TEST(CodecRegistry, UnknownNameThrowsListingKnownCodecs) {
  try {
    (void)registry().make("nope");
    FAIL() << "expected CodecError";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("interp"), std::string::npos);
  }
}

TEST(CodecRegistry, UnknownMagicThrows) {
  EXPECT_THROW((void)registry().make_for_magic(0xdeadbeef), CodecError);
}

TEST(CodecRegistry, DuplicateNameOrMagicRejected) {
  CodecRegistry local;
  auto factory = [](const CodecTuning& t) { return registry().make("interp", t); };
  local.add({"a", 1, "", 0, factory});
  EXPECT_THROW(local.add({"a", 2, "", 0, factory}), ContractError);  // dup name
  EXPECT_THROW(local.add({"b", 1, "", 0, factory}), ContractError);  // dup magic
  local.add({"b", 2, "", 0, factory});
  EXPECT_EQ(local.names().size(), 2u);
}

TEST(CodecRegistry, IncompleteEntryRejected) {
  CodecRegistry local;
  auto factory = [](const CodecTuning& t) { return registry().make("interp", t); };
  EXPECT_THROW(local.add({"", 1, "", 0, factory}), ContractError);
  EXPECT_THROW(local.add({"x", 0, "", 0, factory}), ContractError);
  EXPECT_THROW(local.add({"x", 1, "", 0, nullptr}), ContractError);
}

TEST(CodecRegistry, NameAndMagicLookupsAgree) {
  for (const auto& name : registry().names()) {
    const auto* e = registry().find(name);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(registry().find_magic(e->magic), e);
    EXPECT_EQ(registry().make(name)->name(), name);
  }
}

// ---------------------------------------------------------------------------
// Magic-peek dispatch: every registered codec's stream decodes through the
// facade without naming the codec, and info() identifies it from the header.
// ---------------------------------------------------------------------------

TEST(ApiFacade, RoundTripAllRegisteredCodecs) {
  const FieldF f = test::smooth_field({20, 17, 13});
  for (const auto& name : registry().names()) {
    api::Options opt;
    opt.codec = name;
    opt.eb = 1e-3;
    const Bytes stream = api::compress(f, opt);

    const auto meta = api::info(stream);
    EXPECT_EQ(meta.kind, api::StreamInfo::Kind::field) << name;
    EXPECT_EQ(meta.codec, name);
    EXPECT_EQ(meta.dims, f.dims());
    EXPECT_NEAR(meta.eb, opt.absolute_eb(f), 1e-12);

    const FieldF back = api::decompress(stream);
    ASSERT_EQ(back.dims(), f.dims()) << name;
    EXPECT_LE(test::max_abs_err(f, back), opt.absolute_eb(f) * (1 + 1e-9)) << name;
  }
}

TEST(ApiFacade, AbsoluteErrorBoundMode) {
  const FieldF f = test::smooth_field({16, 16, 16});
  api::Options opt;
  opt.eb = 0.25;
  opt.eb_mode = api::EbMode::absolute;
  const Bytes stream = api::compress(f, opt);
  EXPECT_NEAR(api::info(stream).eb, 0.25, 1e-12);
  EXPECT_LE(test::max_abs_err(f, api::decompress(stream)), 0.25 * (1 + 1e-9));
}

TEST(ApiFacade, AdaptiveSnapshotRoundTrip) {
  const FieldF f = test::smooth_field({32, 32, 32});
  api::Options opt;
  opt.roi_fraction = 0.4;
  const Bytes snapshot = api::compress_adaptive(f, opt);

  const auto meta = api::info(snapshot);
  EXPECT_EQ(meta.kind, api::StreamInfo::Kind::snapshot);
  EXPECT_EQ(meta.levels, 2u);
  EXPECT_EQ(meta.dims, f.dims());

  const auto mr = api::restore_adaptive(snapshot);
  EXPECT_EQ(mr.levels.size(), 2u);
  EXPECT_EQ(mr.fine_dims, f.dims());

  const FieldF back = api::restore(snapshot);
  EXPECT_EQ(back.dims(), f.dims());
  // ROI (fine-level) samples round-trip within the bound.
  const auto& fine = mr.levels[0];
  const double abs_eb = opt.absolute_eb(f);
  for (index_t i = 0; i < fine.data.size(); ++i)
    if (fine.mask[i]) {
      ASSERT_LE(std::abs(static_cast<double>(f[i]) - back[i]), abs_eb * (1 + 1e-9));
    }
}

TEST(ApiFacade, SnapshotDecodesThroughGenericDecompress) {
  const FieldF f = test::smooth_field({32, 32, 32});
  const Bytes snapshot = api::compress_adaptive(f);
  EXPECT_EQ(api::decompress(snapshot).dims(), f.dims());
}

TEST(ApiFacade, LevelStreamIdentifiedAndDecoded) {
  const FieldF f = test::smooth_field({32, 32, 32});
  const std::array<double, 2> fr{0.5, 0.5};
  const auto mr = amr::build_hierarchy(f, 16, fr);
  const Bytes stream = sz3mr::compress_level(mr.levels[0], 16, 0.5, sz3mr::ours_pad_eb());
  const auto meta = api::info(stream);
  EXPECT_EQ(meta.kind, api::StreamInfo::Kind::level);
  EXPECT_EQ(meta.codec, "sz3mr");
  EXPECT_EQ(api::decompress(stream).dims(), mr.levels[0].data.dims());
}

// ---------------------------------------------------------------------------
// Container-header robustness.
// ---------------------------------------------------------------------------

TEST(ContainerHeader, TruncatedHeaderRejected) {
  const FieldF f = test::smooth_field({8, 8, 8});
  const Bytes stream = api::compress(f);
  for (const std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    const auto cut = std::span(stream).first(len);
    EXPECT_THROW((void)peek_header(cut), CodecError) << len;
    EXPECT_THROW((void)api::decompress(cut), CodecError) << len;
  }
}

TEST(ContainerHeader, ForeignBytesRejected) {
  Bytes junk(64, std::byte{0x5a});
  EXPECT_THROW((void)api::info(junk), CodecError);
  EXPECT_THROW((void)api::decompress(junk), CodecError);
}

TEST(ContainerHeader, CorruptMagicVersionAndCodecIdRejected) {
  const FieldF f = test::smooth_field({8, 8, 8});
  Bytes stream = api::compress(f);

  Bytes bad_magic = stream;
  bad_magic[0] ^= std::byte{0xff};
  EXPECT_THROW((void)api::decompress(bad_magic), CodecError);

  Bytes bad_version = stream;  // version byte follows the u32 magic
  bad_version[4] = std::byte{0xee};
  EXPECT_THROW((void)api::decompress(bad_version), CodecError);

  Bytes bad_codec = stream;  // codec magic follows magic+version
  for (int i = 5; i < 9; ++i) bad_codec[static_cast<std::size_t>(i)] = std::byte{0x11};
  EXPECT_THROW((void)api::decompress(bad_codec), CodecError);
}

TEST(ContainerHeader, PeekReportsPayloadOffset) {
  const FieldF f = test::smooth_field({8, 8, 8});
  const Bytes stream = api::compress(f);
  const auto h = peek_header(stream);
  EXPECT_GT(h.header_bytes, 9u);  // magic + version + codec id at minimum
  EXPECT_LT(h.header_bytes, stream.size());
  EXPECT_EQ(h.version, detail::kContainerVersion);
}

// ---------------------------------------------------------------------------
// Options parsing.
// ---------------------------------------------------------------------------

TEST(ApiOptions, KeyValueParsingSetsEveryKnob) {
  const auto o = api::Options::parse(
      "codec=zfpx,eb=0.5,eb_mode=abs,merge=stack,pad=0,pad_kind=quadratic,"
      "min_pad_unit=7,adaptive_eb=0,alpha=3,beta=9,quant_radius=256,postprocess=1,"
      "roi_block=8,roi_fraction=0.75,block_size=4,use_regression=0,threads=3,tile=48,"
      "levels=3,cache_mb=64,prefetch=0");
  EXPECT_EQ(o.codec, "zfpx");
  EXPECT_EQ(o.eb, 0.5);
  EXPECT_EQ(o.eb_mode, api::EbMode::absolute);
  EXPECT_EQ(o.merge, MergeKind::stack);
  EXPECT_FALSE(o.pad);
  EXPECT_EQ(o.pad_kind, PadKind::quadratic);
  EXPECT_EQ(o.min_pad_unit, 7);
  EXPECT_EQ(o.adaptive_eb, false);
  EXPECT_EQ(o.alpha, 3.0);
  EXPECT_EQ(o.beta, 9.0);
  EXPECT_EQ(o.quant_radius, 256u);
  EXPECT_TRUE(o.postprocess);
  EXPECT_EQ(o.roi_block, 8);
  EXPECT_EQ(o.roi_fraction, 0.75);
  EXPECT_EQ(o.block_size, 4);
  EXPECT_FALSE(o.use_regression);
  EXPECT_EQ(o.threads, 3);
  EXPECT_EQ(o.tile, 48);
  EXPECT_EQ(o.levels, 3);
  EXPECT_EQ(o.cache_mb, 64.0);
  EXPECT_FALSE(o.prefetch);
  // The serving/pyramid sub-configs carry the knobs through.
  EXPECT_EQ(o.pyramid_config().levels, 3);
  EXPECT_EQ(o.pyramid_config().brick, 48);
  EXPECT_EQ(o.serve_config().cache_bytes, std::size_t{64} << 20);
  EXPECT_FALSE(o.serve_config().prefetch);
}

TEST(ApiOptions, UnknownKeyRejectedListingValidKeys) {
  // Unknown keys are rejected (never silently ignored) and the error names
  // the valid keys so CLI typos are self-explaining.
  try {
    (void)api::Options::parse("cache_bm=64");
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string msg = e.what();
    for (const char* key : {"codec", "eb", "tile", "levels", "cache_mb", "prefetch"})
      EXPECT_NE(msg.find(key), std::string::npos) << key;
  }
}

TEST(ApiOptions, StrRoundTrips) {
  api::Options a;
  a.codec = "lorenzo";
  a.eb = 3.5e-5;
  a.eb_mode = api::EbMode::absolute;
  a.merge = MergeKind::tac;
  a.pad_kind = PadKind::constant;
  a.roi_fraction = 0.3;
  a.threads = 4;
  a.levels = 5;
  a.cache_mb = 12.5;
  a.prefetch = false;
  const auto b = api::Options::parse(a.to_string());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.str(), a.to_string());  // str() is the short alias
}

TEST(ApiOptions, DefaultStrRoundTrips) {
  const api::Options a;
  EXPECT_EQ(api::Options::parse(a.str()).str(), a.str());
  EXPECT_EQ(api::Options::parse("").str(), a.str());  // empty spec = defaults
}

TEST(ApiOptions, BadInputRejected) {
  api::Options o;
  EXPECT_THROW(o.set("no_such_key", "1"), ContractError);
  EXPECT_THROW(o.set("eb", "zero point one"), ContractError);
  EXPECT_THROW(o.set("eb", "-1"), ContractError);
  EXPECT_THROW(o.set("eb_mode", "sometimes"), ContractError);
  EXPECT_THROW(o.set("merge", "diagonal"), ContractError);
  EXPECT_THROW(o.set("roi_fraction", "1.5"), ContractError);
  EXPECT_THROW(o.set("roi_fraction", "nan"), ContractError);
  EXPECT_THROW(o.set("alpha", "nan"), ContractError);
  EXPECT_THROW(o.set("threads", "-1"), ContractError);
  EXPECT_THROW(o.set("tile", "0"), ContractError);
  EXPECT_THROW(o.set("levels", "-1"), ContractError);
  EXPECT_THROW(o.set("levels", "99"), ContractError);
  EXPECT_THROW(o.set("cache_mb", "0"), ContractError);
  EXPECT_THROW(o.set("cache_mb", "-4"), ContractError);
  EXPECT_THROW(o.set("prefetch", "maybe"), ContractError);
  EXPECT_THROW((void)api::Options::parse("justakey"), ContractError);
}

TEST(ApiOptions, PipelineMatchesSz3mrPreset) {
  // The default Options equal the paper's full pipeline (ours_pad_eb).
  const auto cfg = api::Options{}.pipeline();
  const auto ref = sz3mr::ours_pad_eb();
  EXPECT_EQ(cfg.merge, ref.merge);
  EXPECT_EQ(cfg.pad, ref.pad);
  EXPECT_EQ(cfg.adaptive_eb, ref.adaptive_eb);
  EXPECT_EQ(cfg.alpha, ref.alpha);
  EXPECT_EQ(cfg.beta, ref.beta);
  EXPECT_EQ(cfg.quant_radius, ref.quant_radius);
  EXPECT_EQ(cfg.postprocess, ref.postprocess);
}

TEST(ApiOptions, AdaptiveEbDefaultsPerContext) {
  // Unset: plain-codec behavior for single-field compress (same bytes as a
  // default-constructed codec), full SZ3MR for the pipeline.
  const api::Options def;
  EXPECT_FALSE(def.tuning().adaptive_eb);
  EXPECT_TRUE(def.pipeline().adaptive_eb);
  const FieldF f = test::smooth_field({16, 16, 16});
  EXPECT_EQ(api::compress(f, def),
            registry().make("interp")->compress(f, def.absolute_eb(f)));
  // Explicitly set: forced in both contexts.
  const auto forced = api::Options::parse("adaptive_eb=1");
  EXPECT_TRUE(forced.tuning().adaptive_eb);
  EXPECT_TRUE(forced.pipeline().adaptive_eb);
}

TEST(ApiOptions, ThreadsZeroMeansHardware) {
  // threads=0 resolves to the hardware width before reaching codec chunk
  // configs (which require a concrete count >= 1).
  const auto o = api::Options::parse("threads=0");
  EXPECT_GE(o.tuning().threads, 1);
  const FieldF f = test::smooth_field({16, 16, 16});
  EXPECT_EQ(api::decompress(api::compress(f, o)).dims(), f.dims());
}

TEST(ApiFacade, TiledStreamRoundTripsAndReportsGeometry) {
  const FieldF f = test::smooth_field({40, 24, 17});
  const auto opt = api::Options::parse("codec=zfpx,tile=16,threads=2,eb=1e-3");
  const Bytes stream = api::compress_tiled(f, opt);

  const auto meta = api::info(stream);
  EXPECT_EQ(meta.kind, api::StreamInfo::Kind::tiled);
  EXPECT_EQ(meta.codec, "zfpx");
  EXPECT_EQ(meta.dims, f.dims());
  EXPECT_EQ(meta.brick, 16);
  EXPECT_EQ(meta.overlap, tiled::kOverlap);
  EXPECT_EQ(meta.tile_grid, (Dim3{3, 2, 2}));
  EXPECT_EQ(meta.tiles, 12u);

  // Tiled streams decode through the generic facade entry point.
  const FieldF back = api::decompress(stream);
  ASSERT_EQ(back.dims(), f.dims());
  EXPECT_LE(test::max_abs_err(f, back), opt.absolute_eb(f) * (1 + 1e-9));

  // And a region read matches the full decompress bit-for-bit.
  const tiled::Box box{{5, 3, 2}, {23, 20, 11}};
  const FieldF region = api::read_region(stream, box, 2);
  ASSERT_EQ(region.dims(), box.extent());
  for (index_t z = 0; z < region.dims().nz; ++z)
    for (index_t y = 0; y < region.dims().ny; ++y)
      for (index_t x = 0; x < region.dims().nx; ++x)
        ASSERT_EQ(region.at(x, y, z), back.at(box.lo.x + x, box.lo.y + y, box.lo.z + z));
}

TEST(ApiFacade, AdaptiveRejectsNonInterpCodec) {
  const FieldF f = test::smooth_field({32, 32, 32});
  EXPECT_THROW((void)api::compress_adaptive(f, api::Options::parse("codec=zfpx")),
               ContractError);
}

TEST(ContainerHeader, LongThinExtentsDecodeSymmetrically) {
  // A 2^21-long 1D series exceeds no cap; what compress writes, decompress
  // must accept (guards against a decode-side cap tighter than encode's).
  FieldF f({index_t{1} << 21, 1, 1});
  for (index_t i = 0; i < f.size(); ++i) f[i] = static_cast<float>(i % 97);
  const auto opt = api::Options::parse("codec=zfpx,eb_mode=abs,eb=0.5");
  EXPECT_EQ(api::decompress(api::compress(f, opt)).dims(), f.dims());
}

TEST(ContainerHeader, OverflowingExtentsRejected) {
  // nx = ny = 2^32 would wrap the nx*ny*nz product past int64; the per-axis
  // cap must reject it before the size check.
  Bytes evil;
  ByteWriter w(evil);
  w.put(detail::kContainerMagic);
  w.put(detail::kContainerVersion);
  w.put(registry().find("interp")->magic);
  w.put_varint(std::uint64_t{1} << 32);
  w.put_varint(std::uint64_t{1} << 32);
  w.put_varint(1);
  w.put(1e-3);
  EXPECT_THROW((void)peek_header(evil), CodecError);
}

TEST(ApiFacade, PyramidInfoCarriesTheFullLevelTable) {
  // mrcc info's satellite: value ranges and LOD error bounds per level must
  // be available from the O(levels) header peek, matching the level table.
  const FieldF f = test::smooth_field({40, 40, 40});
  const auto opt = api::Options::parse("tile=16,levels=3,eb_mode=abs,eb=0.01");
  const Bytes stream = api::build_pyramid(f, opt);
  const auto meta = api::info(stream);
  const auto idx = pyramid::read_geometry(stream);
  ASSERT_EQ(meta.level_meta.size(), idx.levels.size());
  for (std::size_t l = 0; l < idx.levels.size(); ++l) {
    EXPECT_EQ(meta.level_meta[l].dims, idx.levels[l].dims);
    EXPECT_EQ(meta.level_meta[l].bytes, idx.levels[l].length);
    EXPECT_EQ(meta.level_meta[l].vmin, idx.levels[l].vmin);
    EXPECT_EQ(meta.level_meta[l].vmax, idx.levels[l].vmax);
    EXPECT_EQ(meta.level_meta[l].approx_err, idx.levels[l].approx_err);
    EXPECT_GE(meta.level_meta[l].approx_err, 0.01f);
  }
  // Tiled/adaptive streams carry no level table.
  EXPECT_TRUE(api::info(api::compress_tiled(f, opt)).level_meta.empty());
}

TEST(ApiOptions, TuningReachesCodecFactory) {
  // A lorenzo built with block_size=4 must differ in stream layout from the
  // default 6^3 — proves Options knobs actually reach the factory.
  const FieldF f = test::noise_field({24, 24, 24}, 50.0);
  api::Options o4 = api::Options::parse("codec=lorenzo,block_size=4,eb_mode=abs,eb=0.1");
  api::Options o6 = api::Options::parse("codec=lorenzo,eb_mode=abs,eb=0.1");
  const auto s4 = api::compress(f, o4);
  const auto s6 = api::compress(f, o6);
  EXPECT_NE(s4.size(), s6.size());
  EXPECT_LE(test::max_abs_err(f, api::decompress(s4)), 0.1 * (1 + 1e-9));
}

}  // namespace
}  // namespace mrc
