#pragma once

// Shared helpers for the test suite: deterministic field constructors and
// error measurement.

#include <cmath>

#include "common/rng.h"
#include "grid/field.h"

namespace mrc::test {

/// Smooth trigonometric field — friendly to every predictor.
inline FieldF smooth_field(Dim3 d, double amp = 100.0) {
  FieldF f(d);
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x)
        f.at(x, y, z) = static_cast<float>(
            amp * (std::sin(0.11 * x) * std::cos(0.07 * y) + std::sin(0.05 * z)));
  return f;
}

/// White-noise field — worst case for prediction, exercises outliers.
inline FieldF noise_field(Dim3 d, double amp = 1.0, std::uint64_t seed = 99) {
  Rng rng(seed);
  FieldF f(d);
  for (index_t i = 0; i < d.size(); ++i)
    f[i] = static_cast<float>(amp * rng.normal());
  return f;
}

/// Piecewise-constant field with a sharp step — exercises outlier paths and
/// artifact-prone regions.
inline FieldF step_field(Dim3 d, double lo = 0.0, double hi = 1000.0) {
  FieldF f(d);
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x)
        f.at(x, y, z) = static_cast<float>(x < d.nx / 2 ? lo : hi);
  return f;
}

inline double max_abs_err(const FieldF& a, const FieldF& b) {
  double m = 0.0;
  for (index_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  return m;
}

}  // namespace mrc::test
