#include <gtest/gtest.h>

#include "common/rng.h"
#include "compressors/zfpx/zfpx_compressor.h"
#include "test_util.h"

namespace mrc {
namespace {

using test::max_abs_err;
using test::noise_field;
using test::smooth_field;
using test::step_field;

// ---------------------------------------------------------------------------
// The integer lifting transform is inverse up to low-order rounding: each
// ">> 1" in the forward pass discards one bit, exactly as in ZFP's standard
// (non-reversible-mode) transform. The residual must stay within a few ULPs
// of the fixed-point representation — far below any coded bitplane.
// ---------------------------------------------------------------------------

TEST(ZfpxLift, InverseUpToRoundingRandomVectors) {
  Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    std::int32_t v[4], orig[4];
    for (int i = 0; i < 4; ++i) {
      // Stay within the two-guard-bit headroom the codec provides.
      v[i] = static_cast<std::int32_t>(rng.uniform(-(1 << 29), (1 << 29)));
      orig[i] = v[i];
    }
    zfpx_detail::fwd_lift(v, 1);
    zfpx_detail::inv_lift(v, 1);
    for (int i = 0; i < 4; ++i) EXPECT_LE(std::abs(v[i] - orig[i]), 4);
  }
}

TEST(ZfpxLift, StridedAccessTouchesOnlyStridedElements) {
  std::int32_t data[16];
  for (int i = 0; i < 16; ++i) data[i] = i * 1000 - 7000;
  std::int32_t copy[16];
  std::copy(std::begin(data), std::end(data), std::begin(copy));
  zfpx_detail::fwd_lift(data, 4);  // operates on elements 0, 4, 8, 12
  zfpx_detail::inv_lift(data, 4);
  for (int i = 0; i < 16; ++i) EXPECT_LE(std::abs(data[i] - copy[i]), 4);
  // Elements not on the stride must be untouched.
  EXPECT_EQ(data[1], copy[1]);
  EXPECT_EQ(data[2], copy[2]);
  EXPECT_EQ(data[3], copy[3]);
}

TEST(ZfpxPerm, IsAPermutationInSequencyOrder) {
  const auto& p = zfpx_detail::sequency_perm();
  std::array<bool, 64> seen{};
  int prev_sum = 0;
  for (int i = 0; i < 64; ++i) {
    const int idx = p[static_cast<std::size_t>(i)];
    EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
    seen[static_cast<std::size_t>(idx)] = true;
    const int sum = (idx & 3) + ((idx >> 2) & 3) + ((idx >> 4) & 3);
    EXPECT_GE(sum, prev_sum);  // non-decreasing total sequency
    prev_sum = sum;
  }
}

// ---------------------------------------------------------------------------
// Accuracy-mode error bound sweep.
// ---------------------------------------------------------------------------

struct ZfpxCase {
  Dim3 dims;
  double eb;
  int dataset;
};

class ZfpxErrorBound : public ::testing::TestWithParam<ZfpxCase> {};

TEST_P(ZfpxErrorBound, MaxErrorWithinBound) {
  const auto& p = GetParam();
  FieldF f;
  switch (p.dataset) {
    case 0: f = smooth_field(p.dims); break;
    case 1: f = noise_field(p.dims, 100.0); break;
    default: f = step_field(p.dims); break;
  }
  const ZfpxCompressor comp;
  const auto rt = round_trip(comp, f, p.eb);
  EXPECT_EQ(rt.reconstructed.dims(), p.dims);
  EXPECT_LE(max_abs_err(f, rt.reconstructed), p.eb);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZfpxErrorBound,
    ::testing::Values(ZfpxCase{{16, 16, 16}, 1.0, 0}, ZfpxCase{{16, 16, 16}, 1e-3, 0},
                      ZfpxCase{{17, 18, 19}, 0.5, 0},  // partial blocks all axes
                      ZfpxCase{{4, 4, 4}, 0.1, 0}, ZfpxCase{{3, 3, 3}, 0.1, 0},
                      ZfpxCase{{16, 16, 16}, 0.5, 1}, ZfpxCase{{20, 20, 20}, 5.0, 2},
                      ZfpxCase{{64, 4, 4}, 0.01, 0}, ZfpxCase{{1, 16, 16}, 0.5, 0}));

TEST(Zfpx, UnderestimationCharacteristic) {
  // The paper leans on ZFP's real max error being well below the bound
  // (motivating the smaller a_zfp candidates). Verify the observed/bound
  // ratio is comfortably below 1.
  const FieldF f = smooth_field({32, 32, 32});
  const double eb = 1.0;
  const auto rt = round_trip(ZfpxCompressor{}, f, eb);
  EXPECT_LT(max_abs_err(f, rt.reconstructed), 0.5 * eb);
}

TEST(Zfpx, AllZeroBlocksAlmostFree) {
  FieldF f({64, 64, 64}, 0.0f);
  const auto stream = ZfpxCompressor{}.compress(f, 0.01);
  // 4096 blocks x 1 bit + header.
  EXPECT_LT(stream.size(), 2000u);
  const auto recon = ZfpxCompressor{}.decompress(stream);
  EXPECT_EQ(max_abs_err(f, recon), 0.0);
}

TEST(Zfpx, SparseFieldHighRatio) {
  FieldF f({32, 32, 32}, 0.0f);
  f.at(10, 10, 10) = 500.0f;  // single hot voxel
  const auto rt = round_trip(ZfpxCompressor{}, f, 0.05);
  EXPECT_LE(max_abs_err(f, rt.reconstructed), 0.05);
  EXPECT_GT(rt.ratio, 100.0);
}

TEST(Zfpx, ChunkedMatchesSerialByteForByte) {
  // ZFP blocks are independent: chunked encoding must produce identical
  // reconstructions (unlike SZ2, ratio is unaffected too).
  const FieldF f = smooth_field({32, 32, 48});
  ZfpxConfig serial, chunked;
  chunked.chunks = 4;
  const auto s1 = ZfpxCompressor{serial}.compress(f, 0.1);
  const auto s4 = ZfpxCompressor{chunked}.compress(f, 0.1);
  const auto r1 = ZfpxCompressor{serial}.decompress(s1);
  const auto r4 = ZfpxCompressor{chunked}.decompress(s4);
  EXPECT_EQ(r1.span().size(), r4.span().size());
  for (index_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r4[i]);
}

TEST(Zfpx, TighterBoundCostsMoreBits) {
  const FieldF f = smooth_field({32, 32, 32});
  const auto loose = ZfpxCompressor{}.compress(f, 1.0);
  const auto tight = ZfpxCompressor{}.compress(f, 1e-4);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(Zfpx, DecompressRejectsWrongMagic) {
  Bytes garbage(64, std::byte{0x33});
  EXPECT_THROW((void)ZfpxCompressor{}.decompress(garbage), CodecError);
}

TEST(Zfpx, BlockingArtifactsExceedInterpOnSmoothData) {
  // Motivates the paper's post-processing: at matched ratio, block-wise
  // coding leaves more boundary discontinuity. Cheap proxy: compare mean
  // absolute second difference across block boundaries vs inside blocks.
  const FieldF f = smooth_field({32, 32, 32}, 1000.0);
  const auto rt = round_trip(ZfpxCompressor{}, f, 8.0);
  const auto& r = rt.reconstructed;
  double boundary = 0, interior = 0;
  index_t nb = 0, ni = 0;
  for (index_t z = 0; z < 32; ++z)
    for (index_t y = 0; y < 32; ++y)
      for (index_t x = 1; x < 31; ++x) {
        const double second_diff = std::abs(
            static_cast<double>(r.at(x - 1, y, z)) - 2.0 * r.at(x, y, z) + r.at(x + 1, y, z));
        if (x % 4 == 0 || x % 4 == 3) {
          boundary += second_diff;
          ++nb;
        } else {
          interior += second_diff;
          ++ni;
        }
      }
  EXPECT_GT(boundary / static_cast<double>(nb), interior / static_cast<double>(ni));
}

}  // namespace
}  // namespace mrc
