// mrc::obs — the observability layer's own contracts: histogram quantile
// edge cases (empty, single sample, all-overflow, clamped q), registry
// get-or-create handle stability and snapshot consistency under 8-thread
// contention, trace-ring wraparound accounting, a traced tiled round trip
// containing spans from all three instrumented layers (codec stage,
// container brick, pool task), the wire `metrics` frame (round trip,
// ServerStats reconciliation, malformed frames earning error frames), and
// the disabled mode recording nothing. Tests share a process under the
// ci.sh TSan pass, so every test works in deltas, uses test-unique metric
// names, and leaves the runtime switch the way it found it (off).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "test_util.h"
#include "tiled/tiled.h"

namespace mrc {
namespace {

namespace wire = serve::wire;

/// Flips the runtime switch for one test and always restores "off".
struct ScopedEnable {
  ScopedEnable() { obs::set_enabled(true); }
  ~ScopedEnable() { obs::set_enabled(false); }
};

/// 24^3 interp tiled stream, brick 8 -> 27 bricks.
Bytes tiled_stream() {
  tiled::Config cfg;
  cfg.codec = "interp";
  cfg.brick = 8;
  cfg.threads = 2;
  const FieldF f = test::smooth_field({24, 24, 24});
  return tiled::compress(f, 1e-3 * f.value_range(), cfg);
}

serve::ServerConfig quiet() {
  serve::ServerConfig cfg;
  cfg.threads = 2;
  cfg.prefetch = false;  // deterministic cache counters
  return cfg;
}

// ---------------------------------------------------------------------------
// Histogram quantile edge cases.
// ---------------------------------------------------------------------------

TEST(ObsHistogram, EmptyAnswersZeroForEveryQuantile) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(h.quantile(q), 0u);
}

TEST(ObsHistogram, SingleSampleAnswersEveryQuantileWithItsBucket) {
  obs::Histogram h;
  h.record(7);  // bucket [4, 8) -> lower bound 4
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 7u);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) EXPECT_EQ(h.quantile(q), 4u);

  obs::Histogram zero;
  zero.record(0);  // sub-unit bucket, lower bound 0 — but counted
  EXPECT_EQ(zero.count(), 1u);
  EXPECT_EQ(zero.quantile(1.0), 0u);
}

TEST(ObsHistogram, AllOverflowSamplesAnswerTheOverflowBucket) {
  obs::Histogram h;
  for (int i = 0; i < 3; ++i) h.record(std::uint64_t{1} << 60);
  const std::uint64_t overflow_lb = std::uint64_t{1}
                                    << (obs::Histogram::kBuckets - 2);
  for (const double q : {0.0, 0.5, 1.0}) EXPECT_EQ(h.quantile(q), overflow_lb);
  EXPECT_EQ(h.count(), 3u);
}

TEST(ObsHistogram, QuantilesClampAndStayMonotone) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));  // q clamps into [0, 1]
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_EQ(h.quantile(0.0), 1u);    // first sample's bucket
  EXPECT_EQ(h.quantile(1.0), 512u);  // bucket holding 1000
  std::uint64_t prev = 0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), prev);
    prev = h.quantile(q);
  }
  EXPECT_LE(h.quantile_us(0.5), h.quantile_us(0.99));  // serve-layer spelling
}

// ---------------------------------------------------------------------------
// Registry: handle identity and concurrent snapshot consistency.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, HandlesAreGetOrCreateAndAddressStable) {
  auto& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("obs.test.identity");
  obs::Counter& b = reg.counter("obs.test.identity");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.counter("obs.test.identity2"));
  EXPECT_EQ(reg.counter_value("obs.test.never_created"), 0u);
  obs::Histogram& h = reg.histogram("obs.test.identity_hist");
  EXPECT_EQ(&h, &reg.histogram("obs.test.identity_hist"));
}

TEST(ObsRegistry, SnapshotsStayConsistentUnderEightThreadContention) {
  auto& reg = obs::Registry::global();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20000;
  const char* names[] = {"obs.test.contend_a", "obs.test.contend_b",
                         "obs.test.contend_c", "obs.test.contend_d"};
  std::uint64_t base[4];
  for (int i = 0; i < 4; ++i) base[i] = reg.counter_value(names[i]);

  std::atomic<bool> stop{false};
  std::atomic<int> snapshots{0};
  std::thread reader([&] {
    // Snapshots taken while writers hammer: each of our counters must read
    // between its base and base + the total adds, and never go backwards.
    std::uint64_t prev[4] = {base[0], base[1], base[2], base[3]};
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = reg.counters();
      for (const auto& [name, value] : snap)
        for (int i = 0; i < 4; ++i)
          if (name == names[i]) {
            EXPECT_GE(value, prev[i]);
            EXPECT_LE(value, base[i] + kThreads * kAddsPerThread);
            prev[i] = value;
          }
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      // Every thread resolves its own handles — get-or-create must be safe
      // to race — then splits its adds across the four counters.
      obs::Counter* c[4];
      for (int i = 0; i < 4; ++i) c[i] = &reg.counter(names[i]);
      for (std::uint64_t k = 0; k < kAddsPerThread; ++k)
        c[(t + static_cast<int>(k)) % 4]->add(1);
    });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(snapshots.load(), 0);
  std::uint64_t total = 0;
  for (int i = 0; i < 4; ++i) total += reg.counter_value(names[i]) - base[i];
  EXPECT_EQ(total, std::uint64_t{kThreads} * kAddsPerThread);
}

// ---------------------------------------------------------------------------
// Trace ring: wraparound accounting, disabled mode, span content.
// ---------------------------------------------------------------------------

TEST(ObsTrace, RingWrapsKeepingNewestAndCountsDrops) {
  obs::reset_trace();
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < obs::kTraceCapacity + extra; ++i)
    obs::detail::record_span("obs.test.wrap", i, 1);
  const obs::TraceStats ts = obs::trace_stats();
  EXPECT_EQ(ts.recorded, obs::kTraceCapacity);
  EXPECT_EQ(ts.dropped, extra);
  obs::reset_trace();
  EXPECT_EQ(obs::trace_stats().recorded, 0u);
  EXPECT_EQ(obs::trace_stats().dropped, 0u);
}

TEST(ObsTrace, DisabledModeRecordsNoSpans) {
  obs::set_enabled(false);
  obs::reset_trace();
  {
    OBS_SPAN("obs.test.gated");
    obs::ScopedTimer timer("obs.test.timer_off");
    EXPECT_GE(timer.seconds(), 0.0);
    EXPECT_GE(timer.restart(), 0.0);  // timing still works with obs off
  }
  EXPECT_EQ(obs::trace_stats().recorded, 0u);
  EXPECT_NE(obs::trace_json().find("\"traceEvents\""), std::string::npos);
}

TEST(ObsTrace, ScopedTimerSectionsEmitNamedSpans) {
  ScopedEnable on;
  obs::reset_trace();
  {
    obs::ScopedTimer timer("obs.test.section_a");
    EXPECT_GE(timer.restart("obs.test.section_b"), 0.0);
  }  // destructor closes section_b
  EXPECT_EQ(obs::trace_stats().recorded, 2u);
  const std::string json = obs::trace_json();
  EXPECT_NE(json.find("\"obs.test.section_a\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.section_b\""), std::string::npos);
}

TEST(ObsTrace, TracedTiledRoundTripSpansAllThreeLayers) {
  ScopedEnable on;
  obs::reset_trace();
  const Bytes stream = tiled_stream();
  const FieldF back = tiled::decompress(stream, 2);
  EXPECT_EQ(back.dims(), (Dim3{24, 24, 24}));

  EXPECT_GT(obs::trace_stats().recorded, 0u);
  const std::string json = obs::trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  // One span from each instrumented layer: codec stage, container brick,
  // exec-pool task — the acceptance bar for a useful trace.
  EXPECT_NE(json.find("\"interp.predict_quant\""), std::string::npos);
  EXPECT_NE(json.find("\"tiled.brick_compress\""), std::string::npos);
  EXPECT_NE(json.find("\"tiled.brick_decode\""), std::string::npos);
  EXPECT_NE(json.find("\"exec."), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire metrics frame: round trip, reconciliation, hostile input.
// ---------------------------------------------------------------------------

TEST(ObsWire, MetricsFrameRoundTripsAndReconcilesWithServerStats) {
  auto& reg = obs::Registry::global();
  const std::uint64_t base_lookups = reg.counter_value("mrc.cache.lookups");
  const std::uint64_t base_hits = reg.counter_value("mrc.cache.hits");
  const std::uint64_t base_requests = reg.counter_value("mrc.serve.requests");

  serve::Server srv(quiet());
  wire::Client client(
      [&srv](std::span<const std::byte> frame) { return srv.handle_frame(frame); });
  const wire::OpenInfo info = client.open(tiled_stream(), "obs_ds");
  const tiled::Box box{{0, 0, 0}, {8, 8, 8}};
  (void)client.region(info.id, 0, box);
  (void)client.region(info.id, 0, box);  // warm reread -> one hit
  srv.wait_idle();

  // The registry mirrors tick at the same sites as the per-server counters,
  // so deltas across this (only active) server equal its absolute stats.
  const serve::ServerStats st = client.stats();
  EXPECT_EQ(reg.counter_value("mrc.cache.lookups") - base_lookups,
            st.cache.lookups);
  EXPECT_EQ(reg.counter_value("mrc.cache.hits") - base_hits, st.cache.hits);
  EXPECT_EQ(reg.counter_value("mrc.serve.requests") - base_requests, st.requests);
  EXPECT_GT(st.cache.hits, 0u);

  // The exposition fetched over the wire carries the same counters.
  const std::string text = client.metrics();
  EXPECT_NE(text.find("# TYPE mrc_cache_lookups counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mrc_serve_requests counter"), std::string::npos);
  EXPECT_NE(text.find("mrc_cache_hits "), std::string::npos);
}

TEST(ObsWire, MalformedMetricsFramesEarnErrorFrames) {
  serve::Server srv(quiet());

  // A well-formed metrics request has an empty body.
  const Bytes good = wire::make_frame(wire::Type::metrics);
  const Bytes good_reply = srv.handle_frame(good);
  EXPECT_EQ(wire::parse_frame(good_reply).type, wire::Type::metrics_ok);

  // Trailing bytes must die in the exhaustion check — error frame, never a
  // metrics_ok and never a crash.
  Bytes body;
  ByteWriter w(body);
  w.put<std::uint8_t>(0x5a);
  const Bytes junk = wire::make_frame(wire::Type::metrics, body);
  const Bytes junk_reply = srv.handle_frame(junk);
  EXPECT_EQ(wire::parse_frame(junk_reply).type, wire::Type::error);

  // Truncations of the good frame all earn error frames too.
  for (std::size_t n = 0; n < good.size(); ++n) {
    const Bytes reply = srv.handle_frame(std::span<const std::byte>(good).first(n));
    EXPECT_EQ(wire::parse_frame(reply).type, wire::Type::error) << n;
  }
}

}  // namespace
}  // namespace mrc
