// Adaptive multi-resolution container (MRCA): importance-map builders,
// round trips (level-0 bit-exactness against the tiled container, coarse
// reconstruction against the public restriction/prolongation primitives),
// seam consistency across arbitrary query boxes, error-bound tracking,
// index validation + exhaustive single-byte-flip corruption, the cached
// serving path, the renderer overload, and the api facade wiring.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <thread>

#include "adaptive/adaptive.h"
#include "api/mrc_api.h"
#include "grid/field_ops.h"
#include "io/raw_io.h"
#include "merge/padding.h"
#include "render/volume_renderer.h"
#include "serve/dataset.h"
#include "test_util.h"

namespace mrc::adaptive {
namespace {

/// Smooth background + one sharp blob: the blob's bricks rank as important
/// under every importance source.
FieldF blob_field(Dim3 d, double amp = 300.0) {
  FieldF f = test::smooth_field(d, 10.0);
  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y)
      for (index_t x = 0; x < d.nx; ++x) {
        const double r2 = (x - d.nx / 3.0) * (x - d.nx / 3.0) +
                          (y - d.ny / 2.0) * (y - d.ny / 2.0) +
                          (z - d.nz / 3.0) * (z - d.nz / 3.0);
        f.at(x, y, z) += static_cast<float>(amp * std::exp(-r2 / 18.0));
      }
  return f;
}

/// Deterministic mixed assignment: levels 0, 1, 2 cycling over the bricks.
LevelMap mixed_map(Dim3 dims, index_t brick) {
  LevelMap map = uniform_map(dims, brick, 0);
  for (index_t tz = 0; tz < map.grid.nz; ++tz)
    for (index_t ty = 0; ty < map.grid.ny; ++ty)
      for (index_t tx = 0; tx < map.grid.nx; ++tx)
        map.level[static_cast<std::size_t>(tx + map.grid.nx * (ty + map.grid.ny * tz))] =
            static_cast<std::uint8_t>((tx + ty + tz) % 3);
  return map;
}

Config small_cfg(index_t brick = 16) {
  Config cfg;
  cfg.brick = brick;
  cfg.threads = 1;
  return cfg;
}

}  // namespace

TEST(AdaptiveMap, MaxLevelTracksBrickEdge) {
  EXPECT_EQ(max_level(1), 0);
  EXPECT_EQ(max_level(2), 1);
  EXPECT_EQ(max_level(16), 4);
  EXPECT_EQ(max_level(64), 6);
}

TEST(AdaptiveMap, UniformMapAndLevelCount) {
  const LevelMap m = uniform_map({33, 17, 9}, 16, 2);
  EXPECT_EQ(m.grid, (Dim3{3, 2, 1}));
  EXPECT_EQ(m.level.size(), 6u);
  EXPECT_EQ(m.n_levels(), 3);
  for (const auto l : m.level) EXPECT_EQ(l, 2);
  EXPECT_THROW((void)uniform_map({32, 32, 32}, 16, max_level(16) + 1), ContractError);
}

TEST(AdaptiveMap, BoxesPinIntersectingBricks) {
  const tiled::Box roi{{14, 0, 0}, {20, 8, 8}};  // straddles bricks 0 and 1 in x
  const LevelMap m = map_from_boxes({48, 16, 16}, 16, {&roi, 1}, 2);
  EXPECT_EQ(m.level[0], 0);
  EXPECT_EQ(m.level[1], 0);
  EXPECT_EQ(m.level[2], 2);
  const tiled::Box outside{{0, 0, 0}, {64, 8, 8}};
  EXPECT_THROW((void)map_from_boxes({48, 16, 16}, 16, {&outside, 1}, 2), ContractError);
}

TEST(AdaptiveMap, GradientKeepsTheStep) {
  // Step at x = 24: only the two brick columns touching it see gradient.
  const FieldF f = test::step_field({48, 16, 16});
  const LevelMap m = map_from_gradient(f, 16, /*keep_fraction=*/0.4, 3);
  EXPECT_EQ(m.level[1], 0);             // contains the step face
  EXPECT_EQ(m.level[0], 3);             // flat
  EXPECT_EQ(m.level[2], 3);             // flat
}

TEST(AdaptiveMap, HalosPinTheBlobWithMargin) {
  const Dim3 d{64, 64, 64};
  const FieldF f = blob_field(d);
  const LevelMap m = map_from_halos(f, 16, /*threshold=*/150.0f, /*min_cells=*/8, 2);
  // Blob center near (21, 32, 21) -> brick (1, 2, 1) fine, plus a one-brick
  // margin; far corner stays coarse.
  const Dim3 g = m.grid;
  EXPECT_EQ(m.level[static_cast<std::size_t>(1 + g.nx * (2 + g.ny * 1))], 0);
  EXPECT_EQ(m.level[static_cast<std::size_t>(2 + g.nx * (3 + g.ny * 2))], 0);  // margin
  EXPECT_EQ(m.level[static_cast<std::size_t>(3 + g.nx * (0 + g.ny * 3))], 2);
  EXPECT_EQ(m.n_levels(), 3);
}

TEST(AdaptiveMap, MaskValidation) {
  MaskField wrong({8, 8, 8}, 0);
  EXPECT_THROW((void)map_from_mask({16, 16, 16}, 8, wrong, 1), ContractError);
  MaskField mask({16, 16, 16}, 0);
  mask.at(0, 0, 0) = 1;
  const LevelMap m = map_from_mask({16, 16, 16}, 8, mask, 1);
  EXPECT_EQ(m.level[0], 0);
  EXPECT_EQ(m.level[7], 1);
  const LevelMap dilated = map_from_mask({16, 16, 16}, 8, mask, 1, /*dilate=*/1);
  for (const auto l : dilated.level) EXPECT_EQ(l, 0);  // 2^3 grid, all adjacent
}

TEST(Adaptive, GeometryAndIndexRoundTrip) {
  const FieldF f = blob_field({48, 40, 33});
  const Bytes stream = compress(f, 0.05, mixed_map(f.dims(), 16), small_cfg());

  const Index geo = read_geometry(stream);
  EXPECT_EQ(geo.dims, f.dims());
  EXPECT_EQ(geo.brick, 16);
  EXPECT_EQ(geo.overlap, kOverlap);
  EXPECT_EQ(geo.codec, "interp");
  EXPECT_EQ(geo.grid, (Dim3{3, 3, 3}));
  EXPECT_EQ(geo.n_levels, 3);
  EXPECT_TRUE(geo.bricks.empty());

  const Index idx = read_index(stream);
  ASSERT_EQ(idx.bricks.size(), 27u);
  for (std::size_t t = 0; t < idx.bricks.size(); ++t) {
    const BrickEntry& e = idx.bricks[t];
    EXPECT_EQ(e.stored, brick_stored_extent(idx.dims, e.origin, idx.brick, e.level));
    EXPECT_GE(e.approx_err, 0.05f);
    EXPECT_LE(e.vmin, e.vmax);
  }
  const auto hist = level_histogram(idx);
  const auto bytes = level_bytes(idx);
  EXPECT_EQ(hist.size(), 3u);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::size_t{0}), 27u);
  EXPECT_EQ(std::accumulate(bytes.begin(), bytes.end(), std::uint64_t{0}),
            idx.payload_bytes);
}

TEST(Adaptive, AllLevelZeroDecodesBitIdenticalToTiled) {
  const FieldF f = blob_field({40, 33, 25});
  const double eb = 1e-3;
  tiled::Config tc;
  tc.brick = 16;
  const Bytes tstream = tiled::compress(f, eb, tc);
  const Bytes astream = compress(f, eb, uniform_map(f.dims(), 16, 0), small_cfg());
  EXPECT_EQ(decompress(astream), tiled::decompress(tstream));
}

TEST(Adaptive, LevelZeroBricksBitIdenticalInMixedStream) {
  const FieldF f = blob_field({48, 48, 16});
  const double eb = 1e-3;
  tiled::Config tc;
  tc.brick = 16;
  const FieldF uniform = tiled::decompress(tiled::compress(f, eb, tc));

  const LevelMap map = mixed_map(f.dims(), 16);
  const Bytes stream = compress(f, eb, map, small_cfg());
  const Index idx = read_index(stream);
  const FieldF full = decompress(stream);
  for (std::size_t t = 0; t < idx.bricks.size(); ++t) {
    if (idx.bricks[t].level != 0) continue;
    const Coord3 o = idx.origin(t);
    const Dim3 core = idx.core_extent(t);
    for (index_t z = 0; z < core.nz; ++z)
      for (index_t y = 0; y < core.ny; ++y)
        for (index_t x = 0; x < core.nx; ++x)
          ASSERT_EQ(full.at(o.x + x, o.y + y, o.z + z),
                    uniform.at(o.x + x, o.y + y, o.z + z))
              << "brick " << t;
  }
}

TEST(Adaptive, SingleCoarseBrickMatchesPublicPrimitives) {
  // One-brick domain at level 1: the reconstruction must be exactly
  // prolong(codec_roundtrip(restrict_half(pad_to_even(f)))) — the documented
  // spec, assembled here from the public pieces.
  for (const Dim3 d : {Dim3{16, 16, 16}, Dim3{15, 13, 9}}) {
    const FieldF f = test::smooth_field(d);
    const double eb = 1e-3;
    Config cfg = small_cfg(std::max({d.nx, d.ny, d.nz}));
    const Bytes stream = compress(f, eb, uniform_map(d, cfg.brick, 1), cfg);

    const FieldF coarse = restrict_half(pad_to_even(f, PadKind::linear));
    const auto codec = registry().make("interp");
    const FieldF decoded = codec->decompress(codec->compress(coarse, eb));
    const FieldF expect = prolong_trilinear(decoded, d);
    EXPECT_EQ(decompress(stream), expect) << d.str();
  }
}

TEST(Adaptive, BoundaryEqualsBlendedProlongation) {
  // Two bricks along x: fine brick [0,16), coarse brick [16,32) at level 1.
  // On the coarse side of the seam (x = 16), the reconstruction must be the
  // mean of the coarse brick's prolongation and the fine brick's overlap.
  const Dim3 d{32, 16, 16};
  const FieldF f = blob_field(d);
  const double eb = 1e-3;
  LevelMap map = uniform_map(d, 16, 0);
  map.level[1] = 1;
  const Bytes stream = compress(f, eb, map, small_cfg());
  const FieldF full = decompress(stream);

  const auto codec = registry().make("interp");
  // Fine brick stores [0, 17) x [0,16) x [0,16).
  const FieldF b0 = extract_region(f, {0, 0, 0}, {17, 16, 16});
  const FieldF b0_dec = codec->decompress(codec->compress(b0, eb));
  // Coarse brick stores [16, 32) (+2-fine-sample overlap clipped away).
  const FieldF b1 = extract_region(f, {16, 0, 0}, {16, 16, 16});
  const FieldF b1_coarse = restrict_half(pad_to_even(b1, PadKind::linear));
  const FieldF b1_dec = codec->decompress(codec->compress(b1_coarse, eb));
  const FieldF b1_rec = prolong_trilinear(b1_dec, {16, 16, 16});

  for (index_t z = 0; z < d.nz; ++z)
    for (index_t y = 0; y < d.ny; ++y) {
      const auto blended = static_cast<float>(
          (static_cast<double>(b1_rec.at(0, y, z)) +
           static_cast<double>(b0_dec.at(16, y, z))) /
          2);
      ASSERT_EQ(full.at(16, y, z), blended) << y << "," << z;
      // One sample past the overlap the owner is alone again.
      ASSERT_EQ(full.at(17, y, z), b1_rec.at(1, y, z));
    }
}

TEST(Adaptive, ReadRegionSeamConsistentForAnyQueryBox) {
  const Dim3 d{48, 40, 33};
  const FieldF f = blob_field(d);
  const Bytes stream = compress(f, 1e-3, mixed_map(d, 16), small_cfg());
  const FieldF full = decompress(stream);
  ASSERT_EQ(full.dims(), d);

  Rng rng(123);
  std::vector<tiled::Box> boxes = {
      {{0, 0, 0}, {d.nx, d.ny, d.nz}},
      {{15, 15, 15}, {17, 17, 17}},  // straddles a brick corner
      {{16, 0, 0}, {17, 40, 33}},    // exactly the seam layer
      {{31, 31, 31}, {32, 32, 32}},  // single sample
  };
  for (int i = 0; i < 12; ++i) {
    Coord3 lo{static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(d.nx - 1))),
              static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(d.ny - 1))),
              static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(d.nz - 1)))};
    Coord3 hi{lo.x + 1 + static_cast<index_t>(
                             rng.uniform_index(static_cast<std::uint64_t>(d.nx - lo.x))),
              lo.y + 1 + static_cast<index_t>(
                             rng.uniform_index(static_cast<std::uint64_t>(d.ny - lo.y))),
              lo.z + 1 + static_cast<index_t>(
                             rng.uniform_index(static_cast<std::uint64_t>(d.nz - lo.z)))};
    hi = {std::min(hi.x, d.nx), std::min(hi.y, d.ny), std::min(hi.z, d.nz)};
    boxes.push_back({lo, hi});
  }
  for (const auto& box : boxes) {
    const tiled::RegionRead rr = adaptive::read_region(stream, box, /*threads=*/2);
    EXPECT_EQ(rr.tiles_total, 27u);
    const FieldF expect = extract_region(full, box.lo, box.extent());
    ASSERT_EQ(rr.data, expect) << box.lo.x << "," << box.lo.y << "," << box.lo.z;
  }
}

TEST(Adaptive, RegionDecodesOnlyNeededBricks) {
  const Dim3 d{48, 16, 16};
  const FieldF f = blob_field(d);
  LevelMap map = uniform_map(d, 16, 0);
  map.level[2] = 1;  // only the last x-brick is coarse
  const Bytes stream = compress(f, 1e-3, map, small_cfg());
  // A box inside the fine brick 0: just that brick.
  EXPECT_EQ(adaptive::read_region(stream, {{2, 2, 2}, {10, 10, 10}}, 1).tiles_decoded, 1u);
  // A box inside the coarse brick 2 blends with its low-x neighbor.
  EXPECT_EQ(adaptive::read_region(stream, {{34, 2, 2}, {44, 10, 10}}, 1).tiles_decoded, 2u);
}

TEST(Adaptive, BlendedErrorStaysWithinWorstApproxErr) {
  const Dim3 d{48, 40, 33};
  const FieldF f = blob_field(d);
  const Bytes stream = compress(f, 1e-3, mixed_map(d, 16), small_cfg());
  const Index idx = read_index(stream);
  float worst = 0.0f;
  for (const BrickEntry& e : idx.bricks) worst = std::max(worst, e.approx_err);
  const FieldF full = decompress(stream);
  EXPECT_LE(test::max_abs_err(f, full), static_cast<double>(worst) * (1.0 + 1e-5));
  // And the fine bricks alone honor the codec bound.
  for (std::size_t t = 0; t < idx.bricks.size(); ++t) {
    if (idx.bricks[t].level != 0) continue;
    const Coord3 o = idx.origin(t);
    const Dim3 core = idx.core_extent(t);
    EXPECT_LE(test::max_abs_err(extract_region(f, o, core),
                                extract_region(full, o, core)),
              1e-3 * 1.0001);
  }
}

TEST(Adaptive, StreamBytesIdenticalForAnyThreadCount) {
  const FieldF f = blob_field({40, 33, 25});
  const LevelMap map = mixed_map(f.dims(), 16);
  Config c1 = small_cfg(), c4 = small_cfg(), c0 = small_cfg();
  c4.threads = 4;
  c0.threads = 0;
  const Bytes s1 = compress(f, 1e-3, map, c1);
  EXPECT_EQ(s1, compress(f, 1e-3, map, c4));
  EXPECT_EQ(s1, compress(f, 1e-3, map, c0));
}

TEST(Adaptive, RejectsBadConfigAndInputs) {
  const FieldF f = test::smooth_field({16, 16, 16});
  const LevelMap map = uniform_map(f.dims(), 16, 0);
  EXPECT_THROW((void)compress(FieldF{}, 1e-3, map, small_cfg()), ContractError);
  EXPECT_THROW((void)compress(f, 0.0, map, small_cfg()), ContractError);
  LevelMap wrong = uniform_map({32, 32, 32}, 16, 0);
  EXPECT_THROW((void)compress(f, 1e-3, wrong, small_cfg()), ContractError);
  LevelMap deep = map;
  deep.level[0] = static_cast<std::uint8_t>(max_level(16) + 1);
  EXPECT_THROW((void)compress(f, 1e-3, deep, small_cfg()), ContractError);
  const Bytes stream = compress(f, 1e-3, map, small_cfg());
  EXPECT_THROW((void)read_region(stream, {{0, 0, 0}, {0, 4, 4}}, 1), ContractError);
  EXPECT_THROW((void)read_region(stream, {{0, 0, 0}, {17, 4, 4}}, 1), ContractError);
}

TEST(AdaptiveRobustness, TruncationAtEveryStageRejected) {
  const FieldF f = test::smooth_field({20, 20, 20});
  const Bytes stream = compress(f, 1e-2, mixed_map(f.dims(), 8), small_cfg(8));
  const std::size_t table_end = read_index(stream).payload_offset;
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, table_end / 2, table_end,
        stream.size() - 1}) {
    const Bytes cut(stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)read_index(cut), CodecError) << "kept " << keep;
  }
}

TEST(AdaptiveRobustness, ForeignMagicRejected) {
  const FieldF f = test::smooth_field({16, 16, 16});
  tiled::Config tc;
  tc.brick = 16;
  const Bytes tstream = tiled::compress(f, 1e-3, tc);
  EXPECT_THROW((void)read_geometry(tstream), CodecError);
}

TEST(AdaptiveRobustness, EveryIndexByteFlipFailsCleanlyOrDecodes) {
  // Exhaustive single-byte corruption of the header + brick index: each
  // mutant must either decode to the right extents (flips in advisory
  // fields like min/max/approx_err) or throw CodecError — anything else
  // (crash, OOB, over-allocation from an unvalidated claim) is a bug.
  // ASan/TSan in ci.sh turn latent OOB into hard failures here.
  const FieldF f = test::smooth_field({20, 20, 20});
  const Bytes stream = compress(f, 1e-2, mixed_map(f.dims(), 8), small_cfg(8));
  const std::size_t table_end = read_index(stream).payload_offset;
  for (std::size_t pos = 0; pos < table_end; ++pos) {
    Bytes bad = stream;
    bad[pos] ^= std::byte{0x2d};
    try {
      const FieldF out = decompress(bad, 1);
      EXPECT_EQ(out.dims(), f.dims()) << "byte " << pos;
    } catch (const CodecError&) {
      // clean rejection
    }
  }
}

// -- cached serving (runs under the TSan Serve* filter) ----------------------

TEST(ServeAdaptive, DatasetBitIdenticalToDirectReads) {
  const Dim3 d{48, 40, 33};
  const FieldF f = blob_field(d);
  const Bytes stream = compress(f, 1e-3, mixed_map(d, 16), small_cfg());
  const FieldF full = decompress(stream);

  serve::Config sc;
  sc.threads = 4;
  serve::Dataset ds(Bytes(stream), sc);
  EXPECT_EQ(ds.kind(), serve::Dataset::Kind::adaptive);
  EXPECT_EQ(ds.levels(), 1);
  EXPECT_EQ(ds.dims(0), d);
  EXPECT_THROW((void)ds.index(), ContractError);
  EXPECT_EQ(ds.adaptive_index().grid, (Dim3{3, 3, 3}));

  const std::vector<tiled::Box> boxes = {
      {{0, 0, 0}, {d.nx, d.ny, d.nz}},
      {{10, 10, 10}, {30, 30, 30}},
      {{16, 0, 0}, {17, 40, 33}},
  };
  for (int pass = 0; pass < 2; ++pass)  // second pass is served from cache
    for (const auto& box : boxes)
      ASSERT_EQ(ds.read_region(0, box), extract_region(full, box.lo, box.extent()));
  ds.wait_idle();
  const auto st = ds.stats();
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.misses, 0u);
}

TEST(ServeAdaptive, ConcurrentReadsStayExact) {
  const Dim3 d{48, 40, 33};
  const FieldF f = blob_field(d);
  const Bytes stream = compress(f, 1e-3, mixed_map(d, 16), small_cfg());
  const FieldF full = decompress(stream);

  serve::Config sc;
  sc.threads = 4;
  sc.cache_bytes = 64 << 10;  // tiny: constant eviction pressure
  serve::Dataset ds(Bytes(stream), sc);

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w)
    workers.emplace_back([&, w] {
      Rng rng(static_cast<std::uint64_t>(w) + 1);
      for (int i = 0; i < 10; ++i) {
        const index_t x = static_cast<index_t>(rng.uniform_index(32));
        const index_t y = static_cast<index_t>(rng.uniform_index(24));
        const tiled::Box box{{x, y, 0}, {x + 16, y + 16, d.nz}};
        if (ds.read_region(0, box) != extract_region(full, box.lo, box.extent()))
          failures.fetch_add(1);
      }
    });
  for (auto& t : workers) t.join();
  ds.wait_idle();
  EXPECT_EQ(failures.load(), 0);
  const auto st = ds.stats();
  EXPECT_EQ(st.entries == 0, st.bytes == 0);
}

TEST(ServeAdaptive, RendererMatchesDirectDecompress) {
  const Dim3 d{40, 33, 25};
  const FieldF f = blob_field(d);
  const Bytes stream = compress(f, 1e-3, mixed_map(d, 16), small_cfg());
  const FieldF full = decompress(stream);
  const auto tf = render::auto_transfer(full);

  serve::Dataset ds = api::open_dataset(Bytes(stream));
  const render::Image a = render::volume_render(ds, tf);
  const render::Image b = render::volume_render(full, tf);
  ASSERT_EQ(a.pixels.size(), b.pixels.size());
  EXPECT_EQ(a.pixels, b.pixels);
}

// -- api facade --------------------------------------------------------------

TEST(AdaptiveApi, OptionsParseAndRoundTrip) {
  const auto opt =
      api::Options::parse("importance=roi,roi=1:2:3:9:10:11,coarse_level=3,tile=8");
  EXPECT_EQ(opt.importance, "roi");
  ASSERT_TRUE(opt.roi.has_value());
  EXPECT_EQ(opt.roi->lo, (Coord3{1, 2, 3}));
  EXPECT_EQ(opt.roi->hi, (Coord3{9, 10, 11}));
  EXPECT_EQ(opt.coarse_level, 3);
  const auto back = api::Options::parse(opt.to_string());
  EXPECT_EQ(back.to_string(), opt.to_string());

  api::Options commas;
  commas.set("roi", "1,2,3,4,5,6");  // ',' accepted when set directly (CLI args)
  EXPECT_EQ(commas.roi->hi, (Coord3{4, 5, 6}));

  api::Options o;
  EXPECT_THROW(o.set("importance", "bogus"), ContractError);
  EXPECT_THROW(o.set("roi", "1:2:3"), ContractError);
  EXPECT_THROW(o.set("roi", "1:2:3:4:5:x"), ContractError);
  EXPECT_THROW(o.set("coarse_level", "-1"), ContractError);
  EXPECT_THROW(o.set("halo_threshold", "-2"), ContractError);
}

TEST(AdaptiveApi, CompressAdaptiveRoiAllSources) {
  const Dim3 d{48, 48, 16};
  const FieldF f = blob_field(d);
  api::Options opt = api::Options::parse("tile=16,coarse_level=2,eb=1e-3,eb_mode=abs");

  for (const char* source : {"gradient", "halo"}) {
    opt.importance = source;
    const Bytes stream = api::compress_adaptive_roi(f, opt);
    const auto meta = api::info(stream);
    EXPECT_EQ(meta.kind, api::StreamInfo::Kind::adaptive) << source;
    EXPECT_EQ(meta.dims, d) << source;
    EXPECT_EQ(meta.tiles, 9u) << source;
    float worst = 0.0f;
    for (const BrickEntry& e : read_index(stream).bricks)
      worst = std::max(worst, e.approx_err);
    EXPECT_LE(test::max_abs_err(f, api::decompress(stream)),
              static_cast<double>(worst) * (1.0 + 1e-5))
        << source;
  }

  opt.importance = "roi";
  EXPECT_THROW((void)api::compress_adaptive_roi(f, opt), ContractError);  // no box
  opt.roi = tiled::Box{{0, 0, 0}, {16, 16, 16}};
  const Bytes roi_stream = api::compress_adaptive_roi(f, opt);
  const Index roi_idx = read_index(roi_stream);
  EXPECT_EQ(roi_idx.bricks[0].level, 0);
  EXPECT_EQ(roi_idx.bricks[8].level, 2);

  opt.importance = "file";
  EXPECT_THROW((void)api::compress_adaptive_roi(f, opt), ContractError);  // no path
  const std::string path = testing::TempDir() + "mrc_importance.raw";
  io::write_raw(gradient_magnitude(f), path);
  opt.importance_file = path;
  const Bytes file_stream = api::compress_adaptive_roi(f, opt);
  EXPECT_EQ(api::info(file_stream).kind, api::StreamInfo::Kind::adaptive);
  std::remove(path.c_str());
}

TEST(AdaptiveApi, HaloDrivenStreamSmallerThanUniformTiled) {
  // The acceptance property on a Nyx-like blob field: same codec, same eb,
  // the halo-driven adaptive stream undercuts the uniform level-0 tiled
  // stream while the ROI bricks stay bit-identical to it.
  const Dim3 d{64, 64, 64};
  const FieldF f = blob_field(d);
  api::Options opt = api::Options::parse("tile=16,coarse_level=2,importance=halo");
  const Bytes adaptive_stream = api::compress_adaptive_roi(f, opt);
  const Bytes tiled_stream = api::compress_tiled(f, opt);
  EXPECT_LT(adaptive_stream.size(), tiled_stream.size());
}

}  // namespace mrc::adaptive
