#include <gtest/gtest.h>

#include "compressors/interp/interp_compressor.h"
#include "test_util.h"

namespace mrc {
namespace {

using test::max_abs_err;
using test::noise_field;
using test::smooth_field;
using test::step_field;

// ---------------------------------------------------------------------------
// Error-bound property sweep: every (dims, eb, dataset) combination must
// respect max|x - x̂| <= eb. This is the core invariant of the codec.
// ---------------------------------------------------------------------------

struct InterpCase {
  Dim3 dims;
  double eb;
  int dataset;  // 0 smooth, 1 noise, 2 step
};

class InterpErrorBound : public ::testing::TestWithParam<InterpCase> {};

FieldF make_dataset(int id, Dim3 d) {
  switch (id) {
    case 0: return smooth_field(d);
    case 1: return noise_field(d, 50.0);
    default: return step_field(d);
  }
}

TEST_P(InterpErrorBound, MaxErrorWithinBound) {
  const auto& p = GetParam();
  const FieldF f = make_dataset(p.dataset, p.dims);
  const InterpCompressor comp;
  const auto rt = round_trip(comp, f, p.eb);
  EXPECT_EQ(rt.reconstructed.dims(), p.dims);
  EXPECT_LE(max_abs_err(f, rt.reconstructed), p.eb * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InterpErrorBound,
    ::testing::Values(
        InterpCase{{16, 16, 16}, 1.0, 0}, InterpCase{{16, 16, 16}, 0.01, 0},
        InterpCase{{17, 17, 17}, 0.5, 0}, InterpCase{{32, 8, 4}, 0.1, 0},
        InterpCase{{7, 5, 3}, 0.25, 0}, InterpCase{{64, 1, 1}, 0.5, 0},
        InterpCase{{1, 1, 64}, 0.5, 0}, InterpCase{{33, 1, 17}, 0.5, 0},
        InterpCase{{16, 16, 16}, 1.0, 1}, InterpCase{{20, 20, 20}, 0.05, 1},
        InterpCase{{16, 16, 16}, 10.0, 2}, InterpCase{{31, 31, 31}, 1.0, 2},
        InterpCase{{2, 2, 2}, 0.5, 0}, InterpCase{{1, 1, 1}, 0.5, 0},
        InterpCase{{9, 9, 9}, 0.001, 0}, InterpCase{{128, 4, 4}, 0.2, 0}));

// With adaptive per-level bounds, the overall bound must still be the
// nominal eb (coarser levels only get *tighter*).
class InterpAdaptiveEb : public ::testing::TestWithParam<double> {};

TEST_P(InterpAdaptiveEb, AdaptiveStillRespectsNominalBound) {
  const double eb = GetParam();
  const FieldF f = smooth_field({24, 24, 24});
  InterpConfig cfg;
  cfg.adaptive_eb = true;
  const InterpCompressor comp(cfg);
  const auto rt = round_trip(comp, f, eb);
  EXPECT_LE(max_abs_err(f, rt.reconstructed), eb * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Ebs, InterpAdaptiveEb, ::testing::Values(0.01, 0.1, 1.0, 10.0));

TEST(Interp, AdaptiveEbImprovesAccuracyAtSameNominalBound) {
  const FieldF f = smooth_field({32, 32, 32});
  const double eb = 1.0;
  const auto plain = round_trip(InterpCompressor{}, f, eb);
  InterpConfig cfg;
  cfg.adaptive_eb = true;
  const auto adaptive = round_trip(InterpCompressor{cfg}, f, eb);
  // Tighter early-level bounds must not hurt accuracy.
  double mse_plain = 0, mse_adaptive = 0;
  for (index_t i = 0; i < f.size(); ++i) {
    mse_plain += std::pow(f[i] - plain.reconstructed[i], 2);
    mse_adaptive += std::pow(f[i] - adaptive.reconstructed[i], 2);
  }
  EXPECT_LE(mse_adaptive, mse_plain * 1.05);
}

TEST(Interp, SmoothDataCompressesWell) {
  const FieldF f = smooth_field({64, 64, 64});
  const InterpCompressor comp;
  const auto stream = comp.compress(f, 0.5);
  // ~200 range / 0.5 eb on smooth data: expect far better than 10:1.
  EXPECT_GT(compression_ratio(f.size(), stream.size()), 10.0);
}

TEST(Interp, NoiseForcesLowRatioButStaysBounded) {
  const FieldF f = noise_field({32, 32, 32}, 100.0);
  const InterpCompressor comp;
  const auto rt = round_trip(comp, f, 0.01);
  EXPECT_LE(max_abs_err(f, rt.reconstructed), 0.01 + 1e-9);
  EXPECT_GT(rt.ratio, 0.5);  // never pathologically expands
}

TEST(Interp, ConstantFieldNearFreeToStore) {
  FieldF f({32, 32, 32}, 42.0f);
  const InterpCompressor comp;
  const auto rt = round_trip(comp, f, 0.1);
  EXPECT_LE(max_abs_err(f, rt.reconstructed), 0.1);
  EXPECT_GT(rt.ratio, 400.0);
}

TEST(Interp, DecompressRejectsWrongMagic) {
  Bytes garbage(64, std::byte{0x5a});
  const InterpCompressor comp;
  EXPECT_THROW((void)comp.decompress(garbage), CodecError);
}

TEST(Interp, RejectsNonPositiveErrorBound) {
  const FieldF f = smooth_field({8, 8, 8});
  const InterpCompressor comp;
  EXPECT_THROW((void)comp.compress(f, 0.0), ContractError);
  EXPECT_THROW((void)comp.compress(f, -1.0), ContractError);
}

TEST(Interp, CubicBeatsLinearOnSmoothData) {
  const FieldF f = smooth_field({48, 48, 48});
  InterpConfig lin;
  lin.cubic = false;
  const auto s_cubic = InterpCompressor{}.compress(f, 0.01);
  const auto s_linear = InterpCompressor{lin}.compress(f, 0.01);
  EXPECT_LT(s_cubic.size(), s_linear.size());
}

// ---------------------------------------------------------------------------
// Extrapolation accounting (paper Figs. 7-8): power-of-two extents force
// constant extrapolation at inner points; 2^k + 1 extents eliminate it.
// ---------------------------------------------------------------------------

TEST(InterpExtrapolation, PaperExampleEightPoints) {
  // The paper's 1-D example: 8 points -> 2 of the 6 inner points
  // extrapolated (d5 and d7).
  EXPECT_EQ(InterpCompressor::count_extrapolated_points({8, 1, 1}), 2);
}

TEST(InterpExtrapolation, PaperExampleSixteenPoints) {
  // Paper: "If the block size is 16, this affects 3 out of 14 inner points."
  EXPECT_EQ(InterpCompressor::count_extrapolated_points({16, 1, 1}), 3);
}

TEST(InterpExtrapolation, PaddedLineHasNone) {
  EXPECT_EQ(InterpCompressor::count_extrapolated_points({9, 1, 1}), 0);
  EXPECT_EQ(InterpCompressor::count_extrapolated_points({17, 1, 1}), 0);
}

TEST(InterpExtrapolation, Padded3DMergedShapeHasNoneInSmallDims) {
  // A padded linear merge (17 x 17 x 8k) must not extrapolate at all:
  // z is a multiple of 16 plus ... the anchor logic keeps the long axis
  // extrapolation-free as well when nz is a multiple of the unit (each
  // last-row handled by the n-1 anchor).
  const index_t extrapolated_padded =
      InterpCompressor::count_extrapolated_points({17, 17, 256});
  const index_t extrapolated_unpadded =
      InterpCompressor::count_extrapolated_points({16, 16, 256});
  EXPECT_LT(extrapolated_padded, extrapolated_unpadded);
}

TEST(Interp, StreamIsSelfDescribing) {
  const FieldF f = smooth_field({12, 10, 8});
  InterpConfig cfg;
  cfg.adaptive_eb = true;
  cfg.alpha = 1.5;
  cfg.beta = 4.0;
  const InterpCompressor enc(cfg);
  // Decoding with a *default-configured* compressor must reproduce the data:
  // all parameters ride in the stream.
  const InterpCompressor dec;
  const auto recon = dec.decompress(enc.compress(f, 0.25));
  EXPECT_LE(max_abs_err(f, recon), 0.25 + 1e-9);
}

}  // namespace
}  // namespace mrc
