// serve::Server — multi-tenant serving through one global cache: bit-exact
// region replies over the wire protocol under many concurrent clients and
// datasets, global-budget eviction fairness (hot steals from cold), the
// admission gate's explicit overload shedding, stats reconciliation
// (hits + misses == lookups in any snapshot; p50 <= p99), and the wire
// codec's hostile-input behavior (truncations, oversize length/extent
// claims rejected before any allocation, exhaustive header bit flips).
// ci.sh reruns Server*/Wire* under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "api/mrc_api.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "pyramid/pyramid.h"
#include "serve/brick_cache.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "test_util.h"

namespace mrc {
namespace {

using serve::Server;
using serve::ServerConfig;
using serve::ServerError;
using serve::ServerStats;
using tiled::Box;
namespace wire = serve::wire;

/// 40^3 zfpx pyramid, brick 8 -> levels 40^3 (125 bricks), 20^3, 10^3, 5^3.
Bytes pyramid_stream(double eb = 0.05) {
  const FieldF f = test::smooth_field({40, 40, 40});
  pyramid::Config cfg;
  cfg.codec = "zfpx";
  cfg.brick = 8;
  cfg.threads = 2;
  return pyramid::build(f, eb, cfg);
}

/// 24^3 zfpx tiled stream, brick 8 -> 27 bricks.
Bytes tiled_stream() {
  api::Options opt;
  opt.codec = "zfpx";
  opt.tile = 8;
  opt.threads = 2;
  return api::compress_tiled(test::smooth_field({24, 24, 24}, 50.0), opt);
}

ServerConfig quiet(std::size_t cache_bytes = 256ull << 20, int threads = 2) {
  ServerConfig cfg;
  cfg.cache_bytes = cache_bytes;
  cfg.threads = threads;
  cfg.prefetch = false;  // deterministic counters unless a test wants warming
  return cfg;
}

/// The in-repo mock transport: a request frame goes straight into
/// Server::handle_frame and the reply comes straight back.
wire::Transport loopback(Server& srv) {
  return [&srv](std::span<const std::byte> frame) { return srv.handle_frame(frame); };
}

// ---------------------------------------------------------------------------
// Wire round trip: open / region / lod / stats / close against one server.
// ---------------------------------------------------------------------------

TEST(Server, WireRoundTripServesEveryFrameType) {
  const Bytes pstream = pyramid_stream();
  Server srv(quiet());
  wire::Client client(loopback(srv));

  const wire::OpenInfo info = client.open(pstream, "halo_run_42");
  EXPECT_EQ(info.levels, 4);
  EXPECT_EQ(info.dims, (Dim3{40, 40, 40}));
  EXPECT_DOUBLE_EQ(info.eb, 0.05);
  ASSERT_EQ(srv.list().size(), 1u);
  EXPECT_EQ(srv.list()[0].second, "halo_run_42");

  // Region replies are bit-identical to direct container reads, cold + warm.
  for (const Box box : {Box{{0, 0, 0}, {10, 10, 10}}, Box{{3, 0, 5}, {20, 17, 9}}}) {
    const FieldF direct = pyramid::read_region(pstream, 0, box, 1).data;
    EXPECT_EQ(client.region(info.id, 0, box), direct);
    EXPECT_EQ(client.region(info.id, 0, box), direct);  // from cache now
  }

  // choose_level over the wire matches the in-process API.
  const Box view{{0, 0, 0}, {40, 40, 40}};
  EXPECT_EQ(client.choose_level(info.id, view, 8000),
            srv.choose_level(info.id, view, 8000));

  const ServerStats st = client.stats();
  EXPECT_EQ(st.datasets, 1u);
  EXPECT_EQ(st.cache.lookups, st.cache.hits + st.cache.misses);
  EXPECT_GT(st.cache.hits, 0u);      // the warm rereads
  EXPECT_GE(st.requests, 4u);        // four admitted region reads
  EXPECT_LE(st.p50_us, st.p99_us);
  const ServerStats one = client.stats(info.id);
  EXPECT_EQ(one.cache.lookups, st.cache.lookups);  // only dataset == global

  client.close(info.id);
  EXPECT_TRUE(srv.list().empty());
  try {
    (void)client.region(info.id, 0, view);
    FAIL() << "read of a closed dataset must fail";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ServerError::Code::unknown_dataset);  // over the wire
  }
}

TEST(Server, OpensAllThreeContainerKindsAndRejectsForeignBytes) {
  Server srv(quiet());
  wire::Client client(loopback(srv));
  const FieldF f = test::smooth_field({16, 16, 16});

  api::Options aopt;
  aopt.tile = 8;
  const Bytes astream = api::compress_adaptive_roi(f, aopt);
  const wire::OpenInfo adaptive = client.open(astream);
  EXPECT_EQ(adaptive.levels, 1);
  const Box all = tiled::full_box(f.dims());
  EXPECT_EQ(client.region(adaptive.id, 0, all),
            adaptive::read_region(astream, all).data);

  const wire::OpenInfo tiled_info = client.open(tiled_stream());
  EXPECT_EQ(tiled_info.levels, 1);
  EXPECT_EQ(tiled_info.dims, (Dim3{24, 24, 24}));

  const wire::OpenInfo pyr = client.open(pyramid_stream());
  EXPECT_EQ(pyr.levels, 4);
  EXPECT_EQ(srv.list().size(), 3u);

  // A plain codec stream is not a servable container: error frame, not a
  // dead server.
  try {
    (void)client.open(api::compress(f));
    FAIL() << "plain codec streams must be rejected";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ServerError::Code::bad_request);
  }
  EXPECT_EQ(srv.list().size(), 3u);  // registry untouched by the failure
}

// ---------------------------------------------------------------------------
// Concurrency: many clients, many datasets, one global cache.
// ---------------------------------------------------------------------------

TEST(Server, EightClientsTwoDatasetsStayBitExactAndReconcile) {
  const Bytes pstream = pyramid_stream();
  const Bytes tstream = tiled_stream();
  // Budget small enough that the two datasets contend for it.
  constexpr std::size_t kBudget = 96u << 10;
  Server srv(quiet(kBudget, /*threads=*/4));

  wire::Client opener(loopback(srv));
  const std::uint32_t pid = opener.open(pstream, "pyramid").id;
  const std::uint32_t tid = opener.open(tstream, "tiled").id;

  const FieldF pfull = pyramid::decompress_level(pstream, 0, 2);
  const FieldF tfull = tiled::decompress(tstream, 2);

  constexpr int kClients = 8;
  constexpr int kReads = 20;
  std::atomic<int> mismatches{0};
  std::atomic<bool> sampling{true};
  std::atomic<int> bad_snapshots{0};

  // A stats sampler races every read: the cache counters must reconcile and
  // the residency bytes must respect the global budget in EVERY snapshot.
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      const ServerStats snap = srv.stats();
      if (snap.cache.hits + snap.cache.misses != snap.cache.lookups ||
          snap.cache.bytes > kBudget || snap.p50_us > snap.p99_us)
        bad_snapshots.fetch_add(1);
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      wire::Client client(loopback(srv));  // one client per "connection"
      Rng rng(77u + static_cast<std::uint64_t>(c));
      for (int r = 0; r < kReads; ++r) {
        const bool use_pyramid = (c + r) % 2 == 0;
        const FieldF& full = use_pyramid ? pfull : tfull;
        const index_t n = full.dims().nx;
        const index_t x0 = static_cast<index_t>(rng.uniform() * double(n - 8));
        const index_t y0 = static_cast<index_t>(rng.uniform() * double(n - 8));
        const index_t z0 = static_cast<index_t>(rng.uniform() * double(n - 8));
        const Box box{{x0, y0, z0}, {x0 + 8, y0 + 8, z0 + 8}};
        const FieldF got = client.region(use_pyramid ? pid : tid, 0, box);
        for (index_t z = 0; z < 8 && mismatches.load() == 0; ++z)
          for (index_t y = 0; y < 8; ++y)
            for (index_t x = 0; x < 8; ++x)
              if (got.at(x, y, z) != full.at(x0 + x, y0 + y, z0 + z)) {
                mismatches.fetch_add(1);
                return;
              }
      }
    });
  }
  for (auto& t : clients) t.join();
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(bad_snapshots.load(), 0);

  const ServerStats st = srv.stats();
  EXPECT_EQ(st.cache.hits + st.cache.misses, st.cache.lookups);
  EXPECT_LE(st.cache.bytes, kBudget);
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(kClients) * kReads);
  EXPECT_EQ(st.rejected, 0u);  // default admission cap far above 8 clients
  EXPECT_LE(st.p50_us, st.p99_us);
  // Per-dataset slices partition the global counters exactly.
  const ServerStats sp = srv.stats(pid);
  const ServerStats stt = srv.stats(tid);
  EXPECT_EQ(sp.cache.lookups + stt.cache.lookups, st.cache.lookups);
  EXPECT_EQ(sp.cache.hits + sp.cache.misses, sp.cache.lookups);
  EXPECT_EQ(stt.cache.hits + stt.cache.misses, stt.cache.lookups);
  EXPECT_EQ(sp.cache.bytes + stt.cache.bytes, st.cache.bytes);
}

TEST(Server, AdmissionGateShedsLoadWithExplicitOverload) {
  ServerConfig cfg = quiet(256u << 10, /*threads=*/2);
  cfg.max_active = 1;  // everything beyond one in-flight read is shed
  Server srv(cfg);
  wire::Client opener(loopback(srv));
  const Bytes pstream = pyramid_stream();
  const std::uint32_t id = opener.open(pstream).id;
  const FieldF full = pyramid::decompress_level(pstream, 0, 2);

  constexpr int kClients = 8;
  constexpr int kReads = 40;
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      wire::Client client(loopback(srv));
      Rng rng(9000u + static_cast<std::uint64_t>(c));
      for (int r = 0; r < kReads; ++r) {
        const index_t x0 = static_cast<index_t>(rng.uniform() * 32);
        const Box box{{x0, 0, 0}, {x0 + 8, 8, 8}};
        for (;;) {  // overload is explicit and retryable, never silent
          try {
            const FieldF got = client.region(id, 0, box);
            if (got.at(1, 2, 3) != full.at(x0 + 1, 2, 3)) mismatches.fetch_add(1);
            served.fetch_add(1);
            break;
          } catch (const ServerError& e) {
            ASSERT_EQ(e.code(), ServerError::Code::overloaded);
            shed.fetch_add(1);
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(served.load(), static_cast<std::uint64_t>(kClients) * kReads);
  // 8 clients against a cap of 1: collisions are effectively certain.
  EXPECT_GT(shed.load(), 0u);
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.requests, served.load());
  EXPECT_EQ(st.rejected, shed.load());
  EXPECT_EQ(st.active, 0u);
}

// ---------------------------------------------------------------------------
// Global budget: a hot dataset steals residency from a cold one.
// ---------------------------------------------------------------------------

TEST(Server, HotDatasetEvictsColdUnderOneGlobalBudget) {
  // ~64 KiB holds ~20 decoded 9^3 bricks — far fewer than the two datasets'
  // combined 152, so they must compete.
  constexpr std::size_t kBudget = 64u << 10;
  Server srv(quiet(kBudget, /*threads=*/2));
  wire::Client client(loopback(srv));
  const std::uint32_t cold = client.open(pyramid_stream(), "cold").id;
  const std::uint32_t hot = client.open(tiled_stream(), "hot").id;

  // Fill the cache with the cold dataset's finest level.
  (void)client.region(cold, 0, Box{{0, 0, 0}, {40, 40, 40}});
  const std::size_t cold_resident = srv.stats(cold).cache.entries;
  EXPECT_GT(cold_resident, 0u);

  // Hammer the hot dataset: three full sweeps, 27 bricks each.
  for (int sweep = 0; sweep < 3; ++sweep)
    (void)client.region(hot, 0, Box{{0, 0, 0}, {24, 24, 24}});

  const ServerStats st = srv.stats();
  const ServerStats sc = srv.stats(cold);
  const ServerStats sh = srv.stats(hot);
  EXPECT_LE(st.cache.bytes, kBudget);               // never above the budget
  EXPECT_EQ(st.cache.bytes, sc.cache.bytes + sh.cache.bytes);
  EXPECT_LT(sc.cache.entries, cold_resident);       // cold lost residency...
  EXPECT_GT(sh.cache.entries, sc.cache.entries);    // ...to the hot dataset
  EXPECT_GT(sc.cache.evictions, 0u);
  // The hot dataset's second and third sweeps ran warm.
  EXPECT_GT(sh.cache.hits, 0u);
}

TEST(Server, BudgetSmallerThanOneBrickStaysAHardCeiling) {
  // A decoded 9^3 brick is ~2.9 KB; a 1 KB budget cannot hold even one.
  // The cache must degrade to decode-through — replies stay bit-exact and
  // resident bytes never exceed the budget, they don't plateau at some
  // "one brick per shard" floor above it.
  constexpr std::size_t kBudget = 1u << 10;
  Server srv(quiet(kBudget, /*threads=*/2));
  wire::Client client(loopback(srv));
  const Bytes tstream = tiled_stream();
  const FieldF whole = api::decompress(tstream);
  const std::uint32_t id = client.open(tstream).id;

  for (int pass = 0; pass < 2; ++pass) {
    const FieldF got = client.region(id, 0, Box{{0, 0, 0}, {24, 24, 24}});
    ASSERT_EQ(got.dims(), whole.dims());
    for (index_t i = 0; i < got.size(); ++i) ASSERT_EQ(got.data()[i], whole.data()[i]);
    EXPECT_LE(srv.stats().cache.bytes, kBudget);
  }
  EXPECT_EQ(srv.stats().cache.entries, 0u);  // nothing fits, nothing resides
  EXPECT_GT(srv.stats().cache.evictions, 0u);
}

// ---------------------------------------------------------------------------
// Wire codec under hostile input. No reply below ever crashes the server;
// every malformed frame earns an error frame, and oversize claims die
// before any allocation could be sized from them.
// ---------------------------------------------------------------------------

/// The server's reply to raw bytes, parsed. handle_frame is total, so this
/// never throws.
wire::Frame reply_of(Server& srv, std::span<const std::byte> frame, Bytes& storage) {
  storage = srv.handle_frame(frame);
  return wire::parse_frame(storage);
}

TEST(Wire, TruncatedFramesEarnErrorFramesNeverCrashes) {
  Server srv(quiet());
  wire::Client client(loopback(srv));
  const std::uint32_t id = client.open(tiled_stream()).id;

  // A valid region request, then every truncation of it.
  Bytes body;
  ByteWriter w(body);
  w.put<std::uint32_t>(id);
  w.put<std::int32_t>(0);
  wire::put_box(w, Box{{0, 0, 0}, {8, 8, 8}});
  const Bytes good = wire::make_frame(wire::Type::region, body);
  Bytes storage;
  EXPECT_EQ(reply_of(srv, good, storage).type, wire::Type::region_ok);

  for (std::size_t n = 0; n < good.size(); ++n) {
    const auto truncated = std::span<const std::byte>(good).first(n);
    EXPECT_EQ(reply_of(srv, truncated, storage).type, wire::Type::error) << n;
  }
}

TEST(Wire, HostileLengthAndCountClaimsRejectedBeforeAllocation) {
  Server srv(quiet());
  Bytes storage;

  // Length prefix claims: zero, over-cap, and "the buffer is bigger than it
  // is" (the classic oversize-count attack) — all refused while only the
  // 5-byte header has been read.
  for (const std::uint64_t claim :
       {std::uint64_t{0}, std::uint64_t{wire::kMaxFrameBytes} + 1,
        std::uint64_t{0xffff'ffff}, std::uint64_t{2}}) {
    Bytes frame;
    ByteWriter w(frame);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(claim));
    w.put<std::uint8_t>(static_cast<std::uint8_t>(wire::Type::stats));
    EXPECT_EQ(reply_of(srv, frame, storage).type, wire::Type::error) << claim;
  }

  // An open request whose name blob claims 2^48 bytes: the varint is read,
  // the bounds check fires, and no 256 TiB buffer is ever sized.
  {
    Bytes body;
    ByteWriter w(body);
    w.put_varint(std::uint64_t{1} << 48);
    const Bytes frame = wire::make_frame(wire::Type::open, body);
    EXPECT_EQ(reply_of(srv, frame, storage).type, wire::Type::error);
  }

  // A region request whose box spans 2^48 samples per axis: rejected by the
  // per-axis extent cap before any container code runs.
  {
    Bytes body;
    ByteWriter w(body);
    w.put<std::uint32_t>(1);
    w.put<std::int32_t>(0);
    wire::put_box(w, Box{{0, 0, 0}, {1, 1, 1}});  // placeholder, then corrupt
    const Bytes frame = wire::make_frame(wire::Type::region, body);
    Bytes huge = frame;
    // hi.x lives 8 bytes into the box: overwrite with 2^48.
    const std::uint64_t big = std::uint64_t{1} << 48;
    std::memcpy(huge.data() + 5 + 4 + 4 + 24, &big, sizeof(big));
    EXPECT_EQ(reply_of(srv, huge, storage).type, wire::Type::error);
  }

  // A region REPLY claiming 2^20^3 samples with a tiny payload: the client
  // refuses before allocating the claimed 4 PiB.
  {
    Bytes body;
    ByteWriter w(body);
    w.put<std::int64_t>(static_cast<std::int64_t>(wire::kMaxExtent));
    w.put<std::int64_t>(static_cast<std::int64_t>(wire::kMaxExtent));
    w.put<std::int64_t>(static_cast<std::int64_t>(wire::kMaxExtent));
    w.put<std::uint32_t>(0);  // 4 bytes of "payload"
    EXPECT_THROW((void)wire::decode_region_ok(body), CodecError);
  }
  // And a 48-bit extent claim dies on the per-axis cap.
  {
    Bytes body;
    ByteWriter w(body);
    w.put<std::int64_t>(std::int64_t{1} << 48);
    w.put<std::int64_t>(1);
    w.put<std::int64_t>(1);
    EXPECT_THROW((void)wire::decode_region_ok(body), CodecError);
  }
}

TEST(Wire, ExhaustiveHeaderBitFlipsAlwaysEarnAReply) {
  Server srv(quiet());
  wire::Client client(loopback(srv));
  const std::uint32_t id = client.open(tiled_stream()).id;

  Bytes body;
  ByteWriter w(body);
  w.put<std::uint32_t>(id);
  w.put<std::int32_t>(0);
  wire::put_box(w, Box{{0, 0, 0}, {8, 8, 8}});
  const Bytes good = wire::make_frame(wire::Type::region, body);

  // Flip every bit of the 5-byte header (and, for good measure, of the
  // body's first 8 bytes): the server must always produce a parseable
  // reply frame — region_ok if the mutation happened to stay valid,
  // an error frame otherwise. It must never throw or crash. A flip of the
  // type byte's kTracedFlag bit turns the frame into a (malformed) traced
  // request, whose reply legitimately echoes the flag — strip it before
  // classifying.
  Bytes storage;
  const std::size_t flip_bytes = std::min<std::size_t>(good.size(), 5 + 8);
  for (std::size_t byte = 0; byte < flip_bytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = good;
      mutated[byte] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      const wire::Frame reply = reply_of(srv, mutated, storage);
      const auto t = static_cast<wire::Type>(
          static_cast<std::uint8_t>(reply.type) &
          static_cast<std::uint8_t>(~wire::kTracedFlag));
      EXPECT_TRUE(t == wire::Type::region_ok || t == wire::Type::error)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// ---------------------------------------------------------------------------
// Request tracing: trace-id round trips, span stitching, flight records.
// ---------------------------------------------------------------------------

/// Flips the obs runtime switch for one test and always restores "off".
struct ScopedObs {
  ScopedObs() { obs::set_enabled(true); }
  ~ScopedObs() { obs::set_enabled(false); }
};

TEST(ServerTrace, TracedRepliesEchoTheIdOnEveryFrameType) {
  // Client::call verifies the echo (presence + value) on every reply, so a
  // traced walk over the full frame set is the round-trip proof.
  Server srv(quiet());
  wire::Client client(loopback(srv));
  client.set_trace(0x0123'4567'89ab'cdef);
  const std::uint32_t id = client.open(tiled_stream(), "traced").id;
  (void)client.region(id, 0, Box{{0, 0, 0}, {8, 8, 8}});
  (void)client.choose_level(id, Box{{0, 0, 0}, {8, 8, 8}}, 1 << 20);
  (void)client.stats(id);
  (void)client.metrics();
  (void)client.debug();
  client.close(id);
  srv.wait_idle();
}

TEST(ServerTrace, TracedRegionReadStitchesOneTraceAcrossLayers) {
  ScopedObs on;
  obs::reset_trace();
  obs::FlightRecorder::global().reset();

  Server srv(quiet());
  wire::Client client(loopback(srv));
  const std::uint32_t id = client.open(tiled_stream()).id;

  const std::uint64_t trace = 0x5151;
  client.set_trace(trace);
  const FieldF f = client.region(id, 0, Box{{0, 0, 0}, {16, 16, 16}});
  client.set_trace(0);
  EXPECT_EQ(f.dims(), (Dim3{16, 16, 16}));
  srv.wait_idle();

  // The one request's spans cover the wire codec, the server dispatch, and
  // the exec pool's decode tasks — stitched by the shared trace id.
  const auto spans = obs::spans_for(trace);
  ASSERT_FALSE(spans.empty());
  bool wire_decode = false, wire_encode = false, serve_request = false,
       exec_task = false;
  for (const auto& e : spans) {
    const std::string_view n(e.name);
    wire_decode = wire_decode || n == "wire.decode";
    wire_encode = wire_encode || n == "wire.encode";
    serve_request = serve_request || n == "serve.request";
    exec_task = exec_task || n.substr(0, 5) == "exec.";
  }
  EXPECT_TRUE(wire_decode);
  EXPECT_TRUE(wire_encode);
  EXPECT_TRUE(serve_request);
  EXPECT_TRUE(exec_task);

  // The stitched tree roots at the request span (earliest, widest).
  const std::string tree = obs::span_tree_text(trace);
  EXPECT_EQ(tree.rfind("serve.request", 0), 0u);

  // And the always-on flight recorder holds the request's record.
  bool found = false;
  for (const auto& rec : obs::FlightRecorder::global().snapshot())
    if (rec.trace == trace) {
      found = true;
      EXPECT_EQ(rec.frame_type, static_cast<std::uint8_t>(wire::Type::region));
      EXPECT_EQ(rec.outcome, 0);
      EXPECT_EQ(rec.dataset, id);
      EXPECT_EQ(rec.box_hi[0], 16);
      EXPECT_GT(rec.cache_hits + rec.cache_misses, 0u);
    }
  EXPECT_TRUE(found);

  obs::reset_trace();
  obs::FlightRecorder::global().reset();
}

TEST(ServerTrace, ErrorRepliesEchoTraceAndFailedRequestType) {
  Server srv(quiet());
  wire::Client client(loopback(srv));

  client.set_trace(0x77);
  try {
    (void)client.region(999, 0, Box{{0, 0, 0}, {8, 8, 8}});
    FAIL() << "expected ServerError";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ServerError::Code::unknown_dataset);
    EXPECT_EQ(e.trace, 0x77u);
    EXPECT_EQ(e.failed_request, static_cast<std::uint8_t>(wire::Type::region));
  }

  // Untraced client: the echoed id stays 0, attribution still works.
  client.set_trace(0);
  try {
    (void)client.region(999, 0, Box{{0, 0, 0}, {8, 8, 8}});
    FAIL() << "expected ServerError";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.trace, 0u);
    EXPECT_EQ(e.failed_request, static_cast<std::uint8_t>(wire::Type::region));
  }

  // A frame that never parses earns failed-request type 0.
  const Bytes junk(3, std::byte{0x5a});
  Bytes storage;
  const wire::Frame reply = reply_of(srv, junk, storage);
  EXPECT_EQ(reply.type, wire::Type::error);
  ASSERT_FALSE(reply.body.empty());
  EXPECT_EQ(static_cast<std::uint8_t>(reply.body.back()), 0);
}

TEST(ServerTrace, DebugFrameReturnsFlightRecorderJson) {
  obs::FlightRecorder::global().reset();
  Server srv(quiet());
  wire::Client client(loopback(srv));
  const std::uint32_t id = client.open(tiled_stream()).id;
  (void)client.region(id, 0, Box{{0, 0, 0}, {8, 8, 8}});
  // Error replies are always slow-log captured, whatever their latency.
  EXPECT_THROW((void)client.region(999, 0, Box{{0, 0, 0}, {8, 8, 8}}),
               ServerError);
  srv.wait_idle();

  const std::string doc = client.debug();
  EXPECT_EQ(doc.rfind("{\"flight\":", 0), 0u);
  EXPECT_NE(doc.find("\"records\":["), std::string::npos);
  EXPECT_NE(doc.find("\"slow\":["), std::string::npos);
  EXPECT_NE(doc.find("\"outcome\":3"), std::string::npos);  // unknown_dataset
  obs::FlightRecorder::global().reset();
}

TEST(ServerTrace, StatsOkCarriesSplitQueueDepths) {
  ServerStats s;
  s.cache.lookups = 10;
  s.cache.hits = 7;
  s.cache.misses = 3;
  s.datasets = 2;
  s.queue_high = 3;
  s.queue_low = 5;
  s.active = 1;
  s.requests = 9;
  s.rejected = 2;
  s.p50_us = 11;
  s.p99_us = 22;
  const Bytes frame = wire::encode_stats_ok(s);
  const wire::Frame f = wire::parse_frame(frame);
  ASSERT_EQ(f.type, wire::Type::stats_ok);
  const ServerStats d = wire::decode_stats_ok(f.body);
  EXPECT_EQ(d.queue_high, 3u);
  EXPECT_EQ(d.queue_low, 5u);
  EXPECT_EQ(d.cache.hits, 7u);
  EXPECT_EQ(d.datasets, 2u);
  EXPECT_EQ(d.p99_us, 22u);
}

TEST(ServerTrace, CoalescedDecodeRecordsOwnerAndAdopterIds) {
  ScopedObs on;
  obs::reset_trace();
  serve::BrickCache cache(64ull << 20, 4);
  const serve::CacheKey key{cache.register_dataset(), 7};
  const auto make_brick = [] {
    return std::make_shared<FieldF>(test::smooth_field({4, 4, 4}));
  };

  // The owner (trace 0xa) starts a gated decode; the adopter (trace 0xb)
  // fetches the same key while it runs and must wait on — adopt — it.
  std::promise<void> owner_in;
  std::promise<void> release;
  std::shared_future<void> go = release.get_future().share();
  std::thread owner([&] {
    const auto ctx = std::make_shared<obs::RequestCtx>();
    ctx->trace = 0xa;
    const obs::RequestScope scope(ctx);
    (void)cache.fetch(key, [&]() -> serve::BrickPtr {
      owner_in.set_value();
      go.wait();
      return make_brick();
    });
  });
  owner_in.get_future().wait();  // the decode is registered and running

  std::promise<void> adopter_in;
  std::thread adopter([&] {
    const auto ctx = std::make_shared<obs::RequestCtx>();
    ctx->trace = 0xb;
    const obs::RequestScope scope(ctx);
    adopter_in.set_value();  // about to fetch: the decode is still gated
    (void)cache.fetch(key, [&]() -> serve::BrickPtr { return make_brick(); });
  });
  adopter_in.get_future().wait();
  // Generous margin for the adopter to reach the in-flight wait before the
  // owner's decode is released (the entry stays in flight until then, so
  // the adopter coalesces as long as it arrives before release + finish).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  owner.join();
  adopter.join();

  // The adopter recorded a cache.adopt_decode span under its own trace,
  // ref'ing the owner — both ids of the coalesced decode are on record.
  bool adopted = false;
  for (const auto& e : obs::spans_for(0xb))
    if (std::string_view(e.name) == "cache.adopt_decode") {
      adopted = true;
      EXPECT_EQ(e.ref, 0xau);
    }
  EXPECT_TRUE(adopted);
  EXPECT_TRUE(obs::spans_for(0xa).empty());  // the owner waited on nothing

  obs::reset_trace();
}

TEST(ServerTrace, StolenPrefetchRecordsClaimSpanWithIssuerRef) {
  ScopedObs on;
  obs::reset_trace();
  serve::BrickCache cache(64ull << 20, 4);
  const serve::CacheKey key{cache.register_dataset(), 9};
  const auto make_brick = [] {
    return std::make_shared<FieldF>(test::smooth_field({4, 4, 4}));
  };
  std::atomic<int> prefetch_decodes{0};
  {
    // One worker, blocked behind a gate: the prefetch task stays queued and
    // unclaimed until the demand fetch steals it.
    exec::ThreadPool pool(2);
    std::promise<void> started;
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    auto blocker = pool.submit([&started, open] {
      started.set_value();
      open.wait();
    });
    started.get_future().wait();

    {
      const auto ctx = std::make_shared<obs::RequestCtx>();
      ctx->trace = 0x1;
      const obs::RequestScope scope(ctx);
      cache.prefetch(key, pool, [&]() -> serve::BrickPtr {
        prefetch_decodes.fetch_add(1);
        return make_brick();
      });
    }
    {
      const auto ctx = std::make_shared<obs::RequestCtx>();
      ctx->trace = 0x2;
      const obs::RequestScope scope(ctx);
      (void)cache.fetch(key, [&]() -> serve::BrickPtr { return make_brick(); });
    }
    gate.set_value();
    blocker.get();
  }  // pool drains (the stolen prefetch task finds its job gone) and joins

  EXPECT_EQ(prefetch_decodes.load(), 0);  // the demand fetch decoded inline
  EXPECT_TRUE(cache.contains(key));
  bool claimed = false;
  for (const auto& e : obs::spans_for(0x2))
    if (std::string_view(e.name) == "cache.claim_prefetch") {
      claimed = true;
      EXPECT_EQ(e.ref, 0x1u);  // ref = the request that issued the warm
    }
  EXPECT_TRUE(claimed);
  obs::reset_trace();
}

}  // namespace
}  // namespace mrc
