#include <gtest/gtest.h>

#include <array>

#include "core/sz3mr.h"
#include "test_util.h"

namespace mrc {
namespace {

using test::noise_field;
using test::smooth_field;

LevelData make_level(Dim3 fine_dims, index_t block, double fine_frac, int level,
                     std::uint64_t seed = 21) {
  // Smooth + noise mixture so levels have realistic structure.
  FieldF f = smooth_field(fine_dims, 50.0);
  const FieldF n = noise_field(fine_dims, 5.0, seed);
  for (index_t i = 0; i < f.size(); ++i) f[i] += n[i];
  const std::array<double, 2> fr{fine_frac, 1.0 - fine_frac};
  auto mr = amr::build_hierarchy(f, block, fr);
  return std::move(mr.levels[static_cast<std::size_t>(level)]);
}

double masked_max_err(const LevelData& a, const LevelData& b) {
  double m = 0.0;
  for (index_t i = 0; i < a.data.size(); ++i)
    if (a.mask[i])
      m = std::max(m, std::abs(static_cast<double>(a.data[i]) - b.data[i]));
  return m;
}

struct PresetCase {
  sz3mr::Config cfg;
  const char* name;
};

class Sz3mrPresets : public ::testing::TestWithParam<PresetCase> {};

TEST_P(Sz3mrPresets, LevelRoundTripRespectsBound) {
  const auto& p = GetParam();
  const LevelData lev = make_level({32, 32, 32}, 16, 0.4, 0);
  const double eb = 0.5;
  const auto stream = sz3mr::compress_level(lev, 16, eb, p.cfg);
  const LevelData out = sz3mr::decompress_level(stream);
  EXPECT_EQ(out.data.dims(), lev.data.dims());
  EXPECT_EQ(out.ratio, lev.ratio);
  // Mask restored exactly.
  for (index_t i = 0; i < lev.mask.size(); ++i) EXPECT_EQ(out.mask[i], lev.mask[i]);
  EXPECT_LE(masked_max_err(lev, out), eb * 1.5 + 1e-9)
      << p.name;  // 1.5: post-process may add a*eb (a <= 0.5)
}

INSTANTIATE_TEST_SUITE_P(
    Presets, Sz3mrPresets,
    ::testing::Values(PresetCase{sz3mr::baseline_sz3(), "baseline"},
                      PresetCase{sz3mr::amric_sz3(), "amric"},
                      PresetCase{sz3mr::tac_sz3(), "tac"},
                      PresetCase{sz3mr::ours_pad(), "pad"},
                      PresetCase{sz3mr::ours_pad_eb(), "pad+eb"},
                      PresetCase{sz3mr::ours_processed(), "processed"}),
    [](const auto& info) { return std::string(info.param.name == std::string("pad+eb")
                                                  ? "pad_eb"
                                                  : info.param.name); });

TEST(Sz3mr, StrictBoundWithoutPostprocess) {
  // All non-postprocessed presets must respect the bound exactly.
  const LevelData lev = make_level({32, 32, 32}, 16, 0.5, 0);
  for (const auto& cfg : {sz3mr::baseline_sz3(), sz3mr::amric_sz3(), sz3mr::tac_sz3(),
                          sz3mr::ours_pad(), sz3mr::ours_pad_eb()}) {
    const auto stream = sz3mr::compress_level(lev, 16, 0.25, cfg);
    const LevelData out = sz3mr::decompress_level(stream);
    EXPECT_LE(masked_max_err(lev, out), 0.25 * (1 + 1e-12));
  }
}

TEST(Sz3mr, CoarseLevelSmallUnitSkipsPadding) {
  // unit = 4 (< min_pad_unit): padding must be skipped even for ours_pad.
  const LevelData lev = make_level({32, 32, 32}, 8, 0.5, 1);  // coarse: unit 4
  const auto stream = sz3mr::compress_level(lev, 4, 0.5, sz3mr::ours_pad());
  const LevelData out = sz3mr::decompress_level(stream);
  EXPECT_LE(masked_max_err(lev, out), 0.5 * (1 + 1e-12));
}

TEST(Sz3mr, EmptyLevelProducesValidStream) {
  LevelData lev;
  lev.ratio = 2;
  lev.data = FieldF({16, 16, 16}, 0.0f);
  lev.mask = MaskField({16, 16, 16}, 0);  // nothing valid
  const auto stream = sz3mr::compress_level(lev, 4, 0.5, sz3mr::ours_pad_eb());
  const LevelData out = sz3mr::decompress_level(stream);
  EXPECT_EQ(out.data.dims(), Dim3(16, 16, 16));
  for (index_t i = 0; i < out.mask.size(); ++i) EXPECT_EQ(out.mask[i], 0);
}

TEST(Sz3mr, PaddingOverheadBoundedByGeometry) {
  // Improvement 1 carries (17/16)^2 ≈ 12.9% extra samples. On data the
  // predictor can handle, the better (extrapolation-free) prediction wins
  // most of that back: the padded stream must stay well under the raw
  // sample overhead, and never exceed it.
  FieldF f = test::smooth_field({64, 64, 64}, 50.0);
  const std::array<double, 2> fr{0.35, 0.65};
  auto mr = amr::build_hierarchy(f, 16, fr);
  const LevelData& lev = mr.levels[0];
  const double eb = 0.5;
  const auto s_base = sz3mr::compress_level(lev, 16, eb, sz3mr::baseline_sz3());
  const auto s_pad = sz3mr::compress_level(lev, 16, eb, sz3mr::ours_pad());
  EXPECT_LT(static_cast<double>(s_pad.size()),
            static_cast<double>(s_base.size()) * padding_overhead(16));
}

TEST(Sz3mr, MultiResRoundTrip) {
  FieldF f = smooth_field({32, 32, 32}, 50.0);
  const std::array<double, 2> fr{0.3, 0.7};
  const auto mr = amr::build_hierarchy(f, 16, fr);
  const auto streams = sz3mr::compress_multires(mr, 0.5, sz3mr::ours_pad_eb());
  ASSERT_EQ(streams.level_streams.size(), 2u);
  const auto out = sz3mr::decompress_multires(streams);
  ASSERT_EQ(out.levels.size(), 2u);
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_LE(masked_max_err(mr.levels[l], out.levels[l]), 0.5 * (1 + 1e-12));
  }
  EXPECT_GT(sz3mr::multires_ratio(mr, streams), 1.0);
}

TEST(Sz3mr, TacStreamsCarryBoxStructure) {
  const LevelData lev = make_level({32, 32, 32}, 8, 0.3, 0);
  const auto stream = sz3mr::compress_level(lev, 8, 0.5, sz3mr::tac_sz3());
  const LevelData out = sz3mr::decompress_level(stream);
  EXPECT_LE(masked_max_err(lev, out), 0.5 * (1 + 1e-12));
}

TEST(Sz3mr, CorruptStreamRejected) {
  Bytes garbage(128, std::byte{0x77});
  EXPECT_THROW((void)sz3mr::decompress_level(garbage), CodecError);
}

TEST(Sz3mr, PreparedLevelSeparatesPhases) {
  const LevelData lev = make_level({32, 32, 32}, 16, 0.5, 0);
  const auto prep = sz3mr::prepare_level(lev, 16, sz3mr::ours_pad());
  EXPECT_TRUE(prep.padded);
  EXPECT_EQ(prep.merged.dims().nx, 17);  // 16 + pad
  const auto stream = sz3mr::encode_prepared(prep, 0.5);
  const LevelData out = sz3mr::decompress_level(stream);
  EXPECT_LE(masked_max_err(lev, out), 0.5 * (1 + 1e-12));
}

}  // namespace
}  // namespace mrc
