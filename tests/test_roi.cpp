// Dedicated suite for roi/roi_extract: determinism on simdata fixtures,
// hierarchy structure, captured_fraction boundary cases, and the
// keep_fraction_threshold ranking rule the adaptive container builds on.
// (The seed module previously only had drive-by coverage in test_merge.)

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "roi/roi_extract.h"
#include "simdata/generators.h"
#include "test_util.h"

namespace mrc::roi {
namespace {

TEST(RoiExtract, DeterministicOnSimdataFixtures) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 5);
  const auto a = extract_adaptive(f, 16, 0.25);
  const auto b = extract_adaptive(f, 16, 0.25);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t l = 0; l < a.levels.size(); ++l) {
    EXPECT_EQ(a.levels[l].data, b.levels[l].data) << "level " << l;
    EXPECT_EQ(a.levels[l].mask, b.levels[l].mask) << "level " << l;
  }
}

TEST(RoiExtract, TwoLevelStructureAndFraction) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 5);
  const auto mr = extract_adaptive(f, 16, 0.25);
  ASSERT_EQ(mr.levels.size(), 2u);
  EXPECT_EQ(mr.levels[0].data.dims(), f.dims());
  // The fine level keeps ~25% of the cells (block-quantized).
  index_t fine_cells = 0;
  for (index_t i = 0; i < mr.levels[0].mask.size(); ++i)
    fine_cells += mr.levels[0].mask[i] ? 1 : 0;
  const double fraction =
      static_cast<double>(fine_cells) / static_cast<double>(f.size());
  EXPECT_NEAR(fraction, 0.25, 0.05);
}

TEST(RoiExtract, HighDensityCellsLandOnTheFineLevel) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 5);
  const auto mr = extract_adaptive(f, 16, 0.25);
  // The paper's Fig. 4 claim: a range-ranked ROI captures the over-density
  // cells far better than the kept fraction alone would suggest.
  const auto sorted_cut = [&] {
    std::vector<float> v(f.data(), f.data() + f.size());
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 500),
                     v.end(), std::greater<>());
    return v[v.size() / 500];
  }();
  const double captured = captured_fraction(mr, f, sorted_cut);
  EXPECT_GT(captured, 0.5);
  // ... and enriches them well beyond the kept-cell share (~25%).
  EXPECT_GT(captured, 2.0 * 0.25);
}

TEST(RoiExtract, CapturedFractionBoundaryCases) {
  const FieldF f = test::smooth_field({32, 32, 32});
  const auto mr = extract_adaptive(f, 8, 0.5);
  // Threshold above the maximum: nothing is interesting -> convention 1.0.
  const auto [lo, hi] = f.min_max();
  EXPECT_DOUBLE_EQ(captured_fraction(mr, f, hi + 1.0f), 1.0);
  // Threshold below the minimum: every cell counts; the captured share is
  // the fine-level share.
  const double all = captured_fraction(mr, f, lo - 1.0f);
  EXPECT_GT(all, 0.0);
  EXPECT_LT(all, 1.0);
  // Full-fraction ROI keeps everything at full resolution.
  const auto full = extract_adaptive(f, 8, 1.0);
  EXPECT_DOUBLE_EQ(captured_fraction(full, f, lo - 1.0f), 1.0);
}

TEST(RoiExtract, RejectsDegenerateArguments) {
  const FieldF f = test::smooth_field({32, 32, 32});
  EXPECT_THROW((void)extract_adaptive(f, 4, 0.5), ContractError);   // b must be > 4
  EXPECT_THROW((void)extract_adaptive(f, 8, 0.0), ContractError);
  EXPECT_THROW((void)extract_adaptive(f, 8, 1.5), ContractError);
  const auto mr = extract_adaptive(f, 8, 0.5);
  const FieldF wrong({16, 16, 16}, 0.0f);
  EXPECT_THROW((void)captured_fraction(mr, wrong, 0.0f), ContractError);
}

TEST(KeepFractionThreshold, RanksAndClamps) {
  const std::vector<double> scores{5.0, 1.0, 3.0, 2.0, 4.0};
  // Keep top 40% of 5 -> 2 blocks -> threshold is the 2nd best score.
  EXPECT_DOUBLE_EQ(keep_fraction_threshold(scores, 0.4), 4.0);
  // Tiny positive fractions still keep the best block.
  EXPECT_DOUBLE_EQ(keep_fraction_threshold(scores, 1e-9), 5.0);
  EXPECT_EQ(keep_fraction_threshold(scores, 0.0),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(keep_fraction_threshold(scores, 1.0),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(keep_fraction_threshold(std::vector<double>{}, 0.5),
            std::numeric_limits<double>::infinity());
  EXPECT_THROW((void)keep_fraction_threshold(
                   scores, std::numeric_limits<double>::quiet_NaN()),
               ContractError);
}

TEST(TopValueQuantile, MatchesTheHaloThresholdConvention) {
  std::vector<float> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<float>(i);  // 0..999
  // Top 0.2% of 1000 values = the best 2 -> threshold 998.
  EXPECT_FLOAT_EQ(roi::top_value_quantile(values, 0.002), 998.0f);
  EXPECT_FLOAT_EQ(roi::top_value_quantile(values, 1.0), 0.0f);
  // Tiny fractions clamp to keeping at least the single best value.
  EXPECT_FLOAT_EQ(roi::top_value_quantile(values, 0.0), 999.0f);
  EXPECT_THROW((void)roi::top_value_quantile({}, 0.5), ContractError);
  EXPECT_THROW((void)roi::top_value_quantile(values, 1.5), ContractError);
}

TEST(KeepFractionThreshold, TiesAtTheCutAreKept) {
  const std::vector<double> scores{2.0, 2.0, 2.0, 1.0};
  // Keeping "one" block at score 2 keeps all three tied blocks.
  const double thr = keep_fraction_threshold(scores, 0.25);
  int kept = 0;
  for (const double s : scores) kept += s >= thr ? 1 : 0;
  EXPECT_EQ(kept, 3);
}

}  // namespace
}  // namespace mrc::roi
