#include <gtest/gtest.h>

#include "analysis/halo_finder.h"
#include "compressors/interp/interp_compressor.h"
#include "simdata/generators.h"
#include "test_util.h"

namespace mrc::analysis {
namespace {

/// Field with `n` well-separated Gaussian blobs of known mass ordering.
FieldF blob_field(Dim3 d, int n, double amp = 100.0) {
  FieldF f(d, 1.0f);
  Rng rng(31);
  for (int i = 0; i < n; ++i) {
    const double cx = (0.15 + 0.7 * (i % 3) / 2.0) * d.nx;
    const double cy = (0.15 + 0.7 * ((i / 3) % 3) / 2.0) * d.ny;
    const double cz = (0.15 + 0.7 * (i / 9) / 2.0) * d.nz;
    const double sigma = 2.0 + 0.3 * i;
    for (index_t z = 0; z < d.nz; ++z)
      for (index_t y = 0; y < d.ny; ++y)
        for (index_t x = 0; x < d.nx; ++x) {
          const double r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy) + (z - cz) * (z - cz);
          f.at(x, y, z) += static_cast<float>(amp * std::exp(-r2 / (2 * sigma * sigma)));
        }
  }
  return f;
}

TEST(HaloFinder, FindsIsolatedBlobs) {
  const FieldF f = blob_field({48, 48, 48}, 5);
  const auto cat = find_halos(f, 20.0f, 4);
  EXPECT_EQ(cat.count(), 5u);
}

TEST(HaloFinder, EmptyFieldHasNoHalos) {
  FieldF f({16, 16, 16}, 0.0f);
  EXPECT_EQ(find_halos(f, 1.0f).count(), 0u);
}

TEST(HaloFinder, MinCellsFiltersNoise) {
  FieldF f({16, 16, 16}, 0.0f);
  f.at(3, 3, 3) = 100.0f;  // single hot voxel
  EXPECT_EQ(find_halos(f, 10.0f, 2).count(), 0u);
  EXPECT_EQ(find_halos(f, 10.0f, 1).count(), 1u);
}

TEST(HaloFinder, CatalogSortedByMass) {
  const FieldF f = blob_field({48, 48, 48}, 4);
  const auto cat = find_halos(f, 20.0f, 4);
  for (std::size_t i = 1; i < cat.count(); ++i)
    EXPECT_GE(cat.halos[i - 1].total_mass, cat.halos[i].total_mass);
}

TEST(HaloFinder, PeakInsideComponent) {
  const FieldF f = blob_field({32, 32, 32}, 1);
  const auto cat = find_halos(f, 20.0f, 4);
  ASSERT_EQ(cat.count(), 1u);
  const auto& h = cat.halos[0];
  EXPECT_FLOAT_EQ(f.at(h.peak.x, h.peak.y, h.peak.z), h.peak_value);
  EXPECT_GE(h.peak_value, 20.0f);
}

TEST(HaloFinder, TouchingBlobsMergeAcrossThreshold) {
  // Two blobs bridged above threshold form one halo; below, two.
  FieldF f({32, 16, 16}, 0.0f);
  for (index_t x = 8; x <= 24; ++x) f.at(x, 8, 8) = 50.0f;  // bridge
  f.at(8, 8, 8) = 100.0f;
  f.at(24, 8, 8) = 100.0f;
  EXPECT_EQ(find_halos(f, 40.0f, 1).count(), 1u);
  EXPECT_EQ(find_halos(f, 80.0f, 1).count(), 2u);
}

TEST(HaloFinder, SelfComparisonIsPerfect) {
  const FieldF f = blob_field({48, 48, 48}, 5);
  const auto cat = find_halos(f, 20.0f, 4);
  const auto cmp = compare_catalogs(cat, cat);
  EXPECT_EQ(cmp.matched, cat.count());
  EXPECT_DOUBLE_EQ(cmp.match_rate(), 1.0);
  EXPECT_DOUBLE_EQ(cmp.max_mass_rel_err, 0.0);
}

TEST(HaloFinder, CompressionAtSmallEbPreservesCatalog) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 3);
  const float threshold = static_cast<float>(5e9);
  const auto ref = find_halos(f, threshold, 4);
  ASSERT_GT(ref.count(), 3u);

  const auto rt = round_trip(InterpCompressor{}, f, f.value_range() * 1e-6);
  const auto test = find_halos(rt.reconstructed, threshold, 4);
  const auto cmp = compare_catalogs(ref, test);
  EXPECT_GT(cmp.match_rate(), 0.95);
  EXPECT_LT(cmp.mean_mass_rel_err, 0.01);
}

TEST(HaloFinder, AggressiveCompressionDegradesCatalog) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 3);
  const float threshold = static_cast<float>(5e9);
  const auto ref = find_halos(f, threshold, 4);
  const auto tight = round_trip(InterpCompressor{}, f, f.value_range() * 1e-6);
  const auto loose = round_trip(InterpCompressor{}, f, f.value_range() * 5e-2);
  const auto cmp_tight = compare_catalogs(ref, find_halos(tight.reconstructed, threshold, 4));
  const auto cmp_loose = compare_catalogs(ref, find_halos(loose.reconstructed, threshold, 4));
  EXPECT_GE(cmp_tight.match_rate(), cmp_loose.match_rate());
}

}  // namespace
}  // namespace mrc::analysis
