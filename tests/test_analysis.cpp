#include <gtest/gtest.h>

#include "analysis/halo_finder.h"
#include "compressors/interp/interp_compressor.h"
#include "simdata/generators.h"
#include "test_util.h"

namespace mrc::analysis {
namespace {

/// Field with `n` well-separated Gaussian blobs of known mass ordering.
FieldF blob_field(Dim3 d, int n, double amp = 100.0) {
  FieldF f(d, 1.0f);
  Rng rng(31);
  for (int i = 0; i < n; ++i) {
    const double cx = (0.15 + 0.7 * (i % 3) / 2.0) * d.nx;
    const double cy = (0.15 + 0.7 * ((i / 3) % 3) / 2.0) * d.ny;
    const double cz = (0.15 + 0.7 * (i / 9) / 2.0) * d.nz;
    const double sigma = 2.0 + 0.3 * i;
    for (index_t z = 0; z < d.nz; ++z)
      for (index_t y = 0; y < d.ny; ++y)
        for (index_t x = 0; x < d.nx; ++x) {
          const double r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy) + (z - cz) * (z - cz);
          f.at(x, y, z) += static_cast<float>(amp * std::exp(-r2 / (2 * sigma * sigma)));
        }
  }
  return f;
}

TEST(HaloFinder, FindsIsolatedBlobs) {
  const FieldF f = blob_field({48, 48, 48}, 5);
  const auto cat = find_halos(f, 20.0f, 4);
  EXPECT_EQ(cat.count(), 5u);
}

TEST(HaloFinder, EmptyFieldHasNoHalos) {
  FieldF f({16, 16, 16}, 0.0f);
  EXPECT_EQ(find_halos(f, 1.0f).count(), 0u);
}

TEST(HaloFinder, MinCellsFiltersNoise) {
  FieldF f({16, 16, 16}, 0.0f);
  f.at(3, 3, 3) = 100.0f;  // single hot voxel
  EXPECT_EQ(find_halos(f, 10.0f, 2).count(), 0u);
  EXPECT_EQ(find_halos(f, 10.0f, 1).count(), 1u);
}

TEST(HaloFinder, CatalogSortedByMass) {
  const FieldF f = blob_field({48, 48, 48}, 4);
  const auto cat = find_halos(f, 20.0f, 4);
  for (std::size_t i = 1; i < cat.count(); ++i)
    EXPECT_GE(cat.halos[i - 1].total_mass, cat.halos[i].total_mass);
}

TEST(HaloFinder, PeakInsideComponent) {
  const FieldF f = blob_field({32, 32, 32}, 1);
  const auto cat = find_halos(f, 20.0f, 4);
  ASSERT_EQ(cat.count(), 1u);
  const auto& h = cat.halos[0];
  EXPECT_FLOAT_EQ(f.at(h.peak.x, h.peak.y, h.peak.z), h.peak_value);
  EXPECT_GE(h.peak_value, 20.0f);
}

TEST(HaloFinder, TouchingBlobsMergeAcrossThreshold) {
  // Two blobs bridged above threshold form one halo; below, two.
  FieldF f({32, 16, 16}, 0.0f);
  for (index_t x = 8; x <= 24; ++x) f.at(x, 8, 8) = 50.0f;  // bridge
  f.at(8, 8, 8) = 100.0f;
  f.at(24, 8, 8) = 100.0f;
  EXPECT_EQ(find_halos(f, 40.0f, 1).count(), 1u);
  EXPECT_EQ(find_halos(f, 80.0f, 1).count(), 2u);
}

TEST(HaloFinder, SelfComparisonIsPerfect) {
  const FieldF f = blob_field({48, 48, 48}, 5);
  const auto cat = find_halos(f, 20.0f, 4);
  const auto cmp = compare_catalogs(cat, cat);
  EXPECT_EQ(cmp.matched, cat.count());
  EXPECT_DOUBLE_EQ(cmp.match_rate(), 1.0);
  EXPECT_DOUBLE_EQ(cmp.max_mass_rel_err, 0.0);
}

TEST(HaloFinder, CompressionAtSmallEbPreservesCatalog) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 3);
  const float threshold = static_cast<float>(5e9);
  const auto ref = find_halos(f, threshold, 4);
  ASSERT_GT(ref.count(), 3u);

  const auto rt = round_trip(InterpCompressor{}, f, f.value_range() * 1e-6);
  const auto test = find_halos(rt.reconstructed, threshold, 4);
  const auto cmp = compare_catalogs(ref, test);
  EXPECT_GT(cmp.match_rate(), 0.95);
  EXPECT_LT(cmp.mean_mass_rel_err, 0.01);
}

TEST(HaloFinder, DeterministicOnSimdataFixtures) {
  // Same seed -> byte-identical field -> identical catalog, twice over.
  const FieldF a = sim::nyx_density({64, 64, 64}, 11);
  const FieldF b = sim::nyx_density({64, 64, 64}, 11);
  ASSERT_EQ(a, b);
  const auto ca = find_halos(a, static_cast<float>(5e9), 4);
  const auto cb = find_halos(b, static_cast<float>(5e9), 4);
  ASSERT_EQ(ca.count(), cb.count());
  EXPECT_EQ(ca.cells_above_threshold, cb.cells_above_threshold);
  for (std::size_t i = 0; i < ca.count(); ++i) {
    EXPECT_EQ(ca.halos[i].peak, cb.halos[i].peak);
    EXPECT_EQ(ca.halos[i].cells, cb.halos[i].cells);
    EXPECT_DOUBLE_EQ(ca.halos[i].total_mass, cb.halos[i].total_mass);
  }
}

TEST(HaloFinder, ComponentTouchingTheDomainBoundaryIsCounted) {
  FieldF f({16, 16, 16}, 0.0f);
  // A slab hugging the x = 0 face, wrapping nothing: 4x16x16 cells.
  for (index_t z = 0; z < 16; ++z)
    for (index_t y = 0; y < 16; ++y)
      for (index_t x = 0; x < 4; ++x) f.at(x, y, z) = 10.0f;
  const auto cat = find_halos(f, 5.0f, 8);
  ASSERT_EQ(cat.count(), 1u);
  EXPECT_EQ(cat.halos[0].cells, 4 * 16 * 16);
  EXPECT_EQ(cat.cells_above_threshold, 4 * 16 * 16);
}

TEST(HaloFinder, MaskMatchesKeptComponents) {
  const FieldF f = blob_field({48, 48, 48}, 4);
  const auto cat = find_halos(f, 20.0f, 4);
  const MaskField mask = halo_mask(f, 20.0f, 4);
  index_t marked = 0;
  for (index_t i = 0; i < mask.size(); ++i) marked += mask[i] != 0 ? 1 : 0;
  index_t kept_cells = 0;
  for (const auto& h : cat.halos) kept_cells += h.cells;
  EXPECT_EQ(marked, kept_cells);
  // Every marked cell is above threshold; every peak is marked.
  for (index_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) {
      EXPECT_GE(f[i], 20.0f);
    }
  }
  for (const auto& h : cat.halos) EXPECT_EQ(mask.at(h.peak.x, h.peak.y, h.peak.z), 1);
}

TEST(HaloFinder, MaskDropsSubMinCellsNoise) {
  FieldF f({16, 16, 16}, 0.0f);
  f.at(3, 3, 3) = 100.0f;  // single hot voxel, below min_cells
  const MaskField mask = halo_mask(f, 10.0f, 2);
  for (index_t i = 0; i < mask.size(); ++i) EXPECT_EQ(mask[i], 0);
  const MaskField kept = halo_mask(f, 10.0f, 1);
  EXPECT_EQ(kept.at(3, 3, 3), 1);
}

TEST(HaloFinder, EmptyAndConstantFieldsYieldEmptyMask) {
  const MaskField m1 = halo_mask(FieldF({8, 8, 8}, 0.0f), 1.0f);
  for (index_t i = 0; i < m1.size(); ++i) EXPECT_EQ(m1[i], 0);
  // A constant field above threshold is one domain-sized halo.
  const MaskField m2 = halo_mask(FieldF({8, 8, 8}, 5.0f), 1.0f);
  for (index_t i = 0; i < m2.size(); ++i) EXPECT_EQ(m2[i], 1);
}

TEST(HaloFinder, AggressiveCompressionDegradesCatalog) {
  const FieldF f = sim::nyx_density({64, 64, 64}, 3);
  const float threshold = static_cast<float>(5e9);
  const auto ref = find_halos(f, threshold, 4);
  const auto tight = round_trip(InterpCompressor{}, f, f.value_range() * 1e-6);
  const auto loose = round_trip(InterpCompressor{}, f, f.value_range() * 5e-2);
  const auto cmp_tight = compare_catalogs(ref, find_halos(tight.reconstructed, threshold, 4));
  const auto cmp_loose = compare_catalogs(ref, find_halos(loose.reconstructed, threshold, 4));
  EXPECT_GE(cmp_tight.match_rate(), cmp_loose.match_rate());
}

}  // namespace
}  // namespace mrc::analysis
