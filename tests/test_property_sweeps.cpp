// Cross-cutting property sweeps: invariants that must hold over broad
// parameter grids rather than at hand-picked points.

#include <gtest/gtest.h>

#include <array>

#include "compressors/interp/interp_compressor.h"
#include "compressors/registry.h"
#include "grid/field_ops.h"
#include "lossless/huffman.h"
#include "lossless/quant_codec.h"
#include "merge/merge_strategies.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"
#include "postproc/bezier.h"
#include "test_util.h"

namespace mrc {
namespace {

// ---------------------------------------------------------------------------
// Interpolation coverage: every grid shape must be visited exactly once —
// verified indirectly by lossless-at-tiny-eb round trips over a dims grid.
// ---------------------------------------------------------------------------

class InterpDimsSweep : public ::testing::TestWithParam<Dim3> {};

TEST_P(InterpDimsSweep, TinyBoundActsNearLossless) {
  const Dim3 d = GetParam();
  const FieldF f = test::smooth_field(d, 10.0);
  const auto rt = round_trip(InterpCompressor{}, f, 1e-7);
  EXPECT_LE(test::max_abs_err(f, rt.reconstructed), 1e-7 * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    DimGrid, InterpDimsSweep,
    ::testing::Values(Dim3{2, 3, 4}, Dim3{4, 4, 4}, Dim3{5, 5, 5}, Dim3{8, 8, 8},
                      Dim3{9, 9, 9}, Dim3{15, 17, 16}, Dim3{16, 16, 1}, Dim3{1, 16, 16},
                      Dim3{16, 1, 16}, Dim3{3, 1, 1}, Dim3{1, 1, 2}, Dim3{23, 29, 31},
                      Dim3{64, 2, 2}, Dim3{2, 64, 2}),
    [](const auto& info) {
      return std::to_string(info.param.nx) + "x" + std::to_string(info.param.ny) + "x" +
             std::to_string(info.param.nz);
    });

// ---------------------------------------------------------------------------
// Error-bound scaling: halving the bound must not increase accuracy error,
// and must not decrease stream size, for every codec.
// ---------------------------------------------------------------------------

class CodecMonotonicity : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Compressor> make() const {
    return registry().make(registry().names().at(static_cast<std::size_t>(GetParam())));
  }
};

TEST_P(CodecMonotonicity, SizeGrowsAsBoundShrinks) {
  const auto codec = make();
  const FieldF f = test::smooth_field({24, 24, 24}, 100.0);
  // Block-adaptive codecs (SZ2's per-block predictor selection) are not
  // strictly monotone — selection flips can shave a few percent when the
  // bound tightens. Allow 10% slack; gross inversions still fail.
  std::size_t prev = 0;
  for (const double eb : {10.0, 1.0, 0.1, 0.01}) {
    const auto s = codec->compress(f, eb).size();
    if (prev > 0) {
      EXPECT_GE(static_cast<double>(s), static_cast<double>(prev) * 0.9) << "eb " << eb;
    }
    prev = s;
  }
}

TEST_P(CodecMonotonicity, MaxErrorTracksBound) {
  const auto codec = make();
  const FieldF f = test::smooth_field({24, 24, 24}, 100.0);
  double prev_err = 1e300;
  for (const double eb : {10.0, 1.0, 0.1}) {
    const auto rt = round_trip(*codec, f, eb);
    const double err = test::max_abs_err(f, rt.reconstructed);
    EXPECT_LE(err, eb);
    EXPECT_LE(err, prev_err * 1.001);
    prev_err = err;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecMonotonicity, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0: return std::string("interp");
                             case 1: return std::string("lorenzo");
                             default: return std::string("zfpx");
                           }
                         });

// ---------------------------------------------------------------------------
// Quantization-code codec: exact round trip across radii and zero densities.
// ---------------------------------------------------------------------------

struct QuantSweep {
  std::uint32_t radius;
  double zero_fraction;
};

class QuantCodecSweep : public ::testing::TestWithParam<QuantSweep> {};

TEST_P(QuantCodecSweep, ExactRoundTrip) {
  const auto [radius, zero_fraction] = GetParam();
  Rng rng(radius * 13 + static_cast<std::uint64_t>(zero_fraction * 100));
  std::vector<std::uint32_t> codes;
  for (int i = 0; i < 20000; ++i) {
    if (rng.uniform() < zero_fraction)
      codes.push_back(radius);
    else
      codes.push_back(static_cast<std::uint32_t>(rng.uniform_index(2 * radius + 1)));
  }
  EXPECT_EQ(lossless::decode_quant_codes(lossless::encode_quant_codes(codes, radius),
                                         radius),
            codes);
}

INSTANTIATE_TEST_SUITE_P(RadiusByDensity, QuantCodecSweep,
                         ::testing::Values(QuantSweep{4, 0.0}, QuantSweep{4, 0.99},
                                           QuantSweep{512, 0.5}, QuantSweep{512, 0.999},
                                           QuantSweep{32768, 0.9},
                                           QuantSweep{32768, 0.0}));

// ---------------------------------------------------------------------------
// Huffman optimality-adjacent property: coded size within 15% of the
// empirical entropy bound for assorted distributions.
// ---------------------------------------------------------------------------

TEST(HuffmanProperty, NearEntropyOnGeometricDistribution) {
  Rng rng(5);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 60000; ++i) {
    std::uint32_t s = 0;
    while (s < 30 && rng.uniform() < 0.5) ++s;
    syms.push_back(s);
  }
  std::array<double, 32> freq{};
  for (auto s : syms) ++freq[s];
  double entropy_bits = 0;
  for (double c : freq)
    if (c > 0) entropy_bits -= c * std::log2(c / static_cast<double>(syms.size()));
  const auto enc = lossless::huffman_encode(syms, 32);
  EXPECT_LT(static_cast<double>(enc.size() * 8),
            entropy_bits * 1.15 + 2048 /* header slack */);
}

// ---------------------------------------------------------------------------
// Restriction/prolongation pair: restriction after nearest-prolongation is
// the identity on the coarse grid (one-sided inverse).
// ---------------------------------------------------------------------------

TEST(GridProperty, RestrictionIsLeftInverseOfNearestProlongation) {
  const FieldF coarse = test::noise_field({8, 8, 8}, 5.0, 3);
  const FieldF fine = prolong_nearest(coarse, {16, 16, 16});
  const FieldF back = restrict_average(fine, 2);
  for (index_t i = 0; i < coarse.size(); ++i) EXPECT_FLOAT_EQ(back[i], coarse[i]);
}

TEST(GridProperty, RestrictionPreservesMean) {
  const FieldF fine = test::noise_field({16, 16, 16}, 5.0, 4);
  const FieldF coarse = restrict_average(fine, 2);
  double mf = 0, mc = 0;
  for (index_t i = 0; i < fine.size(); ++i) mf += fine[i];
  for (index_t i = 0; i < coarse.size(); ++i) mc += coarse[i];
  EXPECT_NEAR(mf / static_cast<double>(fine.size()), mc / static_cast<double>(coarse.size()), 1e-4);
}

// ---------------------------------------------------------------------------
// Post-process curve family: every curve respects the clamp and leaves
// non-boundary points untouched.
// ---------------------------------------------------------------------------

class CurveSweep : public ::testing::TestWithParam<postproc::CurveKind> {};

TEST_P(CurveSweep, ClampAndLocalityHold) {
  const auto curve = GetParam();
  const FieldF f = test::noise_field({16, 16, 16}, 10.0, 6);
  const double eb = 0.5, a = 0.4;
  const FieldF p = postproc::bezier_postprocess_axis(f, 4, eb, a, 0, curve);
  for (index_t z = 0; z < 16; ++z)
    for (index_t y = 0; y < 16; ++y)
      for (index_t x = 0; x < 16; ++x) {
        const double delta = std::abs(p.at(x, y, z) - f.at(x, y, z));
        EXPECT_LE(delta, a * eb * (1 + 1e-5));
        const index_t r = x % 4;
        const bool boundary = (r == 0 || r == 3) && x > 0 && x < 15;
        if (!boundary) {
          EXPECT_EQ(p.at(x, y, z), f.at(x, y, z));
        }
      }
}

INSTANTIATE_TEST_SUITE_P(Curves, CurveSweep,
                         ::testing::Values(postproc::CurveKind::bezier_quadratic,
                                           postproc::CurveKind::catmull_cubic,
                                           postproc::CurveKind::bspline),
                         [](const auto& info) {
                           switch (info.param) {
                             case postproc::CurveKind::bezier_quadratic:
                               return std::string("bezier");
                             case postproc::CurveKind::catmull_cubic:
                               return std::string("catmull");
                             default:
                               return std::string("bspline");
                           }
                         });

// ---------------------------------------------------------------------------
// SSIM sanity across distortion families: additive noise, bias, and
// contrast change all reduce SSIM, and SSIM is bounded by 1.
// ---------------------------------------------------------------------------

TEST(SsimProperty, BoundedAndSensitiveToDistortionFamilies) {
  const FieldF f = test::smooth_field({20, 20, 20}, 100.0);
  FieldF noisy = f, biased = f, stretched = f;
  Rng rng(8);
  for (index_t i = 0; i < f.size(); ++i) {
    noisy[i] += static_cast<float>(rng.normal(0, 10));
    biased[i] += 30.0f;
    stretched[i] *= 1.5f;
  }
  for (const FieldF* g : {&noisy, &biased, &stretched}) {
    const double s = metrics::ssim(f, *g);
    EXPECT_LE(s, 1.0 + 1e-12);
    EXPECT_LT(s, 0.999);
  }
}

// ---------------------------------------------------------------------------
// Merge strategies preserve multiset of values (no sample invented or lost).
// ---------------------------------------------------------------------------

TEST(MergeProperty, LinearMergePreservesValueMultiset) {
  FieldF f = test::noise_field({32, 32, 32}, 3.0, 9);
  const std::array<double, 2> fr{0.4, 0.6};
  const auto mr = amr::build_hierarchy(f, 8, fr);
  const auto set = extract_unit_blocks(mr.levels[0], 8);
  const FieldF merged = merge_linear(set);
  double sum_set = 0, sum_merged = 0;
  for (const float v : set.data) sum_set += v;
  for (index_t i = 0; i < merged.size(); ++i) sum_merged += merged[i];
  EXPECT_NEAR(sum_set, sum_merged, std::abs(sum_set) * 1e-12 + 1e-9);
}

}  // namespace
}  // namespace mrc
