#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "metrics/fft.h"
#include "metrics/psnr.h"
#include "metrics/spectrum.h"
#include "metrics/ssim.h"
#include "simdata/generators.h"
#include "test_util.h"

namespace mrc::metrics {
namespace {

TEST(Psnr, IdenticalFieldsInfinite) {
  const FieldF f = test::smooth_field({8, 8, 8});
  EXPECT_TRUE(std::isinf(psnr(f, f)));
}

TEST(Psnr, KnownValue) {
  // Range 100, RMSE 1 -> PSNR = 40 dB.
  FieldF a({100, 1, 1}), b({100, 1, 1});
  for (index_t i = 0; i < 100; ++i) {
    a[i] = static_cast<float>(i);  // range 99
    b[i] = a[i] + ((i % 2) ? 1.0f : -1.0f);
  }
  const auto s = error_stats(a, b);
  EXPECT_DOUBLE_EQ(s.rmse, 1.0);
  EXPECT_NEAR(s.psnr, 20.0 * std::log10(99.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.max_abs_err, 1.0);
}

TEST(Psnr, MismatchedDimsThrow) {
  FieldF a({4, 4, 4}), b({4, 4, 2});
  EXPECT_THROW((void)psnr(a, b), ContractError);
}

TEST(Ssim, IdenticalIsOne) {
  const FieldF f = test::smooth_field({16, 16, 16});
  EXPECT_NEAR(ssim(f, f), 1.0, 1e-12);
}

TEST(Ssim, DegradesWithNoise) {
  const FieldF f = test::smooth_field({16, 16, 16}, 100.0);
  FieldF noisy = f;
  Rng rng(3);
  for (index_t i = 0; i < noisy.size(); ++i)
    noisy[i] += static_cast<float>(rng.normal(0.0, 20.0));
  const double s = ssim(f, noisy);
  EXPECT_LT(s, 0.95);
  EXPECT_GT(s, 0.0);
}

TEST(Ssim, OrderSensitivityIsMild) {
  const FieldF a = test::smooth_field({16, 16, 16}, 100.0);
  FieldF b = a;
  for (index_t i = 0; i < b.size(); ++i) b[i] += 5.0f;
  // Symmetric-ish metric: both directions agree to first order.
  EXPECT_NEAR(ssim(a, b), ssim(b, a), 0.05);
}

TEST(Ssim, MoreDistortionLowerScore) {
  const FieldF f = test::smooth_field({16, 16, 16}, 100.0);
  FieldF mild = f, severe = f;
  Rng rng(4);
  for (index_t i = 0; i < f.size(); ++i) {
    const float n = static_cast<float>(rng.normal());
    mild[i] += 2.0f * n;
    severe[i] += 30.0f * n;
  }
  EXPECT_GT(ssim(f, mild), ssim(f, severe));
}

TEST(Ssim, CentralSliceWorks) {
  const FieldF f = test::smooth_field({32, 32, 8}, 50.0);
  EXPECT_NEAR(ssim_central_slice(f, f), 1.0, 1e-12);
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<cplx> data(16, cplx{});
  data[0] = 1.0;
  fft_1d(data.data(), 16, false);
  for (const auto& v : data) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, RoundTrip1D) {
  Rng rng(5);
  std::vector<cplx> data(64);
  for (auto& v : data) v = cplx(rng.normal(), rng.normal());
  auto copy = data;
  fft_1d(data.data(), 64, false);
  fft_1d(data.data(), 64, true);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] - copy[i]), 0.0, 1e-10);
}

TEST(Fft, SingleToneLandsInRightBin) {
  const std::size_t n = 32;
  std::vector<cplx> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = std::cos(2.0 * std::numbers::pi * 5.0 * static_cast<double>(i) / n);
  fft_1d(data.data(), n, false);
  EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[3]), 0.0, 1e-9);
}

TEST(Fft, RoundTrip3D) {
  const Dim3 d{8, 16, 4};
  Rng rng(6);
  std::vector<cplx> data(static_cast<std::size_t>(d.size()));
  for (auto& v : data) v = cplx(rng.normal(), rng.normal());
  auto copy = data;
  fft_3d(data, d, false);
  fft_3d(data, d, true);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] - copy[i]), 0.0, 1e-9);
}

TEST(Fft, ParsevalHolds3D) {
  const Dim3 d{8, 8, 8};
  Rng rng(7);
  std::vector<cplx> data(static_cast<std::size_t>(d.size()));
  double time_energy = 0;
  for (auto& v : data) {
    v = cplx(rng.normal(), 0.0);
    time_energy += std::norm(v);
  }
  fft_3d(data, d, false);
  double freq_energy = 0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(d.size()), time_energy,
              time_energy * 1e-10);
}

TEST(Fft, RejectsNonPow2) {
  std::vector<cplx> data(12);
  EXPECT_THROW(fft_1d(data.data(), 12, false), ContractError);
}

TEST(Spectrum, IdenticalFieldsZeroError) {
  const FieldF f = sim::nyx_density({32, 32, 32}, 3);
  const auto e = spectrum_error(f, f, 10);
  EXPECT_DOUBLE_EQ(e.max_rel, 0.0);
  EXPECT_DOUBLE_EQ(e.avg_rel, 0.0);
}

TEST(Spectrum, PowerLawShapeIsDecreasing) {
  const FieldF g = sim::gaussian_random_field({64, 64, 64}, 3.0, 11);
  FieldF f({64, 64, 64});
  for (index_t i = 0; i < f.size(); ++i) f[i] = g[i] + 10.0f;  // positive mean
  const auto p = power_spectrum(f, 16);
  // P(k) ∝ k^-3: strictly decreasing over the resolved range.
  EXPECT_GT(p[1], p[4]);
  EXPECT_GT(p[4], p[10]);
}

TEST(Spectrum, SmallPerturbationSmallError) {
  const FieldF f = sim::nyx_density({32, 32, 32}, 9);
  FieldF g = f;
  Rng rng(8);
  const double range = f.value_range();
  for (index_t i = 0; i < g.size(); ++i)
    g[i] += static_cast<float>(rng.normal(0.0, 1e-5 * range));
  const auto e = spectrum_error(f, g, 10);
  EXPECT_LT(e.max_rel, 0.05);
}

TEST(Spectrum, LargePerturbationLargerError) {
  const FieldF f = sim::nyx_density({32, 32, 32}, 9);
  FieldF small = f, big = f;
  Rng rng(9);
  const double range = f.value_range();
  for (index_t i = 0; i < f.size(); ++i) {
    const double n = rng.normal();
    small[i] += static_cast<float>(1e-5 * range * n);
    big[i] += static_cast<float>(1e-2 * range * n);
  }
  EXPECT_LT(spectrum_error(f, small, 10).avg_rel, spectrum_error(f, big, 10).avg_rel);
}

}  // namespace
}  // namespace mrc::metrics
