#include <gtest/gtest.h>

#include "common/dims.h"

TEST(Scaffold, DimsIndexing) {
  mrc::Dim3 d{4, 5, 6};
  EXPECT_EQ(d.size(), 120);
  EXPECT_EQ(d.index(1, 2, 3), 1 + 4 * (2 + 5 * 3));
}
