#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "compressors/compressor.h"
#include "compressors/interp/interp_compressor.h"
#include "compressors/lorenzo/lorenzo_compressor.h"
#include "compressors/simd_kernels.h"
#include "test_util.h"

namespace mrc::simd {
namespace {

/// Pins dispatch to one ISA for a scope, restoring best on exit — tests must
/// not leak a forced-scalar dispatch into later suites.
class IsaScope {
 public:
  explicit IsaScope(Isa isa) { applied_ = force_isa(isa); }
  ~IsaScope() { force_isa(best_isa()); }
  [[nodiscard]] Isa applied() const { return applied_; }

 private:
  Isa applied_;
};

/// The ISAs this build + CPU can actually run (scalar always; sse2/avx2 when
/// force_isa does not clamp them away).
std::vector<Isa> available_isas() {
  std::vector<Isa> out{Isa::scalar};
  for (const Isa isa : {Isa::sse2, Isa::avx2}) {
    const IsaScope s(isa);
    if (s.applied() == isa) out.push_back(isa);
  }
  return out;
}

/// Row inputs that bias every interesting quantizer branch: smooth values
/// (deep zero-run bins), residuals engineered to land exactly on .5 bin
/// boundaries (llround tie behavior), and spikes far outside the range
/// check (outliers).
struct RowData {
  std::vector<float> orig, a, b, c, d;
};

RowData make_row(std::size_t n, double eb, std::uint64_t seed) {
  Rng rng(seed);
  RowData r;
  r.orig.resize(n);
  r.a.resize(n);
  r.b.resize(n);
  r.c.resize(n);
  r.d.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = 10.0 * std::sin(0.21 * static_cast<double>(i));
    r.a[i] = static_cast<float>(base + 0.3 * rng.normal());
    r.b[i] = static_cast<float>(base + 0.3 * rng.normal());
    r.c[i] = static_cast<float>(base + 0.3 * rng.normal());
    r.d[i] = static_cast<float>(base + 0.3 * rng.normal());
    const double u = rng.uniform();
    if (u < 0.45) {
      r.orig[i] = static_cast<float>(base + eb * rng.uniform(-0.9, 0.9));
    } else if (u < 0.70) {
      // Residual pinned near a half-bin boundary: q*2eb + eb is the exact
      // tie point of llround(diff / 2eb). Both signs, even and odd q.
      const auto q = static_cast<double>(rng.uniform_index(7)) - 3.0;
      r.orig[i] = static_cast<float>(base + 2.0 * eb * q + eb);
    } else if (u < 0.95) {
      r.orig[i] = static_cast<float>(base + eb * rng.uniform(-40.0, 40.0));
    } else {
      r.orig[i] = static_cast<float>(base + 1e6 * (rng.uniform() < 0.5 ? -1.0 : 1.0));
    }
  }
  return r;
}

struct KernelOut {
  std::vector<std::uint32_t> codes;
  std::vector<float> recon;
  AlignedVec<float> outliers;
};

enum class Shape { linear, cubic, constant, plane };

KernelOut run_quantize(Shape shape, const RowData& r, double eb,
                       std::uint32_t radius) {
  const std::size_t n = r.orig.size();
  KernelOut out;
  out.codes.assign(n, 0xdeadbeefu);
  out.recon.assign(n, -1.0f);
  switch (shape) {
    case Shape::linear:
      quantize_row_linear(r.orig.data(), r.b.data(), r.c.data(), n, eb, radius,
                          out.codes.data(), out.recon.data(), out.outliers);
      break;
    case Shape::cubic:
      quantize_row_cubic(r.orig.data(), r.a.data(), r.b.data(), r.c.data(),
                         r.d.data(), n, eb, radius, out.codes.data(),
                         out.recon.data(), out.outliers);
      break;
    case Shape::constant:
      quantize_row_constant(r.orig.data(), r.b.data(), n, eb, radius,
                            out.codes.data(), out.recon.data(), out.outliers);
      break;
    case Shape::plane:
      quantize_row_plane(r.orig.data(), n, 3.25, 0.125, 1.5, -0.75, 2.5, eb,
                         radius, out.codes.data(), out.recon.data(), out.outliers);
      break;
  }
  return out;
}

std::vector<float> run_dequantize(Shape shape, const KernelOut& enc,
                                  const RowData& r, double eb,
                                  std::uint32_t radius) {
  const std::size_t n = enc.codes.size();
  std::vector<float> recon(n, -2.0f);
  const std::span<const float> osp(enc.outliers.data(), enc.outliers.size());
  std::size_t pos = 0;
  switch (shape) {
    case Shape::linear:
      dequantize_row_linear(enc.codes.data(), r.b.data(), r.c.data(), n, eb,
                            radius, recon.data(), osp, pos);
      break;
    case Shape::cubic:
      dequantize_row_cubic(enc.codes.data(), r.a.data(), r.b.data(), r.c.data(),
                           r.d.data(), n, eb, radius, recon.data(), osp, pos);
      break;
    case Shape::constant:
      dequantize_row_constant(enc.codes.data(), r.b.data(), n, eb, radius,
                              recon.data(), osp, pos);
      break;
    case Shape::plane:
      dequantize_row_plane(enc.codes.data(), n, 3.25, 0.125, 1.5, -0.75, 2.5, eb,
                           radius, recon.data(), osp, pos);
      break;
  }
  EXPECT_EQ(pos, enc.outliers.size()) << "dequantize left outliers unconsumed";
  return recon;
}

/// Bit-level float comparison: -0.0f vs 0.0f or NaN payload drift in recon
/// would silently break the frozen format, so == is not enough.
bool same_bits(const std::vector<float>& x, const std::vector<float>& y) {
  if (x.size() != y.size()) return false;
  return std::equal(x.begin(), x.end(), y.begin(), [](float p, float q) {
    std::uint32_t pb = 0, qb = 0;
    std::memcpy(&pb, &p, 4);
    std::memcpy(&qb, &q, 4);
    return pb == qb;
  });
}

bool same_bits(const AlignedVec<float>& x, const AlignedVec<float>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::uint32_t pb = 0, qb = 0;
    std::memcpy(&pb, &x[i], 4);
    std::memcpy(&qb, &y[i], 4);
    if (pb != qb) return false;
  }
  return true;
}

TEST(SimdKernels, DispatchReportsAnIsa) {
  EXPECT_GE(static_cast<int>(best_isa()), static_cast<int>(Isa::scalar));
  EXPECT_EQ(active_isa(), best_isa());
  EXPECT_STREQ(isa_name(Isa::scalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::sse2), "sse2");
  EXPECT_STREQ(isa_name(Isa::avx2), "avx2");
  // Forcing above best clamps rather than dispatching to a missing table.
  const Isa got = force_isa(Isa::avx2);
  EXPECT_LE(static_cast<int>(got), static_cast<int>(best_isa()));
  force_isa(best_isa());
}

TEST(SimdKernels, EveryIsaBitIdenticalToScalar) {
  const auto isas = available_isas();
  // Odd lengths exercise the vector tail; 1..3 are all-tail rows.
  const std::size_t lengths[] = {1, 2, 3, 4, 5, 7, 8, 13, 31, 64, 257};
  const double ebs[] = {1e-3, 0.25};
  const std::uint32_t radii[] = {512u, 4u};
  for (const auto shape :
       {Shape::linear, Shape::cubic, Shape::constant, Shape::plane}) {
    for (const std::size_t n : lengths) {
      for (const double eb : ebs) {
        for (const std::uint32_t radius : radii) {
          const RowData row = make_row(n, eb, 1000 + n);
          KernelOut ref;
          {
            const IsaScope s(Isa::scalar);
            ref = run_quantize(shape, row, eb, radius);
          }
          std::vector<float> ref_dec;
          {
            const IsaScope s(Isa::scalar);
            ref_dec = run_dequantize(shape, ref, row, eb, radius);
          }
          ASSERT_TRUE(same_bits(ref_dec, ref.recon))
              << "scalar decode does not invert scalar encode";
          for (const Isa isa : isas) {
            const IsaScope s(isa);
            const KernelOut got = run_quantize(shape, row, eb, radius);
            EXPECT_EQ(got.codes, ref.codes)
                << isa_name(isa) << " codes diverge (shape "
                << static_cast<int>(shape) << ", n=" << n << ")";
            EXPECT_TRUE(same_bits(got.recon, ref.recon))
                << isa_name(isa) << " recon diverges (n=" << n << ")";
            EXPECT_TRUE(same_bits(got.outliers, ref.outliers))
                << isa_name(isa) << " outliers diverge (n=" << n << ")";
            const auto dec = run_dequantize(shape, ref, row, eb, radius);
            EXPECT_TRUE(same_bits(dec, ref_dec))
                << isa_name(isa) << " dequantize diverges (n=" << n << ")";
          }
        }
      }
    }
  }
}

TEST(SimdKernels, HugeRadiusFallsBackToScalarResults) {
  // radius >= 2^30 codes cannot ride the int32 conversion; the kernels must
  // fall back and still match scalar exactly.
  const std::uint32_t radius = (1u << 30) + 5u;
  const double eb = 1e-3;
  const RowData row = make_row(37, eb, 7);
  KernelOut ref;
  {
    const IsaScope s(Isa::scalar);
    ref = run_quantize(Shape::linear, row, eb, radius);
  }
  for (const Isa isa : available_isas()) {
    const IsaScope s(isa);
    const KernelOut got = run_quantize(Shape::linear, row, eb, radius);
    EXPECT_EQ(got.codes, ref.codes) << isa_name(isa);
    EXPECT_TRUE(same_bits(got.recon, ref.recon)) << isa_name(isa);
  }
}

TEST(SimdKernels, DequantizeOutlierUnderrunThrows) {
  // A code stream holding outlier escapes but an empty outlier list must
  // throw on every ISA, never read past the span.
  const std::size_t n = 9;
  const std::vector<std::uint32_t> codes(n, 0u);
  const std::vector<float> src(n, 1.0f);
  for (const Isa isa : available_isas()) {
    const IsaScope s(isa);
    std::vector<float> recon(n);
    std::size_t pos = 0;
    EXPECT_THROW(dequantize_row_constant(codes.data(), src.data(), n, 1e-3, 512,
                                         recon.data(), {}, pos),
                 CodecError)
        << isa_name(isa);
  }
}

/// Whole-codec bit-identity: the same field must compress to the same bytes
/// under every ISA, across extents that stress the row carving (degenerate
/// 1xNxM slabs, prime extents, and a square volume).
class SimdCodecBitIdentity : public ::testing::TestWithParam<Dim3> {};

TEST_P(SimdCodecBitIdentity, InterpStreamsMatchScalar) {
  const Dim3 d = GetParam();
  const FieldF f = test::noise_field(d, 5.0, 42);
  const double eb = 1e-2;
  const InterpCompressor codec;
  Bytes ref;
  {
    const IsaScope s(Isa::scalar);
    ref = codec.compress(f, eb);
  }
  for (const Isa isa : available_isas()) {
    const IsaScope s(isa);
    EXPECT_EQ(codec.compress(f, eb), ref) << isa_name(isa) << " " << d.str();
    const FieldF back = codec.decompress(ref);
    EXPECT_LE(test::max_abs_err(f, back), eb);
  }
}

TEST_P(SimdCodecBitIdentity, LorenzoStreamsMatchScalar) {
  const Dim3 d = GetParam();
  const FieldF f = test::smooth_field(d);
  const double eb = 1e-3;
  const LorenzoCompressor codec;
  Bytes ref;
  {
    const IsaScope s(Isa::scalar);
    ref = codec.compress(f, eb);
  }
  for (const Isa isa : available_isas()) {
    const IsaScope s(isa);
    EXPECT_EQ(codec.compress(f, eb), ref) << isa_name(isa) << " " << d.str();
    const FieldF back = codec.decompress(ref);
    EXPECT_LE(test::max_abs_err(f, back), eb);
  }
}

INSTANTIATE_TEST_SUITE_P(OddExtents, SimdCodecBitIdentity,
                         ::testing::Values(Dim3{1, 37, 53}, Dim3{53, 1, 37},
                                           Dim3{37, 53, 1}, Dim3{31, 29, 23},
                                           Dim3{2, 3, 5}, Dim3{32, 32, 32}));

TEST(CodecScratch, AlignedVecIsCacheLineAligned) {
  // Satellite: the thread-local codec scratch must never straddle a cache
  // line at its base — vector loads assume 64-byte alignment.
  for (const std::size_t n : {1u, 7u, 63u, 4096u}) {
    AlignedVec<std::uint32_t> codes(n);
    AlignedVec<float> outliers(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(codes.data()) % kScratchAlign, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(outliers.data()) % kScratchAlign, 0u);
  }
}

TEST(CodecScratch, TrimKeepsSmallDropsLarge) {
  // Satellite: the 32 MiB trim must behave identically for aligned scratch.
  AlignedVec<std::uint32_t> small(1024);
  mrc::detail::trim_scratch(small);
  EXPECT_GE(small.capacity(), 1024u);  // under the cap: kept

  AlignedVec<std::uint32_t> big;
  big.reserve((mrc::detail::kScratchKeepBytes / sizeof(std::uint32_t)) + 1);
  mrc::detail::trim_scratch(big);
  EXPECT_EQ(big.capacity(), 0u);  // over the cap: released
}

}  // namespace
}  // namespace mrc::simd
